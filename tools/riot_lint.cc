// riot_lint: standalone driver for the static plan-integrity linter
// (analysis/program_lint.h). Lints a corpus of programs — the built-in
// paper workloads plus randomly generated static-control programs — at
// both levels: LintProgram on the IR, LintPlan on every plan the
// optimizer proposes (original schedule included). Any finding prints the
// full LintReport and fails the run, so the binary doubles as a
// regression gate: the optimizer and lowering must never emit a plan the
// linter rejects.
//
// Usage: riot_lint [--seeds N] [--verbose]
//   --seeds N    random programs to generate and lint (default 25)
//   --verbose    print a line per plan, not just per program
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "analysis/program_lint.h"
#include "core/optimizer.h"
#include "ir/builder.h"
#include "ir/program.h"

namespace riot {
namespace {

// The paper's running example: two chained block matmuls sharing reads of
// the middle operand, with guarded accumulator self-reads.
Program TwoMatmuls(int64_t n) {
  Program p;
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    ArrayInfo a;
    a.name = name;
    a.grid = {n, n};
    a.block_elems = {4, 4};
    p.AddArray(a);
  }
  auto add_mm = [&](const std::string& name, int a, int b, int c, int nest) {
    Statement st;
    st.name = name;
    st.iters = {"i", "j", "k"};
    st.domain = RectDomain({{0, n - 1}, {0, n - 1}, {0, n - 1}}, st.iters);
    st.accesses.push_back(Read(a, {{1, 0, 0, 0}, {0, 0, 1, 0}}));
    st.accesses.push_back(Read(b, {{0, 0, 1, 0}, {0, 1, 0, 0}}));
    Access acc = Read(c, {{1, 0, 0, 0}, {0, 1, 0, 0}});
    acc.guard = GuardGe(st.domain, 2, 1);
    st.accesses.push_back(std::move(acc));
    st.accesses.push_back(Write(c, {{1, 0, 0, 0}, {0, 1, 0, 0}}));
    StatementOp op;
    op.kind = StatementOp::Kind::kGemm;
    op.a = 0;
    op.b = 1;
    op.acc = 2;
    op.out = 3;
    op.reduction_iter = 2;
    st.op = op;
    p.AddStatement(std::move(st), nest, 0);
  };
  add_mm("s1", 0, 1, 2, 0);  // C = A * B
  add_mm("s2", 2, 3, 4, 1);  // E = C * D
  return p;
}

// Random static-control program in the same family the differential
// fuzzers draw from: a handful of arrays on a small shared grid, 2-3
// statements with affine (variable-or-constant) accesses and optional
// guarded accumulation.
Program RandomProgram(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<uint64_t>(hi - lo + 1));
  };
  Program p;
  const int narrays = pick(3, 5);
  for (int i = 0; i < narrays; ++i) {
    ArrayInfo a;
    a.name = std::string(1, static_cast<char>('A' + i));
    a.grid = {3, 3};
    a.block_elems = {4, 4};
    p.AddArray(a);
  }
  const int nstmts = pick(2, 3);
  std::vector<bool> written(static_cast<size_t>(narrays), false);
  for (int s = 0; s < nstmts; ++s) {
    Statement st;
    st.name = "s" + std::to_string(s + 1);
    const int depth = pick(2, 3);
    for (int d = 0; d < depth; ++d) {
      st.iters.push_back(std::string(1, static_cast<char>('i' + d)));
    }
    st.domain = RectDomain(
        std::vector<std::pair<int64_t, int64_t>>(
            static_cast<size_t>(depth), {0, 2}),
        st.iters);
    auto rand_row = [&]() {
      std::vector<int64_t> row(static_cast<size_t>(depth) + 1, 0);
      if (pick(0, 2) > 0) {
        row[static_cast<size_t>(pick(0, depth - 1))] = 1;
      } else {
        row[static_cast<size_t>(depth)] = pick(0, 2);
      }
      return row;
    };
    const int nreads = pick(1, 2);
    for (int rd = 0; rd < nreads; ++rd) {
      st.accesses.push_back(Read(pick(0, narrays - 1),
                                 {rand_row(), rand_row()}));
    }
    int warr = pick(0, narrays - 1);
    for (int t = 0; t < narrays && written[static_cast<size_t>(warr)]; ++t) {
      warr = (warr + 1) % narrays;
    }
    written[static_cast<size_t>(warr)] = true;
    std::vector<int64_t> w1 = rand_row(), w2 = rand_row();
    if (pick(0, 1) == 1) {
      Access acc = Read(warr, {w1, w2});
      acc.guard = GuardGe(st.domain, static_cast<size_t>(depth) - 1, 1);
      st.accesses.push_back(std::move(acc));
    }
    st.accesses.push_back(Write(warr, {w1, w2}));
    p.AddStatement(std::move(st), s, 0);
  }
  return p;
}

// Lints one program and every optimizer plan for it. Returns the number
// of findings (0 = clean).
size_t LintOneProgram(const std::string& label, const Program& program,
                      bool verbose) {
  size_t findings = 0;
  auto prog_report = LintProgram(program);
  if (!prog_report.ok()) {
    std::cerr << label << ": internal lint failure: "
              << prog_report.status().ToString() << "\n";
    return 1;
  }
  if (!prog_report->ok()) {
    std::cerr << label << " (program level)\n  " << prog_report->ToString()
              << "\n";
    return prog_report->diags.size();  // plans would lower a broken program
  }
  OptimizerOptions opts;
  opts.max_combination_size = 2;
  OptimizationResult r = Optimize(program, opts);
  for (size_t pi = 0; pi < r.plans.size(); ++pi) {
    const Plan& plan = r.plans[pi];
    std::vector<const CoAccess*> q;
    for (int oi : plan.opportunities) {
      q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
    }
    auto report = LintPlan(program, plan.schedule, q);
    if (!report.ok()) {
      std::cerr << label << " plan " << pi << ": internal lint failure: "
                << report.status().ToString() << "\n";
      ++findings;
      continue;
    }
    if (!report->ok()) {
      std::cerr << label << " plan " << pi << "\n  " << report->ToString()
                << "\n";
      findings += report->diags.size();
    } else if (verbose) {
      std::cout << label << " plan " << pi << ": " << report->ToString()
                << "\n";
    }
  }
  if (findings == 0 && !verbose) {
    std::cout << label << ": clean (" << r.plans.size() << " plan(s))\n";
  }
  return findings;
}

int Main(int argc, char** argv) {
  int seeds = 25;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::cerr << "usage: riot_lint [--seeds N] [--verbose]\n";
      return 2;
    }
  }
  size_t findings = 0;
  findings += LintOneProgram("two_matmuls[3x3]", TwoMatmuls(3), verbose);
  findings += LintOneProgram("two_matmuls[4x4]", TwoMatmuls(4), verbose);
  for (int s = 0; s < seeds; ++s) {
    findings += LintOneProgram("random[seed=" + std::to_string(s) + "]",
                               RandomProgram(static_cast<uint64_t>(s)),
                               verbose);
  }
  if (findings > 0) {
    std::cerr << "riot_lint: " << findings << " finding(s)\n";
    return 1;
  }
  std::cout << "riot_lint: all clean\n";
  return 0;
}

}  // namespace
}  // namespace riot

int main(int argc, char** argv) { return riot::Main(argc, argv); }
