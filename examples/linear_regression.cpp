// Ordinary least squares over out-of-core data (paper Section 6.3):
//   U = X'X; V = X'Y; W = U^-1; beta = W V; Yhat = X beta; E = Y - Yhat;
//   RSS(E)
// Runs the full 7-step pipeline at a reduced scale, optimized end to end,
// and prints the fitted-model summary.
#include <cmath>
#include <cstdio>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

int main() {
  using namespace riot;
  // Scale 200: X is 25 blocks of 300 x 20 (7500 observations, 20
  // predictors, 2 response columns).
  Workload w = MakeLinReg(/*scale=*/200);
  w.program.Validate().CheckOK();

  // Keep optimization snappy for a demo: the full search space is explored
  // by bench/bench_fig6_linreg; here pairs of opportunities suffice to find
  // the X-sharing plan.
  OptimizerOptions opts;
  opts.max_combination_size = 2;
  OptimizationResult r = Optimize(w.program, opts);
  const Plan& best = r.best();
  std::printf("explored %lld candidate sharing sets; best plan {%s}\n",
              static_cast<long long>(r.candidates_tested),
              best.DescribeOpportunities(w.program, r.analysis.sharing)
                  .c_str());
  std::printf("predicted I/O: %.2f MB vs %.2f MB unoptimized\n\n",
              best.cost.TotalBytes() / 1e6,
              r.plans[0].cost.TotalBytes() / 1e6);

  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/lr");
  rt.status().CheckOK();
  InitInputs(w, *rt, /*seed=*/2026).CheckOK();
  std::vector<const CoAccess*> q;
  for (int oi : best.opportunities) {
    q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
  }
  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(best.schedule, q);
  stats.status().CheckOK();
  std::printf("executed: read %.2f MB, wrote %.2f MB, compute %.3f s\n\n",
              stats->bytes_read / 1e6, stats->bytes_written / 1e6,
              stats->compute_seconds);

  // Model summary: beta column norms and per-response RSS.
  const ArrayInfo& beta_info = w.program.array(5);
  const ArrayInfo& rss_info = w.program.array(8);
  auto beta_or = ReadWholeArray(beta_info, rt->stores[5].get());
  auto rss_or = ReadWholeArray(rss_info, rt->stores[8].get());
  if (!beta_or.ok() || !rss_or.ok()) {
    std::fprintf(stderr, "failed to read model back: %s\n",
                 (!beta_or.ok() ? beta_or.status() : rss_or.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  const std::vector<double>& beta = *beta_or;
  const std::vector<double>& rss = *rss_or;
  const int64_t m = beta_info.block_elems[0];
  const int64_t k = beta_info.block_elems[1];
  for (int64_t c = 0; c < k; ++c) {
    double norm = 0;
    for (int64_t f = 0; f < m; ++f) {
      double b = beta[static_cast<size_t>(c * m + f)];
      norm += b * b;
    }
    std::printf("response %lld: ||beta|| = %8.4f, RSS = %10.4f\n",
                static_cast<long long>(c), std::sqrt(norm),
                rss[static_cast<size_t>(c)]);
  }
  return 0;
}
