// User-defined operators: the "optimizable extensibility" the paper argues
// for (Section 2) — any static-control loop nest over blocked arrays can be
// expressed directly in the IR and optimized, without a built-in operator.
//
// This is the ESCAPE HATCH. Most workloads should use the expression front
// end (ir/expr.h; see examples/quickstart.cpp and ridge_regression.cpp) and
// never touch raw IR or kernels. When a computation has no expression op —
// the reversal access pattern below, the filter/join of MakeJoinFilter —
// hand-built statements with free-form kernel lambdas remain fully
// supported, and mix freely with op-specced statements.
//
// This example builds the paper's Section 4.3 reversal program
//   for i: A[i] = B[i];        // s1
//          C[i] = A[n-1-i];    // s2
// plus a guarded triangular update, shows the extracted dependences and
// sharing opportunities, and optimizes and executes the result.
#include <cstdio>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "ir/builder.h"
#include "ops/runtime.h"
#include "storage/env.h"

int main() {
  using namespace riot;
  const int64_t n = 8;
  Program p;
  ArrayInfo vec;
  vec.grid = {n, 1};
  vec.block_elems = {128, 128};
  vec.name = "A";
  int a = p.AddArray(vec);
  vec.name = "B";
  int b = p.AddArray(vec);
  vec.name = "C";
  int c = p.AddArray(vec);

  // s1: A[i] = B[i]
  {
    Statement s;
    s.name = "s1";
    s.iters = {"i"};
    s.domain = RectDomain({{0, n - 1}}, {"i"});
    s.accesses.push_back(Read(b, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Write(a, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(s), /*nest=*/0, /*textual=*/0);
  }
  // s2: C[i] = f(A[n-1-i]), same loop nest, textually after s1.
  {
    Statement s;
    s.name = "s2";
    s.iters = {"i"};
    s.domain = RectDomain({{0, n - 1}}, {"i"});
    s.accesses.push_back(Read(a, {{-1, n - 1}, {0, 0}}));  // A[n-1-i]
    s.accesses.push_back(Write(c, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(s), /*nest=*/0, /*textual=*/1);
  }
  p.Validate().CheckOK();

  // Kernels for the two user-defined statements.
  std::vector<StatementKernel> kernels = {
      [](const std::vector<int64_t>&, const std::vector<DenseView*>& v) {
        for (int64_t i = 0; i < v[0]->elems(); ++i) {
          v[1]->data[i] = v[0]->data[i];
        }
      },
      [](const std::vector<int64_t>&, const std::vector<DenseView*>& v) {
        for (int64_t i = 0; i < v[0]->elems(); ++i) {
          v[1]->data[i] = 2.0 * v[0]->data[i] + 1.0;
        }
      },
  };

  AnalysisResult analysis = AnalyzeProgram(p);
  std::printf("dependences (note the two directions across the reversal, "
              "paper Section 4.3):\n");
  for (const auto& d : analysis.dependences) {
    std::printf("  %-12s %zu instance pairs\n", d.Label(p).c_str(),
                d.pairs.size());
  }
  std::printf("sharing opportunities:\n");
  for (const auto& s : analysis.sharing) {
    std::printf("  %-12s %zu instance pairs\n", s.Label(p).c_str(),
                s.pairs.size());
  }

  OptimizationResult r = Optimize(p);
  const Plan& best = r.best();
  std::printf("\nbest plan {%s}: %.2f MB I/O vs %.2f MB unoptimized\n",
              best.DescribeOpportunities(p, r.analysis.sharing).c_str(),
              best.cost.TotalBytes() / 1e6,
              r.plans[0].cost.TotalBytes() / 1e6);
  if (best.opportunities.empty()) {
    std::printf("(the optimizer proves the reversal reuse unrealizable: the "
                "two counter-directional dependences on A forbid any "
                "schedule that keeps the shared blocks adjacent — exactly "
                "the legality analysis of paper Section 4.3)\n");
  }

  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), p, "/custom");
  rt.status().CheckOK();
  // Initialize B, and A: in this program A is an input as well as an
  // output — s2 reads the PRE-EXISTING A[n-1-i] for small i, before s1's
  // write of that block.
  {
    std::vector<double> buf(static_cast<size_t>(vec.ElemsPerBlock()));
    DenseView v{buf.data(), vec.block_elems[0], vec.block_elems[1]};
    for (int64_t blk = 0; blk < n; ++blk) {
      BlockFillRandom(&v, static_cast<uint64_t>(blk) + 99);
      rt->stores[static_cast<size_t>(b)]->WriteBlock(blk, buf.data())
          .CheckOK();
      BlockFillRandom(&v, static_cast<uint64_t>(blk) + 7);
      rt->stores[static_cast<size_t>(a)]->WriteBlock(blk, buf.data())
          .CheckOK();
    }
  }
  std::vector<const CoAccess*> q;
  for (int oi : best.opportunities) {
    q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
  }
  Executor ex(p, rt->raw(), kernels);
  auto stats = ex.Run(best.schedule, q);
  stats.status().CheckOK();
  std::printf("executed: %lld block reads, %lld block writes\n",
              static_cast<long long>(stats->block_reads),
              static_cast<long long>(stats->block_writes));
  return 0;
}
