// Quickstart: optimize and run the paper's Example 1 end to end.
//
//   C = A + B;  E = C D     (all arrays blocked on disk)
//
// Demonstrates the whole pipeline: write the workload as a lazy array
// expression (five lines — no IR, no kernels), lower it, run the
// optimizer, inspect the plan space, execute the best plan under its
// predicted memory requirement, and verify it produces the same result as
// the unoptimized program with less I/O.
#include <cstdio>

#include "core/optimizer.h"
#include "core/pseudocode.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ir/expr.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

int main() {
  using namespace riot;

  // 1. Write the program as a deferred array expression. Nothing executes
  //    here: the graph is lowered into the blocked polyhedral IR, the
  //    statements carry typed ops, and every kernel is synthesized — the
  //    hand-written IR + lambda boilerplate this used to take lives on
  //    only in examples/custom_program.cpp (the escape hatch).
  ExprGraph g;
  ExprRef a = g.Input("A", /*grid=*/{4, 4}, /*block_elems=*/{64, 64});
  ExprRef b = g.Input("B", {4, 4}, {64, 64});
  ExprRef c = g.Add(a, b);             // C = A + B    (scratch temporary)
  ExprRef d = g.Input("D", {4, 2}, {64, 64});
  ExprRef e = g.Gemm(c, d);            // E = C D
  g.SetName(c, "C");
  g.SetName(e, "E");
  Workload w = FromExpr("quickstart", g, /*outputs=*/{e});
  w.program.Validate().CheckOK();
  std::printf("%s\n", w.program.ToString().c_str());

  // 2. Optimize: extract dependences + sharing opportunities, search plans.
  OptimizationResult r = Optimize(w.program);
  std::printf("found %zu plans from %zu sharing opportunities "
              "(%.2f s, %lld candidates)\n\n",
              r.plans.size(), r.analysis.sharing.size(), r.optimize_seconds,
              static_cast<long long>(r.candidates_tested));
  for (size_t i = 0; i < r.plans.size(); ++i) {
    const Plan& p = r.plans[i];
    std::printf("  plan %zu: I/O %6.2f MB, mem %6.2f MB  {%s}\n", i,
                p.cost.TotalBytes() / 1e6, p.cost.peak_memory_bytes / 1e6,
                p.DescribeOpportunities(w.program, r.analysis.sharing)
                    .c_str());
  }
  const Plan& best = r.best();
  std::printf("\nbest plan saves %.1f%% of I/O; its loop structure:\n%s\n",
              100.0 * best.cost.SavingsFraction(),
              EmitPseudoCode(w.program, best.schedule).c_str());

  // 3. Execute plan 0 and the best plan against real block stores.
  auto env = NewMemEnv();  // swap for NewPosixEnv() to use real files
  auto run = [&](const Plan& plan, const char* dir) {
    auto rt = OpenStores(env.get(), w.program, dir);
    rt.status().CheckOK();
    InitInputs(w, *rt, /*seed=*/42).CheckOK();
    std::vector<const CoAccess*> q;
    for (int oi : plan.opportunities) {
      q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
    }
    ExecOptions eo;
    eo.memory_cap_bytes = plan.cost.peak_memory_bytes;  // predicted cap
    Executor ex(w.program, rt->raw(), w.kernels, eo);
    auto stats = ex.Run(plan.schedule, q);
    stats.status().CheckOK();
    std::printf("%-6s read %7.3f MB, wrote %7.3f MB, peak mem %7.3f MB\n",
                dir, stats->bytes_read / 1e6, stats->bytes_written / 1e6,
                stats->peak_required_bytes / 1e6);
    return std::move(rt).ValueOrDie();
  };
  Runtime rt0 = run(r.plans[0], "/orig");
  Runtime rtb = run(best, "/best");

  // 4. Verify both plans computed the same E.
  for (int arr : w.output_arrays) {
    auto diff = MaxAbsDifference(w.program.array(arr),
                                 rt0.stores[static_cast<size_t>(arr)].get(),
                                 rtb.stores[static_cast<size_t>(arr)].get());
    if (!diff.ok()) {
      std::fprintf(stderr, "verification read failed on %s: %s\n",
                   w.program.array(arr).name.c_str(),
                   diff.status().ToString().c_str());
      return 1;
    }
    std::printf("output %s max |diff| = %g\n",
                w.program.array(arr).name.c_str(), *diff);
  }
  return 0;
}
