// Ridge regression written as array expressions, end to end:
//
//   beta_l = (X'X + lambda_l I)^-1 X'y     for lambda in {2.5, 9.0}
//
// The point of the expression front end, in one example:
//   * the factory spells the full formula out twice (once per lambda) and
//     hash-consed CSE materializes the shared X'X and X'y exactly once;
//   * every intermediate (X'X, X'y, the regularized matrices, their
//     inverses) is a scratch temporary — non-persistent — so the
//     optimizer's write elision keeps them off disk when the schedule
//     allows;
//   * no kernels are written anywhere: the executor synthesizes them from
//     the statements' typed ops.
#include <cmath>
#include <cstdio>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

int main() {
  using namespace riot;
  // Scale 200: X is 16 blocks of 150 x 15 (2400 observations, 15
  // predictors); y has 2 response columns.
  Workload w = MakeRidge(/*scale=*/200);
  w.program.Validate().CheckOK();
  std::printf("%s\n", w.program.ToString().c_str());
  std::printf("8 statements for two lambdas — X'X and X'y appear once "
              "each (10 without CSE)\n\n");

  OptimizerOptions opts;
  opts.max_combination_size = 3;
  OptimizationResult r = Optimize(w.program, opts);
  const Plan& best = r.best();
  std::printf("best plan {%s}\n",
              best.DescribeOpportunities(w.program, r.analysis.sharing)
                  .c_str());
  std::printf("predicted I/O: %.2f MB (%.2f MB written) vs %.2f MB "
              "(%.2f MB written) unoptimized — the write gap is the "
              "scratch temporaries never touching disk\n\n",
              best.cost.TotalBytes() / 1e6, best.cost.write_bytes / 1e6,
              r.plans[0].cost.TotalBytes() / 1e6,
              r.plans[0].cost.write_bytes / 1e6);

  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/ridge");
  rt.status().CheckOK();
  InitInputs(w, *rt, /*seed=*/2026).CheckOK();
  std::vector<const CoAccess*> q;
  for (int oi : best.opportunities) {
    q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
  }
  ExecOptions eo;
  eo.memory_cap_bytes = best.cost.peak_memory_bytes;
  Executor ex(w.program, rt->raw(), w.kernels, eo);
  auto stats = ex.Run(best.schedule, q);
  stats.status().CheckOK();
  std::printf("executed: read %.2f MB, wrote %.2f MB (predicted %.2f), "
              "peak mem %.2f MB\n\n",
              stats->bytes_read / 1e6, stats->bytes_written / 1e6,
              best.cost.write_bytes / 1e6,
              stats->peak_required_bytes / 1e6);

  // Model summary: coefficient norms shrink as lambda grows.
  for (size_t li = 0; li < w.output_arrays.size(); ++li) {
    const int arr = w.output_arrays[li];
    const ArrayInfo& info = w.program.array(arr);
    auto beta = ReadWholeArray(info, rt->stores[static_cast<size_t>(arr)]
                                         .get());
    if (!beta.ok()) {
      std::fprintf(stderr, "failed to read %s back: %s\n",
                   info.name.c_str(), beta.status().ToString().c_str());
      return 1;
    }
    double norm = 0;
    for (double v : *beta) norm += v * v;
    std::printf("lambda %s: ||beta|| = %.5f\n", li == 0 ? "2.5" : "9.0",
                std::sqrt(norm));
  }
  return 0;
}
