// Two matrix multiplications sharing a common input (paper Section 6.2):
//   C = A B;  E = A D
// Shows how the optimal plan flips between configurations — the paper's
// headline argument for automatic, cost-based I/O optimization — and how a
// memory cap changes the chosen plan.
#include <cstdio>

#include "core/optimizer.h"
#include "ops/workload.h"

int main() {
  using namespace riot;
  for (auto config : {TwoMatMulConfig::kConfigA, TwoMatMulConfig::kConfigB}) {
    Workload w = MakeTwoMatMul(config, /*scale=*/1);  // paper-scale analysis
    const char* name = config == TwoMatMulConfig::kConfigA ? "A" : "B";
    OptimizationResult r = Optimize(w.program);
    const Plan& best = r.best();
    std::printf("Config %s: %zu plans; best {%s}\n", name, r.plans.size(),
                best.DescribeOpportunities(w.program, r.analysis.sharing)
                    .c_str());
    std::printf("  I/O %0.0f s vs %0.0f s unoptimized (%.1f%% saved), "
                "mem %.0f MB\n",
                best.cost.io_seconds, r.plans[0].cost.io_seconds,
                100.0 * (1.0 - best.cost.io_seconds /
                                   r.plans[0].cost.io_seconds),
                best.cost.peak_memory_bytes / 1e6);

    // Same program under a tight memory cap: the optimizer must pick a
    // different plan ("dependence on parameters", paper Section 1).
    OptimizerOptions tight;
    tight.memory_cap_bytes =
        r.plans[0].cost.peak_memory_bytes + (int64_t{100} << 20);
    OptimizationResult rt = Optimize(w.program, tight);
    const Plan& capped = rt.best();
    std::printf("  with a +100 MB cap: best {%s}, I/O %0.0f s, mem %.0f MB\n\n",
                capped.DescribeOpportunities(w.program, rt.analysis.sharing)
                    .c_str(),
                capped.cost.io_seconds,
                capped.cost.peak_memory_bytes / 1e6);
  }
  return 0;
}
