#!/usr/bin/env bash
# Machine-readable bench trajectory: runs the 2mm (Config A and B) and
# linreg sweeps, the replacement-policy x cap sweep (solo, plus the
# three-session lockstep multi-tenant sweep where the merged ScheduleOpt
# clock must beat LRU at the sub-working-set cap), the
# concurrent-session sweep (sessions x pool cap: per-session + aggregate
# throughput, admission parking, cross-session dedup), the
# expression-built workloads (covariance + ridge: CSE, scratch-write
# elision), and the open-loop serving sweep (Zipf whale-plus-mice traffic
# vs offered load per admission policy: p50/p99/p999, mouse/whale tails,
# admission waits; plus a pool-cap x replacement sweep with per-run
# block_reads / policy_saved_reads / evictions) and drops
# BENCH_<name>.json files (wall, io_seconds, compute_seconds, overlap,
# threads, DAG width, per-policy block_reads/evictions/spills, and
# per-session throughput) into the output directory.
#
# Usage: scripts/bench_json.sh [build_dir] [out_dir]
#   build_dir: CMake build tree with the bench binaries (default: build)
#   out_dir:   where to write BENCH_*.json (default: .)
# RIOT_SCALE shrinks/grows execution scale as usual.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
out_dir="${2:-.}"

if [[ ! -x "${build_dir}/bench_fig4_2mm_a" ]]; then
  echo "bench binaries missing; build first: cmake --build ${build_dir} -j" >&2
  exit 1
fi
mkdir -p "${out_dir}"

for bench in fig4_2mm_a fig5_2mm_b fig6_linreg replacement sessions expr serve; do
  bin="${build_dir}/bench_${bench}"
  out="${out_dir}/BENCH_${bench}.json"
  echo "=== ${bench} -> ${out}"
  "${bin}" --json "${out}"
done

# Kernel microbenchmarks (google-benchmark binary, built only when the
# library is present): GFLOP/s for packed vs naive vs scalar GEMM across
# sizes/transposes, elementwise bandwidth, reduction bandwidth. For the
# host's full-ISA numbers, point build_dir at a -DRIOT_NATIVE=ON tree
# (the committed BENCH_kernels.json is a native run; the portable-build
# run is kept as BENCH_kernels_baseline.json).
if [[ -x "${build_dir}/bench_micro" ]]; then
  out="${out_dir}/BENCH_kernels.json"
  echo "=== kernels -> ${out}"
  "${build_dir}/bench_micro" \
    --benchmark_filter='GemmBench|BM_Elementwise|BM_SumSquares' \
    --benchmark_out="${out}" --benchmark_out_format=json
else
  echo "bench_micro not built (google-benchmark missing); skipping BENCH_kernels.json" >&2
fi
echo "wrote: $(ls "${out_dir}"/BENCH_*.json | tr '\n' ' ')"
