#!/usr/bin/env bash
# Proof that the dense kernels autovectorize (ISSUE 6): compiles
# src/kernels/dense.cc standalone at -O3 with the vectorizer's opt-report
# enabled and asserts that each kernel of interest — the GEMM microkernel,
# the elementwise single-pass kernels, and the fixed-lane reduction — has at
# least one vectorized loop reported INSIDE its body (by line range), then
# disassembles the object and asserts packed double-precision SIMD
# arithmetic is actually emitted. Runs twice: baseline x86-64 and, when the
# compiler supports it, -march=native (where the GEMM path must use FMA if
# the host has it).
#
# Usage: scripts/check_vectorization.sh [compiler]   (default: c++)
set -euo pipefail
cd "$(dirname "$0")/.."
CXX="${1:-${CXX:-c++}}"
SRC=src/kernels/dense.cc
tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

# Kernels that MUST vectorize, matched by their defining line in dense.cc.
kernels=(MicroKernel BlockAdd BlockSub BlockScale BlockFusedEval SumSquaresRange)

# start line of a function definition in dense.cc
start_line() { grep -n "^[a-z].* $1(\|^void $1(\|^double $1(" "${SRC}" | head -1 | cut -d: -f1; }
# first closing brace at column 0 after the start line = end of function
end_line() { awk -v s="$1" 'NR > s && /^}/ { print NR; exit }' "${SRC}"; }

fail=0
check() {
  local label="$1"; shift
  echo "== ${label}: ${CXX} -O3 $*"
  "${CXX}" -std=c++17 -O3 "$@" -Isrc -c "${SRC}" -o "${tmp}/dense.o" \
      -fopt-info-vec-optimized="${tmp}/vec.txt"
  local total
  total=$(grep -c "loop vectorized" "${tmp}/vec.txt" || true)
  echo "   ${total} vectorized loops reported"
  for k in "${kernels[@]}"; do
    local s e n
    s="$(start_line "${k}")"
    e="$(end_line "${s}")"
    n=$(awk -F: -v s="${s}" -v e="${e}" \
        '/loop vectorized/ && $2+0 >= s && $2+0 <= e' "${tmp}/vec.txt" |
        wc -l)
    if [[ "${n}" -ge 1 ]]; then
      echo "   ok   ${k} (lines ${s}-${e}): ${n} vectorized loop(s)"
    else
      echo "   FAIL ${k} (lines ${s}-${e}): no vectorized loop reported"
      fail=1
    fi
  done
  objdump -d "${tmp}/dense.o" > "${tmp}/asm.txt"
  if grep -Eq '(v?mulpd|vfmadd[0-9]+pd)' "${tmp}/asm.txt"; then
    echo "   ok   packed double SIMD arithmetic present in object code"
  else
    echo "   FAIL no packed double SIMD arithmetic in object code"
    fail=1
  fi
  if [[ "$*" == *native* ]] && grep -q '^flags.* fma ' /proc/cpuinfo 2>/dev/null; then
    if grep -Eq 'vfmadd[0-9]+pd' "${tmp}/asm.txt"; then
      echo "   ok   native build uses FMA"
    else
      echo "   FAIL host has FMA but native build emits none"
      fail=1
    fi
  fi
}

check "baseline x86-64"
if "${CXX}" -march=native -x c++ -c -o /dev/null /dev/null 2>/dev/null; then
  check "host-native" -march=native
else
  echo "== host-native: compiler rejects -march=native; skipped"
fi

if [[ "${fail}" -ne 0 ]]; then
  echo "vectorization check FAILED"
  exit 1
fi
echo "vectorization check passed"
