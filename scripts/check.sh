#!/usr/bin/env bash
# Tier-1 verification matrix: build + ctest in Debug and Release, mirroring
# .github/workflows/ci.yml for machines without Actions. The fast suite
# excludes stress-labeled soaks; pass --stress to run those too (Release),
# mirroring the CI stress job.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 2)"
run_stress=0
[[ "${1:-}" == "--stress" ]] && run_stress=1

for build_type in Debug Release; do
  dir="build-${build_type,,}"
  echo "=== ${build_type} ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}"
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" -LE stress
done

# Static-analysis gate, mirroring the CI static-analysis job. The
# plan-integrity linter runs everywhere; the Clang legs (thread-safety
# annotations as errors, clang-tidy) need a Clang toolchain and are
# skipped with a notice when one is not installed.
echo "=== static analysis ==="
./build-release/riot_lint --seeds 25
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-clang -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DRIOT_THREAD_SAFETY=ON \
    -DRIOT_BUILD_BENCHES=OFF -DRIOT_BUILD_EXAMPLES=OFF
  cmake --build build-clang -j "${jobs}"
  if command -v clang-tidy >/dev/null 2>&1; then
    find src -name '*.cc' -print0 | sort -z | \
      xargs -0 clang-tidy -p build-clang --quiet
  else
    echo "clang-tidy not installed; skipping (CI runs it)"
  fi
else
  echo "clang not installed; skipping thread-safety/clang-tidy legs (CI runs them)"
fi
if [[ "${run_stress}" == "1" ]]; then
  echo "=== stress (Release) ==="
  ctest --test-dir build-release --output-on-failure -j "${jobs}" -L stress
fi
echo "All checks passed."
