#!/usr/bin/env bash
# Tier-1 verification matrix: build + ctest in Debug and Release, mirroring
# .github/workflows/ci.yml for machines without Actions.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 2)"

for build_type in Debug Release; do
  dir="build-${build_type,,}"
  echo "=== ${build_type} ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}"
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
done
echo "All checks passed."
