#!/usr/bin/env bash
# Tier-1 verification matrix: build + ctest in Debug and Release, mirroring
# .github/workflows/ci.yml for machines without Actions. The fast suite
# excludes stress-labeled soaks; pass --stress to run those too (Release),
# mirroring the CI stress job.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 2)"
run_stress=0
[[ "${1:-}" == "--stress" ]] && run_stress=1

for build_type in Debug Release; do
  dir="build-${build_type,,}"
  echo "=== ${build_type} ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE="${build_type}"
  cmake --build "${dir}" -j "${jobs}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" -LE stress
done
if [[ "${run_stress}" == "1" ]]; then
  echo "=== stress (Release) ==="
  ctest --test-dir build-release --output-on-failure -j "${jobs}" -L stress
fi
echo "All checks passed."
