#include "exec/kernel_synthesis.h"

#include "kernels/dense.h"
#include "util/logging.h"

namespace riot {

namespace {

// Whether this iteration accumulates into the output (reduction carry) or
// initializes it. Mirrors the guard lowering put on the op's `acc` read:
// active exactly when iter[reduction_iter] > 0.
bool Accumulates(const StatementOp& op, const std::vector<int64_t>& iter) {
  return op.reduction_iter >= 0 &&
         iter[static_cast<size_t>(op.reduction_iter)] > 0;
}

}  // namespace

StatementKernel SynthesizeKernel(const StatementOp& op) {
  RIOT_CHECK_GE(op.out, 0) << "op without an output access";
  RIOT_CHECK_GE(op.a, 0) << "op without a first operand";
  switch (op.kind) {
    case StatementOp::Kind::kAdd:
      RIOT_CHECK_GE(op.b, 0);
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockAdd(*v[static_cast<size_t>(op.a)],
                 *v[static_cast<size_t>(op.b)],
                 v[static_cast<size_t>(op.out)]);
      };
    case StatementOp::Kind::kSub:
      RIOT_CHECK_GE(op.b, 0);
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockSub(*v[static_cast<size_t>(op.a)],
                 *v[static_cast<size_t>(op.b)],
                 v[static_cast<size_t>(op.out)]);
      };
    case StatementOp::Kind::kScale:
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockScale(*v[static_cast<size_t>(op.a)], op.alpha,
                   v[static_cast<size_t>(op.out)]);
      };
    case StatementOp::Kind::kAddDiag:
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockAddDiag(*v[static_cast<size_t>(op.a)], op.alpha,
                     v[static_cast<size_t>(op.out)]);
      };
    case StatementOp::Kind::kGemm:
      RIOT_CHECK_GE(op.b, 0);
      return [op](const std::vector<int64_t>& iter,
                  const std::vector<DenseView*>& v) {
        BlockGemm(*v[static_cast<size_t>(op.a)], op.trans_a,
                  *v[static_cast<size_t>(op.b)], op.trans_b,
                  v[static_cast<size_t>(op.out)], Accumulates(op, iter),
                  op.alpha);
      };
    case StatementOp::Kind::kInverse:
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockInverse(*v[static_cast<size_t>(op.a)],
                     v[static_cast<size_t>(op.out)])
            .CheckOK();
      };
    case StatementOp::Kind::kSumSquares:
      return [op](const std::vector<int64_t>& iter,
                  const std::vector<DenseView*>& v) {
        DenseView* out = v[static_cast<size_t>(op.out)];
        if (!Accumulates(op, iter)) BlockFillConst(out, 0.0);
        // Row 0 of the output block carries the running column sums of
        // squares (the result array has 1-row blocks), so the vectorized
        // column-reduction kernel can accumulate straight into it.
        const DenseView& e = *v[static_cast<size_t>(op.a)];
        if (out->rows == 1) {
          BlockColumnSumSquares(e, out->data);
        } else {
          for (int64_t c = 0; c < e.cols; ++c) {
            const DenseView col{e.data + c * e.rows, e.rows, 1};
            out->At(0, c) += BlockSumSquares(col);
          }
        }
      };
    case StatementOp::Kind::kInput:
      break;
  }
  RIOT_CHECK(false) << "no kernel for op kind "
                    << StatementOpKindName(op.kind);
  return {};
}

}  // namespace riot
