#include "exec/kernel_synthesis.h"

#include "ir/scalar_ops.h"
#include "kernels/dense.h"
#include "util/logging.h"

namespace riot {

namespace {

// Whether this iteration accumulates into the output (reduction carry) or
// initializes it. Mirrors the guard lowering put on the op's `acc` read:
// active exactly when iter[reduction_iter] > 0.
bool Accumulates(const StatementOp& op, const std::vector<int64_t>& iter) {
  return op.reduction_iter >= 0 &&
         iter[static_cast<size_t>(op.reduction_iter)] > 0;
}

// Compile a fused statement's tape once: resolve scalar-fn ids to pointers
// and access indices to dense input slots, producing the executable FusedOp
// program BlockFusedEval interprets. `slots[s]` is the access index whose
// view feeds input slot s.
struct CompiledTape {
  std::vector<FusedOp> ops;
  std::vector<int> slots;
};

CompiledTape CompileTape(const StatementOp& op) {
  RIOT_CHECK(!op.tape.empty()) << "fused op without a tape";
  RIOT_CHECK_LE(op.tape.size(), static_cast<size_t>(kMaxFusedTapeOps));
  CompiledTape ct;
  for (const TapeOp& t : op.tape) {
    FusedOp f;
    f.b = t.b;
    f.alpha = t.alpha;
    switch (t.code) {
      case TapeOp::Code::kLoad: {
        f.code = FusedOp::Code::kLoad;
        int slot = -1;
        for (size_t s = 0; s < ct.slots.size(); ++s) {
          if (ct.slots[s] == t.a) slot = static_cast<int>(s);
        }
        if (slot < 0) {
          ct.slots.push_back(t.a);
          slot = static_cast<int>(ct.slots.size()) - 1;
        }
        f.a = slot;
        break;
      }
      case TapeOp::Code::kAdd:
        f.code = FusedOp::Code::kAdd;
        f.a = t.a;
        break;
      case TapeOp::Code::kSub:
        f.code = FusedOp::Code::kSub;
        f.a = t.a;
        break;
      case TapeOp::Code::kScale:
        f.code = FusedOp::Code::kScale;
        f.a = t.a;
        break;
      case TapeOp::Code::kMap:
        f.code = FusedOp::Code::kMap;
        f.a = t.a;
        f.map_fn = ScalarFnById(t.scalar_fn).map;
        RIOT_CHECK(f.map_fn != nullptr) << "tape map op with non-map fn";
        break;
      case TapeOp::Code::kZip:
        f.code = FusedOp::Code::kZip;
        f.a = t.a;
        f.zip_fn = ScalarFnById(t.scalar_fn).zip;
        RIOT_CHECK(f.zip_fn != nullptr) << "tape zip op with non-zip fn";
        break;
    }
    ct.ops.push_back(f);
  }
  return ct;
}

}  // namespace

StatementKernel SynthesizeKernel(const StatementOp& op) {
  RIOT_CHECK_GE(op.out, 0) << "op without an output access";
  RIOT_CHECK_GE(op.a, 0) << "op without a first operand";
  switch (op.kind) {
    case StatementOp::Kind::kAdd:
      RIOT_CHECK_GE(op.b, 0);
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockAdd(*v[static_cast<size_t>(op.a)],
                 *v[static_cast<size_t>(op.b)],
                 v[static_cast<size_t>(op.out)]);
      };
    case StatementOp::Kind::kSub:
      RIOT_CHECK_GE(op.b, 0);
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockSub(*v[static_cast<size_t>(op.a)],
                 *v[static_cast<size_t>(op.b)],
                 v[static_cast<size_t>(op.out)]);
      };
    case StatementOp::Kind::kScale:
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockScale(*v[static_cast<size_t>(op.a)], op.alpha,
                   v[static_cast<size_t>(op.out)]);
      };
    case StatementOp::Kind::kAddDiag:
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockAddDiag(*v[static_cast<size_t>(op.a)], op.alpha,
                     v[static_cast<size_t>(op.out)]);
      };
    case StatementOp::Kind::kGemm:
      RIOT_CHECK_GE(op.b, 0);
      return [op](const std::vector<int64_t>& iter,
                  const std::vector<DenseView*>& v) {
        BlockGemm(*v[static_cast<size_t>(op.a)], op.trans_a,
                  *v[static_cast<size_t>(op.b)], op.trans_b,
                  v[static_cast<size_t>(op.out)], Accumulates(op, iter),
                  op.alpha);
      };
    case StatementOp::Kind::kInverse:
      return [op](const std::vector<int64_t>&,
                  const std::vector<DenseView*>& v) {
        BlockInverse(*v[static_cast<size_t>(op.a)],
                     v[static_cast<size_t>(op.out)])
            .CheckOK();
      };
    case StatementOp::Kind::kSumSquares:
      return [op](const std::vector<int64_t>& iter,
                  const std::vector<DenseView*>& v) {
        DenseView* out = v[static_cast<size_t>(op.out)];
        if (!Accumulates(op, iter)) BlockFillConst(out, 0.0);
        // Row 0 of the output block carries the running column sums of
        // squares (the result array has 1-row blocks), so the vectorized
        // column-reduction kernel can accumulate straight into it.
        const DenseView& e = *v[static_cast<size_t>(op.a)];
        if (out->rows == 1) {
          BlockColumnSumSquares(e, out->data);
        } else {
          for (int64_t c = 0; c < e.cols; ++c) {
            const DenseView col{e.data + c * e.rows, e.rows, 1};
            out->At(0, c) += BlockSumSquares(col);
          }
        }
      };
    case StatementOp::Kind::kMap: {
      ScalarMapFn fn = ScalarFnById(op.scalar_fn).map;
      RIOT_CHECK(fn != nullptr) << "kMap with non-map scalar fn";
      return [op, fn](const std::vector<int64_t>&,
                      const std::vector<DenseView*>& v) {
        BlockMap(fn, *v[static_cast<size_t>(op.a)],
                 v[static_cast<size_t>(op.out)]);
      };
    }
    case StatementOp::Kind::kZip: {
      RIOT_CHECK_GE(op.b, 0);
      ScalarZipFn fn = ScalarFnById(op.scalar_fn).zip;
      RIOT_CHECK(fn != nullptr) << "kZip with non-zip scalar fn";
      return [op, fn](const std::vector<int64_t>&,
                      const std::vector<DenseView*>& v) {
        BlockZip(fn, *v[static_cast<size_t>(op.a)],
                 *v[static_cast<size_t>(op.b)],
                 v[static_cast<size_t>(op.out)]);
      };
    }
    case StatementOp::Kind::kFused: {
      CompiledTape ct = CompileTape(op);
      return [ct = std::move(ct), out_idx = op.out](
                 const std::vector<int64_t>&,
                 const std::vector<DenseView*>& v) {
        const double* inputs[kMaxFusedTapeOps];
        for (size_t s = 0; s < ct.slots.size(); ++s) {
          inputs[s] = v[static_cast<size_t>(ct.slots[s])]->data;
        }
        DenseView* out = v[static_cast<size_t>(out_idx)];
        BlockFusedEval(ct.ops.data(), static_cast<int>(ct.ops.size()),
                       inputs, out->data, out->elems());
      };
    }
    case StatementOp::Kind::kInput:
      break;
  }
  RIOT_CHECK(false) << "no kernel for op kind "
                    << StatementOpKindName(op.kind);
  return {};
}

}  // namespace riot
