// The execution engine: interprets an optimized plan (schedule + realized
// sharing set) against on-disk block stores, with a capped buffer pool.
//
// This plays the role of the paper's generated C code plus injected I/O
// management (Section 5.5): statement instances run in scheduled order; the
// executor fulfills each block access "either by blocks already buffered in
// memory or by I/O", retains shared blocks until their reuse, skips write
// I/O for W->W-saved and elided writes, and displaces unneeded buffers.
//
// Execution is a two-stage pipeline over the plan's block access script
// (core/access_plan.h): a prefetcher walks the script up to
// ExecOptions::pipeline_depth groups ahead of the kernels, issuing
// asynchronous reads through an I/O worker pool, while the consumer stage
// runs kernels against completed frames. The optimizer's perfect
// foreknowledge of the block access sequence is what makes the prefetch
// deterministic — no heuristics, no speculation. pipeline_depth = 0
// degrades to the fully synchronous engine bit-for-bit.
#ifndef RIOTSHARE_EXEC_EXECUTOR_H_
#define RIOTSHARE_EXEC_EXECUTOR_H_

#include <functional>
#include <vector>

#include "analysis/coaccess.h"
#include "core/plan_realization.h"
#include "ir/program.h"
#include "ir/schedule.h"
#include "kernels/dense.h"
#include "storage/buffer_pool.h"

namespace riot {

/// \brief In-memory compute for one statement instance. `views` is indexed
/// by access index; an entry is nullptr when the access's guard excludes the
/// current iteration. The kernel may branch on `iter` (e.g. initialize an
/// accumulator when the reduction variable is 0).
using StatementKernel = std::function<void(
    const std::vector<int64_t>& iter, const std::vector<DenseView*>& views)>;

enum class ExecMode {
  /// Realize exactly the plan's sharing set: saved reads come from memory,
  /// everything else from disk (paper Section 5.3 semantics). Default.
  kPlanExact,
  /// Ablation: ignore the plan's sharing; serve any read opportunistically
  /// from whatever the LRU buffer pool happens to hold under the cap. This
  /// models database-style buffer-pool sharing, which the paper argues is
  /// "low-level, opportunistic, and extremely sensitive to ... the
  /// replacement policy" (Section 2).
  kOpportunisticCache,
};

struct ExecOptions {
  int64_t memory_cap_bytes = int64_t{1} << 40;
  ExecMode mode = ExecMode::kPlanExact;
  /// When true, a saved read missing from the pool aborts (plan bug); when
  /// false it falls back to a disk read.
  bool strict_sharing = true;
  /// Lookahead of the prefetching pipeline, in schedule groups: the
  /// prefetcher walks the plan's block access script up to this many groups
  /// ahead of the kernels, issuing asynchronous disk reads so I/O overlaps
  /// compute. 0 (default) disables the pipeline and reproduces the
  /// synchronous engine bit-for-bit — same I/O counts, same pool behavior.
  /// Ignored (treated as 0) under kOpportunisticCache, which has no plan
  /// foreknowledge to prefetch from.
  int pipeline_depth = 0;
  /// I/O worker threads servicing prefetch reads when pipeline_depth >= 1.
  int io_threads = 2;
  /// Max bytes of prefetched lookahead resident at once. 0 = auto: half
  /// the cap headroom above the largest single-instance footprint.
  /// Prefetch never violates memory_cap_bytes regardless of this value.
  int64_t prefetch_budget_bytes = 0;
};

struct ExecStats {
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t block_reads = 0;
  int64_t block_writes = 0;
  double io_seconds = 0.0;       // wall time inside block store calls
  double compute_seconds = 0.0;  // wall time inside kernels
  double wall_seconds = 0.0;
  /// Peak of pinned+retained bytes: the plan's true memory requirement
  /// (comparable to the cost model's prediction).
  int64_t peak_required_bytes = 0;
  /// Reads served by an adopted prefetched frame (pipeline_depth >= 1).
  int64_t prefetch_hits = 0;
  /// Prefetched blocks canceled under memory pressure or never consumed.
  int64_t prefetch_wasted = 0;
  /// I/O + compute time hidden by the pipeline:
  /// max(0, io_seconds + compute_seconds - wall_seconds).
  double overlap_seconds = 0.0;
  BufferPoolStats pool;
};

class Executor {
 public:
  /// `stores` and `kernels` are indexed by array id / statement id.
  Executor(const Program& program, std::vector<BlockStore*> stores,
           std::vector<StatementKernel> kernels, ExecOptions options = {});

  /// Runs the program under `schedule`, exploiting exactly `realized`.
  Result<ExecStats> Run(const Schedule& schedule,
                        const std::vector<const CoAccess*>& realized);

 private:
  const Program& prog_;
  std::vector<BlockStore*> stores_;
  std::vector<StatementKernel> kernels_;
  ExecOptions opts_;
};

}  // namespace riot

#endif  // RIOTSHARE_EXEC_EXECUTOR_H_
