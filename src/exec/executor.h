// The execution engine: interprets an optimized plan (schedule + realized
// sharing set) against on-disk block stores, with a capped buffer pool.
//
// This plays the role of the paper's generated C code plus injected I/O
// management (Section 5.5): statement instances run in scheduled order; the
// executor fulfills each block access "either by blocks already buffered in
// memory or by I/O", retains shared blocks until their reuse, skips write
// I/O for W->W-saved and elided writes, and displaces unneeded buffers.
//
// Two orthogonal forms of overlap, both derived from the optimizer's
// perfect foreknowledge of the block access sequence — no heuristics, no
// speculation:
//
//   * I/O pipeline (ExecOptions::pipeline_depth): a prefetcher walks the
//     plan's block access script (core/access_plan.h) up to `depth` groups
//     ahead of the kernels, issuing asynchronous reads through an I/O
//     worker pool while kernels run against completed frames. Depth 0
//     degrades to the fully synchronous engine bit-for-bit.
//
//   * Parallel kernel dispatch (ExecOptions::exec_threads): the script is
//     lifted to a statement-instance dependence DAG (BuildInstanceDag) and
//     ready instances are dispatched onto a pool of kernel workers,
//     smallest scheduled position first. Workers acquire all of an
//     instance's frames, run the kernel, perform the write-through, then
//     release — so any interleaving the scheduler picks is a linear
//     extension of the DAG and produces bit-for-bit the serial outputs.
//     exec_threads = 1 (the default) runs the classic serial engine
//     unchanged. With exec_threads > 1 the engine dedupes physically
//     redundant reads (a non-saved read of a block still resident is
//     served from the frame instead of re-touching disk), so I/O *counts*
//     may come in under the cost model's serial prediction; outputs are
//     unchanged. Parallel execution may transiently need more memory than
//     the serial peak (out-of-order completions pin and retain early);
//     memory-starved instances park and retry rather than fail, but a cap
//     at exactly the serial peak is only guaranteed for exec_threads = 1.
#ifndef RIOTSHARE_EXEC_EXECUTOR_H_
#define RIOTSHARE_EXEC_EXECUTOR_H_

#include <functional>
#include <vector>

#include "analysis/coaccess.h"
#include "core/plan_realization.h"
#include "ir/program.h"
#include "ir/schedule.h"
#include "kernels/dense.h"
#include "storage/buffer_pool.h"

namespace riot {

class IoPool;
class StoreMutexMap;
struct AccessScript;
struct InstanceDag;

/// \brief Multi-tenant execution context, provided by the session runtime
/// (ops/session_runtime.h) when several programs run concurrently over one
/// shared BufferPool. It gives a run:
///   * a budget ledger (`account`) — frames this run pins or retains are
///     charged against the session's slice of the pool cap, and a fetch
///     past the budget parks and retries instead of eating into other
///     tenants' slices;
///   * a pool-id remap (`pool_array_ids`) — program array ids translate
///     into a pool-global namespace where two sessions over the same
///     BlockStore share frames (cross-session read dedup) while distinct
///     stores can never collide;
///   * shared I/O workers (`io` + `io_channel`) — prefetch reads are
///     submitted on the session's own completion channel, and the pool's
///     round-robin dispatch keeps one tenant's lookahead from starving
///     another's;
///   * cross-session store serialization (`store_mutexes`) for runs
///     without an I/O pool of their own.
/// A session run executes on the serial engine (the sessions themselves
/// are the parallelism), serves resident blocks from memory like the
/// parallel engine's read dedup, and coalesces concurrent loads of one
/// block across sessions onto a single disk read.
struct SessionBinding {
  PoolAccount* account = nullptr;
  /// Program array id -> shared-pool array id; empty = identity.
  std::vector<int> pool_array_ids;
  IoPool* io = nullptr;
  int io_channel = 0;
  StoreMutexMap* store_mutexes = nullptr;
  /// Total seconds a starved fetch parks-and-retries (waiting out other
  /// tenants' transient pressure) before the run fails with the pool's
  /// kResourceExhausted.
  double park_timeout_seconds = 10.0;
};

/// \brief In-memory compute for one statement instance. `views` is indexed
/// by access index; an entry is nullptr when the access's guard excludes the
/// current iteration. The kernel may branch on `iter` (e.g. initialize an
/// accumulator when the reduction variable is 0).
using StatementKernel = std::function<void(
    const std::vector<int64_t>& iter, const std::vector<DenseView*>& views)>;

enum class ExecMode {
  /// Realize exactly the plan's sharing set: saved reads come from memory,
  /// everything else from disk (paper Section 5.3 semantics). Default.
  kPlanExact,
  /// Ablation: ignore the plan's sharing; serve any read opportunistically
  /// from whatever the LRU buffer pool happens to hold under the cap. This
  /// models database-style buffer-pool sharing, which the paper argues is
  /// "low-level, opportunistic, and extremely sensitive to ... the
  /// replacement policy" (Section 2).
  kOpportunisticCache,
};

struct ExecOptions {
  int64_t memory_cap_bytes = int64_t{1} << 40;
  ExecMode mode = ExecMode::kPlanExact;
  /// When true, a saved read missing from the pool aborts (plan bug); when
  /// false it falls back to a disk read.
  bool strict_sharing = true;
  /// Lookahead of the prefetching pipeline, in schedule groups: the
  /// prefetcher walks the plan's block access script up to this many groups
  /// ahead of the kernels, issuing asynchronous disk reads so I/O overlaps
  /// compute. 0 (default) disables the pipeline and reproduces the
  /// synchronous engine bit-for-bit — same I/O counts, same pool behavior.
  /// Ignored (treated as 0) under kOpportunisticCache, which has no plan
  /// foreknowledge to prefetch from.
  int pipeline_depth = 0;
  /// I/O worker threads servicing prefetch reads when pipeline_depth >= 1.
  int io_threads = 2;
  /// Max bytes of prefetched lookahead resident at once. 0 = auto: half
  /// the cap headroom above the largest per-worker instance footprint.
  /// Prefetch never violates the memory cap regardless of this value.
  int64_t prefetch_budget_bytes = 0;
  /// Kernel worker threads. 1 (default) = the serial engine, bit-for-bit.
  /// > 1 dispatches DAG-ready statement instances onto this many workers
  /// (composable with pipeline_depth: the prefetcher keeps feeding frames
  /// while workers drain them). Ignored (treated as 1) under
  /// kOpportunisticCache — the ablation is defined against the serial
  /// reference order.
  int exec_threads = 1;
  /// Eviction policy for the run's private buffer pool (kLru reproduces
  /// the historical pool bit-for-bit; a shared_pool keeps its own policy).
  /// kScheduleOpt is Belady/MIN driven by the plan's access script: the
  /// executor binds every block's future-use positions before the run and
  /// advances the policy's clock as instances complete — per position in
  /// the serial engine, by completed frontier in the parallel one (a
  /// linear extension of the DAG, so the clock never runs ahead of an
  /// incomplete instance). It applies under both execution modes (the
  /// schedule, and hence the access order, is exact even when the sharing
  /// set is ignored). Concurrent runs over a shared pool each bind their
  /// own plan: ScheduleOpt merges the bound plans' future uses through
  /// per-plan normalized clocks (see storage/replacement.h); with no
  /// bound plan at all it is exact LRU.
  ReplacementKind replacement = ReplacementKind::kLru;
  /// Hand dirty eviction victims (spills) to the run's I/O workers
  /// (write-behind) instead of writing back synchronously under the pool
  /// lock, with a write barrier covering later reads/prefetches of an
  /// in-flight block. Active only when the run has an IoPool
  /// (pipeline_depth >= 1). Plan-exact and opportunistic runs are
  /// write-through and never dirty frames, so this matters when a shared
  /// pool carries dirty frames from outside the run; forcing it off (or
  /// depth 0) reproduces the historical synchronous spill path exactly.
  bool writeback_async = true;
  /// Optional caller-owned pool to run against instead of a private one
  /// (memory_cap_bytes is then ignored; the pool's own cap governs). Lets
  /// tests assert pin hygiene after a run — success or error — and is the
  /// seam future multi-query batching will share frames through. The run
  /// releases every retention it created before returning; frames linger
  /// only as clean, evictable cache, and a failed load's garbage frame is
  /// discarded rather than cached. Lingering frames mirror the stores as
  /// of the last run: a caller that mutates the stores out-of-band between
  /// runs must use a fresh pool (or FlushAll), since the parallel engine
  /// serves resident frames without re-touching disk.
  BufferPool* shared_pool = nullptr;
  /// Multi-tenant context (see SessionBinding). When set the run executes
  /// on the serial engine regardless of exec_threads, never reconfigures
  /// the shared pool's prefetch budget or write-behind (the session
  /// runtime owns pool-wide knobs), and dedupes reads off residency like
  /// the parallel engine, so I/O counts may come in under the serial
  /// cost-model prediction. Outputs are unchanged. The binding must
  /// outlive the run.
  const SessionBinding* session = nullptr;
  /// Static plan-integrity lint (analysis/program_lint.h): the constructor
  /// lints the program and Run() lints every lowered plan before touching
  /// the stores, failing with kInvalidArgument and the full LintReport on
  /// any finding. Pure analysis — execution order, I/O, and outputs are
  /// bit-for-bit unchanged when the lint passes. Defaults on in debug
  /// builds, off in release (the checks are O(instances^2) on small
  /// streams).
#ifndef NDEBUG
  bool lint = true;
#else
  bool lint = false;
#endif
};

struct ExecStats {
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t block_reads = 0;
  int64_t block_writes = 0;
  double io_seconds = 0.0;       // wall time inside block store calls
  double compute_seconds = 0.0;  // wall time inside kernels (summed across
                                 // workers when exec_threads > 1)
  double wall_seconds = 0.0;
  /// Peak of pinned+retained bytes: the plan's true memory requirement
  /// (comparable to the cost model's prediction).
  int64_t peak_required_bytes = 0;
  /// Reads served by an adopted prefetched frame (pipeline_depth >= 1).
  int64_t prefetch_hits = 0;
  /// Prefetched blocks canceled under memory pressure or never consumed.
  int64_t prefetch_wasted = 0;
  /// I/O + compute time hidden by pipelining and/or parallel dispatch:
  /// max(0, io_seconds + compute_seconds - wall_seconds).
  double overlap_seconds = 0.0;
  /// Dependence-DAG levels (exec_threads > 1): the longest chain of
  /// instances — the number of sequential waves a perfectly parallel
  /// machine still executes. 0 in the serial engine (no DAG is built).
  int64_t parallel_groups = 0;
  /// Peak number of instances simultaneously ready or running, observed at
  /// dispatch time (exec_threads > 1): > 1 means the DAG actually exposed
  /// kernel parallelism on this run. 0 in the serial engine.
  int64_t max_ready_width = 0;
  /// Kernel time hidden behind other kernels by multi-threaded dispatch:
  /// max(0, compute_seconds - wall_seconds). 0 in the serial engine.
  double compute_overlap_seconds = 0.0;
  /// Disk reads avoided because the block was still resident when a read
  /// that carries no planned sharing came due: every cache-served read of
  /// the kOpportunisticCache ablation, and the parallel engine's dedupe of
  /// physically redundant reads. 0 in plan-exact serial runs (their read
  /// set is the plan's, independent of residency). The replacement policy
  /// is what moves this number.
  int64_t policy_saved_reads = 0;
  /// Session runs: times a starved fetch parked (budget or transient
  /// cross-tenant pressure) and the wall time spent parked before the
  /// retry succeeded. 0 outside session runs, which fail fast instead.
  int64_t session_parks = 0;
  double session_park_seconds = 0.0;
  /// NOTE: under a shared multi-tenant pool these per-run pool deltas
  /// include concurrent tenants' traffic; per-session I/O counters above
  /// are exact regardless.
  BufferPoolStats pool;
};

class Executor {
 public:
  /// `stores` and `kernels` are indexed by array id / statement id.
  /// `kernels` may be empty (or have empty entries): statements without an
  /// explicit kernel must carry a typed StatementOp, from which the kernel
  /// is synthesized (exec/kernel_synthesis.h). A supplied lambda wins over
  /// synthesis — the escape hatch for computations no op kind describes.
  Executor(const Program& program, std::vector<BlockStore*> stores,
           std::vector<StatementKernel> kernels, ExecOptions options = {});

  /// Runs the program under `schedule`, exploiting exactly `realized`.
  /// Guarantees, success or error: all kernel and I/O workers joined, no
  /// frame left pinned, no retention left behind (relevant when
  /// ExecOptions::shared_pool is set).
  Result<ExecStats> Run(const Schedule& schedule,
                        const std::vector<const CoAccess*>& realized);

 private:
  Result<ExecStats> RunSerial(const Schedule& schedule,
                              const std::vector<const CoAccess*>& realized);
  Result<ExecStats> RunParallel(const Schedule& schedule,
                                const std::vector<const CoAccess*>& realized);
  /// Script-level lint of the lowered plan (ExecOptions::lint); OK when
  /// linting is off or the plan is clean.
  Status LintLoweredPlan(const RealizedPlan& rp, const AccessScript& script,
                         const InstanceDag* dag) const;

  const Program& prog_;
  std::vector<BlockStore*> stores_;
  std::vector<StatementKernel> kernels_;
  ExecOptions opts_;
  /// Program-level lint finding from the constructor; surfaced by Run().
  Status lint_status_;
};

}  // namespace riot

#endif  // RIOTSHARE_EXEC_EXECUTOR_H_
