#include "exec/verify.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace riot {

Result<std::vector<double>> ReadWholeArray(const ArrayInfo& info,
                                           BlockStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("ReadWholeArray: null store for " +
                                   info.name);
  }
  const int64_t per_block = info.ElemsPerBlock();
  const int64_t num_blocks = info.NumBlocks();
  if (per_block <= 0 || num_blocks < 0) {
    return Status::InvalidArgument(
        "ReadWholeArray: degenerate shape for " + info.name + " (" +
        std::to_string(per_block) + " elems/block, " +
        std::to_string(num_blocks) + " blocks)");
  }
  if (num_blocks > 0 &&
      per_block > std::numeric_limits<int64_t>::max() / num_blocks) {
    return Status::OutOfRange("ReadWholeArray: element count overflows for " +
                              info.name);
  }
  std::vector<double> out(static_cast<size_t>(per_block * num_blocks));
  for (int64_t b = 0; b < num_blocks; ++b) {
    // A corrupt or missing block surfaces as Status to the caller; it must
    // never abort the process (multi-tenant runtimes verify concurrently
    // with live sessions).
    RIOT_RETURN_NOT_OK(store->ReadBlock(b, out.data() + b * per_block));
  }
  return out;
}

Result<double> MaxAbsDifference(const ArrayInfo& info, BlockStore* a,
                                BlockStore* b) {
  auto va = ReadWholeArray(info, a);
  if (!va.ok()) return va.status();
  auto vb = ReadWholeArray(info, b);
  if (!vb.ok()) return vb.status();
  const std::vector<double>& xa = *va;
  const std::vector<double>& xb = *vb;
  if (xa.size() != xb.size()) {
    return Status::Internal("MaxAbsDifference: size mismatch for " +
                            info.name);
  }
  double m = 0.0;
  for (size_t i = 0; i < xa.size(); ++i) {
    m = std::max(m, std::fabs(xa[i] - xb[i]));
  }
  return m;
}

Status VerifyBitEqual(const ArrayInfo& info, BlockStore* expected,
                      BlockStore* actual) {
  auto d = MaxAbsDifference(info, expected, actual);
  if (!d.ok()) return d.status();
  if (*d != 0.0) {
    return Status::Internal("output mismatch on " + info.name +
                            ": max |diff| = " + std::to_string(*d));
  }
  return Status::OK();
}

}  // namespace riot
