#include "exec/verify.h"

#include <cmath>

#include "util/logging.h"

namespace riot {

Result<std::vector<double>> ReadWholeArray(const ArrayInfo& info,
                                           BlockStore* store) {
  const int64_t per_block = info.ElemsPerBlock();
  std::vector<double> out(
      static_cast<size_t>(per_block * info.NumBlocks()));
  for (int64_t b = 0; b < info.NumBlocks(); ++b) {
    RIOT_RETURN_NOT_OK(
        store->ReadBlock(b, out.data() + b * per_block));
  }
  return out;
}

Result<double> MaxAbsDifference(const ArrayInfo& info, BlockStore* a,
                                BlockStore* b) {
  auto va = ReadWholeArray(info, a);
  if (!va.ok()) return va.status();
  auto vb = ReadWholeArray(info, b);
  if (!vb.ok()) return vb.status();
  double m = 0.0;
  for (size_t i = 0; i < va.ValueOrDie().size(); ++i) {
    m = std::max(m, std::fabs((*va)[i] - (*vb)[i]));
  }
  return m;
}

}  // namespace riot
