#include "exec/executor.h"

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <tuple>

#include "core/access_plan.h"
#include "storage/io_pool.h"
#include "util/logging.h"

namespace riot {

namespace {

double Since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Executor::Executor(const Program& program, std::vector<BlockStore*> stores,
                   std::vector<StatementKernel> kernels, ExecOptions options)
    : prog_(program), stores_(std::move(stores)),
      kernels_(std::move(kernels)), opts_(options) {
  RIOT_CHECK_EQ(stores_.size(), prog_.arrays().size());
  RIOT_CHECK_EQ(kernels_.size(), prog_.statements().size());
}

Result<ExecStats> Executor::Run(const Schedule& schedule,
                                const std::vector<const CoAccess*>& realized) {
  auto wall0 = std::chrono::steady_clock::now();
  const bool opportunistic = opts_.mode == ExecMode::kOpportunisticCache;
  // Under the opportunistic-cache ablation the plan's sharing set is
  // deliberately ignored: no saved reads, no retention obligations.
  RealizedPlan rp = RealizePlan(prog_, schedule,
                                opportunistic
                                    ? std::vector<const CoAccess*>{}
                                    : realized);
  const AccessScript script = BuildAccessScript(prog_, rp);
  BufferPool pool(opts_.memory_cap_bytes);
  ExecStats stats;

  // ------------------------------------------------- pipeline stage 1 state
  // The prefetcher walks the access script up to `depth` groups ahead of
  // the consumer, reserving kPrefetching frames and handing the reads to
  // the I/O pool. Depth 0 keeps all of this dormant and the engine is the
  // classic synchronous interpreter. Opportunistic mode has no trusted
  // access plan, so it never prefetches.
  const int depth = opportunistic ? 0 : std::max(0, opts_.pipeline_depth);
  using Key = std::pair<int, int64_t>;  // (array id, linear block)
  struct Pending {
    BufferPool::Frame* frame = nullptr;
    bool done = false;
    Status status;
  };
  std::unique_ptr<IoPool> io;  // declared after `pool`: joins before frames die
  std::map<Key, Pending> pending;
  std::map<uint64_t, Key> key_of_tag;
  std::deque<Key> issue_order;
  uint64_t next_tag = 0;
  size_t cursor = 0;  // next script record the prefetcher considers

  if (depth > 0) {
    io = std::make_unique<IoPool>(std::max(1, opts_.io_threads));
    int64_t budget = opts_.prefetch_budget_bytes;
    if (budget <= 0) {
      budget = std::max<int64_t>(
          0, (opts_.memory_cap_bytes - script.max_instance_bytes) / 2);
    }
    pool.SetPrefetchBudget(budget);
  }

  // Blocks until the prefetch for `key` has completed (draining other
  // completions encountered on the way).
  auto wait_pending = [&](const Key& key) -> Pending& {
    Pending& want = pending.at(key);
    while (!want.done) {
      IoPool::Completion c = io->WaitCompletion();
      auto it = key_of_tag.find(c.tag);
      RIOT_CHECK(it != key_of_tag.end());
      Pending& p = pending.at(it->second);
      p.done = true;
      p.status = std::move(c.status);
      pool.CompletePrefetch(p.frame);
      key_of_tag.erase(it);
    }
    return want;
  };

  // Cancels the issued-but-unconsumed prefetch for `key`: waits for its
  // I/O, drops the frame, and accounts the disk read that already happened.
  auto cancel_key = [&](const Key& key) {
    Pending& p = wait_pending(key);
    if (p.status.ok()) {
      stats.bytes_read +=
          static_cast<int64_t>(p.frame->data.size());
      ++stats.block_reads;
    }
    pool.AbandonPrefetch(p.frame);
    ++stats.prefetch_wasted;
    pending.erase(key);
  };

  // Cancels one outstanding prefetch (most recently issued first) to
  // relieve memory pressure; false when none remain.
  auto cancel_one = [&]() -> bool {
    while (!issue_order.empty()) {
      Key key = issue_order.back();
      issue_order.pop_back();
      if (pending.count(key) == 0) continue;  // already adopted
      cancel_key(key);
      return true;
    }
    return false;
  };

  // Stage 1: issue asynchronous reads for every upcoming non-saved read in
  // the lookahead window. A record whose earlier same-block write has not
  // been performed yet (true dependence — reading disk now would observe
  // stale data) is deferred and retried once the consumer passes the
  // write; records behind it keep flowing. A pool decline for room/budget
  // pauses issuance until the consumer frees frames.
  enum class Issue { kHandled, kDepBlocked, kNoRoom };
  std::deque<size_t> deferred;  // dep-blocked record indices
  auto try_issue = [&](const BlockAccessRecord& rec,
                       size_t cur_pos) -> Issue {
    if (rec.pos <= cur_pos) return Issue::kHandled;  // consumer got there
    if (rec.dep_pos >= 0 && static_cast<size_t>(rec.dep_pos) >= cur_pos) {
      return Issue::kDepBlocked;
    }
    Key key{rec.array_id, rec.block};
    if (pending.count(key) > 0) {
      return Issue::kHandled;  // one in-flight read per block is enough
    }
    BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
    BufferPool::Frame* f =
        pool.TryStartPrefetch(rec.array_id, rec.block, rec.bytes, store);
    if (f == nullptr) {
      if (pool.Probe(rec.array_id, rec.block) != nullptr) {
        return Issue::kHandled;  // resident; consumer serves it directly
      }
      return Issue::kNoRoom;
    }
    uint64_t tag = next_tag++;
    key_of_tag[tag] = key;
    pending.emplace(key, Pending{f, false, Status::OK()});
    issue_order.push_back(key);
    io->ReadBlockAsync(store, rec.block, f->data.data(), tag);
    return Issue::kHandled;
  };
  auto advance_prefetcher = [&](size_t cur_group, size_t cur_pos) {
    for (auto it = deferred.begin(); it != deferred.end();) {
      Issue res = try_issue(script.records[*it], cur_pos);
      if (res == Issue::kNoRoom) return;
      if (res == Issue::kDepBlocked) {
        ++it;
      } else {
        it = deferred.erase(it);
      }
    }
    while (cursor < script.records.size()) {
      const BlockAccessRecord& rec = script.records[cursor];
      if (rec.group > cur_group + static_cast<size_t>(depth)) break;
      if (rec.type != AccessType::kRead || rec.saved) {
        ++cursor;  // writes and saved reads never touch disk ahead of time
        continue;
      }
      Issue res = try_issue(rec, cur_pos);
      if (res == Issue::kNoRoom) break;
      if (res == Issue::kDepBlocked) deferred.push_back(cursor);
      ++cursor;
    }
  };

  // Synchronous store calls on the consumer thread, serialized against
  // in-flight worker reads on the same store (store implementations are
  // not required to be thread-safe; LAB-tree mutates its node cache even
  // on reads). Time spent waiting for the store is queueing, not disk
  // time, so the timer starts inside the lock.
  auto sync_store_op = [&](BlockStore* store, auto&& op) -> Status {
    std::shared_ptr<std::mutex> serial =
        io != nullptr ? io->store_mutex(store) : nullptr;
    std::unique_lock<std::mutex> lock;
    if (serial != nullptr) lock = std::unique_lock<std::mutex>(*serial);
    auto t0 = std::chrono::steady_clock::now();
    Status st = op();
    stats.io_seconds += Since(t0);
    return st;
  };
  auto sync_read = [&](BlockStore* store, int64_t block,
                       void* buf) -> Status {
    return sync_store_op(store,
                         [&] { return store->ReadBlock(block, buf); });
  };
  auto sync_write = [&](BlockStore* store, int64_t block,
                        const void* buf) -> Status {
    return sync_store_op(store,
                         [&] { return store->WriteBlock(block, buf); });
  };

  // Fetch that relieves prefetch memory pressure instead of failing: the
  // consumer always wins over lookahead.
  auto fetch_frame = [&](int array_id, int64_t block, int64_t bytes,
                         BlockStore* store) -> Result<BufferPool::Frame*> {
    for (;;) {
      auto f = pool.Fetch(array_id, block, bytes, store, /*load=*/false);
      if (f.ok() ||
          f.status().code() != StatusCode::kResourceExhausted) {
        return f;
      }
      if (!cancel_one()) return f;
    }
  };

  // ------------------------------------------------- pipeline stage 2 loop
  size_t cur_group = 0;
  std::vector<BufferPool::Frame*> frames;
  std::vector<DenseView> views;
  std::vector<DenseView*> view_ptrs;
  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    const auto& inst = rp.order[pos];
    if (rp.group_of[pos] != cur_group) {
      cur_group = rp.group_of[pos];
      pool.ReleaseRetainedBefore(static_cast<int64_t>(cur_group));
    }
    if (depth > 0) advance_prefetcher(cur_group, pos);
    const Statement& st = prog_.statement(inst.stmt_id);
    const size_t na = st.accesses.size();
    frames.assign(na, nullptr);
    views.assign(na, DenseView{});
    view_ptrs.assign(na, nullptr);

    // Serve this instance's accesses off the script (reads first, then the
    // write — a read may populate the frame the write access aliases).
    const auto [rec_begin, rec_end] = script.per_pos[pos];
    for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
      const BlockAccessRecord& rec = script.records[ri];
      const size_t ai = static_cast<size_t>(rec.access_idx);
      const ArrayInfo& arr = prog_.array(rec.array_id);
      BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
      Key key{rec.array_id, rec.block};
      const bool has_pending = depth > 0 && pending.count(key) > 0;
      BufferPool::Frame* frame = nullptr;

      if (rec.type == AccessType::kRead && !rec.saved && has_pending) {
        // The prefetcher issued this very disk read; adopt its frame.
        Pending& p = wait_pending(key);
        if (!p.status.ok()) return p.status;
        frame = pool.AdoptPrefetched(p.frame);
        pending.erase(key);
        ++stats.prefetch_hits;
        stats.bytes_read += rec.bytes;
        ++stats.block_reads;
      } else {
        // Any other access colliding with an in-flight prefetch resolves
        // it first (defensive; the script's dependence positions make this
        // unreachable for writes).
        if (has_pending) cancel_key(key);
        if (rec.type == AccessType::kRead) {
          // A read is served from memory ONLY when the plan realizes a
          // sharing opportunity for it (Section 5.3: a schedule may
          // "accidentally" enable more sharing, but generated code
          // exploits exactly Q). Everything else is a disk read, even on
          // a pool hit.
          bool saved = rec.saved;
          BufferPool::Frame* present = pool.Probe(rec.array_id, rec.block);
          if (opportunistic) {
            // Whatever the pool still holds is reusable; correctness is
            // preserved because performed writes are write-through, so any
            // cached frame matches disk.
            saved = present != nullptr;
          }
          if (saved && present == nullptr && opts_.strict_sharing) {
            return Status::Internal(
                "saved read not in memory: " + st.name + " access " +
                std::to_string(ai) + " (plan/realization bug)");
          }
          auto f = fetch_frame(rec.array_id, rec.block, rec.bytes, store);
          if (!f.ok()) return f.status();
          frame = *f;
          if (!saved || present == nullptr) {
            RIOT_RETURN_NOT_OK(
                sync_read(store, rec.block, frame->data.data()));
            stats.bytes_read += rec.bytes;
            ++stats.block_reads;
          }
        } else {
          // Write target: no disk read; a guarded read access of the same
          // block (accumulation) was fetched in the read pass if live.
          auto f = fetch_frame(rec.array_id, rec.block, rec.bytes, store);
          if (!f.ok()) return f.status();
          frame = *f;
        }
      }
      frames[ai] = frame;
      RIOT_CHECK_EQ(arr.ndim(), 2u) << "executor requires 2-D arrays";
      views[ai] = DenseView{reinterpret_cast<double*>(frame->data.data()),
                            arr.block_elems[0], arr.block_elems[1]};
      view_ptrs[ai] = &views[ai];
      if (rec.retain_until_group >= 0) {
        pool.Retain(frame, rec.retain_until_group);
      }
    }

    // Compute.
    {
      auto t0 = std::chrono::steady_clock::now();
      kernels_[static_cast<size_t>(inst.stmt_id)](inst.iter, view_ptrs);
      stats.compute_seconds += Since(t0);
    }

    // Write-out.
    for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
      const BlockAccessRecord& rec = script.records[ri];
      if (rec.type != AccessType::kWrite) continue;
      const size_t ai = static_cast<size_t>(rec.access_idx);
      if (frames[ai] == nullptr) continue;
      if (!rec.saved) {
        BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
        RIOT_RETURN_NOT_OK(sync_write(store, frames[ai]->block,
                                      frames[ai]->data.data()));
        stats.bytes_written += rec.bytes;
        ++stats.block_writes;
      }
      // Either way the in-memory copy is authoritative; retention (set
      // above) protects it for pending saved reads.
      frames[ai]->dirty = false;
    }

    // Measure the requirement while the instance's frames are still pinned,
    // then release them.
    stats.peak_required_bytes =
        std::max(stats.peak_required_bytes, pool.PinnedOrRetainedBytes());
    for (size_t ai = 0; ai < na; ++ai) {
      if (frames[ai] != nullptr) pool.Unpin(frames[ai]);
    }
  }

  // Drain any lookahead the plan ended ahead of.
  while (cancel_one()) {
  }
  if (io != nullptr) {
    stats.io_seconds += io->read_seconds();
    io.reset();  // joins the workers
  }

  stats.pool = pool.stats();
  stats.wall_seconds = Since(wall0);
  stats.overlap_seconds = std::max(
      0.0, stats.io_seconds + stats.compute_seconds - stats.wall_seconds);
  return stats;
}

}  // namespace riot
