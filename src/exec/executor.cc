#include "exec/executor.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <tuple>

#include "analysis/program_lint.h"
#include "core/access_plan.h"
#include "exec/kernel_synthesis.h"
#include "storage/io_pool.h"
#include "util/logging.h"
#include "util/thread_annotations.h"

namespace riot {

namespace {

double Since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void AtomicMax(std::atomic<int64_t>* target, int64_t value) {
  int64_t cur = target->load();
  while (cur < value && !target->compare_exchange_weak(cur, value)) {
  }
}

// Saved/elided writes legitimately leave frame contents different from
// disk; retention covers every in-run consumer, but such frames must not
// outlive the run as apparently clean cache in a shared pool. The script
// knows them statically. `remap` translates program array ids to the
// pool's namespace (identity outside session runs).
void DropDivergentWrites(const AccessScript& script, BufferPool* pool,
                         const std::function<int(int)>& remap) {
  for (const BlockAccessRecord& rec : script.records) {
    if (rec.type == AccessType::kWrite && rec.saved) {
      pool->Drop(remap(rec.array_id), rec.block);
    }
  }
}

// Per-run view of the pool counters: a shared pool accumulates across
// runs, so each run reports the delta from its own start snapshot.
BufferPoolStats DiffPoolStats(const BufferPoolStats& end,
                              const BufferPoolStats& start) {
  BufferPoolStats d;
  d.hits = end.hits - start.hits;
  d.misses = end.misses - start.misses;
  d.evictions = end.evictions - start.evictions;
  d.dirty_writebacks = end.dirty_writebacks - start.dirty_writebacks;
  d.async_writebacks = end.async_writebacks - start.async_writebacks;
  d.writeback_stall_seconds =
      end.writeback_stall_seconds - start.writeback_stall_seconds;
  d.prefetch_issued = end.prefetch_issued - start.prefetch_issued;
  d.prefetch_declined = end.prefetch_declined - start.prefetch_declined;
  d.prefetch_abandoned = end.prefetch_abandoned - start.prefetch_abandoned;
  d.coalesced_loads = end.coalesced_loads - start.coalesced_loads;
  return d;
}

}  // namespace

Executor::Executor(const Program& program, std::vector<BlockStore*> stores,
                   std::vector<StatementKernel> kernels, ExecOptions options)
    : prog_(program), stores_(std::move(stores)),
      kernels_(std::move(kernels)), opts_(options) {
  RIOT_CHECK_EQ(stores_.size(), prog_.arrays().size());
  // Op-specced statements are the default path: any statement without an
  // explicit kernel (missing entry or empty function) gets one synthesized
  // from its typed StatementOp. A supplied hand-written lambda always wins
  // (the escape hatch for statements no op kind describes).
  if (kernels_.empty()) kernels_.resize(prog_.statements().size());
  RIOT_CHECK_EQ(kernels_.size(), prog_.statements().size());
  for (size_t s = 0; s < kernels_.size(); ++s) {
    if (kernels_[s]) continue;
    const Statement& st = prog_.statement(static_cast<int>(s));
    RIOT_CHECK(st.op.has_value())
        << "statement " << st.name << " has neither a kernel nor an op spec";
    kernels_[s] = SynthesizeKernel(*st.op);
  }
  if (opts_.lint) {
    auto lint = LintProgram(prog_);
    if (!lint.ok()) {
      lint_status_ = lint.status();
    } else if (!lint->ok()) {
      lint_status_ = Status::InvalidArgument(lint->ToString());
    }
  }
}

Status Executor::LintLoweredPlan(const RealizedPlan& rp,
                                 const AccessScript& script,
                                 const InstanceDag* dag) const {
  if (!opts_.lint) return Status::OK();
  const InstanceDag local = dag == nullptr ? BuildInstanceDag(script)
                                           : InstanceDag{};
  auto lint = LintScript(prog_, rp, script, dag != nullptr ? *dag : local);
  RIOT_RETURN_NOT_OK(lint.status());
  if (!lint->ok()) return Status::InvalidArgument(lint->ToString());
  return Status::OK();
}

Result<ExecStats> Executor::Run(const Schedule& schedule,
                                const std::vector<const CoAccess*>& realized) {
  RIOT_RETURN_NOT_OK(lint_status_);
  // The opportunistic-cache ablation is defined against the serial
  // reference order, and session runs are serial by contract (the
  // sessions themselves are the parallelism); everything else may go
  // parallel.
  if (opts_.exec_threads > 1 && opts_.session == nullptr &&
      opts_.mode != ExecMode::kOpportunisticCache) {
    return RunParallel(schedule, realized);
  }
  return RunSerial(schedule, realized);
}

// ---------------------------------------------------------------------------
// Serial engine (exec_threads = 1): one thread walks the scheduled instance
// stream; the optional prefetch pipeline issues asynchronous reads ahead of
// it. This is the reference semantics every parallel configuration must
// reproduce bit-for-bit.
// ---------------------------------------------------------------------------
Result<ExecStats> Executor::RunSerial(
    const Schedule& schedule, const std::vector<const CoAccess*>& realized) {
  auto wall0 = std::chrono::steady_clock::now();
  const bool opportunistic = opts_.mode == ExecMode::kOpportunisticCache;
  // Under the opportunistic-cache ablation the plan's sharing set is
  // deliberately ignored: no saved reads, no retention obligations.
  RealizedPlan rp = RealizePlan(prog_, schedule,
                                opportunistic
                                    ? std::vector<const CoAccess*>{}
                                    : realized);
  const AccessScript script = BuildAccessScript(prog_, rp);
  RIOT_RETURN_NOT_OK(LintLoweredPlan(rp, script, nullptr));
  BufferPool local_pool(opts_.memory_cap_bytes,
                        MakeReplacementPolicy(opts_.replacement));
  BufferPool& pool = opts_.shared_pool != nullptr ? *opts_.shared_pool
                                                  : local_pool;
  const BufferPoolStats pool_stats0 = pool.stats();

  // ------------------------------------------------ multi-tenant context
  // A session run translates array ids into the shared pool's namespace,
  // charges its budget account, and coalesces/dedupes reads across
  // sessions; everything degrades to the identity for solo runs.
  const SessionBinding* session = opts_.session;
  PoolAccount* account = session != nullptr ? session->account : nullptr;
  auto pid = [session](int array_id) {
    return session != nullptr && !session->pool_array_ids.empty()
               ? session->pool_array_ids[static_cast<size_t>(array_id)]
               : array_id;
  };

  // Belady-style replacement needs the plan's future: bind every block's
  // use positions and advance the policy clock per instance below. The
  // schedule (and hence the access order) is exact in both modes. Binds
  // nest across sessions; with several tenants bound at once the policy
  // merges every plan's future uses into one normalized timeline
  // (see storage/replacement.h).
  const bool schedule_policy =
      pool.replacement_kind() == ReplacementKind::kScheduleOpt;
  std::shared_ptr<const BlockUseMap> bound_uses;
  if (schedule_policy) {
    if (session != nullptr && !session->pool_array_ids.empty()) {
      auto remapped = std::make_shared<BlockUseMap>();
      for (const auto& [key, positions] : script.block_uses) {
        (*remapped)[{pid(key.first), key.second}] = positions;
      }
      bound_uses = std::move(remapped);
    } else {
      bound_uses = std::make_shared<BlockUseMap>(script.block_uses);
    }
    pool.BindUsePlan(bound_uses);
  }
  ExecStats stats;

  // ------------------------------------------------- pipeline stage 1 state
  // The prefetcher walks the access script up to `depth` groups ahead of
  // the consumer, reserving kPrefetching frames and handing the reads to
  // the I/O pool. Depth 0 keeps all of this dormant and the engine is the
  // classic synchronous interpreter. Opportunistic mode has no trusted
  // access plan, so it never prefetches.
  const int depth = opportunistic ? 0 : std::max(0, opts_.pipeline_depth);
  using Key = std::pair<int, int64_t>;  // (array id, linear block)
  struct Pending {
    BufferPool::Frame* frame = nullptr;
    bool done = false;
    Status status;
  };
  std::unique_ptr<IoPool> owned_io;  // declared after `pool`: joins before
                                     // frames die
  IoPool* io = nullptr;  // owned_io.get(), or the session's shared workers
  int io_channel = 0;
  std::map<Key, Pending> pending;
  std::map<uint64_t, Key> key_of_tag;
  std::deque<Key> issue_order;
  uint64_t next_tag = 0;
  size_t cursor = 0;  // next script record the prefetcher considers

  if (depth > 0) {
    if (session != nullptr && session->io != nullptr) {
      // Shared I/O workers: submit on the session's channel; pool-wide
      // knobs (prefetch budget, write-behind) belong to the runtime.
      io = session->io;
      io_channel = session->io_channel;
    } else {
      owned_io = std::make_unique<IoPool>(std::max(1, opts_.io_threads));
      io = owned_io.get();
      int64_t budget = opts_.prefetch_budget_bytes;
      if (budget <= 0) {
        budget = std::max<int64_t>(
            0, (pool.cap_bytes() - script.max_instance_bytes) / 2);
      }
      pool.SetPrefetchBudget(budget);
      if (opts_.writeback_async) pool.SetWriteBehind(io);
    }
  }

  // Blocks until the prefetch for `key` has completed (draining other
  // completions encountered on the way).
  auto wait_pending = [&](const Key& key) -> Pending& {
    Pending& want = pending.at(key);
    while (!want.done) {
      IoPool::Completion c = io->WaitCompletion(io_channel);
      auto it = key_of_tag.find(c.tag);
      RIOT_CHECK(it != key_of_tag.end());
      Pending& p = pending.at(it->second);
      p.done = true;
      p.status = std::move(c.status);
      pool.CompletePrefetch(p.frame);
      key_of_tag.erase(it);
    }
    return want;
  };

  // Cancels the issued-but-unconsumed prefetch for `key`: waits for its
  // I/O, drops the frame, and accounts the disk read that already happened.
  auto cancel_key = [&](const Key& key) {
    Pending& p = wait_pending(key);
    if (p.status.ok()) {
      stats.bytes_read +=
          static_cast<int64_t>(p.frame->data.size());
      ++stats.block_reads;
    }
    pool.AbandonPrefetch(p.frame);
    ++stats.prefetch_wasted;
    pending.erase(key);
  };

  // Cancels one outstanding prefetch (most recently issued first) to
  // relieve memory pressure; false when none remain.
  auto cancel_one = [&]() -> bool {
    while (!issue_order.empty()) {
      Key key = issue_order.back();
      issue_order.pop_back();
      if (pending.count(key) == 0) continue;  // already adopted
      cancel_key(key);
      return true;
    }
    return false;
  };

  // Stage 1: issue asynchronous reads for every upcoming non-saved read in
  // the lookahead window. A record whose earlier same-block write has not
  // been performed yet (true dependence — reading disk now would observe
  // stale data) is deferred and retried once the consumer passes the
  // write; records behind it keep flowing. A pool decline for room/budget
  // pauses issuance until the consumer frees frames.
  enum class Issue { kHandled, kDepBlocked, kNoRoom };
  std::deque<size_t> deferred;  // dep-blocked record indices
  auto try_issue = [&](const BlockAccessRecord& rec,
                       size_t cur_pos) -> Issue {
    if (rec.pos <= cur_pos) return Issue::kHandled;  // consumer got there
    if (rec.dep_pos >= 0 && static_cast<size_t>(rec.dep_pos) >= cur_pos) {
      return Issue::kDepBlocked;
    }
    Key key{pid(rec.array_id), rec.block};
    if (pending.count(key) > 0) {
      return Issue::kHandled;  // one in-flight read per block is enough
    }
    BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
    BufferPool::Frame* f =
        pool.TryStartPrefetch(pid(rec.array_id), rec.block, rec.bytes, store);
    if (f == nullptr) {
      if (pool.Probe(pid(rec.array_id), rec.block) != nullptr) {
        return Issue::kHandled;  // resident; consumer serves it directly
      }
      return Issue::kNoRoom;
    }
    uint64_t tag = next_tag++;
    key_of_tag[tag] = key;
    pending.emplace(key, Pending{f, false, Status::OK()});
    issue_order.push_back(key);
    io->ReadBlockAsync(store, rec.block, f->data.data(), tag, io_channel);
    return Issue::kHandled;
  };
  auto advance_prefetcher = [&](size_t cur_group, size_t cur_pos) {
    for (auto it = deferred.begin(); it != deferred.end();) {
      Issue res = try_issue(script.records[*it], cur_pos);
      if (res == Issue::kNoRoom) return;
      if (res == Issue::kDepBlocked) {
        ++it;
      } else {
        it = deferred.erase(it);
      }
    }
    while (cursor < script.records.size()) {
      const BlockAccessRecord& rec = script.records[cursor];
      if (rec.group > cur_group + static_cast<size_t>(depth)) break;
      if (rec.type != AccessType::kRead || rec.saved) {
        ++cursor;  // writes and saved reads never touch disk ahead of time
        continue;
      }
      Issue res = try_issue(rec, cur_pos);
      if (res == Issue::kNoRoom) break;
      if (res == Issue::kDepBlocked) deferred.push_back(cursor);
      ++cursor;
    }
  };

  // Synchronous store calls on the consumer thread, serialized against
  // in-flight worker reads on the same store (store implementations are
  // not required to be thread-safe; LAB-tree mutates its node cache even
  // on reads). Time spent waiting for the store is queueing, not disk
  // time, so the timer starts inside the lock.
  auto sync_store_op = [&](BlockStore* store, auto&& op) -> Status {
    std::shared_ptr<std::mutex> serial =
        io != nullptr
            ? io->store_mutex(store)
            : (session != nullptr && session->store_mutexes != nullptr
                   ? session->store_mutexes->mutex_for(store)
                   : nullptr);
    std::unique_lock<std::mutex> lock;
    if (serial != nullptr) lock = std::unique_lock<std::mutex>(*serial);
    auto t0 = std::chrono::steady_clock::now();
    Status st = op();
    stats.io_seconds += Since(t0);
    return st;
  };
  auto sync_read = [&](BlockStore* store, int64_t block,
                       void* buf) -> Status {
    return sync_store_op(store,
                         [&] { return store->ReadBlock(block, buf); });
  };
  auto sync_write = [&](BlockStore* store, int64_t block,
                        const void* buf) -> Status {
    return sync_store_op(store,
                         [&] { return store->WriteBlock(block, buf); });
  };

  // Fetch that relieves prefetch memory pressure instead of failing: the
  // consumer always wins over lookahead. Session runs additionally
  // park-and-retry through kResourceExhausted — another tenant's transient
  // pressure (its prefetch lookahead, a not-yet-released retention)
  // resolves as that tenant progresses — and only give up after the
  // binding's park timeout. `coalesce` marks read fetches whose miss this
  // caller will fill (MarkLoaded) and whose hit may join another
  // session's in-flight load.
  auto fetch_frame = [&](int pool_array_id, int64_t block, int64_t bytes,
                         BlockStore* store, bool coalesce,
                         bool* resident_out) -> Result<BufferPool::Frame*> {
    double parked = 0.0;
    double backoff = 0.0005;
    for (;;) {
      auto f = pool.Fetch(pool_array_id, block, bytes, store, /*load=*/false,
                          resident_out, account,
                          coalesce && session != nullptr);
      if (f.ok() ||
          f.status().code() != StatusCode::kResourceExhausted) {
        return f;
      }
      if (cancel_one()) continue;
      if (session == nullptr || parked >= session->park_timeout_seconds) {
        return f;
      }
      ++stats.session_parks;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      parked += backoff;
      stats.session_park_seconds += backoff;
      backoff = std::min(backoff * 2, 0.05);
    }
  };

  // ------------------------------------------------- pipeline stage 2 loop
  // The body returns early on error; the cleanup below the lambda then
  // unpins whatever the failed instance had acquired, drains the pipeline,
  // and releases retentions, so even an error leaves `pool` clean (the
  // shared_pool contract).
  std::vector<BufferPool::Frame*> frames;
  Status run_status = [&]() -> Status {
    size_t cur_group = 0;
    std::vector<DenseView> views;
    std::vector<DenseView*> view_ptrs;
    for (size_t pos = 0; pos < rp.order.size(); ++pos) {
      const auto& inst = rp.order[pos];
      if (rp.group_of[pos] != cur_group) {
        cur_group = rp.group_of[pos];
        pool.ReleaseRetainedBefore(static_cast<int64_t>(cur_group), account);
      }
      if (schedule_policy) {
        pool.AdvanceReplacementClock(bound_uses, static_cast<int64_t>(pos));
      }
      if (depth > 0) advance_prefetcher(cur_group, pos);
      const Statement& st = prog_.statement(inst.stmt_id);
      const size_t na = st.accesses.size();
      frames.assign(na, nullptr);
      views.assign(na, DenseView{});
      view_ptrs.assign(na, nullptr);

      // Serve this instance's accesses off the script (reads first, then
      // the write — a read may populate the frame the write access
      // aliases).
      const auto [rec_begin, rec_end] = script.per_pos[pos];
      for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
        const BlockAccessRecord& rec = script.records[ri];
        const size_t ai = static_cast<size_t>(rec.access_idx);
        const ArrayInfo& arr = prog_.array(rec.array_id);
        BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
        Key key{pid(rec.array_id), rec.block};
        const bool has_pending = depth > 0 && pending.count(key) > 0;
        BufferPool::Frame* frame = nullptr;

        if (rec.type == AccessType::kRead && !rec.saved && has_pending &&
            (account == nullptr ||
             account->charged_bytes.load() + rec.bytes <=
                 account->budget_bytes)) {
          // The prefetcher issued this very disk read; adopt its frame
          // (only if the session budget admits it — adoption itself never
          // refuses, so an over-budget adoption falls through to the
          // parking fetch path below after canceling the prefetch).
          Pending& p = wait_pending(key);
          if (!p.status.ok()) return p.status;
          frame = pool.AdoptPrefetched(p.frame, account);
          pending.erase(key);
          ++stats.prefetch_hits;
          stats.bytes_read += rec.bytes;
          ++stats.block_reads;
        } else {
          // Any other access colliding with an in-flight prefetch resolves
          // it first (defensive; the script's dependence positions make
          // this unreachable for writes).
          if (has_pending) cancel_key(key);
          if (rec.type == AccessType::kRead && session != nullptr) {
            // Multi-tenant read: residency is decided atomically with the
            // pin (a Probe could race another tenant's eviction), resident
            // frames are served from memory — write-through keeps clean
            // frames equal to disk, and another session may have loaded
            // the block already (cross-session dedup) — and misses load
            // under the pool's coalescing latch so two sessions fetching
            // one block share a single disk read.
            bool resident = false;
            auto f = fetch_frame(key.first, rec.block, rec.bytes, store,
                                 /*coalesce=*/true, &resident);
            if (!f.ok()) return f.status();
            frame = *f;
            if (!resident) {
              if (rec.saved && opts_.strict_sharing) {
                // Created zeroed by this Fetch, never loaded; Discard also
                // wakes any coalesced waiter (none can exist for a
                // session-private retained block, but stay defensive).
                pool.Discard(frame, account);
                return Status::Internal(
                    "saved read not in memory: " + st.name + " access " +
                    std::to_string(ai) + " (plan/realization bug)");
              }
              Status rst = sync_read(store, rec.block, frame->data.data());
              if (!rst.ok()) {
                // Garbage frame: wakes coalesced waiters, which bail out.
                pool.Discard(frame, account);
                return rst;
              }
              pool.MarkLoaded(frame);
              stats.bytes_read += rec.bytes;
              ++stats.block_reads;
            } else if (!rec.saved) {
              ++stats.policy_saved_reads;  // cross-session residency win
            }
          } else if (rec.type == AccessType::kRead) {
            // A read is served from memory ONLY when the plan realizes a
            // sharing opportunity for it (Section 5.3: a schedule may
            // "accidentally" enable more sharing, but generated code
            // exploits exactly Q). Everything else is a disk read, even on
            // a pool hit.
            bool saved = rec.saved;
            BufferPool::Frame* present = pool.Probe(rec.array_id, rec.block);
            if (opportunistic) {
              // Whatever the pool still holds is reusable; correctness is
              // preserved because performed writes are write-through, so
              // any cached frame matches disk. The replacement policy is
              // what decides residency here — count its wins.
              saved = present != nullptr;
              if (saved) ++stats.policy_saved_reads;
            }
            if (saved && present == nullptr && opts_.strict_sharing) {
              return Status::Internal(
                  "saved read not in memory: " + st.name + " access " +
                  std::to_string(ai) + " (plan/realization bug)");
            }
            auto f = fetch_frame(rec.array_id, rec.block, rec.bytes, store,
                                 /*coalesce=*/false, nullptr);
            if (!f.ok()) return f.status();
            frame = *f;
            if (!saved || present == nullptr) {
              Status rst = sync_read(store, rec.block, frame->data.data());
              if (!rst.ok()) {
                // The frame now holds zeros/garbage; it must not linger in
                // the pool as apparently clean cache (shared_pool reuse).
                pool.Discard(frame, account);
                return rst;
              }
              stats.bytes_read += rec.bytes;
              ++stats.block_reads;
            }
          } else {
            // Write target: no disk read; a guarded read access of the
            // same block (accumulation) was fetched in the read pass if
            // live. Session runs still fetch with coalescing so a write
            // colliding with another tenant's in-flight prefetch or load
            // of the block waits it out instead of CHECK-crashing or
            // tearing the buffer (only reachable when tenants race reads
            // against writes on one shared store — outputs are then
            // order-dependent by nature, but never torn). A created
            // frame is marked loaded at once: nothing will fill it.
            bool resident = false;
            auto f = fetch_frame(key.first, rec.block, rec.bytes, store,
                                 /*coalesce=*/session != nullptr, &resident);
            if (!f.ok()) return f.status();
            frame = *f;
            if (session != nullptr && !resident) pool.MarkLoaded(frame);
          }
        }
        frames[ai] = frame;
        RIOT_CHECK_EQ(arr.ndim(), 2u) << "executor requires 2-D arrays";
        RIOT_DCHECK(IsAligned(frame->data.data()))
            << "kernel view over unaligned frame";
        views[ai] = DenseView{reinterpret_cast<double*>(frame->data.data()),
                              arr.block_elems[0], arr.block_elems[1]};
        view_ptrs[ai] = &views[ai];
        if (rec.retain_until_group >= 0) {
          pool.Retain(frame, rec.retain_until_group, account);
        }
      }

      // Compute.
      {
        auto t0 = std::chrono::steady_clock::now();
        kernels_[static_cast<size_t>(inst.stmt_id)](inst.iter, view_ptrs);
        stats.compute_seconds += Since(t0);
      }

      // Write-out.
      for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
        const BlockAccessRecord& rec = script.records[ri];
        if (rec.type != AccessType::kWrite) continue;
        const size_t ai = static_cast<size_t>(rec.access_idx);
        if (frames[ai] == nullptr) continue;
        if (!rec.saved) {
          BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
          Status wst = sync_write(store, frames[ai]->block,
                                  frames[ai]->data.data());
          if (!wst.ok()) {
            // The failed (and any not-yet-performed) write frame holds
            // kernel output that never reached disk; it must not linger
            // as apparently clean cache (shared_pool reuse).
            for (uint32_t rj = ri; rj < rec_end; ++rj) {
              const BlockAccessRecord& rw = script.records[rj];
              const size_t aj = static_cast<size_t>(rw.access_idx);
              if (rw.type != AccessType::kWrite || frames[aj] == nullptr) {
                continue;
              }
              pool.Discard(frames[aj], account);
              frames[aj] = nullptr;
            }
            return wst;
          }
          stats.bytes_written += rec.bytes;
          ++stats.block_writes;
        }
        // Either way the in-memory copy is authoritative; retention (set
        // above) protects it for pending saved reads. Cleared under the
        // pool lock: concurrent tenants' eviction scans read the flag.
        pool.MarkClean(frames[ai]);
      }

      // Measure the requirement while the instance's frames are still
      // pinned, then release them. A session reports its own charged
      // bytes (the shared pool's global requirement mixes tenants).
      stats.peak_required_bytes = std::max(
          stats.peak_required_bytes,
          account != nullptr
              ? account->peak_charged_bytes.load(std::memory_order_relaxed)
              : pool.PinnedOrRetainedBytes());
      for (size_t ai = 0; ai < na; ++ai) {
        if (frames[ai] != nullptr) {
          pool.Unpin(frames[ai], account);
          frames[ai] = nullptr;
        }
      }
    }
    return Status::OK();
  }();

  // Unified cleanup (success and error): unpin anything a failed instance
  // still holds, drain the lookahead the plan ended ahead of, land every
  // write-behind, join the I/O workers, and release every retention this
  // run created.
  for (BufferPool::Frame* f : frames) {
    if (f != nullptr) pool.Unpin(f, account);
  }
  while (cancel_one()) {
  }
  if (owned_io != nullptr) {
    if (opts_.writeback_async) {
      Status wb = pool.DrainWritebacks();
      pool.SetWriteBehind(nullptr);
      if (run_status.ok() && !wb.ok()) run_status = wb;
    }
    stats.io_seconds += owned_io->read_seconds() + owned_io->write_seconds();
    owned_io.reset();  // joins the workers
  }
  // A session's shared IoPool needs no drain beyond the cancel loop above
  // (its channel is empty) and reports worker time runtime-wide, not here.
  pool.ReleaseRetainedBefore(std::numeric_limits<int64_t>::max(), account);
  DropDivergentWrites(script, &pool, pid);
  if (schedule_policy) pool.UnbindUsePlan(bound_uses);
  // Snapshot the session ledger, then sever the pool's references to it: a
  // shared frame another tenant still holds required would otherwise keep
  // pointing at this (caller-stack) account past the run.
  if (account != nullptr) {
    stats.peak_required_bytes =
        std::max(stats.peak_required_bytes,
                 account->peak_charged_bytes.load(std::memory_order_relaxed));
    pool.DetachAccount(account);
  }
  if (!run_status.ok()) return run_status;

  stats.pool = DiffPoolStats(pool.stats(), pool_stats0);
  stats.wall_seconds = Since(wall0);
  stats.overlap_seconds = std::max(
      0.0, stats.io_seconds + stats.compute_seconds - stats.wall_seconds);
  return stats;
}

// ---------------------------------------------------------------------------
// Parallel engine (exec_threads > 1): the access script is lifted to a
// statement-instance dependence DAG and ready instances are dispatched onto
// a kernel worker pool, smallest scheduled position first. The PR-1
// prefetcher keeps running, gated on *completed* instances instead of a
// serial cursor. Every physical hazard is covered by one of:
//   * DAG edges (RAW/WAR/WAW + saved-read materialization) — orderings,
//   * a per-block load latch — two concurrent readers of one frame load it
//     exactly once,
//   * per-store mutexes — store implementations are single-threaded,
//   * the BufferPool's internal lock — frame table and accounting.
// Memory pressure never deadlocks: a starved instance releases everything
// it pinned and parks; the frontier instance (smallest incomplete position
// — always dispatchable, since edges only point forward) retries until it
// is alone, and only then is ResourceExhausted real.
// ---------------------------------------------------------------------------
Result<ExecStats> Executor::RunParallel(
    const Schedule& schedule, const std::vector<const CoAccess*>& realized) {
  auto wall0 = std::chrono::steady_clock::now();
  RealizedPlan rp = RealizePlan(prog_, schedule, realized);
  const AccessScript script = BuildAccessScript(prog_, rp);
  const InstanceDag dag = BuildInstanceDag(script);
  RIOT_RETURN_NOT_OK(LintLoweredPlan(rp, script, &dag));
  const size_t n = rp.order.size();

  BufferPool local_pool(opts_.memory_cap_bytes,
                        MakeReplacementPolicy(opts_.replacement));
  BufferPool& pool = opts_.shared_pool != nullptr ? *opts_.shared_pool
                                                  : local_pool;
  const BufferPoolStats pool_stats0 = pool.stats();
  // ScheduleOpt clocking under parallel dispatch: advance by the completed
  // frontier (smallest incomplete position) — a linear extension of the
  // DAG, so a use is never declared past while its instance can still run.
  const bool schedule_policy =
      pool.replacement_kind() == ReplacementKind::kScheduleOpt;
  std::shared_ptr<const BlockUseMap> bound_uses;
  if (schedule_policy) {
    bound_uses = std::make_shared<BlockUseMap>(script.block_uses);
    pool.BindUsePlan(bound_uses);
  }
  const int depth = std::max(0, opts_.pipeline_depth);
  const int nworkers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(1, opts_.exec_threads)),
      std::max<size_t>(1, n)));

  ExecStats stats;
  stats.parallel_groups = static_cast<int64_t>(dag.critical_path);

  using Key = std::pair<int, int64_t>;  // (array id, linear block)
  struct Pending {
    BufferPool::Frame* frame = nullptr;
    bool done = false;
    Status status;
  };

  // Per-worker stats merged on join; shared counters for paths that run in
  // arbitrary contexts (prefetch cancelation, end-of-run drain).
  struct LocalStats {
    int64_t bytes_read = 0, bytes_written = 0;
    int64_t block_reads = 0, block_writes = 0;
    int64_t prefetch_hits = 0;
    int64_t policy_saved_reads = 0;
    double io_seconds = 0.0, compute_seconds = 0.0;
  };
  std::atomic<int64_t> canceled_bytes{0}, canceled_reads{0},
      prefetch_wasted{0}, peak_required{0};
  std::atomic<bool> aborting{false};

  // Completion flags are read by the prefetcher and by dependence checks
  // without the scheduler lock.
  std::unique_ptr<std::atomic<bool>[]> completed(
      new std::atomic<bool>[std::max<size_t>(1, n)]);
  for (size_t i = 0; i < n; ++i) completed[i].store(false);
  std::atomic<size_t> group_frontier{0};

  std::unique_ptr<IoPool> io;  // declared after `pool`: joins before frames die
  StoreMutexMap fallback_store_mu;  // store serialization when no IoPool
  if (depth > 0) {
    io = std::make_unique<IoPool>(std::max(1, opts_.io_threads));
    int64_t budget = opts_.prefetch_budget_bytes;
    if (budget <= 0) {
      budget = std::max<int64_t>(
          0, (pool.cap_bytes() -
              static_cast<int64_t>(nworkers) * script.max_instance_bytes) /
                 2);
    }
    pool.SetPrefetchBudget(budget);
    if (opts_.writeback_async) pool.SetWriteBehind(io.get());
  }

  // ----------------------------------------------------- prefetcher state
  // All of it lives under pf.mu. Consumers also hold pf.mu across their
  // pending-table check *and* the subsequent pool Fetch, so the prefetcher
  // can never slip a kPrefetching frame under a consumer between the two.
  struct PrefetchState {
    Mutex mu;
    CondVar cv;
    // One thread at a time sits in WaitCompletion.
    bool draining GUARDED_BY(mu) = false;
    std::map<Key, Pending> pending GUARDED_BY(mu);
    std::map<uint64_t, Key> key_of_tag GUARDED_BY(mu);
    std::deque<Key> issue_order GUARDED_BY(mu);
    // Dep-blocked record indices.
    std::deque<size_t> deferred GUARDED_BY(mu);
    size_t cursor GUARDED_BY(mu) = 0;
    uint64_t next_tag GUARDED_BY(mu) = 0;
  } pf;

  // Load latch: (array, block) entries whose frame a consumer is currently
  // filling from disk. Registered atomically with the creating Fetch
  // (under pf.mu); later readers of the same frame wait here instead of
  // racing the load.
  struct LatchState {
    Mutex mu;
    CondVar cv;
    std::set<Key> loading GUARDED_BY(mu);
  } latch;

  // ------------------------------------------------------ scheduler state
  struct Sched {
    Mutex mu;
    CondVar cv;
    // Smallest scheduled position first.
    std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>>
        ready GUARDED_BY(mu);
    // Memory-starved; re-queued on progress.
    std::vector<size_t> parked GUARDED_BY(mu);
    std::vector<uint32_t> pred_left GUARDED_BY(mu);
    // Incomplete instances per group.
    std::vector<size_t> group_left GUARDED_BY(mu);
    size_t n_done GUARDED_BY(mu) = 0;
    // Smallest incomplete position.
    size_t frontier GUARDED_BY(mu) = 0;
    size_t running GUARDED_BY(mu) = 0;
    uint64_t progress_epoch GUARDED_BY(mu) = 0;
    int64_t max_width GUARDED_BY(mu) = 0;
    bool failed GUARDED_BY(mu) = false;
    Status error GUARDED_BY(mu);
  } sc;
  {
    MutexLock lock(&sc.mu);  // workers not yet spawned; lock for the analysis
    sc.pred_left = dag.pred_count;
    sc.group_left.assign(rp.num_groups, 0);
    for (size_t p = 0; p < n; ++p) {
      ++sc.group_left[rp.group_of[p]];
      if (dag.pred_count[p] == 0) sc.ready.push(p);
    }
  }

  // Registers a terminal error (first one wins) and wakes every waiter so
  // the run unwinds promptly.
  auto fail_run = [&](const Status& st) {
    {
      MutexLock lock(&sc.mu);
      if (!sc.failed) {
        sc.failed = true;
        sc.error = st;
      }
    }
    aborting.store(true);
    sc.cv.NotifyAll();
    latch.cv.NotifyAll();
    pf.cv.NotifyAll();
  };

  auto sync_store_op = [&](BlockStore* store, double* io_acc,
                           auto&& op) -> Status {
    std::shared_ptr<std::mutex> serial = io != nullptr
                                             ? io->store_mutex(store)
                                             : fallback_store_mu.mutex_for(
                                                   store);
    std::lock_guard<std::mutex> lock(*serial);
    auto t0 = std::chrono::steady_clock::now();
    Status st = op();
    *io_acc += Since(t0);
    return st;
  };

  // --- prefetch helpers; callers hold pf.mu through the passed lock ------
  // The `_locked` lambdas run entirely under pf.mu, but receive it through
  // a caller-owned UniqueMutexLock the analysis cannot attribute, so each
  // carries NO_THREAD_SAFETY_ANALYSIS; the callers below are all analyzed.
  // Marks the pending entry a consumed IoPool completion belongs to done.
  auto resolve_completion_locked =
      [&](IoPool::Completion c) NO_THREAD_SAFETY_ANALYSIS {
    auto it = pf.key_of_tag.find(c.tag);
    RIOT_CHECK(it != pf.key_of_tag.end());
    Pending& p = pf.pending.at(it->second);
    p.done = true;
    p.status = std::move(c.status);
    pool.CompletePrefetch(p.frame);
    pf.key_of_tag.erase(it);
  };

  // Waits until the pending entry for `key` is done and returns it, or
  // returns nullptr if another thread resolved (adopted or canceled) the
  // entry while this one waited — concurrent consumers may race for the
  // same block, and the first resolution wins. pf.mu is dropped while
  // sitting in WaitCompletion; only one thread drains at a time.
  auto wait_pending_locked = [&](UniqueMutexLock& l, const Key& key)
      NO_THREAD_SAFETY_ANALYSIS -> Pending* {
    for (;;) {
      auto want = pf.pending.find(key);
      if (want == pf.pending.end()) return nullptr;
      if (want->second.done) return &want->second;
      if (!pf.draining) {
        pf.draining = true;
        l.Unlock();
        IoPool::Completion c = io->WaitCompletion();
        l.Lock();
        pf.draining = false;
        resolve_completion_locked(std::move(c));
        pf.cv.NotifyAll();
      } else {
        pf.cv.Wait(l);
      }
    }
  };

  // False when the entry vanished before this thread could cancel it.
  auto cancel_key_locked = [&](UniqueMutexLock& l, const Key& key)
      NO_THREAD_SAFETY_ANALYSIS -> bool {
    Pending* p = wait_pending_locked(l, key);
    if (p == nullptr) return false;
    if (p->status.ok()) {
      canceled_bytes.fetch_add(static_cast<int64_t>(p->frame->data.size()));
      canceled_reads.fetch_add(1);
    }
    pool.AbandonPrefetch(p->frame);
    prefetch_wasted.fetch_add(1);
    pf.pending.erase(key);
    return true;
  };

  auto cancel_one_locked =
      [&](UniqueMutexLock& l) NO_THREAD_SAFETY_ANALYSIS -> bool {
    while (!pf.issue_order.empty()) {
      Key key = pf.issue_order.back();
      pf.issue_order.pop_back();
      if (pf.pending.count(key) == 0) continue;  // already adopted
      if (cancel_key_locked(l, key)) return true;
    }
    return false;
  };

  enum class Issue { kHandled, kDepBlocked, kNoRoom };
  auto try_issue_locked =
      [&](const BlockAccessRecord& rec) NO_THREAD_SAFETY_ANALYSIS -> Issue {
    if (completed[rec.pos].load()) return Issue::kHandled;
    if (rec.dep_pos >= 0 &&
        !completed[static_cast<size_t>(rec.dep_pos)].load()) {
      return Issue::kDepBlocked;  // producing write not performed yet
    }
    Key key{rec.array_id, rec.block};
    if (pf.pending.count(key) > 0) return Issue::kHandled;
    BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
    BufferPool::Frame* f =
        pool.TryStartPrefetch(rec.array_id, rec.block, rec.bytes, store);
    if (f == nullptr) {
      if (pool.Probe(rec.array_id, rec.block) != nullptr) {
        return Issue::kHandled;  // resident; a consumer serves it directly
      }
      return Issue::kNoRoom;
    }
    uint64_t tag = pf.next_tag++;
    pf.key_of_tag[tag] = key;
    pf.pending.emplace(key, Pending{f, false, Status::OK()});
    pf.issue_order.push_back(key);
    io->ReadBlockAsync(store, rec.block, f->data.data(), tag);
    return Issue::kHandled;
  };

  auto advance_prefetcher = [&]() {
    if (io == nullptr) return;
    UniqueMutexLock l(&pf.mu);
    for (auto it = pf.deferred.begin(); it != pf.deferred.end();) {
      Issue res = try_issue_locked(script.records[*it]);
      if (res == Issue::kNoRoom) return;
      if (res == Issue::kDepBlocked) {
        ++it;
      } else {
        it = pf.deferred.erase(it);
      }
    }
    const size_t gf = group_frontier.load();
    while (pf.cursor < script.records.size()) {
      const BlockAccessRecord& rec = script.records[pf.cursor];
      if (rec.group > gf + static_cast<size_t>(depth)) break;
      if (rec.type != AccessType::kRead || rec.saved) {
        ++pf.cursor;
        continue;
      }
      Issue res = try_issue_locked(rec);
      if (res == Issue::kNoRoom) break;
      if (res == Issue::kDepBlocked) pf.deferred.push_back(pf.cursor);
      ++pf.cursor;
    }
  };

  // --- frame acquisition --------------------------------------------------
  // Returns the pinned frame for one record, fully loaded for reads. A
  // kResourceExhausted status is retryable (the caller rolls back and
  // parks); anything else is terminal.
  // `created_out` (optional) reports whether this call created the frame
  // (pool miss) rather than pinning a pre-existing resident one — the
  // rollback logic may discard only frames the attempt itself created.
  auto acquire_record = [&](const BlockAccessRecord& rec, LocalStats& ls,
                            bool* created_out =
                                nullptr) -> Result<BufferPool::Frame*> {
    if (aborting.load()) {
      return Status::Internal("aborted: concurrent failure");
    }
    if (created_out != nullptr) *created_out = false;
    const Statement& st = prog_.statement(rec.stmt_id);
    BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
    const Key key{rec.array_id, rec.block};
    BufferPool::Frame* frame = nullptr;
    bool resident = false;
    bool must_load = false;
    {
      UniqueMutexLock pl(&pf.mu);
      if (pf.pending.count(key) > 0) {
        if (rec.type == AccessType::kRead && !rec.saved) {
          // The prefetcher issued this very disk read; adopt its frame
          // (unless a racing consumer resolved it first — then the block
          // is simply served through the regular fetch path below).
          Pending* p = wait_pending_locked(pl, key);
          if (p != nullptr) {
            if (!p->status.ok()) return p->status;
            BufferPool::Frame* adopted = pool.AdoptPrefetched(p->frame);
            pf.pending.erase(key);
            ++ls.prefetch_hits;
            ls.bytes_read += rec.bytes;
            ++ls.block_reads;
            return adopted;
          }
        } else {
          // A write or saved read colliding with an in-flight prefetch
          // resolves it first (defensive; dependence gating makes this
          // unreachable for writes).
          cancel_key_locked(pl, key);
        }
      }
      for (;;) {
        auto f = pool.Fetch(rec.array_id, rec.block, rec.bytes, store,
                            /*load=*/false, &resident);
        if (f.ok()) {
          frame = *f;
          if (created_out != nullptr) *created_out = !resident;
          break;
        }
        if (f.status().code() != StatusCode::kResourceExhausted) {
          return f.status();
        }
        // Memory pressure: the consumer wins over lookahead.
        if (!cancel_one_locked(pl)) return f.status();
      }
      if (rec.type == AccessType::kRead && !resident) {
        if (rec.saved && opts_.strict_sharing) {
          pool.Discard(frame);  // created zeroed by this Fetch, never loaded
          return Status::Internal(
              "saved read not in memory: " + st.name + " access " +
              std::to_string(rec.access_idx) + " (plan/realization bug)");
        }
        must_load = true;
        MutexLock ll(&latch.mu);
        latch.loading.insert(key);
      }
    }
    if (must_load) {
      Status st_load = sync_store_op(store, &ls.io_seconds, [&] {
        return store->ReadBlock(rec.block, frame->data.data());
      });
      if (!st_load.ok()) {
        // Mark the run failed *before* releasing the latch so waiters on
        // this garbage frame observe `aborting` when they wake, and
        // discard the frame so it cannot linger as apparently clean cache
        // (Unpin by the waiters erases it once the last pin drops).
        fail_run(st_load);
        pool.Discard(frame);
      }
      {
        MutexLock ll(&latch.mu);
        latch.loading.erase(key);
      }
      latch.cv.NotifyAll();
      if (!st_load.ok()) return st_load;
      ls.bytes_read += rec.bytes;
      ++ls.block_reads;
    } else if (rec.type == AccessType::kRead && resident) {
      // The resident frame's contents are the block's current value (clean
      // frames match disk via write-through; newer-than-disk frames exist
      // only behind retentions the plan orders us after) — but another
      // consumer may still be mid-load; wait behind the latch. The serial
      // engine re-reads disk here to stay cost-model-exact; concurrent
      // consumers instead dedupe the physically redundant read — a
      // residency win the replacement policy gets credit for.
      if (!rec.saved) ++ls.policy_saved_reads;
      UniqueMutexLock ll(&latch.mu);
      while (latch.loading.count(key) != 0 && !aborting.load()) {
        latch.cv.Wait(ll);
      }
      if (aborting.load()) {
        // The run is failing; this frame may be the failed loader's
        // garbage (then it is marked discarded and this Unpin erases it).
        ll.Unlock();
        pool.Unpin(frame);
        return Status::Internal("aborted: concurrent I/O failure");
      }
    }
    return frame;
  };

  // --- one execution attempt of one instance ------------------------------
  enum class Outcome { kDone, kPressure, kError };
  auto try_exec_once = [&](size_t pos, LocalStats& ls) -> Outcome {
    const auto& inst = rp.order[pos];
    const Statement& st = prog_.statement(inst.stmt_id);
    const size_t na = st.accesses.size();
    std::vector<BufferPool::Frame*> frames(na, nullptr);
    std::vector<DenseView> views(na);
    std::vector<DenseView*> view_ptrs(na, nullptr);
    const auto [rec_begin, rec_end] = script.per_pos[pos];

    // Failed rollbacks must not leave frames whose contents lie:
    //   * kAcquireFailed (kernel never ran): discard write targets this
    //     attempt *created* — they are zero-filled, never written. A
    //     pre-existing resident frame (e.g. the retained, newer-than-disk
    //     block an aliased saved read depends on) is only unpinned.
    //   * kKernelRan (write-through failed): every write frame holds
    //     kernel output that may never have reached disk — discard all.
    //   * kRelease (success): plain unpin; frames are valid cache.
    enum class Rollback { kRelease, kAcquireFailed, kKernelRan };
    std::vector<bool> is_write(na, false), created_write(na, false);
    auto rollback = [&](Rollback mode) {
      for (size_t ai = 0; ai < na; ++ai) {
        if (frames[ai] == nullptr) continue;
        const bool discard =
            (mode == Rollback::kAcquireFailed && created_write[ai]) ||
            (mode == Rollback::kKernelRan && is_write[ai]);
        if (discard) {
          pool.Discard(frames[ai]);
        } else {
          pool.Unpin(frames[ai]);
        }
        frames[ai] = nullptr;
      }
    };

    // Acquisition: pin every frame (reads loaded, write targets bare)
    // before any retention or kernel side effect, so a memory-starved
    // attempt can roll back to nothing and be retried safely.
    for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
      const BlockAccessRecord& rec = script.records[ri];
      bool created = false;
      auto f = acquire_record(rec, ls, &created);
      if (!f.ok()) {
        rollback(Rollback::kAcquireFailed);
        if (f.status().code() == StatusCode::kResourceExhausted &&
            !aborting.load()) {
          return Outcome::kPressure;
        }
        fail_run(f.status());
        return Outcome::kError;
      }
      const size_t ai = static_cast<size_t>(rec.access_idx);
      frames[ai] = *f;
      is_write[ai] = rec.type == AccessType::kWrite;
      created_write[ai] = created && is_write[ai];
      const ArrayInfo& arr = prog_.array(rec.array_id);
      RIOT_CHECK_EQ(arr.ndim(), 2u) << "executor requires 2-D arrays";
      RIOT_DCHECK(IsAligned(frames[ai]->data.data()))
          << "kernel view over unaligned frame";
      views[ai] = DenseView{reinterpret_cast<double*>(frames[ai]->data.data()),
                            arr.block_elems[0], arr.block_elems[1]};
      view_ptrs[ai] = &views[ai];
    }
    // All pinned: retentions are now applied exactly once, by the attempt
    // that will actually complete the instance.
    for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
      const BlockAccessRecord& rec = script.records[ri];
      if (rec.retain_until_group >= 0) {
        pool.Retain(frames[static_cast<size_t>(rec.access_idx)],
                    rec.retain_until_group);
      }
    }

    // Compute.
    {
      auto t0 = std::chrono::steady_clock::now();
      kernels_[static_cast<size_t>(inst.stmt_id)](inst.iter, view_ptrs);
      ls.compute_seconds += Since(t0);
    }

    // Write-out (write-through keeps every unretained frame == disk).
    for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
      const BlockAccessRecord& rec = script.records[ri];
      if (rec.type != AccessType::kWrite) continue;
      const size_t ai = static_cast<size_t>(rec.access_idx);
      if (frames[ai] == nullptr) continue;
      if (!rec.saved) {
        BlockStore* store = stores_[static_cast<size_t>(rec.array_id)];
        Status st_w = sync_store_op(store, &ls.io_seconds, [&] {
          return store->WriteBlock(frames[ai]->block,
                                   frames[ai]->data.data());
        });
        if (!st_w.ok()) {
          rollback(Rollback::kKernelRan);
          fail_run(st_w);
          return Outcome::kError;
        }
        ls.bytes_written += rec.bytes;
        ++ls.block_writes;
      }
      pool.MarkClean(frames[ai]);
    }

    AtomicMax(&peak_required, pool.PinnedOrRetainedBytes());
    rollback(Rollback::kRelease);  // release pins; retentions persist
    return Outcome::kDone;
  };

  // Retries an instance through memory pressure. Non-frontier instances
  // report back to be parked; the frontier instance waits for the world to
  // drain and only errors once it is provably alone and still starved.
  auto exec_instance = [&](size_t pos, LocalStats& ls) -> Outcome {
    bool retried_alone = false;
    for (;;) {
      if (aborting.load()) return Outcome::kError;
      Outcome oc = try_exec_once(pos, ls);
      if (oc != Outcome::kPressure) return oc;
      UniqueMutexLock sl(&sc.mu);
      if (sc.failed) return Outcome::kError;
      if (pos != sc.frontier) return Outcome::kPressure;  // caller parks
      if (sc.running == 1) {
        if (retried_alone) {
          sl.Unlock();
          fail_run(Status::ResourceExhausted(
              "buffer pool cap exceeded with all frames pinned/retained "
              "(parallel frontier instance " +
              std::to_string(pos) + " starved while running alone)"));
          return Outcome::kError;
        }
        retried_alone = true;  // one clean retry with the machine drained
        continue;
      }
      retried_alone = false;
      uint64_t epoch = sc.progress_epoch;
      while (!(sc.failed || sc.running == 1 || sc.progress_epoch != epoch)) {
        sc.cv.Wait(sl);
      }
      if (sc.failed) return Outcome::kError;
    }
  };

  // ------------------------------------------------------- worker threads
  std::vector<LocalStats> worker_stats(static_cast<size_t>(nworkers));
  auto worker = [&](int wid) {
    LocalStats& ls = worker_stats[static_cast<size_t>(wid)];
    UniqueMutexLock sl(&sc.mu);
    for (;;) {
      while (!(sc.failed || !sc.ready.empty() || sc.n_done == n)) {
        sc.cv.Wait(sl);
      }
      if (sc.failed || sc.n_done == n) return;
      size_t pos = sc.ready.top();
      sc.ready.pop();
      ++sc.running;
      sc.max_width = std::max(
          sc.max_width,
          static_cast<int64_t>(sc.running + sc.ready.size()));
      sl.Unlock();

      if (depth > 0) advance_prefetcher();
      Outcome oc = exec_instance(pos, ls);

      sl.Lock();
      --sc.running;
      ++sc.progress_epoch;
      if (oc == Outcome::kDone) {
        completed[pos].store(true);
        ++sc.n_done;
        const size_t old_frontier = sc.frontier;
        while (sc.frontier < n && completed[sc.frontier].load()) {
          ++sc.frontier;
        }
        if (schedule_policy && sc.frontier != old_frontier) {
          // Pool lock nests inside sc.mu here; pool code never takes
          // sc.mu, so the order is acyclic.
          pool.AdvanceReplacementClock(bound_uses,
                                       static_cast<int64_t>(sc.frontier));
        }
        const size_t g = rp.group_of[pos];
        if (--sc.group_left[g] == 0) {
          size_t gf = group_frontier.load();
          while (gf < rp.num_groups && sc.group_left[gf] == 0) ++gf;
          if (gf != group_frontier.load()) {
            group_frontier.store(gf);
            pool.ReleaseRetainedBefore(static_cast<int64_t>(gf));
          }
        }
        for (uint32_t s : dag.succ[pos]) {
          if (--sc.pred_left[s] == 0) sc.ready.push(s);
        }
        for (size_t p : sc.parked) sc.ready.push(p);
        sc.parked.clear();
      } else if (oc == Outcome::kPressure) {
        sc.parked.push_back(pos);
        // Parked instances are normally re-queued by the next completion —
        // but that completion may have happened in the window between
        // exec_instance dropping sc.mu and this re-lock. If this instance
        // has meanwhile become the frontier, or nothing is left running to
        // produce a future completion, re-queue immediately or the run
        // would strand with work parked and every worker asleep.
        if (pos == sc.frontier || sc.running == 0) {
          for (size_t p : sc.parked) sc.ready.push(p);
          sc.parked.clear();
        }
      }
      // kError: fail_run already recorded it; fall through and let every
      // worker observe sc.failed.
      sc.cv.NotifyAll();
    }
  };

  if (depth > 0) advance_prefetcher();  // prime the lookahead
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();

  // Drain every in-flight prefetch (abandoned lookahead on success, all of
  // it on error) so no kPrefetching frame survives this run — mandatory
  // when the pool is shared.
  if (io != nullptr) {
    UniqueMutexLock pl(&pf.mu);
    while (io->outstanding() > 0) {
      pl.Unlock();
      IoPool::Completion c = io->WaitCompletion();
      pl.Lock();
      resolve_completion_locked(std::move(c));
    }
    for (auto& [key, p] : pf.pending) {
      RIOT_CHECK(p.done);
      if (p.status.ok()) {
        canceled_bytes.fetch_add(static_cast<int64_t>(p.frame->data.size()));
        canceled_reads.fetch_add(1);
      }
      pool.AbandonPrefetch(p.frame);
      prefetch_wasted.fetch_add(1);
    }
    pf.pending.clear();
    if (opts_.writeback_async) {
      Status wb = pool.DrainWritebacks();
      pool.SetWriteBehind(nullptr);
      if (!wb.ok()) {
        MutexLock lock(&sc.mu);
        if (!sc.failed) {
          sc.failed = true;
          sc.error = wb;
        }
      }
    }
    stats.io_seconds += io->read_seconds() + io->write_seconds();
    io.reset();  // joins the I/O workers
  }
  pool.ReleaseRetainedBefore(std::numeric_limits<int64_t>::max());
  DropDivergentWrites(script, &pool, [](int id) { return id; });
  if (schedule_policy) pool.UnbindUsePlan(bound_uses);

  {
    MutexLock lock(&sc.mu);  // workers are joined; lock for the analysis
    stats.max_ready_width = sc.max_width;
    if (sc.failed) return sc.error;
  }

  for (const LocalStats& ls : worker_stats) {
    stats.bytes_read += ls.bytes_read;
    stats.bytes_written += ls.bytes_written;
    stats.block_reads += ls.block_reads;
    stats.block_writes += ls.block_writes;
    stats.prefetch_hits += ls.prefetch_hits;
    stats.policy_saved_reads += ls.policy_saved_reads;
    stats.io_seconds += ls.io_seconds;
    stats.compute_seconds += ls.compute_seconds;
  }
  stats.bytes_read += canceled_bytes.load();
  stats.block_reads += canceled_reads.load();
  stats.prefetch_wasted = prefetch_wasted.load();
  stats.peak_required_bytes = peak_required.load();
  stats.pool = DiffPoolStats(pool.stats(), pool_stats0);
  stats.wall_seconds = Since(wall0);
  stats.overlap_seconds = std::max(
      0.0, stats.io_seconds + stats.compute_seconds - stats.wall_seconds);
  stats.compute_overlap_seconds =
      std::max(0.0, stats.compute_seconds - stats.wall_seconds);
  return stats;
}

}  // namespace riot
