#include "exec/executor.h"

#include <chrono>
#include <map>

#include "util/logging.h"

namespace riot {

namespace {

double Since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Executor::Executor(const Program& program, std::vector<BlockStore*> stores,
                   std::vector<StatementKernel> kernels, ExecOptions options)
    : prog_(program), stores_(std::move(stores)),
      kernels_(std::move(kernels)), opts_(options) {
  RIOT_CHECK_EQ(stores_.size(), prog_.arrays().size());
  RIOT_CHECK_EQ(kernels_.size(), prog_.statements().size());
}

Result<ExecStats> Executor::Run(const Schedule& schedule,
                                const std::vector<const CoAccess*>& realized) {
  auto wall0 = std::chrono::steady_clock::now();
  const bool opportunistic = opts_.mode == ExecMode::kOpportunisticCache;
  // Under the opportunistic-cache ablation the plan's sharing set is
  // deliberately ignored: no saved reads, no retention obligations.
  RealizedPlan rp = RealizePlan(prog_, schedule,
                                opportunistic
                                    ? std::vector<const CoAccess*>{}
                                    : realized);
  BufferPool pool(opts_.memory_cap_bytes);
  ExecStats stats;

  // Retention lookup: (source position, array, block) -> furthest end group.
  std::map<std::tuple<size_t, int, int64_t>, size_t> retain_at;
  for (const auto& span : rp.spans) {
    auto key = std::make_tuple(span.begin_pos, span.array_id, span.block);
    auto it = retain_at.find(key);
    if (it == retain_at.end() || it->second < span.end_group) {
      retain_at[key] = span.end_group;
    }
  }

  size_t cur_group = 0;
  std::vector<BufferPool::Frame*> frames;
  std::vector<DenseView> views;
  std::vector<DenseView*> view_ptrs;
  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    const auto& inst = rp.order[pos];
    if (rp.group_of[pos] != cur_group) {
      cur_group = rp.group_of[pos];
      pool.ReleaseRetainedBefore(static_cast<int64_t>(cur_group));
    }
    const Statement& st = prog_.statement(inst.stmt_id);
    const size_t na = st.accesses.size();
    frames.assign(na, nullptr);
    views.assign(na, DenseView{});
    view_ptrs.assign(na, nullptr);

    // Fetch blocks: reads first (they may populate the frame the write
    // access aliases), then the write.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t ai = 0; ai < na; ++ai) {
        const Access& a = st.accesses[ai];
        if ((pass == 0) != (a.type == AccessType::kRead)) continue;
        if (!a.ActiveAt(inst.iter)) continue;
        const ArrayInfo& arr = prog_.array(a.array_id);
        const int64_t lin = arr.LinearBlockIndex(a.BlockAt(inst.iter));
        const int64_t bytes = arr.BlockBytes();
        BlockStore* store = stores_[static_cast<size_t>(a.array_id)];
        AccessInstanceKey key{inst.stmt_id, inst.iter, static_cast<int>(ai)};
        BufferPool::Frame* frame = nullptr;
        if (a.type == AccessType::kRead) {
          // A read is served from memory ONLY when the plan realizes a
          // sharing opportunity for it (Section 5.3: a schedule may
          // "accidentally" enable more sharing, but generated code exploits
          // exactly Q). Everything else is a disk read, even on a pool hit.
          bool saved = rp.saved_reads.count(key) > 0;
          BufferPool::Frame* present = pool.Probe(a.array_id, lin);
          if (opportunistic) {
            // Whatever the pool still holds is reusable; correctness is
            // preserved because performed writes are write-through, so any
            // cached frame matches disk.
            saved = present != nullptr;
          }
          if (saved && present == nullptr && opts_.strict_sharing) {
            return Status::Internal(
                "saved read not in memory: " + st.name + " access " +
                std::to_string(ai) + " (plan/realization bug)");
          }
          auto f = pool.Fetch(a.array_id, lin, bytes, store, /*load=*/false);
          if (!f.ok()) return f.status();
          frame = *f;
          if (!saved || present == nullptr) {
            auto t0 = std::chrono::steady_clock::now();
            RIOT_RETURN_NOT_OK(store->ReadBlock(lin, frame->data.data()));
            stats.io_seconds += Since(t0);
            stats.bytes_read += bytes;
            ++stats.block_reads;
          }
        } else {
          // Write target: no disk read; a guarded read access of the same
          // block (accumulation) was fetched in pass 0 if live.
          auto f = pool.Fetch(a.array_id, lin, bytes, store, /*load=*/false);
          if (!f.ok()) return f.status();
          frame = *f;
        }
        frames[ai] = frame;
        RIOT_CHECK_EQ(arr.ndim(), 2u) << "executor requires 2-D arrays";
        views[ai] = DenseView{reinterpret_cast<double*>(frame->data.data()),
                              arr.block_elems[0], arr.block_elems[1]};
        view_ptrs[ai] = &views[ai];
        // Retention spans whose source access is this instance.
        auto rit = retain_at.find(std::make_tuple(pos, a.array_id, lin));
        if (rit != retain_at.end()) {
          pool.Retain(frame, static_cast<int64_t>(rit->second));
        }
      }
    }

    // Compute.
    {
      auto t0 = std::chrono::steady_clock::now();
      kernels_[static_cast<size_t>(inst.stmt_id)](inst.iter, view_ptrs);
      stats.compute_seconds += Since(t0);
    }

    // Write-out.
    for (size_t ai = 0; ai < na; ++ai) {
      const Access& a = st.accesses[ai];
      if (a.type != AccessType::kWrite || frames[ai] == nullptr) continue;
      AccessInstanceKey key{inst.stmt_id, inst.iter, static_cast<int>(ai)};
      const bool skip = rp.saved_writes.count(key) > 0 ||
                        rp.elided_writes.count(key) > 0;
      if (!skip) {
        const ArrayInfo& arr = prog_.array(a.array_id);
        auto t0 = std::chrono::steady_clock::now();
        BlockStore* store = stores_[static_cast<size_t>(a.array_id)];
        RIOT_RETURN_NOT_OK(
            store->WriteBlock(frames[ai]->block, frames[ai]->data.data()));
        stats.io_seconds += Since(t0);
        stats.bytes_written += arr.BlockBytes();
        ++stats.block_writes;
      }
      // Either way the in-memory copy is authoritative; retention (set
      // above) protects it for pending saved reads.
      frames[ai]->dirty = false;
    }

    // Measure the requirement while the instance's frames are still pinned,
    // then release them.
    stats.peak_required_bytes =
        std::max(stats.peak_required_bytes, pool.PinnedOrRetainedBytes());
    for (size_t ai = 0; ai < na; ++ai) {
      if (frames[ai] != nullptr) pool.Unpin(frames[ai]);
    }
  }

  stats.pool = pool.stats();
  stats.wall_seconds = Since(wall0);
  return stats;
}

}  // namespace riot
