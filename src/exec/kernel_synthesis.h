// Kernel synthesis: turns a statement's typed StatementOp spec into the
// StatementKernel the execution engine runs, dispatching to the dense block
// kernels (kernels/dense.h). This is what lets expression-lowered programs
// (core/lowering.h) execute without any hand-written lambda: the Executor
// synthesizes a kernel for every statement that carries an op and no
// explicit kernel. Hand-written lambdas remain the escape hatch — when a
// caller supplies one it always wins over synthesis.
#ifndef RIOTSHARE_EXEC_KERNEL_SYNTHESIS_H_
#define RIOTSHARE_EXEC_KERNEL_SYNTHESIS_H_

#include "exec/executor.h"
#include "ir/statement_op.h"

namespace riot {

/// \brief Builds the in-memory kernel computing `op` over a statement's
/// access views. CHECK-fails on a malformed spec (missing operand or
/// output index for the kind) — lowering never produces one.
StatementKernel SynthesizeKernel(const StatementOp& op);

}  // namespace riot

#endif  // RIOTSHARE_EXEC_KERNEL_SYNTHESIS_H_
