// Verification helpers: read whole arrays back from block stores and
// compare plans' outputs (optimized plans must produce bitwise-comparable
// results to the original schedule up to floating-point reassociation).
//
// Every helper propagates I/O failures as Status — a corrupt or missing
// block must never abort the verifying process (the session runtime
// verifies tenants' outputs while other tenants are live). Callers that
// genuinely want crash-on-error semantics opt in with ValueOrDie().
#ifndef RIOTSHARE_EXEC_VERIFY_H_
#define RIOTSHARE_EXEC_VERIFY_H_

#include <vector>

#include "ir/array.h"
#include "storage/block_store.h"
#include "util/status.h"

namespace riot {

/// \brief Reads every block of `info` from `store` into one dense buffer
/// (blocks concatenated in linear block order).
Result<std::vector<double>> ReadWholeArray(const ArrayInfo& info,
                                           BlockStore* store);

/// \brief Max absolute elementwise difference between two stored arrays.
Result<double> MaxAbsDifference(const ArrayInfo& info, BlockStore* a,
                                BlockStore* b);

/// \brief OK iff the arrays are bit-for-bit identical; kInternal with the
/// max |diff| otherwise. I/O failures propagate as their own Status.
Status VerifyBitEqual(const ArrayInfo& info, BlockStore* expected,
                      BlockStore* actual);

}  // namespace riot

#endif  // RIOTSHARE_EXEC_VERIFY_H_
