// Verification helpers: read whole arrays back from block stores and
// compare plans' outputs (optimized plans must produce bitwise-comparable
// results to the original schedule up to floating-point reassociation).
#ifndef RIOTSHARE_EXEC_VERIFY_H_
#define RIOTSHARE_EXEC_VERIFY_H_

#include <vector>

#include "ir/array.h"
#include "storage/block_store.h"
#include "util/status.h"

namespace riot {

/// \brief Reads every block of `info` from `store` into one dense buffer
/// (blocks concatenated in linear block order).
Result<std::vector<double>> ReadWholeArray(const ArrayInfo& info,
                                           BlockStore* store);

/// \brief Max absolute elementwise difference between two stored arrays.
Result<double> MaxAbsDifference(const ArrayInfo& info, BlockStore* a,
                                BlockStore* b);

}  // namespace riot

#endif  // RIOTSHARE_EXEC_VERIFY_H_
