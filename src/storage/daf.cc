#include "storage/block_store.h"
#include "util/logging.h"

namespace riot {

namespace {

// Directly Addressable File: block i at byte offset i * block_bytes.
class DafStore : public BlockStore {
 public:
  DafStore(std::unique_ptr<File> file, int64_t block_bytes,
           int64_t num_blocks)
      : BlockStore(block_bytes), file_(std::move(file)),
        num_blocks_(num_blocks) {}

  Status ReadBlock(int64_t block_index, void* buf) override {
    RIOT_RETURN_NOT_OK(CheckIndex(block_index));
    return file_->Read(static_cast<uint64_t>(block_index * block_bytes_),
                       static_cast<size_t>(block_bytes_), buf);
  }

  Status WriteBlock(int64_t block_index, const void* buf) override {
    RIOT_RETURN_NOT_OK(CheckIndex(block_index));
    return file_->Write(static_cast<uint64_t>(block_index * block_bytes_),
                        static_cast<size_t>(block_bytes_), buf);
  }

  bool HasBlock(int64_t block_index) override {
    auto size = file_->Size();
    if (!size.ok()) return false;
    return block_index >= 0 && block_index < num_blocks_ &&
           static_cast<uint64_t>((block_index + 1) * block_bytes_) <=
               *size;
  }

  Status Flush() override { return file_->Sync(); }

 private:
  Status CheckIndex(int64_t i) const {
    if (i < 0 || i >= num_blocks_) {
      return Status::OutOfRange("DAF block index " + std::to_string(i) +
                                " out of [0," + std::to_string(num_blocks_) +
                                ")");
    }
    return Status::OK();
  }

  std::unique_ptr<File> file_;
  int64_t num_blocks_;
};

}  // namespace

Result<std::unique_ptr<BlockStore>> OpenDaf(Env* env, const std::string& path,
                                            int64_t block_bytes,
                                            int64_t num_blocks) {
  auto file = env->OpenFile(path, /*create=*/true);
  if (!file.ok()) return file.status();
  return std::unique_ptr<BlockStore>(
      new DafStore(std::move(file).ValueOrDie(), block_bytes, num_blocks));
}

Result<std::unique_ptr<BlockStore>> OpenBlockStore(Env* env,
                                                   const std::string& path,
                                                   StorageFormat format,
                                                   int64_t block_bytes,
                                                   int64_t num_blocks) {
  if (format == StorageFormat::kDaf) {
    return OpenDaf(env, path, block_bytes, num_blocks);
  }
  return OpenLabTree(env, path, block_bytes);
}

}  // namespace riot
