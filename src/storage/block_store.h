// Block stores: fixed-size logical array blocks addressed by their linear
// block index (RIOTStore [26]). Two on-disk formats are provided:
//   * DAF      — Directly Addressable File: block i lives at offset
//                i * block_bytes; zero metadata, ideal for dense arrays.
//   * LAB-tree — Linearized Array B-tree: a B+-tree maps linear block index
//                to a data extent; supports sparse population.
// Both "work virtually identically for dense matrices" (paper Section 6
// Storage Scheme), which tests verify.
#ifndef RIOTSHARE_STORAGE_BLOCK_STORE_H_
#define RIOTSHARE_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"
#include "util/status.h"

namespace riot {

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  virtual Status ReadBlock(int64_t block_index, void* buf) = 0;
  virtual Status WriteBlock(int64_t block_index, const void* buf) = 0;
  /// True if the block has ever been written (always true for DAF within
  /// the preallocated range).
  virtual bool HasBlock(int64_t block_index) = 0;
  virtual Status Flush() { return Status::OK(); }

  int64_t block_bytes() const { return block_bytes_; }

 protected:
  explicit BlockStore(int64_t block_bytes) : block_bytes_(block_bytes) {}
  int64_t block_bytes_;
};

/// \brief Opens/creates a DAF store of `num_blocks` blocks.
Result<std::unique_ptr<BlockStore>> OpenDaf(Env* env, const std::string& path,
                                            int64_t block_bytes,
                                            int64_t num_blocks);

/// \brief Opens/creates a LAB-tree store.
Result<std::unique_ptr<BlockStore>> OpenLabTree(Env* env,
                                                const std::string& path,
                                                int64_t block_bytes);

enum class StorageFormat { kDaf, kLabTree };

/// \brief Format-dispatched open.
Result<std::unique_ptr<BlockStore>> OpenBlockStore(Env* env,
                                                   const std::string& path,
                                                   StorageFormat format,
                                                   int64_t block_bytes,
                                                   int64_t num_blocks);

}  // namespace riot

#endif  // RIOTSHARE_STORAGE_BLOCK_STORE_H_
