#include "storage/replacement.h"

#include <algorithm>
#include <limits>
#include <list>
#include <set>
#include <tuple>

#include "util/logging.h"

namespace riot {

std::string ReplacementKindName(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru: return "lru";
    case ReplacementKind::kClock: return "clock";
    case ReplacementKind::kScheduleOpt: return "opt";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// LRU: victims in least-recently-touched order among evictable frames.
// ---------------------------------------------------------------------------
class LruPolicy : public ReplacementPolicy {
 public:
  ReplacementKind kind() const override { return ReplacementKind::kLru; }

  void OnTouch(const PoolKey& key) override {
    auto [it, inserted] = last_seq_.emplace(key, 0);
    if (!inserted) {
      auto ev = evictable_.find(it->second);
      if (ev != evictable_.end()) {
        evictable_.erase(ev);
        evictable_.emplace(next_seq_, key);
      }
    }
    it->second = next_seq_++;
  }

  void OnEvictable(const PoolKey& key) override {
    evictable_.emplace(last_seq_.at(key), key);
  }

  void OnProtected(const PoolKey& key) override {
    evictable_.erase(last_seq_.at(key));
  }

  void OnErase(const PoolKey& key) override {
    auto it = last_seq_.find(key);
    if (it == last_seq_.end()) return;
    evictable_.erase(it->second);
    last_seq_.erase(it);
  }

  void OnClear() override {
    last_seq_.clear();
    evictable_.clear();
  }

  bool PickVictim(const std::function<bool(const PoolKey&)>& usable,
                  PoolKey* victim) override {
    for (const auto& [seq, key] : evictable_) {
      if (usable(key)) {
        *victim = key;
        return true;
      }
    }
    return false;
  }

 private:
  uint64_t next_seq_ = 0;
  std::map<PoolKey, uint64_t> last_seq_;
  std::map<uint64_t, PoolKey> evictable_;  // ordered: least recent first
};

// ---------------------------------------------------------------------------
// Clock: second-chance sweep. Evictable frames live on a ring; a touch sets
// the frame's reference bit; the hand clears bits until it finds an
// unreferenced usable frame.
// ---------------------------------------------------------------------------
class ClockPolicy : public ReplacementPolicy {
 public:
  ReplacementKind kind() const override { return ReplacementKind::kClock; }

  void OnTouch(const PoolKey& key) override {
    auto it = members_.find(key);
    if (it != members_.end()) it->second.referenced = true;
  }

  void OnEvictable(const PoolKey& key) override {
    // Insert just behind the hand: the new frame is the last the current
    // sweep examines, with one full second chance.
    auto pos = hand_ == ring_.end() ? ring_.end() : hand_;
    auto it = ring_.insert(pos, key);
    if (hand_ == ring_.end()) hand_ = it;
    members_[key] = Member{it, true};
  }

  void OnProtected(const PoolKey& key) override { Remove(key); }

  void OnErase(const PoolKey& key) override { Remove(key); }

  void OnClear() override {
    ring_.clear();
    members_.clear();
    hand_ = ring_.end();
  }

  bool PickVictim(const std::function<bool(const PoolKey&)>& usable,
                  PoolKey* victim) override {
    if (ring_.empty()) return false;
    // Two full sweeps suffice: the first clears every reference bit, the
    // second returns the first usable frame (or proves none is).
    const size_t limit = 2 * ring_.size() + 1;
    for (size_t i = 0; i < limit; ++i) {
      if (hand_ == ring_.end()) hand_ = ring_.begin();
      Member& m = members_.at(*hand_);
      if (m.referenced) {
        m.referenced = false;
      } else if (usable(*hand_)) {
        *victim = *hand_;
        return true;
      }
      ++hand_;
    }
    return false;
  }

 private:
  struct Member {
    std::list<PoolKey>::iterator it;
    bool referenced = true;
  };

  void Remove(const PoolKey& key) {
    auto it = members_.find(key);
    if (it == members_.end()) return;
    if (hand_ == it->second.it) ++hand_;
    ring_.erase(it->second.it);
    members_.erase(it);
  }

  std::list<PoolKey> ring_;
  std::map<PoolKey, Member> members_;
  std::list<PoolKey>::iterator hand_ = ring_.end();
};

// ---------------------------------------------------------------------------
// ScheduleOpt: Belady/MIN against the bound plan(s). Candidates are ordered
// by cached (score, last-touch seq), where the score depends on how many
// plans are bound:
//
//   * one plan:      the absolute next-use position (historical solo
//                    Belady). Entries whose cached next use slipped into
//                    the past are lazily refreshed when a victim is
//                    requested: a cached next use still >= the clock is
//                    exact — it was the first use at some earlier clock,
//                    and no use can appear between the two clocks without
//                    having been the first one.
//   * several plans: the merged future-use clock — min over bound plans of
//                    (plan's next use of the frame - plan's own clock),
//                    i.e. the fewest statement instances ANY tenant will
//                    run before touching the frame again. Normalized
//                    distances from different snapshots of the clocks are
//                    not mutually comparable (each plan's advance shifts
//                    only its own contributions), so the order is rebuilt
//                    on the first victim request after any clock moved —
//                    O(n K log n) then, free while no tenant progressed,
//                    and evictions between advances reuse the order.
//
// kNever (no bound plan uses the frame again) sorts above every finite
// score with least-recently-touched tie-breaks, so unclaimed frames are
// evicted first in LRU order among themselves in every mode — and with
// zero plans bound everything is unclaimed and the policy IS exact LRU.
// ---------------------------------------------------------------------------
class ScheduleOptPolicy : public ReplacementPolicy {
 public:
  ReplacementKind kind() const override {
    return ReplacementKind::kScheduleOpt;
  }

  void OnTouch(const PoolKey& key) override {
    auto [it, inserted] = last_seq_.emplace(key, 0);
    it->second = next_seq_++;
    auto ev = candidates_.find(key);
    if (ev != candidates_.end()) {
      order_.erase(OrderKey(ev->second, key));
      ev->second.seq = it->second;
      order_.insert(OrderKey(ev->second, key));
    }
  }

  void OnEvictable(const PoolKey& key) override {
    Entry e{ScoreOf(key), last_seq_.at(key)};
    candidates_.emplace(key, e);
    order_.insert(OrderKey(e, key));
  }

  void OnProtected(const PoolKey& key) override { RemoveCandidate(key); }

  void OnErase(const PoolKey& key) override {
    RemoveCandidate(key);
    last_seq_.erase(key);
  }

  void OnClear() override {
    last_seq_.clear();
    candidates_.clear();
    order_.clear();
  }

  bool PickVictim(const std::function<bool(const PoolKey&)>& usable,
                  PoolKey* victim) override {
    if (bound_.size() >= 2) {
      // Merged mode: normalized distances cached before the latest clock
      // advance are incomparable with fresh ones; rebuild once per
      // advance, on demand.
      if (merged_stale_) {
        RecomputeAll();
        merged_stale_ = false;
      }
    } else {
      RefreshStale();
    }
    // Farthest score first; among equals, least recently touched.
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      const PoolKey& key = std::get<2>(*it);
      if (usable(key)) {
        *victim = key;
        return true;
      }
    }
    return false;
  }

  void BindUsePlan(std::shared_ptr<const BlockUseMap> uses) override {
    bound_.push_back(BoundPlan{std::move(uses), 0});
    Reactivate();
  }

  void UnbindUsePlan(
      const std::shared_ptr<const BlockUseMap>& uses) override {
    RIOT_CHECK(uses != nullptr)
        << "UnbindUsePlan: every binder owns its uses pointer and must "
           "pass it back (a \"newest bind\" guess under concurrency would "
           "unbind another tenant's plan)";
    bool found = false;
    for (auto it = bound_.begin(); it != bound_.end(); ++it) {
      if (it->uses == uses) {
        bound_.erase(it);
        found = true;
        break;
      }
    }
    RIOT_CHECK(found) << "UnbindUsePlan: plan was never bound";
    Reactivate();
  }

  void AdvanceClock(const std::shared_ptr<const BlockUseMap>& uses,
                    int64_t pos) override {
    BoundPlan* plan = nullptr;
    if (uses == nullptr) {
      if (bound_.size() != 1) return;  // no unambiguous active plan
      plan = &bound_.front();
    } else {
      for (BoundPlan& b : bound_) {
        if (b.uses == uses) {
          plan = &b;
          break;
        }
      }
      if (plan == nullptr) return;
    }
    if (pos <= plan->clock) return;  // monotonic; repeats are no-ops
    plan->clock = pos;
    if (bound_.size() == 1) {
      // Solo: the plan's clock IS the policy clock; staleness is handled
      // incrementally by RefreshStale.
      clock_ = std::max(clock_, plan->clock);
    } else if (bound_.size() >= 2) {
      // Merged: this plan's normalized distances shrank relative to every
      // other plan's; cached scores must be rebuilt before the next pick.
      merged_stale_ = true;
    }
  }

 private:
  static constexpr int64_t kNever = std::numeric_limits<int64_t>::max();

  struct Entry {
    /// Solo mode: absolute next-use position. Merged mode: min normalized
    /// distance across bound plans. kNever: no bound plan claims the
    /// frame again.
    int64_t score = kNever;
    uint64_t seq = 0;
  };

  // Ascending order ends at (max score, min seq): invert the seq so
  // rbegin() yields farthest-score with least-recently-touched ties.
  static std::tuple<int64_t, uint64_t, PoolKey> OrderKey(const Entry& e,
                                                         const PoolKey& key) {
    return {e.score, std::numeric_limits<uint64_t>::max() - e.seq, key};
  }

  int64_t NextUse(const PoolKey& key) const {
    if (uses_ == nullptr) return kNever;
    auto it = uses_->find(key);
    if (it == uses_->end()) return kNever;
    const std::vector<int64_t>& v = it->second;
    auto p = std::lower_bound(v.begin(), v.end(), clock_);
    return p == v.end() ? kNever : *p;
  }

  /// Merged mode: the fewest remaining statement instances any bound plan
  /// runs before touching `key` again; kNever when none does.
  int64_t MergedDistance(const PoolKey& key) const {
    int64_t best = kNever;
    for (const BoundPlan& b : bound_) {
      auto it = b.uses->find(key);
      if (it == b.uses->end()) continue;
      const std::vector<int64_t>& v = it->second;
      auto p = std::lower_bound(v.begin(), v.end(), b.clock);
      if (p == v.end()) continue;
      best = std::min(best, *p - b.clock);
    }
    return best;
  }

  int64_t ScoreOf(const PoolKey& key) const {
    return bound_.size() >= 2 ? MergedDistance(key) : NextUse(key);
  }

  void RemoveCandidate(const PoolKey& key) {
    auto it = candidates_.find(key);
    if (it == candidates_.end()) return;
    order_.erase(OrderKey(it->second, key));
    candidates_.erase(it);
  }

  /// Solo mode: recomputes entries whose cached next use fell behind the
  /// clock (the scheduled use passed; the true next use moved later). They
  /// cluster at the ascending front of `order_`, so the loop stops at the
  /// first current entry. Each scheduled use is skipped past at most once
  /// per (bind, block), so the total refresh work is amortized by the
  /// plan. (With zero plans every score is kNever >= clock_ = 0 and this
  /// is a no-op.)
  void RefreshStale() {
    while (!order_.empty()) {
      auto it = order_.begin();
      if (std::get<0>(*it) >= clock_) break;
      PoolKey key = std::get<2>(*it);
      order_.erase(it);
      Entry& e = candidates_.at(key);
      e.score = NextUse(key);
      order_.insert(OrderKey(e, key));
    }
  }

  void RecomputeAll() {
    order_.clear();
    for (auto& [key, e] : candidates_) {
      e.score = ScoreOf(key);
      order_.insert(OrderKey(e, key));
    }
  }

  /// Applies the current bind set: cached scores from a previous
  /// activation (different plan set, or solo-vs-merged scoring) are
  /// garbage under the new one, so every activation change recomputes
  /// from scratch. Solo mode mirrors the surviving plan into
  /// uses_/clock_ so it resumes exact Belady from its own progress.
  void Reactivate() {
    if (bound_.size() == 1) {
      uses_ = bound_.front().uses;
      clock_ = bound_.front().clock;
    } else {
      uses_.reset();
      clock_ = 0;
    }
    merged_stale_ = false;
    RecomputeAll();
  }

  struct BoundPlan {
    std::shared_ptr<const BlockUseMap> uses;
    int64_t clock = 0;
  };

  std::vector<BoundPlan> bound_;
  std::shared_ptr<const BlockUseMap> uses_;  // solo mode only
  int64_t clock_ = 0;                        // solo mode only
  bool merged_stale_ = false;  // a clock moved since the last rebuild
  uint64_t next_seq_ = 0;
  std::map<PoolKey, uint64_t> last_seq_;
  std::map<PoolKey, Entry> candidates_;
  std::set<std::tuple<int64_t, uint64_t, PoolKey>> order_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(
    ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>();
    case ReplacementKind::kClock:
      return std::make_unique<ClockPolicy>();
    case ReplacementKind::kScheduleOpt:
      return std::make_unique<ScheduleOptPolicy>();
  }
  RIOT_CHECK(false) << "unknown replacement kind";
  return nullptr;
}

}  // namespace riot
