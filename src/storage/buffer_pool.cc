#include "storage/buffer_pool.h"

#include "util/logging.h"

namespace riot {

BufferPool::Frame* BufferPool::Probe(int array_id, int64_t block) {
  auto it = frames_.find({array_id, block});
  return it == frames_.end() ? nullptr : &it->second;
}

void BufferPool::Touch(const Key& key) {
  auto it = lru_pos_.find(key);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_back(key);
  lru_pos_[key] = std::prev(lru_.end());
}

Status BufferPool::EnsureCapacity(int64_t incoming_bytes) {
  while (used_bytes_ + incoming_bytes > cap_bytes_) {
    // Find the LRU frame that is neither pinned nor retained.
    bool evicted = false;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      auto fit = frames_.find(*it);
      RIOT_CHECK(fit != frames_.end());
      Frame& f = fit->second;
      if (f.pins > 0 || f.retain_until_group >= 0) continue;
      if (f.dirty) {
        RIOT_CHECK(f.store != nullptr);
        RIOT_RETURN_NOT_OK(f.store->WriteBlock(f.block, f.data.data()));
        ++stats_.dirty_writebacks;
      }
      used_bytes_ -= static_cast<int64_t>(f.data.size());
      ++stats_.evictions;
      lru_pos_.erase(*it);
      frames_.erase(fit);
      lru_.erase(it);
      evicted = true;
      break;
    }
    if (!evicted) {
      return Status::ResourceExhausted(
          "buffer pool cap exceeded with all frames pinned/retained (cap=" +
          std::to_string(cap_bytes_) + ", used=" +
          std::to_string(used_bytes_) + ", need=" +
          std::to_string(incoming_bytes) + ")");
    }
  }
  return Status::OK();
}

Result<BufferPool::Frame*> BufferPool::Fetch(int array_id, int64_t block,
                                             int64_t bytes, BlockStore* store,
                                             bool load) {
  Key key{array_id, block};
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    ++stats_.hits;
    ++it->second.pins;
    Touch(key);
    return &it->second;
  }
  ++stats_.misses;
  RIOT_RETURN_NOT_OK(EnsureCapacity(bytes));
  Frame f;
  f.array_id = array_id;
  f.block = block;
  f.data.resize(static_cast<size_t>(bytes));
  f.store = store;
  if (load) {
    RIOT_CHECK(store != nullptr);
    RIOT_RETURN_NOT_OK(store->ReadBlock(block, f.data.data()));
  }
  f.pins = 1;
  used_bytes_ += bytes;
  auto [ins, ok] = frames_.emplace(key, std::move(f));
  RIOT_CHECK(ok);
  Touch(key);
  return &ins->second;
}

void BufferPool::Unpin(Frame* frame) {
  RIOT_CHECK_GT(frame->pins, 0);
  --frame->pins;
}

void BufferPool::Retain(Frame* frame, int64_t until_group) {
  frame->retain_until_group =
      std::max(frame->retain_until_group, until_group);
}

void BufferPool::ReleaseRetainedBefore(int64_t group) {
  for (auto& [key, f] : frames_) {
    if (f.retain_until_group >= 0 && f.retain_until_group < group) {
      f.retain_until_group = -1;
    }
  }
}

Status BufferPool::FlushAll() {
  for (auto& [key, f] : frames_) {
    if (f.dirty && f.store != nullptr) {
      RIOT_RETURN_NOT_OK(f.store->WriteBlock(f.block, f.data.data()));
      f.dirty = false;
    }
  }
  frames_.clear();
  lru_.clear();
  lru_pos_.clear();
  used_bytes_ = 0;
  return Status::OK();
}

}  // namespace riot
