#include "storage/buffer_pool.h"

#include <chrono>

#include "storage/io_pool.h"
#include "util/logging.h"

namespace riot {

namespace {
double Since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

BufferPool::BufferPool(int64_t cap_bytes,
                       std::unique_ptr<ReplacementPolicy> policy)
    : cap_bytes_(cap_bytes),
      policy_(policy != nullptr
                  ? std::move(policy)
                  : MakeReplacementPolicy(ReplacementKind::kLru)) {}

BufferPool::~BufferPool() {
  // Write-behind callbacks reference this pool; they must all have fired.
  // Failures were surfaced through DrainWritebacks/Fetch barriers (or are
  // dropped here — the pool is going away along with its cache).
  UniqueMutexLock lock(&mu_);
  WaitAllWritebacksLocked(lock);
}

void BufferPool::WaitAllWritebacksLocked(UniqueMutexLock& lock) {
  // Predicate spelled as an explicit loop so the guarded reads stay inside
  // this REQUIRES(mu_) body (see util/thread_annotations.h on CondVar).
  for (;;) {
    bool all_done = true;
    for (const auto& [key, pw] : pending_writes_) {
      if (!pw->done) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    writeback_cv_.Wait(lock);
  }
}

void BufferPool::AddHoldLocked(Frame* f, PoolAccount* account) {
  if (account == nullptr) return;  // anonymous pins are not tracked
  for (Holder& h : f->holders) {
    if (h.account == account) {
      ++h.pins;
      return;
    }
  }
  f->holders.push_back(Holder{account, 1});
}

void BufferPool::DropHoldLocked(Frame* f, PoolAccount* account) {
  if (account == nullptr) return;
  for (auto it = f->holders.begin(); it != f->holders.end(); ++it) {
    if (it->account == account) {
      if (--it->pins == 0) f->holders.erase(it);
      return;
    }
  }
  RIOT_CHECK(false) << "Unpin/Discard with an account that holds no pin on "
                       "the frame (pin/unpin account mismatch)";
}

void BufferPool::RechargeLocked(Frame* f) {
  PoolAccount* want = nullptr;
  if (CountsAsRequired(*f)) {
    auto holds = [f](const PoolAccount* a) {
      for (const Holder& h : f->holders) {
        if (h.account == a) return true;
      }
      for (const Retention& r : f->retentions) {
        if (r.owner == a) return true;
      }
      return false;
    };
    if (f->account != nullptr && holds(f->account)) {
      want = f->account;  // the charged claimant still claims the frame
    } else {
      // The charged claimant (if any) let go while the frame stays
      // required: transfer to a surviving pin holder, else a retention
      // owner. All-anonymous claimants leave the charge orphaned.
      for (const Holder& h : f->holders) {
        if (h.account != nullptr) {
          want = h.account;
          break;
        }
      }
      if (want == nullptr) {
        for (const Retention& r : f->retentions) {
          if (r.owner != nullptr) {
            want = r.owner;
            break;
          }
        }
      }
    }
  }
  if (want == f->account) return;
  // Under mu_: relaxed atomics suffice (atomicity is only for lock-free
  // readers outside the pool).
  const int64_t sz = static_cast<int64_t>(f->data.size());
  if (f->account != nullptr) {
    f->account->charged_bytes.fetch_sub(sz, std::memory_order_relaxed);
  }
  if (want != nullptr) {
    const int64_t c = want->charged_bytes.load(std::memory_order_relaxed) + sz;
    want->charged_bytes.store(c, std::memory_order_relaxed);
    if (c > want->peak_charged_bytes.load(std::memory_order_relaxed)) {
      want->peak_charged_bytes.store(c, std::memory_order_relaxed);
    }
  }
  f->account = want;
}

Status BufferPool::DrainWritebacksLocked(UniqueMutexLock& lock) {
  WaitAllWritebacksLocked(lock);
  Status first = Status::OK();
  for (const auto& [key, pw] : pending_writes_) {
    if (!pw->status.ok() && first.ok()) first = pw->status;
  }
  pending_writes_.clear();
  return first;
}

BufferPool::Frame* BufferPool::Probe(int array_id, int64_t block) {
  MutexLock lock(&mu_);
  auto it = frames_.find({array_id, block});
  return it == frames_.end() ? nullptr : &it->second;
}

Status BufferPool::WaitWritebackLocked(UniqueMutexLock& lock,
                                       const Key& key) {
  for (;;) {
    auto pit = pending_writes_.find(key);
    if (pit == pending_writes_.end()) return Status::OK();
    if (pit->second->done) {
      // Completed-ok entries erase themselves; a lingering done entry is a
      // failed write: the block's disk image is stale and its data is
      // gone. Surface the error instead of letting the caller reread
      // garbage (DrainWritebacks clears the poisoning).
      return pit->second->status;
    }
    auto t0 = std::chrono::steady_clock::now();
    writeback_cv_.Wait(lock);
    stats_.writeback_stall_seconds += Since(t0);
  }
}

Status BufferPool::EnsureCapacityLocked(UniqueMutexLock& lock,
                                        int64_t incoming_bytes,
                                        bool for_prefetch) {
  while (used_bytes_ + incoming_bytes > cap_bytes_) {
    // The policy orders candidates; dirty frames are unusable for a
    // prefetch-driven eviction (prefetch must never force a spill).
    auto usable = [&](const Key& k) {
      auto fit = frames_.find(k);
      RIOT_CHECK(fit != frames_.end());
      return !(for_prefetch && fit->second.dirty);
    };
    Key victim;
    if (!policy_->PickVictim(usable, &victim)) {
      return Status::ResourceExhausted(
          "buffer pool cap exceeded with all frames pinned/retained (cap=" +
          std::to_string(cap_bytes_) + ", used=" +
          std::to_string(used_bytes_) + ", need=" +
          std::to_string(incoming_bytes) + ")");
    }
    auto fit = frames_.find(victim);
    RIOT_CHECK(fit != frames_.end());
    Frame& f = fit->second;
    RIOT_CHECK(IsEvictable(f));
    if (f.dirty) {
      RIOT_CHECK(!for_prefetch);
      RIOT_CHECK(f.store != nullptr);
      if (write_io_ != nullptr) {
        const int64_t fbytes = static_cast<int64_t>(f.data.size());
        // A frame and a pending write of the same block are mutually
        // exclusive: async eviction erases the frame under this lock, and
        // Fetch/TryStartPrefetch never re-create it past the barrier.
        RIOT_CHECK(pending_writes_.count(victim) == 0);
        // In-flight write-behind buffers live outside the cap; bound them.
        const int64_t budget = std::max(cap_bytes_ / 4, fbytes);
        if (writeback_inflight_bytes_ + fbytes > budget) {
          auto t0 = std::chrono::steady_clock::now();
          writeback_cv_.Wait(lock);
          stats_.writeback_stall_seconds += Since(t0);
          continue;
        }
        // Move the buffer to the writer and drop the frame; the barrier in
        // Fetch/TryStartPrefetch covers the block until the write lands.
        auto pw = std::make_shared<PendingWrite>();
        pw->data = std::move(f.data);
        BlockStore* store = f.store;
        const int64_t block = f.block;
        pending_writes_[victim] = pw;
        writeback_inflight_bytes_ += fbytes;
        ++stats_.dirty_writebacks;
        ++stats_.async_writebacks;
        ++stats_.evictions;
        used_bytes_ -= fbytes;
        policy_->OnErase(victim);
        frames_.erase(fit);
        write_io_->WriteBlockAsync(
            store, block, pw->data.data(),
            [this, victim, pw, fbytes](Status st) {
              MutexLock cb_lock(&mu_);
              pw->done = true;
              pw->status = std::move(st);
              writeback_inflight_bytes_ -= fbytes;
              if (pw->status.ok()) {
                pending_writes_.erase(victim);
              } else {
                // The data cannot reach disk; keep only the status (the
                // entry poisons the block until DrainWritebacks).
                pw->data.clear();
                pw->data.shrink_to_fit();
              }
              writeback_cv_.NotifyAll();
            });
        continue;
      }
      RIOT_RETURN_NOT_OK(f.store->WriteBlock(f.block, f.data.data()));
      ++stats_.dirty_writebacks;
    }
    ++stats_.evictions;
    EraseFrameLocked(&f);
  }
  return Status::OK();
}

Result<BufferPool::Frame*> BufferPool::Fetch(int array_id, int64_t block,
                                             int64_t bytes, BlockStore* store,
                                             bool load, bool* was_resident,
                                             PoolAccount* account,
                                             bool coalesce_loads) {
  UniqueMutexLock lock(&mu_);
  Key key{array_id, block};
  bool counted_miss = false;
  // Residency is reported for the iteration that actually returns: a hit
  // iteration may wait (prefetch state, write barrier) and come back to a
  // miss, and a stale `true` would make a session caller skip loading a
  // zero-filled frame.
  if (was_resident != nullptr) *was_resident = false;
  for (;;) {
    auto it = frames_.find(key);
    if (it != frames_.end()) {
      Frame& f = it->second;
      if (f.state != FrameState::kRegular) {
        // Within one run the consumer resolves its own pending prefetches
        // before fetching, so this is reachable only across tenants: some
        // other session's prefetch owns the frame. Wait for it to adopt
        // (frame becomes regular) or abandon (frame disappears), then
        // restart — either way the block's bytes are never read twice.
        RIOT_CHECK(coalesce_loads)
            << "Fetch on a block in a prefetch state (adopt/abandon it "
               "first)";
        ++stats_.coalesced_loads;
        for (;;) {
          auto it2 = frames_.find(key);
          if (it2 == frames_.end() ||
              it2->second.state == FrameState::kRegular) {
            break;
          }
          load_cv_.Wait(lock);
        }
        continue;
      }
      if (f.discarded) {
        // Garbage contents (failed load) awaiting its holders' release; the
        // run is already failing — refuse rather than hand out zeros.
        return Status::Internal("fetch of a discarded frame (run aborting)");
      }
      if (account != nullptr && !CountsAsRequired(f)) {
        // This pin makes the frame newly required: the session pays for it
        // (a frame another tenant already holds required stays on their
        // tab — the budget check below never fires for it).
        const int64_t sz = static_cast<int64_t>(f.data.size());
        if (account->charged_bytes.load(std::memory_order_relaxed) + sz >
            account->budget_bytes) {
          account->budget_rejections.fetch_add(1, std::memory_order_relaxed);
          return Status::ResourceExhausted(
              "session budget exceeded: charged " +
              std::to_string(
                  account->charged_bytes.load(std::memory_order_relaxed)) +
              " + " + std::to_string(sz) + " > budget " +
              std::to_string(account->budget_bytes));
        }
      }
      if (!counted_miss) ++stats_.hits;
      if (was_resident != nullptr) *was_resident = true;
      MutateTracked(&f, [&] {
        ++f.pins;
        AddHoldLocked(&f, account);
      });
      policy_->OnTouch(key);
      if (coalesce_loads && f.loading) {
        // Another session's creator is mid-load; join its disk read
        // instead of issuing a second one (or observing a torn buffer).
        ++stats_.coalesced_loads;
        Frame* fp = &f;
        while (fp->loading && !fp->discarded) load_cv_.Wait(lock);
        if (fp->discarded) {
          MutateTracked(fp, [&] {
            --fp->pins;
            DropHoldLocked(fp, account);
          });
          if (fp->pins == 0) EraseFrameLocked(fp);
          return Status::Internal(
              "coalesced load failed in the loading session");
        }
      }
      return &f;
    }
    if (pending_writes_.count(key) > 0) {
      // Write-behind barrier: the block's only current copy is in flight
      // to disk. Wait it out so the load below observes the written data.
      RIOT_RETURN_NOT_OK(WaitWritebackLocked(lock, key));
      continue;  // the wait dropped the lock: re-check residency
    }
    if (account != nullptr &&
        account->charged_bytes.load(std::memory_order_relaxed) + bytes >
            account->budget_bytes) {
      account->budget_rejections.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "session budget exceeded: charged " +
          std::to_string(
              account->charged_bytes.load(std::memory_order_relaxed)) +
          " + " + std::to_string(bytes) + " > budget " +
          std::to_string(account->budget_bytes));
    }
    if (!counted_miss) {
      ++stats_.misses;
      counted_miss = true;
    }
    RIOT_RETURN_NOT_OK(EnsureCapacityLocked(lock, bytes,
                                            /*for_prefetch=*/false));
    // Capacity waits (write-behind) may have dropped the lock: if the
    // frame or a pending write materialized meanwhile, start over.
    if (frames_.count(key) > 0 || pending_writes_.count(key) > 0) continue;
    break;
  }
  if (was_resident != nullptr) *was_resident = false;
  Frame f;
  f.array_id = array_id;
  f.block = block;
  f.data.resize(static_cast<size_t>(bytes));
  RIOT_DCHECK(IsAligned(f.data.data()))
      << "frame buffer not cache-line aligned";
  f.store = store;
  if (load) {
    RIOT_CHECK(store != nullptr);
    // With write-behind active, async writers touch this store from I/O
    // workers; route the pool's own load through the shared per-store
    // lock (store implementations are not required to be thread-safe).
    std::shared_ptr<std::mutex> serial =
        write_io_ != nullptr ? write_io_->store_mutex(store) : nullptr;
    std::unique_lock<std::mutex> store_lock;
    if (serial != nullptr) store_lock = std::unique_lock<std::mutex>(*serial);
    RIOT_RETURN_NOT_OK(store->ReadBlock(block, f.data.data()));
  }
  f.pins = 1;
  f.loading = coalesce_loads && !load;  // caller fills it, then MarkLoaded
  AddHoldLocked(&f, account);
  used_bytes_ += bytes;
  required_bytes_ += bytes;
  auto [ins, ok] = frames_.emplace(key, std::move(f));
  RIOT_CHECK(ok);
  RechargeLocked(&ins->second);  // charges `account` (budget checked above)
  policy_->OnTouch(key);
  return &ins->second;
}

void BufferPool::DetachAccount(PoolAccount* account) {
  MutexLock lock(&mu_);
  for (auto& [key, f] : frames_) {
    if (f.account != account && f.holders.empty() && f.retentions.empty()) {
      continue;
    }
    // Drop the account's holds and retentions (normally already released
    // by the executor's cleanup — this is the backstop that guarantees no
    // dangling pointer survives the account). MutateTracked's recharge
    // then transfers any remaining charge to a surviving claimant, or
    // orphans it when only anonymous pins keep the frame required.
    MutateTracked(&f, [&] {
      auto& hs = f.holders;
      hs.erase(std::remove_if(
                   hs.begin(), hs.end(),
                   [&](const Holder& h) { return h.account == account; }),
               hs.end());
      auto& rs = f.retentions;
      rs.erase(std::remove_if(
                   rs.begin(), rs.end(),
                   [&](const Retention& r) { return r.owner == account; }),
               rs.end());
    });
  }
}

void BufferPool::MarkLoaded(Frame* frame) {
  {
    MutexLock lock(&mu_);
    RIOT_CHECK(frame->loading);
    RIOT_CHECK_GT(frame->pins, 0) << "MarkLoaded on an unpinned frame";
    // Pinned before and after: no evictability/required transition.
    frame->loading = false;
  }
  load_cv_.NotifyAll();
}

void BufferPool::EraseFrameLocked(Frame* frame) {
  Key key{frame->array_id, frame->block};
  used_bytes_ -= static_cast<int64_t>(frame->data.size());
  policy_->OnErase(key);
  frames_.erase(key);
}

void BufferPool::Unpin(Frame* frame, PoolAccount* account) {
  MutexLock lock(&mu_);
  RIOT_CHECK_GT(frame->pins, 0);
  MutateTracked(frame, [&] {
    --frame->pins;
    DropHoldLocked(frame, account);
  });
  if (frame->discarded && frame->pins == 0) EraseFrameLocked(frame);
}

void BufferPool::Discard(Frame* frame, PoolAccount* account) {
  bool was_loading = false;
  {
    MutexLock lock(&mu_);
    RIOT_CHECK_GT(frame->pins, 0);
    was_loading = frame->loading;
    MutateTracked(frame, [&] {
      --frame->pins;
      DropHoldLocked(frame, account);
      frame->discarded = true;
      frame->loading = false;  // the load failed; waiters must not hang
      frame->retentions.clear();  // nothing may keep garbage alive
    });
    if (frame->pins == 0) EraseFrameLocked(frame);
  }
  // Coalesced-load waiters check `discarded` when woken and bail out.
  if (was_loading) load_cv_.NotifyAll();
}

void BufferPool::Retain(Frame* frame, int64_t until_group,
                        PoolAccount* owner) {
  MutexLock lock(&mu_);
  MutateTracked(frame, [&] {
    for (Retention& r : frame->retentions) {
      if (r.owner == owner) {
        r.until_group = std::max(r.until_group, until_group);
        return;
      }
    }
    frame->retentions.push_back(Retention{owner, until_group});
  });
}

void BufferPool::MarkClean(Frame* frame) {
  MutexLock lock(&mu_);
  frame->dirty = false;
}

void BufferPool::ReleaseRetainedBefore(int64_t group, PoolAccount* owner) {
  MutexLock lock(&mu_);
  // O(frames) under mu_ per group boundary; fine while retention counts
  // are small. If multi-tenant profiles ever show this scan hot, keep a
  // per-owner index of retained keys instead of walking every frame.
  for (auto& [key, f] : frames_) {
    if (!f.retained()) continue;
    MutateTracked(&f, [&] {
      auto& rs = f.retentions;
      rs.erase(std::remove_if(rs.begin(), rs.end(),
                              [&](const Retention& r) {
                                return r.owner == owner &&
                                       r.until_group < group;
                              }),
               rs.end());
    });
  }
}

ReplacementKind BufferPool::replacement_kind() const {
  MutexLock lock(&mu_);
  return policy_->kind();
}

void BufferPool::BindUsePlan(std::shared_ptr<const BlockUseMap> uses) {
  MutexLock lock(&mu_);
  policy_->BindUsePlan(std::move(uses));
}

void BufferPool::UnbindUsePlan(
    const std::shared_ptr<const BlockUseMap>& uses) {
  MutexLock lock(&mu_);
  policy_->UnbindUsePlan(uses);
}

void BufferPool::AdvanceReplacementClock(int64_t pos) {
  MutexLock lock(&mu_);
  policy_->AdvanceClock(nullptr, pos);
}

void BufferPool::AdvanceReplacementClock(
    const std::shared_ptr<const BlockUseMap>& uses, int64_t pos) {
  MutexLock lock(&mu_);
  policy_->AdvanceClock(uses, pos);
}

void BufferPool::SetWriteBehind(IoPool* io) {
  UniqueMutexLock lock(&mu_);
  if (io == nullptr) {
    // Detaching: every in-flight write must land first (its callback and
    // buffer reference the departing IoPool's workers).
    WaitAllWritebacksLocked(lock);
  }
  write_io_ = io;
}

Status BufferPool::DrainWritebacks() {
  UniqueMutexLock lock(&mu_);
  return DrainWritebacksLocked(lock);
}

BufferPool::Frame* BufferPool::TryStartPrefetch(int array_id, int64_t block,
                                                int64_t bytes,
                                                BlockStore* store) {
  UniqueMutexLock lock(&mu_);
  Key key{array_id, block};
  if (prefetch_bytes_ + bytes > prefetch_budget_bytes_) {
    ++stats_.prefetch_declined;
    return nullptr;
  }
  if (pending_writes_.count(key) > 0) {
    // Write-behind barrier: the block is in flight to disk; a prefetch
    // read now could observe the pre-write image. Decline — prefetch is
    // opportunistic and the consumer's Fetch barrier handles the wait.
    ++stats_.prefetch_declined;
    return nullptr;
  }
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    // The block lingers as idle cache (kPlanExact re-reads disk even on a
    // pool hit, so such frames are common). Steal the frame in place: the
    // caller's dependence check guarantees the disk copy is current, and
    // the pending-table in the executor routes every consumer access to
    // the completion. Pinned, retained, dirty, or prefetch-owned frames
    // are untouchable — decline instead.
    Frame& f = it->second;
    if (f.state != FrameState::kRegular || f.pins > 0 ||
        f.retained() || f.dirty) {
      ++stats_.prefetch_declined;
      return nullptr;
    }
    MutateTracked(&f, [&] { f.state = FrameState::kPrefetching; });
    f.store = store;
    prefetch_bytes_ += static_cast<int64_t>(f.data.size());
    ++stats_.prefetch_issued;
    policy_->OnTouch(key);
    return &f;
  }
  if (!EnsureCapacityLocked(lock, bytes, /*for_prefetch=*/true).ok()) {
    ++stats_.prefetch_declined;
    return nullptr;
  }
  // A prefetch-driven eviction never spills, so the lock was never
  // dropped: no concurrent frame for `key` can have appeared.
  Frame f;
  f.array_id = array_id;
  f.block = block;
  f.data.resize(static_cast<size_t>(bytes));
  RIOT_DCHECK(IsAligned(f.data.data()))
      << "frame buffer not cache-line aligned";
  f.store = store;
  f.state = FrameState::kPrefetching;
  used_bytes_ += bytes;
  prefetch_bytes_ += bytes;
  ++stats_.prefetch_issued;
  auto [ins, ok] = frames_.emplace(key, std::move(f));
  RIOT_CHECK(ok);
  policy_->OnTouch(key);
  return &ins->second;
}

void BufferPool::CompletePrefetch(Frame* frame) {
  MutexLock lock(&mu_);
  RIOT_CHECK(frame->state == FrameState::kPrefetching);
  MutateTracked(frame, [&] { frame->state = FrameState::kPrefetched; });
}

BufferPool::Frame* BufferPool::AdoptPrefetched(Frame* frame,
                                               PoolAccount* account) {
  {
    MutexLock lock(&mu_);
    RIOT_CHECK(frame->state == FrameState::kPrefetched);
    prefetch_bytes_ -= static_cast<int64_t>(frame->data.size());
    MutateTracked(frame, [&] {
      frame->state = FrameState::kRegular;
      frame->pins = 1;
      AddHoldLocked(frame, account);
    });
    policy_->OnTouch({frame->array_id, frame->block});
  }
  // Cross-tenant fetches of this block wait out the prefetch state.
  load_cv_.NotifyAll();
  return frame;
}

void BufferPool::AbandonPrefetch(Frame* frame) {
  {
    MutexLock lock(&mu_);
    RIOT_CHECK(frame->state == FrameState::kPrefetched);
    prefetch_bytes_ -= static_cast<int64_t>(frame->data.size());
    ++stats_.prefetch_abandoned;
    EraseFrameLocked(frame);
  }
  load_cv_.NotifyAll();
}

void BufferPool::SetPrefetchBudget(int64_t bytes) {
  MutexLock lock(&mu_);
  prefetch_budget_bytes_ = bytes;
}

int64_t BufferPool::prefetch_bytes() const {
  MutexLock lock(&mu_);
  return prefetch_bytes_;
}

void BufferPool::Drop(int array_id, int64_t block) {
  MutexLock lock(&mu_);
  auto it = frames_.find({array_id, block});
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (f.pins > 0 || f.retained() ||
      f.state != FrameState::kRegular) {
    return;
  }
  EraseFrameLocked(&f);
}

int64_t BufferPool::DropArrayFrames(int array_id) {
  MutexLock lock(&mu_);
  int64_t kept = 0;
  for (auto it = frames_.lower_bound({array_id, 0});
       it != frames_.end() && it->first.first == array_id;) {
    Frame& f = it->second;
    ++it;  // EraseFrameLocked invalidates the current iterator
    if (f.pins > 0 || f.retained() ||
        f.state != FrameState::kRegular || f.loading) {
      ++kept;
      continue;
    }
    EraseFrameLocked(&f);
  }
  return kept;
}

Status BufferPool::FlushAll() {
  UniqueMutexLock lock(&mu_);
  Status first = DrainWritebacksLocked(lock);
  for (auto& [key, f] : frames_) {
    RIOT_CHECK(f.state != FrameState::kPrefetching)
        << "FlushAll with a prefetch in flight";
    if (f.dirty && f.store != nullptr) {
      std::shared_ptr<std::mutex> serial =
          write_io_ != nullptr ? write_io_->store_mutex(f.store) : nullptr;
      std::unique_lock<std::mutex> store_lock;
      if (serial != nullptr) {
        store_lock = std::unique_lock<std::mutex>(*serial);
      }
      Status st = f.store->WriteBlock(f.block, f.data.data());
      if (!st.ok() && first.ok()) first = st;
      if (st.ok()) f.dirty = false;
    }
  }
  RIOT_RETURN_NOT_OK(first);
  frames_.clear();
  policy_->OnClear();
  used_bytes_ = 0;
  required_bytes_ = 0;
  prefetch_bytes_ = 0;
  return Status::OK();
}

int64_t BufferPool::used_bytes() const {
  MutexLock lock(&mu_);
  return used_bytes_;
}

int64_t BufferPool::PinnedFrames() const {
  MutexLock lock(&mu_);
  int64_t n = 0;
  for (const auto& [key, f] : frames_) {
    if (f.pins > 0) ++n;
  }
  return n;
}

int64_t BufferPool::PinnedOrRetainedBytes() const {
  MutexLock lock(&mu_);
  return required_bytes_;
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

BufferPoolSnapshot BufferPool::Snapshot() const {
  MutexLock lock(&mu_);
  BufferPoolSnapshot s;
  s.stats = stats_;
  s.used_bytes = used_bytes_;
  s.required_bytes = required_bytes_;
  s.prefetch_bytes = prefetch_bytes_;
  s.writeback_inflight_bytes = writeback_inflight_bytes_;
  s.pending_writebacks = static_cast<int64_t>(pending_writes_.size());
  for (const auto& [key, f] : frames_) {
    if (f.pins > 0) ++s.pinned_frames;
  }
  return s;
}

}  // namespace riot
