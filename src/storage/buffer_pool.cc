#include "storage/buffer_pool.h"

#include "util/logging.h"

namespace riot {

BufferPool::Frame* BufferPool::Probe(int array_id, int64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find({array_id, block});
  return it == frames_.end() ? nullptr : &it->second;
}

void BufferPool::TouchLocked(const Key& key) {
  auto it = lru_pos_.find(key);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_back(key);
  lru_pos_[key] = std::prev(lru_.end());
}

Status BufferPool::EnsureCapacityLocked(int64_t incoming_bytes,
                                        bool for_prefetch) {
  while (used_bytes_ + incoming_bytes > cap_bytes_) {
    // Find the LRU frame that is neither pinned, retained, nor owned by the
    // prefetcher.
    bool evicted = false;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      auto fit = frames_.find(*it);
      RIOT_CHECK(fit != frames_.end());
      Frame& f = fit->second;
      if (f.pins > 0 || f.retain_until_group >= 0) continue;
      if (f.state != FrameState::kRegular) continue;
      if (f.dirty) {
        // Prefetch must never force a spill; decline instead.
        if (for_prefetch) continue;
        RIOT_CHECK(f.store != nullptr);
        RIOT_RETURN_NOT_OK(f.store->WriteBlock(f.block, f.data.data()));
        ++stats_.dirty_writebacks;
      }
      used_bytes_ -= static_cast<int64_t>(f.data.size());
      ++stats_.evictions;
      lru_pos_.erase(*it);
      frames_.erase(fit);
      lru_.erase(it);
      evicted = true;
      break;
    }
    if (!evicted) {
      return Status::ResourceExhausted(
          "buffer pool cap exceeded with all frames pinned/retained (cap=" +
          std::to_string(cap_bytes_) + ", used=" +
          std::to_string(used_bytes_) + ", need=" +
          std::to_string(incoming_bytes) + ")");
    }
  }
  return Status::OK();
}

Result<BufferPool::Frame*> BufferPool::Fetch(int array_id, int64_t block,
                                             int64_t bytes, BlockStore* store,
                                             bool load, bool* was_resident) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{array_id, block};
  auto it = frames_.find(key);
  if (was_resident != nullptr) *was_resident = it != frames_.end();
  if (it != frames_.end()) {
    Frame& f = it->second;
    RIOT_CHECK(f.state == FrameState::kRegular)
        << "Fetch on a block in a prefetch state (adopt/abandon it first)";
    if (f.discarded) {
      // Garbage contents (failed load) awaiting its holders' release; the
      // run is already failing — refuse rather than hand out zeros.
      return Status::Internal("fetch of a discarded frame (run aborting)");
    }
    ++stats_.hits;
    MutateTracked(&f, [&] { ++f.pins; });
    TouchLocked(key);
    return &f;
  }
  ++stats_.misses;
  RIOT_RETURN_NOT_OK(EnsureCapacityLocked(bytes, /*for_prefetch=*/false));
  Frame f;
  f.array_id = array_id;
  f.block = block;
  f.data.resize(static_cast<size_t>(bytes));
  f.store = store;
  if (load) {
    RIOT_CHECK(store != nullptr);
    RIOT_RETURN_NOT_OK(store->ReadBlock(block, f.data.data()));
  }
  f.pins = 1;
  used_bytes_ += bytes;
  required_bytes_ += bytes;
  auto [ins, ok] = frames_.emplace(key, std::move(f));
  RIOT_CHECK(ok);
  TouchLocked(key);
  return &ins->second;
}

void BufferPool::EraseFrameLocked(Frame* frame) {
  Key key{frame->array_id, frame->block};
  used_bytes_ -= static_cast<int64_t>(frame->data.size());
  auto lit = lru_pos_.find(key);
  RIOT_CHECK(lit != lru_pos_.end());
  lru_.erase(lit->second);
  lru_pos_.erase(lit);
  frames_.erase(key);
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK_GT(frame->pins, 0);
  MutateTracked(frame, [&] { --frame->pins; });
  if (frame->discarded && frame->pins == 0) EraseFrameLocked(frame);
}

void BufferPool::Discard(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK_GT(frame->pins, 0);
  MutateTracked(frame, [&] {
    --frame->pins;
    frame->discarded = true;
    frame->retain_until_group = -1;  // nothing may keep garbage alive
  });
  if (frame->pins == 0) EraseFrameLocked(frame);
}

void BufferPool::Retain(Frame* frame, int64_t until_group) {
  std::lock_guard<std::mutex> lock(mu_);
  MutateTracked(frame, [&] {
    frame->retain_until_group =
        std::max(frame->retain_until_group, until_group);
  });
}

void BufferPool::MarkClean(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frame->dirty = false;
}

void BufferPool::ReleaseRetainedBefore(int64_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, f] : frames_) {
    if (f.retain_until_group >= 0 && f.retain_until_group < group) {
      MutateTracked(&f, [&] { f.retain_until_group = -1; });
    }
  }
}

BufferPool::Frame* BufferPool::TryStartPrefetch(int array_id, int64_t block,
                                                int64_t bytes,
                                                BlockStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{array_id, block};
  if (prefetch_bytes_ + bytes > prefetch_budget_bytes_) {
    ++stats_.prefetch_declined;
    return nullptr;
  }
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    // The block lingers as idle cache (kPlanExact re-reads disk even on a
    // pool hit, so such frames are common). Steal the frame in place: the
    // caller's dependence check guarantees the disk copy is current, and
    // the pending-table in the executor routes every consumer access to
    // the completion. Pinned, retained, dirty, or prefetch-owned frames
    // are untouchable — decline instead.
    Frame& f = it->second;
    if (f.state != FrameState::kRegular || f.pins > 0 ||
        f.retain_until_group >= 0 || f.dirty) {
      ++stats_.prefetch_declined;
      return nullptr;
    }
    f.state = FrameState::kPrefetching;
    f.store = store;
    prefetch_bytes_ += static_cast<int64_t>(f.data.size());
    ++stats_.prefetch_issued;
    TouchLocked(key);
    return &f;
  }
  if (!EnsureCapacityLocked(bytes, /*for_prefetch=*/true).ok()) {
    ++stats_.prefetch_declined;
    return nullptr;
  }
  Frame f;
  f.array_id = array_id;
  f.block = block;
  f.data.resize(static_cast<size_t>(bytes));
  f.store = store;
  f.state = FrameState::kPrefetching;
  used_bytes_ += bytes;
  prefetch_bytes_ += bytes;
  ++stats_.prefetch_issued;
  auto [ins, ok] = frames_.emplace(key, std::move(f));
  RIOT_CHECK(ok);
  TouchLocked(key);
  return &ins->second;
}

void BufferPool::CompletePrefetch(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK(frame->state == FrameState::kPrefetching);
  frame->state = FrameState::kPrefetched;
}

BufferPool::Frame* BufferPool::AdoptPrefetched(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK(frame->state == FrameState::kPrefetched);
  prefetch_bytes_ -= static_cast<int64_t>(frame->data.size());
  MutateTracked(frame, [&] {
    frame->state = FrameState::kRegular;
    frame->pins = 1;
  });
  TouchLocked({frame->array_id, frame->block});
  return frame;
}

void BufferPool::AbandonPrefetch(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK(frame->state == FrameState::kPrefetched);
  const int64_t bytes = static_cast<int64_t>(frame->data.size());
  prefetch_bytes_ -= bytes;
  used_bytes_ -= bytes;
  ++stats_.prefetch_abandoned;
  Key key{frame->array_id, frame->block};
  auto lit = lru_pos_.find(key);
  RIOT_CHECK(lit != lru_pos_.end());
  lru_.erase(lit->second);
  lru_pos_.erase(lit);
  frames_.erase(key);
}

void BufferPool::SetPrefetchBudget(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  prefetch_budget_bytes_ = bytes;
}

int64_t BufferPool::prefetch_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prefetch_bytes_;
}

void BufferPool::Drop(int array_id, int64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find({array_id, block});
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (f.pins > 0 || f.retain_until_group >= 0 ||
      f.state != FrameState::kRegular) {
    return;
  }
  EraseFrameLocked(&f);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, f] : frames_) {
    RIOT_CHECK(f.state != FrameState::kPrefetching)
        << "FlushAll with a prefetch in flight";
    if (f.dirty && f.store != nullptr) {
      RIOT_RETURN_NOT_OK(f.store->WriteBlock(f.block, f.data.data()));
      f.dirty = false;
    }
  }
  frames_.clear();
  lru_.clear();
  lru_pos_.clear();
  used_bytes_ = 0;
  required_bytes_ = 0;
  prefetch_bytes_ = 0;
  return Status::OK();
}

int64_t BufferPool::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_bytes_;
}

int64_t BufferPool::PinnedFrames() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& [key, f] : frames_) {
    if (f.pins > 0) ++n;
  }
  return n;
}

int64_t BufferPool::PinnedOrRetainedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return required_bytes_;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace riot
