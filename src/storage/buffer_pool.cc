#include "storage/buffer_pool.h"

#include <chrono>

#include "storage/io_pool.h"
#include "util/logging.h"

namespace riot {

namespace {
double Since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

BufferPool::BufferPool(int64_t cap_bytes,
                       std::unique_ptr<ReplacementPolicy> policy)
    : cap_bytes_(cap_bytes),
      policy_(policy != nullptr
                  ? std::move(policy)
                  : MakeReplacementPolicy(ReplacementKind::kLru)) {}

BufferPool::~BufferPool() {
  // Write-behind callbacks reference this pool; they must all have fired.
  // Failures were surfaced through DrainWritebacks/Fetch barriers (or are
  // dropped here — the pool is going away along with its cache).
  std::unique_lock<std::mutex> lock(mu_);
  WaitAllWritebacksLocked(lock);
}

void BufferPool::WaitAllWritebacksLocked(std::unique_lock<std::mutex>& lock) {
  writeback_cv_.wait(lock, [this] {
    for (const auto& [key, pw] : pending_writes_) {
      if (!pw->done) return false;
    }
    return true;
  });
}

Status BufferPool::DrainWritebacksLocked(std::unique_lock<std::mutex>& lock) {
  WaitAllWritebacksLocked(lock);
  Status first = Status::OK();
  for (const auto& [key, pw] : pending_writes_) {
    if (!pw->status.ok() && first.ok()) first = pw->status;
  }
  pending_writes_.clear();
  return first;
}

BufferPool::Frame* BufferPool::Probe(int array_id, int64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find({array_id, block});
  return it == frames_.end() ? nullptr : &it->second;
}

Status BufferPool::WaitWritebackLocked(std::unique_lock<std::mutex>& lock,
                                       const Key& key) {
  for (;;) {
    auto pit = pending_writes_.find(key);
    if (pit == pending_writes_.end()) return Status::OK();
    if (pit->second->done) {
      // Completed-ok entries erase themselves; a lingering done entry is a
      // failed write: the block's disk image is stale and its data is
      // gone. Surface the error instead of letting the caller reread
      // garbage (DrainWritebacks clears the poisoning).
      return pit->second->status;
    }
    auto t0 = std::chrono::steady_clock::now();
    writeback_cv_.wait(lock);
    stats_.writeback_stall_seconds += Since(t0);
  }
}

Status BufferPool::EnsureCapacityLocked(std::unique_lock<std::mutex>& lock,
                                        int64_t incoming_bytes,
                                        bool for_prefetch) {
  while (used_bytes_ + incoming_bytes > cap_bytes_) {
    // The policy orders candidates; dirty frames are unusable for a
    // prefetch-driven eviction (prefetch must never force a spill).
    auto usable = [&](const Key& k) {
      auto fit = frames_.find(k);
      RIOT_CHECK(fit != frames_.end());
      return !(for_prefetch && fit->second.dirty);
    };
    Key victim;
    if (!policy_->PickVictim(usable, &victim)) {
      return Status::ResourceExhausted(
          "buffer pool cap exceeded with all frames pinned/retained (cap=" +
          std::to_string(cap_bytes_) + ", used=" +
          std::to_string(used_bytes_) + ", need=" +
          std::to_string(incoming_bytes) + ")");
    }
    auto fit = frames_.find(victim);
    RIOT_CHECK(fit != frames_.end());
    Frame& f = fit->second;
    RIOT_CHECK(IsEvictable(f));
    if (f.dirty) {
      RIOT_CHECK(!for_prefetch);
      RIOT_CHECK(f.store != nullptr);
      if (write_io_ != nullptr) {
        const int64_t fbytes = static_cast<int64_t>(f.data.size());
        // A frame and a pending write of the same block are mutually
        // exclusive: async eviction erases the frame under this lock, and
        // Fetch/TryStartPrefetch never re-create it past the barrier.
        RIOT_CHECK(pending_writes_.count(victim) == 0);
        // In-flight write-behind buffers live outside the cap; bound them.
        const int64_t budget = std::max(cap_bytes_ / 4, fbytes);
        if (writeback_inflight_bytes_ + fbytes > budget) {
          auto t0 = std::chrono::steady_clock::now();
          writeback_cv_.wait(lock);
          stats_.writeback_stall_seconds += Since(t0);
          continue;
        }
        // Move the buffer to the writer and drop the frame; the barrier in
        // Fetch/TryStartPrefetch covers the block until the write lands.
        auto pw = std::make_shared<PendingWrite>();
        pw->data = std::move(f.data);
        BlockStore* store = f.store;
        const int64_t block = f.block;
        pending_writes_[victim] = pw;
        writeback_inflight_bytes_ += fbytes;
        ++stats_.dirty_writebacks;
        ++stats_.async_writebacks;
        ++stats_.evictions;
        used_bytes_ -= fbytes;
        policy_->OnErase(victim);
        frames_.erase(fit);
        write_io_->WriteBlockAsync(
            store, block, pw->data.data(),
            [this, victim, pw, fbytes](Status st) {
              std::lock_guard<std::mutex> cb_lock(mu_);
              pw->done = true;
              pw->status = std::move(st);
              writeback_inflight_bytes_ -= fbytes;
              if (pw->status.ok()) {
                pending_writes_.erase(victim);
              } else {
                // The data cannot reach disk; keep only the status (the
                // entry poisons the block until DrainWritebacks).
                pw->data.clear();
                pw->data.shrink_to_fit();
              }
              writeback_cv_.notify_all();
            });
        continue;
      }
      RIOT_RETURN_NOT_OK(f.store->WriteBlock(f.block, f.data.data()));
      ++stats_.dirty_writebacks;
    }
    ++stats_.evictions;
    EraseFrameLocked(&f);
  }
  return Status::OK();
}

Result<BufferPool::Frame*> BufferPool::Fetch(int array_id, int64_t block,
                                             int64_t bytes, BlockStore* store,
                                             bool load, bool* was_resident) {
  std::unique_lock<std::mutex> lock(mu_);
  Key key{array_id, block};
  bool counted_miss = false;
  for (;;) {
    auto it = frames_.find(key);
    if (it != frames_.end()) {
      if (was_resident != nullptr) *was_resident = true;
      Frame& f = it->second;
      RIOT_CHECK(f.state == FrameState::kRegular)
          << "Fetch on a block in a prefetch state (adopt/abandon it first)";
      if (f.discarded) {
        // Garbage contents (failed load) awaiting its holders' release; the
        // run is already failing — refuse rather than hand out zeros.
        return Status::Internal("fetch of a discarded frame (run aborting)");
      }
      if (!counted_miss) ++stats_.hits;
      MutateTracked(&f, [&] { ++f.pins; });
      policy_->OnTouch(key);
      return &f;
    }
    if (pending_writes_.count(key) > 0) {
      // Write-behind barrier: the block's only current copy is in flight
      // to disk. Wait it out so the load below observes the written data.
      RIOT_RETURN_NOT_OK(WaitWritebackLocked(lock, key));
      continue;  // the wait dropped the lock: re-check residency
    }
    if (!counted_miss) {
      ++stats_.misses;
      counted_miss = true;
    }
    RIOT_RETURN_NOT_OK(EnsureCapacityLocked(lock, bytes,
                                            /*for_prefetch=*/false));
    // Capacity waits (write-behind) may have dropped the lock: if the
    // frame or a pending write materialized meanwhile, start over.
    if (frames_.count(key) > 0 || pending_writes_.count(key) > 0) continue;
    break;
  }
  if (was_resident != nullptr) *was_resident = false;
  Frame f;
  f.array_id = array_id;
  f.block = block;
  f.data.resize(static_cast<size_t>(bytes));
  f.store = store;
  if (load) {
    RIOT_CHECK(store != nullptr);
    // With write-behind active, async writers touch this store from I/O
    // workers; route the pool's own load through the shared per-store
    // lock (store implementations are not required to be thread-safe).
    std::shared_ptr<std::mutex> serial =
        write_io_ != nullptr ? write_io_->store_mutex(store) : nullptr;
    std::unique_lock<std::mutex> store_lock;
    if (serial != nullptr) store_lock = std::unique_lock<std::mutex>(*serial);
    RIOT_RETURN_NOT_OK(store->ReadBlock(block, f.data.data()));
  }
  f.pins = 1;
  used_bytes_ += bytes;
  required_bytes_ += bytes;
  auto [ins, ok] = frames_.emplace(key, std::move(f));
  RIOT_CHECK(ok);
  policy_->OnTouch(key);
  return &ins->second;
}

void BufferPool::EraseFrameLocked(Frame* frame) {
  Key key{frame->array_id, frame->block};
  used_bytes_ -= static_cast<int64_t>(frame->data.size());
  policy_->OnErase(key);
  frames_.erase(key);
}

void BufferPool::Unpin(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK_GT(frame->pins, 0);
  MutateTracked(frame, [&] { --frame->pins; });
  if (frame->discarded && frame->pins == 0) EraseFrameLocked(frame);
}

void BufferPool::Discard(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK_GT(frame->pins, 0);
  MutateTracked(frame, [&] {
    --frame->pins;
    frame->discarded = true;
    frame->retain_until_group = -1;  // nothing may keep garbage alive
  });
  if (frame->pins == 0) EraseFrameLocked(frame);
}

void BufferPool::Retain(Frame* frame, int64_t until_group) {
  std::lock_guard<std::mutex> lock(mu_);
  MutateTracked(frame, [&] {
    frame->retain_until_group =
        std::max(frame->retain_until_group, until_group);
  });
}

void BufferPool::MarkClean(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frame->dirty = false;
}

void BufferPool::ReleaseRetainedBefore(int64_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, f] : frames_) {
    if (f.retain_until_group >= 0 && f.retain_until_group < group) {
      MutateTracked(&f, [&] { f.retain_until_group = -1; });
    }
  }
}

ReplacementKind BufferPool::replacement_kind() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->kind();
}

void BufferPool::BindUsePlan(std::shared_ptr<const BlockUseMap> uses) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_->BindUsePlan(std::move(uses));
}

void BufferPool::UnbindUsePlan() {
  std::lock_guard<std::mutex> lock(mu_);
  policy_->UnbindUsePlan();
}

void BufferPool::AdvanceReplacementClock(int64_t pos) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_->AdvanceClock(pos);
}

void BufferPool::SetWriteBehind(IoPool* io) {
  std::unique_lock<std::mutex> lock(mu_);
  if (io == nullptr) {
    // Detaching: every in-flight write must land first (its callback and
    // buffer reference the departing IoPool's workers).
    WaitAllWritebacksLocked(lock);
  }
  write_io_ = io;
}

Status BufferPool::DrainWritebacks() {
  std::unique_lock<std::mutex> lock(mu_);
  return DrainWritebacksLocked(lock);
}

BufferPool::Frame* BufferPool::TryStartPrefetch(int array_id, int64_t block,
                                                int64_t bytes,
                                                BlockStore* store) {
  std::unique_lock<std::mutex> lock(mu_);
  Key key{array_id, block};
  if (prefetch_bytes_ + bytes > prefetch_budget_bytes_) {
    ++stats_.prefetch_declined;
    return nullptr;
  }
  if (pending_writes_.count(key) > 0) {
    // Write-behind barrier: the block is in flight to disk; a prefetch
    // read now could observe the pre-write image. Decline — prefetch is
    // opportunistic and the consumer's Fetch barrier handles the wait.
    ++stats_.prefetch_declined;
    return nullptr;
  }
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    // The block lingers as idle cache (kPlanExact re-reads disk even on a
    // pool hit, so such frames are common). Steal the frame in place: the
    // caller's dependence check guarantees the disk copy is current, and
    // the pending-table in the executor routes every consumer access to
    // the completion. Pinned, retained, dirty, or prefetch-owned frames
    // are untouchable — decline instead.
    Frame& f = it->second;
    if (f.state != FrameState::kRegular || f.pins > 0 ||
        f.retain_until_group >= 0 || f.dirty) {
      ++stats_.prefetch_declined;
      return nullptr;
    }
    MutateTracked(&f, [&] { f.state = FrameState::kPrefetching; });
    f.store = store;
    prefetch_bytes_ += static_cast<int64_t>(f.data.size());
    ++stats_.prefetch_issued;
    policy_->OnTouch(key);
    return &f;
  }
  if (!EnsureCapacityLocked(lock, bytes, /*for_prefetch=*/true).ok()) {
    ++stats_.prefetch_declined;
    return nullptr;
  }
  // A prefetch-driven eviction never spills, so the lock was never
  // dropped: no concurrent frame for `key` can have appeared.
  Frame f;
  f.array_id = array_id;
  f.block = block;
  f.data.resize(static_cast<size_t>(bytes));
  f.store = store;
  f.state = FrameState::kPrefetching;
  used_bytes_ += bytes;
  prefetch_bytes_ += bytes;
  ++stats_.prefetch_issued;
  auto [ins, ok] = frames_.emplace(key, std::move(f));
  RIOT_CHECK(ok);
  policy_->OnTouch(key);
  return &ins->second;
}

void BufferPool::CompletePrefetch(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK(frame->state == FrameState::kPrefetching);
  MutateTracked(frame, [&] { frame->state = FrameState::kPrefetched; });
}

BufferPool::Frame* BufferPool::AdoptPrefetched(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK(frame->state == FrameState::kPrefetched);
  prefetch_bytes_ -= static_cast<int64_t>(frame->data.size());
  MutateTracked(frame, [&] {
    frame->state = FrameState::kRegular;
    frame->pins = 1;
  });
  policy_->OnTouch({frame->array_id, frame->block});
  return frame;
}

void BufferPool::AbandonPrefetch(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  RIOT_CHECK(frame->state == FrameState::kPrefetched);
  prefetch_bytes_ -= static_cast<int64_t>(frame->data.size());
  ++stats_.prefetch_abandoned;
  EraseFrameLocked(frame);
}

void BufferPool::SetPrefetchBudget(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  prefetch_budget_bytes_ = bytes;
}

int64_t BufferPool::prefetch_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prefetch_bytes_;
}

void BufferPool::Drop(int array_id, int64_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find({array_id, block});
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (f.pins > 0 || f.retain_until_group >= 0 ||
      f.state != FrameState::kRegular) {
    return;
  }
  EraseFrameLocked(&f);
}

Status BufferPool::FlushAll() {
  std::unique_lock<std::mutex> lock(mu_);
  Status first = DrainWritebacksLocked(lock);
  for (auto& [key, f] : frames_) {
    RIOT_CHECK(f.state != FrameState::kPrefetching)
        << "FlushAll with a prefetch in flight";
    if (f.dirty && f.store != nullptr) {
      std::shared_ptr<std::mutex> serial =
          write_io_ != nullptr ? write_io_->store_mutex(f.store) : nullptr;
      std::unique_lock<std::mutex> store_lock;
      if (serial != nullptr) {
        store_lock = std::unique_lock<std::mutex>(*serial);
      }
      Status st = f.store->WriteBlock(f.block, f.data.data());
      if (!st.ok() && first.ok()) first = st;
      if (st.ok()) f.dirty = false;
    }
  }
  RIOT_RETURN_NOT_OK(first);
  frames_.clear();
  policy_->OnClear();
  used_bytes_ = 0;
  required_bytes_ = 0;
  prefetch_bytes_ = 0;
  return Status::OK();
}

int64_t BufferPool::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_bytes_;
}

int64_t BufferPool::PinnedFrames() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& [key, f] : frames_) {
    if (f.pins > 0) ++n;
  }
  return n;
}

int64_t BufferPool::PinnedOrRetainedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return required_bytes_;
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace riot
