// LAB-tree (Linearized Array B-tree, RIOTStore [26]): a paged B+-tree
// mapping the linearized block index of an array block to the file extent
// holding its data. Node pages and data extents share one file; node pages
// are cached in memory with write-back on Flush so steady-state per-block
// I/O matches DAF exactly (one data-extent read/write per block access).
#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "storage/block_store.h"
#include "util/logging.h"

namespace riot {

namespace {

constexpr uint32_t kMagic = 0x4C414254;  // "LABT"
constexpr int64_t kPageBytes = 4096;
// Page layout: [u8 is_leaf][u8 pad][u16 nkeys][u32 pad][i64 next_leaf]
//              then nkeys * (i64 key, i64 value-or-child).
constexpr size_t kPageHeader = 16;
constexpr size_t kEntryBytes = 16;
constexpr size_t kMaxKeys = (kPageBytes - kPageHeader) / kEntryBytes;  // 255

struct Node {
  bool is_leaf = true;
  int64_t next_leaf = -1;  // leaf chain (range scans)
  std::vector<int64_t> keys;
  std::vector<int64_t> vals;  // leaf: data offsets; internal: child page ids
  bool dirty = false;
};

struct Header {
  uint32_t magic = kMagic;
  int64_t block_bytes = 0;
  int64_t root_page = -1;
  int64_t next_page_id = 0;
  int64_t next_free_offset = kPageBytes;  // byte 0.. is the header page
};

class LabTreeStore : public BlockStore {
 public:
  LabTreeStore(std::unique_ptr<File> file, int64_t block_bytes)
      : BlockStore(block_bytes), file_(std::move(file)) {}

  Status Open() {
    auto size = file_->Size();
    if (!size.ok()) return size.status();
    if (*size >= sizeof(Header)) {
      RIOT_RETURN_NOT_OK(file_->Read(0, sizeof(Header), &hdr_));
      if (hdr_.magic != kMagic) {
        return Status::IoError("LAB-tree: bad magic");
      }
      if (hdr_.block_bytes != block_bytes_) {
        return Status::InvalidArgument("LAB-tree: block size mismatch");
      }
      return Status::OK();
    }
    // Fresh tree: a single empty leaf as root.
    hdr_.block_bytes = block_bytes_;
    hdr_.root_page = AllocPage(/*is_leaf=*/true);
    return WriteHeader();
  }

  Status ReadBlock(int64_t block_index, void* buf) override {
    int64_t off;
    if (!Lookup(block_index, &off)) {
      return Status::NotFound("LAB-tree: block " +
                              std::to_string(block_index) + " not present");
    }
    return file_->Read(static_cast<uint64_t>(off),
                       static_cast<size_t>(block_bytes_), buf);
  }

  Status WriteBlock(int64_t block_index, const void* buf) override {
    int64_t off;
    if (!Lookup(block_index, &off)) {
      off = hdr_.next_free_offset;
      hdr_.next_free_offset += block_bytes_;
      hdr_dirty_ = true;
      RIOT_RETURN_NOT_OK(Insert(block_index, off));
    }
    return file_->Write(static_cast<uint64_t>(off),
                        static_cast<size_t>(block_bytes_), buf);
  }

  bool HasBlock(int64_t block_index) override {
    int64_t off;
    return Lookup(block_index, &off);
  }

  Status Flush() override {
    for (auto& [id, node] : cache_) {
      if (node.dirty) {
        RIOT_RETURN_NOT_OK(WritePage(id, node));
        node.dirty = false;
      }
    }
    if (hdr_dirty_) {
      RIOT_RETURN_NOT_OK(WriteHeader());
      hdr_dirty_ = false;
    }
    return file_->Sync();
  }

 private:
  int64_t AllocPage(bool is_leaf) {
    int64_t id = hdr_.next_page_id++;
    Node n;
    n.is_leaf = is_leaf;
    n.dirty = true;
    // Page storage interleaves with data extents; allocate from the shared
    // free pointer.
    page_offset_[id] = hdr_.next_free_offset;
    hdr_.next_free_offset += kPageBytes;
    hdr_dirty_ = true;
    cache_[id] = std::move(n);
    return id;
  }

  Status WriteHeader() {
    // Page offsets must be recoverable: persist them after the fixed header
    // in the header page (supports up to ~250 node pages, plenty for the
    // block counts in scope; grows into a page directory if exceeded).
    struct Persist {
      Header hdr;
      int64_t count;
      int64_t entries[240][2];
    } p;
    std::memset(&p, 0, sizeof(p));
    p.hdr = hdr_;
    RIOT_CHECK_LE(page_offset_.size(), 240u)
        << "LAB-tree node directory overflow";
    p.count = static_cast<int64_t>(page_offset_.size());
    int64_t i = 0;
    for (auto [id, off] : page_offset_) {
      p.entries[i][0] = id;
      p.entries[i][1] = off;
      ++i;
    }
    static_assert(sizeof(Persist) <= kPageBytes);
    return file_->Write(0, sizeof(Persist), &p);
  }

  Result<Node*> GetNode(int64_t id) {
    auto it = cache_.find(id);
    if (it != cache_.end()) return &it->second;
    // Load page offsets lazily from the header page directory.
    if (page_offset_.find(id) == page_offset_.end()) {
      struct Persist {
        Header hdr;
        int64_t count;
        int64_t entries[240][2];
      } p;
      RIOT_RETURN_NOT_OK(file_->Read(0, sizeof(p), &p));
      for (int64_t i = 0; i < p.count; ++i) {
        page_offset_[p.entries[i][0]] = p.entries[i][1];
      }
    }
    auto off_it = page_offset_.find(id);
    if (off_it == page_offset_.end()) {
      return Status::Internal("LAB-tree: unknown page id " +
                              std::to_string(id));
    }
    std::vector<uint8_t> raw(kPageBytes);
    RIOT_RETURN_NOT_OK(file_->Read(static_cast<uint64_t>(off_it->second),
                                   kPageBytes, raw.data()));
    Node n;
    n.is_leaf = raw[0] != 0;
    uint16_t nkeys;
    std::memcpy(&nkeys, raw.data() + 2, 2);
    std::memcpy(&n.next_leaf, raw.data() + 8, 8);
    n.keys.resize(nkeys);
    n.vals.resize(nkeys);
    for (uint16_t k = 0; k < nkeys; ++k) {
      std::memcpy(&n.keys[k], raw.data() + kPageHeader + k * kEntryBytes, 8);
      std::memcpy(&n.vals[k],
                  raw.data() + kPageHeader + k * kEntryBytes + 8, 8);
    }
    auto [ins, ok] = cache_.emplace(id, std::move(n));
    (void)ok;
    return &ins->second;
  }

  Status WritePage(int64_t id, const Node& n) {
    std::vector<uint8_t> raw(kPageBytes, 0);
    raw[0] = n.is_leaf ? 1 : 0;
    uint16_t nkeys = static_cast<uint16_t>(n.keys.size());
    std::memcpy(raw.data() + 2, &nkeys, 2);
    std::memcpy(raw.data() + 8, &n.next_leaf, 8);
    for (uint16_t k = 0; k < nkeys; ++k) {
      std::memcpy(raw.data() + kPageHeader + k * kEntryBytes, &n.keys[k], 8);
      std::memcpy(raw.data() + kPageHeader + k * kEntryBytes + 8, &n.vals[k],
                  8);
    }
    auto it = page_offset_.find(id);
    RIOT_CHECK(it != page_offset_.end());
    return file_->Write(static_cast<uint64_t>(it->second), kPageBytes,
                        raw.data());
  }

  bool Lookup(int64_t key, int64_t* value) {
    int64_t id = hdr_.root_page;
    for (;;) {
      auto node = GetNode(id);
      if (!node.ok()) return false;
      Node* n = *node;
      if (n->is_leaf) {
        auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
        if (it == n->keys.end() || *it != key) return false;
        *value = n->vals[static_cast<size_t>(it - n->keys.begin())];
        return true;
      }
      // Internal: child i covers keys < keys[i]; last child covers the rest.
      size_t i = static_cast<size_t>(
          std::upper_bound(n->keys.begin(), n->keys.end(), key) -
          n->keys.begin());
      id = n->vals[i];
    }
  }

  // Inserts key -> value, splitting as needed (recursive; returns the
  // (separator, new right sibling) when a split propagates).
  struct SplitResult {
    bool split = false;
    int64_t sep_key = 0;
    int64_t right_id = -1;
  };

  Status InsertRec(int64_t id, int64_t key, int64_t value, SplitResult* out) {
    RIOT_ASSIGN_OR_RETURN(Node * n, GetNode(id));
    if (n->is_leaf) {
      auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
      size_t pos = static_cast<size_t>(it - n->keys.begin());
      if (it != n->keys.end() && *it == key) {
        n->vals[pos] = value;
        n->dirty = true;
        return Status::OK();
      }
      n->keys.insert(n->keys.begin() + static_cast<std::ptrdiff_t>(pos), key);
      n->vals.insert(n->vals.begin() + static_cast<std::ptrdiff_t>(pos),
                     value);
      n->dirty = true;
      if (n->keys.size() > kMaxKeys) SplitLeaf(id, out);
      return Status::OK();
    }
    size_t i = static_cast<size_t>(
        std::upper_bound(n->keys.begin(), n->keys.end(), key) -
        n->keys.begin());
    SplitResult child_split;
    RIOT_RETURN_NOT_OK(InsertRec(n->vals[i], key, value, &child_split));
    if (child_split.split) {
      n = *GetNode(id);  // re-fetch (cache stable, but be explicit)
      n->keys.insert(n->keys.begin() + static_cast<std::ptrdiff_t>(i),
                     child_split.sep_key);
      n->vals.insert(n->vals.begin() + static_cast<std::ptrdiff_t>(i + 1),
                     child_split.right_id);
      n->dirty = true;
      if (n->keys.size() > kMaxKeys) SplitInternal(id, out);
    }
    return Status::OK();
  }

  void SplitLeaf(int64_t id, SplitResult* out) {
    Node* n = &cache_[id];
    int64_t right_id = AllocPage(/*is_leaf=*/true);
    n = &cache_[id];  // AllocPage may rehash
    Node* r = &cache_[right_id];
    size_t mid = n->keys.size() / 2;
    r->keys.assign(n->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                   n->keys.end());
    r->vals.assign(n->vals.begin() + static_cast<std::ptrdiff_t>(mid),
                   n->vals.end());
    n->keys.resize(mid);
    n->vals.resize(mid);
    r->next_leaf = n->next_leaf;
    n->next_leaf = right_id;
    n->dirty = r->dirty = true;
    out->split = true;
    out->sep_key = r->keys.front();
    out->right_id = right_id;
  }

  void SplitInternal(int64_t id, SplitResult* out) {
    Node* n = &cache_[id];
    int64_t right_id = AllocPage(/*is_leaf=*/false);
    n = &cache_[id];
    Node* r = &cache_[right_id];
    r->is_leaf = false;
    size_t mid = n->keys.size() / 2;
    out->sep_key = n->keys[mid];
    r->keys.assign(n->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                   n->keys.end());
    r->vals.assign(n->vals.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                   n->vals.end());
    n->keys.resize(mid);
    n->vals.resize(mid + 1);
    n->dirty = r->dirty = true;
    out->split = true;
    out->right_id = right_id;
  }

  Status Insert(int64_t key, int64_t value) {
    SplitResult split;
    RIOT_RETURN_NOT_OK(InsertRec(hdr_.root_page, key, value, &split));
    if (split.split) {
      int64_t new_root = AllocPage(/*is_leaf=*/false);
      Node* root = &cache_[new_root];
      root->is_leaf = false;
      root->keys = {split.sep_key};
      root->vals = {hdr_.root_page, split.right_id};
      root->dirty = true;
      hdr_.root_page = new_root;
      hdr_dirty_ = true;
    }
    return Status::OK();
  }

  std::unique_ptr<File> file_;
  Header hdr_;
  bool hdr_dirty_ = false;
  std::map<int64_t, Node> cache_;
  std::map<int64_t, int64_t> page_offset_;
};

}  // namespace

Result<std::unique_ptr<BlockStore>> OpenLabTree(Env* env,
                                                const std::string& path,
                                                int64_t block_bytes) {
  auto file = env->OpenFile(path, /*create=*/true);
  if (!file.ok()) return file.status();
  auto store =
      std::make_unique<LabTreeStore>(std::move(file).ValueOrDie(), block_bytes);
  RIOT_RETURN_NOT_OK(store->Open());
  return std::unique_ptr<BlockStore>(std::move(store));
}

}  // namespace riot
