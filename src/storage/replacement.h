// Pluggable buffer-pool eviction policies. The BufferPool owns frame
// lifecycle and accounting; a ReplacementPolicy only decides *which*
// evictable frame goes next. Three implementations:
//
//   * Lru         — bit-for-bit the pool's historical behavior: victims in
//                   least-recently-touched order. Evictable frames are kept
//                   in a side index ordered by last-touch sequence, so
//                   victim selection no longer scans the whole frame table
//                   past pinned/retained frames (the old O(n) walk); it is
//                   O(log n) per decision. (A plain "append when a frame
//                   becomes evictable" intrusive list would be O(1) but
//                   orders victims by unpin time, not touch time, changing
//                   eviction behavior — the seq index keeps LRU exact.)
//   * Clock       — classic second-chance sweep over evictable frames.
//   * ScheduleOpt — Belady/MIN driven by the plan's block access script:
//                   the executor binds per-(array, block) future-use
//                   positions (core/access_plan's BuildAccessScript emits
//                   them) and advances the policy's logical clock as
//                   statement instances complete; the victim is the
//                   evictable frame whose next use is farthest in the
//                   future (never-used-again first, least-recently-touched
//                   as the tie-break). With no bound plan — an unbound
//                   pool, or a shared pool between runs — it degrades to
//                   exact LRU order.
//
// All methods are called with the owning pool's mutex held; policies need
// no locking of their own and must not call back into the pool.
#ifndef RIOTSHARE_STORAGE_REPLACEMENT_H_
#define RIOTSHARE_STORAGE_REPLACEMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace riot {

/// (array id, linear block index) — the BufferPool's frame key.
using PoolKey = std::pair<int, int64_t>;

/// Per-(array, block) ascending statement-instance positions at which the
/// block is accessed (read or write, saved or not). Produced by
/// core/access_plan from a lowered script; consumed by ScheduleOpt and the
/// cost model's cache simulator.
using BlockUseMap = std::map<PoolKey, std::vector<int64_t>>;

enum class ReplacementKind { kLru, kClock, kScheduleOpt };

std::string ReplacementKindName(ReplacementKind kind);

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual ReplacementKind kind() const = 0;

  /// The frame entered the pool or was accessed (fetch hit, miss insert,
  /// prefetch reservation, adoption).
  virtual void OnTouch(const PoolKey& key) = 0;
  /// The frame became an eviction candidate (unpinned, unretained, regular
  /// state) / ceased being one. Calls are always paired transitions; the
  /// pool never reports the same state twice in a row.
  virtual void OnEvictable(const PoolKey& key) = 0;
  virtual void OnProtected(const PoolKey& key) = 0;
  /// The frame left the pool (evicted, dropped, abandoned, flushed).
  /// Called in every state, evictable or not.
  virtual void OnErase(const PoolKey& key) = 0;
  /// Every tracked frame left the pool at once (FlushAll).
  virtual void OnClear() = 0;

  /// Picks the preferred victim among evictable frames for which `usable`
  /// returns true (the pool filters e.g. dirty frames during a
  /// prefetch-driven eviction, which must never force a spill). Returns
  /// false when no usable candidate exists. Must not mutate policy state
  /// observably: the pool follows up with OnErase for the chosen victim.
  virtual bool PickVictim(const std::function<bool(const PoolKey&)>& usable,
                          PoolKey* victim) = 0;

  // ----------------------------------------------- schedule-driven hooks
  // No-ops for history-based policies; ScheduleOpt overrides.
  /// Installs a plan's future-use positions. Binds nest (concurrent
  /// sessions over one shared pool): Belady ordering applies only while
  /// exactly one plan is bound — with several, position spaces from
  /// different programs are incomparable, so the policy degrades to LRU
  /// order rather than letting one tenant's bindings evict another's
  /// frames. Each plan's clock is tracked per bind, so a plan that
  /// becomes the sole survivor resumes exact Belady from its own
  /// progress.
  virtual void BindUsePlan(std::shared_ptr<const BlockUseMap> uses) {
    (void)uses;
  }
  /// Removes a bound plan: the one matching `uses`, or the newest when
  /// `uses` is nullptr (the legacy single-binder call).
  virtual void UnbindUsePlan(const std::shared_ptr<const BlockUseMap>& uses) {
    (void)uses;
  }
  /// All of plan `uses`'s uses at statement-instance positions < `pos` are
  /// in the past; `pos` itself is the instance currently executing.
  /// Monotonic per plan. nullptr addresses the active (sole) plan.
  virtual void AdvanceClock(const std::shared_ptr<const BlockUseMap>& uses,
                            int64_t pos) {
    (void)uses;
    (void)pos;
  }
};

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(ReplacementKind kind);

}  // namespace riot

#endif  // RIOTSHARE_STORAGE_REPLACEMENT_H_
