// Pluggable buffer-pool eviction policies. The BufferPool owns frame
// lifecycle and accounting; a ReplacementPolicy only decides *which*
// evictable frame goes next. Three implementations:
//
//   * Lru         — bit-for-bit the pool's historical behavior: victims in
//                   least-recently-touched order. Evictable frames are kept
//                   in a side index ordered by last-touch sequence, so
//                   victim selection no longer scans the whole frame table
//                   past pinned/retained frames (the old O(n) walk); it is
//                   O(log n) per decision. (A plain "append when a frame
//                   becomes evictable" intrusive list would be O(1) but
//                   orders victims by unpin time, not touch time, changing
//                   eviction behavior — the seq index keeps LRU exact.)
//   * Clock       — classic second-chance sweep over evictable frames.
//   * ScheduleOpt — Belady/MIN driven by the plans' block access scripts:
//                   each executor binds its per-(array, block) future-use
//                   positions (core/access_plan's BuildAccessScript emits
//                   them) and advances its own logical clock as statement
//                   instances complete. Victim scoring by bind count:
//
//                   one bound plan    exact Belady: the victim is the
//                                     evictable frame whose next use is
//                                     farthest in the future
//                                     (never-used-again first,
//                                     least-recently-touched tie-break).
//                   several plans     merged future-use clock: each plan's
//                   (concurrent       next use of a frame is normalized to
//                   sessions over     the plan's *remaining instances
//                   one shared pool)  before that use* (next_use_pos minus
//                                     the plan's own advanced clock) —
//                                     comparable across programs where raw
//                                     positions are not; a frame several
//                                     tenants will touch scores the
//                                     minimum normalized distance (a
//                                     shared Zipf-head input is kept as
//                                     long as ANY tenant reuses it soon).
//                                     Frames no bound plan claims again
//                                     are the best victims, in LRU order
//                                     among themselves; claimed frames
//                                     rank behind them, farthest merged
//                                     distance first.
//                   zero plans        exact LRU order (an unbound pool, or
//                                     a shared pool between runs).
//
//                   With one plan the merged score (next_use - clock) is
//                   an order-preserving shift of the absolute position, so
//                   solo victim selection is bit-for-bit the historical
//                   Belady behavior.
//
// All methods are called with the owning pool's mutex held; policies need
// no locking of their own and must not call back into the pool.
#ifndef RIOTSHARE_STORAGE_REPLACEMENT_H_
#define RIOTSHARE_STORAGE_REPLACEMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace riot {

/// (array id, linear block index) — the BufferPool's frame key.
using PoolKey = std::pair<int, int64_t>;

/// Per-(array, block) ascending statement-instance positions at which the
/// block is accessed (read or write, saved or not). Produced by
/// core/access_plan from a lowered script; consumed by ScheduleOpt and the
/// cost model's cache simulator.
using BlockUseMap = std::map<PoolKey, std::vector<int64_t>>;

enum class ReplacementKind { kLru, kClock, kScheduleOpt };

std::string ReplacementKindName(ReplacementKind kind);

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual ReplacementKind kind() const = 0;

  /// The frame entered the pool or was accessed (fetch hit, miss insert,
  /// prefetch reservation, adoption).
  virtual void OnTouch(const PoolKey& key) = 0;
  /// The frame became an eviction candidate (unpinned, unretained, regular
  /// state) / ceased being one. Calls are always paired transitions; the
  /// pool never reports the same state twice in a row.
  virtual void OnEvictable(const PoolKey& key) = 0;
  virtual void OnProtected(const PoolKey& key) = 0;
  /// The frame left the pool (evicted, dropped, abandoned, flushed).
  /// Called in every state, evictable or not.
  virtual void OnErase(const PoolKey& key) = 0;
  /// Every tracked frame left the pool at once (FlushAll).
  virtual void OnClear() = 0;

  /// Picks the preferred victim among evictable frames for which `usable`
  /// returns true (the pool filters e.g. dirty frames during a
  /// prefetch-driven eviction, which must never force a spill). Returns
  /// false when no usable candidate exists. Must not mutate policy state
  /// observably: the pool follows up with OnErase for the chosen victim.
  virtual bool PickVictim(const std::function<bool(const PoolKey&)>& usable,
                          PoolKey* victim) = 0;

  // ----------------------------------------------- schedule-driven hooks
  // No-ops for history-based policies; ScheduleOpt overrides.
  /// Installs a plan's future-use positions. Binds nest (concurrent
  /// sessions over one shared pool): every bound plan contributes to the
  /// merged victim ordering through its own normalized clock (see the
  /// header comment), and each plan's clock is tracked per bind, so a
  /// plan that becomes the sole survivor resumes exact solo Belady from
  /// its own progress.
  virtual void BindUsePlan(std::shared_ptr<const BlockUseMap> uses) {
    (void)uses;
  }
  /// Removes the bound plan matching `uses`. Every binder owns its `uses`
  /// pointer and must pass it back; nullptr is a CHECK failure (the legacy
  /// "newest bind" guess silently corrupted the surviving plan's clock
  /// when concurrent unbinds raced).
  virtual void UnbindUsePlan(const std::shared_ptr<const BlockUseMap>& uses) {
    (void)uses;
  }
  /// All of plan `uses`'s uses at statement-instance positions < `pos` are
  /// in the past; `pos` itself is the instance currently executing.
  /// Monotonic per plan. nullptr addresses the active (sole) plan and is
  /// ignored when several are bound (no unambiguous addressee).
  virtual void AdvanceClock(const std::shared_ptr<const BlockUseMap>& uses,
                            int64_t pos) {
    (void)uses;
    (void)pos;
  }
};

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(ReplacementKind kind);

}  // namespace riot

#endif  // RIOTSHARE_STORAGE_REPLACEMENT_H_
