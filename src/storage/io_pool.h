// Asynchronous block-read path: a small worker pool that services
// BlockStore reads off the execution thread, with a completion queue the
// caller drains. This is what lets the executor overlap kernel time with
// disk time — the prefetcher submits reads for blocks the access script
// says are needed soon, and kernels keep running while workers block on
// the device.
//
// Reads against the same BlockStore are serialized with a per-store lock
// (store implementations are not required to support concurrent access);
// reads against different stores proceed in parallel across workers.
// Writes stay synchronous on the execution thread: the paper's plans are
// read-dominated, and write ordering doubles as the dependence barrier the
// prefetcher relies on.
#ifndef RIOTSHARE_STORAGE_IO_POOL_H_
#define RIOTSHARE_STORAGE_IO_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/block_store.h"
#include "util/status.h"

namespace riot {

/// \brief Per-store serialization mutexes, shared between every thread
/// that touches a BlockStore. Store implementations are not required to be
/// thread-safe (LAB-tree mutates its node cache even on reads), so the
/// parallel executor's kernel workers — with or without an IoPool — route
/// every store call through the store's mutex from one shared map.
class StoreMutexMap {
 public:
  std::shared_ptr<std::mutex> mutex_for(BlockStore* store) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(store);
    if (it == map_.end()) {
      it = map_.emplace(store, std::make_shared<std::mutex>()).first;
    }
    return it->second;
  }

 private:
  std::mutex mu_;
  std::map<BlockStore*, std::shared_ptr<std::mutex>> map_;
};

class IoPool {
 public:
  struct Completion {
    uint64_t tag = 0;
    Status status;
  };

  explicit IoPool(int num_threads);
  ~IoPool();  // drains the queue and joins the workers

  IoPool(const IoPool&) = delete;
  IoPool& operator=(const IoPool&) = delete;

  /// Enqueues store->ReadBlock(block, buf). `buf` must stay valid (and
  /// untouched) until the matching completion is consumed. `tag` is echoed
  /// back verbatim.
  void ReadBlockAsync(BlockStore* store, int64_t block, void* buf,
                      uint64_t tag);

  /// Blocks until the next completion is available (completion order, not
  /// submission order). Must only be called when at least one submitted
  /// read has not yet been waited for.
  Completion WaitCompletion();

  /// Submitted reads whose completion has not been consumed yet.
  int64_t outstanding() const;

  /// The serialization mutex for `store`. Callers performing their own
  /// synchronous reads/writes on a store that also has async reads in
  /// flight MUST hold this around the call — store implementations are
  /// not required to be thread-safe (LAB-tree mutates its node cache even
  /// on reads).
  std::shared_ptr<std::mutex> store_mutex(BlockStore* store) {
    return store_mutexes_.mutex_for(store);
  }
  /// The underlying shared map, for callers that mix this pool's async
  /// reads with their own multi-threaded synchronous store calls.
  StoreMutexMap* store_mutexes() { return &store_mutexes_; }

  /// Wall time spent inside ReadBlock on the workers, and reads serviced.
  double read_seconds() const {
    return static_cast<double>(read_nanos_.load()) * 1e-9;
  }
  int64_t reads_completed() const { return reads_completed_.load(); }

 private:
  struct Request {
    BlockStore* store = nullptr;
    int64_t block = -1;
    void* buf = nullptr;
    uint64_t tag = 0;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Request> queue_;
  std::deque<Completion> done_;
  StoreMutexMap store_mutexes_;
  int64_t outstanding_ = 0;
  bool stop_ = false;
  std::atomic<int64_t> read_nanos_{0};
  std::atomic<int64_t> reads_completed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace riot

#endif  // RIOTSHARE_STORAGE_IO_POOL_H_
