// Asynchronous block-read path: a small worker pool that services
// BlockStore reads off the execution thread, with a completion queue the
// caller drains. This is what lets the executor overlap kernel time with
// disk time — the prefetcher submits reads for blocks the access script
// says are needed soon, and kernels keep running while workers block on
// the device.
//
// Requests against the same BlockStore are serialized with a per-store
// lock (store implementations are not required to support concurrent
// access); requests against different stores proceed in parallel across
// workers. The executor's write-through writes stay synchronous on the
// kernel threads — write ordering doubles as the dependence barrier the
// prefetcher relies on — but the BufferPool's write-behind hands dirty
// eviction victims (spills) to the same workers via WriteBlockAsync, whose
// completion is delivered through a caller callback instead of the read
// completion queue (the queue's consumers only ever expect reads).
//
// Channels make one pool shareable between concurrent consumers (the
// session runtime's tenants): each channel is an independent submission
// stream with its own completion queue — a consumer draining channel c can
// never observe another channel's completions — and the workers pop
// pending requests round-robin *across* channels, so one tenant's deep
// prefetch lookahead cannot starve another's. Channel 0 always exists;
// every legacy single-consumer call defaults to it.
#ifndef RIOTSHARE_STORAGE_IO_POOL_H_
#define RIOTSHARE_STORAGE_IO_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/block_store.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace riot {

/// \brief Per-store serialization mutexes, shared between every thread
/// that touches a BlockStore. Store implementations are not required to be
/// thread-safe (LAB-tree mutates its node cache even on reads), so the
/// parallel executor's kernel workers — with or without an IoPool — route
/// every store call through the store's mutex from one shared map.
class StoreMutexMap {
 public:
  /// The handed-out per-store mutexes stay raw std::mutex: they leave this
  /// map for arbitrary executor/pool threads, outside any annotatable
  /// scope.
  std::shared_ptr<std::mutex> mutex_for(BlockStore* store) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = map_.find(store);
    if (it == map_.end()) {
      it = map_.emplace(store, std::make_shared<std::mutex>()).first;
    }
    return it->second;
  }

 private:
  Mutex mu_;
  std::map<BlockStore*, std::shared_ptr<std::mutex>> map_ GUARDED_BY(mu_);
};

class IoPool {
 public:
  struct Completion {
    uint64_t tag = 0;
    Status status;
  };

  explicit IoPool(int num_threads);
  ~IoPool();  // drains the queue and joins the workers

  IoPool(const IoPool&) = delete;
  IoPool& operator=(const IoPool&) = delete;

  /// Opens a fresh submission/completion channel (ids are never reused).
  /// Requests submitted on it complete only into its queue, and the
  /// workers service channels round-robin. Close it when its last read
  /// completion has been consumed.
  int OpenChannel() EXCLUDES(mu_);
  /// Closes a channel opened with OpenChannel. Must have no outstanding
  /// reads. Channel 0 cannot be closed.
  void CloseChannel(int channel) EXCLUDES(mu_);

  /// Enqueues store->ReadBlock(block, buf). `buf` must stay valid (and
  /// untouched) until the matching completion is consumed. `tag` is echoed
  /// back verbatim (tags are per-channel: two channels may reuse a tag).
  void ReadBlockAsync(BlockStore* store, int64_t block, void* buf,
                      uint64_t tag, int channel = 0) EXCLUDES(mu_);

  /// Enqueues store->WriteBlock(block, buf) and invokes `on_done` with the
  /// write's Status from a worker thread once it lands. `buf` must stay
  /// valid and untouched until then. Writes never enter the read
  /// completion queue — WaitCompletion/outstanding() see reads only — so
  /// read consumers (the executor's prefetcher) and write producers (the
  /// BufferPool's write-behind) can share one pool without seeing each
  /// other's completions. `on_done` runs without pool-internal locks held;
  /// it may take its own locks but must not call back into this IoPool.
  void WriteBlockAsync(BlockStore* store, int64_t block, const void* buf,
                       std::function<void(Status)> on_done, int channel = 0)
      EXCLUDES(mu_);

  /// Blocks until the channel's next completion is available (completion
  /// order, not submission order). Must only be called when at least one
  /// read submitted on the channel has not yet been waited for.
  Completion WaitCompletion(int channel = 0) EXCLUDES(mu_);

  /// Reads submitted on the channel whose completion has not been consumed.
  int64_t outstanding(int channel = 0) const EXCLUDES(mu_);

  /// The serialization mutex for `store`. Callers performing their own
  /// synchronous reads/writes on a store that also has async reads in
  /// flight MUST hold this around the call — store implementations are
  /// not required to be thread-safe (LAB-tree mutates its node cache even
  /// on reads).
  std::shared_ptr<std::mutex> store_mutex(BlockStore* store) {
    return store_mutexes_.mutex_for(store);
  }
  /// The underlying shared map, for callers that mix this pool's async
  /// reads with their own multi-threaded synchronous store calls.
  StoreMutexMap* store_mutexes() { return &store_mutexes_; }

  /// Wall time spent inside ReadBlock on the workers, and reads serviced.
  double read_seconds() const {
    return static_cast<double>(read_nanos_.load()) * 1e-9;
  }
  int64_t reads_completed() const { return reads_completed_.load(); }
  /// Wall time spent inside WriteBlock on the workers, and writes landed.
  double write_seconds() const {
    return static_cast<double>(write_nanos_.load()) * 1e-9;
  }
  int64_t writes_completed() const { return writes_completed_.load(); }

 private:
  struct Request {
    BlockStore* store = nullptr;
    int64_t block = -1;
    void* buf = nullptr;            // read target
    const void* write_buf = nullptr;  // write source (is_write)
    uint64_t tag = 0;
    int channel = 0;
    bool is_write = false;
    std::function<void(Status)> on_done;  // write completion callback
  };

  struct Channel {
    std::deque<Request> queue;
    std::deque<Completion> done;
    int64_t outstanding = 0;  // submitted reads not yet waited for
    int64_t queued = 0;       // requests (reads and writes) not yet popped
  };

  void WorkerLoop() EXCLUDES(mu_);
  /// Pops the next request round-robin across non-empty channels; false
  /// when every channel queue is empty.
  bool PopNextLocked(Request* out) REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::map<int, Channel> channels_ GUARDED_BY(mu_);
  int next_channel_ GUARDED_BY(mu_) = 1;
  // Channel id the next pop starts after.
  int rr_cursor_ GUARDED_BY(mu_) = 0;
  int64_t queued_total_ GUARDED_BY(mu_) = 0;
  StoreMutexMap store_mutexes_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::atomic<int64_t> read_nanos_{0};
  std::atomic<int64_t> reads_completed_{0};
  std::atomic<int64_t> write_nanos_{0};
  std::atomic<int64_t> writes_completed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace riot

#endif  // RIOTSHARE_STORAGE_IO_POOL_H_
