// Environment abstraction for file I/O (RocksDB-style): a pluggable Env
// creates files supporting positional reads/writes, and counts every byte
// and request in IoStats. Three implementations:
//   * PosixEnv     — real files (pread/pwrite),
//   * MemEnv       — in-memory files for tests,
//   * ThrottledEnv — wraps another Env and accrues *modeled* I/O seconds
//     using sustained read/write rates plus a per-request overhead, so
//     benchmarks can report deterministic paper-scale I/O times without
//     owning the paper's 7200 RPM disk.
#ifndef RIOTSHARE_STORAGE_ENV_H_
#define RIOTSHARE_STORAGE_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace riot {

/// \brief Byte/request/time accounting for one Env. Safe for concurrent
/// use from I/O worker threads (async prefetch path).
struct IoStats {
  std::atomic<int64_t> bytes_read{0};
  std::atomic<int64_t> bytes_written{0};
  std::atomic<int64_t> read_ops{0};
  std::atomic<int64_t> write_ops{0};

  /// Wall-clock seconds spent inside Read/Write calls. Stored as integer
  /// nanoseconds so accumulation is a plain fetch_add (atomic<double> has no
  /// standard fetch_add before C++20); the clock is nanosecond-granular, so
  /// nothing is lost.
  double io_seconds() const { return static_cast<double>(io_nanos_.load()) * 1e-9; }
  void AddIoNanos(int64_t ns) { io_nanos_.fetch_add(ns); }

  /// Virtual seconds accrued by ThrottledEnv's disk model. Kept as an exact
  /// double sum (CAS loop) so modeled times match the cost model's
  /// volume-to-time conversion bit-for-bit.
  double modeled_seconds() const { return modeled_seconds_.load(); }
  void AddModeledSeconds(double s) {
    double cur = modeled_seconds_.load();
    while (!modeled_seconds_.compare_exchange_weak(cur, cur + s)) {
    }
  }

  void Reset() {
    bytes_read = 0;
    bytes_written = 0;
    read_ops = 0;
    write_ops = 0;
    io_nanos_ = 0;
    modeled_seconds_ = 0.0;
  }

  /// Volume-to-time conversion with the given sustained rates (MB/s).
  double ModelSeconds(double read_mb_per_s, double write_mb_per_s) const {
    return static_cast<double>(bytes_read.load()) / (read_mb_per_s * 1e6) +
           static_cast<double>(bytes_written.load()) / (write_mb_per_s * 1e6);
  }

 private:
  std::atomic<int64_t> io_nanos_{0};
  std::atomic<double> modeled_seconds_{0.0};
};

/// \brief A file supporting positional I/O.
class File {
 public:
  virtual ~File() = default;
  virtual Status Read(uint64_t offset, size_t n, void* buf) = 0;
  virtual Status Write(uint64_t offset, size_t n, const void* buf) = 0;
  virtual Result<uint64_t> Size() = 0;
  virtual Status Sync() { return Status::OK(); }
};

class Env {
 public:
  virtual ~Env() = default;
  /// Opens (creating if needed when `create`) a file for read/write.
  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                                 bool create) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 protected:
  IoStats stats_;
};

/// \brief Real filesystem environment.
std::unique_ptr<Env> NewPosixEnv();

/// \brief In-memory environment (tests, deterministic benchmarks).
std::unique_ptr<Env> NewMemEnv();

/// \brief Wraps `base` (not owned) accruing modeled seconds per request:
/// bytes/rate + per_request_ms. Stats live on the throttled Env. When
/// `sleep_scale` > 0, each request additionally *blocks* for
/// modeled_duration * sleep_scale of real time, turning the virtual disk
/// into a physically slow one — this is what the pipelined executor's
/// overlap benchmarks run against.
std::unique_ptr<Env> NewThrottledEnv(Env* base, double read_mb_per_s,
                                     double write_mb_per_s,
                                     double per_request_ms = 0.0,
                                     double sleep_scale = 0.0);

/// \brief Failure injection: wraps `base` (not owned) and fails every
/// Read/Write with IoError once `fail_after_ops` operations have succeeded
/// (counted across all files). Used to test error propagation through the
/// storage, executor, and benchmark layers.
std::unique_ptr<Env> NewFaultyEnv(Env* base, int64_t fail_after_ops);

}  // namespace riot

#endif  // RIOTSHARE_STORAGE_ENV_H_
