#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.h"
#include "util/thread_annotations.h"

namespace riot {

namespace {

class Timer {
 public:
  explicit Timer(IoStats* stats) : stats_(stats) {
    t0_ = std::chrono::steady_clock::now();
  }
  ~Timer() {
    stats_->AddIoNanos(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0_)
                           .count());
  }

 private:
  IoStats* stats_;
  std::chrono::steady_clock::time_point t0_;
};

// ---------------------------------------------------------------- PosixEnv

class PosixFile : public File {
 public:
  PosixFile(int fd, IoStats* stats) : fd_(fd), stats_(stats) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, void* buf) override {
    Timer t(stats_);
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, static_cast<char*>(buf) + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) return Status::IoError("pread failed: " + std::string(strerror(errno)));
      if (r == 0) return Status::IoError("pread hit EOF");
      done += static_cast<size_t>(r);
    }
    stats_->bytes_read += static_cast<int64_t>(n);
    ++stats_->read_ops;
    return Status::OK();
  }

  Status Write(uint64_t offset, size_t n, const void* buf) override {
    Timer t(stats_);
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pwrite(fd_, static_cast<const char*>(buf) + done,
                           n - done, static_cast<off_t>(offset + done));
      if (r < 0) return Status::IoError("pwrite failed: " + std::string(strerror(errno)));
      done += static_cast<size_t>(r);
    }
    stats_->bytes_written += static_cast<int64_t>(n);
    ++stats_->write_ops;
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IoError("fstat failed");
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::IoError("fsync failed");
    return Status::OK();
  }

 private:
  int fd_;
  IoStats* stats_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         bool create) override {
    int flags = O_RDWR;
    if (create) flags |= O_CREAT;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::IoError("open failed for " + path + ": " +
                             strerror(errno));
    }
    return std::unique_ptr<File>(new PosixFile(fd, &stats_));
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError("unlink failed for " + path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

// ------------------------------------------------------------------ MemEnv

struct MemFileData {
  Mutex mu;
  std::vector<uint8_t> bytes GUARDED_BY(mu);
};

class MemFile : public File {
 public:
  MemFile(std::shared_ptr<MemFileData> data, IoStats* stats)
      : data_(std::move(data)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, void* buf) override {
    MutexLock lock(&data_->mu);
    if (offset + n > data_->bytes.size()) {
      return Status::IoError("MemFile read past end");
    }
    std::memcpy(buf, data_->bytes.data() + offset, n);
    stats_->bytes_read += static_cast<int64_t>(n);
    ++stats_->read_ops;
    return Status::OK();
  }

  Status Write(uint64_t offset, size_t n, const void* buf) override {
    MutexLock lock(&data_->mu);
    if (offset + n > data_->bytes.size()) {
      data_->bytes.resize(offset + n);
    }
    std::memcpy(data_->bytes.data() + offset, buf, n);
    stats_->bytes_written += static_cast<int64_t>(n);
    ++stats_->write_ops;
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    MutexLock lock(&data_->mu);
    return static_cast<uint64_t>(data_->bytes.size());
  }

 private:
  std::shared_ptr<MemFileData> data_;
  IoStats* stats_;
};

class MemEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         bool create) override {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      if (!create) return Status::NotFound("no such mem file: " + path);
      it = files_.emplace(path, std::make_shared<MemFileData>()).first;
    }
    return std::unique_ptr<File>(new MemFile(it->second, &stats_));
  }

  Status DeleteFile(const std::string& path) override {
    MutexLock lock(&mu_);
    files_.erase(path);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    MutexLock lock(&mu_);
    return files_.count(path) > 0;
  }

 private:
  Mutex mu_;
  std::map<std::string, std::shared_ptr<MemFileData>> files_ GUARDED_BY(mu_);
};

// ------------------------------------------------------------ ThrottledEnv

class ThrottledFile : public File {
 public:
  ThrottledFile(std::unique_ptr<File> base, IoStats* stats, double rd,
                double wr, double req_s, double sleep_scale)
      : base_(std::move(base)), stats_(stats), rd_(rd), wr_(wr),
        req_s_(req_s), sleep_scale_(sleep_scale) {}

  Status Read(uint64_t offset, size_t n, void* buf) override {
    Timer t(stats_);
    RIOT_RETURN_NOT_OK(base_->Read(offset, n, buf));
    stats_->bytes_read += static_cast<int64_t>(n);
    ++stats_->read_ops;
    Accrue(static_cast<double>(n) / rd_ + req_s_);
    return Status::OK();
  }

  Status Write(uint64_t offset, size_t n, const void* buf) override {
    Timer t(stats_);
    RIOT_RETURN_NOT_OK(base_->Write(offset, n, buf));
    stats_->bytes_written += static_cast<int64_t>(n);
    ++stats_->write_ops;
    Accrue(static_cast<double>(n) / wr_ + req_s_);
    return Status::OK();
  }

  Result<uint64_t> Size() override { return base_->Size(); }
  Status Sync() override { return base_->Sync(); }

 private:
  void Accrue(double modeled_s) {
    stats_->AddModeledSeconds(modeled_s);
    if (sleep_scale_ > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(modeled_s * sleep_scale_));
    }
  }

  std::unique_ptr<File> base_;
  IoStats* stats_;
  double rd_, wr_, req_s_, sleep_scale_;
};

class ThrottledEnv : public Env {
 public:
  ThrottledEnv(Env* base, double rd_mbps, double wr_mbps, double req_ms,
               double sleep_scale)
      : base_(base), rd_(rd_mbps * 1e6), wr_(wr_mbps * 1e6),
        req_s_(req_ms / 1e3), sleep_scale_(sleep_scale) {}

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         bool create) override {
    auto f = base_->OpenFile(path, create);
    if (!f.ok()) return f.status();
    return std::unique_ptr<File>(new ThrottledFile(
        std::move(f).ValueOrDie(), &stats_, rd_, wr_, req_s_, sleep_scale_));
  }

  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

 private:
  Env* base_;
  double rd_, wr_, req_s_, sleep_scale_;
};

// -------------------------------------------------------------- FaultyEnv

class FaultyFile : public File {
 public:
  FaultyFile(std::unique_ptr<File> base, std::atomic<int64_t>* budget)
      : base_(std::move(base)), budget_(budget) {}

  Status Read(uint64_t offset, size_t n, void* buf) override {
    if (budget_->fetch_sub(1) <= 0) {
      return Status::IoError("injected read fault");
    }
    return base_->Read(offset, n, buf);
  }
  Status Write(uint64_t offset, size_t n, const void* buf) override {
    if (budget_->fetch_sub(1) <= 0) {
      return Status::IoError("injected write fault");
    }
    return base_->Write(offset, n, buf);
  }
  Result<uint64_t> Size() override { return base_->Size(); }
  Status Sync() override { return base_->Sync(); }

 private:
  std::unique_ptr<File> base_;
  std::atomic<int64_t>* budget_;
};

class FaultyEnv : public Env {
 public:
  FaultyEnv(Env* base, int64_t fail_after_ops)
      : base_(base), budget_(fail_after_ops) {}

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         bool create) override {
    auto f = base_->OpenFile(path, create);
    if (!f.ok()) return f.status();
    return std::unique_ptr<File>(
        new FaultyFile(std::move(f).ValueOrDie(), &budget_));
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

 private:
  Env* base_;
  std::atomic<int64_t> budget_;
};

}  // namespace

std::unique_ptr<Env> NewPosixEnv() { return std::make_unique<PosixEnv>(); }
std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }
std::unique_ptr<Env> NewThrottledEnv(Env* base, double read_mb_per_s,
                                     double write_mb_per_s,
                                     double per_request_ms,
                                     double sleep_scale) {
  return std::make_unique<ThrottledEnv>(base, read_mb_per_s, write_mb_per_s,
                                        per_request_ms, sleep_scale);
}

std::unique_ptr<Env> NewFaultyEnv(Env* base, int64_t fail_after_ops) {
  return std::make_unique<FaultyEnv>(base, fail_after_ops);
}

}  // namespace riot
