#include "storage/io_pool.h"

#include <chrono>

#include "util/logging.h"

namespace riot {

IoPool::IoPool(int num_threads) {
  RIOT_CHECK_GT(num_threads, 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoPool::~IoPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void IoPool::ReadBlockAsync(BlockStore* store, int64_t block, void* buf,
                            uint64_t tag) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RIOT_CHECK(!stop_);
    Request req;
    req.store = store;
    req.block = block;
    req.buf = buf;
    req.tag = tag;
    queue_.push_back(std::move(req));
    ++outstanding_;
  }
  work_cv_.notify_one();
}

void IoPool::WriteBlockAsync(BlockStore* store, int64_t block,
                             const void* buf,
                             std::function<void(Status)> on_done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RIOT_CHECK(!stop_);
    Request req;
    req.store = store;
    req.block = block;
    req.write_buf = buf;
    req.is_write = true;
    req.on_done = std::move(on_done);
    // Writes do not bump outstanding_: that counter feeds WaitCompletion,
    // whose consumers only ever expect read completions.
    queue_.push_back(std::move(req));
  }
  work_cv_.notify_one();
}

IoPool::Completion IoPool::WaitCompletion() {
  std::unique_lock<std::mutex> lock(mu_);
  RIOT_CHECK_GT(outstanding_, 0) << "WaitCompletion with nothing submitted";
  done_cv_.wait(lock, [this] { return !done_.empty(); });
  Completion c = std::move(done_.front());
  done_.pop_front();
  --outstanding_;
  return c;
}

int64_t IoPool::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

void IoPool::WorkerLoop() {
  for (;;) {
    Request req;
    std::shared_ptr<std::mutex> serial;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    serial = store_mutexes_.mutex_for(req.store);
    Status st;
    {
      std::lock_guard<std::mutex> store_lock(*serial);
      // Time inside the lock: waiting for another worker's turn at this
      // store is queueing, not disk time.
      auto t0 = std::chrono::steady_clock::now();
      st = req.is_write ? req.store->WriteBlock(req.block, req.write_buf)
                        : req.store->ReadBlock(req.block, req.buf);
      auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      (req.is_write ? write_nanos_ : read_nanos_).fetch_add(nanos);
    }
    if (req.is_write) {
      writes_completed_.fetch_add(1);
      req.on_done(std::move(st));
      continue;
    }
    reads_completed_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_.push_back({req.tag, std::move(st)});
    }
    done_cv_.notify_one();
  }
}

}  // namespace riot
