#include "storage/io_pool.h"

#include <chrono>

#include "util/logging.h"

namespace riot {

IoPool::IoPool(int num_threads) {
  RIOT_CHECK_GT(num_threads, 0);
  channels_.emplace(0, Channel{});  // the default channel always exists
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoPool::~IoPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

int IoPool::OpenChannel() {
  MutexLock lock(&mu_);
  RIOT_CHECK(!stop_);
  int id = next_channel_++;
  channels_.emplace(id, Channel{});
  return id;
}

void IoPool::CloseChannel(int channel) {
  MutexLock lock(&mu_);
  RIOT_CHECK(channel != 0) << "channel 0 cannot be closed";
  auto it = channels_.find(channel);
  RIOT_CHECK(it != channels_.end()) << "CloseChannel on unknown channel";
  RIOT_CHECK_EQ(it->second.outstanding, 0)
      << "CloseChannel with outstanding reads";
  RIOT_CHECK_EQ(it->second.queued, 0)
      << "CloseChannel with queued requests";
  channels_.erase(it);
}

void IoPool::ReadBlockAsync(BlockStore* store, int64_t block, void* buf,
                            uint64_t tag, int channel) {
  {
    MutexLock lock(&mu_);
    RIOT_CHECK(!stop_);
    Channel& ch = channels_.at(channel);
    Request req;
    req.store = store;
    req.block = block;
    req.buf = buf;
    req.tag = tag;
    req.channel = channel;
    ch.queue.push_back(std::move(req));
    ++ch.queued;
    ++ch.outstanding;
    ++queued_total_;
  }
  work_cv_.NotifyOne();
}

void IoPool::WriteBlockAsync(BlockStore* store, int64_t block,
                             const void* buf,
                             std::function<void(Status)> on_done,
                             int channel) {
  {
    MutexLock lock(&mu_);
    RIOT_CHECK(!stop_);
    Channel& ch = channels_.at(channel);
    Request req;
    req.store = store;
    req.block = block;
    req.write_buf = buf;
    req.channel = channel;
    req.is_write = true;
    req.on_done = std::move(on_done);
    // Writes do not bump outstanding: that counter feeds WaitCompletion,
    // whose consumers only ever expect read completions.
    ch.queue.push_back(std::move(req));
    ++ch.queued;
    ++queued_total_;
  }
  work_cv_.NotifyOne();
}

IoPool::Completion IoPool::WaitCompletion(int channel) {
  UniqueMutexLock lock(&mu_);
  Channel& ch = channels_.at(channel);
  RIOT_CHECK_GT(ch.outstanding, 0) << "WaitCompletion with nothing submitted";
  while (ch.done.empty()) done_cv_.Wait(lock);
  Completion c = std::move(ch.done.front());
  ch.done.pop_front();
  --ch.outstanding;
  return c;
}

int64_t IoPool::outstanding(int channel) const {
  MutexLock lock(&mu_);
  auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.outstanding;
}

bool IoPool::PopNextLocked(Request* out) {
  if (queued_total_ == 0) return false;
  // Fair-share: start just past the channel served last and take the first
  // pending request in channel-id ring order, so every tenant's stream
  // advances before any stream gets a second turn.
  auto it = channels_.upper_bound(rr_cursor_);
  for (size_t scanned = 0; scanned <= channels_.size(); ++scanned) {
    if (it == channels_.end()) it = channels_.begin();
    Channel& ch = it->second;
    if (!ch.queue.empty()) {
      *out = std::move(ch.queue.front());
      ch.queue.pop_front();
      --ch.queued;
      --queued_total_;
      rr_cursor_ = it->first;
      return true;
    }
    ++it;
  }
  RIOT_CHECK(false) << "queued_total_ out of sync with channel queues";
  return false;
}

void IoPool::WorkerLoop() {
  for (;;) {
    Request req;
    std::shared_ptr<std::mutex> serial;
    {
      UniqueMutexLock lock(&mu_);
      while (!stop_ && queued_total_ == 0) work_cv_.Wait(lock);
      if (!PopNextLocked(&req)) return;  // stop_ set and queues drained
    }
    serial = store_mutexes_.mutex_for(req.store);
    Status st;
    {
      std::lock_guard<std::mutex> store_lock(*serial);
      // Time inside the lock: waiting for another worker's turn at this
      // store is queueing, not disk time.
      auto t0 = std::chrono::steady_clock::now();
      st = req.is_write ? req.store->WriteBlock(req.block, req.write_buf)
                        : req.store->ReadBlock(req.block, req.buf);
      auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      (req.is_write ? write_nanos_ : read_nanos_).fetch_add(nanos);
    }
    if (req.is_write) {
      writes_completed_.fetch_add(1);
      req.on_done(std::move(st));
      continue;
    }
    reads_completed_.fetch_add(1);
    {
      MutexLock lock(&mu_);
      // The channel cannot have been closed: it has this outstanding read.
      channels_.at(req.channel).done.push_back({req.tag, std::move(st)});
    }
    done_cv_.NotifyAll();
  }
}

}  // namespace riot
