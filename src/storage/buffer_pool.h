// Buffer pool with an explicit memory cap (paper Section 4.2: "we impose a
// memory cap and control memory data reuse explicitly").
//
// Frames are keyed by (array id, linear block index). The executor pins a
// frame while a statement instance computes on it, and additionally marks
// frames "retained" until a given group index to realize sharing
// opportunities (keep-until-reuse). When the cap is hit, an unpinned,
// unretained frame is evicted by the pool's pluggable ReplacementPolicy
// (storage/replacement.h): LRU (the default — bit-for-bit the pool's
// historical behavior), Clock, or ScheduleOpt, a Belady/MIN policy the
// executor drives with the plan's known future block-access positions.
// Victim selection is O(log n): the policies index evictable frames
// directly instead of scanning the frame table past pinned/retained ones.
//
// Dirty victims are written back through their BlockStore (spilling — a
// correct plan never triggers it, and tests assert so via the spill
// counters). With SetWriteBehind(io) the write-back is asynchronous: the
// victim's buffer is handed to `io`'s write workers (serialized against
// the pool's readers by the IoPool's per-store locks) and the pool moves
// on; a write barrier makes any later Fetch of an in-flight block wait for
// the pending write, and a later prefetch of it is declined, so async
// readers can never observe the pre-write disk image or tear the buffer.
// In-flight write-behind buffers live outside the cap, bounded by a budget
// (cap/4); evictions past the budget stall until writes land
// (BufferPoolStats::writeback_stall_seconds). Without write-behind the
// historical synchronous write-back is preserved exactly.
//
// The pool is thread-safe: the pipelined executor's I/O workers fill
// prefetch frames while kernel workers (one in the serial engine, many
// under exec_threads > 1) concurrently fetch, pin, and retain.
// Prefetch has its own frame lifecycle (kPrefetching -> kPrefetched ->
// adopted or abandoned) and its own budget, and is *never* allowed to
// violate the cap, evict a pinned/retained/in-flight frame, or force a
// dirty write-back — a prefetch that would need any of those is declined.
// When write-behind is enabled, the pool's own synchronous store calls
// (Fetch with load=true) also take the IoPool's per-store lock, closing
// the historical caveat that pool store calls raced async readers.
#ifndef RIOTSHARE_STORAGE_BUFFER_POOL_H_
#define RIOTSHARE_STORAGE_BUFFER_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "storage/block_store.h"
#include "storage/replacement.h"
#include "util/aligned.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace riot {

class IoPool;

/// \brief Per-session ledger of the shared pool's *required* bytes (pinned
/// or retained frames) attributable to one tenant. A Fetch/adoption that
/// would lift the tenant's charge above `budget_bytes` is refused with
/// kResourceExhausted instead of eating into other tenants' slices. A frame
/// is charged to the account that made it required and uncharged when it
/// stops being required; a frame another tenant already holds required is
/// not double-charged (cross-session sharing is free for the second
/// reader). All mutations happen under the owning pool's mutex; the
/// atomics let the session runtime and tests read without it.
///
/// Pins carry owner identity (Frame::holders), so when the charged
/// claimant of a shared frame releases its own pins and retentions — or
/// detaches — while another tenant still holds the frame required, the
/// charge is *transferred* to a surviving claimant rather than left on
/// (or stranded with) the releaser's ledger. A tenant is therefore only
/// ever charged for frames it itself holds required, which is bounded by
/// its plan footprint: a session whose budget covers its footprint sees
/// zero budget_rejections regardless of what its neighbors share. (A
/// transfer charges the survivor without a budget check for the same
/// reason — the frame is already in the survivor's footprint.) Pins
/// taken without an account are anonymous and never charged or
/// transferred to.
struct PoolAccount {
  int64_t budget_bytes = 0;  // immutable while the account is in use
  std::atomic<int64_t> charged_bytes{0};
  std::atomic<int64_t> peak_charged_bytes{0};
  std::atomic<int64_t> budget_rejections{0};  // fetches refused over budget
};

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t dirty_writebacks = 0;  // spills: should be 0 for in-cap plans
  int64_t async_writebacks = 0;  // spills handed to write-behind workers
  /// Wall time callers stalled on in-flight write-behind: Fetch barriers
  /// on a pending block plus evictions waiting out the write-behind
  /// buffer budget.
  double writeback_stall_seconds = 0.0;
  int64_t prefetch_issued = 0;    // TryStartPrefetch successes
  int64_t prefetch_declined = 0;  // no budget/room without touching
                                  // protected frames
  int64_t prefetch_abandoned = 0;  // issued but never adopted
  /// Cross-session load coalescing: fetches that waited out (or joined)
  /// another caller's in-flight load of the same block instead of issuing
  /// a second disk read.
  int64_t coalesced_loads = 0;
};

/// \brief One consistent view of the pool: counters plus the frame-state
/// aggregates they are usually compared against, all captured under a
/// single lock acquisition. Reading stats() and used_bytes()/
/// PinnedFrames() as separate calls can interleave with write-behind
/// callbacks and concurrent fetches, observing counters mid-update
/// relative to frame state; invariant checks must go through Snapshot().
struct BufferPoolSnapshot {
  BufferPoolStats stats;
  int64_t used_bytes = 0;
  int64_t required_bytes = 0;       // pinned or retained regular frames
  int64_t prefetch_bytes = 0;       // frames in prefetch states
  int64_t pinned_frames = 0;
  int64_t writeback_inflight_bytes = 0;
  int64_t pending_writebacks = 0;   // in-flight or failed-and-poisoned
};

class BufferPool {
 public:
  /// Lifecycle of a frame's contents with respect to the prefetcher.
  /// kRegular frames belong to the execution thread; kPrefetching frames
  /// are being filled by an I/O worker (untouchable, unevictable);
  /// kPrefetched frames hold completed prefetch data awaiting adoption.
  enum class FrameState { kRegular, kPrefetching, kPrefetched };

  /// One owner's keep-until-reuse obligation on a frame. Group indices are
  /// only comparable within one run, so a shared multi-tenant frame keeps
  /// one entry per owner (the session's PoolAccount; nullptr for solo
  /// runs) — tenant A completing its group 5 must never release tenant
  /// B's "retain until group 5", which counts in a different program's
  /// numbering.
  struct Retention {
    PoolAccount* owner = nullptr;
    int64_t until_group = -1;
  };

  /// One tenant's pin count on a frame. Only account-carrying pins are
  /// recorded (anonymous pins are `pins` minus the holders' sum); the
  /// entry exists so the pool knows which tenants still claim a shared
  /// frame when the charged one lets go (see PoolAccount).
  struct Holder {
    PoolAccount* account = nullptr;
    int pins = 0;
  };

  struct Frame {
    int array_id = -1;
    int64_t block = -1;
    /// 64-byte-aligned (util/aligned.h): the packed SIMD kernels view frame
    /// payloads as double matrices and rely on cache-line-aligned starts.
    AlignedBuffer data;
    bool dirty = false;
    int pins = 0;
    /// Per-owner keep-until-reuse obligations; empty = unretained. At most
    /// one entry per owner (Retain merges by max until_group).
    std::vector<Retention> retentions;
    /// Per-account pin counts (at most one entry per account; anonymous
    /// pins are not recorded). Kept so the budget charge can follow a
    /// surviving claimant when the charged tenant releases.
    std::vector<Holder> holders;
    bool retained() const { return !retentions.empty(); }
    /// Legacy view: the farthest until_group across owners; -1 when none.
    int64_t retain_until_group() const {
      int64_t m = -1;
      for (const Retention& r : retentions) m = std::max(m, r.until_group);
      return m;
    }
    BlockStore* store = nullptr;  // for dirty write-back on eviction
    FrameState state = FrameState::kRegular;
    /// Contents are garbage (e.g. a failed load): the frame is dropped when
    /// its last pin releases, and Fetch refuses to hand it out meanwhile.
    bool discarded = false;
    /// A coalescing creator (Fetch with coalesce_loads, miss) is filling
    /// this frame from disk; concurrent coalescing fetches of the block
    /// wait for MarkLoaded (or Discard) instead of reading garbage or
    /// issuing a duplicate disk read. Loading frames are pinned by their
    /// creator and never evictable.
    bool loading = false;
    /// Session the frame's required bytes are charged to; nullptr when
    /// unrequired or claimed without an account. Always one of the
    /// frame's current claimants (a holder with pins, or a retention
    /// owner) — RechargeLocked moves it when the charged claimant lets
    /// go while others remain.
    PoolAccount* account = nullptr;
  };

  /// `policy` decides eviction order; nullptr = LRU (the historical
  /// behavior, bit-for-bit).
  explicit BufferPool(int64_t cap_bytes,
                      std::unique_ptr<ReplacementPolicy> policy = nullptr);
  /// Drains any in-flight write-behind (failures were already recorded;
  /// call DrainWritebacks first to observe them).
  ~BufferPool();

  /// Returns the frame for (array_id, block), fetching from `store` on miss
  /// when `load` is set (otherwise the frame starts zeroed). The returned
  /// frame is pinned; call Unpin when done. Must not be called for a block
  /// currently in a prefetch state (adopt or abandon it first).
  /// `was_resident` (optional) reports whether the frame already existed:
  /// concurrent consumers need the hit/miss answer atomically with the pin
  /// (a separate Probe could race with an eviction in between).
  /// A miss on a block whose write-behind is still in flight waits for the
  /// pending write first (and surfaces its error, if it failed).
  /// `account`, when set, charges the session ledger for newly-required
  /// bytes and refuses the fetch (kResourceExhausted) past its budget.
  /// `coalesce_loads` (multi-tenant runs) makes a miss mark the frame
  /// `loading` — the caller MUST fill it and call MarkLoaded (or Discard
  /// on failure) — and makes a hit on a loading frame wait for that load,
  /// so two sessions fetching the same block coalesce on one disk read.
  Result<Frame*> Fetch(int array_id, int64_t block, int64_t bytes,
                       BlockStore* store, bool load,
                       bool* was_resident = nullptr,
                       PoolAccount* account = nullptr,
                       bool coalesce_loads = false) EXCLUDES(mu_);

  /// Frame lookup without side effects; nullptr if absent.
  Frame* Probe(int array_id, int64_t block) EXCLUDES(mu_);

  /// Releases one pin. `account` must be the account the matching Fetch /
  /// AdoptPrefetched pinned with (nullptr for anonymous pins): it
  /// releases that tenant's hold so the budget charge can transfer to a
  /// surviving claimant of a shared frame.
  void Unpin(Frame* frame, PoolAccount* account = nullptr) EXCLUDES(mu_);
  /// Completes a coalesced load (Fetch with coalesce_loads that missed):
  /// clears the loading mark and wakes waiters. Call after filling
  /// frame->data, before Unpin.
  void MarkLoaded(Frame* frame) EXCLUDES(mu_);
  /// Severs every reference to `account` from the pool: its holder
  /// entries and retentions are dropped, and frames still charged to it
  /// are uncharged — transferring the charge to a surviving claimant if a
  /// shared frame stays required (a dangling pointer would otherwise
  /// outlive the owning session; the account is typically
  /// stack-allocated per run). The executor calls this in its session
  /// cleanup; after it returns the account object may be destroyed.
  void DetachAccount(PoolAccount* account) EXCLUDES(mu_);
  /// Unpin for a frame whose contents must not outlive the caller: marks it
  /// discarded and erases it once the last pin drops (other holders erase
  /// it through their own Unpin/Discard). Used when a load into the frame
  /// failed — a zero/garbage-filled frame must never linger as apparently
  /// clean cache — and when a rolled-back write target was never loaded.
  /// `account` as in Unpin.
  void Discard(Frame* frame, PoolAccount* account = nullptr) EXCLUDES(mu_);
  /// Retains on behalf of `owner` (one entry per owner, merged by max;
  /// nullptr = the solo-run owner — bit-for-bit the historical behavior).
  void Retain(Frame* frame, int64_t until_group,
              PoolAccount* owner = nullptr) EXCLUDES(mu_);
  /// Releases every retention of `owner` that expired strictly before
  /// `group`; other owners' retentions (their group indices live in other
  /// programs' numberings) are untouched.
  void ReleaseRetainedBefore(int64_t group, PoolAccount* owner = nullptr)
      EXCLUDES(mu_);
  /// Clears the dirty flag under the pool lock (the executor's
  /// write-through makes the in-memory copy match disk; worker threads must
  /// not touch the flag unsynchronized while eviction scans run).
  void MarkClean(Frame* frame) EXCLUDES(mu_);

  // ------------------------------------------------- replacement policy
  ReplacementKind replacement_kind() const EXCLUDES(mu_);
  /// Forwarders to the policy's schedule-driven hooks, under the pool
  /// lock. No-ops for history-based policies; for ScheduleOpt the executor
  /// binds the plan's per-block future-use positions before a run, advances
  /// the clock as statement instances complete, and unbinds afterwards.
  /// Binds nest (concurrent sessions over one shared pool): with one plan
  /// bound ScheduleOpt is exact Belady; with several, every plan
  /// contributes to a merged future-use ordering through its own
  /// normalized clock (see storage/replacement.h); with zero it is exact
  /// LRU. Each binder owns its `uses` pointer and must pass the same
  /// pointer to UnbindUsePlan and AdvanceReplacementClock — nullptr
  /// unbinds are a CHECK failure.
  void BindUsePlan(std::shared_ptr<const BlockUseMap> uses) EXCLUDES(mu_);
  void UnbindUsePlan(const std::shared_ptr<const BlockUseMap>& uses)
      EXCLUDES(mu_);
  /// Advances plan `uses`'s clock (nullptr = the sole bound plan).
  void AdvanceReplacementClock(int64_t pos) EXCLUDES(mu_);
  void AdvanceReplacementClock(const std::shared_ptr<const BlockUseMap>& uses,
                               int64_t pos) EXCLUDES(mu_);

  // --------------------------------------------------------- write-behind
  /// Routes dirty eviction write-backs through `io`'s write workers
  /// instead of writing synchronously under the pool lock. The caller must
  /// DrainWritebacks() and SetWriteBehind(nullptr) before destroying `io`.
  void SetWriteBehind(IoPool* io) EXCLUDES(mu_);
  /// Waits for every in-flight write-behind; returns the first failure
  /// (clearing it, so the pool is reusable afterwards). A failed
  /// write-behind also poisons its block until drained: a Fetch of it
  /// returns the write's error rather than silently rereading stale disk.
  Status DrainWritebacks() EXCLUDES(mu_);

  // ------------------------------------------------------- prefetch path
  /// Reserves a kPrefetching frame for (array_id, block) so an I/O worker
  /// can fill frame->data. Declines (returns nullptr) when a frame for the
  /// block already exists in any state, when a write-behind of the block is
  /// still in flight, when the prefetch budget is exhausted, or when making
  /// room would evict anything but a clean, unpinned, unretained regular
  /// frame. Never triggers a dirty write-back.
  Frame* TryStartPrefetch(int array_id, int64_t block, int64_t bytes,
                          BlockStore* store) EXCLUDES(mu_);
  /// I/O completed: kPrefetching -> kPrefetched.
  void CompletePrefetch(Frame* frame) EXCLUDES(mu_);
  /// Hands a kPrefetched frame to the execution thread: the frame becomes
  /// a pinned regular frame, exactly as if Fetch had loaded it. `account`
  /// charges the newly-required bytes to the session (the caller checks
  /// its budget before adopting; adoption itself never refuses).
  Frame* AdoptPrefetched(Frame* frame, PoolAccount* account = nullptr)
      EXCLUDES(mu_);
  /// Gives up on a completed prefetch: the frame is dropped from the pool
  /// entirely (never demoted to cache — a failed or stale prefetch must
  /// not be able to satisfy a later probe).
  void AbandonPrefetch(Frame* frame) EXCLUDES(mu_);
  /// Max total bytes of frames in prefetch states; 0 disables prefetch.
  void SetPrefetchBudget(int64_t bytes) EXCLUDES(mu_);
  int64_t prefetch_bytes() const EXCLUDES(mu_);

  /// Drops the frame for (array_id, block) without write-back, if present,
  /// unpinned, unretained, and in the regular state; no-op otherwise. The
  /// executor uses this at end of run to drop frames whose contents
  /// legitimately diverged from disk (saved/elided writes), so a shared
  /// pool only ever carries cache that mirrors the stores.
  void Drop(int array_id, int64_t block) EXCLUDES(mu_);

  /// Drops every droppable (clean, unpinned, unretained, regular) frame of
  /// `array_id`. The session runtime calls this before a tenant's
  /// BlockStore is destroyed so a later store at the same address can
  /// never alias stale cache; callers must DrainWritebacks first if the
  /// array may have dirty history. Returns the number of frames of the
  /// array that could NOT be dropped (still pinned/retained/in prefetch).
  int64_t DropArrayFrames(int array_id) EXCLUDES(mu_);

  /// Drops a clean frame / writes back a dirty one, then drops it. Drains
  /// in-flight write-behind first.
  Status FlushAll() EXCLUDES(mu_);

  int64_t used_bytes() const EXCLUDES(mu_);
  /// Number of frames currently pinned (pins > 0). A completed Executor::Run
  /// — success or error — must leave this at zero; fault-injection tests
  /// assert it through a shared pool.
  int64_t PinnedFrames() const EXCLUDES(mu_);
  /// Bytes the plan currently *requires* resident (pinned or retained
  /// regular frames); comparable to the cost model's memory prediction,
  /// unlike used_bytes() which also counts lazily-evicted cache and
  /// prefetch lookahead. Maintained incrementally — O(1).
  int64_t PinnedOrRetainedBytes() const EXCLUDES(mu_);
  int64_t cap_bytes() const { return cap_bytes_; }
  BufferPoolStats stats() const EXCLUDES(mu_);
  /// Counters and frame-state aggregates under ONE lock acquisition (see
  /// BufferPoolSnapshot) — the only way to compare them consistently while
  /// I/O workers and write-behind callbacks are live.
  BufferPoolSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  using Key = PoolKey;

  /// Fields are guarded by the owning pool's mu_ (the write-behind
  /// completion callback mutates them under it). Not annotated: a nested
  /// type cannot name the outer instance's mutex.
  struct PendingWrite {
    AlignedBuffer data;  // the evicted frame's buffer, moved in
    Status status;
    bool done = false;
  };

  /// The *Locked helpers take the caller's scoped lock where they may have
  /// to drop and re-acquire it (cv waits); REQUIRES(mu_) makes the analysis
  /// enforce that every caller actually holds it.
  Status EnsureCapacityLocked(UniqueMutexLock& lock, int64_t incoming_bytes,
                              bool for_prefetch) REQUIRES(mu_);
  /// Waits out an in-flight write-behind of `key` (returns its error if it
  /// failed). No-op when none is pending.
  Status WaitWritebackLocked(UniqueMutexLock& lock, const Key& key)
      REQUIRES(mu_);
  /// Blocks until every in-flight write-behind has completed (successfully
  /// or not; completed entries may remain to be collected).
  void WaitAllWritebacksLocked(UniqueMutexLock& lock) REQUIRES(mu_);
  /// WaitAllWritebacksLocked + collect the first failure and clear the
  /// pending table.
  Status DrainWritebacksLocked(UniqueMutexLock& lock) REQUIRES(mu_);
  void EraseFrameLocked(Frame* frame) REQUIRES(mu_);
  static bool CountsAsRequired(const Frame& f) {
    return f.state == FrameState::kRegular && (f.pins > 0 || f.retained());
  }
  static bool IsEvictable(const Frame& f) {
    return f.state == FrameState::kRegular && f.pins == 0 &&
           !f.retained() && !f.discarded && !f.loading;
  }
  /// Records/releases `account`'s hold (one pin) on a frame. nullptr =
  /// anonymous, not tracked. Call inside a MutateTracked fn alongside the
  /// matching pins change so RechargeLocked sees consistent state. Static
  /// (no pool state touched), so they carry no REQUIRES; every caller is a
  /// REQUIRES(mu_) context and Frame interiors are mu_-protected by the
  /// convention documented on Frame.
  static void AddHoldLocked(Frame* f, PoolAccount* account);
  static void DropHoldLocked(Frame* f, PoolAccount* account);
  /// Re-points the frame's budget charge at a claimant that still
  /// requires it: uncharges when the frame stops being required, keeps
  /// the current claimant while it holds a pin or retention, and
  /// otherwise transfers the charge to a surviving holder (else a
  /// retention owner). The transfer charges the survivor without a
  /// budget check — the frame is already part of the survivor's own
  /// required footprint, which its budget covers (see PoolAccount).
  void RechargeLocked(Frame* f) REQUIRES(mu_);
  /// Call around any mutation of pins/holders/retention/state to keep the
  /// required-bytes counter, the per-account ledgers, and the policy's
  /// evictable set current.
  template <typename Fn>
  void MutateTracked(Frame* f, Fn&& fn) REQUIRES(mu_) {
    const bool before = CountsAsRequired(*f);
    const bool before_ev = IsEvictable(*f);
    fn();
    const bool after = CountsAsRequired(*f);
    const bool after_ev = IsEvictable(*f);
    if (before != after) {
      required_bytes_ +=
          (after ? 1 : -1) * static_cast<int64_t>(f->data.size());
    }
    RechargeLocked(f);
    if (before_ev != after_ev) {
      const Key key{f->array_id, f->block};
      if (after_ev) {
        policy_->OnEvictable(key);
      } else {
        policy_->OnProtected(key);
      }
    }
  }

  const int64_t cap_bytes_;
  mutable Mutex mu_;
  int64_t used_bytes_ GUARDED_BY(mu_) = 0;
  int64_t required_bytes_ GUARDED_BY(mu_) = 0;
  int64_t prefetch_bytes_ GUARDED_BY(mu_) = 0;
  int64_t prefetch_budget_bytes_ GUARDED_BY(mu_) = 0;
  /// Frame *metadata* (pins, retentions, state, dirty, ...) is mu_-guarded
  /// throughout; frames_ itself carries the annotation. Frame::data payloads
  /// are deliberately read and written by pin holders without the lock —
  /// a pinned frame's buffer is stable (never evicted, never refilled), so
  /// the pin itself is the synchronization.
  std::map<Key, Frame> frames_ GUARDED_BY(mu_);
  std::unique_ptr<ReplacementPolicy> policy_ GUARDED_BY(mu_);
  IoPool* write_io_ GUARDED_BY(mu_) = nullptr;
  int64_t writeback_inflight_bytes_ GUARDED_BY(mu_) = 0;
  std::map<Key, std::shared_ptr<PendingWrite>> pending_writes_ GUARDED_BY(mu_);
  CondVar writeback_cv_;
  CondVar load_cv_;  // coalesced-load completion
  BufferPoolStats stats_ GUARDED_BY(mu_);
};

}  // namespace riot

#endif  // RIOTSHARE_STORAGE_BUFFER_POOL_H_
