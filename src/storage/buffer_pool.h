// Buffer pool with an explicit memory cap (paper Section 4.2: "we impose a
// memory cap and control memory data reuse explicitly").
//
// Frames are keyed by (array id, linear block index). The executor pins a
// frame while a statement instance computes on it, and additionally marks
// frames "retained" until a given group index to realize sharing
// opportunities (keep-until-reuse). Unpinned, unretained frames are evicted
// LRU when the cap is hit; dirty victims are written back through their
// BlockStore (spilling — a correct plan never triggers it, and tests assert
// so via the spill counters).
#ifndef RIOTSHARE_STORAGE_BUFFER_POOL_H_
#define RIOTSHARE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "storage/block_store.h"
#include "util/status.h"

namespace riot {

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t dirty_writebacks = 0;  // spills: should be 0 for in-cap plans
};

class BufferPool {
 public:
  struct Frame {
    int array_id = -1;
    int64_t block = -1;
    std::vector<uint8_t> data;
    bool dirty = false;
    int pins = 0;
    /// Retained until all groups <= retain_until_group complete; -1 = none.
    int64_t retain_until_group = -1;
    BlockStore* store = nullptr;  // for dirty write-back on eviction
  };

  explicit BufferPool(int64_t cap_bytes) : cap_bytes_(cap_bytes) {}

  /// Returns the frame for (array_id, block), fetching from `store` on miss
  /// when `load` is set (otherwise the frame starts zeroed). The returned
  /// frame is pinned; call Unpin when done.
  Result<Frame*> Fetch(int array_id, int64_t block, int64_t bytes,
                       BlockStore* store, bool load);

  /// Frame lookup without side effects; nullptr if absent.
  Frame* Probe(int array_id, int64_t block);

  void Unpin(Frame* frame);
  void Retain(Frame* frame, int64_t until_group);
  /// Releases every retention that expired strictly before `group`.
  void ReleaseRetainedBefore(int64_t group);

  /// Drops a clean frame / writes back a dirty one, then drops it.
  Status FlushAll();

  int64_t used_bytes() const { return used_bytes_; }
  /// Bytes the plan currently *requires* resident (pinned or retained);
  /// comparable to the cost model's memory prediction, unlike used_bytes()
  /// which also counts lazily-evicted cache.
  int64_t PinnedOrRetainedBytes() const {
    int64_t bytes = 0;
    for (const auto& [key, f] : frames_) {
      if (f.pins > 0 || f.retain_until_group >= 0) {
        bytes += static_cast<int64_t>(f.data.size());
      }
    }
    return bytes;
  }
  int64_t cap_bytes() const { return cap_bytes_; }
  const BufferPoolStats& stats() const { return stats_; }

 private:
  using Key = std::pair<int, int64_t>;
  Status EnsureCapacity(int64_t incoming_bytes);
  void Touch(const Key& key);

  int64_t cap_bytes_;
  int64_t used_bytes_ = 0;
  std::map<Key, Frame> frames_;
  std::list<Key> lru_;  // front = least recently used
  std::map<Key, std::list<Key>::iterator> lru_pos_;
  BufferPoolStats stats_;
};

}  // namespace riot

#endif  // RIOTSHARE_STORAGE_BUFFER_POOL_H_
