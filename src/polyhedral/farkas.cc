#include "polyhedral/farkas.h"

#include "util/logging.h"

namespace riot {

Polyhedron FarkasNonNegativeForms(const Polyhedron& p) {
  const size_t n = p.dim();
  // Split equalities into +/- inequality pairs so every multiplier is >= 0.
  std::vector<AffineConstraint> ineqs;
  for (const auto& c : p.constraints()) {
    if (c.is_equality) {
      AffineConstraint a{c.coeffs, c.constant, false};
      AffineConstraint b{c.coeffs * Rational(-1), -c.constant, false};
      ineqs.push_back(std::move(a));
      ineqs.push_back(std::move(b));
    } else {
      ineqs.push_back(c);
    }
  }
  const size_t np = ineqs.size();
  // Space: [u_0..u_{n-1}, u0, lambda_0, lambda_1..lambda_np]; dim n+2+np.
  const size_t u0_idx = n;
  const size_t l0_idx = n + 1;
  Polyhedron sys(n + 2 + np);
  // Coefficient matching: u_j - sum_k lambda_k a_kj == 0 for each var j.
  for (size_t j = 0; j < n; ++j) {
    RVector row(sys.dim());
    row[j] = Rational(1);
    for (size_t k = 0; k < np; ++k) {
      row[l0_idx + 1 + k] = -ineqs[k].coeffs[j];
    }
    sys.AddEq(std::move(row), Rational(0));
  }
  // Constant matching: u0 - lambda_0 - sum_k lambda_k b_k == 0.
  {
    RVector row(sys.dim());
    row[u0_idx] = Rational(1);
    row[l0_idx] = Rational(-1);
    for (size_t k = 0; k < np; ++k) {
      row[l0_idx + 1 + k] = -ineqs[k].constant;
    }
    sys.AddEq(std::move(row), Rational(0));
  }
  // lambda >= 0.
  for (size_t k = 0; k <= np; ++k) {
    RVector row(sys.dim());
    row[l0_idx + k] = Rational(1);
    sys.AddGe(std::move(row), Rational(0));
  }
  // Eliminate all lambdas (from the back to keep indices stable).
  Polyhedron cur = std::move(sys);
  for (size_t k = 0; k <= np; ++k) {
    cur = cur.EliminateVar(cur.dim() - 1);
  }
  RIOT_CHECK_EQ(cur.dim(), n + 1);
  std::vector<std::string> names;
  for (size_t j = 0; j < n; ++j) names.push_back("u" + std::to_string(j));
  names.push_back("u_const");
  cur.set_names(names);
  return cur;
}

Polyhedron SubstituteLinearMap(const Polyhedron& f, const RMatrix& m,
                               const RVector& m0, size_t w_dim) {
  RIOT_CHECK_EQ(m.rows(), f.dim());
  RIOT_CHECK_EQ(m.cols(), w_dim);
  RIOT_CHECK_EQ(m0.size(), f.dim());
  Polyhedron out(w_dim);
  for (const auto& c : f.constraints()) {
    RVector w_coeffs(w_dim);
    for (size_t j = 0; j < w_dim; ++j) {
      Rational acc;
      for (size_t i = 0; i < f.dim(); ++i) {
        acc += c.coeffs[i] * m.At(i, j);
      }
      w_coeffs[j] = acc;
    }
    Rational cst = c.constant + c.coeffs.Dot(m0);
    AffineConstraint nc{std::move(w_coeffs), cst, c.is_equality};
    out.AddConstraint(std::move(nc));
  }
  return out;
}

}  // namespace riot
