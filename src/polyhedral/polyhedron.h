// Integer polyhedra as systems of affine constraints, with the operations
// the RIOTShare optimizer needs: intersection, emptiness (exact, via
// rational LP + integer search), Fourier-Motzkin projection, variable
// bounds, integer point enumeration, and lexicographic-order construction.
//
// Conventions follow the paper: a constraint row is (coeffs..., const) and
// means coeffs . x + const >= 0 (inequality) or == 0 (equality).
#ifndef RIOTSHARE_POLYHEDRAL_POLYHEDRON_H_
#define RIOTSHARE_POLYHEDRAL_POLYHEDRON_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ilp/simplex.h"
#include "linalg/matrix.h"

namespace riot {

/// \brief One affine constraint over a dim-dimensional space.
struct AffineConstraint {
  RVector coeffs;  // size dim
  Rational constant;
  bool is_equality = false;

  Rational EvaluateAt(const std::vector<int64_t>& point) const;
  bool SatisfiedAt(const std::vector<int64_t>& point) const;
  std::string ToString(const std::vector<std::string>& names) const;
};

/// \brief A (convex) integer polyhedron: conjunction of affine constraints.
class Polyhedron {
 public:
  Polyhedron() : dim_(0) {}
  explicit Polyhedron(size_t dim) : dim_(dim) {}
  Polyhedron(size_t dim, std::vector<std::string> names)
      : dim_(dim), names_(std::move(names)) {}

  size_t dim() const { return dim_; }
  const std::vector<AffineConstraint>& constraints() const { return cons_; }
  const std::vector<std::string>& names() const { return names_; }
  void set_names(std::vector<std::string> names) { names_ = std::move(names); }

  /// coeffs . x + constant >= 0
  void AddGe(RVector coeffs, Rational constant);
  /// coeffs . x + constant == 0
  void AddEq(RVector coeffs, Rational constant);
  /// Convenience: x[var] >= lo and x[var] <= hi.
  void AddVarBounds(size_t var, int64_t lo, int64_t hi);
  /// Convenience: x[var] == value.
  void AddVarEq(size_t var, int64_t value);
  void AddConstraint(AffineConstraint c);

  bool Contains(const std::vector<int64_t>& point) const;

  /// Exact rational emptiness (LP feasibility of the relaxation).
  bool IsEmptyRational() const;

  /// Exact integer emptiness. Requires the polyhedron to be bounded in every
  /// dimension (true for all iteration/extent polyhedra in this system).
  bool IsEmptyInteger() const;

  /// Rational min/max of x[var] over the polyhedron; nullopt if empty or
  /// unbounded in that direction.
  std::optional<Rational> Minimize(const RVector& objective) const;
  std::optional<Rational> Maximize(const RVector& objective) const;
  std::optional<std::pair<int64_t, int64_t>> IntegerVarBounds(size_t var) const;

  /// All integer points (lexicographic order). Requires boundedness.
  std::vector<std::vector<int64_t>> EnumerateIntegerPoints() const;

  /// Calls fn for each integer point; stops early if fn returns false.
  void ForEachIntegerPoint(
      const std::function<bool(const std::vector<int64_t>&)>& fn) const;

  /// Conjunction with another polyhedron over the same space.
  Polyhedron Intersect(const Polyhedron& other) const;

  /// Fourier-Motzkin elimination of variable `var` (rational projection).
  Polyhedron EliminateVar(size_t var) const;

  /// Project onto the first `k` variables (eliminates the rest).
  Polyhedron ProjectOntoPrefix(size_t k) const;

  /// Polyhedron over (x, y) in a dim_x + dim_y product space given
  /// constraints added by the caller; helper just builds the empty shell.
  static Polyhedron ProductSpace(const Polyhedron& a, const Polyhedron& b);

  /// Substitute x[var] := value, producing a polyhedron over dim-1 vars
  /// (variable indices above `var` shift down by one).
  Polyhedron SubstituteVar(size_t var, int64_t value) const;

  std::string ToString() const;

  /// Convert to LP constraints over dim_ variables (for simplex).
  std::vector<LpConstraint> ToLpConstraints() const;

 private:
  void EnumerateRec(std::vector<int64_t>* prefix, const Polyhedron& rest,
                    const std::function<bool(const std::vector<int64_t>&)>& fn,
                    bool* stop) const;

  size_t dim_;
  std::vector<AffineConstraint> cons_;
  std::vector<std::string> names_;
};

/// \brief Union of convex polyhedra over a common space (used for
/// lexicographic order conditions and subtractions).
class PolyhedronUnion {
 public:
  PolyhedronUnion() = default;
  explicit PolyhedronUnion(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  void Add(Polyhedron p);
  const std::vector<Polyhedron>& disjuncts() const { return parts_; }

  bool IsEmptyInteger() const;
  bool Contains(const std::vector<int64_t>& point) const;
  std::vector<std::vector<int64_t>> EnumerateIntegerPoints() const;

 private:
  size_t dim_ = 0;
  std::vector<Polyhedron> parts_;
};

/// \brief Builds the "Theta_a x  lex<  Theta_b y" condition over the product
/// space (x, y), where rows of theta_a/theta_b are affine forms over the
/// respective extended iteration vectors (coeffs, const). Returns one
/// disjunct per depth at which the order can first differ.
PolyhedronUnion LexLess(const Polyhedron& space, const RMatrix& theta_a,
                        size_t x_offset, size_t x_dim, const RMatrix& theta_b,
                        size_t y_offset, size_t y_dim);

}  // namespace riot

#endif  // RIOTSHARE_POLYHEDRAL_POLYHEDRON_H_
