// Affine form of the Farkas lemma (Lemma 1 in the paper; Schrijver [20]).
//
// Given a nonempty polyhedron P = { x : a_k.x + b_k >= 0 }, an affine form
// u.x + u0 is nonnegative everywhere on P iff there exist multipliers
// lambda_0.. lambda_p >= 0 with  u.x + u0 == lambda_0 + sum_k lambda_k
// (a_k.x + b_k) identically. Matching coefficients and eliminating the
// lambdas (Fourier-Motzkin) yields a polyhedron over (u, u0) describing all
// such forms. The optimizer uses this to linearize "schedule respects
// dependence" / "schedule realizes sharing" conditions into constraints on
// schedule coefficients.
#ifndef RIOTSHARE_POLYHEDRAL_FARKAS_H_
#define RIOTSHARE_POLYHEDRAL_FARKAS_H_

#include "polyhedral/polyhedron.h"

namespace riot {

/// \brief Polyhedron over (u_0..u_{n-1}, u0), dim n+1, characterizing every
/// affine form u.x + u0 that is >= 0 over all of P (P must be nonempty;
/// if P is empty every form qualifies and the universe polyhedron returns).
Polyhedron FarkasNonNegativeForms(const Polyhedron& p);

/// \brief Rewrites a polyhedron F over (u, u0) into one over unknowns w via
/// the affine substitution (u, u0) = M w + m0.
///
/// M has F.dim() rows and w_dim columns. Used to map Farkas results into
/// schedule-coefficient space: the form's coefficients are linear in the
/// schedule row being solved for.
Polyhedron SubstituteLinearMap(const Polyhedron& f, const RMatrix& m,
                               const RVector& m0, size_t w_dim);

}  // namespace riot

#endif  // RIOTSHARE_POLYHEDRAL_FARKAS_H_
