#include "polyhedral/polyhedron.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace riot {

Rational AffineConstraint::EvaluateAt(const std::vector<int64_t>& point) const {
  RIOT_CHECK_EQ(point.size(), coeffs.size());
  Rational acc = constant;
  for (size_t i = 0; i < point.size(); ++i) {
    acc += coeffs[i] * Rational(point[i]);
  }
  return acc;
}

bool AffineConstraint::SatisfiedAt(const std::vector<int64_t>& point) const {
  Rational v = EvaluateAt(point);
  return is_equality ? v.IsZero() : !v.IsNegative();
}

std::string AffineConstraint::ToString(
    const std::vector<std::string>& names) const {
  std::ostringstream os;
  bool first = true;
  for (size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i].IsZero()) continue;
    if (!first) os << " + ";
    os << coeffs[i] << "*";
    if (i < names.size()) {
      os << names[i];
    } else {
      os << "x" << i;
    }
    first = false;
  }
  if (first) os << "0";
  if (!constant.IsZero()) os << " + " << constant;
  os << (is_equality ? " == 0" : " >= 0");
  return os.str();
}

void Polyhedron::AddGe(RVector coeffs, Rational constant) {
  RIOT_CHECK_EQ(coeffs.size(), dim_);
  cons_.push_back({std::move(coeffs), constant, false});
}

void Polyhedron::AddEq(RVector coeffs, Rational constant) {
  RIOT_CHECK_EQ(coeffs.size(), dim_);
  cons_.push_back({std::move(coeffs), constant, true});
}

void Polyhedron::AddVarBounds(size_t var, int64_t lo, int64_t hi) {
  RVector a(dim_), b(dim_);
  a[var] = Rational(1);
  AddGe(a, Rational(-lo));  // x - lo >= 0
  b[var] = Rational(-1);
  AddGe(b, Rational(hi));  // -x + hi >= 0
}

void Polyhedron::AddVarEq(size_t var, int64_t value) {
  RVector a(dim_);
  a[var] = Rational(1);
  AddEq(a, Rational(-value));
}

void Polyhedron::AddConstraint(AffineConstraint c) {
  RIOT_CHECK_EQ(c.coeffs.size(), dim_);
  cons_.push_back(std::move(c));
}

bool Polyhedron::Contains(const std::vector<int64_t>& point) const {
  for (const auto& c : cons_) {
    if (!c.SatisfiedAt(point)) return false;
  }
  return true;
}

std::vector<LpConstraint> Polyhedron::ToLpConstraints() const {
  std::vector<LpConstraint> lp;
  lp.reserve(cons_.size());
  for (const auto& c : cons_) {
    // coeffs.x + const >= 0  <=>  coeffs.x >= -const
    lp.push_back({c.coeffs, c.is_equality ? CmpOp::kEq : CmpOp::kGe,
                  -c.constant});
  }
  return lp;
}

bool Polyhedron::IsEmptyRational() const {
  auto feasible = LpFeasible(dim_, ToLpConstraints());
  if (!feasible.ok()) {
    // Pivot budget exhausted: conservatively report "not proven empty" —
    // callers fall back to exact integer enumeration or treat the
    // dependence as live, both of which are safe (never abort).
    RIOT_LOG(Warning) << "emptiness LP gave up: "
                      << feasible.status().ToString();
    return false;
  }
  return !*feasible;
}

bool Polyhedron::IsEmptyInteger() const {
  if (IsEmptyRational()) return true;
  bool found = false;
  ForEachIntegerPoint([&](const std::vector<int64_t>&) {
    found = true;
    return false;  // stop at first
  });
  return !found;
}

namespace {
// Bound queries feed integer enumeration, where nullopt means "genuinely
// unbounded" and trips a CHECK in ForEachIntegerPoint — a pivot-budget
// giving-up must not masquerade as unboundedness there. Engage Bland's
// rule immediately (guaranteed finite termination, no cycling) and leave
// the budget effectively unlimited, exactly the pre-budget guarantees.
LpOptions BoundQueryLpOptions() {
  LpOptions o;
  o.max_pivots = std::numeric_limits<int64_t>::max();
  o.degenerate_pivot_limit = 1;
  return o;
}
}  // namespace

std::optional<Rational> Polyhedron::Minimize(const RVector& objective) const {
  auto s = SolveLp(dim_, ToLpConstraints(), objective * Rational(-1),
                   BoundQueryLpOptions());
  if (!s.ok() || s->status != LpStatus::kOptimal) return std::nullopt;
  return -s->objective;
}

std::optional<Rational> Polyhedron::Maximize(const RVector& objective) const {
  auto s = SolveLp(dim_, ToLpConstraints(), objective, BoundQueryLpOptions());
  if (!s.ok() || s->status != LpStatus::kOptimal) return std::nullopt;
  return s->objective;
}

std::optional<std::pair<int64_t, int64_t>> Polyhedron::IntegerVarBounds(
    size_t var) const {
  RVector obj(dim_);
  obj[var] = Rational(1);
  auto lo = Minimize(obj);
  auto hi = Maximize(obj);
  if (!lo || !hi) return std::nullopt;
  return std::make_pair(lo->Ceil(), hi->Floor());
}

void Polyhedron::ForEachIntegerPoint(
    const std::function<bool(const std::vector<int64_t>&)>& fn) const {
  if (IsEmptyRational()) return;
  std::vector<int64_t> prefix;
  bool stop = false;
  EnumerateRec(&prefix, *this, fn, &stop);
}

void Polyhedron::EnumerateRec(
    std::vector<int64_t>* prefix, const Polyhedron& rest,
    const std::function<bool(const std::vector<int64_t>&)>& fn,
    bool* stop) const {
  if (*stop) return;
  if (rest.dim() == 0) {
    // All variables fixed; rest's constraints are constants already checked
    // during substitution, but verify for safety.
    for (const auto& c : rest.constraints()) {
      Rational v = c.constant;
      if (c.is_equality ? !v.IsZero() : v.IsNegative()) return;
    }
    if (!fn(*prefix)) *stop = true;
    return;
  }
  if (rest.IsEmptyRational()) return;
  auto bounds = rest.IntegerVarBounds(0);
  if (!bounds) {
    RIOT_CHECK(false) << "enumeration over unbounded polyhedron";
  }
  for (int64_t v = bounds->first; v <= bounds->second && !*stop; ++v) {
    Polyhedron sub = rest.SubstituteVar(0, v);
    prefix->push_back(v);
    EnumerateRec(prefix, sub, fn, stop);
    prefix->pop_back();
  }
}

std::vector<std::vector<int64_t>> Polyhedron::EnumerateIntegerPoints() const {
  std::vector<std::vector<int64_t>> pts;
  ForEachIntegerPoint([&](const std::vector<int64_t>& p) {
    pts.push_back(p);
    return true;
  });
  return pts;
}

Polyhedron Polyhedron::Intersect(const Polyhedron& other) const {
  RIOT_CHECK_EQ(dim_, other.dim_);
  Polyhedron p = *this;
  for (const auto& c : other.cons_) p.cons_.push_back(c);
  return p;
}

Polyhedron Polyhedron::EliminateVar(size_t var) const {
  RIOT_CHECK_LT(var, dim_);
  // Split equalities into two inequalities first so FM applies uniformly;
  // but prefer Gaussian elimination when an equality mentions the variable
  // (cheaper and exact).
  for (size_t i = 0; i < cons_.size(); ++i) {
    const auto& eq = cons_[i];
    if (!eq.is_equality || eq.coeffs[var].IsZero()) continue;
    // Substitute var from this equality into all other constraints.
    Polyhedron out(dim_ - 1);
    std::vector<std::string> nn;
    for (size_t d = 0; d < dim_; ++d) {
      if (d != var && d < names_.size()) nn.push_back(names_[d]);
    }
    out.set_names(nn);
    Rational pivot = eq.coeffs[var];
    for (size_t j = 0; j < cons_.size(); ++j) {
      if (j == i) continue;
      const auto& c = cons_[j];
      // c' = c - (c[var]/pivot) * eq
      Rational f = c.coeffs[var] / pivot;
      RVector nc(dim_ - 1);
      size_t k = 0;
      for (size_t d = 0; d < dim_; ++d) {
        if (d == var) continue;
        nc[k++] = c.coeffs[d] - f * eq.coeffs[d];
      }
      Rational ncst = c.constant - f * eq.constant;
      if (c.is_equality) {
        out.AddEq(std::move(nc), ncst);
      } else {
        out.AddGe(std::move(nc), ncst);
      }
    }
    return out;
  }
  // Pure Fourier-Motzkin over inequalities.
  std::vector<AffineConstraint> lower, upper, rest;
  for (const auto& c0 : cons_) {
    std::vector<AffineConstraint> expanded;
    if (c0.is_equality) {
      AffineConstraint a = c0;
      a.is_equality = false;
      AffineConstraint b = c0;
      b.is_equality = false;
      b.coeffs = b.coeffs * Rational(-1);
      b.constant = -b.constant;
      expanded = {a, b};
    } else {
      expanded = {c0};
    }
    for (auto& c : expanded) {
      if (c.coeffs[var].IsPositive()) {
        lower.push_back(c);  // var >= ...  (coeff > 0)
      } else if (c.coeffs[var].IsNegative()) {
        upper.push_back(c);  // var <= ...
      } else {
        rest.push_back(c);
      }
    }
  }
  auto drop_var = [&](const RVector& v) {
    RVector r(dim_ - 1);
    size_t k = 0;
    for (size_t d = 0; d < dim_; ++d) {
      if (d != var) r[k++] = v[d];
    }
    return r;
  };
  Polyhedron out(dim_ - 1);
  std::vector<std::string> nn;
  for (size_t d = 0; d < dim_; ++d) {
    if (d != var && d < names_.size()) nn.push_back(names_[d]);
  }
  out.set_names(nn);
  for (const auto& c : rest) {
    out.AddGe(drop_var(c.coeffs), c.constant);
  }
  for (const auto& lo : lower) {
    for (const auto& hi : upper) {
      // lo: a.x + p*var + b >= 0 (p>0)  =>  var >= -(a.x+b)/p
      // hi: c.x + q*var + d >= 0 (q<0)  =>  var <= -(c.x+d)/q ... combine:
      // (-q)*(a.x+b) + p*(c.x+d) >= 0
      Rational p = lo.coeffs[var];
      Rational q = hi.coeffs[var];  // negative
      RVector comb(dim_ - 1);
      RVector la = drop_var(lo.coeffs);
      RVector hc = drop_var(hi.coeffs);
      for (size_t d = 0; d + 1 <= dim_ - 1; ++d) {
        comb[d] = la[d] * (-q) + hc[d] * p;
      }
      Rational cst = lo.constant * (-q) + hi.constant * p;
      out.AddGe(std::move(comb), cst);
    }
  }
  return out;
}

Polyhedron Polyhedron::ProjectOntoPrefix(size_t k) const {
  Polyhedron p = *this;
  while (p.dim() > k) {
    p = p.EliminateVar(p.dim() - 1);
  }
  return p;
}

Polyhedron Polyhedron::ProductSpace(const Polyhedron& a, const Polyhedron& b) {
  Polyhedron p(a.dim() + b.dim());
  std::vector<std::string> names;
  for (size_t i = 0; i < a.dim(); ++i) {
    names.push_back(i < a.names_.size() ? a.names_[i] : "x" + std::to_string(i));
  }
  for (size_t i = 0; i < b.dim(); ++i) {
    names.push_back((i < b.names_.size() ? b.names_[i] : "y" + std::to_string(i)) + "'");
  }
  p.set_names(names);
  for (const auto& c : a.cons_) {
    RVector v(p.dim());
    for (size_t d = 0; d < a.dim(); ++d) v[d] = c.coeffs[d];
    AffineConstraint nc{std::move(v), c.constant, c.is_equality};
    p.AddConstraint(std::move(nc));
  }
  for (const auto& c : b.cons_) {
    RVector v(p.dim());
    for (size_t d = 0; d < b.dim(); ++d) v[a.dim() + d] = c.coeffs[d];
    AffineConstraint nc{std::move(v), c.constant, c.is_equality};
    p.AddConstraint(std::move(nc));
  }
  return p;
}

Polyhedron Polyhedron::SubstituteVar(size_t var, int64_t value) const {
  RIOT_CHECK_LT(var, dim_);
  Polyhedron out(dim_ - 1);
  std::vector<std::string> nn;
  for (size_t d = 0; d < dim_; ++d) {
    if (d != var && d < names_.size()) nn.push_back(names_[d]);
  }
  out.set_names(nn);
  for (const auto& c : cons_) {
    RVector v(dim_ - 1);
    size_t k = 0;
    for (size_t d = 0; d < dim_; ++d) {
      if (d != var) v[k++] = c.coeffs[d];
    }
    Rational cst = c.constant + c.coeffs[var] * Rational(value);
    AffineConstraint nc{std::move(v), cst, c.is_equality};
    out.AddConstraint(std::move(nc));
  }
  return out;
}

std::string Polyhedron::ToString() const {
  std::ostringstream os;
  os << "{ dim=" << dim_ << " :";
  for (const auto& c : cons_) {
    os << "\n  " << c.ToString(names_);
  }
  os << " }";
  return os.str();
}

void PolyhedronUnion::Add(Polyhedron p) {
  if (dim_ == 0 && parts_.empty()) dim_ = p.dim();
  RIOT_CHECK_EQ(p.dim(), dim_);
  parts_.push_back(std::move(p));
}

bool PolyhedronUnion::IsEmptyInteger() const {
  for (const auto& p : parts_) {
    if (!p.IsEmptyInteger()) return false;
  }
  return true;
}

bool PolyhedronUnion::Contains(const std::vector<int64_t>& point) const {
  for (const auto& p : parts_) {
    if (p.Contains(point)) return true;
  }
  return false;
}

std::vector<std::vector<int64_t>> PolyhedronUnion::EnumerateIntegerPoints()
    const {
  // Deduplicated union of per-disjunct enumerations.
  std::vector<std::vector<int64_t>> all;
  for (const auto& p : parts_) {
    auto pts = p.EnumerateIntegerPoints();
    all.insert(all.end(), pts.begin(), pts.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

PolyhedronUnion LexLess(const Polyhedron& space, const RMatrix& theta_a,
                        size_t x_offset, size_t x_dim, const RMatrix& theta_b,
                        size_t y_offset, size_t y_dim) {
  RIOT_CHECK_EQ(theta_a.cols(), x_dim + 1);  // coeffs + constant
  RIOT_CHECK_EQ(theta_b.cols(), y_dim + 1);
  const size_t depth = std::min(theta_a.rows(), theta_b.rows());
  PolyhedronUnion result(space.dim());
  // Row r of theta applied to subvector at offset, as a constraint row over
  // the product space. diff = theta_b.y - theta_a.x (+ const diff).
  auto diff_row = [&](size_t r, RVector* coeffs, Rational* constant) {
    RVector v(space.dim());
    for (size_t d = 0; d < y_dim; ++d) v[y_offset + d] = theta_b.At(r, d);
    for (size_t d = 0; d < x_dim; ++d) {
      v[x_offset + d] -= theta_a.At(r, d);
    }
    *coeffs = std::move(v);
    *constant = theta_b.At(r, y_dim) - theta_a.At(r, x_dim);
  };
  for (size_t r = 0; r < depth; ++r) {
    Polyhedron disjunct = space;
    for (size_t q = 0; q < r; ++q) {
      RVector v;
      Rational c;
      diff_row(q, &v, &c);
      disjunct.AddEq(std::move(v), c);
    }
    RVector v;
    Rational c;
    diff_row(r, &v, &c);
    // strict: theta_b.y - theta_a.x >= 1 (integer schedules)
    disjunct.AddGe(std::move(v), c - Rational(1));
    result.Add(std::move(disjunct));
  }
  return result;
}

}  // namespace riot
