// Multidimensional affine schedules (paper Section 4.1/4.2).
//
// A statement schedule is a matrix with one row per time dimension; each row
// holds the coefficients over the statement's iteration variables followed
// by a constant. A program schedule holds one matrix per statement; all
// matrices share the same number of rows so time vectors compare
// lexicographically across statements.
#ifndef RIOTSHARE_IR_SCHEDULE_H_
#define RIOTSHARE_IR_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace riot {

using TimeVector = std::vector<int64_t>;

/// \brief Lexicographic comparison of equal-length time vectors.
int CompareTime(const TimeVector& a, const TimeVector& b);

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<RMatrix> per_stmt)
      : per_stmt_(std::move(per_stmt)) {}

  size_t num_statements() const { return per_stmt_.size(); }
  size_t depth() const {
    return per_stmt_.empty() ? 0 : per_stmt_[0].rows();
  }
  const RMatrix& ForStatement(int stmt_id) const {
    return per_stmt_[static_cast<size_t>(stmt_id)];
  }
  RMatrix& MutableForStatement(int stmt_id) {
    return per_stmt_[static_cast<size_t>(stmt_id)];
  }
  void Append(RMatrix m) { per_stmt_.push_back(std::move(m)); }

  /// Execution time of a statement instance.
  TimeVector TimeOf(int stmt_id, const std::vector<int64_t>& iter) const;

  std::string ToString() const;

 private:
  std::vector<RMatrix> per_stmt_;
};

}  // namespace riot

#endif  // RIOTSHARE_IR_SCHEDULE_H_
