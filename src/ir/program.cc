#include "ir/program.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace riot {

int Program::AddArray(ArrayInfo info) {
  info.id = static_cast<int>(arrays_.size());
  RIOT_CHECK(!info.grid.empty());
  RIOT_CHECK_EQ(info.grid.size(), info.block_elems.size());
  arrays_.push_back(std::move(info));
  return arrays_.back().id;
}

int Program::AddStatement(Statement stmt, int nest_index, int textual_pos) {
  stmt.id = static_cast<int>(stmts_.size());
  RIOT_CHECK_EQ(stmt.domain.dim(), stmt.depth());
  int writes = 0;
  for (const auto& a : stmt.accesses) {
    if (a.type == AccessType::kWrite) ++writes;
  }
  RIOT_CHECK_LE(writes, 1) << "statement " << stmt.name
                           << " has multiple writes";
  stmts_.push_back(std::move(stmt));
  positions_.emplace_back(nest_index, textual_pos);
  FinalizeOriginalSchedule();
  return stmts_.back().id;
}

size_t Program::MaxDepth() const {
  size_t d = 0;
  for (const auto& s : stmts_) d = std::max(d, s.depth());
  return d;
}

void Program::FinalizeOriginalSchedule() {
  const size_t dmax = MaxDepth();
  std::vector<RMatrix> mats;
  mats.reserve(stmts_.size());
  for (size_t s = 0; s < stmts_.size(); ++s) {
    const size_t ds = stmts_[s].depth();
    RMatrix m(dmax + 2, ds + 1);
    m.At(0, ds) = Rational(positions_[s].first);  // nest index
    for (size_t r = 0; r < dmax; ++r) {
      if (r < ds) m.At(1 + r, r) = Rational(1);
    }
    m.At(dmax + 1, ds) = Rational(positions_[s].second);  // textual position
    mats.push_back(std::move(m));
  }
  original_ = Schedule(std::move(mats));
}

const std::vector<std::vector<int64_t>>& Program::InstancesOf(
    int stmt_id) const {
  instance_cache_.resize(stmts_.size());
  auto& slot = instance_cache_[static_cast<size_t>(stmt_id)];
  if (!slot.has_value()) {
    slot = statement(stmt_id).domain.EnumerateIntegerPoints();
  }
  return *slot;
}

std::vector<ScheduledInstance> Program::ScheduledOrder(
    const Schedule& sched) const {
  std::vector<ScheduledInstance> all;
  for (const auto& s : stmts_) {
    for (const auto& iter : InstancesOf(s.id)) {
      ScheduledInstance inst;
      inst.stmt_id = s.id;
      inst.time = sched.TimeOf(s.id, iter);
      inst.iter = iter;
      all.push_back(std::move(inst));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ScheduledInstance& a, const ScheduledInstance& b) {
              int c = CompareTime(a.time, b.time);
              if (c != 0) return c < 0;
              if (a.stmt_id != b.stmt_id) return a.stmt_id < b.stmt_id;
              return a.iter < b.iter;
            });
  return all;
}

Status Program::Validate() const {
  for (const auto& s : stmts_) {
    int writes = 0;
    for (const auto& a : s.accesses) {
      if (a.array_id < 0 || a.array_id >= static_cast<int>(arrays_.size())) {
        return Status::InvalidArgument("statement " + s.name +
                                       " references unknown array");
      }
      const ArrayInfo& arr = array(a.array_id);
      if (a.phi.rows() != arr.ndim()) {
        return Status::InvalidArgument("access map row count != array dims (" +
                                       s.name + " -> " + arr.name + ")");
      }
      if (a.phi.cols() != s.depth() + 1) {
        return Status::InvalidArgument(
            "access map column count != statement depth + 1 (" + s.name +
            " -> " + arr.name + ")");
      }
      if (a.guard && a.guard->dim() != s.depth()) {
        return Status::InvalidArgument("guard dimensionality mismatch in " +
                                       s.name);
      }
      if (a.type == AccessType::kWrite) ++writes;
    }
    if (writes > 1) {
      return Status::InvalidArgument("statement " + s.name +
                                     " has multiple write accesses");
    }
    // Every access in the domain must land inside the array's block grid.
    for (const auto& iter : InstancesOf(s.id)) {
      for (const auto& a : s.accesses) {
        if (!a.ActiveAt(iter)) continue;
        BlockCoord c = a.BlockAt(iter);
        const ArrayInfo& arr = array(a.array_id);
        for (size_t d = 0; d < c.size(); ++d) {
          if (c[d] < 0 || c[d] >= arr.grid[d]) {
            return Status::OutOfRange("access in " + s.name + " maps outside " +
                                      arr.name + " block grid");
          }
        }
      }
    }
  }
  return Status::OK();
}

std::string Program::AccessLabel(const AccessRef& ref) const {
  const Statement& s = statement(ref.stmt_id);
  const Access& a = s.accesses[static_cast<size_t>(ref.access_idx)];
  return s.name + AccessTypeName(a.type) + array(a.array_id).name;
}

std::string Program::ToString() const {
  std::ostringstream os;
  os << "Program with " << arrays_.size() << " arrays, " << stmts_.size()
     << " statements\n";
  for (const auto& a : arrays_) {
    os << "  array " << a.name << ": grid=[";
    for (size_t d = 0; d < a.grid.size(); ++d) {
      if (d) os << "x";
      os << a.grid[d];
    }
    os << "] block=[";
    for (size_t d = 0; d < a.block_elems.size(); ++d) {
      if (d) os << "x";
      os << a.block_elems[d];
    }
    os << "] (" << a.TotalBytes() / (1024.0 * 1024.0) << " MB)\n";
  }
  for (const auto& s : stmts_) {
    os << "  " << s.name << " depth=" << s.depth() << " accesses=";
    for (size_t i = 0; i < s.accesses.size(); ++i) {
      if (i) os << ",";
      os << AccessLabel({s.id, static_cast<int>(i)});
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace riot
