#include "ir/schedule.h"

#include <sstream>

#include "util/logging.h"

namespace riot {

int CompareTime(const TimeVector& a, const TimeVector& b) {
  RIOT_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

TimeVector Schedule::TimeOf(int stmt_id,
                            const std::vector<int64_t>& iter) const {
  const RMatrix& m = ForStatement(stmt_id);
  RIOT_CHECK_EQ(m.cols(), iter.size() + 1);
  TimeVector t(m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    Rational acc = m.At(r, iter.size());
    for (size_t d = 0; d < iter.size(); ++d) {
      acc += m.At(r, d) * Rational(iter[d]);
    }
    t[r] = acc.ToInt64();
  }
  return t;
}

std::string Schedule::ToString() const {
  std::ostringstream os;
  for (size_t s = 0; s < per_stmt_.size(); ++s) {
    os << "s" << s << ":\n" << per_stmt_[s].ToString() << "\n";
  }
  return os.str();
}

}  // namespace riot
