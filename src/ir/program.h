// The static-control program representation the optimizer consumes:
// arrays, statements with (rectangular, parametric-in-construction)
// iteration domains, guarded affine block accesses, and an original
// schedule establishing the input execution order.
#ifndef RIOTSHARE_IR_PROGRAM_H_
#define RIOTSHARE_IR_PROGRAM_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ir/access.h"
#include "ir/array.h"
#include "ir/schedule.h"
#include "ir/statement_op.h"
#include "polyhedral/polyhedron.h"
#include "util/status.h"

namespace riot {

/// \brief One statement of the program.
struct Statement {
  int id = -1;
  std::string name;                 // e.g. "s1"
  std::vector<std::string> iters;   // loop variable names, outer to inner
  Polyhedron domain;                // over the iteration variables
  std::vector<Access> accesses;     // at most one write
  /// Typed semantic spec (what the statement computes over its accesses).
  /// When present the executor synthesizes the kernel from it
  /// (exec/kernel_synthesis.h); statements lowered from expression DAGs
  /// (core/lowering.h) always carry one. Absent for hand-built statements
  /// paired with free-form kernel lambdas (the escape hatch).
  std::optional<StatementOp> op;

  size_t depth() const { return iters.size(); }

  const Access* WriteAccess() const {
    for (const auto& a : accesses) {
      if (a.type == AccessType::kWrite) return &a;
    }
    return nullptr;
  }
};

/// \brief A statement instance scheduled at a concrete time.
struct ScheduledInstance {
  int stmt_id;
  std::vector<int64_t> iter;
  TimeVector time;
};

class Program {
 public:
  int AddArray(ArrayInfo info);
  /// Returns the statement id. The statement's original schedule is derived
  /// from `nest_index` (which sequential loop nest it belongs to) and
  /// `textual_pos` (position inside the nest body).
  int AddStatement(Statement stmt, int nest_index, int textual_pos);

  const std::vector<ArrayInfo>& arrays() const { return arrays_; }
  const std::vector<Statement>& statements() const { return stmts_; }
  const ArrayInfo& array(int id) const {
    return arrays_[static_cast<size_t>(id)];
  }
  const Statement& statement(int id) const {
    return stmts_[static_cast<size_t>(id)];
  }
  const Access& access(const AccessRef& ref) const {
    return stmts_[static_cast<size_t>(ref.stmt_id)]
        .accesses[static_cast<size_t>(ref.access_idx)];
  }

  /// Max statement depth d~ (paper Section 4.2).
  size_t MaxDepth() const;

  /// The original program schedule (rows: nest index, padded loop
  /// variables outer-to-inner, textual constant).
  const Schedule& original_schedule() const { return original_; }

  /// All instances of statement `stmt_id` (domain enumeration; cached, as
  /// domains are immutable once added).
  const std::vector<std::vector<int64_t>>& InstancesOf(int stmt_id) const;

  /// Every statement instance with its time under `sched`, sorted by
  /// (time, stmt_id, iter). A legal schedule never produces duplicate times
  /// for distinct instances; ties would indicate an illegal schedule and are
  /// broken deterministically.
  std::vector<ScheduledInstance> ScheduledOrder(const Schedule& sched) const;

  /// Validates structural invariants (one write per statement, access
  /// dimensions match arrays, guards within domains).
  Status Validate() const;

  std::string ToString() const;

  /// Human-readable label like "s1.W.C" for an access.
  std::string AccessLabel(const AccessRef& ref) const;

 private:
  void FinalizeOriginalSchedule();

  std::vector<ArrayInfo> arrays_;
  std::vector<Statement> stmts_;
  std::vector<std::pair<int, int>> positions_;  // (nest_index, textual_pos)
  Schedule original_;
  mutable std::vector<std::optional<std::vector<std::vector<int64_t>>>>
      instance_cache_;
};

}  // namespace riot

#endif  // RIOTSHARE_IR_PROGRAM_H_
