// Registry of user-defined scalar functions usable in expressions. A scalar
// op is a plain C function pointer — `double(double)` for a map (unary) or
// `double(double, double)` for a zip (binary) — registered once under a
// unique name and referenced everywhere else by its integer id: ExprGraph
// nodes (ir/expr.h Map/Zip), StatementOp::scalar_fn, TapeOp::scalar_fn, and
// kernel synthesis, which resolves the id back to the pointer when it builds
// the statement kernel. Function pointers (not std::function) keep the fused
// tape interpreter allocation-free and let lowering treat the id as plain
// data that hashes into the CSE key.
//
// Registration is process-global and append-only: ids are dense, stable for
// the life of the process, and never reused. The four built-ins below are
// registered eagerly in a fixed order so their ids are compile-time
// constants; they are exact over integers, which the expression fuzzer's
// Rational differential oracle relies on.
#ifndef RIOTSHARE_IR_SCALAR_OPS_H_
#define RIOTSHARE_IR_SCALAR_OPS_H_

#include <string>

namespace riot {

using ScalarMapFn = double (*)(double);
using ScalarZipFn = double (*)(double, double);

/// One registered scalar function: exactly one of `map` / `zip` is non-null.
struct ScalarFnInfo {
  std::string name;
  ScalarMapFn map = nullptr;
  ScalarZipFn zip = nullptr;
};

/// Register a unary scalar fn; returns its id. CHECK-fails on a duplicate
/// name or null fn. Thread-safe.
int RegisterScalarMap(const std::string& name, ScalarMapFn fn);

/// Register a binary scalar fn; returns its id. CHECK-fails on a duplicate
/// name or null fn. Thread-safe.
int RegisterScalarZip(const std::string& name, ScalarZipFn fn);

/// Look up a registered fn by id. CHECK-fails when `id` is out of range.
ScalarFnInfo ScalarFnById(int id);

/// Id of the fn registered under `name`, or -1 when none is.
int FindScalarFn(const std::string& name);

/// Number of registered fns; valid ids are [0, NumScalarFns()).
int NumScalarFns();

/// True when `id` names a registered fn of the wanted arity.
bool IsScalarMap(int id);
bool IsScalarZip(int id);

// Built-in ids — registered in this order before any user registration.
inline constexpr int kScalarAbs = 0;   // map: |x|
inline constexpr int kScalarRelu = 1;  // map: max(x, 0)
inline constexpr int kScalarMin = 2;   // zip: min(x, y)
inline constexpr int kScalarMax = 3;   // zip: max(x, y)

}  // namespace riot

#endif  // RIOTSHARE_IR_SCALAR_OPS_H_
