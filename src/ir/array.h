// Array metadata: an N-dimensional array of elements partitioned into a grid
// of large logical blocks. Blocks are the unit of I/O throughout the system
// (paper Section 1: "each array access represents a block access").
#ifndef RIOTSHARE_IR_ARRAY_H_
#define RIOTSHARE_IR_ARRAY_H_

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "util/logging.h"

namespace riot {

using BlockCoord = std::vector<int64_t>;

/// \brief Metadata for one on-disk array.
struct ArrayInfo {
  int id = -1;
  std::string name;
  /// Number of blocks along each dimension (e.g. {12, 12}).
  std::vector<int64_t> grid;
  /// Elements per block along each dimension (e.g. {6000, 4000}).
  std::vector<int64_t> block_elems;
  size_t elem_size = sizeof(double);
  /// Whether the array must exist on disk after the program runs. Writes to
  /// non-persistent temporaries can be elided when every subsequent read is
  /// served from memory (paper footnote 8: "decide if C needs to be written
  /// to disk").
  bool persistent = true;

  size_t ndim() const { return grid.size(); }

  int64_t ElemsPerBlock() const {
    int64_t n = 1;
    for (int64_t e : block_elems) n *= e;
    return n;
  }
  int64_t BlockBytes() const {
    return ElemsPerBlock() * static_cast<int64_t>(elem_size);
  }
  int64_t NumBlocks() const {
    int64_t n = 1;
    for (int64_t g : grid) n *= g;
    return n;
  }
  int64_t TotalBytes() const { return NumBlocks() * BlockBytes(); }
  int64_t TotalElems(size_t dim) const {
    RIOT_CHECK_LT(dim, grid.size());
    return grid[dim] * block_elems[dim];
  }

  /// Row-major linearization of a block coordinate (used as storage key).
  int64_t LinearBlockIndex(const BlockCoord& c) const {
    RIOT_CHECK_EQ(c.size(), grid.size());
    int64_t idx = 0;
    for (size_t d = 0; d < grid.size(); ++d) {
      RIOT_CHECK(c[d] >= 0 && c[d] < grid[d])
          << name << " block coord out of range at dim " << d;
      idx = idx * grid[d] + c[d];
    }
    return idx;
  }
};

}  // namespace riot

#endif  // RIOTSHARE_IR_ARRAY_H_
