// Lazy array-expression front end: users write whole-array expressions
// (C = A + B; E = C D; beta = (X'X + lambda I)^-1 X'y; ...) and the system
// defers evaluation, building an expression DAG that core/lowering.h later
// lowers to the blocked static-control Program the optimizer consumes —
// the paper's front story (Section 1: programs are array expressions whose
// I/O is then scheduled optimally), which hand-built IR + hand-written
// kernels previously stood in for.
//
// Nodes are hash-consed: building the same expression twice (same op, same
// children, same parameters) returns the existing node, so a common
// subexpression — ridge regression's X'X under two lambdas, say — is
// materialized once by lowering. Shape inference runs at construction;
// ill-shaped expressions fail immediately with a CHECK naming the node.
//
// The graph owns only structure and shapes. What each node *computes* is
// carried into the Program as a typed StatementOp (ir/statement_op.h),
// from which the executor synthesizes the in-memory kernel — no free-form
// lambda needed (they remain as an escape hatch for ops the expression
// language cannot express; see examples/custom_program.cpp).
#ifndef RIOTSHARE_IR_EXPR_H_
#define RIOTSHARE_IR_EXPR_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "ir/statement_op.h"
#include "util/logging.h"

namespace riot {

/// \brief Handle to a node in an ExprGraph (the node's id).
using ExprRef = int;

/// \brief Blocked 2-D shape: a grid of blocks, each block_elems large.
struct ExprShape {
  std::vector<int64_t> grid;         // blocks per dimension, e.g. {12, 12}
  std::vector<int64_t> block_elems;  // elements per block, e.g. {6000, 4000}

  int64_t rows() const { return grid[0] * block_elems[0]; }
  int64_t cols() const { return grid[1] * block_elems[1]; }
  bool operator==(const ExprShape& o) const {
    return grid == o.grid && block_elems == o.block_elems;
  }
  std::string ToString() const;
};

/// \brief One deferred operation. `op.kind` is the semantic payload;
/// operands are node ids (always created before their consumers, so node
/// id order is a topological order of the DAG).
struct ExprNode {
  StatementOp::Kind kind = StatementOp::Kind::kInput;
  std::vector<ExprRef> args;
  ExprShape shape;
  bool trans_a = false;  // Gemm: op(A) = A^T
  bool trans_b = false;  // Gemm: op(B) = B^T
  double alpha = 1.0;    // Gemm scale / Scale factor / AddDiag addend
  int scalar_fn = -1;    // Map/Zip: registered scalar fn id (ir/scalar_ops.h)
  std::string name;      // array name; temporaries default to "t<id>"
  bool keep = false;     // checkpoint this intermediate to disk (persistent)

  bool is_input() const { return kind == StatementOp::Kind::kInput; }
};

/// \brief Options for Gemm: C = alpha * op(A) op(B).
struct GemmOptions {
  bool trans_a = false;
  bool trans_b = false;
  double alpha = 1.0;
};

class ExprGraph {
 public:
  /// A named on-disk input array of the given blocked shape.
  ExprRef Input(std::string name, std::vector<int64_t> grid,
                std::vector<int64_t> block_elems);

  /// Elementwise; shapes (grid and block) must match exactly.
  ExprRef Add(ExprRef a, ExprRef b);
  ExprRef Sub(ExprRef a, ExprRef b);
  /// out = alpha * a (elementwise).
  ExprRef Scale(ExprRef a, double alpha);
  /// out = a + alpha * I. Requires a single square block (grid {1,1}).
  ExprRef AddDiag(ExprRef a, double alpha);
  /// out = alpha * op(a) op(b), contracting over blocks and elements; the
  /// block-grid contraction lowers to a reduction loop with a guarded
  /// accumulator read (paper footnote 1).
  ExprRef Gemm(ExprRef a, ExprRef b, GemmOptions opts = {});
  /// out = a^-1. Requires a single square block (grid {1,1}).
  ExprRef Inverse(ExprRef a);
  /// Column-wise sums of squares over the whole array: out is a
  /// {1, grid cols} grid of {1, block cols} blocks (the RSS building block).
  ExprRef SumSquares(ExprRef a);
  /// out = fn(a) elementwise, where `scalar_fn` is the id of a registered
  /// unary scalar function (ir/scalar_ops.h RegisterScalarMap / built-ins).
  ExprRef Map(ExprRef a, int scalar_fn);
  /// out = fn(a, b) elementwise; shapes must match exactly and `scalar_fn`
  /// must name a registered binary scalar function (RegisterScalarZip).
  ExprRef Zip(ExprRef a, ExprRef b, int scalar_fn);

  /// Names the array the node lowers to ("U", "Bh", ...); purely cosmetic
  /// for temporaries, and the on-disk name for inputs/outputs.
  void SetName(ExprRef ref, std::string name);
  /// Checkpoints an intermediate: its array is persistent (written to
  /// disk) even though it is not a lowering output. Without this,
  /// temporaries are scratch — non-persistent, so the optimizer's write
  /// elision can keep them out of the I/O entirely (paper footnote 8).
  void Keep(ExprRef ref);

  size_t size() const { return nodes_.size(); }
  const ExprNode& node(ExprRef ref) const {
    RIOT_CHECK(ref >= 0 && static_cast<size_t>(ref) < nodes_.size());
    return nodes_[static_cast<size_t>(ref)];
  }
  const std::vector<ExprNode>& nodes() const { return nodes_; }

  /// How many constructions were answered by an existing node (CSE hits).
  int64_t cse_hits() const { return cse_hits_; }

  /// "gemm^T(t3, t3)"-style rendering of one node (not recursive).
  std::string Describe(ExprRef ref) const;

 private:
  ExprRef Intern(ExprNode node);
  const ExprShape& shape(ExprRef r) const { return node(r).shape; }

  // Hash-consing key: everything semantically identifying a node. Inputs
  // are never deduplicated (two inputs with one name would be ambiguous;
  // Input checks name uniqueness instead).
  using Key = std::tuple<int, std::vector<ExprRef>, bool, bool, int64_t, int>;
  std::map<Key, ExprRef> interned_;
  std::vector<ExprNode> nodes_;
  int64_t cse_hits_ = 0;
};

}  // namespace riot

#endif  // RIOTSHARE_IR_EXPR_H_
