// Array accesses: the tuple <s, t, A, Phi> of paper Section 4.1, where Phi
// is an affine map from the statement's iteration vector to a block
// subscript of A. An optional guard polyhedron restricts the iterations at
// which the access occurs (models if-conditionals, e.g. the k==0 init of a
// multiply accumulation reading its output only for k >= 1).
#ifndef RIOTSHARE_IR_ACCESS_H_
#define RIOTSHARE_IR_ACCESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/array.h"
#include "linalg/matrix.h"
#include "polyhedral/polyhedron.h"

namespace riot {

enum class AccessType { kRead, kWrite };

inline const char* AccessTypeName(AccessType t) {
  return t == AccessType::kRead ? "R" : "W";
}

/// \brief Reference to an access: statement id + index within the statement.
struct AccessRef {
  int stmt_id = -1;
  int access_idx = -1;

  bool operator==(const AccessRef& o) const {
    return stmt_id == o.stmt_id && access_idx == o.access_idx;
  }
  bool operator<(const AccessRef& o) const {
    if (stmt_id != o.stmt_id) return stmt_id < o.stmt_id;
    return access_idx < o.access_idx;
  }
};

/// \brief One block access performed by a statement.
struct Access {
  AccessType type = AccessType::kRead;
  int array_id = -1;
  /// Affine map: rows = array dimensionality, cols = statement depth + 1
  /// (iteration coefficients then a constant column).
  RMatrix phi;
  /// Iterations at which the access actually occurs; nullopt = everywhere.
  std::optional<Polyhedron> guard;

  /// Block subscript accessed at the given iteration vector.
  BlockCoord BlockAt(const std::vector<int64_t>& iter) const {
    RIOT_CHECK_EQ(phi.cols(), iter.size() + 1);
    BlockCoord c(phi.rows());
    for (size_t r = 0; r < phi.rows(); ++r) {
      Rational acc = phi.At(r, iter.size());
      for (size_t d = 0; d < iter.size(); ++d) {
        acc += phi.At(r, d) * Rational(iter[d]);
      }
      c[r] = acc.ToInt64();
    }
    return c;
  }

  bool ActiveAt(const std::vector<int64_t>& iter) const {
    return !guard.has_value() || guard->Contains(iter);
  }

  bool SameFunction(const Access& o) const {
    return type == o.type && array_id == o.array_id && phi == o.phi;
  }
};

}  // namespace riot

#endif  // RIOTSHARE_IR_ACCESS_H_
