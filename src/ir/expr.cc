#include "ir/expr.h"

#include <cstring>
#include <sstream>

#include "ir/scalar_ops.h"

namespace riot {

namespace {

// Alpha participates in node identity; key it by bit pattern so -0.0/0.0
// and NaN peculiarities can never alias two semantically different nodes.
int64_t AlphaBits(double alpha) {
  int64_t bits;
  static_assert(sizeof(bits) == sizeof(alpha), "double is 64-bit");
  std::memcpy(&bits, &alpha, sizeof(bits));
  return bits;
}

void CheckShape2d(const ExprShape& s, const char* what) {
  RIOT_CHECK_EQ(s.grid.size(), 2u) << what << " must be 2-D";
  RIOT_CHECK_EQ(s.block_elems.size(), 2u) << what << " must be 2-D";
  for (int d = 0; d < 2; ++d) {
    RIOT_CHECK(s.grid[static_cast<size_t>(d)] > 0 &&
               s.block_elems[static_cast<size_t>(d)] > 0)
        << what << " has empty dimension " << d;
  }
}

// Grid/block dims of op(X): transposition swaps both levels.
ExprShape Oriented(const ExprShape& s, bool trans) {
  if (!trans) return s;
  return ExprShape{{s.grid[1], s.grid[0]}, {s.block_elems[1], s.block_elems[0]}};
}

}  // namespace

std::string ExprShape::ToString() const {
  std::ostringstream os;
  os << grid[0] << "x" << grid[1] << " blocks of " << block_elems[0] << "x"
     << block_elems[1];
  return os.str();
}

ExprRef ExprGraph::Intern(ExprNode node) {
  if (!node.is_input()) {
    Key key{static_cast<int>(node.kind), node.args, node.trans_a,
            node.trans_b, AlphaBits(node.alpha), node.scalar_fn};
    auto it = interned_.find(key);
    if (it != interned_.end()) {
      ++cse_hits_;
      return it->second;
    }
    ExprRef id = static_cast<ExprRef>(nodes_.size());
    interned_.emplace(std::move(key), id);
    nodes_.push_back(std::move(node));
    return id;
  }
  ExprRef id = static_cast<ExprRef>(nodes_.size());
  nodes_.push_back(std::move(node));
  return id;
}

ExprRef ExprGraph::Input(std::string name, std::vector<int64_t> grid,
                         std::vector<int64_t> block_elems) {
  RIOT_CHECK(!name.empty()) << "inputs must be named";
  for (const ExprNode& n : nodes_) {
    RIOT_CHECK(!(n.is_input() && n.name == name))
        << "duplicate input name " << name;
  }
  ExprNode n;
  n.kind = StatementOp::Kind::kInput;
  n.shape = ExprShape{std::move(grid), std::move(block_elems)};
  CheckShape2d(n.shape, name.c_str());
  n.name = std::move(name);
  return Intern(std::move(n));
}

ExprRef ExprGraph::Add(ExprRef a, ExprRef b) {
  RIOT_CHECK(shape(a) == shape(b))
      << "Add shape mismatch: " << shape(a).ToString() << " vs "
      << shape(b).ToString();
  ExprNode n;
  n.kind = StatementOp::Kind::kAdd;
  n.args = {a, b};
  n.shape = shape(a);
  return Intern(std::move(n));
}

ExprRef ExprGraph::Sub(ExprRef a, ExprRef b) {
  RIOT_CHECK(shape(a) == shape(b))
      << "Sub shape mismatch: " << shape(a).ToString() << " vs "
      << shape(b).ToString();
  ExprNode n;
  n.kind = StatementOp::Kind::kSub;
  n.args = {a, b};
  n.shape = shape(a);
  return Intern(std::move(n));
}

ExprRef ExprGraph::Scale(ExprRef a, double alpha) {
  ExprNode n;
  n.kind = StatementOp::Kind::kScale;
  n.args = {a};
  n.shape = shape(a);
  n.alpha = alpha;
  return Intern(std::move(n));
}

ExprRef ExprGraph::AddDiag(ExprRef a, double alpha) {
  const ExprShape& s = shape(a);
  RIOT_CHECK(s.grid[0] == 1 && s.grid[1] == 1 &&
             s.block_elems[0] == s.block_elems[1])
      << "AddDiag requires a single square block, got " << s.ToString();
  ExprNode n;
  n.kind = StatementOp::Kind::kAddDiag;
  n.args = {a};
  n.shape = s;
  n.alpha = alpha;
  return Intern(std::move(n));
}

ExprRef ExprGraph::Gemm(ExprRef a, ExprRef b, GemmOptions opts) {
  const ExprShape oa = Oriented(shape(a), opts.trans_a);
  const ExprShape ob = Oriented(shape(b), opts.trans_b);
  RIOT_CHECK(oa.grid[1] == ob.grid[0] && oa.block_elems[1] == ob.block_elems[0])
      << "Gemm contraction mismatch: op(a) is " << oa.ToString()
      << ", op(b) is " << ob.ToString();
  ExprNode n;
  n.kind = StatementOp::Kind::kGemm;
  n.args = {a, b};
  n.shape = ExprShape{{oa.grid[0], ob.grid[1]},
                      {oa.block_elems[0], ob.block_elems[1]}};
  n.trans_a = opts.trans_a;
  n.trans_b = opts.trans_b;
  n.alpha = opts.alpha;
  return Intern(std::move(n));
}

ExprRef ExprGraph::Inverse(ExprRef a) {
  const ExprShape& s = shape(a);
  RIOT_CHECK(s.grid[0] == 1 && s.grid[1] == 1 &&
             s.block_elems[0] == s.block_elems[1])
      << "Inverse requires a single square block, got " << s.ToString();
  ExprNode n;
  n.kind = StatementOp::Kind::kInverse;
  n.args = {a};
  n.shape = s;
  return Intern(std::move(n));
}

ExprRef ExprGraph::SumSquares(ExprRef a) {
  const ExprShape& s = shape(a);
  ExprNode n;
  n.kind = StatementOp::Kind::kSumSquares;
  n.args = {a};
  n.shape = ExprShape{{1, s.grid[1]}, {1, s.block_elems[1]}};
  return Intern(std::move(n));
}

ExprRef ExprGraph::Map(ExprRef a, int scalar_fn) {
  RIOT_CHECK(IsScalarMap(scalar_fn))
      << "Map needs a registered unary scalar fn, got id " << scalar_fn;
  ExprNode n;
  n.kind = StatementOp::Kind::kMap;
  n.args = {a};
  n.shape = shape(a);
  n.scalar_fn = scalar_fn;
  return Intern(std::move(n));
}

ExprRef ExprGraph::Zip(ExprRef a, ExprRef b, int scalar_fn) {
  RIOT_CHECK(IsScalarZip(scalar_fn))
      << "Zip needs a registered binary scalar fn, got id " << scalar_fn;
  RIOT_CHECK(shape(a) == shape(b))
      << "Zip shape mismatch: " << shape(a).ToString() << " vs "
      << shape(b).ToString();
  ExprNode n;
  n.kind = StatementOp::Kind::kZip;
  n.args = {a, b};
  n.shape = shape(a);
  n.scalar_fn = scalar_fn;
  return Intern(std::move(n));
}

void ExprGraph::SetName(ExprRef ref, std::string name) {
  RIOT_CHECK(!name.empty());
  node(ref);  // bounds check
  nodes_[static_cast<size_t>(ref)].name = std::move(name);
}

void ExprGraph::Keep(ExprRef ref) {
  RIOT_CHECK(!node(ref).is_input()) << "inputs are always persistent";
  nodes_[static_cast<size_t>(ref)].keep = true;
}

std::string ExprGraph::Describe(ExprRef ref) const {
  const ExprNode& n = node(ref);
  std::ostringstream os;
  os << StatementOpKindName(n.kind);
  if (n.kind == StatementOp::Kind::kGemm && (n.trans_a || n.trans_b)) {
    os << (n.trans_a ? "^Ta" : "") << (n.trans_b ? "^Tb" : "");
  }
  if (n.scalar_fn >= 0) os << "[" << ScalarFnById(n.scalar_fn).name << "]";
  if (n.is_input()) {
    os << " " << n.name;
  } else {
    os << "(";
    for (size_t i = 0; i < n.args.size(); ++i) {
      if (i) os << ", ";
      const ExprNode& arg = node(n.args[i]);
      os << (arg.name.empty() ? "t" + std::to_string(n.args[i]) : arg.name);
    }
    if (n.kind == StatementOp::Kind::kScale ||
        n.kind == StatementOp::Kind::kAddDiag ||
        (n.kind == StatementOp::Kind::kGemm && n.alpha != 1.0)) {
      os << ", alpha=" << n.alpha;
    }
    os << ")";
  }
  os << " : " << n.shape.ToString();
  return os.str();
}

}  // namespace riot
