// Small helpers for constructing IR pieces: rectangular iteration domains
// and affine access maps from integer literals.
#ifndef RIOTSHARE_IR_BUILDER_H_
#define RIOTSHARE_IR_BUILDER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ir/access.h"
#include "linalg/matrix.h"
#include "polyhedral/polyhedron.h"

namespace riot {

/// \brief Domain { x : lo_d <= x_d <= hi_d } with variable names.
inline Polyhedron RectDomain(
    const std::vector<std::pair<int64_t, int64_t>>& bounds,
    std::vector<std::string> names = {}) {
  Polyhedron p(bounds.size(), std::move(names));
  for (size_t d = 0; d < bounds.size(); ++d) {
    p.AddVarBounds(d, bounds[d].first, bounds[d].second);
  }
  return p;
}

/// \brief Affine map matrix from per-row integer coefficient lists; each row
/// is {c_0, ..., c_{depth-1}, constant}.
inline RMatrix AffineMap(std::vector<std::vector<int64_t>> rows) {
  RMatrix m;
  for (auto& row : rows) {
    m.AppendRow(RVector::FromInts(row));
  }
  return m;
}

/// \brief Read access of array `array_id` with map rows `rows`.
inline Access Read(int array_id, std::vector<std::vector<int64_t>> rows) {
  Access a;
  a.type = AccessType::kRead;
  a.array_id = array_id;
  a.phi = AffineMap(std::move(rows));
  return a;
}

/// \brief Write access of array `array_id` with map rows `rows`.
inline Access Write(int array_id, std::vector<std::vector<int64_t>> rows) {
  Access a;
  a.type = AccessType::kWrite;
  a.array_id = array_id;
  a.phi = AffineMap(std::move(rows));
  return a;
}

/// \brief Guard restricting an access to iterations with x_var >= value.
inline Polyhedron GuardGe(const Polyhedron& domain, size_t var,
                          int64_t value) {
  Polyhedron g = domain;
  RVector c(domain.dim());
  c[var] = Rational(1);
  g.AddGe(std::move(c), Rational(-value));
  return g;
}

}  // namespace riot

#endif  // RIOTSHARE_IR_BUILDER_H_
