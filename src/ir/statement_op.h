// Typed statement semantics: what a statement computes, not just where it
// touches blocks. Historically a Statement carried only its accesses and
// every workload paired it with a hand-written free-form kernel lambda; the
// StatementOp spec makes the semantic payload explicit so the executor can
// synthesize the kernel (exec/kernel_synthesis.h) and future passes can
// reason about the computation (fusion, rewrites). Free-form lambdas remain
// the escape hatch for statements no StatementOp kind describes.
#ifndef RIOTSHARE_IR_STATEMENT_OP_H_
#define RIOTSHARE_IR_STATEMENT_OP_H_

#include <vector>

namespace riot {

/// \brief One instruction of a fused statement's scalar tape (the micro-IR a
/// `Kind::kFused` StatementOp carries). The tape is the post-order
/// linearization of a cluster of elementwise expression nodes: `kLoad` pushes
/// one element of a read operand, every other code combines earlier tape
/// positions, and the final position is the value written to `out`. The
/// executor interprets the tape once per element in a single unit-stride
/// pass (kernels/dense.h BlockFusedEval), so a whole producer-consumer chain
/// costs one read of its external inputs and one write — no materialized
/// intermediates.
struct TapeOp {
  enum class Code {
    kLoad,   // push element of read access `a` (a = Statement access index)
    kAdd,    // tape[a] + tape[b]
    kSub,    // tape[a] - tape[b]
    kScale,  // alpha * tape[a]
    kMap,    // scalar_fn(tape[a])           (registered unary fn)
    kZip,    // scalar_fn(tape[a], tape[b])  (registered binary fn)
  };

  Code code = Code::kLoad;
  int a = -1;  // kLoad: read access index; otherwise earlier tape position
  int b = -1;  // second tape position for kAdd/kSub/kZip; -1 for unary codes
  double alpha = 1.0;    // kScale factor
  int scalar_fn = -1;    // ir/scalar_ops.h registry id for kMap/kZip
};

inline const char* TapeOpCodeName(TapeOp::Code c) {
  switch (c) {
    case TapeOp::Code::kLoad: return "load";
    case TapeOp::Code::kAdd: return "add";
    case TapeOp::Code::kSub: return "sub";
    case TapeOp::Code::kScale: return "scale";
    case TapeOp::Code::kMap: return "map";
    case TapeOp::Code::kZip: return "zip";
  }
  return "?";
}

/// \brief The semantic spec of one statement over its access list. Operand
/// fields (`a`, `b`, `acc`, `out`) are indices into Statement::accesses —
/// the same indices the kernel's view vector uses. Two operands may share
/// one access (X'X reads X once; the kernel views it twice).
struct StatementOp {
  enum class Kind {
    kInput,       // expression-graph leaf; never appears on a Statement
    kAdd,         // out = a + b            (elementwise)
    kSub,         // out = a - b            (elementwise)
    kScale,       // out = alpha * a        (elementwise)
    kAddDiag,     // out = a + alpha * I    (single square block)
    kGemm,        // out (+)= alpha * op(a) op(b)
    kInverse,     // out = a^-1             (single square block)
    kSumSquares,  // out[0, j] (+)= sum_r a[r, j]^2
    kMap,         // out = scalar_fn(a)     (elementwise, registered fn)
    kZip,         // out = scalar_fn(a, b)  (elementwise, registered fn)
    kFused,       // out = tape(reads)      (fused elementwise cluster)
  };

  Kind kind = Kind::kAdd;
  int a = -1;    // first operand's access index
  int b = -1;    // second operand's access index (may equal `a`); -1 if unary
  int acc = -1;  // guarded self-read access index (reduction carry); -1 none
  int out = -1;  // write access index
  bool trans_a = false;  // Gemm
  bool trans_b = false;  // Gemm
  double alpha = 1.0;    // Gemm scale / Scale factor / AddDiag addend
  /// Iteration-vector index of the block-grid reduction loop: the kernel
  /// accumulates when iter[reduction_iter] > 0 and initializes at 0 (the
  /// guard on `acc` encodes the same condition). -1 = no reduction loop
  /// (single-trip contraction; the kernel always initializes).
  int reduction_iter = -1;
  /// Registered scalar fn id (ir/scalar_ops.h) for kMap/kZip statements.
  int scalar_fn = -1;
  /// Scalar tape for kFused statements: post-order, last entry is the value
  /// written to `out`. Empty for every other kind (program_lint enforces).
  std::vector<TapeOp> tape;
};

inline const char* StatementOpKindName(StatementOp::Kind k) {
  switch (k) {
    case StatementOp::Kind::kInput: return "input";
    case StatementOp::Kind::kAdd: return "add";
    case StatementOp::Kind::kSub: return "sub";
    case StatementOp::Kind::kScale: return "scale";
    case StatementOp::Kind::kAddDiag: return "adddiag";
    case StatementOp::Kind::kGemm: return "gemm";
    case StatementOp::Kind::kInverse: return "inverse";
    case StatementOp::Kind::kSumSquares: return "sumsquares";
    case StatementOp::Kind::kMap: return "map";
    case StatementOp::Kind::kZip: return "zip";
    case StatementOp::Kind::kFused: return "fused";
  }
  return "?";
}

}  // namespace riot

#endif  // RIOTSHARE_IR_STATEMENT_OP_H_
