// Typed statement semantics: what a statement computes, not just where it
// touches blocks. Historically a Statement carried only its accesses and
// every workload paired it with a hand-written free-form kernel lambda; the
// StatementOp spec makes the semantic payload explicit so the executor can
// synthesize the kernel (exec/kernel_synthesis.h) and future passes can
// reason about the computation (fusion, rewrites). Free-form lambdas remain
// the escape hatch for statements no StatementOp kind describes.
#ifndef RIOTSHARE_IR_STATEMENT_OP_H_
#define RIOTSHARE_IR_STATEMENT_OP_H_

namespace riot {

/// \brief The semantic spec of one statement over its access list. Operand
/// fields (`a`, `b`, `acc`, `out`) are indices into Statement::accesses —
/// the same indices the kernel's view vector uses. Two operands may share
/// one access (X'X reads X once; the kernel views it twice).
struct StatementOp {
  enum class Kind {
    kInput,       // expression-graph leaf; never appears on a Statement
    kAdd,         // out = a + b            (elementwise)
    kSub,         // out = a - b            (elementwise)
    kScale,       // out = alpha * a        (elementwise)
    kAddDiag,     // out = a + alpha * I    (single square block)
    kGemm,        // out (+)= alpha * op(a) op(b)
    kInverse,     // out = a^-1             (single square block)
    kSumSquares,  // out[0, j] (+)= sum_r a[r, j]^2
  };

  Kind kind = Kind::kAdd;
  int a = -1;    // first operand's access index
  int b = -1;    // second operand's access index (may equal `a`); -1 if unary
  int acc = -1;  // guarded self-read access index (reduction carry); -1 none
  int out = -1;  // write access index
  bool trans_a = false;  // Gemm
  bool trans_b = false;  // Gemm
  double alpha = 1.0;    // Gemm scale / Scale factor / AddDiag addend
  /// Iteration-vector index of the block-grid reduction loop: the kernel
  /// accumulates when iter[reduction_iter] > 0 and initializes at 0 (the
  /// guard on `acc` encodes the same condition). -1 = no reduction loop
  /// (single-trip contraction; the kernel always initializes).
  int reduction_iter = -1;
};

inline const char* StatementOpKindName(StatementOp::Kind k) {
  switch (k) {
    case StatementOp::Kind::kInput: return "input";
    case StatementOp::Kind::kAdd: return "add";
    case StatementOp::Kind::kSub: return "sub";
    case StatementOp::Kind::kScale: return "scale";
    case StatementOp::Kind::kAddDiag: return "adddiag";
    case StatementOp::Kind::kGemm: return "gemm";
    case StatementOp::Kind::kInverse: return "inverse";
    case StatementOp::Kind::kSumSquares: return "sumsquares";
  }
  return "?";
}

}  // namespace riot

#endif  // RIOTSHARE_IR_STATEMENT_OP_H_
