#include "ir/scalar_ops.h"

#include <mutex>
#include <vector>

#include "util/logging.h"

namespace riot {
namespace {

double ScalarAbs(double x) { return x < 0 ? -x : x; }
double ScalarRelu(double x) { return x < 0 ? 0.0 : x; }
double ScalarMin(double x, double y) { return y < x ? y : x; }
double ScalarMax(double x, double y) { return x < y ? y : x; }

struct Registry {
  std::mutex mu;
  std::vector<ScalarFnInfo> fns;

  Registry() {
    fns.push_back({"abs", &ScalarAbs, nullptr});    // kScalarAbs
    fns.push_back({"relu", &ScalarRelu, nullptr});  // kScalarRelu
    fns.push_back({"min", nullptr, &ScalarMin});    // kScalarMin
    fns.push_back({"max", nullptr, &ScalarMax});    // kScalarMax
  }
};

// Function-local static so the registry is constructed (built-ins first) on
// first use regardless of static-init order across translation units.
Registry& Reg() {
  static Registry* r = new Registry;
  return *r;
}

int RegisterLocked(Registry& reg, const std::string& name, ScalarMapFn map,
                   ScalarZipFn zip) {
  for (const ScalarFnInfo& f : reg.fns) {
    RIOT_CHECK(f.name != name) << "duplicate scalar fn name: " << name;
  }
  reg.fns.push_back({name, map, zip});
  return static_cast<int>(reg.fns.size()) - 1;
}

}  // namespace

int RegisterScalarMap(const std::string& name, ScalarMapFn fn) {
  RIOT_CHECK(fn != nullptr) << "null scalar map fn: " << name;
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  return RegisterLocked(reg, name, fn, nullptr);
}

int RegisterScalarZip(const std::string& name, ScalarZipFn fn) {
  RIOT_CHECK(fn != nullptr) << "null scalar zip fn: " << name;
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  return RegisterLocked(reg, name, nullptr, fn);
}

ScalarFnInfo ScalarFnById(int id) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  RIOT_CHECK(id >= 0 && id < static_cast<int>(reg.fns.size()))
      << "unregistered scalar fn id " << id;
  return reg.fns[id];
}

int FindScalarFn(const std::string& name) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (int i = 0; i < static_cast<int>(reg.fns.size()); ++i) {
    if (reg.fns[i].name == name) return i;
  }
  return -1;
}

int NumScalarFns() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  return static_cast<int>(reg.fns.size());
}

bool IsScalarMap(int id) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  return id >= 0 && id < static_cast<int>(reg.fns.size()) &&
         reg.fns[id].map != nullptr;
}

bool IsScalarZip(int id) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  return id >= 0 && id < static_cast<int>(reg.fns.size()) &&
         reg.fns[id].zip != nullptr;
}

}  // namespace riot
