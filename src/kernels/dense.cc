#include "kernels/dense.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/aligned.h"
#include "util/logging.h"

namespace riot {

void BlockAdd(const DenseView& a, const DenseView& b, DenseView* c) {
  RIOT_DCHECK(a.rows == b.rows && a.cols == b.cols);
  RIOT_DCHECK(a.rows == c->rows && a.cols == c->cols);
  const int64_t n = a.elems();
  const double* pa = a.data;
  const double* pb = b.data;
  double* pc = c->data;
  for (int64_t i = 0; i < n; ++i) pc[i] = pa[i] + pb[i];
}

void BlockSub(const DenseView& a, const DenseView& b, DenseView* c) {
  RIOT_DCHECK(a.rows == b.rows && a.cols == b.cols);
  const int64_t n = a.elems();
  const double* pa = a.data;
  const double* pb = b.data;
  double* pc = c->data;
  for (int64_t i = 0; i < n; ++i) pc[i] = pa[i] - pb[i];
}

void BlockScale(const DenseView& a, double alpha, DenseView* c) {
  RIOT_DCHECK(a.rows == c->rows && a.cols == c->cols);
  const int64_t n = a.elems();
  const double* pa = a.data;
  double* pc = c->data;
  for (int64_t i = 0; i < n; ++i) pc[i] = alpha * pa[i];
}

void BlockAddDiag(const DenseView& a, double alpha, DenseView* c) {
  RIOT_DCHECK(a.rows == a.cols);
  RIOT_DCHECK(a.rows == c->rows && a.cols == c->cols);
  if (c->data != a.data) {
    std::memcpy(c->data, a.data,
                static_cast<size_t>(a.elems()) * sizeof(double));
  }
  const int64_t step = a.rows + 1;  // column-major diagonal stride
  for (int64_t d = 0; d < a.rows; ++d) c->data[d * step] += alpha;
}

void BlockMap(double (*fn)(double), const DenseView& a, DenseView* c) {
  RIOT_DCHECK(a.rows == c->rows && a.cols == c->cols);
  const int64_t n = a.elems();
  const double* pa = a.data;
  double* pc = c->data;
  for (int64_t i = 0; i < n; ++i) pc[i] = fn(pa[i]);
}

void BlockZip(double (*fn)(double, double), const DenseView& a,
              const DenseView& b, DenseView* c) {
  RIOT_DCHECK(a.rows == b.rows && a.cols == b.cols);
  RIOT_DCHECK(a.rows == c->rows && a.cols == c->cols);
  const int64_t n = a.elems();
  const double* pa = a.data;
  const double* pb = b.data;
  double* pc = c->data;
  for (int64_t i = 0; i < n; ++i) pc[i] = fn(pa[i], pb[i]);
}

void BlockFusedEval(const FusedOp* tape, int n_ops,
                    const double* const* inputs, double* out, int64_t n) {
  RIOT_DCHECK(n_ops >= 1 && n_ops <= kMaxFusedTapeOps);
  // Strip-mined, op-outer: each tape op is one unit-stride loop over the
  // current strip, so the loop vectorizer turns every arithmetic code into
  // packed SIMD (map/zip strips stay scalar — indirect calls through user
  // scalar fns can't vectorize). Intermediates never touch memory outside
  // the strip rows, and a partial last strip runs the same loops with a
  // shorter trip — per element the op sequence is identical everywhere,
  // which keeps fused and unfused lowerings bit-identical.
  double regs[kMaxFusedTapeOps][kFusedStripElems];
  const int last = n_ops - 1;
  for (int64_t i = 0; i < n; i += kFusedStripElems) {
    const int64_t ws = std::min<int64_t>(kFusedStripElems, n - i);
    for (int t = 0; t <= last; ++t) {
      const FusedOp& op = tape[t];
      double* __restrict__ dst = regs[t];
      switch (op.code) {
        case FusedOp::Code::kLoad: {
          const double* __restrict__ src = inputs[op.a] + i;
          for (int64_t j = 0; j < ws; ++j) dst[j] = src[j];
          break;
        }
        case FusedOp::Code::kAdd: {
          const double* ra = regs[op.a];
          const double* rb = regs[op.b];
          for (int64_t j = 0; j < ws; ++j) dst[j] = ra[j] + rb[j];
          break;
        }
        case FusedOp::Code::kSub: {
          const double* ra = regs[op.a];
          const double* rb = regs[op.b];
          for (int64_t j = 0; j < ws; ++j) dst[j] = ra[j] - rb[j];
          break;
        }
        case FusedOp::Code::kScale: {
          const double* ra = regs[op.a];
          const double alpha = op.alpha;
          for (int64_t j = 0; j < ws; ++j) dst[j] = alpha * ra[j];
          break;
        }
        case FusedOp::Code::kMap: {
          const double* ra = regs[op.a];
          for (int64_t j = 0; j < ws; ++j) dst[j] = op.map_fn(ra[j]);
          break;
        }
        case FusedOp::Code::kZip: {
          const double* ra = regs[op.a];
          const double* rb = regs[op.b];
          for (int64_t j = 0; j < ws; ++j) {
            dst[j] = op.zip_fn(ra[j], rb[j]);
          }
          break;
        }
      }
    }
    const double* rl = regs[last];
    double* __restrict__ po = out + i;
    for (int64_t j = 0; j < ws; ++j) po[j] = rl[j];
  }
}

namespace {

inline double Get(const DenseView& v, bool trans, int64_t r, int64_t c) {
  return trans ? v.At(c, r) : v.At(r, c);
}

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Pack an mc x kc panel of op(A) into MR-row tiles, absorbing trans_a.
// Tile t holds op(A) rows [i0 + t*MR, i0 + t*MR + MR) as kc consecutive
// MR-element columns: dst[t*kc*MR + p*MR + i]. Short edge tiles are
// zero-padded so the microkernel never branches on m.
void PackA(const DenseView& a, bool trans, int64_t i0, int64_t mb,
           int64_t p0, int64_t kb, double* __restrict__ dst0) {
  const int64_t tiles = CeilDiv(mb, kGemmMr);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t ib = i0 + t * kGemmMr;
    const int64_t mr = std::min<int64_t>(kGemmMr, i0 + mb - ib);
    double* __restrict__ dst = dst0 + t * kb * kGemmMr;
    if (!trans) {
      // op(A)(i, p) = A(i, p): each source column is contiguous.
      for (int64_t p = 0; p < kb; ++p) {
        const double* __restrict__ src = a.data + (p0 + p) * a.rows + ib;
        for (int64_t i = 0; i < mr; ++i) dst[p * kGemmMr + i] = src[i];
        for (int64_t i = mr; i < kGemmMr; ++i) dst[p * kGemmMr + i] = 0.0;
      }
    } else {
      // op(A)(i, p) = A(p, i): source column ib+i is contiguous over p, so
      // iterate i outermost — the pack is the only strided touch of A.
      for (int64_t i = 0; i < mr; ++i) {
        const double* __restrict__ src = a.data + (ib + i) * a.rows + p0;
        for (int64_t p = 0; p < kb; ++p) dst[p * kGemmMr + i] = src[p];
      }
      for (int64_t i = mr; i < kGemmMr; ++i) {
        for (int64_t p = 0; p < kb; ++p) dst[p * kGemmMr + i] = 0.0;
      }
    }
  }
}

// Pack a kc x nc panel of op(B) into NR-column tiles, absorbing trans_b:
// dst[t*kc*NR + p*NR + j], zero-padded to NR.
void PackB(const DenseView& b, bool trans, int64_t p0, int64_t kb,
           int64_t j0, int64_t nb, double* __restrict__ dst0) {
  const int64_t tiles = CeilDiv(nb, kGemmNr);
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t jb = j0 + t * kGemmNr;
    const int64_t nr = std::min<int64_t>(kGemmNr, j0 + nb - jb);
    double* __restrict__ dst = dst0 + t * kb * kGemmNr;
    if (!trans) {
      // op(B)(p, j) = B(p, j): source column jb+j contiguous over p.
      for (int64_t j = 0; j < nr; ++j) {
        const double* __restrict__ src = b.data + (jb + j) * b.rows + p0;
        for (int64_t p = 0; p < kb; ++p) dst[p * kGemmNr + j] = src[p];
      }
      for (int64_t j = nr; j < kGemmNr; ++j) {
        for (int64_t p = 0; p < kb; ++p) dst[p * kGemmNr + j] = 0.0;
      }
    } else {
      // op(B)(p, j) = B(j, p): source column p0+p contiguous over j.
      for (int64_t p = 0; p < kb; ++p) {
        const double* __restrict__ src = b.data + (p0 + p) * b.rows + jb;
        for (int64_t j = 0; j < nr; ++j) dst[p * kGemmNr + j] = src[j];
        for (int64_t j = nr; j < kGemmNr; ++j) dst[p * kGemmNr + j] = 0.0;
      }
    }
  }
}

// MR x NR register-tiled microkernel over one packed kc chunk. The packed
// operands are zero-padded, so the accumulation loop is always full-tile;
// only the store into C is bounded by the live (mr, nr) extent. C gains
// alpha * (chunk product); the caller zeroes C first when not accumulating.
void MicroKernel(const double* __restrict__ ap, const double* __restrict__ bp,
                 int64_t kb, double* __restrict__ c, int64_t ldc, double alpha,
                 int64_t mr, int64_t nr) {
  double acc[kGemmNr][kGemmMr] = {};
  for (int64_t p = 0; p < kb; ++p) {
    const double* __restrict__ av = ap + p * kGemmMr;
    const double* __restrict__ bv = bp + p * kGemmNr;
    for (int j = 0; j < kGemmNr; ++j) {
      const double bj = bv[j];
      for (int i = 0; i < kGemmMr; ++i) acc[j][i] += av[i] * bj;
    }
  }
  if (mr == kGemmMr && nr == kGemmNr) {
    for (int j = 0; j < kGemmNr; ++j) {
      double* __restrict__ cj = c + j * ldc;
      for (int i = 0; i < kGemmMr; ++i) cj[i] += alpha * acc[j][i];
    }
  } else {
    for (int64_t j = 0; j < nr; ++j) {
      double* __restrict__ cj = c + j * ldc;
      for (int64_t i = 0; i < mr; ++i) cj[i] += alpha * acc[j][i];
    }
  }
}

}  // namespace

void BlockGemm(const DenseView& a, bool trans_a, const DenseView& b,
               bool trans_b, DenseView* c, bool accumulate, double alpha) {
  const int64_t m = trans_a ? a.cols : a.rows;
  const int64_t k = trans_a ? a.rows : a.cols;
  const int64_t kb_dim = trans_b ? b.cols : b.rows;
  const int64_t n = trans_b ? b.rows : b.cols;
  RIOT_CHECK_EQ(k, kb_dim);
  RIOT_CHECK_EQ(m, c->rows);
  RIOT_CHECK_EQ(n, c->cols);
  if (!accumulate) {
    std::memset(c->data, 0, static_cast<size_t>(m * n) * sizeof(double));
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  // Per-thread pack buffers: kernels run concurrently on executor workers.
  thread_local AlignedDoubles apack;
  thread_local AlignedDoubles bpack;

  for (int64_t jc = 0; jc < n; jc += kGemmNc) {
    const int64_t nb = std::min<int64_t>(kGemmNc, n - jc);
    const int64_t jtiles = CeilDiv(nb, kGemmNr);
    for (int64_t pc = 0; pc < k; pc += kGemmKc) {
      const int64_t kb = std::min<int64_t>(kGemmKc, k - pc);
      bpack.resize(static_cast<size_t>(jtiles * kb * kGemmNr));
      PackB(b, trans_b, pc, kb, jc, nb, bpack.data());
      for (int64_t ic = 0; ic < m; ic += kGemmMc) {
        const int64_t mb = std::min<int64_t>(kGemmMc, m - ic);
        const int64_t itiles = CeilDiv(mb, kGemmMr);
        apack.resize(static_cast<size_t>(itiles * kb * kGemmMr));
        PackA(a, trans_a, ic, mb, pc, kb, apack.data());
        for (int64_t jt = 0; jt < jtiles; ++jt) {
          const int64_t jr = jc + jt * kGemmNr;
          const int64_t nr = std::min<int64_t>(kGemmNr, jc + nb - jr);
          const double* bp = bpack.data() + jt * kb * kGemmNr;
          for (int64_t it = 0; it < itiles; ++it) {
            const int64_t ir = ic + it * kGemmMr;
            const int64_t mr = std::min<int64_t>(kGemmMr, ic + mb - ir);
            MicroKernel(apack.data() + it * kb * kGemmMr, bp, kb,
                        c->data + jr * m + ir, m, alpha, mr, nr);
          }
        }
      }
    }
  }
}

void BlockGemmNaive(const DenseView& a, bool trans_a, const DenseView& b,
                    bool trans_b, DenseView* c, bool accumulate,
                    double alpha) {
  const int64_t m = trans_a ? a.cols : a.rows;
  const int64_t k = trans_a ? a.rows : a.cols;
  const int64_t kb = trans_b ? b.cols : b.rows;
  const int64_t n = trans_b ? b.rows : b.cols;
  RIOT_CHECK_EQ(k, kb);
  RIOT_CHECK_EQ(m, c->rows);
  RIOT_CHECK_EQ(n, c->cols);
  if (!accumulate) {
    std::memset(c->data, 0, static_cast<size_t>(m * n) * sizeof(double));
  }
  // j-k-i axpy loop over column-major data; fine cache behavior only for the
  // non-transposed case — the general path below does strided Get() calls.
  // This is the pre-packing implementation, kept as a bench/test baseline.
  if (!trans_a && !trans_b) {
    for (int64_t j = 0; j < n; ++j) {
      double* cj = c->data + j * m;
      for (int64_t kk = 0; kk < k; ++kk) {
        const double bkj = alpha * b.At(kk, j);
        if (bkj == 0.0) continue;
        const double* ak = a.data + kk * m;
        for (int64_t i = 0; i < m; ++i) cj[i] += ak[i] * bkj;
      }
    }
    return;
  }
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const double bkj = alpha * Get(b, trans_b, kk, j);
      if (bkj == 0.0) continue;
      for (int64_t i = 0; i < m; ++i) {
        c->At(i, j) += Get(a, trans_a, i, kk) * bkj;
      }
    }
  }
}

namespace {
// Deliberately unoptimized element accessor kept out-of-line so the
// "scalar engine" comparator pays per-element call overhead.
__attribute__((noinline)) double ScalarFetch(const DenseView& v, bool trans,
                                             int64_t r, int64_t c) {
  return trans ? v.At(c, r) : v.At(r, c);
}
}  // namespace

void BlockGemmScalar(const DenseView& a, bool trans_a, const DenseView& b,
                     bool trans_b, DenseView* c, bool accumulate) {
  const int64_t m = trans_a ? a.cols : a.rows;
  const int64_t k = trans_a ? a.rows : a.cols;
  const int64_t n = trans_b ? b.rows : b.cols;
  if (!accumulate) {
    std::memset(c->data, 0, static_cast<size_t>(m * n) * sizeof(double));
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += ScalarFetch(a, trans_a, i, kk) * ScalarFetch(b, trans_b, kk, j);
      }
      c->At(i, j) += acc;
    }
  }
}

void BlockFillRandom(DenseView* v, uint64_t seed) {
  // SplitMix64: deterministic, fast, good enough distribution for data gen.
  uint64_t x = seed + 0x9E3779B97F4A7C15ULL;
  const int64_t n = v->elems();
  for (int64_t i = 0; i < n; ++i) {
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    v->data[i] = static_cast<double>(z % 2000) / 1000.0 - 1.0;  // [-1, 1)
  }
}

void BlockFillConst(DenseView* v, double value) {
  const int64_t n = v->elems();
  for (int64_t i = 0; i < n; ++i) v->data[i] = value;
}

Status BlockInverse(const DenseView& in, DenseView* out) {
  RIOT_CHECK_EQ(in.rows, in.cols);
  RIOT_CHECK_EQ(out->rows, in.rows);
  RIOT_CHECK_EQ(out->cols, in.cols);
  const int64_t n = in.rows;
  std::vector<double> lu(in.data, in.data + n * n);
  std::vector<int64_t> piv(static_cast<size_t>(n));
  auto at = [&](int64_t r, int64_t c) -> double& { return lu[c * n + r]; };
  for (int64_t i = 0; i < n; ++i) piv[static_cast<size_t>(i)] = i;
  // LU with partial pivoting.
  for (int64_t k = 0; k < n; ++k) {
    int64_t p = k;
    double best = std::fabs(at(k, k));
    for (int64_t r = k + 1; r < n; ++r) {
      if (std::fabs(at(r, k)) > best) {
        best = std::fabs(at(r, k));
        p = r;
      }
    }
    if (best == 0.0) return Status::InvalidArgument("singular matrix");
    if (p != k) {
      for (int64_t c = 0; c < n; ++c) std::swap(at(p, c), at(k, c));
      std::swap(piv[static_cast<size_t>(p)], piv[static_cast<size_t>(k)]);
    }
    for (int64_t r = k + 1; r < n; ++r) {
      at(r, k) /= at(k, k);
      const double f = at(r, k);
      if (f == 0.0) continue;
      for (int64_t c = k + 1; c < n; ++c) at(r, c) -= f * at(k, c);
    }
  }
  // Solve for each identity column.
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t col = 0; col < n; ++col) {
    for (int64_t r = 0; r < n; ++r) {
      y[static_cast<size_t>(r)] =
          piv[static_cast<size_t>(r)] == col ? 1.0 : 0.0;
    }
    for (int64_t r = 0; r < n; ++r) {  // forward (unit lower)
      for (int64_t c = 0; c < r; ++c) {
        y[static_cast<size_t>(r)] -= at(r, c) * y[static_cast<size_t>(c)];
      }
    }
    for (int64_t r = n - 1; r >= 0; --r) {  // backward (upper)
      for (int64_t c = r + 1; c < n; ++c) {
        y[static_cast<size_t>(r)] -= at(r, c) * y[static_cast<size_t>(c)];
      }
      y[static_cast<size_t>(r)] /= at(r, r);
    }
    for (int64_t r = 0; r < n; ++r) out->At(r, col) = y[static_cast<size_t>(r)];
  }
  return Status::OK();
}

namespace {

// Fixed-lane sum of squares over a contiguous run. Eight independent
// accumulators make the loop SLP-vectorizable without -ffast-math, and the
// lane count plus the explicit combine tree pin the summation order, so the
// result is identical run to run (and independent of where the run sits
// inside a larger block).
constexpr int kSumLanes = 8;

double SumSquaresRange(const double* __restrict__ p, int64_t n) {
  double lane[kSumLanes] = {};
  const int64_t nv = n - (n % kSumLanes);
  for (int64_t i = 0; i < nv; i += kSumLanes) {
    for (int l = 0; l < kSumLanes; ++l) lane[l] += p[i + l] * p[i + l];
  }
  double tail = 0.0;
  for (int64_t i = nv; i < n; ++i) tail += p[i] * p[i];
  const double s01 = lane[0] + lane[1];
  const double s23 = lane[2] + lane[3];
  const double s45 = lane[4] + lane[5];
  const double s67 = lane[6] + lane[7];
  return ((s01 + s23) + (s45 + s67)) + tail;
}

}  // namespace

double BlockSumSquares(const DenseView& v) {
  // Column-by-column so the value matches BlockColumnSumSquares lane-for-lane
  // and stays fixed if callers ever pass column sub-views.
  double acc = 0.0;
  for (int64_t c = 0; c < v.cols; ++c) {
    acc += SumSquaresRange(v.data + c * v.rows, v.rows);
  }
  return acc;
}

void BlockColumnSumSquares(const DenseView& v, double* acc) {
  for (int64_t c = 0; c < v.cols; ++c) {
    acc[c] += SumSquaresRange(v.data + c * v.rows, v.rows);
  }
}

double BlockMaxAbsDiff(const DenseView& a, const DenseView& b) {
  double m = 0.0;
  const int64_t n = a.elems();
  for (int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(a.data[i] - b.data[i]));
  }
  return m;
}

}  // namespace riot
