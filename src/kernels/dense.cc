#include "kernels/dense.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "util/logging.h"

namespace riot {

void BlockAdd(const DenseView& a, const DenseView& b, DenseView* c) {
  RIOT_DCHECK(a.rows == b.rows && a.cols == b.cols);
  RIOT_DCHECK(a.rows == c->rows && a.cols == c->cols);
  const int64_t n = a.elems();
  for (int64_t i = 0; i < n; ++i) c->data[i] = a.data[i] + b.data[i];
}

void BlockSub(const DenseView& a, const DenseView& b, DenseView* c) {
  RIOT_DCHECK(a.rows == b.rows && a.cols == b.cols);
  const int64_t n = a.elems();
  for (int64_t i = 0; i < n; ++i) c->data[i] = a.data[i] - b.data[i];
}

void BlockScale(const DenseView& a, double alpha, DenseView* c) {
  RIOT_DCHECK(a.rows == c->rows && a.cols == c->cols);
  const int64_t n = a.elems();
  for (int64_t i = 0; i < n; ++i) c->data[i] = alpha * a.data[i];
}

void BlockAddDiag(const DenseView& a, double alpha, DenseView* c) {
  RIOT_DCHECK(a.rows == a.cols);
  RIOT_DCHECK(a.rows == c->rows && a.cols == c->cols);
  const int64_t n = a.elems();
  for (int64_t i = 0; i < n; ++i) c->data[i] = a.data[i];
  for (int64_t d = 0; d < a.rows; ++d) c->At(d, d) += alpha;
}

namespace {

inline double Get(const DenseView& v, bool trans, int64_t r, int64_t c) {
  return trans ? v.At(c, r) : v.At(r, c);
}

}  // namespace

void BlockGemm(const DenseView& a, bool trans_a, const DenseView& b,
               bool trans_b, DenseView* c, bool accumulate, double alpha) {
  const int64_t m = trans_a ? a.cols : a.rows;
  const int64_t k = trans_a ? a.rows : a.cols;
  const int64_t kb = trans_b ? b.cols : b.rows;
  const int64_t n = trans_b ? b.rows : b.cols;
  RIOT_CHECK_EQ(k, kb);
  RIOT_CHECK_EQ(m, c->rows);
  RIOT_CHECK_EQ(n, c->cols);
  if (!accumulate) {
    std::memset(c->data, 0, static_cast<size_t>(m * n) * sizeof(double));
  }
  // Register-blocked j-k-i loop over column-major data; good cache behavior
  // for the non-transposed fast path, correct for all flag combinations.
  if (!trans_a && !trans_b) {
    for (int64_t j = 0; j < n; ++j) {
      double* cj = c->data + j * m;
      for (int64_t kk = 0; kk < k; ++kk) {
        const double bkj = alpha * b.At(kk, j);
        if (bkj == 0.0) continue;
        const double* ak = a.data + kk * m;
        for (int64_t i = 0; i < m; ++i) cj[i] += ak[i] * bkj;
      }
    }
    return;
  }
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const double bkj = alpha * Get(b, trans_b, kk, j);
      if (bkj == 0.0) continue;
      for (int64_t i = 0; i < m; ++i) {
        c->At(i, j) += Get(a, trans_a, i, kk) * bkj;
      }
    }
  }
}

namespace {
// Deliberately unoptimized element accessor kept out-of-line so the
// "scalar engine" comparator pays per-element call overhead.
__attribute__((noinline)) double ScalarFetch(const DenseView& v, bool trans,
                                             int64_t r, int64_t c) {
  return trans ? v.At(c, r) : v.At(r, c);
}
}  // namespace

void BlockGemmScalar(const DenseView& a, bool trans_a, const DenseView& b,
                     bool trans_b, DenseView* c, bool accumulate) {
  const int64_t m = trans_a ? a.cols : a.rows;
  const int64_t k = trans_a ? a.rows : a.cols;
  const int64_t n = trans_b ? b.rows : b.cols;
  if (!accumulate) {
    std::memset(c->data, 0, static_cast<size_t>(m * n) * sizeof(double));
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += ScalarFetch(a, trans_a, i, kk) * ScalarFetch(b, trans_b, kk, j);
      }
      c->At(i, j) += acc;
    }
  }
}

void BlockFillRandom(DenseView* v, uint64_t seed) {
  // SplitMix64: deterministic, fast, good enough distribution for data gen.
  uint64_t x = seed + 0x9E3779B97F4A7C15ULL;
  const int64_t n = v->elems();
  for (int64_t i = 0; i < n; ++i) {
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    v->data[i] = static_cast<double>(z % 2000) / 1000.0 - 1.0;  // [-1, 1)
  }
}

void BlockFillConst(DenseView* v, double value) {
  const int64_t n = v->elems();
  for (int64_t i = 0; i < n; ++i) v->data[i] = value;
}

Status BlockInverse(const DenseView& in, DenseView* out) {
  RIOT_CHECK_EQ(in.rows, in.cols);
  RIOT_CHECK_EQ(out->rows, in.rows);
  RIOT_CHECK_EQ(out->cols, in.cols);
  const int64_t n = in.rows;
  std::vector<double> lu(in.data, in.data + n * n);
  std::vector<int64_t> piv(static_cast<size_t>(n));
  auto at = [&](int64_t r, int64_t c) -> double& { return lu[c * n + r]; };
  for (int64_t i = 0; i < n; ++i) piv[static_cast<size_t>(i)] = i;
  // LU with partial pivoting.
  for (int64_t k = 0; k < n; ++k) {
    int64_t p = k;
    double best = std::fabs(at(k, k));
    for (int64_t r = k + 1; r < n; ++r) {
      if (std::fabs(at(r, k)) > best) {
        best = std::fabs(at(r, k));
        p = r;
      }
    }
    if (best == 0.0) return Status::InvalidArgument("singular matrix");
    if (p != k) {
      for (int64_t c = 0; c < n; ++c) std::swap(at(p, c), at(k, c));
      std::swap(piv[static_cast<size_t>(p)], piv[static_cast<size_t>(k)]);
    }
    for (int64_t r = k + 1; r < n; ++r) {
      at(r, k) /= at(k, k);
      const double f = at(r, k);
      if (f == 0.0) continue;
      for (int64_t c = k + 1; c < n; ++c) at(r, c) -= f * at(k, c);
    }
  }
  // Solve for each identity column.
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t col = 0; col < n; ++col) {
    for (int64_t r = 0; r < n; ++r) {
      y[static_cast<size_t>(r)] =
          piv[static_cast<size_t>(r)] == col ? 1.0 : 0.0;
    }
    for (int64_t r = 0; r < n; ++r) {  // forward (unit lower)
      for (int64_t c = 0; c < r; ++c) {
        y[static_cast<size_t>(r)] -= at(r, c) * y[static_cast<size_t>(c)];
      }
    }
    for (int64_t r = n - 1; r >= 0; --r) {  // backward (upper)
      for (int64_t c = r + 1; c < n; ++c) {
        y[static_cast<size_t>(r)] -= at(r, c) * y[static_cast<size_t>(c)];
      }
      y[static_cast<size_t>(r)] /= at(r, r);
    }
    for (int64_t r = 0; r < n; ++r) out->At(r, col) = y[static_cast<size_t>(r)];
  }
  return Status::OK();
}

double BlockSumSquares(const DenseView& v) {
  double acc = 0.0;
  const int64_t n = v.elems();
  for (int64_t i = 0; i < n; ++i) acc += v.data[i] * v.data[i];
  return acc;
}

void BlockColumnSumSquares(const DenseView& v, double* acc) {
  for (int64_t c = 0; c < v.cols; ++c) {
    double s = 0.0;
    for (int64_t r = 0; r < v.rows; ++r) s += v.At(r, c) * v.At(r, c);
    acc[c] += s;
  }
}

double BlockMaxAbsDiff(const DenseView& a, const DenseView& b) {
  double m = 0.0;
  const int64_t n = a.elems();
  for (int64_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(a.data[i] - b.data[i]));
  }
  return m;
}

}  // namespace riot
