// Dense column-major block kernels — the in-memory compute substrate
// standing in for GotoBLAS2. All kernels operate on raw double buffers
// viewed as column-major matrices (the paper's storage scheme: blocks laid
// out column-major, elements within a block column-major).
//
// GEMM follows the GotoBLAS decomposition: op(A)/op(B) panels are packed
// into contiguous 64-byte-aligned buffers (the pack step absorbs both
// transpose flags, so all four flag combinations run the same register-tiled
// microkernel), with kc/mc/nc cache blocking around an mr x nr inner tile.
// Reductions use a fixed lane count and a fixed combine tree so results are
// run-to-run deterministic without -ffast-math.
#ifndef RIOTSHARE_KERNELS_DENSE_H_
#define RIOTSHARE_KERNELS_DENSE_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace riot {

/// \brief Non-owning column-major matrix view: element (r, c) is
/// data[c * rows + r].
struct DenseView {
  double* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;

  double& At(int64_t r, int64_t c) { return data[c * rows + r]; }
  double At(int64_t r, int64_t c) const { return data[c * rows + r]; }
  int64_t elems() const { return rows * cols; }
};

// GEMM tiling parameters (see README "Kernel microarchitecture").
// The register tile is mr x nr accumulators; wider vector units get a
// bigger tile, sized so the autovectorizer keeps the whole accumulator
// block in registers with the i axis vectorized and bv[j] broadcast
// (AVX-512: 18 zmm accumulators of 32; AVX2: 8 ymm of 16; SSE2: 8 xmm of
// 16). kc/mc/nc are the cache-blocking factors: one packed A panel is
// mc*kc doubles (targets L2), one packed B panel kc*nc doubles (L3/DRAM
// streamed once per mc strip); mc and nc are multiples of every tier's
// mr/nr so interior panels tile evenly.
#if defined(__AVX512F__)
inline constexpr int kGemmMr = 24;
inline constexpr int kGemmNr = 6;
#elif defined(__AVX2__)
inline constexpr int kGemmMr = 8;
inline constexpr int kGemmNr = 4;
#else
inline constexpr int kGemmMr = 4;
inline constexpr int kGemmNr = 4;
#endif
inline constexpr int64_t kGemmKc = 256;
inline constexpr int64_t kGemmMc = 120;
inline constexpr int64_t kGemmNc = 1020;

/// C = A + B (elementwise); all views same shape.
void BlockAdd(const DenseView& a, const DenseView& b, DenseView* c);

/// C = A - B (elementwise).
void BlockSub(const DenseView& a, const DenseView& b, DenseView* c);

/// C = alpha * A (elementwise).
void BlockScale(const DenseView& a, double alpha, DenseView* c);

/// C = A + alpha * I; A (and C) square.
void BlockAddDiag(const DenseView& a, double alpha, DenseView* c);

/// C = fn(A) elementwise (registered scalar map, by pointer).
void BlockMap(double (*fn)(double), const DenseView& a, DenseView* c);

/// C = fn(A, B) elementwise (registered scalar zip, by pointer).
void BlockZip(double (*fn)(double, double), const DenseView& a,
              const DenseView& b, DenseView* c);

/// \brief One compiled instruction of a fused statement's scalar tape —
/// the executable mirror of ir/statement_op.h TapeOp with access indices
/// resolved to input slots and scalar-fn ids resolved to pointers (kernel
/// synthesis does the resolution once per statement, not per element).
struct FusedOp {
  enum class Code { kLoad, kAdd, kSub, kScale, kMap, kZip };
  Code code = Code::kLoad;
  int a = -1;  // kLoad: slot in `inputs`; otherwise an earlier tape position
  int b = -1;  // second tape position for kAdd/kSub/kZip
  double alpha = 1.0;                     // kScale
  double (*map_fn)(double) = nullptr;     // kMap
  double (*zip_fn)(double, double) = nullptr;  // kZip
};

/// Hard cap on one fused tape's length: bounds the interpreter's strip
/// scratch (kMaxFusedTapeOps x kFusedStripElems doubles declared; only the
/// rows of live tape positions are touched, so a typical tape's working
/// strips stay L1-resident). core/fusion.h plans clusters under this.
inline constexpr int kMaxFusedTapeOps = 32;

/// Strip width of the fused-tape interpreter: each tape op runs as one
/// unit-stride loop over a strip this wide (16 KB of doubles for an
/// 8-entry tape), so the loop vectorizer turns every arithmetic op into
/// packed SIMD while intermediates never leave the strip buffer.
inline constexpr int kFusedStripElems = 256;

/// out[i] = tape(inputs...[i]) for i in [0, n): single-pass interpretation
/// of a fused elementwise cluster. All input buffers and `out` are dense
/// unit-stride arrays of n elements; the last tape position is the result.
/// Strict per-element evaluation order matches running the constituent
/// kernels (BlockAdd/BlockSub/BlockScale/BlockMap/BlockZip) one at a time
/// through materialized temporaries, so fused and unfused lowerings are
/// bit-identical.
void BlockFusedEval(const FusedOp* tape, int n_ops,
                    const double* const* inputs, double* out, int64_t n);

/// C op= alpha * op(A) * op(B); accumulate=false overwrites C.
/// transpose flags select op(X) = X or X^T (BLAS-style).
///
/// Packed implementation: both operands are repacked into aligned panels
/// (absorbing the transpose flags), so every flag combination runs the same
/// contiguous microkernel. Summation order over k is fixed (kc chunks
/// ascending, elements ascending within a chunk) and independent of the
/// m/n blocking, so results are run-to-run deterministic.
void BlockGemm(const DenseView& a, bool trans_a, const DenseView& b,
               bool trans_b, DenseView* c, bool accumulate,
               double alpha = 1.0);

/// The pre-packing triple-loop GEMM (axpy fast path for the untransposed
/// case, strided element-at-a-time fallback otherwise). Kept only as a
/// reference comparator for tests and the kernel microbench baseline —
/// production call sites use BlockGemm.
void BlockGemmNaive(const DenseView& a, bool trans_a, const DenseView& b,
                    bool trans_b, DenseView* c, bool accumulate,
                    double alpha = 1.0);

/// Scalar (non-blocked, element-at-a-time with function-call overhead)
/// GEMM used to model a system computing without an optimized kernel
/// (SciDB-like comparator).
void BlockGemmScalar(const DenseView& a, bool trans_a, const DenseView& b,
                     bool trans_b, DenseView* c, bool accumulate);

/// Fill with a deterministic pseudo-random pattern (seeded).
void BlockFillRandom(DenseView* v, uint64_t seed);
void BlockFillConst(DenseView* v, double value);

/// out = in^-1 via LU with partial pivoting; fails on singular input.
Status BlockInverse(const DenseView& in, DenseView* out);

/// Sum of squares of all elements (RSS building block). Fixed 8-lane
/// accumulation with a fixed combine tree: deterministic and SLP-friendly.
double BlockSumSquares(const DenseView& v);

/// Column-wise sum of squares added into acc[0..cols): RSS per response.
void BlockColumnSumSquares(const DenseView& v, double* acc);

/// Max absolute elementwise difference (verification helper).
double BlockMaxAbsDiff(const DenseView& a, const DenseView& b);

}  // namespace riot

#endif  // RIOTSHARE_KERNELS_DENSE_H_
