// Dense column-major block kernels — the in-memory compute substrate
// standing in for GotoBLAS2. All kernels operate on raw double buffers
// viewed as column-major matrices (the paper's storage scheme: blocks laid
// out column-major, elements within a block column-major).
#ifndef RIOTSHARE_KERNELS_DENSE_H_
#define RIOTSHARE_KERNELS_DENSE_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace riot {

/// \brief Non-owning column-major matrix view: element (r, c) is
/// data[c * rows + r].
struct DenseView {
  double* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;

  double& At(int64_t r, int64_t c) { return data[c * rows + r]; }
  double At(int64_t r, int64_t c) const { return data[c * rows + r]; }
  int64_t elems() const { return rows * cols; }
};

/// C = A + B (elementwise); all views same shape.
void BlockAdd(const DenseView& a, const DenseView& b, DenseView* c);

/// C = A - B (elementwise).
void BlockSub(const DenseView& a, const DenseView& b, DenseView* c);

/// C = alpha * A (elementwise).
void BlockScale(const DenseView& a, double alpha, DenseView* c);

/// C = A + alpha * I; A (and C) square.
void BlockAddDiag(const DenseView& a, double alpha, DenseView* c);

/// C op= alpha * op(A) * op(B); accumulate=false overwrites C.
/// transpose flags select op(X) = X or X^T (BLAS-style).
void BlockGemm(const DenseView& a, bool trans_a, const DenseView& b,
               bool trans_b, DenseView* c, bool accumulate,
               double alpha = 1.0);

/// Scalar (non-blocked, element-at-a-time with function-call overhead)
/// GEMM used to model a system computing without an optimized kernel
/// (SciDB-like comparator).
void BlockGemmScalar(const DenseView& a, bool trans_a, const DenseView& b,
                     bool trans_b, DenseView* c, bool accumulate);

/// Fill with a deterministic pseudo-random pattern (seeded).
void BlockFillRandom(DenseView* v, uint64_t seed);
void BlockFillConst(DenseView* v, double value);

/// out = in^-1 via LU with partial pivoting; fails on singular input.
Status BlockInverse(const DenseView& in, DenseView* out);

/// Sum of squares of all elements (RSS building block).
double BlockSumSquares(const DenseView& v);

/// Column-wise sum of squares added into acc[0..cols): RSS per response.
void BlockColumnSumSquares(const DenseView& v, double* acc);

/// Max absolute elementwise difference (verification helper).
double BlockMaxAbsDiff(const DenseView& a, const DenseView& b);

}  // namespace riot

#endif  // RIOTSHARE_KERNELS_DENSE_H_
