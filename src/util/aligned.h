// Cache-line-aligned allocation. Block frame buffers and kernel packing
// buffers are allocated at 64-byte alignment so the packed SIMD kernels
// (kernels/dense.cc) can assume aligned panels and full-cache-line streams;
// the views handed to kernels from outside the pool (tests, benches) remain
// free to be unaligned — alignment is an optimization contract, not a
// correctness requirement, everywhere except the pack buffers themselves.
#ifndef RIOTSHARE_UTIL_ALIGNED_H_
#define RIOTSHARE_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace riot {

/// Alignment of every buffer-pool frame and kernel pack buffer: one x86
/// cache line, which also satisfies any SSE/AVX/AVX-512 vector load.
constexpr size_t kFrameAlignment = 64;
static_assert(kFrameAlignment % alignof(double) == 0,
              "frame alignment must hold doubles");
static_assert((kFrameAlignment & (kFrameAlignment - 1)) == 0,
              "alignment must be a power of two");

inline bool IsAligned(const void* p, size_t align = kFrameAlignment) {
  return (reinterpret_cast<uintptr_t>(p) & (align - 1)) == 0;
}

/// Minimal C++17 allocator delegating to the aligned operator new (present
/// since C++17; no posix_memalign portability seam needed).
template <typename T, size_t Align = kFrameAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment below the type's own");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  bool operator==(const AlignedAllocator&) const noexcept { return true; }
  bool operator!=(const AlignedAllocator&) const noexcept { return false; }
};

/// 64-byte-aligned byte buffer: the type of every BufferPool frame.
using AlignedBuffer = std::vector<uint8_t, AlignedAllocator<uint8_t>>;

/// 64-byte-aligned double buffer (kernel packing panels).
using AlignedDoubles = std::vector<double, AlignedAllocator<double>>;

}  // namespace riot

#endif  // RIOTSHARE_UTIL_ALIGNED_H_
