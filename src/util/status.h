// Status / Result error-handling primitives, in the style of Arrow/RocksDB.
//
// Library code returns Status (or Result<T>) instead of throwing; callers
// either propagate with RIOT_RETURN_NOT_OK or terminate loudly with
// ValueOrDie() in tests/examples where failure is a bug.
#ifndef RIOTSHARE_UTIL_STATUS_H_
#define RIOTSHARE_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace riot {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // e.g. buffer pool cap exceeded
  kInternal,
  kIoError,
  kNotImplemented,
  kArithmeticOverflow,
  kInfeasible,  // optimizer: no legal schedule / empty polyhedron
};

/// \brief Lightweight status object carrying a code and message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status NotImplemented(std::string m) {
    return Status(StatusCode::kNotImplemented, std::move(m));
  }
  static Status ArithmeticOverflow(std::string m) {
    return Status(StatusCode::kArithmeticOverflow, std::move(m));
  }
  static Status Infeasible(std::string m) {
    return Status(StatusCode::kInfeasible, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  static std::string CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kArithmeticOverflow: return "ArithmeticOverflow";
      case StatusCode::kInfeasible: return "Infeasible";
    }
    return "Unknown";
  }

  /// Terminate the process if this status is not OK. For tests/examples.
  void CheckOK() const {
    if (!ok()) {
      std::cerr << "Fatal status: " << ToString() << std::endl;
      std::abort();
    }
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    if (!ok()) {
      std::cerr << "Result error: " << status_.ToString() << std::endl;
      std::abort();
    }
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) {
      std::cerr << "Result error: " << status_.ToString() << std::endl;
      std::abort();
    }
    return std::move(*value_);
  }
  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

#define RIOT_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::riot::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define RIOT_ASSIGN_OR_RETURN(lhs, expr)        \
  auto _res_##__LINE__ = (expr);                \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).ValueOrDie();

}  // namespace riot

#endif  // RIOTSHARE_UTIL_STATUS_H_
