// Clang -Wthread-safety annotations and a CAPABILITY-annotated mutex shim.
//
// The runtime's lock discipline (which field is guarded by which mutex,
// which helper requires which lock held, which callback must run lock-free)
// used to live in comments; these macros let Clang's thread-safety analysis
// machine-check it on every build path. Under any other compiler (the tree
// builds with gcc day to day) every macro expands to nothing and the shim
// classes compile down to the std::mutex code they wrap — zero overhead,
// identical semantics.
//
// Usage conventions in this tree:
//   * shared fields:            int64_t used_ GUARDED_BY(mu_);
//   * helpers needing the lock: void EvictLocked() REQUIRES(mu_);
//   * public entry points:      void Flush() EXCLUDES(mu_);
//   * scoped locking:           MutexLock lock(&mu_);           (lock_guard)
//                               UniqueMutexLock lock(&mu_);     (unique_lock)
//                               cv_.Wait(lock);                 (condvar)
//   * documented escapes:       NO_THREAD_SAFETY_ANALYSIS with a comment
//     stating the external invariant the analysis cannot see (e.g. "runs on
//     the single consumer thread after all workers joined").
#ifndef RIOTSHARE_UTIL_THREAD_ANNOTATIONS_H_
#define RIOTSHARE_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define RIOT_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RIOT_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

#define CAPABILITY(x) RIOT_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY RIOT_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) RIOT_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) RIOT_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define RETURN_CAPABILITY(x) RIOT_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  RIOT_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace riot {

class CondVar;

/// \brief std::mutex with the capability annotation the analysis tracks.
/// Drop-in for the runtime's internal mutexes; code that must hand a raw
/// std::mutex to outside parties (per-store serialization handed to
/// executors) keeps std::mutex and documents why.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  friend class UniqueMutexLock;
  std::mutex mu_;
};

/// \brief Scoped lock_guard over a riot::Mutex. Never unlocks early.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->mu_.unlock(); }

 private:
  Mutex* const mu_;
};

/// \brief Scoped unique_lock over a riot::Mutex: relockable (the analysis
/// tracks Lock/Unlock pairs on the scoped object) and waitable via CondVar.
class SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex* mu) ACQUIRE(mu) : lock_(mu->mu_) {}
  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;
  /// unique_lock's destructor releases only if currently held, which is
  /// exactly the scoped-capability contract at end of scope.
  ~UniqueMutexLock() RELEASE() = default;

  void Lock() ACQUIRE() { lock_.lock(); }
  void Unlock() RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief Condition variable waitable on a UniqueMutexLock. Wait is
/// deliberately unannotated: the capability is treated as held across the
/// wait (std::condition_variable re-acquires before returning), matching
/// how the analysis models cv waits. Predicate waits are spelled as
/// explicit `while (!cond) cv.Wait(lock);` loops at the call sites so the
/// predicate's guarded reads stay inside the annotated function body
/// (a lambda handed to std::condition_variable::wait would be analyzed as
/// an unannotated function and flagged).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(UniqueMutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace riot

#endif  // RIOTSHARE_UTIL_THREAD_ANNOTATIONS_H_
