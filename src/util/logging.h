// Minimal logging and checked assertions (Arrow-style DCHECK/CHECK).
#ifndef RIOTSHARE_UTIL_LOGGING_H_
#define RIOTSHARE_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace riot {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false)
      : level_(level), fatal_(fatal) {
    stream_ << "[" << Name(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
  ~LogMessage() {
    if (fatal_) {
      std::cerr << stream_.str() << std::endl;
      std::abort();
    }
    if (level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel l) {
    switch (l) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarning: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }
  std::ostringstream stream_;
  LogLevel level_;
  bool fatal_;
};

}  // namespace internal

#define RIOT_LOG(level)                                                     \
  ::riot::internal::LogMessage(::riot::LogLevel::k##level, __FILE__, \
                               __LINE__)                                    \
      .stream()

#define RIOT_CHECK(cond)                                                 \
  if (!(cond))                                                           \
  ::riot::internal::LogMessage(::riot::LogLevel::kError, __FILE__,       \
                               __LINE__, /*fatal=*/true)                 \
      .stream()                                                          \
      << "Check failed: " #cond " "

#define RIOT_CHECK_EQ(a, b) RIOT_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define RIOT_CHECK_LT(a, b) RIOT_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define RIOT_CHECK_LE(a, b) RIOT_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define RIOT_CHECK_GT(a, b) RIOT_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define RIOT_CHECK_GE(a, b) RIOT_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define RIOT_DCHECK(cond) RIOT_CHECK(cond)
#else
#define RIOT_DCHECK(cond) \
  if (false) RIOT_CHECK(cond)
#endif

}  // namespace riot

#endif  // RIOTSHARE_UTIL_LOGGING_H_
