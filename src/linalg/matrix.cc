#include "linalg/matrix.h"

#include <sstream>

namespace riot {

RVector RVector::operator+(const RVector& o) const {
  RIOT_CHECK_EQ(size(), o.size());
  RVector r(size());
  for (size_t i = 0; i < size(); ++i) r[i] = v_[i] + o[i];
  return r;
}

RVector RVector::operator-(const RVector& o) const {
  RIOT_CHECK_EQ(size(), o.size());
  RVector r(size());
  for (size_t i = 0; i < size(); ++i) r[i] = v_[i] - o[i];
  return r;
}

RVector RVector::operator*(const Rational& c) const {
  RVector r(size());
  for (size_t i = 0; i < size(); ++i) r[i] = v_[i] * c;
  return r;
}

std::string RVector::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << v_[i];
  }
  os << "]";
  return os.str();
}

RMatrix::RMatrix(std::initializer_list<std::initializer_list<Rational>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    RIOT_CHECK_EQ(row.size(), cols_);
    for (const auto& x : row) data_.push_back(x);
  }
}

RMatrix RMatrix::Identity(size_t n) {
  RMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = Rational(1);
  return m;
}

RMatrix RMatrix::FromRows(const std::vector<RVector>& rows) {
  if (rows.empty()) return RMatrix();
  RMatrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) m.SetRow(r, rows[r]);
  return m;
}

RVector RMatrix::Row(size_t r) const {
  RVector v(cols_);
  for (size_t c = 0; c < cols_; ++c) v[c] = At(r, c);
  return v;
}

RVector RMatrix::Col(size_t c) const {
  RVector v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = At(r, c);
  return v;
}

void RMatrix::SetRow(size_t r, const RVector& v) {
  RIOT_CHECK_EQ(v.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) At(r, c) = v[c];
}

void RMatrix::AppendRow(const RVector& v) {
  if (rows_ == 0 && cols_ == 0) cols_ = v.size();
  RIOT_CHECK_EQ(v.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) data_.push_back(v[c]);
  ++rows_;
}

RMatrix RMatrix::Transpose() const {
  RMatrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  return t;
}

RMatrix RMatrix::operator*(const RMatrix& o) const {
  RIOT_CHECK_EQ(cols_, o.rows_);
  RMatrix m(rows_, o.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      if (At(r, k).IsZero()) continue;
      for (size_t c = 0; c < o.cols_; ++c) {
        m.At(r, c) += At(r, k) * o.At(k, c);
      }
    }
  }
  return m;
}

RVector RMatrix::Apply(const RVector& x) const {
  RIOT_CHECK_EQ(cols_, x.size());
  RVector y(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    Rational acc;
    for (size_t c = 0; c < cols_; ++c) acc += At(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

RMatrix RMatrix::Rref(std::vector<size_t>* pivot_cols) const {
  RMatrix m = *this;
  if (pivot_cols) pivot_cols->clear();
  size_t lead = 0;
  for (size_t r = 0; r < m.rows_ && lead < m.cols_; ++r) {
    // Find a pivot in column `lead` at or below row r.
    size_t pr = r;
    while (pr < m.rows_ && m.At(pr, lead).IsZero()) ++pr;
    if (pr == m.rows_) {
      ++lead;
      --r;  // retry same row with next column
      continue;
    }
    if (pr != r) {
      for (size_t c = 0; c < m.cols_; ++c) std::swap(m.At(pr, c), m.At(r, c));
    }
    Rational inv = Rational(1) / m.At(r, lead);
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) *= inv;
    for (size_t rr = 0; rr < m.rows_; ++rr) {
      if (rr == r || m.At(rr, lead).IsZero()) continue;
      Rational f = m.At(rr, lead);
      for (size_t c = 0; c < m.cols_; ++c) {
        m.At(rr, c) -= f * m.At(r, c);
      }
    }
    if (pivot_cols) pivot_cols->push_back(lead);
    ++lead;
  }
  return m;
}

size_t RMatrix::Rank() const {
  std::vector<size_t> pivots;
  Rref(&pivots);
  return pivots.size();
}

std::vector<RVector> RMatrix::NullSpaceBasis() const {
  std::vector<size_t> pivots;
  RMatrix r = Rref(&pivots);
  std::vector<bool> is_pivot(cols_, false);
  for (size_t p : pivots) is_pivot[p] = true;
  std::vector<RVector> basis;
  for (size_t free = 0; free < cols_; ++free) {
    if (is_pivot[free]) continue;
    RVector v(cols_);
    v[free] = Rational(1);
    for (size_t i = 0; i < pivots.size(); ++i) {
      v[pivots[i]] = -r.At(i, free);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::optional<RMatrix> RMatrix::Inverse() const {
  RIOT_CHECK_EQ(rows_, cols_);
  RMatrix aug(rows_, 2 * cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) aug.At(r, c) = At(r, c);
    aug.At(r, cols_ + r) = Rational(1);
  }
  std::vector<size_t> pivots;
  RMatrix red = aug.Rref(&pivots);
  if (pivots.size() != rows_) return std::nullopt;
  for (size_t i = 0; i < pivots.size(); ++i) {
    if (pivots[i] != i) return std::nullopt;  // pivot escaped left block
  }
  RMatrix inv(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) inv.At(r, c) = red.At(r, cols_ + c);
  return inv;
}

std::optional<RVector> RMatrix::Solve(const RVector& b) const {
  RIOT_CHECK_EQ(b.size(), rows_);
  RMatrix aug(rows_, cols_ + 1);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) aug.At(r, c) = At(r, c);
    aug.At(r, cols_) = b[r];
  }
  std::vector<size_t> pivots;
  RMatrix red = aug.Rref(&pivots);
  // Inconsistent iff a pivot lands in the augmented column.
  for (size_t p : pivots) {
    if (p == cols_) return std::nullopt;
  }
  RVector x(cols_);
  for (size_t i = 0; i < pivots.size(); ++i) {
    x[pivots[i]] = red.At(i, cols_);
  }
  return x;
}

bool RMatrix::RowSpanContains(const RVector& v) const {
  RIOT_CHECK_EQ(v.size(), cols_);
  if (v.IsZero()) return true;
  RMatrix m = *this;
  size_t base_rank = m.Rank();
  m.AppendRow(v);
  return m.Rank() == base_rank;
}

std::string RMatrix::ToString() const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (size_t c = 0; c < cols_; ++c) {
      if (c) os << "\t";
      os << At(r, c);
    }
    os << (r + 1 == rows_ ? "]" : "\n");
  }
  return os.str();
}

}  // namespace riot
