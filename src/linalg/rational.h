// Exact rational arithmetic on 128-bit integers.
//
// The optimizer manipulates polyhedra and simplex tableaux whose entries must
// be exact; floating point would silently corrupt emptiness tests and
// schedule legality. Numerators/denominators are kept reduced; overflow of
// the 128-bit range aborts (it indicates a modeling bug, not a data-size
// issue, since all quantities here are schedule coefficients and small loop
// bounds).
#ifndef RIOTSHARE_LINALG_RATIONAL_H_
#define RIOTSHARE_LINALG_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <numeric>
#include <string>

#include "util/logging.h"

namespace riot {

using int128 = __int128;

/// \brief An exact rational number num/den with den > 0, always reduced.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t n) : num_(n), den_(1) {}  // NOLINT implicit
  Rational(int64_t n, int64_t d) : num_(n), den_(d) { Normalize(); }

  static Rational FromInt128(int128 n, int128 d) {
    Rational r;
    r.num_ = n;
    r.den_ = d;
    r.Normalize();
    return r;
  }

  int128 num() const { return num_; }
  int128 den() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsInteger() const { return den_ == 1; }
  bool IsNegative() const { return num_ < 0; }
  bool IsPositive() const { return num_ > 0; }

  /// Integer value; requires IsInteger().
  int64_t ToInt64() const {
    RIOT_CHECK(den_ == 1) << "not an integer: " << ToString();
    RIOT_CHECK(num_ <= INT64_MAX && num_ >= INT64_MIN);
    return static_cast<int64_t>(num_);
  }

  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Largest integer <= this.
  int64_t Floor() const;
  /// Smallest integer >= this.
  int64_t Ceil() const;

  Rational operator-() const { return FromInt128(-num_, den_); }
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  Rational Abs() const { return num_ < 0 ? -*this : *this; }

  std::string ToString() const;

 private:
  void Normalize();
  static int128 Gcd(int128 a, int128 b);
  static void CheckRange(int128 v);

  int128 num_;
  int128 den_;  // > 0
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace riot

#endif  // RIOTSHARE_LINALG_RATIONAL_H_
