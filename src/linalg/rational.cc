#include "linalg/rational.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace riot {

namespace {
// Bound chosen so that products of two in-range values stay within __int128.
const int128 kRangeLimit = (int128(1) << 62);

std::string Int128ToString(int128 v) {
  if (v == 0) return "0";
  bool neg = v < 0;
  // Careful with INT128_MIN; our range checks keep us far from it.
  if (neg) v = -v;
  std::string s;
  while (v > 0) {
    s.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  if (neg) s.push_back('-');
  std::reverse(s.begin(), s.end());
  return s;
}
}  // namespace

void Rational::CheckRange(int128 v) {
  RIOT_CHECK(v < kRangeLimit && v > -kRangeLimit)
      << "rational overflow; value magnitude exceeds 2^62";
}

int128 Rational::Gcd(int128 a, int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

void Rational::Normalize() {
  RIOT_CHECK(den_ != 0) << "zero denominator";
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  int128 g = Gcd(num_, den_);
  num_ /= g;
  den_ /= g;
  CheckRange(num_);
  CheckRange(den_);
}

int64_t Rational::Floor() const {
  int128 q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) q -= 1;
  return static_cast<int64_t>(q);
}

int64_t Rational::Ceil() const {
  int128 q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) q += 1;
  return static_cast<int64_t>(q);
}

Rational Rational::operator+(const Rational& o) const {
  // Reduce cross terms first to limit growth.
  int128 g = Gcd(den_, o.den_);
  int128 lcm_part = o.den_ / g;
  return FromInt128(num_ * lcm_part + o.num_ * (den_ / g), den_ * lcm_part);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  int128 g1 = Gcd(num_, o.den_);
  int128 g2 = Gcd(o.num_, den_);
  return FromInt128((num_ / g1) * (o.num_ / g2), (den_ / g2) * (o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  RIOT_CHECK(!o.IsZero()) << "division by zero";
  return *this * FromInt128(o.den_, o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // num_/den_ < o.num_/o.den_  <=>  num_*o.den_ < o.num_*den_ (dens > 0).
  return num_ * o.den_ < o.num_ * den_;
}

std::string Rational::ToString() const {
  if (den_ == 1) return Int128ToString(num_);
  return Int128ToString(num_) + "/" + Int128ToString(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

}  // namespace riot
