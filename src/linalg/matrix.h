// Exact dense vectors and matrices over Rational, plus the row-reduction
// toolbox the polyhedral layer and the optimizer need: RREF, rank, null
// space, inverse, and linear-system solving.
#ifndef RIOTSHARE_LINALG_MATRIX_H_
#define RIOTSHARE_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "linalg/rational.h"
#include "util/logging.h"

namespace riot {

/// \brief Dense rational vector.
class RVector {
 public:
  RVector() = default;
  explicit RVector(size_t n) : v_(n) {}
  RVector(std::initializer_list<Rational> init) : v_(init) {}
  explicit RVector(std::vector<Rational> v) : v_(std::move(v)) {}

  static RVector FromInts(const std::vector<int64_t>& ints) {
    RVector r(ints.size());
    for (size_t i = 0; i < ints.size(); ++i) r[i] = Rational(ints[i]);
    return r;
  }

  size_t size() const { return v_.size(); }
  Rational& operator[](size_t i) { return v_[i]; }
  const Rational& operator[](size_t i) const { return v_[i]; }

  bool IsZero() const {
    for (const auto& x : v_) {
      if (!x.IsZero()) return false;
    }
    return true;
  }

  Rational Dot(const RVector& o) const {
    RIOT_CHECK_EQ(size(), o.size());
    Rational acc;
    for (size_t i = 0; i < size(); ++i) acc += v_[i] * o[i];
    return acc;
  }

  RVector operator+(const RVector& o) const;
  RVector operator-(const RVector& o) const;
  RVector operator*(const Rational& c) const;
  bool operator==(const RVector& o) const { return v_ == o.v_; }

  std::string ToString() const;

 private:
  std::vector<Rational> v_;
};

/// \brief Dense rational matrix (row major).
class RMatrix {
 public:
  RMatrix() : rows_(0), cols_(0) {}
  RMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}
  RMatrix(std::initializer_list<std::initializer_list<Rational>> init);

  static RMatrix Identity(size_t n);
  static RMatrix FromRows(const std::vector<RVector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  Rational& At(size_t r, size_t c) {
    RIOT_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const Rational& At(size_t r, size_t c) const {
    RIOT_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  RVector Row(size_t r) const;
  RVector Col(size_t c) const;
  void SetRow(size_t r, const RVector& v);
  void AppendRow(const RVector& v);

  RMatrix Transpose() const;
  RMatrix operator*(const RMatrix& o) const;
  RVector Apply(const RVector& x) const;

  /// Reduced row echelon form (in place on a copy). Returns the RREF and the
  /// pivot column of each nonzero row.
  RMatrix Rref(std::vector<size_t>* pivot_cols = nullptr) const;

  size_t Rank() const;

  /// Basis of { x : M x = 0 }, one RVector per basis vector.
  std::vector<RVector> NullSpaceBasis() const;

  /// Inverse; nullopt if singular. Requires square.
  std::optional<RMatrix> Inverse() const;

  /// One solution x of M x = b, or nullopt if inconsistent.
  std::optional<RVector> Solve(const RVector& b) const;

  /// True iff v is a linear combination of this matrix's rows.
  bool RowSpanContains(const RVector& v) const;

  bool operator==(const RMatrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  std::string ToString() const;

 private:
  size_t rows_, cols_;
  std::vector<Rational> data_;
};

}  // namespace riot

#endif  // RIOTSHARE_LINALG_MATRIX_H_
