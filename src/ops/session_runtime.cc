#include "ops/session_runtime.h"

#include <algorithm>
#include <chrono>

#include "core/cost_model.h"
#include "util/logging.h"

namespace riot {

namespace {
double Since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

SessionRuntime::SessionRuntime(SessionRuntimeOptions options)
    : opts_(options),
      admission_(MakeAdmissionPolicy(options.admission,
                                     options.admission_aging_seconds)),
      pool_(options.pool_cap_bytes, MakeReplacementPolicy(options.replacement)),
      io_(std::make_unique<IoPool>(std::max(1, options.io_threads))) {
  int64_t prefetch = opts_.prefetch_budget_bytes;
  if (prefetch <= 0) prefetch = opts_.pool_cap_bytes / 8;
  pool_.SetPrefetchBudget(prefetch);
  if (opts_.writeback_async) pool_.SetWriteBehind(io_.get());
}

SessionRuntime::~SessionRuntime() {
  // Every in-flight write-behind references io_'s workers; land them all
  // and detach before the IoPool joins. Failures are dropped with the
  // cache, exactly like ~BufferPool.
  pool_.DrainWritebacks();
  pool_.SetWriteBehind(nullptr);
  io_.reset();
}

void SessionRuntime::AdmitLocked() {
  bool admitted_any = false;
  while (!admit_queue_.empty()) {
    std::vector<AdmissionCandidate> waiting;
    waiting.reserve(admit_queue_.size());
    const auto now = std::chrono::steady_clock::now();
    for (const Waiter* w : admit_queue_) {
      AdmissionCandidate c;
      c.ticket = w->ticket;
      c.footprint_bytes = w->footprint_bytes;
      c.expected_work_seconds = w->expected_work_seconds;
      c.waited_seconds =
          std::chrono::duration<double>(now - w->enqueued).count();
      waiting.push_back(c);
    }
    const int pick =
        admission_->PickNext(waiting, opts_.pool_cap_bytes - reserved_bytes_);
    if (pick < 0) break;
    RIOT_CHECK_LT(static_cast<size_t>(pick), admit_queue_.size());
    Waiter* w = admit_queue_[static_cast<size_t>(pick)];
    RIOT_CHECK_LE(reserved_bytes_ + w->footprint_bytes, opts_.pool_cap_bytes)
        << "admission policy admitted past the pool cap";
    admit_queue_.erase(admit_queue_.begin() + pick);
    w->admitted = true;
    reserved_bytes_ += w->footprint_bytes;
    ++running_sessions_;
    stats_.peak_reserved_bytes =
        std::max(stats_.peak_reserved_bytes, reserved_bytes_);
    stats_.peak_concurrent_sessions =
        std::max(stats_.peak_concurrent_sessions, running_sessions_);
    admitted_any = true;
  }
  if (admitted_any) admit_cv_.NotifyAll();
}

int SessionRuntime::PoolIdFor(BlockStore* store) {
  auto it = pool_ids_.find(store);
  if (it == pool_ids_.end()) {
    it = pool_ids_.emplace(store, next_pool_id_++).first;
  }
  return it->second;
}

Status SessionRuntime::ReleaseStore(BlockStore* store) {
  int id = -1;
  {
    MutexLock lock(&mu_);
    auto it = pool_ids_.find(store);
    if (it == pool_ids_.end()) return Status::OK();  // never cached
    id = it->second;
  }
  // The pool's mutex must not nest under mu_ (see the lock-order note in
  // session_runtime.h), so drop the frames between the two mu_ sections.
  // A concurrent PoolIdFor can only re-mint the same id for the same
  // store, which the caller's contract says no session is using anymore.
  const int64_t kept = pool_.DropArrayFrames(id);
  if (kept > 0) {
    return Status::Internal("ReleaseStore: " + std::to_string(kept) +
                            " frame(s) of the store still in use");
  }
  MutexLock lock(&mu_);
  auto it = pool_ids_.find(store);
  if (it != pool_ids_.end() && it->second == id) pool_ids_.erase(it);
  return Status::OK();
}

Result<SessionStats> SessionRuntime::Run(const SessionSpec& spec) {
  if (spec.program == nullptr || spec.schedule == nullptr ||
      spec.kernels == nullptr) {
    return Status::InvalidArgument(
        "SessionSpec: program/schedule/kernels must be set");
  }
  if (spec.stores.size() != spec.program->arrays().size()) {
    return Status::InvalidArgument("SessionSpec: one store per array");
  }

  // ---- footprint: the session's budget and admission reservation -------
  int64_t footprint = spec.footprint_bytes;
  double work = spec.expected_work_seconds;
  const bool need_work =
      work <= 0 && opts_.admission == AdmissionPolicyKind::kShortestWork;
  if (footprint <= 0 || need_work) {
    // The cost model's peak is exact for the serial engine a session runs
    // on (pinned + retained in scheduled order); TotalSeconds is the
    // modeled io + compute the shortest-work policy ranks by.
    const PlanCost cost = EvaluatePlanCost(*spec.program, *spec.schedule,
                                           spec.realized, opts_.cost);
    if (footprint <= 0) footprint = cost.peak_memory_bytes;
    if (work <= 0) work = cost.TotalSeconds();
  }
  footprint += opts_.footprint_margin_bytes;
  if (footprint > opts_.pool_cap_bytes) {
    MutexLock lock(&mu_);
    ++stats_.sessions_rejected;
    return Status::ResourceExhausted(
        "session footprint " + std::to_string(footprint) +
        " exceeds the pool cap " + std::to_string(opts_.pool_cap_bytes) +
        " even running alone");
  }

  // ---- admission: policy-ordered footprint reservations ----------------
  // Parking stays livelock-free under every policy: an admitted waiter
  // needs only completions to shrink reserved_bytes_, FIFO never lets
  // anything overtake its head, and the reordering policies age back to
  // FIFO, so some waiter always needs only completions to get in.
  SessionStats out;
  auto wait0 = std::chrono::steady_clock::now();
  {
    UniqueMutexLock lock(&mu_);
    Waiter me;
    me.ticket = next_ticket_++;
    me.footprint_bytes = footprint;
    me.expected_work_seconds = work;
    me.enqueued = wait0;
    admit_queue_.push_back(&me);
    AdmitLocked();
    if (!me.admitted) {
      ++stats_.sessions_parked;
      out.parked_for_admission = true;
      // Always terminates: every spec passed the footprint <= cap check,
      // so whenever the runtime drains to idle the policy's next pick
      // (any policy) fits the fully-free reservation.
      while (!me.admitted) admit_cv_.Wait(lock);
    }
    out.session_id = me.ticket;
    out.admission_wait_seconds = Since(wait0);
    stats_.admission_wait_seconds += out.admission_wait_seconds;
  }

  // ---- bind the session into the shared pool's namespace ---------------
  PoolAccount account;
  account.budget_bytes = footprint;
  std::vector<int> pool_array_ids(spec.stores.size());
  {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < spec.stores.size(); ++i) {
      pool_array_ids[i] = PoolIdFor(spec.stores[i]);
    }
  }
  const int channel = io_->OpenChannel();

  SessionBinding binding;
  binding.account = &account;
  binding.pool_array_ids = std::move(pool_array_ids);
  binding.io = io_.get();
  binding.io_channel = channel;
  binding.store_mutexes = io_->store_mutexes();
  binding.park_timeout_seconds = opts_.park_timeout_seconds;

  ExecOptions eo = spec.exec;
  eo.shared_pool = &pool_;
  eo.session = &binding;
  eo.exec_threads = 1;  // sessions are the parallelism
  eo.replacement = opts_.replacement;  // informational; the pool decides

  Executor ex(*spec.program, spec.stores, *spec.kernels, eo);
  auto run = ex.Run(*spec.schedule, spec.realized);

  io_->CloseChannel(channel);

  // ---- release the reservation, merge stats ----------------------------
  {
    MutexLock lock(&mu_);
    reserved_bytes_ -= footprint;
    --running_sessions_;
    AdmitLocked();  // freed reservation may admit parked waiters
    if (run.ok()) {
      ++stats_.sessions_completed;
      stats_.bytes_read += run->bytes_read;
      stats_.bytes_written += run->bytes_written;
      stats_.block_reads += run->block_reads;
      stats_.block_writes += run->block_writes;
      stats_.prefetch_hits += run->prefetch_hits;
      stats_.policy_saved_reads += run->policy_saved_reads;
      stats_.session_parks += run->session_parks;
      stats_.io_seconds += run->io_seconds;
      stats_.compute_seconds += run->compute_seconds;
      stats_.wall_seconds += run->wall_seconds;
    } else {
      ++stats_.sessions_failed;
    }
  }

  if (!run.ok()) return run.status();
  out.budget_bytes = footprint;
  out.peak_charged_bytes =
      account.peak_charged_bytes.load(std::memory_order_relaxed);
  out.budget_rejections =
      account.budget_rejections.load(std::memory_order_relaxed);
  out.exec = std::move(run).ValueOrDie();
  return out;
}

RuntimeStats SessionRuntime::stats() const {
  RuntimeStats out;
  {
    MutexLock lock(&mu_);
    out = stats_;
  }
  // Pool counters carry their own lock; never nest it under mu_.
  out.pool = pool_.stats();
  return out;
}

}  // namespace riot
