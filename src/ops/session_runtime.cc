#include "ops/session_runtime.h"

#include <algorithm>
#include <chrono>

#include "core/cost_model.h"
#include "util/logging.h"

namespace riot {

namespace {
double Since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

SessionRuntime::SessionRuntime(SessionRuntimeOptions options)
    : opts_(options),
      pool_(options.pool_cap_bytes, MakeReplacementPolicy(options.replacement)),
      io_(std::make_unique<IoPool>(std::max(1, options.io_threads))) {
  int64_t prefetch = opts_.prefetch_budget_bytes;
  if (prefetch <= 0) prefetch = opts_.pool_cap_bytes / 8;
  pool_.SetPrefetchBudget(prefetch);
  if (opts_.writeback_async) pool_.SetWriteBehind(io_.get());
}

SessionRuntime::~SessionRuntime() {
  // Every in-flight write-behind references io_'s workers; land them all
  // and detach before the IoPool joins. Failures are dropped with the
  // cache, exactly like ~BufferPool.
  pool_.DrainWritebacks();
  pool_.SetWriteBehind(nullptr);
  io_.reset();
}

int SessionRuntime::PoolIdFor(BlockStore* store) {
  auto it = pool_ids_.find(store);
  if (it == pool_ids_.end()) {
    it = pool_ids_.emplace(store, next_pool_id_++).first;
  }
  return it->second;
}

Status SessionRuntime::ReleaseStore(BlockStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pool_ids_.find(store);
  if (it == pool_ids_.end()) return Status::OK();  // never cached
  const int64_t kept = pool_.DropArrayFrames(it->second);
  if (kept > 0) {
    return Status::Internal("ReleaseStore: " + std::to_string(kept) +
                            " frame(s) of the store still in use");
  }
  pool_ids_.erase(it);
  return Status::OK();
}

Result<SessionStats> SessionRuntime::Run(const SessionSpec& spec) {
  if (spec.program == nullptr || spec.schedule == nullptr ||
      spec.kernels == nullptr) {
    return Status::InvalidArgument(
        "SessionSpec: program/schedule/kernels must be set");
  }
  if (spec.stores.size() != spec.program->arrays().size()) {
    return Status::InvalidArgument("SessionSpec: one store per array");
  }

  // ---- footprint: the session's budget and admission reservation -------
  int64_t footprint = spec.footprint_bytes;
  if (footprint <= 0) {
    // The cost model's peak is exact for the serial engine a session runs
    // on (pinned + retained in scheduled order).
    const PlanCost cost =
        EvaluatePlanCost(*spec.program, *spec.schedule, spec.realized);
    footprint = cost.peak_memory_bytes;
  }
  footprint += opts_.footprint_margin_bytes;
  if (footprint > opts_.pool_cap_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_rejected;
    return Status::ResourceExhausted(
        "session footprint " + std::to_string(footprint) +
        " exceeds the pool cap " + std::to_string(opts_.pool_cap_bytes) +
        " even running alone");
  }

  // ---- admission: strict FIFO over footprint reservations --------------
  // FIFO (no overtaking) is what makes parking livelock-free: the head
  // ticket needs only completions to shrink reserved_bytes_, never the
  // progress of sessions queued behind it.
  SessionStats out;
  auto wait0 = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    const int64_t ticket = next_ticket_++;
    admit_queue_.push_back(ticket);
    const bool must_wait =
        admit_queue_.front() != ticket ||
        reserved_bytes_ + footprint > opts_.pool_cap_bytes;
    if (must_wait) {
      ++stats_.sessions_parked;
      out.parked_for_admission = true;
    }
    admit_cv_.wait(lock, [&] {
      return admit_queue_.front() == ticket &&
             reserved_bytes_ + footprint <= opts_.pool_cap_bytes;
    });
    admit_queue_.pop_front();
    reserved_bytes_ += footprint;
    ++running_sessions_;
    stats_.peak_reserved_bytes =
        std::max(stats_.peak_reserved_bytes, reserved_bytes_);
    stats_.peak_concurrent_sessions =
        std::max(stats_.peak_concurrent_sessions, running_sessions_);
    out.session_id = ticket;
    out.admission_wait_seconds = Since(wait0);
    stats_.admission_wait_seconds += out.admission_wait_seconds;
  }
  // The next queued ticket may also fit (admission is not exclusive).
  admit_cv_.notify_all();

  // ---- bind the session into the shared pool's namespace ---------------
  PoolAccount account;
  account.budget_bytes = footprint;
  std::vector<int> pool_array_ids(spec.stores.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < spec.stores.size(); ++i) {
      pool_array_ids[i] = PoolIdFor(spec.stores[i]);
    }
  }
  const int channel = io_->OpenChannel();

  SessionBinding binding;
  binding.account = &account;
  binding.pool_array_ids = std::move(pool_array_ids);
  binding.io = io_.get();
  binding.io_channel = channel;
  binding.store_mutexes = io_->store_mutexes();
  binding.park_timeout_seconds = opts_.park_timeout_seconds;

  ExecOptions eo = spec.exec;
  eo.shared_pool = &pool_;
  eo.session = &binding;
  eo.exec_threads = 1;  // sessions are the parallelism
  eo.replacement = opts_.replacement;  // informational; the pool decides

  Executor ex(*spec.program, spec.stores, *spec.kernels, eo);
  auto run = ex.Run(*spec.schedule, spec.realized);

  io_->CloseChannel(channel);

  // ---- release the reservation, merge stats ----------------------------
  {
    std::lock_guard<std::mutex> lock(mu_);
    reserved_bytes_ -= footprint;
    --running_sessions_;
    if (run.ok()) {
      ++stats_.sessions_completed;
      stats_.bytes_read += run->bytes_read;
      stats_.bytes_written += run->bytes_written;
      stats_.block_reads += run->block_reads;
      stats_.block_writes += run->block_writes;
      stats_.prefetch_hits += run->prefetch_hits;
      stats_.policy_saved_reads += run->policy_saved_reads;
      stats_.session_parks += run->session_parks;
      stats_.io_seconds += run->io_seconds;
      stats_.compute_seconds += run->compute_seconds;
      stats_.wall_seconds += run->wall_seconds;
    } else {
      ++stats_.sessions_failed;
    }
  }
  admit_cv_.notify_all();

  if (!run.ok()) return run.status();
  out.budget_bytes = footprint;
  out.peak_charged_bytes =
      account.peak_charged_bytes.load(std::memory_order_relaxed);
  out.budget_rejections =
      account.budget_rejections.load(std::memory_order_relaxed);
  out.exec = std::move(run).ValueOrDie();
  return out;
}

RuntimeStats SessionRuntime::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace riot
