#include "ops/lockstep.h"

#include <utility>

#include "util/logging.h"

namespace riot {

LockstepGate::LockstepGate(int sessions, std::vector<int> turns)
    : turns_(std::move(turns)),
      arrived_(static_cast<size_t>(sessions), false) {
  for (int t : turns_) {
    RIOT_CHECK(t >= 0 && t < sessions) << "lockstep: bad turn index " << t;
  }
}

void LockstepGate::AwaitArrival(int s) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return arrived_[static_cast<size_t>(s)]; });
}

void LockstepGate::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  started_ = true;
  cv_.notify_all();
}

void LockstepGate::EnterKernel(int s) {
  std::unique_lock<std::mutex> lock(mu_);
  if (holder_ == s) {
    holder_ = -1;  // turn unit complete: pass the token on
    cv_.notify_all();
  }
  if (!arrived_[static_cast<size_t>(s)]) {
    arrived_[static_cast<size_t>(s)] = true;
    cv_.notify_all();
  }
  cv_.wait(lock, [&] {
    return started_ && holder_ == -1 && cursor_ < turns_.size() &&
           turns_[cursor_] == s;
  });
  holder_ = s;
  ++cursor_;
}

void LockstepGate::Finish(int s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (holder_ == s) {
    holder_ = -1;
    cv_.notify_all();
  }
}

}  // namespace riot
