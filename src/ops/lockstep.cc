#include "ops/lockstep.h"

#include <utility>

#include "util/logging.h"

namespace riot {

LockstepGate::LockstepGate(int sessions, std::vector<int> turns)
    : turns_(std::move(turns)),
      arrived_(static_cast<size_t>(sessions), false) {
  for (int t : turns_) {
    RIOT_CHECK(t >= 0 && t < sessions) << "lockstep: bad turn index " << t;
  }
}

void LockstepGate::AwaitArrival(int s) {
  UniqueMutexLock lock(&mu_);
  while (!arrived_[static_cast<size_t>(s)]) cv_.Wait(lock);
}

void LockstepGate::Start() {
  MutexLock lock(&mu_);
  started_ = true;
  cv_.NotifyAll();
}

void LockstepGate::EnterKernel(int s) {
  UniqueMutexLock lock(&mu_);
  if (holder_ == s) {
    holder_ = -1;  // turn unit complete: pass the token on
    cv_.NotifyAll();
  }
  if (!arrived_[static_cast<size_t>(s)]) {
    arrived_[static_cast<size_t>(s)] = true;
    cv_.NotifyAll();
  }
  while (!(started_ && holder_ == -1 && cursor_ < turns_.size() &&
           turns_[cursor_] == s)) {
    RIOT_CHECK(!started_ || cursor_ < turns_.size())
        << "lockstep: session " << s
        << " entered a kernel past the last scheduled turn (turn list too "
           "short — the gate would deadlock instead of failing loudly)";
    cv_.Wait(lock);
  }
  holder_ = s;
  ++cursor_;
}

void LockstepGate::Finish(int s) {
  MutexLock lock(&mu_);
  if (holder_ == s) {
    holder_ = -1;
    cv_.NotifyAll();
  }
}

}  // namespace riot
