// Workloads: ready-to-run programs pairing the polyhedral IR (consumed by
// the optimizer) with statement kernels (consumed by the executor) and
// array roles (inputs to initialize, outputs to verify).
//
// Most factories are written against the lazy expression front end
// (ir/expr.h): a few lines of array expressions, lowered by
// core/lowering.h into the blocked IR, with every kernel synthesized from
// the statements' typed ops. MakeJoinFilter is the escape-hatch
// counterexample — filter/join semantics have no expression op, so it
// hand-builds its IR and kernels the historical way.
//
// Factories for each program evaluated in the paper:
//   * MakeAddMul      — Example 1 / Section 6.1: C = A + B; E = C D
//   * MakeAddMulTall  — the paper's "club" variant with 1.5x-taller blocks
//   * MakeTwoMatMul   — Section 6.2: C = A B; E = A D (Configs A and B)
//   * MakeLinReg      — Section 6.3: 7-step ordinary-least-squares pipeline
//   * MakeExample1    — Example 1 with free block-grid parameters (tests)
// and two expression-native additions exercising CSE and scratch
// temporaries:
//   * MakeCovariance  — centered covariance S = X'X/n - mean' mean-style
//   * MakeRidge       — ridge regression (X'X + lambda I)^-1 X'y at two
//                       lambdas; the shared X'X and X'y are hash-consed
//                       and materialized once
//
// Every factory takes `scale`: block element dimensions are the paper's
// divided by scale, while the block *grids* are the paper's exactly, so the
// plan space and sharing structure are scale-invariant (see DESIGN.md §3).
#ifndef RIOTSHARE_OPS_WORKLOAD_H_
#define RIOTSHARE_OPS_WORKLOAD_H_

#include <map>
#include <string>
#include <vector>

#include "core/lowering.h"
#include "exec/executor.h"
#include "ir/expr.h"
#include "ir/program.h"

namespace riot {

struct Workload {
  std::string name;
  Program program;
  /// By statement id. Expression-built workloads carry kernels synthesized
  /// from the statements' ops (so callers may wrap or replace them); an
  /// empty entry makes the Executor synthesize at construction instead.
  std::vector<StatementKernel> kernels;
  std::vector<int> input_arrays;  // initialized before execution
  std::vector<int> output_arrays; // compared across plans
  /// Inputs holding a constant instead of random data (e.g. an all-ones
  /// vector); InitInputs consults this. Keyed by array id.
  std::map<int, double> const_input_values;
};

/// \brief Lowers an expression graph into a runnable workload: program from
/// core/lowering.h, kernels synthesized from every statement's op.
/// CHECK-fails on a graph LowerExpr rejects (empty/duplicate outputs,
/// duplicate array names, output that is an input) — call LowerExpr
/// directly to handle those as recoverable Status instead. `lower` controls
/// elementwise fusion; `{.fuse = false}` is the unfused escape hatch.
Workload FromExpr(std::string name, const ExprGraph& graph,
                  const std::vector<ExprRef>& outputs,
                  const LowerOptions& lower = {});

Workload MakeAddMul(int64_t scale);
Workload MakeAddMulTall(int64_t scale);

/// The addmul program with a chosen blocking of the same logical matrices:
/// A/B/C/E have 72000/block_rows blocks of block_rows x 4000 elements
/// (block_rows must divide 72000 and be divisible by scale). Used by the
/// block-size advisor (paper Section 7 future work).
Workload MakeAddMulBlocked(int64_t block_rows, int64_t scale);

enum class TwoMatMulConfig { kConfigA, kConfigB };
Workload MakeTwoMatMul(TwoMatMulConfig config, int64_t scale);

Workload MakeLinReg(int64_t scale);

/// Example 1 with explicit block-grid sizes (n1 x n2 matrices of small
/// blocks); used by unit tests and the quickstart example.
Workload MakeExample1(int64_t n1, int64_t n2, int64_t n3,
                      int64_t block_rows = 8, int64_t block_cols = 8);

/// Centered covariance of X's columns (X: 16x1 blocks of 30000x3000):
///   G = X'X;  M = 1'X;  Cov = (G - (1/n) M'M) / (n - 1)
/// G, M, and the M'M product are scratch temporaries — non-persistent, so
/// the optimizer's write elision can keep them off disk entirely; the
/// centered difference fuses into the final Scale (`fuse` selects the
/// lowering, for fused-vs-unfused differentials).
/// `scale` must divide 30000 and 3000.
Workload MakeCovariance(int64_t scale, bool fuse = true);

/// Ridge regression at two regularization strengths over one dataset
/// (X: 16x1 blocks of 30000x3000; y: 30000x400):
///   beta_l = (X'X + lambda_l I)^-1 X'y      for lambda in {2.5, 9.0}
/// The factory builds the X'X and X'y subexpressions twice, once per
/// lambda; hash-consed CSE materializes each exactly once (see
/// ExprGraph::cse_hits). `scale` must divide 30000, 3000, and 400.
Workload MakeRidge(int64_t scale);

/// \brief Builds the synthetic deep elementwise-chain graph into `g` and
/// returns the chain's final node: 7 fusable elementwise ops
/// (Add/Scale/Sub/Map/Add/Zip/Scale over inputs X and Y, integer-exact
/// constants) feeding one output Z. With fusion the whole chain lowers to
/// ONE compound statement and zero scratch temporaries; unfused it is 7
/// statements and 6 temporaries — the headline fusion benchmark shape.
/// Exposed separately from MakeElementwiseChain so differential tests can
/// run the same graph through both lowerings and the Rational oracle.
ExprRef BuildElementwiseChain(ExprGraph* g, int64_t scale);

/// The deep-chain graph as a runnable workload (X, Y: 8x2 blocks of
/// (24000/scale) x (3000/scale)); `fuse` selects the lowering.
Workload MakeElementwiseChain(int64_t scale, bool fuse = true);

/// Pig/relational-style program (paper Section 4.1: "table scans and nested
/// loop joins in traditional databases, FILTER and FOREACH commands in Pig"
/// are static-control):
///   s1: U = FILTER(R)          (FOREACH block of R, keep keys > threshold)
///   s2: T = U JOIN S on key    (block nested-loop join, T[i,j] = count)
/// R: nr blocks of rows x 2 (key, payload); S: ns blocks; T: nr x ns counts.
/// Sharing opportunities include pipelining U from the filter into the join
/// and reusing S blocks across the outer loop.
/// Hand-built IR + free-form kernels: the escape hatch for semantics the
/// expression language has no op for.
Workload MakeJoinFilter(int64_t nr, int64_t ns, int64_t rows_per_block = 32);

}  // namespace riot

#endif  // RIOTSHARE_OPS_WORKLOAD_H_
