// Workloads: ready-to-run programs pairing the polyhedral IR (consumed by
// the optimizer) with statement kernels (consumed by the executor) and
// array roles (inputs to initialize, outputs to verify).
//
// Factories are provided for each program evaluated in the paper:
//   * MakeAddMul      — Example 1 / Section 6.1: C = A + B; E = C D
//   * MakeAddMulTall  — the paper's "club" variant with 1.5x-taller blocks
//   * MakeTwoMatMul   — Section 6.2: C = A B; E = A D (Configs A and B)
//   * MakeLinReg      — Section 6.3: 7-step ordinary-least-squares pipeline
//   * MakeExample1    — Example 1 with free block-grid parameters (tests)
//
// Every factory takes `scale`: block element dimensions are the paper's
// divided by scale, while the block *grids* are the paper's exactly, so the
// plan space and sharing structure are scale-invariant (see DESIGN.md §3).
#ifndef RIOTSHARE_OPS_WORKLOAD_H_
#define RIOTSHARE_OPS_WORKLOAD_H_

#include <string>
#include <vector>

#include "exec/executor.h"
#include "ir/program.h"

namespace riot {

struct Workload {
  std::string name;
  Program program;
  std::vector<StatementKernel> kernels;  // by statement id
  std::vector<int> input_arrays;         // initialized before execution
  std::vector<int> output_arrays;        // compared across plans
};

Workload MakeAddMul(int64_t scale);
Workload MakeAddMulTall(int64_t scale);

/// The addmul program with a chosen blocking of the same logical matrices:
/// A/B/C/E have 72000/block_rows blocks of block_rows x 4000 elements
/// (block_rows must divide 72000 and be divisible by scale). Used by the
/// block-size advisor (paper Section 7 future work).
Workload MakeAddMulBlocked(int64_t block_rows, int64_t scale);

enum class TwoMatMulConfig { kConfigA, kConfigB };
Workload MakeTwoMatMul(TwoMatMulConfig config, int64_t scale);

Workload MakeLinReg(int64_t scale);

/// Example 1 with explicit block-grid sizes (n1 x n2 matrices of small
/// blocks); used by unit tests and the quickstart example.
Workload MakeExample1(int64_t n1, int64_t n2, int64_t n3,
                      int64_t block_rows = 8, int64_t block_cols = 8);

/// Pig/relational-style program (paper Section 4.1: "table scans and nested
/// loop joins in traditional databases, FILTER and FOREACH commands in Pig"
/// are static-control):
///   s1: U = FILTER(R)          (FOREACH block of R, keep keys > threshold)
///   s2: T = U JOIN S on key    (block nested-loop join, T[i,j] = count)
/// R: nr blocks of rows x 2 (key, payload); S: ns blocks; T: nr x ns counts.
/// Sharing opportunities include pipelining U from the filter into the join
/// and reusing S blocks across the outer loop.
Workload MakeJoinFilter(int64_t nr, int64_t ns, int64_t rows_per_block = 32);

}  // namespace riot

#endif  // RIOTSHARE_OPS_WORKLOAD_H_
