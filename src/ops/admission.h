// Pluggable admission ordering for SessionRuntime (serving-side SLO
// control). Strict FIFO — the historical behavior, bit-for-bit — admits
// the oldest waiter when its footprint reservation fits; it is simple and
// livelock-free but suffers head-of-line blocking: one whale parked for
// capacity makes every mouse behind it wait out the whale's admission
// even though the mice would fit right now. The footprint- and
// expected-work-aware policies overtake the blocked head with waiters
// that fit, cutting tail latency under mixed open-loop traffic, and bound
// starvation by aging: once the oldest waiter has waited past the aging
// threshold the policy degrades to FIFO until it gets in, so the whale's
// wait is bounded by aging + the running sessions' completion — not by
// the mice arrival rate.
//
// The runtime calls PickNext under its own lock on every arrival and
// every completion; policies are stateless decision functions.
#ifndef RIOTSHARE_OPS_ADMISSION_H_
#define RIOTSHARE_OPS_ADMISSION_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace riot {

enum class AdmissionPolicyKind {
  /// Admit strictly in arrival order; the head waits for capacity and
  /// nothing overtakes it (the historical SessionRuntime behavior).
  kFifo,
  /// Among waiters whose footprint fits the available reservation, admit
  /// the smallest footprint first (small-job-first), with FIFO aging.
  kSmallestFootprint,
  /// Among waiters that fit, admit the shortest expected work first
  /// (SJF on the cost model's io + compute seconds), with FIFO aging.
  kShortestWork,
};

/// \brief One parked session as the policy sees it. The runtime presents
/// waiters in arrival order (index 0 is the oldest).
struct AdmissionCandidate {
  int64_t ticket = 0;
  int64_t footprint_bytes = 0;       // the reservation admission must fit
  double expected_work_seconds = 0;  // cost model TotalSeconds(); 0 unknown
  double waited_seconds = 0;         // time in the queue so far
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual AdmissionPolicyKind kind() const = 0;
  virtual const char* name() const = 0;
  /// Picks the next waiter to admit into `available_bytes` of unreserved
  /// pool, or -1 to admit no one for now. `waiting` is in arrival order
  /// and non-empty slots are never skipped by the runtime: it re-asks
  /// after removing the pick, and again on every completion/arrival, so
  /// returning an index admits exactly that one session.
  virtual int PickNext(const std::vector<AdmissionCandidate>& waiting,
                       int64_t available_bytes) const = 0;
};

/// `aging_seconds` bounds starvation for the non-FIFO policies: when the
/// oldest waiter has waited at least this long, the policy serves it
/// FIFO-style (admitting nothing else past it until it fits). Ignored by
/// kFifo.
std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(
    AdmissionPolicyKind kind, double aging_seconds = 2.0);

const char* AdmissionPolicyName(AdmissionPolicyKind kind);

}  // namespace riot

#endif  // RIOTSHARE_OPS_ADMISSION_H_
