#include "ops/workload.h"

#include "ir/builder.h"
#include "kernels/dense.h"
#include "util/logging.h"

namespace riot {

namespace {

ArrayInfo Matrix(const std::string& name, int64_t grid_r, int64_t grid_c,
                 int64_t block_r, int64_t block_c, int64_t scale,
                 bool persistent = true) {
  RIOT_CHECK_EQ(block_r % scale, 0) << name << " rows not divisible by scale";
  RIOT_CHECK_EQ(block_c % scale, 0) << name << " cols not divisible by scale";
  ArrayInfo a;
  a.name = name;
  a.grid = {grid_r, grid_c};
  a.block_elems = {block_r / scale, block_c / scale};
  a.persistent = persistent;
  return a;
}

// Generic C = A + B over an (n1 x n2) block grid; returns the statement id.
int AddAdditionStatement(Program* p, int a, int b, int c, int64_t n1,
                         int64_t n2, int nest, const std::string& name) {
  Statement s;
  s.name = name;
  s.iters = {"i", "k"};
  s.domain = RectDomain({{0, n1 - 1}, {0, n2 - 1}}, {"i", "k"});
  s.accesses.push_back(Read(a, {{1, 0, 0}, {0, 1, 0}}));
  s.accesses.push_back(Read(b, {{1, 0, 0}, {0, 1, 0}}));
  s.accesses.push_back(Write(c, {{1, 0, 0}, {0, 1, 0}}));
  return p->AddStatement(std::move(s), nest, 0);
}

// Generic E[i,j] += C[i,k] * D[k,j] over (n1 x n3 x n2); the read of E is
// guarded by k >= 1 (paper footnote 1: k == 0 initializes).
int AddMultiplyStatement(Program* p, int c, int d, int e, int64_t n1,
                         int64_t n3, int64_t n2, int nest,
                         const std::string& name) {
  Statement s;
  s.name = name;
  s.iters = {"i", "j", "k"};
  s.domain =
      RectDomain({{0, n1 - 1}, {0, n3 - 1}, {0, n2 - 1}}, {"i", "j", "k"});
  s.accesses.push_back(Read(c, {{1, 0, 0, 0}, {0, 0, 1, 0}}));  // C[i,k]
  s.accesses.push_back(Read(d, {{0, 0, 1, 0}, {0, 1, 0, 0}}));  // D[k,j]
  Access re = Read(e, {{1, 0, 0, 0}, {0, 1, 0, 0}});            // E[i,j]
  re.guard = GuardGe(s.domain, 2, 1);                           // k >= 1
  s.accesses.push_back(std::move(re));
  s.accesses.push_back(Write(e, {{1, 0, 0, 0}, {0, 1, 0, 0}}));
  return p->AddStatement(std::move(s), nest, 0);
}

StatementKernel AddKernel() {
  return [](const std::vector<int64_t>&, const std::vector<DenseView*>& v) {
    BlockAdd(*v[0], *v[1], v[2]);
  };
}

// views: [C, D, E(read, nullable), E(write)]; accumulate when k > 0.
StatementKernel MulAccumulateKernel() {
  return [](const std::vector<int64_t>& iter,
            const std::vector<DenseView*>& v) {
    const bool accumulate = iter[2] > 0;
    BlockGemm(*v[0], false, *v[1], false, v[3], accumulate);
  };
}

Workload MakeAddMulImpl(int64_t scale, int64_t n1_blocks,
                        int64_t block_rows) {
  Workload w;
  w.name = "addmul";
  Program& p = w.program;
  // Paper Table 2: A,B,C 12x12 blocks of 6000x4000; D 12x1 of 4000x5000;
  // E 12x1 of 6000x5000. The "tall blocks" variant uses 8x12 of 9000x4000.
  const int64_t n1 = n1_blocks, n2 = 12, n3 = 1;
  int a = p.AddArray(Matrix("A", n1, n2, block_rows, 4000, scale));
  int b = p.AddArray(Matrix("B", n1, n2, block_rows, 4000, scale));
  int c = p.AddArray(
      Matrix("C", n1, n2, block_rows, 4000, scale, /*persistent=*/false));
  int d = p.AddArray(Matrix("D", n2, n3, 4000, 5000, scale));
  int e = p.AddArray(Matrix("E", n1, n3, block_rows, 5000, scale));
  AddAdditionStatement(&p, a, b, c, n1, n2, /*nest=*/0, "s1");
  AddMultiplyStatement(&p, c, d, e, n1, n3, n2, /*nest=*/1, "s2");
  w.kernels = {AddKernel(), MulAccumulateKernel()};
  w.input_arrays = {a, b, d};
  w.output_arrays = {e};
  return w;
}

}  // namespace

Workload MakeAddMul(int64_t scale) { return MakeAddMulImpl(scale, 12, 6000); }

Workload MakeAddMulTall(int64_t scale) {
  Workload w = MakeAddMulImpl(scale, 8, 9000);
  w.name = "addmul_tall";
  return w;
}

Workload MakeAddMulBlocked(int64_t block_rows, int64_t scale) {
  const int64_t total_rows = 72000;
  RIOT_CHECK_EQ(total_rows % block_rows, 0)
      << "block_rows must divide " << total_rows;
  Workload w = MakeAddMulImpl(scale, total_rows / block_rows, block_rows);
  w.name = "addmul_b" + std::to_string(block_rows);
  return w;
}

Workload MakeTwoMatMul(TwoMatMulConfig config, int64_t scale) {
  Workload w;
  w.name = config == TwoMatMulConfig::kConfigA ? "twomm_a" : "twomm_b";
  Program& p = w.program;
  int a, b, c, d, e;
  int64_t n1, n2, n3, n4;  // A: n1 x n3 blocks; B: n3 x n2; D: n3 x n4
  if (config == TwoMatMulConfig::kConfigA) {
    // Table 3 Config A: A 6x6 of 8000x7000; B,D 6x10 of 7000x3000;
    // C,E 6x10 of 8000x3000.
    n1 = 6, n3 = 6, n2 = 10, n4 = 10;
    a = p.AddArray(Matrix("A", n1, n3, 8000, 7000, scale));
    b = p.AddArray(Matrix("B", n3, n2, 7000, 3000, scale));
    c = p.AddArray(Matrix("C", n1, n2, 8000, 3000, scale));
    d = p.AddArray(Matrix("D", n3, n4, 7000, 3000, scale));
    e = p.AddArray(Matrix("E", n1, n4, 8000, 3000, scale));
  } else {
    // Table 3 Config B: A 18x6 of 2000x8000; B 6x4 of 8000x6000;
    // C 18x4 of 2000x6000; D 6x4 of 8000x7000; E 18x4 of 2000x7000.
    n1 = 18, n3 = 6, n2 = 4, n4 = 4;
    a = p.AddArray(Matrix("A", n1, n3, 2000, 8000, scale));
    b = p.AddArray(Matrix("B", n3, n2, 8000, 6000, scale));
    c = p.AddArray(Matrix("C", n1, n2, 2000, 6000, scale));
    d = p.AddArray(Matrix("D", n3, n4, 8000, 7000, scale));
    e = p.AddArray(Matrix("E", n1, n4, 2000, 7000, scale));
  }
  AddMultiplyStatement(&p, a, b, c, n1, n2, n3, /*nest=*/0, "s1");
  AddMultiplyStatement(&p, a, d, e, n1, n4, n3, /*nest=*/1, "s2");
  w.kernels = {MulAccumulateKernel(), MulAccumulateKernel()};
  w.input_arrays = {a, b, d};
  w.output_arrays = {c, e};
  return w;
}

Workload MakeLinReg(int64_t scale) {
  Workload w;
  w.name = "linreg";
  Program& p = w.program;
  // Table 4: X 25x1 blocks of 60000x4000; Y, Yhat, E 25x1 of 60000x400;
  // U, W 1x1 of 4000x4000; V, beta 1x1 of 4000x400; RSS 1x1 of 1x400.
  const int64_t nb = 25;
  int x = p.AddArray(Matrix("X", nb, 1, 60000, 4000, scale));
  int y = p.AddArray(Matrix("Y", nb, 1, 60000, 400, scale));
  int u = p.AddArray(Matrix("U", 1, 1, 4000, 4000, scale));
  int v = p.AddArray(Matrix("V", 1, 1, 4000, 400, scale));
  int wm = p.AddArray(Matrix("W", 1, 1, 4000, 4000, scale));
  int beta = p.AddArray(Matrix("Bh", 1, 1, 4000, 400, scale));
  int yhat = p.AddArray(
      Matrix("Yh", nb, 1, 60000, 400, scale, /*persistent=*/false));
  int eres = p.AddArray(
      Matrix("Er", nb, 1, 60000, 400, scale, /*persistent=*/false));
  int rss = p.AddArray(Matrix("R", 1, 1, scale, 400, scale));  // 1 x k block

  auto dom_k = RectDomain({{0, nb - 1}}, {"k"});
  auto dom_1 = RectDomain({{0, 0}}, {"z"});

  {  // s1: U += X[k]' X[k]
    Statement s;
    s.name = "s1";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(x, {{1, 0}, {0, 0}}));
    Access ru = Read(u, {{0, 0}, {0, 0}});
    ru.guard = GuardGe(dom_k, 0, 1);
    s.accesses.push_back(std::move(ru));
    s.accesses.push_back(Write(u, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 0, 0);
    w.kernels.push_back([](const std::vector<int64_t>& iter,
                           const std::vector<DenseView*>& vv) {
      BlockGemm(*vv[0], true, *vv[0], false, vv[2], iter[0] > 0);
    });
  }
  {  // s2: V += X[k]' Y[k]
    Statement s;
    s.name = "s2";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(x, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Read(y, {{1, 0}, {0, 0}}));
    Access rv = Read(v, {{0, 0}, {0, 0}});
    rv.guard = GuardGe(dom_k, 0, 1);
    s.accesses.push_back(std::move(rv));
    s.accesses.push_back(Write(v, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 1, 0);
    w.kernels.push_back([](const std::vector<int64_t>& iter,
                           const std::vector<DenseView*>& vv) {
      BlockGemm(*vv[0], true, *vv[1], false, vv[3], iter[0] > 0);
    });
  }
  {  // s3: W = U^-1
    Statement s;
    s.name = "s3";
    s.iters = {"z"};
    s.domain = dom_1;
    s.accesses.push_back(Read(u, {{0, 0}, {0, 0}}));
    s.accesses.push_back(Write(wm, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 2, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& vv) {
      BlockInverse(*vv[0], vv[1]).CheckOK();
    });
  }
  {  // s4: beta = W V
    Statement s;
    s.name = "s4";
    s.iters = {"z"};
    s.domain = dom_1;
    s.accesses.push_back(Read(wm, {{0, 0}, {0, 0}}));
    s.accesses.push_back(Read(v, {{0, 0}, {0, 0}}));
    s.accesses.push_back(Write(beta, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 3, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& vv) {
      BlockGemm(*vv[0], false, *vv[1], false, vv[2], false);
    });
  }
  {  // s5: Yhat[k] = X[k] beta
    Statement s;
    s.name = "s5";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(x, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Read(beta, {{0, 0}, {0, 0}}));
    s.accesses.push_back(Write(yhat, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 4, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& vv) {
      BlockGemm(*vv[0], false, *vv[1], false, vv[2], false);
    });
  }
  {  // s6: E[k] = Y[k] - Yhat[k]
    Statement s;
    s.name = "s6";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(y, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Read(yhat, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Write(eres, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 5, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& vv) {
      BlockSub(*vv[0], *vv[1], vv[2]);
    });
  }
  {  // s7: R += column sums of squares of E[k]
    Statement s;
    s.name = "s7";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(eres, {{1, 0}, {0, 0}}));
    Access rr = Read(rss, {{0, 0}, {0, 0}});
    rr.guard = GuardGe(dom_k, 0, 1);
    s.accesses.push_back(std::move(rr));
    s.accesses.push_back(Write(rss, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 6, 0);
    w.kernels.push_back([](const std::vector<int64_t>& iter,
                           const std::vector<DenseView*>& vv) {
      DenseView* out = vv[2];
      if (iter[0] == 0) BlockFillConst(out, 0.0);
      // out has `scale` rows but only row 0 is meaningful; accumulate
      // column sums of squares into row 0.
      const DenseView& e = *vv[0];
      for (int64_t c = 0; c < e.cols; ++c) {
        double sum = 0.0;
        for (int64_t r = 0; r < e.rows; ++r) sum += e.At(r, c) * e.At(r, c);
        out->At(0, c) += sum;
      }
    });
  }
  w.input_arrays = {x, y};
  w.output_arrays = {beta, rss};
  return w;
}

Workload MakeJoinFilter(int64_t nr, int64_t ns, int64_t rows_per_block) {
  Workload w;
  w.name = "joinfilter";
  Program& p = w.program;
  ArrayInfo rel;
  rel.grid = {nr, 1};
  rel.block_elems = {rows_per_block, 2};  // columns: key, payload
  rel.name = "R";
  int r = p.AddArray(rel);
  rel.name = "U";
  rel.persistent = false;  // filtered intermediate
  int u = p.AddArray(rel);
  rel.name = "S";
  rel.persistent = true;
  rel.grid = {ns, 1};
  int s_arr = p.AddArray(rel);
  ArrayInfo counts;
  counts.name = "T";
  counts.grid = {nr, ns};
  counts.block_elems = {1, 1};
  int t = p.AddArray(counts);

  {  // s1: U[i] = FILTER(R[i])
    Statement st;
    st.name = "s1";
    st.iters = {"i"};
    st.domain = RectDomain({{0, nr - 1}}, {"i"});
    st.accesses.push_back(Read(r, {{1, 0}, {0, 0}}));
    st.accesses.push_back(Write(u, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(st), 0, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& v) {
      // Keep tuples with key > 0; zero out the rest (fixed-width blocks
      // keep their slots, a zero key marks a deleted tuple).
      const DenseView& in = *v[0];
      DenseView* out = v[1];
      for (int64_t row = 0; row < in.rows; ++row) {
        const bool keep = in.At(row, 0) > 0.0;
        out->At(row, 0) = keep ? in.At(row, 0) : 0.0;
        out->At(row, 1) = keep ? in.At(row, 1) : 0.0;
      }
    });
  }
  {  // s2: T[i,j] = |{ (a,b) in U[i] x S[j] : key(a) == key(b) != 0 }|
    Statement st;
    st.name = "s2";
    st.iters = {"i", "j"};
    st.domain = RectDomain({{0, nr - 1}, {0, ns - 1}}, {"i", "j"});
    st.accesses.push_back(Read(u, {{1, 0, 0}, {0, 0, 0}}));      // U[i]
    st.accesses.push_back(Read(s_arr, {{0, 1, 0}, {0, 0, 0}}));  // S[j]
    st.accesses.push_back(Write(t, {{1, 0, 0}, {0, 1, 0}}));     // T[i,j]
    p.AddStatement(std::move(st), 1, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& v) {
      const DenseView& lhs = *v[0];
      const DenseView& rhs = *v[1];
      double count = 0;
      for (int64_t a = 0; a < lhs.rows; ++a) {
        const double key = lhs.At(a, 0);
        if (key == 0.0) continue;
        for (int64_t b = 0; b < rhs.rows; ++b) {
          if (rhs.At(b, 0) == key) count += 1.0;
        }
      }
      v[2]->At(0, 0) = count;
    });
  }
  w.input_arrays = {r, s_arr};
  w.output_arrays = {t};
  return w;
}

Workload MakeExample1(int64_t n1, int64_t n2, int64_t n3, int64_t block_rows,
                      int64_t block_cols) {
  Workload w;
  w.name = "example1";
  Program& p = w.program;
  int a = p.AddArray(Matrix("A", n1, n2, block_rows, block_cols, 1));
  int b = p.AddArray(Matrix("B", n1, n2, block_rows, block_cols, 1));
  int c = p.AddArray(
      Matrix("C", n1, n2, block_rows, block_cols, 1, /*persistent=*/false));
  int d = p.AddArray(Matrix("D", n2, n3, block_cols, block_rows, 1));
  int e = p.AddArray(Matrix("E", n1, n3, block_rows, block_rows, 1));
  AddAdditionStatement(&p, a, b, c, n1, n2, /*nest=*/0, "s1");
  AddMultiplyStatement(&p, c, d, e, n1, n3, n2, /*nest=*/1, "s2");
  w.kernels = {AddKernel(), MulAccumulateKernel()};
  w.input_arrays = {a, b, d};
  w.output_arrays = {e};
  return w;
}

}  // namespace riot
