#include "ops/workload.h"

#include "core/lowering.h"
#include "exec/kernel_synthesis.h"
#include "ir/builder.h"
#include "ir/scalar_ops.h"
#include "kernels/dense.h"
#include "util/logging.h"

namespace riot {

namespace {

// Paper-style blocked matrix shape: grid dims are the paper's exactly,
// block element dims are the paper's divided by `scale` (so the plan space
// is scale-invariant).
std::vector<int64_t> Blk(int64_t block_r, int64_t block_c, int64_t scale,
                         const char* name) {
  RIOT_CHECK_EQ(block_r % scale, 0) << name << " rows not divisible by scale";
  RIOT_CHECK_EQ(block_c % scale, 0) << name << " cols not divisible by scale";
  return {block_r / scale, block_c / scale};
}

}  // namespace

Workload FromExpr(std::string name, const ExprGraph& graph,
                  const std::vector<ExprRef>& outputs,
                  const LowerOptions& lower) {
  LoweredExpr lowered = LowerExpr(graph, outputs, lower).ValueOrDie();
  Workload w;
  w.name = std::move(name);
  w.program = std::move(lowered.program);
  w.input_arrays = std::move(lowered.input_arrays);
  w.output_arrays = std::move(lowered.output_arrays);
  // Materialize the synthesized kernels so callers can wrap or replace
  // individual ones (leaving them empty would also work — the Executor
  // synthesizes on demand).
  for (const Statement& st : w.program.statements()) {
    w.kernels.push_back(SynthesizeKernel(*st.op));
  }
  return w;
}

namespace {

Workload MakeAddMulImpl(int64_t scale, int64_t n1_blocks,
                        int64_t block_rows) {
  // Paper Table 2: A,B,C 12x12 blocks of 6000x4000; D 12x1 of 4000x5000;
  // E 12x1 of 6000x5000. The "tall blocks" variant uses 8x12 of 9000x4000.
  const int64_t n1 = n1_blocks, n2 = 12, n3 = 1;
  ExprGraph g;
  ExprRef a = g.Input("A", {n1, n2}, Blk(block_rows, 4000, scale, "A"));
  ExprRef b = g.Input("B", {n1, n2}, Blk(block_rows, 4000, scale, "B"));
  ExprRef c = g.Add(a, b);
  g.SetName(c, "C");  // scratch: written to disk only if the plan must
  ExprRef d = g.Input("D", {n2, n3}, Blk(4000, 5000, scale, "D"));
  ExprRef e = g.Gemm(c, d);
  g.SetName(e, "E");
  return FromExpr("addmul", g, {e});
}

}  // namespace

Workload MakeAddMul(int64_t scale) { return MakeAddMulImpl(scale, 12, 6000); }

Workload MakeAddMulTall(int64_t scale) {
  Workload w = MakeAddMulImpl(scale, 8, 9000);
  w.name = "addmul_tall";
  return w;
}

Workload MakeAddMulBlocked(int64_t block_rows, int64_t scale) {
  const int64_t total_rows = 72000;
  RIOT_CHECK_EQ(total_rows % block_rows, 0)
      << "block_rows must divide " << total_rows;
  Workload w = MakeAddMulImpl(scale, total_rows / block_rows, block_rows);
  w.name = "addmul_b" + std::to_string(block_rows);
  return w;
}

Workload MakeTwoMatMul(TwoMatMulConfig config, int64_t scale) {
  ExprGraph g;
  ExprRef a, b, c, d, e;
  if (config == TwoMatMulConfig::kConfigA) {
    // Table 3 Config A: A 6x6 of 8000x7000; B,D 6x10 of 7000x3000;
    // C,E 6x10 of 8000x3000.
    a = g.Input("A", {6, 6}, Blk(8000, 7000, scale, "A"));
    b = g.Input("B", {6, 10}, Blk(7000, 3000, scale, "B"));
    c = g.Gemm(a, b);
    d = g.Input("D", {6, 10}, Blk(7000, 3000, scale, "D"));
    e = g.Gemm(a, d);
  } else {
    // Table 3 Config B: A 18x6 of 2000x8000; B 6x4 of 8000x6000;
    // C 18x4 of 2000x6000; D 6x4 of 8000x7000; E 18x4 of 2000x7000.
    a = g.Input("A", {18, 6}, Blk(2000, 8000, scale, "A"));
    b = g.Input("B", {6, 4}, Blk(8000, 6000, scale, "B"));
    c = g.Gemm(a, b);
    d = g.Input("D", {6, 4}, Blk(8000, 7000, scale, "D"));
    e = g.Gemm(a, d);
  }
  g.SetName(c, "C");
  g.SetName(e, "E");
  return FromExpr(
      config == TwoMatMulConfig::kConfigA ? "twomm_a" : "twomm_b", g,
      {c, e});
}

Workload MakeLinReg(int64_t scale) {
  // Table 4: X 25x1 blocks of 60000x4000; Y, Yhat, E 25x1 of 60000x400;
  // U, W 1x1 of 4000x4000; V, beta 1x1 of 4000x400; RSS 1x1 of 1x400.
  const int64_t nb = 25;
  ExprGraph g;
  ExprRef x = g.Input("X", {nb, 1}, Blk(60000, 4000, scale, "X"));
  ExprRef y = g.Input("Y", {nb, 1}, Blk(60000, 400, scale, "Y"));
  ExprRef u = g.Gemm(x, x, {true});  // s1: U += X[k]' X[k]
  ExprRef v = g.Gemm(x, y, {true});  // s2: V += X[k]' Y[k]
  ExprRef w = g.Inverse(u);                      // s3: W = U^-1
  ExprRef beta = g.Gemm(w, v);                   // s4: beta = W V
  ExprRef yhat = g.Gemm(x, beta);                // s5: Yhat[k] = X[k] beta
  ExprRef e = g.Sub(y, yhat);                    // s6: E[k] = Y[k] - Yhat[k]
  ExprRef rss = g.SumSquares(e);                 // s7: R += colsumsq(E[k])
  g.SetName(u, "U");
  g.SetName(v, "V");
  g.SetName(w, "W");
  g.SetName(beta, "Bh");
  g.SetName(yhat, "Yh");
  g.SetName(e, "Er");
  g.SetName(rss, "R");
  // The paper's Table 4 keeps the small model matrices U, V, W on disk
  // (only the tall Yhat/E temporaries are elidable); preserve that.
  g.Keep(u);
  g.Keep(v);
  g.Keep(w);
  return FromExpr("linreg", g, {beta, rss});
}

Workload MakeExample1(int64_t n1, int64_t n2, int64_t n3, int64_t block_rows,
                      int64_t block_cols) {
  ExprGraph g;
  ExprRef a = g.Input("A", {n1, n2}, {block_rows, block_cols});
  ExprRef b = g.Input("B", {n1, n2}, {block_rows, block_cols});
  ExprRef c = g.Add(a, b);
  g.SetName(c, "C");
  ExprRef d = g.Input("D", {n2, n3}, {block_cols, block_rows});
  ExprRef e = g.Gemm(c, d);
  g.SetName(e, "E");
  return FromExpr("example1", g, {e});
}

Workload MakeCovariance(int64_t scale, bool fuse) {
  // X: 16x1 blocks of 30000x3000; O: the all-ones column (16x1 blocks of
  // 30000x1). G = X'X and M = 1'X (column sums) are accumulated across
  // X's block rows; both — and the small M'M product — are scratch.
  const int64_t nb = 16;
  const double n = static_cast<double>(nb) *
                   static_cast<double>(30000 / scale);
  ExprGraph g;
  ExprRef x = g.Input("X", {nb, 1}, Blk(30000, 3000, scale, "X"));
  ExprRef ones = g.Input("O", {nb, 1}, Blk(30000, scale, scale, "O"));
  ExprRef gram = g.Gemm(x, x, {true});          // G = X'X
  ExprRef m = g.Gemm(ones, x, {true});          // M = 1'X
  ExprRef mm = g.Gemm(m, m, {true, false, 1.0 / n});
  ExprRef centered = g.Sub(gram, mm);                // G - (1/n) M'M
  ExprRef cov = g.Scale(centered, 1.0 / (n - 1.0));
  g.SetName(gram, "G");
  g.SetName(m, "M");
  g.SetName(cov, "Cov");
  LowerOptions lower;
  lower.fuse = fuse;
  Workload w = FromExpr("covariance", g, {cov}, lower);
  // O is the all-ones column; look it up by name (array ids are a
  // lowering detail callers must not hard-code).
  for (const ArrayInfo& arr : w.program.arrays()) {
    if (arr.name == "O") w.const_input_values[arr.id] = 1.0;
  }
  RIOT_CHECK_EQ(w.const_input_values.size(), 1u);
  return w;
}

Workload MakeRidge(int64_t scale) {
  // beta_l = (X'X + lambda_l I)^-1 X'y for two lambdas. The factory
  // deliberately spells out the full formula per lambda: hash-consing
  // dedups the repeated X'X and X'y subexpressions, so each is computed
  // (and materialized) once — cse_hits() == 2 by construction.
  const int64_t nb = 16;
  ExprGraph g;
  ExprRef x = g.Input("X", {nb, 1}, Blk(30000, 3000, scale, "X"));
  ExprRef y = g.Input("Y", {nb, 1}, Blk(30000, 400, scale, "Y"));
  const double lambdas[2] = {2.5, 9.0};
  std::vector<ExprRef> betas;
  for (int li = 0; li < 2; ++li) {
    ExprRef gram = g.Gemm(x, x, {true});  // CSE after 1st lambda
    ExprRef v = g.Gemm(x, y, {true});     // CSE after 1st lambda
    ExprRef regularized = g.AddDiag(gram, lambdas[li]);
    ExprRef winv = g.Inverse(regularized);
    betas.push_back(g.Gemm(winv, v));
    g.SetName(gram, "G");
    g.SetName(v, "V");
    g.SetName(regularized, li == 0 ? "Ra" : "Rb");
    g.SetName(winv, li == 0 ? "Wa" : "Wb");
  }
  g.SetName(betas[0], "Ba");
  g.SetName(betas[1], "Bb");
  RIOT_CHECK_EQ(g.cse_hits(), 2);
  Workload w = FromExpr("ridge", g, betas);
  return w;
}

ExprRef BuildElementwiseChain(ExprGraph* g, int64_t scale) {
  // Every constant is a small integer and every op is exact over integers
  // (relu/max compare, never round), so integer-filled inputs stay exactly
  // representable and the Rational differential oracle can demand
  // bit-identical doubles from both the fused and unfused lowerings.
  ExprRef x = g->Input("X", {8, 2}, Blk(24000, 3000, scale, "chain"));
  ExprRef y = g->Input("Y", {8, 2}, Blk(24000, 3000, scale, "chain"));
  ExprRef t = g->Add(x, y);
  t = g->Scale(t, 2.0);
  t = g->Sub(t, y);
  t = g->Map(t, kScalarRelu);
  t = g->Add(t, x);
  t = g->Zip(t, y, kScalarMax);
  t = g->Scale(t, 3.0);
  g->SetName(t, "Z");
  return t;
}

Workload MakeElementwiseChain(int64_t scale, bool fuse) {
  ExprGraph g;
  ExprRef z = BuildElementwiseChain(&g, scale);
  LowerOptions lower;
  lower.fuse = fuse;
  return FromExpr(fuse ? "chain" : "chain_unfused", g, {z}, lower);
}

Workload MakeJoinFilter(int64_t nr, int64_t ns, int64_t rows_per_block) {
  Workload w;
  w.name = "joinfilter";
  Program& p = w.program;
  ArrayInfo rel;
  rel.grid = {nr, 1};
  rel.block_elems = {rows_per_block, 2};  // columns: key, payload
  rel.name = "R";
  int r = p.AddArray(rel);
  rel.name = "U";
  rel.persistent = false;  // filtered intermediate
  int u = p.AddArray(rel);
  rel.name = "S";
  rel.persistent = true;
  rel.grid = {ns, 1};
  int s_arr = p.AddArray(rel);
  ArrayInfo counts;
  counts.name = "T";
  counts.grid = {nr, ns};
  counts.block_elems = {1, 1};
  int t = p.AddArray(counts);

  {  // s1: U[i] = FILTER(R[i])
    Statement st;
    st.name = "s1";
    st.iters = {"i"};
    st.domain = RectDomain({{0, nr - 1}}, {"i"});
    st.accesses.push_back(Read(r, {{1, 0}, {0, 0}}));
    st.accesses.push_back(Write(u, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(st), 0, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& v) {
      // Keep tuples with key > 0; zero out the rest (fixed-width blocks
      // keep their slots, a zero key marks a deleted tuple).
      const DenseView& in = *v[0];
      DenseView* out = v[1];
      for (int64_t row = 0; row < in.rows; ++row) {
        const bool keep = in.At(row, 0) > 0.0;
        out->At(row, 0) = keep ? in.At(row, 0) : 0.0;
        out->At(row, 1) = keep ? in.At(row, 1) : 0.0;
      }
    });
  }
  {  // s2: T[i,j] = |{ (a,b) in U[i] x S[j] : key(a) == key(b) != 0 }|
    Statement st;
    st.name = "s2";
    st.iters = {"i", "j"};
    st.domain = RectDomain({{0, nr - 1}, {0, ns - 1}}, {"i", "j"});
    st.accesses.push_back(Read(u, {{1, 0, 0}, {0, 0, 0}}));      // U[i]
    st.accesses.push_back(Read(s_arr, {{0, 1, 0}, {0, 0, 0}}));  // S[j]
    st.accesses.push_back(Write(t, {{1, 0, 0}, {0, 1, 0}}));     // T[i,j]
    p.AddStatement(std::move(st), 1, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& v) {
      const DenseView& lhs = *v[0];
      const DenseView& rhs = *v[1];
      double count = 0;
      for (int64_t a = 0; a < lhs.rows; ++a) {
        const double key = lhs.At(a, 0);
        if (key == 0.0) continue;
        for (int64_t b = 0; b < rhs.rows; ++b) {
          if (rhs.At(b, 0) == key) count += 1.0;
        }
      }
      v[2]->At(0, 0) = count;
    });
  }
  w.input_arrays = {r, s_arr};
  w.output_arrays = {t};
  return w;
}

}  // namespace riot
