// Runtime helpers: open one block store per array of a workload, initialize
// input arrays with deterministic pseudo-random data, and build executors.
#ifndef RIOTSHARE_OPS_RUNTIME_H_
#define RIOTSHARE_OPS_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "ops/workload.h"
#include "storage/block_store.h"
#include "storage/env.h"
#include "util/status.h"

namespace riot {

struct Runtime {
  std::vector<std::unique_ptr<BlockStore>> stores;  // by array id

  std::vector<BlockStore*> raw() const {
    std::vector<BlockStore*> r;
    for (const auto& s : stores) r.push_back(s.get());
    return r;
  }
};

/// \brief Opens (creating) one store per array under `dir` (path prefix).
Result<Runtime> OpenStores(Env* env, const Program& program,
                           const std::string& dir,
                           StorageFormat format = StorageFormat::kDaf);

/// \brief Fills each input array with seeded pseudo-random blocks.
Status InitInputs(const Workload& workload, const Runtime& runtime,
                  uint64_t seed);

/// \brief Zero-fills an array (used to reset outputs between plan runs).
Status ZeroArray(const ArrayInfo& info, BlockStore* store);

}  // namespace riot

#endif  // RIOTSHARE_OPS_RUNTIME_H_
