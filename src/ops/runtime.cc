#include "ops/runtime.h"

#include "kernels/dense.h"
#include "util/logging.h"

namespace riot {

Result<Runtime> OpenStores(Env* env, const Program& program,
                           const std::string& dir, StorageFormat format) {
  Runtime rt;
  for (const auto& arr : program.arrays()) {
    auto store = OpenBlockStore(env, dir + "/" + arr.name + ".blk", format,
                                arr.BlockBytes(), arr.NumBlocks());
    if (!store.ok()) return store.status();
    rt.stores.push_back(std::move(store).ValueOrDie());
  }
  return rt;
}

Status InitInputs(const Workload& workload, const Runtime& runtime,
                  uint64_t seed) {
  for (int array_id : workload.input_arrays) {
    const ArrayInfo& arr = workload.program.array(array_id);
    const auto constant = workload.const_input_values.find(array_id);
    std::vector<double> buf(static_cast<size_t>(arr.ElemsPerBlock()));
    for (int64_t blk = 0; blk < arr.NumBlocks(); ++blk) {
      DenseView v{buf.data(), arr.block_elems[0], arr.block_elems[1]};
      if (constant != workload.const_input_values.end()) {
        BlockFillConst(&v, constant->second);
      } else {
        BlockFillRandom(&v, seed * 1000003 +
                                static_cast<uint64_t>(array_id) * 101 +
                                static_cast<uint64_t>(blk));
      }
      RIOT_RETURN_NOT_OK(
          runtime.stores[static_cast<size_t>(array_id)]->WriteBlock(
              blk, buf.data()));
    }
  }
  return Status::OK();
}

Status ZeroArray(const ArrayInfo& info, BlockStore* store) {
  std::vector<double> buf(static_cast<size_t>(info.ElemsPerBlock()), 0.0);
  for (int64_t blk = 0; blk < info.NumBlocks(); ++blk) {
    RIOT_RETURN_NOT_OK(store->WriteBlock(blk, buf.data()));
  }
  return Status::OK();
}

}  // namespace riot
