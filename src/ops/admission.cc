#include "ops/admission.h"

#include "util/logging.h"

namespace riot {

namespace {

class FifoPolicy : public AdmissionPolicy {
 public:
  AdmissionPolicyKind kind() const override {
    return AdmissionPolicyKind::kFifo;
  }
  const char* name() const override { return "fifo"; }
  int PickNext(const std::vector<AdmissionCandidate>& waiting,
               int64_t available_bytes) const override {
    // Strict arrival order: the head either fits now or everyone waits.
    // This is what makes parking livelock-free — the head needs only
    // completions to free reservation, never the progress of sessions
    // queued behind it.
    if (waiting.empty()) return -1;
    return waiting[0].footprint_bytes <= available_bytes ? 0 : -1;
  }
};

/// Shared shape of the two reordering policies: serve the oldest waiter
/// FIFO-style once it ages past the starvation bound; otherwise admit the
/// fitting waiter with the smallest key (ties broken by arrival order).
class KeyedPolicy : public AdmissionPolicy {
 public:
  explicit KeyedPolicy(double aging_seconds) : aging_seconds_(aging_seconds) {}
  int PickNext(const std::vector<AdmissionCandidate>& waiting,
               int64_t available_bytes) const override {
    if (waiting.empty()) return -1;
    if (waiting[0].waited_seconds >= aging_seconds_) {
      // Starvation bound: the oldest waiter regains FIFO priority; nothing
      // overtakes it while it waits for capacity, so its total wait is
      // bounded by aging + the completion of already-running sessions.
      return waiting[0].footprint_bytes <= available_bytes ? 0 : -1;
    }
    int best = -1;
    for (size_t i = 0; i < waiting.size(); ++i) {
      if (waiting[i].footprint_bytes > available_bytes) continue;
      if (best < 0 ||
          Key(waiting[i]) < Key(waiting[static_cast<size_t>(best)])) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }

 protected:
  virtual double Key(const AdmissionCandidate& c) const = 0;

 private:
  const double aging_seconds_;
};

class SmallestFootprintPolicy : public KeyedPolicy {
 public:
  using KeyedPolicy::KeyedPolicy;
  AdmissionPolicyKind kind() const override {
    return AdmissionPolicyKind::kSmallestFootprint;
  }
  const char* name() const override { return "smallest_footprint"; }

 protected:
  double Key(const AdmissionCandidate& c) const override {
    return static_cast<double>(c.footprint_bytes);
  }
};

class ShortestWorkPolicy : public KeyedPolicy {
 public:
  using KeyedPolicy::KeyedPolicy;
  AdmissionPolicyKind kind() const override {
    return AdmissionPolicyKind::kShortestWork;
  }
  const char* name() const override { return "shortest_work"; }

 protected:
  double Key(const AdmissionCandidate& c) const override {
    return c.expected_work_seconds;
  }
};

}  // namespace

std::unique_ptr<AdmissionPolicy> MakeAdmissionPolicy(AdmissionPolicyKind kind,
                                                     double aging_seconds) {
  switch (kind) {
    case AdmissionPolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case AdmissionPolicyKind::kSmallestFootprint:
      return std::make_unique<SmallestFootprintPolicy>(aging_seconds);
    case AdmissionPolicyKind::kShortestWork:
      return std::make_unique<ShortestWorkPolicy>(aging_seconds);
  }
  RIOT_CHECK(false) << "unknown AdmissionPolicyKind";
  return nullptr;
}

const char* AdmissionPolicyName(AdmissionPolicyKind kind) {
  switch (kind) {
    case AdmissionPolicyKind::kFifo:
      return "fifo";
    case AdmissionPolicyKind::kSmallestFootprint:
      return "smallest_footprint";
    case AdmissionPolicyKind::kShortestWork:
      return "shortest_work";
  }
  return "?";
}

}  // namespace riot
