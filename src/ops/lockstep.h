// Deterministic kernel interleaving for concurrent session runs.
//
// Real multi-tenant executions interleave pool operations wherever the OS
// schedules them, so pool counters (reads, evictions) are not reproducible
// run to run — fine for production, useless for a differential oracle. A
// LockstepGate serializes N sessions' *kernels* into one caller-chosen
// global order (`turns`: the session index per kernel slot), turning the
// whole multi-tenant run into a deterministic sequence of pool-op "turn
// units" that core/cost_model's SimulateMultiTenantCache replays exactly:
//
//   * Each session's statement kernels are wrapped with EnterKernel(s):
//     the call releases the token the session has held since its previous
//     kernel entry, then blocks until the global turn order reaches this
//     session again. The token is therefore held across [kernel i,
//     write-out i, unpin i, clock advance i+1, fetches i+1] — every pool
//     op a depth-0 serial session performs between two kernel entries —
//     so turns never overlap.
//   * Spawns are serialized: the caller spawns session s, calls
//     AwaitArrival(s) (returns once s blocks at its first kernel entry,
//     i.e. after its bind/advance(0)/fetch(0) prologue ran), and only
//     then spawns s+1 — prologue pool ops execute in session order.
//   * Start() opens the gate; until then every session waits at its first
//     kernel entry.
//   * Finish(s) releases s's final token after Executor::Run returns, so
//     a session's epilogue (retention release, divergent-write drop,
//     unbind, account detach) runs under its last turn.
//
// The gate only schedules; it touches no pool state. Sessions must run
// the serial engine at pipeline depth 0 with budgets that never park — a
// parked session holds its turn forever (the run deadlocks by design: a
// lockstep schedule with parking is not the schedule the caller asked
// for).
#ifndef RIOTSHARE_OPS_LOCKSTEP_H_
#define RIOTSHARE_OPS_LOCKSTEP_H_

#include <cstddef>
#include <vector>

#include "util/thread_annotations.h"

namespace riot {

class LockstepGate {
 public:
  /// `turns[k]` is the session whose k-th global kernel slot it is; each
  /// session must appear exactly its scheduled-instance count of times.
  LockstepGate(int sessions, std::vector<int> turns);

  /// Blocks until session `s` first blocks inside EnterKernel (its
  /// prologue pool ops are complete). Call between spawning s and s+1.
  void AwaitArrival(int s) EXCLUDES(mu_);

  /// Opens the gate: the first turn's session may run. Call after every
  /// session has arrived.
  void Start() EXCLUDES(mu_);

  /// Kernel-entry hook for session `s`: releases the token held since the
  /// session's previous kernel, waits for the session's next turn, takes
  /// the token. Wrap each statement kernel so this runs first.
  void EnterKernel(int s) EXCLUDES(mu_);

  /// Releases session `s`'s final token (no-op if it holds none). Call
  /// after the session's Executor::Run returned.
  void Finish(int s) EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar cv_;
  std::vector<int> turns_ GUARDED_BY(mu_);
  std::vector<bool> arrived_ GUARDED_BY(mu_);
  size_t cursor_ GUARDED_BY(mu_) = 0;  // next kernel slot to grant
  int holder_ GUARDED_BY(mu_) = -1;    // session holding the token; -1 none
  bool started_ GUARDED_BY(mu_) = false;
};

}  // namespace riot

#endif  // RIOTSHARE_OPS_LOCKSTEP_H_
