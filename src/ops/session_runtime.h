// SessionRuntime: a multi-tenant execution layer that admits N concurrent
// program executions ("sessions") over ONE shared BufferPool and one
// shared IoPool — the leap from a per-run benchmark harness to a server
// runtime serving many programs against bounded buffer memory.
//
// What the runtime adds on top of a bare Executor with a shared_pool:
//
//   * Admission control — a session declares its plan footprint (the cost
//     model's exact peak requirement by default) and is admitted only
//     when the sum of admitted footprints fits the pool cap. Sessions
//     that do not fit PARK until running sessions complete (no thrashing,
//     no livelock: every completion re-examines the queue). The *order*
//     of admission is a pluggable AdmissionPolicy (ops/admission.h):
//     strict FIFO by default, or footprint-/expected-work-aware
//     small-job-first with an aging starvation bound for latency SLOs.
//     A footprint that can never fit is rejected up front with
//     kResourceExhausted.
//
//   * Per-session budgets — each admitted session's pinned+retained bytes
//     are charged to its PoolAccount, capped at its declared footprint.
//     Because the sum of admitted budgets never exceeds the cap, one
//     tenant can never starve another's required frames; transient
//     pressure (another tenant's prefetch lookahead) parks-and-retries
//     inside the executor instead of failing.
//
//   * Cross-session read dedup — sessions name their arrays into a
//     pool-global id space keyed by BlockStore, so two sessions reading
//     the same input store share frames: a block resident from one
//     session's read is served to the other from memory, and two
//     concurrent misses on one block coalesce on a single disk read
//     (BufferPool's load latch).
//
//   * Fair-share I/O — prefetch reads are submitted on per-session IoPool
//     channels and dispatched round-robin, so one session's deep
//     lookahead cannot starve another's.
//
//   * Stats — per-session ExecStats (+ budget peaks and park counts) and
//     aggregate RuntimeStats across the runtime's lifetime.
//
// Run() executes on the caller's thread and is safe to call from many
// threads at once; the runtime serializes only admission, not execution.
#ifndef RIOTSHARE_OPS_SESSION_RUNTIME_H_
#define RIOTSHARE_OPS_SESSION_RUNTIME_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "analysis/coaccess.h"
#include "core/cost_model.h"
#include "exec/executor.h"
#include "ir/program.h"
#include "ir/schedule.h"
#include "ops/admission.h"
#include "storage/buffer_pool.h"
#include "storage/io_pool.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace riot {

struct SessionRuntimeOptions {
  /// Shared pool cap carved into per-session budgets by admission.
  int64_t pool_cap_bytes = int64_t{64} << 20;
  /// Replacement policy of the shared pool. ScheduleOpt is exact Belady
  /// with one session bound and merges every concurrent session's future
  /// uses into one normalized clock with several (see replacement.h), so
  /// it now beats LRU under multi-tenancy too; LRU remains the cheapest
  /// default for workloads that never rebind the same blocks.
  ReplacementKind replacement = ReplacementKind::kLru;
  /// Shared I/O workers servicing every session's prefetch traffic.
  int io_threads = 2;
  /// Pool-wide prefetch lookahead budget; 0 = pool_cap_bytes / 8.
  int64_t prefetch_budget_bytes = 0;
  /// Route dirty-eviction spills through the shared I/O workers.
  bool writeback_async = true;
  /// Safety margin added to every session's declared/derived footprint
  /// before admission (headroom for alignment and small plan errors).
  int64_t footprint_margin_bytes = 0;
  /// Seconds a starved fetch inside a session parks before giving up.
  double park_timeout_seconds = 10.0;
  /// Admission-queue ordering (ops/admission.h). kFifo is the historical
  /// strict arrival order; the SLO-aware policies overtake a parked whale
  /// with mice that fit now.
  AdmissionPolicyKind admission = AdmissionPolicyKind::kFifo;
  /// Starvation bound for the non-FIFO policies: a waiter older than this
  /// regains FIFO priority (nothing overtakes it further).
  double admission_aging_seconds = 2.0;
  /// Cost-model options used to derive footprints and expected work for
  /// specs that do not declare them (e.g. calibrated compute rates so
  /// shortest-work ranks by io + compute).
  CostModelOptions cost;
};

/// \brief One program execution request. The spec's pointers must outlive
/// the Run() call; `stores` and `kernels` are indexed by array id /
/// statement id exactly as for Executor.
struct SessionSpec {
  const Program* program = nullptr;
  const Schedule* schedule = nullptr;
  std::vector<const CoAccess*> realized;
  std::vector<BlockStore*> stores;
  const std::vector<StatementKernel>* kernels = nullptr;
  /// Exec knobs honored per session: mode, strict_sharing, pipeline_depth
  /// (prefetch on the shared IoPool). shared_pool / session /
  /// memory_cap_bytes / exec_threads are owned by the runtime, as are the
  /// pool-wide knobs (prefetch budget, write-behind —
  /// SessionRuntimeOptions::writeback_async; the per-run
  /// ExecOptions::writeback_async is ignored under a session).
  ExecOptions exec;
  /// Peak pinned+retained bytes the plan needs — the session's budget and
  /// admission reservation. 0 = derive exactly from the cost model.
  int64_t footprint_bytes = 0;
  /// Modeled execution seconds (the cost model's TotalSeconds()) that the
  /// shortest-expected-work admission policy ranks by. 0 = derive from
  /// the cost model when that policy is active (callers that run many
  /// identical jobs should pre-compute it once).
  double expected_work_seconds = 0;
};

struct SessionStats {
  int64_t session_id = 0;
  int64_t budget_bytes = 0;
  /// Peak bytes actually charged to the session — never exceeds
  /// budget_bytes (asserted by the stress suite).
  int64_t peak_charged_bytes = 0;
  int64_t budget_rejections = 0;
  /// Time spent parked in the admission queue before starting.
  double admission_wait_seconds = 0.0;
  /// True when the session had to wait for capacity before admission.
  bool parked_for_admission = false;
  ExecStats exec;
};

/// \brief Aggregate counters across the runtime's lifetime (one consistent
/// copy under the runtime lock).
struct RuntimeStats {
  int64_t sessions_completed = 0;
  int64_t sessions_failed = 0;
  int64_t sessions_rejected = 0;   // footprint can never fit the cap
  int64_t sessions_parked = 0;     // waited in the admission queue
  int64_t peak_concurrent_sessions = 0;
  int64_t peak_reserved_bytes = 0;
  double admission_wait_seconds = 0.0;
  // Sums of the corresponding per-session ExecStats fields.
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t block_reads = 0;
  int64_t block_writes = 0;
  int64_t prefetch_hits = 0;
  int64_t policy_saved_reads = 0;
  int64_t session_parks = 0;
  double io_seconds = 0.0;
  double compute_seconds = 0.0;
  double wall_seconds = 0.0;  // summed across sessions (not elapsed time)
  /// Pool-global counters snapshotted at stats() time: evictions and
  /// cross-session effects (coalesced loads, policy-saved reads) that no
  /// per-session ExecStats sum can attribute.
  BufferPoolStats pool;
};

class SessionRuntime {
 public:
  explicit SessionRuntime(SessionRuntimeOptions options = {});
  ~SessionRuntime();

  SessionRuntime(const SessionRuntime&) = delete;
  SessionRuntime& operator=(const SessionRuntime&) = delete;

  /// Executes one session on the calling thread: derives/validates the
  /// footprint, waits for admission, runs the plan against the shared
  /// pool, releases the reservation, and returns the session's stats.
  /// Thread-safe; blocks while parked. Fails fast with kResourceExhausted
  /// when the footprint cannot fit the pool cap even alone.
  Result<SessionStats> Run(const SessionSpec& spec) EXCLUDES(mu_);

  /// Drops the shared pool's frames for `store` and retires its pool id.
  /// MUST be called before destroying a BlockStore that any session used:
  /// a later store allocated at the same address would otherwise alias
  /// the stale cache. Fails if frames of the store are still in use.
  Status ReleaseStore(BlockStore* store) EXCLUDES(mu_);

  RuntimeStats stats() const EXCLUDES(mu_);
  BufferPool* pool() { return &pool_; }
  IoPool* io() { return io_.get(); }

 private:
  /// One parked Run() call. Queued in arrival order; the waiter's thread
  /// sleeps on admit_cv_ until AdmitLocked marks it admitted. Fields
  /// (notably `admitted`) are written by AdmitLocked and read by the
  /// parked waiter, both under mu_; a nested type cannot name the outer
  /// mutex, so the struct carries no annotations.
  struct Waiter {
    int64_t ticket = 0;
    int64_t footprint_bytes = 0;
    double expected_work_seconds = 0;
    std::chrono::steady_clock::time_point enqueued;
    bool admitted = false;
  };

  int PoolIdFor(BlockStore* store) REQUIRES(mu_);  // registry: same
                                                   // store, same id
  /// Runs the admission policy over the parked waiters until it admits no
  /// one, reserving footprints and marking waiters admitted. Called on
  /// every arrival and every completion, under mu_; wakes admitted
  /// waiters via admit_cv_.
  void AdmitLocked() REQUIRES(mu_);

  const SessionRuntimeOptions opts_;
  const std::unique_ptr<AdmissionPolicy> admission_;
  BufferPool pool_;
  std::unique_ptr<IoPool> io_;

  /// Lock order: pool_'s internal mutex is NEVER acquired while mu_ is
  /// held (executors hold pool state while Run() re-enters mu_ to merge
  /// stats; nesting the other way here would create an inversion window).
  /// stats() and ReleaseStore() both stage their pool calls outside mu_.
  mutable Mutex mu_;
  CondVar admit_cv_;
  std::map<BlockStore*, int> pool_ids_ GUARDED_BY(mu_);
  int next_pool_id_ GUARDED_BY(mu_) = 0;
  // Arrival order; entries live on the waiting Run() call's stack.
  std::deque<Waiter*> admit_queue_ GUARDED_BY(mu_);
  int64_t next_ticket_ GUARDED_BY(mu_) = 0;
  int64_t reserved_bytes_ GUARDED_BY(mu_) = 0;
  int64_t running_sessions_ GUARDED_BY(mu_) = 0;
  RuntimeStats stats_ GUARDED_BY(mu_);
};

}  // namespace riot

#endif  // RIOTSHARE_OPS_SESSION_RUNTIME_H_
