#include "serve/workload_gen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace riot {
namespace serve {

double FastZipf::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += std::pow(1.0 / i, theta);
  return sum;
}

FastZipf::FastZipf(uint64_t n, double theta) : n_(n), theta_(theta) {
  RIOT_CHECK_GT(n, 0u);
  RIOT_CHECK(theta >= 0 && theta < 1) << "FastZipf needs theta in [0, 1)";
  zetan_ = Zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
         (1.0 - Zeta(2, theta) / zetan_);
}

uint64_t FastZipf::Sample(Rng& rng) const {
  // Gray et al. constant-time inversion (the YCSB generator): the first
  // two ranks are handled exactly, the tail through the eta interpolation.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      n_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

OpenLoopGenerator::OpenLoopGenerator(const TrafficOptions& options)
    : opts_(options),
      rng_(options.seed),
      zipf_(static_cast<uint64_t>(std::max(1, options.num_datasets)),
            options.zipf_theta) {
  RIOT_CHECK_GT(opts_.offered_jobs_per_sec, 0.0);
}

JobSpec OpenLoopGenerator::Next() {
  JobSpec job;
  job.id = next_id_++;
  job.dataset = static_cast<int>(zipf_.Sample(rng_));
  const double r = rng_.NextDouble();
  if (r < opts_.whale_fraction) {
    job.kind = JobKind::kWhale;
  } else if (rng_.NextDouble() < opts_.write_fraction) {
    job.kind = JobKind::kWrite;
  } else {
    job.kind = JobKind::kRead;
  }
  const double mean_gap = 1.0 / opts_.offered_jobs_per_sec;
  if (opts_.poisson_arrivals) {
    // Exponential inter-arrival; clamp u away from 0 so -log stays finite.
    const double u = std::max(rng_.NextDouble(), 1e-12);
    clock_seconds_ += -std::log(u) * mean_gap;
  } else {
    clock_seconds_ += mean_gap;
  }
  job.arrival_seconds = clock_seconds_;
  return job;
}

std::vector<JobSpec> OpenLoopGenerator::Take(int64_t count) {
  std::vector<JobSpec> out;
  out.reserve(static_cast<size_t>(std::max<int64_t>(count, 0)));
  for (int64_t i = 0; i < count; ++i) out.push_back(Next());
  return out;
}

}  // namespace serve
}  // namespace riot
