#include "serve/server.h"

#include <utility>

#include "util/logging.h"

namespace riot {
namespace serve {

namespace {
double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}
}  // namespace

Server::Server(const Catalog* catalog, const ServerOptions& options)
    : catalog_(catalog), opts_(options), runtime_(options.runtime) {
  RIOT_CHECK_GT(opts_.worker_threads, 0);
  RIOT_CHECK(opts_.worker_threads <= catalog_->num_slots())
      << "more workers than catalog slots: two workers would share one "
         "slot's output stores";
  workers_.reserve(static_cast<size_t>(opts_.worker_threads));
  for (int i = 0; i < opts_.worker_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Server::~Server() { Shutdown(); }

void Server::Submit(const JobSpec& job) {
  metrics_.OnSubmit();
  {
    MutexLock lock(&mu_);
    queue_.push_back(Queued{job, std::chrono::steady_clock::now()});
  }
  work_cv_.NotifyOne();
}

void Server::Drain() {
  UniqueMutexLock lock(&mu_);
  while (!(queue_.empty() && in_flight_ == 0)) drain_cv_.Wait(lock);
}

void Server::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (stop_) return;
    stop_ = true;
    // Dropped jobs must not strand a concurrent Drain(): its predicate
    // watches queue_ and in_flight_, and nothing would ever empty the
    // queue once the workers stop.
    queue_.clear();
  }
  work_cv_.NotifyAll();
  drain_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void Server::WorkerLoop(int slot) {
  for (;;) {
    Queued item;
    {
      UniqueMutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) work_cv_.Wait(lock);
      if (stop_) return;
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    const auto picked = std::chrono::steady_clock::now();
    const SessionSpec spec = catalog_->Bind(item.job, slot);
    Result<SessionStats> result = runtime_.Run(spec);
    const auto done = std::chrono::steady_clock::now();

    double admission_wait = 0, exec_wall = 0;
    if (result.ok()) {
      admission_wait = result->admission_wait_seconds;
      exec_wall = result->exec.wall_seconds;
    }
    metrics_.OnDone(result.ok(), item.job.kind == JobKind::kWhale,
                    Seconds(done - item.submitted),
                    Seconds(picked - item.submitted), admission_wait,
                    exec_wall);

    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.NotifyAll();
    }
  }
}

}  // namespace serve
}  // namespace riot
