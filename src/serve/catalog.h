// The serving catalog: the datasets and job templates behind the traffic
// the open-loop generator emits. Three expression-built templates run
// against Zipf-popular datasets:
//
//   * read mouse  — r = SumSquares(X + Y): scans the dataset, writes one
//                   tiny result row (read-heavy OLAP probe),
//   * write mouse — W = X + Y: materializes a full-size derived array
//                   (write-heavy),
//   * whale       — E = (XW + YW) ZW over much larger arrays: the
//                   heavyweight analytical job whose footprint and
//                   runtime dwarf the mice (the head-of-line hazard).
//
// Dataset *inputs* are opened once and shared by every concurrent job —
// the hot-array sharing (cross-session frame dedup, budget transfer) the
// serving layer exists to exercise. Outputs and scratch temporaries are
// private per worker slot (slot s reuses its output stores across jobs),
// so concurrent identical jobs never write one buffer — results are
// throwaway, isolation is what matters. Footprints and expected work per
// template are computed once from the cost model and stamped onto every
// SessionSpec, so admission decisions cost nothing per job.
#ifndef RIOTSHARE_SERVE_CATALOG_H_
#define RIOTSHARE_SERVE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cost_model.h"
#include "ops/runtime.h"
#include "ops/session_runtime.h"
#include "ops/workload.h"
#include "serve/workload_gen.h"
#include "storage/env.h"
#include "util/status.h"

namespace riot {
namespace serve {

struct CatalogOptions {
  int num_datasets = 4;
  /// Independent worker slots (>= the server's worker threads): slot s
  /// owns the non-input stores job s-of-the-moment writes.
  int num_slots = 4;
  /// Mouse arrays: mouse_grid x mouse_grid blocks of mouse_block^2 doubles.
  int64_t mouse_grid = 2;
  int64_t mouse_block = 64;
  /// Whale arrays, same shape parameters.
  int64_t whale_grid = 4;
  int64_t whale_block = 128;
  uint64_t seed = 7;
  /// Prices the templates' footprints and expected work (pass the rates of
  /// the env the server runs against so shortest-work ranks realistically).
  CostModelOptions cost;
};

class Catalog {
 public:
  /// Opens and initializes every store under `env` (not owned; must
  /// outlive the catalog). Paths are prefixed "/serve".
  static Result<std::unique_ptr<Catalog>> Create(Env* env,
                                                 const CatalogOptions& opts);

  /// The ready-to-run spec for `job` executing on worker `slot`. The
  /// returned spec's pointers reference catalog-owned state; they are
  /// valid for the catalog's lifetime. Concurrent Bind calls are safe;
  /// two concurrent jobs may share a slot's stores only if they share the
  /// slot (the server pins one slot per worker).
  SessionSpec Bind(const JobSpec& job, int slot) const;

  int64_t footprint_bytes(JobKind kind) const;
  double expected_work_seconds(JobKind kind) const;
  int num_datasets() const { return opts_.num_datasets; }
  int num_slots() const { return opts_.num_slots; }

  /// Drops every catalog store's cached frames from `rt`'s shared pool.
  /// Call after draining the server and before destroying the catalog if
  /// the runtime outlives it.
  Status ReleaseFrom(SessionRuntime& rt) const;

 private:
  /// One template: the lowered workload plus per-dataset shared input
  /// stores and per-slot private non-input stores.
  struct Template {
    Workload workload;
    int64_t footprint_bytes = 0;
    double expected_work_seconds = 0;
    std::vector<bool> is_input;        // by array id
    std::vector<Runtime> by_dataset;   // inputs used; one per dataset
    std::vector<Runtime> by_slot;      // non-inputs used; one per slot
  };

  Catalog() = default;
  const Template& TemplateFor(JobKind kind) const;

  CatalogOptions opts_;
  Template read_, write_, whale_;
};

}  // namespace serve
}  // namespace riot

#endif  // RIOTSHARE_SERVE_CATALOG_H_
