#include "serve/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace riot {
namespace serve {

namespace {
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int LatencyHistogram::BucketFor(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN/negative
  const int b = 1 + static_cast<int>(std::log10(seconds / kMinSeconds) *
                                     kBucketsPerDecade);
  return std::min(b, kNumBuckets - 1);
}

double LatencyHistogram::BucketUpperBound(int bucket) {
  return kMinSeconds *
         std::pow(10.0, static_cast<double>(bucket) / kBucketsPerDecade);
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0) seconds = 0;
  ++buckets_[static_cast<size_t>(BucketFor(seconds))];
  ++count_;
  sum_ += seconds;
  max_ = std::max(max_, seconds);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-th sample (1-based, ceil): the smallest bucket whose
  // cumulative count reaches it holds the answer.
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * count_)));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The final bucket is open-ended — its only honest bound is the
      // exact max, which also caps every interior bucket.
      if (i == kNumBuckets - 1) return max_;
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

void Metrics::OnSubmit() {
  MutexLock lock(&mu_);
  ++s_.submitted;
  if (first_submit_seconds_ < 0) first_submit_seconds_ = NowSeconds();
}

void Metrics::OnDone(bool ok, bool whale, double latency_seconds,
                     double queue_wait_seconds,
                     double admission_wait_seconds,
                     double exec_wall_seconds) {
  MutexLock lock(&mu_);
  if (ok) {
    ++s_.completed;
    s_.admission_wait.Record(admission_wait_seconds);
    s_.exec_wall.Record(exec_wall_seconds);
  } else {
    ++s_.failed;
  }
  s_.latency.Record(latency_seconds);
  (whale ? s_.latency_whales : s_.latency_mice).Record(latency_seconds);
  s_.queue_wait.Record(queue_wait_seconds);
  last_done_seconds_ = NowSeconds();
}

MetricsSnapshot Metrics::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot out = s_;
  if (first_submit_seconds_ >= 0 && last_done_seconds_ >= 0) {
    out.elapsed_seconds =
        std::max(0.0, last_done_seconds_ - first_submit_seconds_);
    if (out.elapsed_seconds > 0) {
      out.throughput_jobs_per_sec = out.completed / out.elapsed_seconds;
    }
  }
  return out;
}

}  // namespace serve
}  // namespace riot
