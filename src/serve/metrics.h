// Serving-side observability: latency histograms and aggregate counters,
// measured the way production measures an open-loop service — every
// completed job records its end-to-end latency (submit -> done), its
// queue wait (submit -> a worker picked it up), the admission wait inside
// SessionRuntime, and its execution wall time, and the server reports
// p50/p99/p999 plus throughput over the measurement window.
//
// The histogram is fixed-shape and log-spaced (25 buckets per decade from
// 1us), so Record is O(1), Merge is element-wise, percentile error is
// bounded by one bucket width (< 10%), and two runs over the same
// latencies report identical quantiles — deterministic enough to unit
// test exactly.
#ifndef RIOTSHARE_SERVE_METRICS_H_
#define RIOTSHARE_SERVE_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/thread_annotations.h"

namespace riot {
namespace serve {

/// \brief Fixed log-spaced histogram of durations in seconds. Not
/// thread-safe on its own; Metrics (below) synchronizes the server's.
class LatencyHistogram {
 public:
  static constexpr double kMinSeconds = 1e-6;   // bucket 0 upper bound
  static constexpr int kBucketsPerDecade = 25;  // ~9.6% resolution
  static constexpr int kDecades = 9;            // 1us .. 1000s
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades + 1;

  void Record(double seconds);
  void Merge(const LatencyHistogram& other);

  int64_t count() const { return count_; }
  double mean_seconds() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double max_seconds() const { return max_; }
  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the q-th sample (clamped to the exact observed max, so Quantile(1)
  /// == max_seconds()). 0 when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P99() const { return Quantile(0.99); }
  double P999() const { return Quantile(0.999); }

 private:
  static int BucketFor(double seconds);
  static double BucketUpperBound(int bucket);

  std::array<int64_t, kNumBuckets> buckets_{};
  int64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

/// \brief One consistent copy of the server's counters and histograms.
struct MetricsSnapshot {
  int64_t submitted = 0;
  int64_t completed = 0;  // jobs whose session ran to success
  int64_t failed = 0;     // jobs whose session returned an error
  /// Seconds from the first submit to the last completion seen so far (the
  /// open-loop measurement window).
  double elapsed_seconds = 0;
  /// Completions per elapsed second.
  double throughput_jobs_per_sec = 0;
  LatencyHistogram latency;         // submit -> completion
  /// Per-class views of `latency`: the whale-plus-mice SLO story is the
  /// MICE tail — FIFO head-of-line blocking adds whale service time to
  /// mouse latency, which the overall histogram (whale-dominated at the
  /// very tail) can mask.
  LatencyHistogram latency_mice;
  LatencyHistogram latency_whales;
  LatencyHistogram queue_wait;      // submit -> picked up by a worker
  LatencyHistogram admission_wait;  // SessionRuntime admission parking
  LatencyHistogram exec_wall;       // executor wall time
};

/// \brief Thread-safe recorder the server's workers feed.
class Metrics {
 public:
  void OnSubmit() EXCLUDES(mu_);
  /// `ok` distinguishes completed from failed; failed jobs still record
  /// latency and queue wait (an error answer is still an answer the
  /// client waited for) but no admission/exec breakdown.
  /// `whale` routes the latency sample into the per-class histogram
  /// (mice vs whales) on top of the overall one.
  void OnDone(bool ok, bool whale, double latency_seconds,
              double queue_wait_seconds, double admission_wait_seconds,
              double exec_wall_seconds) EXCLUDES(mu_);
  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  MetricsSnapshot s_ GUARDED_BY(mu_);
  // Monotonic clock, -1 = none yet.
  double first_submit_seconds_ GUARDED_BY(mu_) = -1;
  double last_done_seconds_ GUARDED_BY(mu_) = -1;
};

}  // namespace serve
}  // namespace riot

#endif  // RIOTSHARE_SERVE_METRICS_H_
