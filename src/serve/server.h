// The serving front end: a long-lived pool of workers draining an
// in-process job queue against one shared SessionRuntime. Submit() never
// blocks — the queue is unbounded, so when offered load exceeds capacity
// the backlog (and hence latency) grows, exactly the open-loop behavior
// the bench measures. Each worker owns one catalog slot, binds each job
// it picks up to that slot's private output stores, runs it as a session
// (admission, budget, shared-frame dedup all apply), and feeds Metrics:
// end-to-end latency, queue wait, admission wait, and execution wall time.
#ifndef RIOTSHARE_SERVE_SERVER_H_
#define RIOTSHARE_SERVE_SERVER_H_

#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "ops/session_runtime.h"
#include "serve/catalog.h"
#include "serve/metrics.h"
#include "serve/workload_gen.h"
#include "util/thread_annotations.h"

namespace riot {
namespace serve {

struct ServerOptions {
  /// The shared execution layer: pool cap, admission policy, I/O threads.
  SessionRuntimeOptions runtime;
  /// Concurrent job executions; must not exceed the catalog's slots.
  int worker_threads = 4;
};

class Server {
 public:
  /// `catalog` is not owned and must outlive the server. Workers start
  /// immediately.
  Server(const Catalog* catalog, const ServerOptions& options);
  /// Implies Shutdown() (drops any jobs still queued).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one job and returns immediately (open loop: the caller's
  /// arrival process never waits on service).
  void Submit(const JobSpec& job) EXCLUDES(mu_);

  /// Blocks until every submitted job has completed (or, after a
  /// Shutdown, until the in-flight jobs finish — queued-but-unstarted
  /// jobs were dropped and no longer count). Submit may be called again
  /// afterwards only if the server is not shut down.
  void Drain() EXCLUDES(mu_);

  /// Stops the workers after the jobs they are currently running;
  /// queued-but-unstarted jobs are dropped. Idempotent.
  void Shutdown() EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const { return metrics_.Snapshot(); }
  SessionRuntime& runtime() { return runtime_; }

 private:
  struct Queued {
    JobSpec job;
    std::chrono::steady_clock::time_point submitted;
  };

  void WorkerLoop(int slot) EXCLUDES(mu_);

  const Catalog* const catalog_;
  const ServerOptions opts_;
  SessionRuntime runtime_;
  Metrics metrics_;

  Mutex mu_;
  CondVar work_cv_;   // workers: queue non-empty or stopping
  CondVar drain_cv_;  // Drain: queue empty and workers idle
  std::deque<Queued> queue_ GUARDED_BY(mu_);
  int in_flight_ GUARDED_BY(mu_) = 0;  // jobs popped but not yet finished
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace riot

#endif  // RIOTSHARE_SERVE_SERVER_H_
