#include "serve/catalog.h"

#include <string>
#include <utility>

#include "util/logging.h"

namespace riot {
namespace serve {
namespace {

// r = SumSquares(X + Y): reads the whole dataset, emits one {1, grid}
// row of column sums — all read, almost no write.
Workload MakeReadMouse(int64_t grid, int64_t block) {
  ExprGraph g;
  ExprRef x = g.Input("X", {grid, grid}, {block, block});
  ExprRef y = g.Input("Y", {grid, grid}, {block, block});
  ExprRef r = g.SumSquares(g.Add(x, y));
  g.SetName(r, "R");
  return FromExpr("serve_read", g, {r});
}

// W = X + Y: every input block read, a full-size output written back.
Workload MakeWriteMouse(int64_t grid, int64_t block) {
  ExprGraph g;
  ExprRef x = g.Input("X", {grid, grid}, {block, block});
  ExprRef y = g.Input("Y", {grid, grid}, {block, block});
  ExprRef w = g.Add(x, y);
  g.SetName(w, "W");
  return FromExpr("serve_write", g, {w});
}

// E = (XW + YW) ZW over much larger arrays: the contraction revisits
// blocks grid-many times, so both footprint and runtime dwarf the mice.
Workload MakeWhale(int64_t grid, int64_t block) {
  ExprGraph g;
  ExprRef x = g.Input("XW", {grid, grid}, {block, block});
  ExprRef y = g.Input("YW", {grid, grid}, {block, block});
  ExprRef z = g.Input("ZW", {grid, grid}, {block, block});
  ExprRef e = g.Gemm(g.Add(x, y), z);
  g.SetName(e, "E");
  return FromExpr("serve_whale", g, {e});
}

}  // namespace

Result<std::unique_ptr<Catalog>> Catalog::Create(Env* env,
                                                 const CatalogOptions& opts) {
  RIOT_CHECK_GT(opts.num_datasets, 0);
  RIOT_CHECK_GT(opts.num_slots, 0);
  auto catalog = std::unique_ptr<Catalog>(new Catalog());
  catalog->opts_ = opts;

  struct Build {
    Template* tmpl;
    Workload workload;
    const char* dir;
  };
  Build builds[] = {
      {&catalog->read_, MakeReadMouse(opts.mouse_grid, opts.mouse_block),
       "read"},
      {&catalog->write_, MakeWriteMouse(opts.mouse_grid, opts.mouse_block),
       "write"},
      {&catalog->whale_, MakeWhale(opts.whale_grid, opts.whale_block),
       "whale"},
  };
  for (Build& b : builds) {
    Template& t = *b.tmpl;
    t.workload = std::move(b.workload);
    RIOT_RETURN_NOT_OK(t.workload.program.Validate());

    const PlanCost cost =
        EvaluatePlanCost(t.workload.program,
                         t.workload.program.original_schedule(), {}, opts.cost);
    t.footprint_bytes = cost.peak_memory_bytes;
    t.expected_work_seconds = cost.TotalSeconds();

    t.is_input.assign(t.workload.program.arrays().size(), false);
    for (int arr : t.workload.input_arrays) {
      t.is_input[static_cast<size_t>(arr)] = true;
    }

    const std::string prefix = std::string("/serve/") + b.dir;
    for (int d = 0; d < opts.num_datasets; ++d) {
      RIOT_ASSIGN_OR_RETURN(
          Runtime rt, OpenStores(env, t.workload.program,
                                 prefix + "/d" + std::to_string(d)));
      RIOT_RETURN_NOT_OK(InitInputs(t.workload, rt,
                                      opts.seed + static_cast<uint64_t>(d)));
      t.by_dataset.push_back(std::move(rt));
    }
    for (int s = 0; s < opts.num_slots; ++s) {
      RIOT_ASSIGN_OR_RETURN(
          Runtime rt, OpenStores(env, t.workload.program,
                                 prefix + "/s" + std::to_string(s)));
      t.by_slot.push_back(std::move(rt));
    }
  }
  return catalog;
}

const Catalog::Template& Catalog::TemplateFor(JobKind kind) const {
  switch (kind) {
    case JobKind::kRead:
      return read_;
    case JobKind::kWrite:
      return write_;
    case JobKind::kWhale:
      return whale_;
  }
  RIOT_CHECK(false) << "unknown JobKind";
  return read_;
}

SessionSpec Catalog::Bind(const JobSpec& job, int slot) const {
  const Template& t = TemplateFor(job.kind);
  RIOT_CHECK(job.dataset >= 0 && job.dataset < opts_.num_datasets)
      << "job dataset out of range";
  RIOT_CHECK(slot >= 0 && slot < opts_.num_slots) << "slot out of range";
  const Runtime& inputs = t.by_dataset[static_cast<size_t>(job.dataset)];
  const Runtime& scratch = t.by_slot[static_cast<size_t>(slot)];

  SessionSpec spec;
  spec.program = &t.workload.program;
  spec.schedule = &t.workload.program.original_schedule();
  spec.kernels = &t.workload.kernels;
  spec.stores.resize(t.is_input.size());
  for (size_t a = 0; a < t.is_input.size(); ++a) {
    spec.stores[a] =
        (t.is_input[a] ? inputs : scratch).stores[a].get();
  }
  spec.footprint_bytes = t.footprint_bytes;
  spec.expected_work_seconds = t.expected_work_seconds;
  return spec;
}

int64_t Catalog::footprint_bytes(JobKind kind) const {
  return TemplateFor(kind).footprint_bytes;
}

double Catalog::expected_work_seconds(JobKind kind) const {
  return TemplateFor(kind).expected_work_seconds;
}

Status Catalog::ReleaseFrom(SessionRuntime& rt) const {
  for (const Template* t : {&read_, &write_, &whale_}) {
    for (const Runtime& r : t->by_dataset) {
      for (const auto& store : r.stores) {
        RIOT_RETURN_NOT_OK(rt.ReleaseStore(store.get()));
      }
    }
    for (const Runtime& r : t->by_slot) {
      for (const auto& store : r.stores) {
        RIOT_RETURN_NOT_OK(rt.ReleaseStore(store.get()));
      }
    }
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace riot
