// YCSB-style open-loop traffic generation for the serving front end:
// Zipf-skewed dataset popularity (the FastZipf O(1) sampler of Gray et
// al., the YCSB idiom), a read/write procedure mix, an occasional "whale"
// (a heavyweight analytical job among the mice), and Poisson arrivals at
// a configurable offered load in jobs/sec.
//
// Open loop means arrival times are generated independently of service
// times: when the system falls behind, the queue grows and latency
// explodes — exactly the regime closed-loop benches can never show, and
// the one that separates admission policies (head-of-line whales vs
// small-job-first). Everything is deterministic given the seed.
#ifndef RIOTSHARE_SERVE_WORKLOAD_GEN_H_
#define RIOTSHARE_SERVE_WORKLOAD_GEN_H_

#include <cstdint>
#include <vector>

namespace riot {
namespace serve {

/// \brief splitmix64: tiny, seedable, and statistically solid for traffic
/// generation (not cryptographic). One stream per generator.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// \brief O(1) Zipf(theta) sampler over ranks [0, n) (0 = hottest), after
/// Gray et al. "Quickly generating billion-record synthetic databases"
/// (the YCSB generator). theta in [0, 1): 0 = uniform, 0.99 = the YCSB
/// default heavy skew.
class FastZipf {
 public:
  FastZipf(uint64_t n, double theta);
  uint64_t Sample(Rng& rng) const;
  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

enum class JobKind {
  kRead,   // read-heavy mouse: scans the dataset, writes a tiny result
  kWrite,  // write-heavy mouse: materializes a full-size output
  kWhale,  // heavyweight analytical job (large footprint + long runtime)
};

/// \brief One generated request: which dataset, what kind, and when it
/// arrives (seconds from the start of the stream).
struct JobSpec {
  int64_t id = 0;
  JobKind kind = JobKind::kRead;
  int dataset = 0;  // Zipf rank into the catalog's datasets
  double arrival_seconds = 0;
};

struct TrafficOptions {
  double offered_jobs_per_sec = 50.0;
  int num_datasets = 4;
  /// Zipf skew over datasets; 0 disables skew (uniform).
  double zipf_theta = 0.99;
  /// Fraction of mice that are write-heavy (the YCSB r/w mix knob).
  double write_fraction = 0.1;
  /// Fraction of all jobs that are whales (0 = pure-mice traffic).
  double whale_fraction = 0.0;
  /// Poisson arrivals (exponential inter-arrival at the offered rate);
  /// false = a deterministic fixed-interval stream.
  bool poisson_arrivals = true;
  uint64_t seed = 1;
};

/// \brief Deterministic open-loop stream: Next() yields jobs with
/// monotonically increasing arrival times at the offered rate.
class OpenLoopGenerator {
 public:
  explicit OpenLoopGenerator(const TrafficOptions& options);
  JobSpec Next();
  /// The whole stream for a window, e.g. Take(ceil(rate * seconds)).
  std::vector<JobSpec> Take(int64_t count);

 private:
  TrafficOptions opts_;
  Rng rng_;
  FastZipf zipf_;
  double clock_seconds_ = 0;
  int64_t next_id_ = 0;
};

}  // namespace serve
}  // namespace riot

#endif  // RIOTSHARE_SERVE_WORKLOAD_GEN_H_
