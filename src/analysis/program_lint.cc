#include "analysis/program_lint.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "ir/scalar_ops.h"
#include "kernels/dense.h"
#include "linalg/rational.h"

namespace riot {

const char* LintCodeName(LintCode code) {
  switch (code) {
    case LintCode::kEmptyDomain: return "empty-domain";
    case LintCode::kMalformedAccess: return "malformed-access";
    case LintCode::kSubscriptOutOfGrid: return "subscript-out-of-grid";
    case LintCode::kOpArityMismatch: return "op-arity-mismatch";
    case LintCode::kMalformedTape: return "malformed-tape";
    case LintCode::kUnguardedAccumulator: return "unguarded-accumulator";
    case LintCode::kUseBeforeDef: return "use-before-def";
    case LintCode::kElidedWriteRead: return "elided-write-read";
    case LintCode::kBadDepPos: return "bad-dep-pos";
    case LintCode::kDagInconsistent: return "dag-inconsistent";
    case LintCode::kMissingDagEdge: return "missing-dag-edge";
  }
  return "?";
}

std::string LintDiag::ToString() const {
  std::ostringstream os;
  os << "[" << LintCodeName(code) << "]";
  if (stmt_id >= 0) os << " stmt " << stmt_id;
  if (access_idx >= 0) os << " access " << access_idx;
  if (pos >= 0) os << " pos " << pos;
  os << ": " << message;
  return os.str();
}

bool LintReport::Has(LintCode code) const {
  for (const LintDiag& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

size_t LintReport::CountOf(LintCode code) const {
  size_t n = 0;
  for (const LintDiag& d : diags) {
    if (d.code == code) ++n;
  }
  return n;
}

std::string LintReport::ToString() const {
  std::ostringstream os;
  if (diags.empty()) {
    os << "lint: clean";
  } else {
    os << "lint: " << diags.size() << " finding(s)";
  }
  if (instances_checked > 0) {
    os << " (" << instances_checked << " instances, DAG cross-check "
       << (dag_cross_checked ? "ran" : "skipped") << ")";
  }
  for (const LintDiag& d : diags) os << "\n  " << d.ToString();
  return os.str();
}

namespace {

void Add(LintReport* report, LintCode code, int stmt_id, int access_idx,
         int64_t pos, std::string message) {
  LintDiag d;
  d.code = code;
  d.stmt_id = stmt_id;
  d.access_idx = access_idx;
  d.pos = pos;
  d.message = std::move(message);
  report->diags.push_back(std::move(d));
}

// Rational bounds of one phi row (coeffs . iter + const) over `region`.
// Returns false when the row is unbounded over the region.
bool RowBounds(const Polyhedron& region, const RMatrix& phi, size_t row,
               Rational* lo, Rational* hi) {
  const size_t depth = region.dim();
  RVector obj(depth);
  for (size_t d = 0; d < depth; ++d) obj[d] = phi.At(row, d);
  auto mn = region.Minimize(obj);
  auto mx = region.Maximize(obj);
  if (!mn.has_value() || !mx.has_value()) return false;
  const Rational c = phi.At(row, depth);
  *lo = *mn + c;
  *hi = *mx + c;
  return true;
}

// True when `idx` names a valid access of `st` with type `want`.
bool ValidAccess(const Statement& st, int idx, AccessType want) {
  return idx >= 0 && idx < static_cast<int>(st.accesses.size()) &&
         st.accesses[static_cast<size_t>(idx)].type == want;
}

// Validate a kFused statement's scalar tape: post-order positions only,
// per-code arity, loads naming real read accesses, resolvable scalar fns,
// and no read access the tape never consumes (paid I/O feeding nothing).
void LintFusedTape(const Statement& st, LintReport* report) {
  const StatementOp& op = *st.op;
  const int sid = st.id;
  if (op.tape.empty()) {
    Add(report, LintCode::kMalformedTape, sid, -1, -1,
        "fused statement has an empty tape");
    return;
  }
  if (op.tape.size() > static_cast<size_t>(kMaxFusedTapeOps)) {
    Add(report, LintCode::kMalformedTape, sid, -1, -1,
        "tape length " + std::to_string(op.tape.size()) +
            " exceeds kMaxFusedTapeOps");
    return;
  }
  if (op.acc >= 0 || op.reduction_iter >= 0) {
    Add(report, LintCode::kMalformedTape, sid, op.acc, -1,
        "fused statements are pure elementwise; acc/reduction_iter must be "
        "unset");
  }
  std::vector<bool> read_consumed(st.accesses.size(), false);
  for (size_t p = 0; p < op.tape.size(); ++p) {
    const TapeOp& t = op.tape[p];
    const std::string at = "tape[" + std::to_string(p) + "] ";
    const bool unary = t.code == TapeOp::Code::kScale ||
                       t.code == TapeOp::Code::kMap;
    if (t.code == TapeOp::Code::kLoad) {
      if (!ValidAccess(st, t.a, AccessType::kRead)) {
        Add(report, LintCode::kMalformedTape, sid, t.a, -1,
            at + "load does not name a read access");
      } else {
        read_consumed[static_cast<size_t>(t.a)] = true;
      }
      if (t.b != -1) {
        Add(report, LintCode::kMalformedTape, sid, t.a, -1,
            at + "load must leave `b` unset");
      }
      continue;
    }
    if (t.a < 0 || t.a >= static_cast<int>(p)) {
      Add(report, LintCode::kMalformedTape, sid, -1, -1,
          at + "operand `a` is not an earlier tape position");
    }
    if (unary) {
      if (t.b != -1) {
        Add(report, LintCode::kMalformedTape, sid, -1, -1,
            at + "unary op must leave `b` unset");
      }
    } else if (t.b < 0 || t.b >= static_cast<int>(p)) {
      Add(report, LintCode::kMalformedTape, sid, -1, -1,
          at + "operand `b` is not an earlier tape position");
    }
    if (t.code == TapeOp::Code::kMap && !IsScalarMap(t.scalar_fn)) {
      Add(report, LintCode::kMalformedTape, sid, -1, -1,
          at + "map references no registered unary scalar fn");
    }
    if (t.code == TapeOp::Code::kZip && !IsScalarZip(t.scalar_fn)) {
      Add(report, LintCode::kMalformedTape, sid, -1, -1,
          at + "zip references no registered binary scalar fn");
    }
  }
  for (size_t i = 0; i < st.accesses.size(); ++i) {
    if (st.accesses[i].type == AccessType::kRead && !read_consumed[i]) {
      Add(report, LintCode::kMalformedTape, sid, static_cast<int>(i), -1,
          "read access is never loaded by the tape (I/O feeding nothing)");
    }
  }
}

void LintStatementOp(const Program& program, const Statement& st,
                     LintReport* report) {
  const StatementOp& op = *st.op;
  const int sid = st.id;
  using Kind = StatementOp::Kind;
  if (op.kind == Kind::kInput) {
    Add(report, LintCode::kOpArityMismatch, sid, -1, -1,
        "kInput is an expression-graph leaf; it cannot appear on a "
        "statement");
    return;
  }
  if (!ValidAccess(st, op.out, AccessType::kWrite)) {
    Add(report, LintCode::kOpArityMismatch, sid, op.out, -1,
        "op `out` does not name a write access of the statement");
    return;
  }
  const bool binary = op.kind == Kind::kAdd || op.kind == Kind::kSub ||
                      op.kind == Kind::kGemm || op.kind == Kind::kZip;
  if (!ValidAccess(st, op.a, AccessType::kRead)) {
    Add(report, LintCode::kOpArityMismatch, sid, op.a, -1,
        "op `a` does not name a read access of the statement");
  }
  if (binary && !ValidAccess(st, op.b, AccessType::kRead)) {
    Add(report, LintCode::kOpArityMismatch, sid, op.b, -1,
        std::string(StatementOpKindName(op.kind)) +
            " is binary but `b` does not name a read access");
  }
  if (op.kind == Kind::kMap && !IsScalarMap(op.scalar_fn)) {
    Add(report, LintCode::kOpArityMismatch, sid, -1, -1,
        "kMap statement references no registered unary scalar fn");
  }
  if (op.kind == Kind::kZip && !IsScalarZip(op.scalar_fn)) {
    Add(report, LintCode::kOpArityMismatch, sid, -1, -1,
        "kZip statement references no registered binary scalar fn");
  }
  if (op.kind == Kind::kFused) {
    LintFusedTape(st, report);
  } else if (!op.tape.empty()) {
    Add(report, LintCode::kMalformedTape, sid, -1, -1,
        std::string(StatementOpKindName(op.kind)) +
            " statement carries a tape; only kFused may");
  }
  if (op.reduction_iter >= static_cast<int>(st.depth())) {
    Add(report, LintCode::kOpArityMismatch, sid, -1, -1,
        "reduction_iter " + std::to_string(op.reduction_iter) +
            " out of range for depth " + std::to_string(st.depth()));
    return;
  }
  if (op.acc < 0) return;
  if (!ValidAccess(st, op.acc, AccessType::kRead)) {
    Add(report, LintCode::kOpArityMismatch, sid, op.acc, -1,
        "op `acc` does not name a read access of the statement");
    return;
  }
  const Access& acc = st.accesses[static_cast<size_t>(op.acc)];
  const Access& out = st.accesses[static_cast<size_t>(op.out)];
  if (acc.array_id != out.array_id || !(acc.phi == out.phi)) {
    Add(report, LintCode::kOpArityMismatch, sid, op.acc, -1,
        "accumulator access does not alias the write access (different "
        "array or subscript map)");
    return;
  }
  if (op.reduction_iter < 0) return;
  // The kernel initializes the output at reduction-start iterations
  // (iter[reduction_iter] <= 0) and accumulates elsewhere; the carry read
  // must be guarded off the start, or the kernel consumes a frame nothing
  // has initialized (a zero-filled pool frame at best, stale disk at
  // worst).
  Polyhedron start = st.domain;
  RVector neg(st.domain.dim());
  neg[static_cast<size_t>(op.reduction_iter)] = Rational(-1);
  start.AddGe(std::move(neg), Rational(0));  // iter[r] <= 0
  if (acc.guard.has_value() &&
      acc.guard->dim() == st.domain.dim()) {
    start = start.Intersect(*acc.guard);
  } else if (acc.guard.has_value()) {
    return;  // malformed guard reported by the access checks
  }
  if (!start.IsEmptyInteger()) {
    Add(report, LintCode::kUnguardedAccumulator, sid, op.acc, -1,
        acc.guard.has_value()
            ? "accumulator self-read guard does not exclude the "
              "reduction-start iterations"
            : "accumulator self-read has no guard; it is live at the "
              "reduction-start iterations");
  }
  (void)program;
}

}  // namespace

Result<LintReport> LintProgram(const Program& program) {
  LintReport report;
  const auto& arrays = program.arrays();
  for (const Statement& st : program.statements()) {
    const size_t depth = st.depth();
    const int sid = st.id;
    if (st.domain.dim() != depth) {
      Add(&report, LintCode::kEmptyDomain, sid, -1, -1,
          "domain dimensionality " + std::to_string(st.domain.dim()) +
              " != statement depth " + std::to_string(depth));
      continue;
    }
    bool domain_ok = true;
    for (size_t d = 0; d < depth && domain_ok; ++d) {
      if (!st.domain.IntegerVarBounds(d).has_value()) {
        Add(&report, LintCode::kEmptyDomain, sid, -1, -1,
            "domain is empty or unbounded in iterator " +
                std::to_string(d));
        domain_ok = false;
      }
    }
    if (!domain_ok) continue;
    if (st.domain.IsEmptyInteger()) {
      Add(&report, LintCode::kEmptyDomain, sid, -1, -1,
          "domain contains no integer points");
      continue;
    }
    for (size_t ai = 0; ai < st.accesses.size(); ++ai) {
      const Access& a = st.accesses[ai];
      const int aidx = static_cast<int>(ai);
      if (a.array_id < 0 ||
          a.array_id >= static_cast<int>(arrays.size())) {
        Add(&report, LintCode::kMalformedAccess, sid, aidx, -1,
            "array id " + std::to_string(a.array_id) + " out of range");
        continue;
      }
      const ArrayInfo& arr = arrays[static_cast<size_t>(a.array_id)];
      if (a.phi.rows() != arr.ndim() || a.phi.cols() != depth + 1) {
        Add(&report, LintCode::kMalformedAccess, sid, aidx, -1,
            "phi is " + std::to_string(a.phi.rows()) + "x" +
                std::to_string(a.phi.cols()) + ", expected " +
                std::to_string(arr.ndim()) + "x" +
                std::to_string(depth + 1) + " for array " + arr.name);
        continue;
      }
      if (a.guard.has_value() && a.guard->dim() != depth) {
        Add(&report, LintCode::kMalformedAccess, sid, aidx, -1,
            "guard dimensionality " + std::to_string(a.guard->dim()) +
                " != statement depth " + std::to_string(depth));
        continue;
      }
      const Polyhedron region = a.guard.has_value()
                                    ? st.domain.Intersect(*a.guard)
                                    : st.domain;
      if (region.IsEmptyInteger()) continue;  // access never occurs
      for (size_t r = 0; r < arr.ndim(); ++r) {
        Rational lo, hi;
        if (!RowBounds(region, a.phi, r, &lo, &hi)) {
          Add(&report, LintCode::kSubscriptOutOfGrid, sid, aidx, -1,
              "subscript dim " + std::to_string(r) +
                  " is unbounded over the guarded domain");
          continue;
        }
        if (lo < Rational(0) || hi > Rational(arr.grid[r] - 1)) {
          Add(&report, LintCode::kSubscriptOutOfGrid, sid, aidx, -1,
              "subscript dim " + std::to_string(r) + " spans [" +
                  lo.ToString() + ", " + hi.ToString() + "], grid of " +
                  arr.name + " allows [0, " +
                  std::to_string(arr.grid[r] - 1) + "]");
        }
      }
    }
    if (st.op.has_value()) LintStatementOp(program, st, &report);
  }
  return report;
}

namespace {

// Collapsed per-position access flags of one (array, block).
struct BlockPosUse {
  size_t pos = 0;
  bool has_write = false;
  bool has_read = false;
  bool has_nonsaved_read = false;
  bool has_saved_read = false;
};

// Dense forward-reachability over the DAG: reach[p] answers "is q (> p)
// reachable from p" in O(1) after an O(E * n / 64) closure. Edges always
// point forward, so descending position order is a reverse topological
// order.
class Reachability {
 public:
  Reachability(const InstanceDag& dag, size_t n)
      : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {
    for (size_t p = n; p-- > 0;) {
      uint64_t* row = Row(p);
      for (uint32_t s : dag.succ[p]) {
        if (s >= n) continue;  // structural check reports it
        row[s / 64] |= uint64_t{1} << (s % 64);
        const uint64_t* srow = Row(s);
        for (size_t w = 0; w < words_; ++w) row[w] |= srow[w];
      }
    }
  }

  bool Reaches(size_t p, size_t q) const {
    return (Row(p)[q / 64] >> (q % 64)) & 1;
  }

 private:
  uint64_t* Row(size_t p) { return bits_.data() + p * words_; }
  const uint64_t* Row(size_t p) const { return bits_.data() + p * words_; }
  size_t n_;
  size_t words_;
  std::vector<uint64_t> bits_;
};

std::string PairMessage(const char* kind, size_t p, size_t q) {
  return std::string(kind) + ": instance " + std::to_string(q) +
         " conflicts with instance " + std::to_string(p) +
         " on the same block but no dependence path orders them";
}

}  // namespace

Result<LintReport> LintScript(const Program& program, const RealizedPlan& rp,
                              const AccessScript& script,
                              const InstanceDag& dag,
                              const LintOptions& opts) {
  LintReport report;
  const size_t n = rp.order.size();
  report.instances_checked = n;

  // ---- per-record checks + per-block record streams -----------------------
  // Keyed by (array, block); values are indices into script.records in
  // stream order (records are emitted position-ascending).
  std::map<std::pair<int, int64_t>, std::vector<size_t>> by_block;
  for (size_t ri = 0; ri < script.records.size(); ++ri) {
    const BlockAccessRecord& rec = script.records[ri];
    by_block[{rec.array_id, rec.block}].push_back(ri);
    const ArrayInfo& arr = program.array(rec.array_id);
    if (rec.type == AccessType::kRead && !arr.persistent &&
        rec.dep_pos < 0) {
      Add(&report, LintCode::kUseBeforeDef, rec.stmt_id, rec.access_idx,
          static_cast<int64_t>(rec.pos),
          "read of non-persistent " + arr.name + " block " +
              std::to_string(rec.block) +
              " with no earlier write in the plan (uninitialized scratch)");
    }
    if (rec.type == AccessType::kRead && rec.dep_pos >= 0) {
      bool found = false;
      if (rec.dep_pos < static_cast<int64_t>(rec.pos) &&
          rec.dep_pos < static_cast<int64_t>(script.per_pos.size())) {
        const auto [b, e] = script.per_pos[static_cast<size_t>(rec.dep_pos)];
        for (uint32_t j = b; j < e && !found; ++j) {
          const BlockAccessRecord& w = script.records[j];
          found = w.type == AccessType::kWrite &&
                  w.array_id == rec.array_id && w.block == rec.block;
        }
      }
      if (!found) {
        Add(&report, LintCode::kBadDepPos, rec.stmt_id, rec.access_idx,
            static_cast<int64_t>(rec.pos),
            "dep_pos " + std::to_string(rec.dep_pos) +
                " is not an earlier write of " + arr.name + " block " +
                std::to_string(rec.block));
      }
    }
  }

  // ---- write elision vs later disk reads ----------------------------------
  // After a saved (W->W) or elided write the disk image is stale until the
  // next write-through materializes the block: any non-saved read in that
  // window reads garbage, and a persistent array must not end the plan in
  // that state.
  for (const auto& [key, recs] : by_block) {
    const ArrayInfo& arr = program.array(key.first);
    bool unmaterialized = false;
    size_t eliding_pos = 0;
    for (size_t ri : recs) {
      const BlockAccessRecord& rec = script.records[ri];
      if (rec.type == AccessType::kRead) {
        if (!rec.saved && unmaterialized) {
          Add(&report, LintCode::kElidedWriteRead, rec.stmt_id,
              rec.access_idx, static_cast<int64_t>(rec.pos),
              "disk read of " + arr.name + " block " +
                  std::to_string(key.second) +
                  " after its write at instance " +
                  std::to_string(eliding_pos) + " was saved/elided");
        }
      } else {
        if (rec.saved) eliding_pos = rec.pos;
        unmaterialized = rec.saved;
      }
    }
    if (unmaterialized && arr.persistent) {
      Add(&report, LintCode::kElidedWriteRead, -1, -1,
          static_cast<int64_t>(eliding_pos),
          "final write of persistent " + arr.name + " block " +
              std::to_string(key.second) +
              " is saved/elided; the disk image ends stale");
    }
  }

  // ---- DAG structural consistency -----------------------------------------
  bool structure_ok = true;
  if (dag.succ.size() != n || dag.pred_count.size() != n) {
    Add(&report, LintCode::kDagInconsistent, -1, -1, -1,
        "DAG sized for " + std::to_string(dag.succ.size()) + "/" +
            std::to_string(dag.pred_count.size()) + " instances, stream has " +
            std::to_string(n));
    structure_ok = false;
  }
  if (structure_ok) {
    std::vector<uint32_t> indeg(n, 0);
    for (size_t p = 0; p < n && structure_ok; ++p) {
      for (uint32_t s : dag.succ[p]) {
        if (s <= p || s >= n) {
          Add(&report, LintCode::kDagInconsistent, -1, -1,
              static_cast<int64_t>(p),
              "edge " + std::to_string(p) + " -> " + std::to_string(s) +
                  " does not point forward in scheduled order");
          structure_ok = false;
          break;
        }
        ++indeg[s];
      }
    }
    for (size_t q = 0; structure_ok && q < n; ++q) {
      if (indeg[q] != dag.pred_count[q]) {
        Add(&report, LintCode::kDagInconsistent, -1, -1,
            static_cast<int64_t>(q),
            "pred_count[" + std::to_string(q) + "] = " +
                std::to_string(dag.pred_count[q]) + " but " +
                std::to_string(indeg[q]) + " edge(s) point at it");
        structure_ok = false;
      }
    }
  }

  // ---- DAG completeness: brute-force conflicting-pair enumeration ---------
  if (structure_ok && n > 0 && n <= opts.max_dag_instances) {
    report.dag_cross_checked = true;
    Reachability reach(dag, n);
    for (const auto& [key, recs] : by_block) {
      // Collapse records to per-position flags (an instance may read and
      // write the same block; its internal order is kernel-local).
      std::vector<BlockPosUse> uses;
      for (size_t ri : recs) {
        const BlockAccessRecord& rec = script.records[ri];
        if (uses.empty() || uses.back().pos != rec.pos) {
          uses.push_back(BlockPosUse{rec.pos, false, false, false, false});
        }
        BlockPosUse& u = uses.back();
        if (rec.type == AccessType::kWrite) {
          u.has_write = true;
        } else {
          u.has_read = true;
          (rec.saved ? u.has_saved_read : u.has_nonsaved_read) = true;
        }
      }
      // Reduced conflict set: ordering each access against the latest
      // earlier write (RAW/WAW) and each write against the reads since
      // that write (WAR) covers every conflicting pair by reachability
      // transitivity. Saved reads with no earlier writer must still be
      // ordered after the access that brought the block in (the
      // read-read materialization edge, the one non-hazard edge kind) —
      // unless the instance also reads the block unsaved or writes it,
      // in which case it is its own materializer / is ordered by WAR and
      // no cross-instance edge is required.
      int64_t last_write = -1;
      int64_t last_bringer = -1;  // latest write or non-saved read
      std::vector<size_t> reads_since_write;
      for (const BlockPosUse& u : uses) {
        if (u.has_read) {
          if (last_write >= 0 &&
              !reach.Reaches(static_cast<size_t>(last_write), u.pos)) {
            Add(&report, LintCode::kMissingDagEdge, -1, -1,
                static_cast<int64_t>(u.pos),
                PairMessage("read-after-write",
                            static_cast<size_t>(last_write), u.pos));
          } else if (u.has_saved_read && !u.has_nonsaved_read &&
                     !u.has_write && last_write < 0 && last_bringer >= 0 &&
                     !reach.Reaches(static_cast<size_t>(last_bringer),
                                    u.pos)) {
            Add(&report, LintCode::kMissingDagEdge, -1, -1,
                static_cast<int64_t>(u.pos),
                PairMessage("saved-read materialization",
                            static_cast<size_t>(last_bringer), u.pos));
          }
        }
        if (u.has_write) {
          if (last_write >= 0 &&
              !reach.Reaches(static_cast<size_t>(last_write), u.pos)) {
            Add(&report, LintCode::kMissingDagEdge, -1, -1,
                static_cast<int64_t>(u.pos),
                PairMessage("write-after-write",
                            static_cast<size_t>(last_write), u.pos));
          }
          for (size_t r : reads_since_write) {
            if (!reach.Reaches(r, u.pos)) {
              Add(&report, LintCode::kMissingDagEdge, -1, -1,
                  static_cast<int64_t>(u.pos),
                  PairMessage("write-after-read", r, u.pos));
            }
          }
        }
        // A position that writes subsumes its own read for later
        // conflicts (path to the write covers the whole instance).
        if (u.has_write) {
          last_write = static_cast<int64_t>(u.pos);
          last_bringer = static_cast<int64_t>(u.pos);
          reads_since_write.clear();
        } else if (u.has_read) {
          reads_since_write.push_back(u.pos);
          if (u.has_nonsaved_read) {
            last_bringer = static_cast<int64_t>(u.pos);
          }
        }
      }
    }
  }
  return report;
}

Result<LintReport> LintPlan(const Program& program, const Schedule& schedule,
                            const std::vector<const CoAccess*>& realized,
                            const LintOptions& opts) {
  auto prog_report = LintProgram(program);
  RIOT_RETURN_NOT_OK(prog_report.status());
  LintReport merged = std::move(prog_report).ValueOrDie();
  if (!merged.ok()) return merged;  // lowering a malformed program may CHECK
  const RealizedPlan rp = RealizePlan(program, schedule, realized);
  const AccessScript script = BuildAccessScript(program, rp);
  const InstanceDag dag = BuildInstanceDag(script);
  auto script_report = LintScript(program, rp, script, dag, opts);
  RIOT_RETURN_NOT_OK(script_report.status());
  LintReport sr = std::move(script_report).ValueOrDie();
  merged.instances_checked = sr.instances_checked;
  merged.dag_cross_checked = sr.dag_cross_checked;
  for (LintDiag& d : sr.diags) merged.diags.push_back(std::move(d));
  return merged;
}

}  // namespace riot
