// Per-statement loop characteristics (working set, reuse, flops) estimated
// from the typed StatementOp and the access maps — the polyhedral IR already
// knows every block an instance touches, so the analysis is exact at block
// granularity. The result feeds the cost model's in-memory compute term
// (core/cost_model.h): flops convert to seconds through a per-kernel-class
// rate table, with a cache penalty when an instance's working set spills the
// modeled cache. The shape follows cacheSight-style loop analyzers:
// working-set size, reuse-distance class, vectorizability, trip counts.
#ifndef RIOTSHARE_ANALYSIS_LOOP_CHARACTERISTICS_H_
#define RIOTSHARE_ANALYSIS_LOOP_CHARACTERISTICS_H_

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace riot {

/// How a statement instance revisits its working set.
enum class ReuseClass {
  kStreaming,  // every element touched O(1) times (elementwise, reductions)
  kPanel,      // one operand panel reused across the other (GEMM-like)
  kFull,       // whole working set revisited O(n) times (LU/inverse)
};

/// Which calibrated throughput rate applies (KernelRateTable field).
enum class KernelClass {
  kElementwise,
  kGemm,
  kInverse,
  kReduction,
};

const char* ReuseClassName(ReuseClass r);
const char* KernelClassName(KernelClass k);

/// \brief Estimated execution profile of one statement's per-instance loop.
struct LoopCharacteristics {
  /// FP operations one statement instance performs (block-level dims).
  double flops_per_instance = 0.0;
  /// Distinct bytes one instance touches: accessed blocks deduped by
  /// (array, subscript function) — the same block read and written counts
  /// once.
  int64_t working_set_bytes = 0;
  ReuseClass reuse = ReuseClass::kStreaming;
  KernelClass kernel_class = KernelClass::kElementwise;
  /// Whether the innermost loop is unit-stride and free of data-dependent
  /// control (the autovectorizer handles it). LU pivoting is not.
  bool vectorizable = true;
  /// Domain cardinality (number of instances of the statement).
  int64_t instances = 0;
  double total_flops = 0.0;  // flops_per_instance * instances
  /// flops per working-set byte; the classic roofline x-axis.
  double arithmetic_intensity = 0.0;
};

/// Analyze one statement. Statements without a typed op are modeled as a
/// streaming elementwise pass over their write block (the free-form-lambda
/// escape hatch gives the analysis nothing better to go on).
LoopCharacteristics AnalyzeStatement(const Program& prog,
                                     const Statement& stmt);

/// Analyze every statement of the program (index = statement id).
std::vector<LoopCharacteristics> AnalyzeProgramLoops(const Program& prog);

/// \brief Calibrated kernel throughput rates used to turn flops into
/// seconds, plus the two-level cache model: instances whose working set
/// exceeds `cache_bytes` run at rate/`cache_penalty`.
///
/// Defaults are conservative portable-build numbers; call
/// CalibrateKernelRates for host-measured rates, or set fields synthetically
/// in tests.
struct KernelRateTable {
  double elementwise_gflops = 1.0;
  double gemm_gflops = 3.0;
  double inverse_gflops = 0.5;
  double reduction_gflops = 1.5;
  /// Modeled last-usefully-shared cache level (~L2/L3) in bytes.
  int64_t cache_bytes = 2ll << 20;
  /// Rate divisor applied when an instance working set exceeds cache_bytes.
  double cache_penalty = 3.0;
  /// Worker count the rates were measured at (CalibrateKernelRates
  /// `workers`). The per-class rates are PER-WORKER contended rates: with
  /// N kernel workers sharing memory bandwidth and cache, each worker's
  /// effective throughput is lower than the solo rate, and the cost
  /// model's per-instance compute term wants that contended figure.
  int calibrated_workers = 1;

  double RateFor(KernelClass k) const;
};

/// Seconds one instance of a statement with characteristics `c` takes under
/// `rates` (applies the cache penalty when the working set spills).
double EstimateInstanceSeconds(const LoopCharacteristics& c,
                               const KernelRateTable& rates);

/// Measure real kernel throughput on this host (runs each kernel class for
/// roughly `budget_ms` / 4 milliseconds) and return a populated table.
/// cache_bytes / cache_penalty keep their defaults — they describe the
/// model, not the measurement.
///
/// `workers` > 1 runs the sweep with that many concurrent measurement
/// threads, each on private buffers, and reports each class's PER-WORKER
/// rate under contention — the rate one of the executor's `exec_threads`
/// kernel workers actually sees when its siblings are busy (bandwidth-bound
/// elementwise/reduction classes degrade far more than cache-resident
/// GEMM). The returned table records the count in `calibrated_workers`.
KernelRateTable CalibrateKernelRates(int budget_ms = 200, int workers = 1);

}  // namespace riot

#endif  // RIOTSHARE_ANALYSIS_LOOP_CHARACTERISTICS_H_
