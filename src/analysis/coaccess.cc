#include "analysis/coaccess.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"

namespace riot {

namespace {

struct Event {
  size_t order;  // position in the original execution order
  AccessRef ref;
  AccessType type;
  std::vector<int64_t> iter;
};

using CoAccessKey = std::pair<AccessRef, AccessRef>;

// Computes constraint generators for a pair set: if the set of joint points
// (src_iter, dst_iter) is an affine image of a full integer box (true for
// every co-access of a regular loop nest), the box's corner points generate
// the whole set by convex combination, so affine schedule constraints need
// only be enforced there. Returns all pairs when the structure test fails
// (sound and complete either way; only performance differs).
std::vector<InstancePair> ComputeGenerators(
    const std::vector<InstancePair>& pairs) {
  if (pairs.size() <= 4) return pairs;
  const size_t dx = pairs[0].src_iter.size();
  const size_t dim = dx + pairs[0].dst_iter.size();
  auto joint = [&](const InstancePair& p) {
    std::vector<int64_t> v = p.src_iter;
    v.insert(v.end(), p.dst_iter.begin(), p.dst_iter.end());
    return v;
  };
  const std::vector<int64_t> base = joint(pairs[0]);
  // Basis of the affine hull from the difference vectors.
  RMatrix basis(0, dim);
  size_t rank = 0;
  for (const auto& p : pairs) {
    std::vector<int64_t> v = joint(p);
    RVector diff(dim);
    for (size_t d = 0; d < dim; ++d) diff[d] = Rational(v[d] - base[d]);
    if (diff.IsZero()) continue;
    if (basis.rows() == 0 || !basis.RowSpanContains(diff)) {
      basis.AppendRow(diff);
      ++rank;
      if (rank == dim) break;
    }
  }
  if (rank == 0) return {pairs[0]};
  // Coordinate subset S on which the projection is bijective: the pivot
  // columns of the basis RREF.
  std::vector<size_t> pivot_cols;
  RMatrix rref = basis.Rref(&pivot_cols);
  if (pivot_cols.size() != rank) return pairs;
  // Parameterize each point by its S-coordinates (relative to base).
  std::map<std::vector<int64_t>, size_t> param_of;  // u -> pair index
  std::vector<int64_t> lo(rank, INT64_MAX), hi(rank, INT64_MIN);
  for (size_t i = 0; i < pairs.size(); ++i) {
    std::vector<int64_t> v = joint(pairs[i]);
    std::vector<int64_t> u(rank);
    for (size_t d = 0; d < rank; ++d) {
      u[d] = v[pivot_cols[d]] - base[pivot_cols[d]];
      lo[d] = std::min(lo[d], u[d]);
      hi[d] = std::max(hi[d], u[d]);
    }
    if (!param_of.emplace(std::move(u), i).second) {
      return pairs;  // projection not injective: not an affine box image
    }
  }
  // Full-box test.
  int64_t cells = 1;
  for (size_t d = 0; d < rank; ++d) {
    cells *= hi[d] - lo[d] + 1;
    if (cells > static_cast<int64_t>(pairs.size())) return pairs;
  }
  if (cells != static_cast<int64_t>(pairs.size())) return pairs;
  // Verify every point actually lies in the affine hull (x = base + B^T c
  // must be solvable); equivalently non-pivot coordinates must be affine in
  // u. It suffices to verify hull membership of every corner's preimage and
  // of all points — the injective full-box parameterization plus rank
  // computation above already guarantee membership for points used to build
  // the basis; check the rest cheaply by re-deriving each coordinate.
  // Corner preimages:
  std::vector<InstancePair> gens;
  const size_t corners = size_t{1} << rank;
  for (size_t mask = 0; mask < corners; ++mask) {
    std::vector<int64_t> u(rank);
    for (size_t d = 0; d < rank; ++d) {
      u[d] = (mask >> d) & 1 ? hi[d] : lo[d];
    }
    auto it = param_of.find(u);
    if (it == param_of.end()) return pairs;  // degenerate; be safe
    gens.push_back(pairs[it->second]);
  }
  // Affine-consistency check: every point must be the affine interpolation
  // of the corners; verify by checking that each coordinate is an affine
  // function of u (fit on rank+1 corners, verify on all points).
  // Fit: coord(v) = a0 + sum_d a_d * u_d using base corner and its rank
  // axis-neighbors... simpler: verify v - base lies in rowspace(basis).
  for (const auto& p : pairs) {
    std::vector<int64_t> v = joint(p);
    RVector diff(dim);
    for (size_t d = 0; d < dim; ++d) diff[d] = Rational(v[d] - base[d]);
    if (!basis.RowSpanContains(diff)) return pairs;
  }
  return gens;
}

// Order-preserving one-one reduction: pair the last k sources with the
// first k targets (k = min counts), index-wise. For one-many this keeps the
// target closest in time to the single source; for many-one the source
// closest to the single target; for balanced many-many the paper's
// "desirable" parallel matching of Figure 7(b).
std::vector<std::pair<size_t, size_t>> OrderPreservingMatch(
    const std::vector<size_t>& sources, const std::vector<size_t>& targets) {
  // Inputs are event order indices, ascending. A source must precede its
  // target; with last-k/first-k this can pair s >= t, so fall back to the
  // greedy "latest unmatched source before each target" when that happens.
  size_t k = std::min(sources.size(), targets.size());
  std::vector<std::pair<size_t, size_t>> out;
  bool ok = true;
  for (size_t i = 0; i < k; ++i) {
    size_t s = sources[sources.size() - k + i];
    size_t t = targets[i];
    if (s >= t) {
      ok = false;
      break;
    }
    out.emplace_back(s, t);
  }
  if (ok) return out;
  out.clear();
  size_t si = 0;
  std::vector<size_t> avail;  // stack of unmatched sources so far
  for (size_t t : targets) {
    while (si < sources.size() && sources[si] < t) avail.push_back(sources[si++]);
    if (!avail.empty()) {
      out.emplace_back(avail.back(), t);
      avail.pop_back();
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

AnalysisResult AnalyzeProgram(const Program& program,
                              const AnalysisOptions& options) {
  AnalysisResult result;
  auto order = program.ScheduledOrder(program.original_schedule());

  // Per-(array, block) event chains in original execution order. Within one
  // statement instance, reads precede the write (a read-modify-write is two
  // accesses, read first; paper footnote 4), which matters for the
  // no-write-in-between scan below.
  std::map<std::pair<int, int64_t>, std::vector<Event>> chains;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const auto& inst = order[pos];
    const Statement& st = program.statement(inst.stmt_id);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t ai = 0; ai < st.accesses.size(); ++ai) {
        const Access& a = st.accesses[ai];
        if ((pass == 0) != (a.type == AccessType::kRead)) continue;
        if (!a.ActiveAt(inst.iter)) continue;
        BlockCoord c = a.BlockAt(inst.iter);
        int64_t lin = program.array(a.array_id).LinearBlockIndex(c);
        chains[{a.array_id, lin}].push_back(
            {pos, {inst.stmt_id, static_cast<int>(ai)}, a.type, inst.iter});
      }
    }
  }

  std::map<CoAccessKey, CoAccess> deps;
  std::map<CoAccessKey, CoAccess> shares;
  // For multiplicity reduction we need per-block grouping of sharing pairs.
  std::map<CoAccessKey, std::map<std::pair<int, int64_t>,
                                 std::vector<std::pair<size_t, size_t>>>>
      share_pairs_by_block;  // values: (src event idx, dst event idx)

  for (const auto& [block_key, events] : chains) {
    const int array_id = block_key.first;
    for (size_t i = 0; i < events.size(); ++i) {
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (options.no_write_in_between) {
          // Any write strictly between i and j kills the pair.
          bool write_between = false;
          for (size_t m = i + 1; m < j; ++m) {
            if (events[m].type == AccessType::kWrite) {
              write_between = true;
              break;
            }
          }
          if (write_between) break;  // farther j only worse; writes persist
        }
        const Event& e1 = events[i];
        const Event& e2 = events[j];
        // Co-accesses require the source to strictly precede the target
        // (Theta x lex< Theta x'); two accesses of one instance don't pair.
        if (e1.order == e2.order) continue;
        CoAccessKey key{e1.ref, e2.ref};
        const bool has_write = e1.type == AccessType::kWrite ||
                               e2.type == AccessType::kWrite;
        const bool is_sharing_type =
            !(e1.type == AccessType::kRead && e2.type == AccessType::kWrite);
        if (has_write) {
          auto& ca = deps[key];
          if (ca.array_id < 0) {
            ca.src = e1.ref;
            ca.dst = e2.ref;
            ca.src_type = e1.type;
            ca.dst_type = e2.type;
            ca.array_id = array_id;
          }
          ca.pairs.push_back({e1.iter, e2.iter});
        }
        if (is_sharing_type) {
          auto& ca = shares[key];
          if (ca.array_id < 0) {
            ca.src = e1.ref;
            ca.dst = e2.ref;
            ca.src_type = e1.type;
            ca.dst_type = e2.type;
            ca.array_id = array_id;
          }
          share_pairs_by_block[key][block_key].emplace_back(i, j);
        }
      }
    }
  }

  // Multiplicity reduction for sharing opportunities (per shared block).
  for (auto& [key, by_block] : share_pairs_by_block) {
    CoAccess& ca = shares[key];
    for (auto& [block_key, idx_pairs] : by_block) {
      const auto& events = chains[block_key];
      if (!options.multiplicity_reduction) {
        for (auto [si, ti] : idx_pairs) {
          ca.pairs.push_back({events[si].iter, events[ti].iter});
        }
        continue;
      }
      std::set<size_t> src_set, dst_set;
      for (auto [si, ti] : idx_pairs) {
        src_set.insert(si);
        dst_set.insert(ti);
      }
      std::vector<size_t> sources(src_set.begin(), src_set.end());
      std::vector<size_t> targets(dst_set.begin(), dst_set.end());
      for (auto [si, ti] : OrderPreservingMatch(sources, targets)) {
        ca.pairs.push_back({events[si].iter, events[ti].iter});
      }
    }
    std::sort(ca.pairs.begin(), ca.pairs.end());
    ca.pairs.erase(std::unique(ca.pairs.begin(), ca.pairs.end()),
                   ca.pairs.end());
  }

  for (auto& [key, ca] : deps) {
    std::sort(ca.pairs.begin(), ca.pairs.end());
    ca.pairs.erase(std::unique(ca.pairs.begin(), ca.pairs.end()),
                   ca.pairs.end());
    if (!ca.pairs.empty()) {
      ca.generators = ComputeGenerators(ca.pairs);
      result.dependences.push_back(std::move(ca));
    }
  }
  for (auto& [key, ca] : shares) {
    if (!ca.pairs.empty()) {
      ca.generators = ComputeGenerators(ca.pairs);
      result.sharing.push_back(std::move(ca));
    }
  }
  return result;
}

PolyhedronUnion ExtentPolyhedron(const Program& program, const AccessRef& src,
                                 const AccessRef& dst) {
  const Statement& s1 = program.statement(src.stmt_id);
  const Statement& s2 = program.statement(dst.stmt_id);
  const Access& a1 = program.access(src);
  const Access& a2 = program.access(dst);
  RIOT_CHECK_EQ(a1.array_id, a2.array_id);

  Polyhedron space = Polyhedron::ProductSpace(s1.domain, s2.domain);
  const size_t d1 = s1.depth();
  const size_t d2 = s2.depth();
  // Phi x == Phi' x'.
  for (size_t r = 0; r < a1.phi.rows(); ++r) {
    RVector row(space.dim());
    for (size_t c = 0; c < d1; ++c) row[c] = a1.phi.At(r, c);
    for (size_t c = 0; c < d2; ++c) row[d1 + c] = -a2.phi.At(r, c);
    space.AddEq(std::move(row), a1.phi.At(r, d1) - a2.phi.At(r, d2));
  }
  // Guards.
  auto add_guard = [&](const Access& a, size_t offset, size_t depth) {
    if (!a.guard) return;
    for (const auto& c : a.guard->constraints()) {
      RVector row(space.dim());
      for (size_t d = 0; d < depth; ++d) row[offset + d] = c.coeffs[d];
      AffineConstraint nc{std::move(row), c.constant, c.is_equality};
      space.AddConstraint(std::move(nc));
    }
  };
  add_guard(a1, 0, d1);
  add_guard(a2, d1, d2);
  // Original-schedule lexicographic order.
  const Schedule& orig = program.original_schedule();
  return LexLess(space, orig.ForStatement(src.stmt_id), 0, d1,
                 orig.ForStatement(dst.stmt_id), d1, d2);
}

}  // namespace riot
