// Static plan-integrity linter: validates a Program (and optionally its
// fully lowered AccessScript + InstanceDag) before execution, the
// compile-time counterpart of the differential fuzzers. The optimizer's
// central premise is perfect foreknowledge of the block access sequence;
// the linter turns that same foreknowledge into machine-checked invariants
// instead of trusting the lowering:
//
//   Program level (LintProgram — no schedule needed):
//     * empty, unbounded, or dimension-mismatched iteration domains,
//     * access maps whose shape disagrees with the array or statement,
//     * subscripts provably outside the array's block grid (rational LP
//       bounds of every phi row over the guarded domain),
//     * StatementOp operand indices vs. the access list (arity, access
//       types, reduction-iterator range, accumulator aliasing),
//     * accumulator self-reads not guarded off the reduction-start
//       iterations (reading a frame nothing has initialized).
//
//   Script level (LintScript — a lowered plan):
//     * use-before-def: a read of a non-persistent array block with no
//       earlier write in the instance stream (uninitialized scratch),
//     * write-elision of a block a later access reads from disk,
//       or of a persistent array's block (must exist on disk),
//     * dangling or mistyped prefetch dependences (`dep_pos`),
//     * dependence-DAG structural consistency (edge direction, in-degree
//       bookkeeping) and completeness, cross-checked against a brute-force
//       enumeration of conflicting instance pairs on small domains.
//
// The executor runs LintProgram at construction and LintScript on every
// lowered plan under the debug-default ExecOptions::lint flag; the
// standalone `riot_lint` tool drives the same passes over built-in and
// randomly generated programs.
#ifndef RIOTSHARE_ANALYSIS_PROGRAM_LINT_H_
#define RIOTSHARE_ANALYSIS_PROGRAM_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/access_plan.h"
#include "core/plan_realization.h"
#include "ir/program.h"
#include "ir/schedule.h"
#include "util/status.h"

namespace riot {

enum class LintCode {
  kEmptyDomain,          // empty/unbounded/dimension-mismatched domain
  kMalformedAccess,      // phi shape vs array/statement, bad array id
  kSubscriptOutOfGrid,   // phi row provably escapes the block grid
  kOpArityMismatch,      // StatementOp operands vs access list
  kMalformedTape,        // fused statement's scalar tape is inconsistent
  kUnguardedAccumulator, // accumulator self-read live at reduction start
  kUseBeforeDef,         // non-persistent block read before any write
  kElidedWriteRead,      // elided write, yet a later disk read of the block
  kBadDepPos,            // read's dep_pos not an earlier write of the block
  kDagInconsistent,      // succ/pred_count disagree or backward edge
  kMissingDagEdge,       // conflicting instance pair unordered in the DAG
};

const char* LintCodeName(LintCode code);

/// \brief One diagnostic. `stmt_id`/`access_idx` identify the offending
/// access where applicable; `pos` is the scheduled instance-stream position
/// for script-level findings (-1 for program-level ones).
struct LintDiag {
  LintCode code = LintCode::kEmptyDomain;
  int stmt_id = -1;
  int access_idx = -1;
  int64_t pos = -1;
  std::string message;

  std::string ToString() const;
};

struct LintReport {
  std::vector<LintDiag> diags;
  /// Scheduled instances covered by the script-level checks (0 for a
  /// program-level report).
  size_t instances_checked = 0;
  /// Whether the brute-force dependence cross-check ran. False when the
  /// instance count exceeded LintOptions::max_dag_instances — the DAG's
  /// structural checks still ran, completeness was not enumerated.
  bool dag_cross_checked = false;

  bool ok() const { return diags.empty(); }
  bool Has(LintCode code) const;
  size_t CountOf(LintCode code) const;
  std::string ToString() const;
};

struct LintOptions {
  /// Instance-count ceiling for the O(n^2) brute-force dependence
  /// cross-check; larger streams skip it (reported via dag_cross_checked).
  size_t max_dag_instances = 2048;
};

/// \brief Program-level lint: domains, access maps, op specs. Pure; never
/// mutates or executes anything. A non-OK Status is an internal failure,
/// not a finding — findings are the report's diags.
Result<LintReport> LintProgram(const Program& program);

/// \brief Script-level lint of a lowered plan. `dag` is passed in (rather
/// than rebuilt) so callers that already built it pay nothing — and so
/// tests can hand in a mutated DAG and assert the linter catches it.
Result<LintReport> LintScript(const Program& program, const RealizedPlan& rp,
                              const AccessScript& script,
                              const InstanceDag& dag,
                              const LintOptions& opts = {});

/// \brief Convenience: lowers `schedule` + `realized` and runs both levels,
/// returning the merged report.
Result<LintReport> LintPlan(const Program& program, const Schedule& schedule,
                            const std::vector<const CoAccess*>& realized,
                            const LintOptions& opts = {});

}  // namespace riot

#endif  // RIOTSHARE_ANALYSIS_PROGRAM_LINT_H_
