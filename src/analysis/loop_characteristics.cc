#include "analysis/loop_characteristics.h"

#include <chrono>
#include <utility>
#include <vector>

#include "kernels/dense.h"
#include "util/logging.h"

namespace riot {

const char* ReuseClassName(ReuseClass r) {
  switch (r) {
    case ReuseClass::kStreaming: return "streaming";
    case ReuseClass::kPanel: return "panel";
    case ReuseClass::kFull: return "full";
  }
  return "?";
}

const char* KernelClassName(KernelClass k) {
  switch (k) {
    case KernelClass::kElementwise: return "elementwise";
    case KernelClass::kGemm: return "gemm";
    case KernelClass::kInverse: return "inverse";
    case KernelClass::kReduction: return "reduction";
  }
  return "?";
}

namespace {

// Distinct bytes one instance touches: every access resolves to exactly one
// block (affine map of the iteration vector), so the instance working set is
// the set of distinct (array, subscript function) pairs. Type is ignored —
// the guarded self-read of a reduction touches the same block as its write.
int64_t InstanceWorkingSetBytes(const Program& prog, const Statement& stmt) {
  int64_t bytes = 0;
  for (size_t i = 0; i < stmt.accesses.size(); ++i) {
    const Access& a = stmt.accesses[i];
    bool dup = false;
    for (size_t j = 0; j < i && !dup; ++j) {
      const Access& p = stmt.accesses[j];
      dup = p.array_id == a.array_id && p.phi == a.phi;
    }
    if (!dup) bytes += prog.array(a.array_id).BlockBytes();
  }
  return bytes;
}

// Block extents of the array behind access index `idx` (or of the write
// access if idx is out of range).
const ArrayInfo& AccessArray(const Program& prog, const Statement& stmt,
                             int idx) {
  RIOT_CHECK(idx >= 0 && idx < static_cast<int>(stmt.accesses.size()));
  return prog.array(stmt.accesses[static_cast<size_t>(idx)].array_id);
}

}  // namespace

LoopCharacteristics AnalyzeStatement(const Program& prog,
                                     const Statement& stmt) {
  LoopCharacteristics c;
  c.working_set_bytes = InstanceWorkingSetBytes(prog, stmt);
  c.instances = static_cast<int64_t>(prog.InstancesOf(stmt.id).size());

  if (!stmt.op.has_value()) {
    // Free-form kernel: assume a streaming elementwise pass over the write
    // block (one flop per element).
    const Access* w = stmt.WriteAccess();
    if (w != nullptr) {
      c.flops_per_instance =
          static_cast<double>(prog.array(w->array_id).ElemsPerBlock());
    }
  } else {
    const StatementOp& op = *stmt.op;
    switch (op.kind) {
      case StatementOp::Kind::kInput:
        break;
      case StatementOp::Kind::kAdd:
      case StatementOp::Kind::kSub:
      case StatementOp::Kind::kScale: {
        c.flops_per_instance = static_cast<double>(
            AccessArray(prog, stmt, op.out).ElemsPerBlock());
        break;
      }
      case StatementOp::Kind::kAddDiag: {
        // Copy plus one add per diagonal element.
        c.flops_per_instance = static_cast<double>(
            AccessArray(prog, stmt, op.out).block_elems[0]);
        break;
      }
      case StatementOp::Kind::kGemm: {
        const ArrayInfo& out = AccessArray(prog, stmt, op.out);
        const ArrayInfo& a = AccessArray(prog, stmt, op.a);
        const int64_t m = out.block_elems[0];
        const int64_t n = out.block_elems.size() > 1 ? out.block_elems[1] : 1;
        const int64_t kk = op.trans_a
                               ? a.block_elems[0]
                               : (a.block_elems.size() > 1 ? a.block_elems[1]
                                                           : 1);
        c.flops_per_instance = 2.0 * static_cast<double>(m) *
                               static_cast<double>(n) *
                               static_cast<double>(kk);
        c.reuse = ReuseClass::kPanel;
        c.kernel_class = KernelClass::kGemm;
        break;
      }
      case StatementOp::Kind::kInverse: {
        const double nn =
            static_cast<double>(AccessArray(prog, stmt, op.out).block_elems[0]);
        // LU (2/3 n^3) + two triangular solves per column (2 n^3): ~2 n^3.
        c.flops_per_instance = 2.0 * nn * nn * nn;
        c.reuse = ReuseClass::kFull;
        c.kernel_class = KernelClass::kInverse;
        c.vectorizable = false;  // data-dependent pivoting
        break;
      }
      case StatementOp::Kind::kSumSquares: {
        c.flops_per_instance = 2.0 * static_cast<double>(
            AccessArray(prog, stmt, op.a).ElemsPerBlock());
        c.kernel_class = KernelClass::kReduction;
        break;
      }
    }
  }

  c.total_flops = c.flops_per_instance * static_cast<double>(c.instances);
  c.arithmetic_intensity =
      c.working_set_bytes > 0
          ? c.flops_per_instance / static_cast<double>(c.working_set_bytes)
          : 0.0;
  return c;
}

std::vector<LoopCharacteristics> AnalyzeProgramLoops(const Program& prog) {
  std::vector<LoopCharacteristics> out;
  out.reserve(prog.statements().size());
  for (const Statement& s : prog.statements()) {
    out.push_back(AnalyzeStatement(prog, s));
  }
  return out;
}

double KernelRateTable::RateFor(KernelClass k) const {
  switch (k) {
    case KernelClass::kElementwise: return elementwise_gflops;
    case KernelClass::kGemm: return gemm_gflops;
    case KernelClass::kInverse: return inverse_gflops;
    case KernelClass::kReduction: return reduction_gflops;
  }
  return elementwise_gflops;
}

double EstimateInstanceSeconds(const LoopCharacteristics& c,
                               const KernelRateTable& rates) {
  double rate = rates.RateFor(c.kernel_class);
  if (rate <= 0.0) return 0.0;
  if (c.working_set_bytes > rates.cache_bytes && rates.cache_penalty > 1.0) {
    rate /= rates.cache_penalty;
  }
  return c.flops_per_instance / (rate * 1e9);
}

namespace {

// Run `body` (whose one call performs `flops` FP ops) until `budget_ms`
// elapses and return the measured GFLOP/s.
template <typename Fn>
double MeasureGflops(double flops, int budget_ms, Fn&& body) {
  using Clock = std::chrono::steady_clock;
  body();  // warm-up (and cold-start page faults)
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(budget_ms);
  int iters = 0;
  auto now = start;
  do {
    body();
    ++iters;
    now = Clock::now();
  } while (now < deadline);
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - start)
          .count();
  if (secs <= 0.0) return 1.0;
  return flops * iters / secs / 1e9;
}

}  // namespace

KernelRateTable CalibrateKernelRates(int budget_ms) {
  KernelRateTable t;
  const int slice = budget_ms > 4 ? budget_ms / 4 : 1;
  const int64_t n = 256;  // L2-resident: measures compute, not memory

  std::vector<double> a(static_cast<size_t>(n * n));
  std::vector<double> b(static_cast<size_t>(n * n));
  std::vector<double> c(static_cast<size_t>(n * n));
  DenseView va{a.data(), n, n}, vb{b.data(), n, n}, vc{c.data(), n, n};
  BlockFillRandom(&va, 1);
  BlockFillRandom(&vb, 2);

  t.elementwise_gflops = MeasureGflops(
      static_cast<double>(n * n), slice, [&] { BlockAdd(va, vb, &vc); });
  t.gemm_gflops = MeasureGflops(
      2.0 * n * n * n, slice,
      [&] { BlockGemm(va, false, vb, false, &vc, false); });
  t.reduction_gflops = MeasureGflops(
      2.0 * n * n, slice, [&] { (void)BlockSumSquares(va); });

  const int64_t ni = 128;
  std::vector<double> im(static_cast<size_t>(ni * ni));
  std::vector<double> iout(static_cast<size_t>(ni * ni));
  DenseView vim{im.data(), ni, ni}, viout{iout.data(), ni, ni};
  BlockFillRandom(&vim, 3);
  for (int64_t d = 0; d < ni; ++d) vim.At(d, d) += 10.0;
  t.inverse_gflops = MeasureGflops(2.0 * ni * ni * ni, slice,
                                   [&] { (void)BlockInverse(vim, &viout); });
  return t;
}

}  // namespace riot
