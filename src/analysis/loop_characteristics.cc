#include "analysis/loop_characteristics.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "kernels/dense.h"
#include "util/logging.h"

namespace riot {

const char* ReuseClassName(ReuseClass r) {
  switch (r) {
    case ReuseClass::kStreaming: return "streaming";
    case ReuseClass::kPanel: return "panel";
    case ReuseClass::kFull: return "full";
  }
  return "?";
}

const char* KernelClassName(KernelClass k) {
  switch (k) {
    case KernelClass::kElementwise: return "elementwise";
    case KernelClass::kGemm: return "gemm";
    case KernelClass::kInverse: return "inverse";
    case KernelClass::kReduction: return "reduction";
  }
  return "?";
}

namespace {

// Distinct bytes one instance touches: every access resolves to exactly one
// block (affine map of the iteration vector), so the instance working set is
// the set of distinct (array, subscript function) pairs. Type is ignored —
// the guarded self-read of a reduction touches the same block as its write.
int64_t InstanceWorkingSetBytes(const Program& prog, const Statement& stmt) {
  int64_t bytes = 0;
  for (size_t i = 0; i < stmt.accesses.size(); ++i) {
    const Access& a = stmt.accesses[i];
    bool dup = false;
    for (size_t j = 0; j < i && !dup; ++j) {
      const Access& p = stmt.accesses[j];
      dup = p.array_id == a.array_id && p.phi == a.phi;
    }
    if (!dup) bytes += prog.array(a.array_id).BlockBytes();
  }
  return bytes;
}

// Block extents of the array behind access index `idx` (or of the write
// access if idx is out of range).
const ArrayInfo& AccessArray(const Program& prog, const Statement& stmt,
                             int idx) {
  RIOT_CHECK(idx >= 0 && idx < static_cast<int>(stmt.accesses.size()));
  return prog.array(stmt.accesses[static_cast<size_t>(idx)].array_id);
}

}  // namespace

LoopCharacteristics AnalyzeStatement(const Program& prog,
                                     const Statement& stmt) {
  LoopCharacteristics c;
  c.working_set_bytes = InstanceWorkingSetBytes(prog, stmt);
  c.instances = static_cast<int64_t>(prog.InstancesOf(stmt.id).size());

  if (!stmt.op.has_value()) {
    // Free-form kernel: assume a streaming elementwise pass over the write
    // block (one flop per element).
    const Access* w = stmt.WriteAccess();
    if (w != nullptr) {
      c.flops_per_instance =
          static_cast<double>(prog.array(w->array_id).ElemsPerBlock());
    }
  } else {
    const StatementOp& op = *stmt.op;
    switch (op.kind) {
      case StatementOp::Kind::kInput:
        break;
      case StatementOp::Kind::kAdd:
      case StatementOp::Kind::kSub:
      case StatementOp::Kind::kScale: {
        c.flops_per_instance = static_cast<double>(
            AccessArray(prog, stmt, op.out).ElemsPerBlock());
        break;
      }
      case StatementOp::Kind::kAddDiag: {
        // Copy plus one add per diagonal element.
        c.flops_per_instance = static_cast<double>(
            AccessArray(prog, stmt, op.out).block_elems[0]);
        break;
      }
      case StatementOp::Kind::kGemm: {
        const ArrayInfo& out = AccessArray(prog, stmt, op.out);
        const ArrayInfo& a = AccessArray(prog, stmt, op.a);
        const int64_t m = out.block_elems[0];
        const int64_t n = out.block_elems.size() > 1 ? out.block_elems[1] : 1;
        const int64_t kk = op.trans_a
                               ? a.block_elems[0]
                               : (a.block_elems.size() > 1 ? a.block_elems[1]
                                                           : 1);
        c.flops_per_instance = 2.0 * static_cast<double>(m) *
                               static_cast<double>(n) *
                               static_cast<double>(kk);
        c.reuse = ReuseClass::kPanel;
        c.kernel_class = KernelClass::kGemm;
        break;
      }
      case StatementOp::Kind::kInverse: {
        const double nn =
            static_cast<double>(AccessArray(prog, stmt, op.out).block_elems[0]);
        // LU (2/3 n^3) + two triangular solves per column (2 n^3): ~2 n^3.
        c.flops_per_instance = 2.0 * nn * nn * nn;
        c.reuse = ReuseClass::kFull;
        c.kernel_class = KernelClass::kInverse;
        c.vectorizable = false;  // data-dependent pivoting
        break;
      }
      case StatementOp::Kind::kSumSquares: {
        c.flops_per_instance = 2.0 * static_cast<double>(
            AccessArray(prog, stmt, op.a).ElemsPerBlock());
        c.kernel_class = KernelClass::kReduction;
        break;
      }
      case StatementOp::Kind::kMap:
      case StatementOp::Kind::kZip: {
        c.flops_per_instance = static_cast<double>(
            AccessArray(prog, stmt, op.out).ElemsPerBlock());
        // The registered scalar fn is called through a pointer per element;
        // the autovectorizer cannot widen across the call.
        c.vectorizable = false;
        break;
      }
      case StatementOp::Kind::kFused: {
        // One streaming pass; each non-load tape op costs one flop per
        // element. The working set (computed above from the accesses) is
        // already the shrunken fused one: external operands plus the single
        // write — no materialized intermediates.
        int compute_ops = 0;
        bool calls_scalar_fn = false;
        for (const TapeOp& t : op.tape) {
          if (t.code == TapeOp::Code::kLoad) continue;
          ++compute_ops;
          calls_scalar_fn |= t.code == TapeOp::Code::kMap ||
                             t.code == TapeOp::Code::kZip;
        }
        c.flops_per_instance =
            static_cast<double>(compute_ops) *
            static_cast<double>(AccessArray(prog, stmt, op.out).ElemsPerBlock());
        c.vectorizable = !calls_scalar_fn;
        break;
      }
    }
  }

  c.total_flops = c.flops_per_instance * static_cast<double>(c.instances);
  c.arithmetic_intensity =
      c.working_set_bytes > 0
          ? c.flops_per_instance / static_cast<double>(c.working_set_bytes)
          : 0.0;
  return c;
}

std::vector<LoopCharacteristics> AnalyzeProgramLoops(const Program& prog) {
  std::vector<LoopCharacteristics> out;
  out.reserve(prog.statements().size());
  for (const Statement& s : prog.statements()) {
    out.push_back(AnalyzeStatement(prog, s));
  }
  return out;
}

double KernelRateTable::RateFor(KernelClass k) const {
  switch (k) {
    case KernelClass::kElementwise: return elementwise_gflops;
    case KernelClass::kGemm: return gemm_gflops;
    case KernelClass::kInverse: return inverse_gflops;
    case KernelClass::kReduction: return reduction_gflops;
  }
  return elementwise_gflops;
}

double EstimateInstanceSeconds(const LoopCharacteristics& c,
                               const KernelRateTable& rates) {
  double rate = rates.RateFor(c.kernel_class);
  if (rate <= 0.0) return 0.0;
  if (c.working_set_bytes > rates.cache_bytes && rates.cache_penalty > 1.0) {
    rate /= rates.cache_penalty;
  }
  return c.flops_per_instance / (rate * 1e9);
}

namespace {

// Run `body` (whose one call performs `flops` FP ops) until `budget_ms`
// elapses and return the measured GFLOP/s.
template <typename Fn>
double MeasureGflops(double flops, int budget_ms, Fn&& body) {
  using Clock = std::chrono::steady_clock;
  body();  // warm-up (and cold-start page faults)
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(budget_ms);
  int iters = 0;
  auto now = start;
  do {
    body();
    ++iters;
    now = Clock::now();
  } while (now < deadline);
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - start)
          .count();
  if (secs <= 0.0) return 1.0;
  return flops * iters / secs / 1e9;
}

// Multi-worker variant: `make_body(w)` builds worker w's measurement body
// over PRIVATE buffers; all workers then hammer their bodies concurrently
// for `budget_ms` and the PER-WORKER contended rate comes back (aggregate
// throughput / workers). Private buffers mean the contention measured is
// the real shared-resource kind — memory bandwidth, shared cache, SMT —
// not false sharing of the measurement harness.
template <typename MakeBody>
double MeasureGflopsWorkers(double flops, int budget_ms, int workers,
                            MakeBody&& make_body) {
  if (workers <= 1) return MeasureGflops(flops, budget_ms, make_body(0));
  using Clock = std::chrono::steady_clock;
  std::vector<std::function<void()>> bodies;
  bodies.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) bodies.push_back(make_body(w));
  for (auto& b : bodies) b();  // warm up every worker's buffers

  std::atomic<bool> go{false};
  std::atomic<int64_t> total_iters{0};
  std::atomic<int64_t> elapsed_ns{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      const auto start = Clock::now();
      const auto deadline = start + std::chrono::milliseconds(budget_ms);
      int64_t iters = 0;
      auto now = start;
      do {
        bodies[static_cast<size_t>(w)]();
        ++iters;
        now = Clock::now();
      } while (now < deadline);
      total_iters.fetch_add(iters);
      elapsed_ns.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
              .count());
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double avg_secs = static_cast<double>(elapsed_ns.load()) / workers / 1e9;
  if (avg_secs <= 0.0) return 1.0;
  // Aggregate throughput across all workers, then per-worker share.
  const double aggregate =
      flops * static_cast<double>(total_iters.load()) / avg_secs / 1e9;
  return aggregate / workers;
}

}  // namespace

KernelRateTable CalibrateKernelRates(int budget_ms, int workers) {
  KernelRateTable t;
  if (workers < 1) workers = 1;
  t.calibrated_workers = workers;
  const int slice = budget_ms > 4 ? budget_ms / 4 : 1;
  const int64_t n = 256;  // L2-resident: measures compute, not memory

  // Per-worker private operand buffers, alive for the whole sweep.
  struct Bufs {
    std::vector<double> a, b, c;
    DenseView va, vb, vc;
  };
  std::vector<std::unique_ptr<Bufs>> bufs;
  for (int w = 0; w < workers; ++w) {
    auto bf = std::make_unique<Bufs>();
    bf->a.resize(static_cast<size_t>(n * n));
    bf->b.resize(static_cast<size_t>(n * n));
    bf->c.resize(static_cast<size_t>(n * n));
    bf->va = DenseView{bf->a.data(), n, n};
    bf->vb = DenseView{bf->b.data(), n, n};
    bf->vc = DenseView{bf->c.data(), n, n};
    BlockFillRandom(&bf->va, 1 + static_cast<uint64_t>(w) * 2);
    BlockFillRandom(&bf->vb, 2 + static_cast<uint64_t>(w) * 2);
    bufs.push_back(std::move(bf));
  }

  t.elementwise_gflops = MeasureGflopsWorkers(
      static_cast<double>(n * n), slice, workers, [&](int w) {
        Bufs* bf = bufs[static_cast<size_t>(w)].get();
        return [bf] { BlockAdd(bf->va, bf->vb, &bf->vc); };
      });
  t.gemm_gflops = MeasureGflopsWorkers(
      2.0 * n * n * n, slice, workers, [&](int w) {
        Bufs* bf = bufs[static_cast<size_t>(w)].get();
        return [bf] { BlockGemm(bf->va, false, bf->vb, false, &bf->vc, false); };
      });
  t.reduction_gflops = MeasureGflopsWorkers(
      2.0 * n * n, slice, workers, [&](int w) {
        Bufs* bf = bufs[static_cast<size_t>(w)].get();
        return [bf] { (void)BlockSumSquares(bf->va); };
      });

  const int64_t ni = 128;
  std::vector<std::unique_ptr<Bufs>> ibufs;
  for (int w = 0; w < workers; ++w) {
    auto bf = std::make_unique<Bufs>();
    bf->a.resize(static_cast<size_t>(ni * ni));
    bf->c.resize(static_cast<size_t>(ni * ni));
    bf->va = DenseView{bf->a.data(), ni, ni};
    bf->vc = DenseView{bf->c.data(), ni, ni};
    BlockFillRandom(&bf->va, 3 + static_cast<uint64_t>(w));
    for (int64_t d = 0; d < ni; ++d) bf->va.At(d, d) += 10.0;
    ibufs.push_back(std::move(bf));
  }
  t.inverse_gflops = MeasureGflopsWorkers(
      2.0 * ni * ni * ni, slice, workers, [&](int w) {
        Bufs* bf = ibufs[static_cast<size_t>(w)].get();
        return [bf] { (void)BlockInverse(bf->va, &bf->vc); };
      });
  return t;
}

}  // namespace riot
