// Co-access extraction and classification (paper Section 4.3 / 5.1).
//
// A co-access a -> a' pairs two accesses to the same array; its extent
// relates statement instances touching the same block with the source
// executing first under the original schedule. Co-accesses with a write are
// dependences; co-accesses of type W->R, W->W, R->R are sharing
// opportunities. Two preprocessing steps from the paper are applied:
//   * no-write-in-between pruning (linear sharing model), and
//   * multiplicity reduction making every sharing opportunity one-one
//     (order-preserving matching; Remark A.1).
//
// Extents are computed exactly at the block-instance level: block grids are
// small (tens to hundreds of points per statement), so enumeration is cheap
// and yields byte-exact downstream cost estimates. A symbolic
// polyhedral path (ExtentPolyhedron) is provided for cross-validation.
#ifndef RIOTSHARE_ANALYSIS_COACCESS_H_
#define RIOTSHARE_ANALYSIS_COACCESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"
#include "polyhedral/polyhedron.h"

namespace riot {

/// \brief A related pair of statement instances (source executes first).
struct InstancePair {
  std::vector<int64_t> src_iter;
  std::vector<int64_t> dst_iter;

  bool operator==(const InstancePair& o) const {
    return src_iter == o.src_iter && dst_iter == o.dst_iter;
  }
  bool operator<(const InstancePair& o) const {
    if (src_iter != o.src_iter) return src_iter < o.src_iter;
    return dst_iter < o.dst_iter;
  }
};

/// \brief A co-access with its (pruned/reduced) instance-level extent.
struct CoAccess {
  AccessRef src;
  AccessRef dst;
  AccessType src_type = AccessType::kRead;
  AccessType dst_type = AccessType::kRead;
  int array_id = -1;
  std::vector<InstancePair> pairs;
  /// Constraint generators: a subset of `pairs` whose convex hull contains
  /// all of `pairs`. Any affine condition (>=, =) holds on every pair iff it
  /// holds on the generators, so the schedule solver only needs these —
  /// typically the 2^r corners of the pair set's parameter box instead of
  /// hundreds of instance pairs. Falls back to all pairs when the set is not
  /// a full affine box lattice.
  std::vector<InstancePair> generators;

  bool IsSelf() const { return src.stmt_id == dst.stmt_id; }
  bool IsSharingType() const {
    return !(src_type == AccessType::kRead && dst_type == AccessType::kWrite);
  }
  bool IsDependenceType() const {
    return src_type == AccessType::kWrite || dst_type == AccessType::kWrite;
  }
  std::string Label(const Program& p) const {
    return p.AccessLabel(src) + "->" + p.AccessLabel(dst);
  }
};

struct AnalysisOptions {
  /// Apply the no-write-in-between rule (Section 5.1). Disabling it keeps
  /// every ordered pair; exposed for ablation only.
  bool no_write_in_between = true;
  /// Reduce sharing opportunities to one-one multiplicity (Remark A.1).
  bool multiplicity_reduction = true;
};

struct AnalysisResult {
  std::vector<CoAccess> dependences;
  std::vector<CoAccess> sharing;
};

/// \brief Extracts dependences and sharing opportunities for the program.
AnalysisResult AnalyzeProgram(const Program& program,
                              const AnalysisOptions& options = {});

/// \brief Symbolic extent polyhedron of co-access (a, a') before pruning:
/// { (x, x') : x in D_src, x' in D_dst, Phi x = Phi' x',
///   Theta_src x lex< Theta_dst x' } as a union over lex depths.
/// Space layout: src iteration variables then dst iteration variables.
PolyhedronUnion ExtentPolyhedron(const Program& program, const AccessRef& src,
                                 const AccessRef& dst);

}  // namespace riot

#endif  // RIOTSHARE_ANALYSIS_COACCESS_H_
