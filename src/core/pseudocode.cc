#include "core/pseudocode.h"

#include <map>
#include <sstream>
#include <vector>

#include "util/logging.h"

namespace riot {

namespace {

struct Range {
  size_t begin, end;  // into the instance stream
};

// Structural signature of a subtree: used to decide whether consecutive
// loop iterations have the same body and can be collapsed into one loop.
std::string Signature(const std::vector<ScheduledInstance>& order,
                      const Range& r, size_t depth, size_t max_depth) {
  std::ostringstream os;
  if (depth == max_depth) {
    for (size_t i = r.begin; i < r.end; ++i) {
      os << "s" << order[i].stmt_id << ";";
    }
    return os.str();
  }
  // Partition by time[depth]; signature = sequence of child signatures
  // (values themselves are abstracted away, only structure matters).
  size_t i = r.begin;
  while (i < r.end) {
    size_t j = i;
    while (j < r.end && order[j].time[depth] == order[i].time[depth]) ++j;
    os << "[" << Signature(order, {i, j}, depth + 1, max_depth) << "]";
    i = j;
  }
  return os.str();
}

void Emit(const std::vector<ScheduledInstance>& order, const Program& prog,
          const Range& r, size_t depth, size_t max_depth, int indent,
          std::ostringstream* out) {
  auto pad = [&](int n) {
    for (int i = 0; i < n; ++i) *out << "  ";
  };
  if (depth == max_depth) {
    // Leaf: the statements executed at one full time prefix, in constant-
    // dimension order.
    for (size_t i = r.begin; i < r.end; ++i) {
      pad(indent);
      const Statement& st = prog.statement(order[i].stmt_id);
      *out << st.name << "(";
      for (size_t d = 0; d < order[i].iter.size(); ++d) {
        if (d) *out << ",";
        *out << (d < st.iters.size() ? st.iters[d] : "?") << "="
             << order[i].iter[d];
      }
      *out << ");\n";
    }
    return;
  }
  // Partition this range by the value of time[depth].
  std::vector<std::pair<int64_t, Range>> parts;
  size_t i = r.begin;
  while (i < r.end) {
    size_t j = i;
    while (j < r.end && order[j].time[depth] == order[i].time[depth]) ++j;
    parts.push_back({order[i].time[depth], {i, j}});
    i = j;
  }
  // Group consecutive partitions with identical structure into loops.
  size_t p = 0;
  while (p < parts.size()) {
    std::string sig = Signature(order, parts[p].second, depth + 1, max_depth);
    size_t q = p + 1;
    int64_t stride = 0;
    while (q < parts.size()) {
      if (Signature(order, parts[q].second, depth + 1, max_depth) != sig) {
        break;
      }
      int64_t s = parts[q].first - parts[q - 1].first;
      if (q == p + 1) {
        stride = s;
      } else if (s != stride) {
        break;
      }
      ++q;
    }
    if (q - p == 1) {
      pad(indent);
      *out << "t" << depth + 1 << " = " << parts[p].first << ":\n";
      Emit(order, prog, parts[p].second, depth + 1, max_depth, indent + 1,
           out);
    } else {
      pad(indent);
      *out << "for (t" << depth + 1 << " = " << parts[p].first << "; t"
           << depth + 1;
      if (stride > 0) {
        *out << " <= " << parts[q - 1].first << "; t" << depth + 1 << " += "
             << stride;
      } else {
        *out << " >= " << parts[q - 1].first << "; t" << depth + 1 << " -= "
             << -stride;
      }
      *out << ") {\n";
      // Representative body (all iterations in the group are isomorphic).
      Emit(order, prog, parts[p].second, depth + 1, max_depth, indent + 1,
           out);
      pad(indent);
      *out << "}  // " << (q - p) << " iterations\n";
    }
    p = q;
  }
}

}  // namespace

std::string EmitPseudoCode(const Program& program, const Schedule& schedule) {
  auto order = program.ScheduledOrder(schedule);
  if (order.empty()) return "(empty program)\n";
  const size_t rows = order[0].time.size();
  // The last dimension is the constant (textual) dimension: leaf level.
  std::ostringstream out;
  out << "// schedule with " << rows << " time dimensions; body of the "
      << "first iteration of each collapsed loop shown\n";
  Emit(order, program, {0, order.size()}, 0, rows - 1, 0, &out);
  return out.str();
}

}  // namespace riot
