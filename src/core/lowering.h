// Lowering: from a lazy array-expression DAG (ir/expr.h) to the blocked
// static-control Program the optimizer consumes (ir/program.h).
//
// The pass walks the DAG in node-id order (a topological order by
// construction) and emits
//   * one array per node — inputs keep their names; compute nodes become
//     temporaries marked non-persistent ("scratch") unless they are bound
//     outputs or explicitly kept, so the existing write-elision machinery
//     (paper footnote 8) and ScheduleOpt replacement can kill their I/O;
//   * one statement per compute node, in its own sequential loop nest:
//     rectangular domains over the non-unit block-grid dimensions, affine
//     block accesses derived from the shapes, a guarded accumulator
//     self-read for block-grid contractions (paper footnote 1), and the
//     node's typed StatementOp so the executor can synthesize the kernel.
//
// Hash-consing in the graph means a common subexpression arrives here as a
// single node and is materialized exactly once, read by every consumer —
// the schedule optimizer then decides whether those reads are shared in
// memory or re-fetched. Two operands of one statement that resolve to the
// same array through the same affine map (X'X reads X's block [k,0] twice)
// are collapsed into a single access, so the cost model never counts the
// physically single block read twice.
#ifndef RIOTSHARE_CORE_LOWERING_H_
#define RIOTSHARE_CORE_LOWERING_H_

#include <string>
#include <vector>

#include "ir/expr.h"
#include "ir/program.h"
#include "util/status.h"

namespace riot {

struct LoweredExpr {
  Program program;
  /// Node id -> array id (the identity under the current emission order,
  /// kept explicit so callers never depend on that coincidence).
  std::vector<int> array_of;
  /// Node id -> statement id; -1 for inputs.
  std::vector<int> stmt_of;
  std::vector<int> input_arrays;   // every kInput node's array
  std::vector<int> output_arrays;  // the bound outputs, in binding order
};

/// \brief Lowers the whole graph (every node ever built — hash-consing
/// guarantees no duplicates) with `outputs` bound as persistent result
/// arrays. Fails (InvalidArgument) on an empty graph, an empty or
/// duplicate output list, or an output that is an input node.
Result<LoweredExpr> LowerExpr(const ExprGraph& graph,
                              const std::vector<ExprRef>& outputs);

}  // namespace riot

#endif  // RIOTSHARE_CORE_LOWERING_H_
