// Lowering: from a lazy array-expression DAG (ir/expr.h) to the blocked
// static-control Program the optimizer consumes (ir/program.h).
//
// The pass first plans fusion (core/fusion.h): single-consumer elementwise
// chains collapse into one compound statement carrying a post-order scalar
// tape, so fused-away nodes get NO array and NO statement of their own —
// their values live in registers inside the fused kernel. It then walks the
// DAG in node-id order (a topological order by construction) and emits
//   * one array per materialized node — inputs keep their names; compute
//     nodes become temporaries marked non-persistent ("scratch") unless
//     they are bound outputs or explicitly kept, so the existing
//     write-elision machinery (paper footnote 8) and ScheduleOpt
//     replacement can kill their I/O;
//   * one statement per materialized compute node, in its own sequential
//     nest: rectangular domains over the non-unit block-grid dimensions,
//     affine block accesses derived from the shapes, a guarded accumulator
//     self-read for block-grid contractions (paper footnote 1), and the
//     node's typed StatementOp — a single opcode, or a TapeOp tape
//     (Kind::kFused) for a fused cluster — so the executor can synthesize
//     the kernel.
//
// Hash-consing in the graph means a common subexpression arrives here as a
// single node and is materialized exactly once, read by every consumer —
// the schedule optimizer then decides whether those reads are shared in
// memory or re-fetched. Two operands of one statement that resolve to the
// same array through the same affine map (X'X reads X's block [k,0] twice)
// are collapsed into a single access, so the cost model never counts the
// physically single block read twice.
#ifndef RIOTSHARE_CORE_LOWERING_H_
#define RIOTSHARE_CORE_LOWERING_H_

#include <string>
#include <vector>

#include "core/fusion.h"
#include "ir/expr.h"
#include "ir/program.h"
#include "util/status.h"

namespace riot {

struct LowerOptions {
  /// Fuse single-consumer elementwise chains into compound single-pass
  /// statements (core/fusion.h). `fuse = false` is the escape hatch back to
  /// the historical one-statement-one-temporary-per-node lowering; per-node
  /// opt-out is ExprGraph::Keep(), which forces materialization.
  bool fuse = true;
  /// Tape-length cap (loads + compute ops) per fused statement; must not
  /// exceed kernels/dense.h kMaxFusedTapeOps.
  int max_fused_tape_ops = 24;
};

struct LoweredExpr {
  Program program;
  /// Node id -> array id; -1 for nodes fused away into a consumer's
  /// compound statement (they have no array — that is the point of fusion).
  std::vector<int> array_of;
  /// Node id -> statement id; -1 for inputs. A fused-away node maps to the
  /// compound statement of its cluster root (the statement computing it).
  std::vector<int> stmt_of;
  std::vector<int> input_arrays;   // every kInput node's array
  std::vector<int> output_arrays;  // the bound outputs, in binding order
  /// Nodes eliminated by fusion (statements and temporaries saved).
  int fused_nodes = 0;
};

/// \brief Lowers the whole graph (every node ever built — hash-consing
/// guarantees no duplicates) with `outputs` bound as persistent result
/// arrays. Fails (InvalidArgument) on an empty graph, an empty or
/// duplicate output list, or an output that is an input node.
Result<LoweredExpr> LowerExpr(const ExprGraph& graph,
                              const std::vector<ExprRef>& outputs,
                              const LowerOptions& options = {});

}  // namespace riot

#endif  // RIOTSHARE_CORE_LOWERING_H_
