#include "core/plan_realization.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace riot {

RealizedPlan RealizePlan(const Program& program, const Schedule& schedule,
                         const std::vector<const CoAccess*>& realized) {
  RealizedPlan rp;
  rp.order = program.ScheduledOrder(schedule);

  // Group instances by time prefix (all but the last, constant dimension).
  rp.group_of.resize(rp.order.size());
  std::vector<int64_t> prev_prefix;
  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    const TimeVector& t = rp.order[pos].time;
    RIOT_CHECK_GE(t.size(), 1u);
    std::vector<int64_t> prefix(t.begin(), t.end() - 1);
    if (pos == 0 || prefix != prev_prefix) {
      ++rp.num_groups;
      prev_prefix = std::move(prefix);
    }
    rp.group_of[pos] = rp.num_groups - 1;
  }

  std::map<std::pair<int, std::vector<int64_t>>, size_t> pos_of;
  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    pos_of[{rp.order[pos].stmt_id, rp.order[pos].iter}] = pos;
  }
  auto pos_at = [&](int stmt_id, const std::vector<int64_t>& iter) {
    auto it = pos_of.find({stmt_id, iter});
    RIOT_CHECK(it != pos_of.end()) << "instance missing from schedule order";
    return it->second;
  };

  // Saved I/Os and retention spans from each realized opportunity.
  for (const CoAccess* o : realized) {
    const Access& src_acc = program.access(o->src);
    const bool src_w = o->src_type == AccessType::kWrite;
    const bool dst_w = o->dst_type == AccessType::kWrite;
    for (const auto& pr : o->pairs) {
      if (dst_w && src_w) {
        rp.saved_writes.insert(
            {o->src.stmt_id, pr.src_iter, o->src.access_idx});
        continue;  // W->W: no retention needed
      }
      // W->R or R->R: the target's read is saved; block stays in memory
      // from the source access through the target's group.
      rp.saved_reads.insert({o->dst.stmt_id, pr.dst_iter, o->dst.access_idx});
      size_t p1 = pos_at(o->src.stmt_id, pr.src_iter);
      size_t p2 = pos_at(o->dst.stmt_id, pr.dst_iter);
      RIOT_CHECK_LE(p1, p2);
      BlockCoord c = src_acc.BlockAt(pr.src_iter);
      int64_t lin = program.array(o->array_id).LinearBlockIndex(c);
      rp.spans.push_back(
          {p1, rp.group_of[p1], rp.group_of[p2], o->array_id, lin});
    }
  }
  std::sort(rp.spans.begin(), rp.spans.end());
  rp.spans.erase(std::unique(rp.spans.begin(), rp.spans.end(),
                             [](const RetentionSpan& a,
                                const RetentionSpan& b) {
                               return !(a < b) && !(b < a);
                             }),
                 rp.spans.end());

  // Per-block access chains under the NEW execution order, used for write
  // elimination below. Within an instance, reads precede the write.
  struct Ev {
    size_t pos;
    AccessInstanceKey key;
    AccessType type;
  };
  std::map<std::pair<int, int64_t>, std::vector<Ev>> chains;
  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    const auto& inst = rp.order[pos];
    const Statement& st = program.statement(inst.stmt_id);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t ai = 0; ai < st.accesses.size(); ++ai) {
        const Access& a = st.accesses[ai];
        if ((pass == 0) != (a.type == AccessType::kRead)) continue;
        if (!a.ActiveAt(inst.iter)) continue;
        int64_t lin = program.array(a.array_id)
                          .LinearBlockIndex(a.BlockAt(inst.iter));
        chains[{a.array_id, lin}].push_back(
            {pos,
             {inst.stmt_id, inst.iter, static_cast<int>(ai)},
             a.type});
      }
    }
  }

  // A W->W save is only honored when every read between the two writes is
  // itself served from memory; otherwise a disk read would observe a stale
  // block, so the first write must still be performed. (The paper's best
  // plans always pair W->W with the corresponding W->R, where this check is
  // vacuous; it keeps the executor correct for every plan in the space.)
  for (const auto& [key, events] : chains) {
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].type != AccessType::kWrite) continue;
      if (!rp.saved_writes.count(events[i].key)) continue;
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (events[j].type == AccessType::kWrite) break;
        if (!rp.saved_reads.count(events[j].key)) {
          rp.saved_writes.erase(events[i].key);
          break;
        }
      }
    }
  }

  // Elided writes of non-persistent temporaries: under the new execution
  // order, a write whose every subsequent read (before the next write of the
  // same block) is served from memory never needs to hit disk.
  for (const auto& [key, events] : chains) {
    if (program.array(key.first).persistent) continue;
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].type != AccessType::kWrite) continue;
      bool all_saved = true;
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (events[j].type == AccessType::kWrite) break;
        if (!rp.saved_reads.count(events[j].key)) {
          all_saved = false;
          break;
        }
      }
      if (all_saved) rp.elided_writes.insert(events[i].key);
    }
  }
  return rp;
}

}  // namespace riot
