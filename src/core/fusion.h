// Fusion planning: decide, before lowering, which elementwise expression
// nodes collapse into a single compound statement. A producer fuses into its
// consumer when both are elementwise (Add/Sub/Scale and the registered
// scalar Map/Zip ops), the producer has exactly one consumer use, and the
// producer is neither a bound output nor `Keep()`-ed. Each resulting cluster
// is a tree rooted at a node whose own consumer cannot absorb it; lowering
// (core/lowering.cc) emits the whole cluster as ONE statement carrying a
// post-order scalar tape (ir/statement_op.h TapeOp), so the chain costs one
// streaming read of its external inputs and one write — the per-node
// temporaries, their writes, and the per-node re-read passes all disappear.
//
// What deliberately breaks fusion:
//   * CSE-shared nodes (use count > 1, counting (consumer, arg-slot) pairs —
//     Add(p, p) keeps p materialized): the schedule optimizer is the right
//     owner of sharing decisions for multi-consumer values.
//   * Outputs and Keep()-ed nodes: their arrays are the user contract.
//   * Non-elementwise producers/consumers (Gemm/Inverse/SumSquares/AddDiag):
//     different iteration spaces.
//   * Tape-length cap (`max_tape_ops`): bounds the fused kernel's per-strip
//     scratch so intermediates stay register/L1-resident.
#ifndef RIOTSHARE_CORE_FUSION_H_
#define RIOTSHARE_CORE_FUSION_H_

#include <vector>

#include "ir/expr.h"

namespace riot {

struct FusionOptions {
  /// Off = plan nothing (every node materialized; historical lowering).
  bool enable = true;
  /// Upper bound on one fused statement's tape length (loads + compute
  /// ops). Must not exceed kernels/dense.h kMaxFusedTapeOps.
  int max_tape_ops = 24;
};

struct FusionPlan {
  /// Node id -> the consumer node it fuses into; -1 when the node stays
  /// materialized (inputs, cluster roots, unfused nodes).
  std::vector<int> fused_into;
  /// Node id -> the cluster root whose statement computes it (identity for
  /// materialized nodes).
  std::vector<int> cluster_root;
  /// Number of nodes fused away (= statements and temporaries eliminated).
  int fused_nodes = 0;

  bool Fused(ExprRef r) const {
    return fused_into[static_cast<size_t>(r)] >= 0;
  }
};

/// True for kinds that can join a fused elementwise cluster.
bool FusableKind(StatementOp::Kind k);

/// Plans fusion over the whole graph with `outputs` bound. Never fails:
/// with fusion disabled (or nothing fusable) the plan is the identity.
FusionPlan PlanFusion(const ExprGraph& graph,
                      const std::vector<ExprRef>& outputs,
                      const FusionOptions& options = {});

}  // namespace riot

#endif  // RIOTSHARE_CORE_FUSION_H_
