// Plan costing (paper Section 5.4): exact I/O volume, modeled I/O time, and
// peak memory requirement of a schedule realizing a set of sharing
// opportunities.
//
// The evaluation sweeps statement instances in scheduled order under the
// linear sharing model. Because the system works at block granularity and
// the extents are instance-exact, predicted I/O volume matches executed I/O
// volume byte-for-byte (the paper reports 0.6-2.3% error only because it
// converts volume to seconds with a two-rate disk model; we expose both).
//
// SimulateCacheBehavior goes further: it replays the plan's lowered block
// access script against a real BufferPool (with a chosen replacement
// policy and cap), mirroring the serial engine's fetch/pin/retain/unpin
// discipline step for step — so predicted reads, evictions, hits, and
// misses match a depth-0 serial execution *exactly*, for any policy, at
// any cap. That lets the optimizer price memory pressure: when no plan's
// exact requirement fits the cap, plans are ranked by their simulated
// behavior under a bounded opportunistic cache instead of being assumed to
// run against an infinite pool.
#ifndef RIOTSHARE_CORE_COST_MODEL_H_
#define RIOTSHARE_CORE_COST_MODEL_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "analysis/coaccess.h"
#include "analysis/loop_characteristics.h"
#include "ir/program.h"
#include "ir/schedule.h"
#include "storage/replacement.h"
#include "util/status.h"

namespace riot {

struct CostModelOptions {
  /// Sustained sequential rates used to convert volume to time; defaults are
  /// the paper's measured 96 MB/s read and 60 MB/s write (Section 6 setup).
  double read_mb_per_s = 96.0;
  double write_mb_per_s = 60.0;
  /// When > 0, EvaluatePlanCost additionally replays the plan through the
  /// cache simulator under `pressure_policy` at this cap in opportunistic
  /// mode (a plain bounded cache, no planned sharing), filling the
  /// PlanCost::capped_* fields — pricing memory pressure instead of
  /// assuming an infinite pool. The optimizer defers this (enumeration
  /// stays on the cheap linear model) and simulates only the surviving
  /// plans, and only when none fits the memory cap exactly. 0 (default)
  /// skips the simulation.
  int64_t pressure_cap_bytes = 0;
  ReplacementKind pressure_policy = ReplacementKind::kScheduleOpt;
  /// In-memory compute term. When set, EvaluatePlanCost prices each
  /// statement instance's flops through the rate table (with the table's
  /// cache penalty when the instance working set spills its modeled cache,
  /// see analysis/loop_characteristics.h) into PlanCost::compute_seconds,
  /// and plan ranking uses TotalSeconds() = io + compute. The compute term
  /// is identical across plans of one program (same statements either way),
  /// so single-program plan choice is unchanged — but configurations with
  /// different block sizes now trade I/O volume against cache behavior,
  /// which is exactly what BlockAdvisor ranks. nullopt (default) keeps the
  /// historical I/O-only model with compute_seconds == 0.
  std::optional<KernelRateTable> compute;
};

struct PlanCost {
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;
  int64_t baseline_read_bytes = 0;
  int64_t baseline_write_bytes = 0;
  int64_t block_reads = 0;   // I/O request counts at block grain
  int64_t block_writes = 0;
  int64_t peak_memory_bytes = 0;
  double io_seconds = 0.0;
  double baseline_io_seconds = 0.0;
  /// Cache-simulator projection under CostModelOptions::pressure_cap_bytes
  /// (opportunistic replay). -1 = simulation not run or infeasible at that
  /// cap (an instance's own footprint exceeds it).
  int64_t capped_block_reads = -1;
  int64_t capped_evictions = -1;
  double capped_io_seconds = 0.0;
  /// In-memory compute time over all statement instances (0 unless
  /// CostModelOptions::compute is set).
  double compute_seconds = 0.0;

  int64_t TotalBytes() const { return read_bytes + write_bytes; }
  /// End-to-end modeled serial time: disk I/O plus in-memory compute.
  double TotalSeconds() const { return io_seconds + compute_seconds; }
  /// Pressure-mode analogue (capped_io_seconds is only meaningful when the
  /// cache simulation ran).
  double CappedTotalSeconds() const {
    return capped_io_seconds + compute_seconds;
  }
  double SavingsFraction() const {
    double base = static_cast<double>(baseline_read_bytes) +
                  static_cast<double>(baseline_write_bytes);
    if (base == 0) return 0.0;
    return 1.0 - static_cast<double>(TotalBytes()) / base;
  }
};

/// \brief Evaluates the cost of executing `program` under `schedule` while
/// exploiting exactly the sharing opportunities in `realized`.
PlanCost EvaluatePlanCost(const Program& program, const Schedule& schedule,
                          const std::vector<const CoAccess*>& realized,
                          const CostModelOptions& options = {});

struct CacheSimOptions {
  ReplacementKind policy = ReplacementKind::kLru;
  int64_t cap_bytes = std::numeric_limits<int64_t>::max();
  /// false: plan-exact replay (saved reads from memory, every other read
  /// from disk — the policy affects evictions only). true: the
  /// ExecMode::kOpportunisticCache ablation (sharing ignored; residency
  /// under the cap and policy decides every read) — where the LRU-vs-OPT
  /// read gap lives.
  bool opportunistic = false;
};

struct CacheSimResult {
  int64_t block_reads = 0;
  int64_t block_writes = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t dirty_writebacks = 0;  // always 0: the engine is write-through
  /// Opportunistic replay: reads served from residency instead of disk.
  int64_t policy_saved_reads = 0;
  double io_seconds = 0.0;  // volumes at the CostModelOptions rates
};

/// \brief Replays the plan's block access script against a real BufferPool
/// with the given policy and cap, mirroring the depth-0 serial engine
/// exactly: predicted block_reads/evictions/hits/misses equal a measured
/// serial run's ExecStats/BufferPoolStats for every policy and cap.
/// Fails with kResourceExhausted when a single instance's pinned footprint
/// exceeds the cap (the engine would fail identically).
Result<CacheSimResult> SimulateCacheBehavior(
    const Program& program, const Schedule& schedule,
    const std::vector<const CoAccess*>& realized, const CacheSimOptions& sim,
    const CostModelOptions& options = {});

/// One tenant of a multi-tenant cache simulation: a planned program plus
/// its mapping into the shared pool's namespace.
struct TenantCacheScript {
  const Program* program = nullptr;
  const Schedule* schedule = nullptr;
  std::vector<const CoAccess*> realized;
  /// Program array id -> shared-pool array id (the session runtime's
  /// PoolIdFor registry). Empty = identity (distinct tenants then collide
  /// on array ids — only correct for a single tenant).
  std::vector<int> pool_array_ids;
  /// Session budget ledger the replay charges (0 = the pool cap). Must
  /// admit the plan's peak footprint: the sim fails where the engine
  /// would park.
  int64_t budget_bytes = 0;
};

struct MultiTenantCacheResult {
  /// Pool-global counters (hits/misses/evictions) plus summed traffic.
  CacheSimResult total;
  /// Per-session I/O attribution: block_reads/block_writes/bytes and
  /// policy_saved_reads are per tenant; hits/misses/evictions (pool-global
  /// by nature) stay zero here.
  std::vector<CacheSimResult> per_tenant;
};

/// \brief Replays an interleaving of several tenants' access scripts
/// against one shared BufferPool, mirroring the session-mode depth-0
/// serial engine exactly (multi-tenant read discipline: a resident block
/// is served from memory and counts policy_saved_reads unless the
/// tenant's own plan saved it; misses read disk).
///
/// `interleaving` lists the tenant index whose next statement instance
/// runs at each global step; tenant t must appear exactly
/// (t's scheduled instance count) times. Pool operations are replayed at
/// lockstep-turn granularity — each step performs the previous instance's
/// write-out/unpin, then the next instance's clock advance and fetches —
/// matching an engine run whose kernels are serialized in the same order
/// (see LockstepGate in ops/lockstep.h). Under merged-clock ScheduleOpt
/// the per-tenant binds/clocks evolve exactly as the engine's, so
/// per-tenant reads and pool-global evictions are an exact oracle for
/// such a run.
///
/// `sim.opportunistic` drops each tenant's realized sharing set (the
/// engine's kOpportunisticCache mode); `sim.policy`/`sim.cap_bytes`
/// configure the shared pool.
Result<MultiTenantCacheResult> SimulateMultiTenantCache(
    const std::vector<TenantCacheScript>& tenants,
    const std::vector<int>& interleaving, const CacheSimOptions& sim,
    const CostModelOptions& options = {});

}  // namespace riot

#endif  // RIOTSHARE_CORE_COST_MODEL_H_
