// Plan costing (paper Section 5.4): exact I/O volume, modeled I/O time, and
// peak memory requirement of a schedule realizing a set of sharing
// opportunities.
//
// The evaluation sweeps statement instances in scheduled order under the
// linear sharing model. Because the system works at block granularity and
// the extents are instance-exact, predicted I/O volume matches executed I/O
// volume byte-for-byte (the paper reports 0.6-2.3% error only because it
// converts volume to seconds with a two-rate disk model; we expose both).
#ifndef RIOTSHARE_CORE_COST_MODEL_H_
#define RIOTSHARE_CORE_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/coaccess.h"
#include "ir/program.h"
#include "ir/schedule.h"

namespace riot {

struct CostModelOptions {
  /// Sustained sequential rates used to convert volume to time; defaults are
  /// the paper's measured 96 MB/s read and 60 MB/s write (Section 6 setup).
  double read_mb_per_s = 96.0;
  double write_mb_per_s = 60.0;
};

struct PlanCost {
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;
  int64_t baseline_read_bytes = 0;
  int64_t baseline_write_bytes = 0;
  int64_t block_reads = 0;   // I/O request counts at block grain
  int64_t block_writes = 0;
  int64_t peak_memory_bytes = 0;
  double io_seconds = 0.0;
  double baseline_io_seconds = 0.0;

  int64_t TotalBytes() const { return read_bytes + write_bytes; }
  double SavingsFraction() const {
    double base = static_cast<double>(baseline_read_bytes) +
                  static_cast<double>(baseline_write_bytes);
    if (base == 0) return 0.0;
    return 1.0 - static_cast<double>(TotalBytes()) / base;
  }
};

/// \brief Evaluates the cost of executing `program` under `schedule` while
/// exploiting exactly the sharing opportunities in `realized`.
PlanCost EvaluatePlanCost(const Program& program, const Schedule& schedule,
                          const std::vector<const CoAccess*>& realized,
                          const CostModelOptions& options = {});

}  // namespace riot

#endif  // RIOTSHARE_CORE_COST_MODEL_H_
