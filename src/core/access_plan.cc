#include "core/access_plan.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "util/logging.h"

namespace riot {

AccessScript BuildAccessScript(const Program& program,
                               const RealizedPlan& rp) {
  AccessScript script;
  script.num_groups = rp.num_groups;
  script.per_pos.resize(rp.order.size());

  // Retention lookup: (source position, array, block) -> furthest end group.
  std::map<std::tuple<size_t, int, int64_t>, size_t> retain_at;
  for (const auto& span : rp.spans) {
    auto key = std::make_tuple(span.begin_pos, span.array_id, span.block);
    auto it = retain_at.find(key);
    if (it == retain_at.end() || it->second < span.end_group) {
      retain_at[key] = span.end_group;
    }
  }

  // Latest write position so far per (array, block), for read dep_pos.
  std::map<std::pair<int, int64_t>, size_t> last_write;

  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    const auto& inst = rp.order[pos];
    const Statement& st = program.statement(inst.stmt_id);
    script.per_pos[pos].first = static_cast<uint32_t>(script.records.size());
    int64_t inst_bytes = 0;
    // Reads first, then the write — the engine's fetch order (a read may
    // populate the frame the write access aliases).
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t ai = 0; ai < st.accesses.size(); ++ai) {
        const Access& a = st.accesses[ai];
        if ((pass == 0) != (a.type == AccessType::kRead)) continue;
        if (!a.ActiveAt(inst.iter)) continue;
        const ArrayInfo& arr = program.array(a.array_id);
        BlockAccessRecord rec;
        rec.pos = pos;
        rec.group = rp.group_of[pos];
        rec.stmt_id = inst.stmt_id;
        rec.access_idx = static_cast<int>(ai);
        rec.array_id = a.array_id;
        rec.block = arr.LinearBlockIndex(a.BlockAt(inst.iter));
        rec.bytes = arr.BlockBytes();
        rec.type = a.type;
        AccessInstanceKey key{inst.stmt_id, inst.iter, rec.access_idx};
        if (a.type == AccessType::kRead) {
          rec.saved = rp.saved_reads.count(key) > 0;
          auto w = last_write.find({rec.array_id, rec.block});
          if (w != last_write.end()) {
            rec.dep_pos = static_cast<int64_t>(w->second);
          }
        } else {
          rec.saved = rp.saved_writes.count(key) > 0 ||
                      rp.elided_writes.count(key) > 0;
          last_write[{rec.array_id, rec.block}] = pos;
        }
        auto rit = retain_at.find(std::make_tuple(pos, rec.array_id,
                                                  rec.block));
        if (rit != retain_at.end()) {
          rec.retain_until_group = static_cast<int64_t>(rit->second);
        }
        inst_bytes += rec.bytes;
        script.records.push_back(rec);
      }
    }
    script.per_pos[pos].second = static_cast<uint32_t>(script.records.size());
    script.max_instance_bytes =
        std::max(script.max_instance_bytes, inst_bytes);
  }

  // Annotation pass: per-(array, block) use positions, then each record's
  // next use (the first use strictly after its own position).
  for (const BlockAccessRecord& rec : script.records) {
    std::vector<int64_t>& uses =
        script.block_uses[{rec.array_id, rec.block}];
    const int64_t pos = static_cast<int64_t>(rec.pos);
    if (uses.empty() || uses.back() != pos) uses.push_back(pos);
  }
  for (BlockAccessRecord& rec : script.records) {
    const std::vector<int64_t>& uses =
        script.block_uses.at({rec.array_id, rec.block});
    auto next = std::upper_bound(uses.begin(), uses.end(),
                                 static_cast<int64_t>(rec.pos));
    rec.next_use_pos = next == uses.end() ? -1 : *next;
  }
  return script;
}

InstanceDag BuildInstanceDag(const AccessScript& script) {
  InstanceDag dag;
  const size_t n = script.per_pos.size();
  dag.succ.resize(n);
  dag.pred_count.assign(n, 0);

  std::set<std::pair<uint32_t, uint32_t>> edges;
  auto add_edge = [&](size_t from, size_t to) {
    if (from == to) return;  // accesses within one instance are not edges
    RIOT_CHECK_LT(from, to) << "dependence edge must point forward";
    auto key = std::make_pair(static_cast<uint32_t>(from),
                              static_cast<uint32_t>(to));
    if (edges.insert(key).second) {
      dag.succ[from].push_back(key.second);
      ++dag.pred_count[to];
    }
  };

  // Per-(array, block) scan state. `readers` holds every read since the
  // last write (WAR sources); `materializer` is the latest access that
  // (re)loaded or produced the in-memory frame (write or non-saved read),
  // which saved reads must run after.
  struct BlockState {
    int64_t last_write = -1;
    int64_t materializer = -1;
    std::vector<uint32_t> readers;
  };
  std::map<std::pair<int, int64_t>, BlockState> state;

  for (const BlockAccessRecord& rec : script.records) {
    BlockState& bs = state[{rec.array_id, rec.block}];
    if (rec.type == AccessType::kRead) {
      if (bs.last_write >= 0) {
        add_edge(static_cast<size_t>(bs.last_write), rec.pos);  // RAW
      }
      if (rec.saved && bs.materializer >= 0) {
        add_edge(static_cast<size_t>(bs.materializer), rec.pos);
      }
      if (!rec.saved) bs.materializer = static_cast<int64_t>(rec.pos);
      bs.readers.push_back(static_cast<uint32_t>(rec.pos));
    } else {
      for (uint32_t r : bs.readers) add_edge(r, rec.pos);  // WAR
      if (bs.last_write >= 0) {
        add_edge(static_cast<size_t>(bs.last_write), rec.pos);  // WAW
      }
      bs.last_write = static_cast<int64_t>(rec.pos);
      bs.materializer = static_cast<int64_t>(rec.pos);
      bs.readers.clear();
    }
  }

  // Sort successor lists and derive the level structure. Position order is
  // topological (edges point forward), so one forward sweep suffices.
  std::vector<size_t> depth(n, 0);
  for (size_t p = 0; p < n; ++p) {
    std::sort(dag.succ[p].begin(), dag.succ[p].end());
    for (uint32_t s : dag.succ[p]) {
      depth[s] = std::max(depth[s], depth[p] + 1);
    }
  }
  std::map<size_t, size_t> width_at;
  for (size_t p = 0; p < n; ++p) {
    dag.critical_path = std::max(dag.critical_path, depth[p] + 1);
    dag.max_width = std::max(dag.max_width, ++width_at[depth[p]]);
  }
  return dag;
}

}  // namespace riot
