#include "core/access_plan.h"

#include <map>
#include <tuple>

#include "util/logging.h"

namespace riot {

AccessScript BuildAccessScript(const Program& program,
                               const RealizedPlan& rp) {
  AccessScript script;
  script.num_groups = rp.num_groups;
  script.per_pos.resize(rp.order.size());

  // Retention lookup: (source position, array, block) -> furthest end group.
  std::map<std::tuple<size_t, int, int64_t>, size_t> retain_at;
  for (const auto& span : rp.spans) {
    auto key = std::make_tuple(span.begin_pos, span.array_id, span.block);
    auto it = retain_at.find(key);
    if (it == retain_at.end() || it->second < span.end_group) {
      retain_at[key] = span.end_group;
    }
  }

  // Latest write position so far per (array, block), for read dep_pos.
  std::map<std::pair<int, int64_t>, size_t> last_write;

  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    const auto& inst = rp.order[pos];
    const Statement& st = program.statement(inst.stmt_id);
    script.per_pos[pos].first = static_cast<uint32_t>(script.records.size());
    int64_t inst_bytes = 0;
    // Reads first, then the write — the engine's fetch order (a read may
    // populate the frame the write access aliases).
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t ai = 0; ai < st.accesses.size(); ++ai) {
        const Access& a = st.accesses[ai];
        if ((pass == 0) != (a.type == AccessType::kRead)) continue;
        if (!a.ActiveAt(inst.iter)) continue;
        const ArrayInfo& arr = program.array(a.array_id);
        BlockAccessRecord rec;
        rec.pos = pos;
        rec.group = rp.group_of[pos];
        rec.stmt_id = inst.stmt_id;
        rec.access_idx = static_cast<int>(ai);
        rec.array_id = a.array_id;
        rec.block = arr.LinearBlockIndex(a.BlockAt(inst.iter));
        rec.bytes = arr.BlockBytes();
        rec.type = a.type;
        AccessInstanceKey key{inst.stmt_id, inst.iter, rec.access_idx};
        if (a.type == AccessType::kRead) {
          rec.saved = rp.saved_reads.count(key) > 0;
          auto w = last_write.find({rec.array_id, rec.block});
          if (w != last_write.end()) {
            rec.dep_pos = static_cast<int64_t>(w->second);
          }
        } else {
          rec.saved = rp.saved_writes.count(key) > 0 ||
                      rp.elided_writes.count(key) > 0;
          last_write[{rec.array_id, rec.block}] = pos;
        }
        auto rit = retain_at.find(std::make_tuple(pos, rec.array_id,
                                                  rec.block));
        if (rit != retain_at.end()) {
          rec.retain_until_group = static_cast<int64_t>(rit->second);
        }
        inst_bytes += rec.bytes;
        script.records.push_back(rec);
      }
    }
    script.per_pos[pos].second = static_cast<uint32_t>(script.records.size());
    script.max_instance_bytes =
        std::max(script.max_instance_bytes, inst_bytes);
  }
  return script;
}

}  // namespace riot
