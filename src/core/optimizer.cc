#include "core/optimizer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace riot {

std::string Plan::DescribeOpportunities(const Program& p,
                                        const std::vector<CoAccess>& o) const {
  if (opportunities.empty()) return "(none)";
  std::ostringstream os;
  for (size_t i = 0; i < opportunities.size(); ++i) {
    if (i) os << ", ";
    os << o[static_cast<size_t>(opportunities[i])].Label(p);
  }
  return os.str();
}

namespace {

// Generates size-k candidates whose every (k-1)-subset is feasible
// (Apriori candidate generation; Algorithm 2 line 5).
std::vector<std::vector<int>> GenerateCandidates(
    const std::set<std::vector<int>>& feasible_km1, size_t k, int num_opps,
    bool use_apriori, int64_t* pruned) {
  std::vector<std::vector<int>> candidates;
  if (k == 1) {
    for (int i = 0; i < num_opps; ++i) candidates.push_back({i});
    return candidates;
  }
  // Join step: extend each feasible (k-1)-set with a larger element.
  std::set<std::vector<int>> seen;
  auto all_subsets_feasible = [&](const std::vector<int>& c) {
    std::vector<int> sub(c.begin(), c.end() - 1);
    for (size_t drop = 0; drop + 1 < c.size(); ++drop) {
      sub = c;
      sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(drop));
      if (!feasible_km1.count(sub)) return false;
    }
    return true;
  };
  std::set<std::vector<int>> base;
  if (use_apriori) {
    base = feasible_km1;
  } else {
    // Exhaustive: every (k-1)-subset of opportunity ids.
    std::vector<int> idx(k - 1);
    std::function<void(size_t, int)> gen = [&](size_t pos, int start) {
      if (pos == k - 1) {
        base.insert(idx);
        return;
      }
      for (int i = start; i < num_opps; ++i) {
        idx[pos] = i;
        gen(pos + 1, i + 1);
      }
    };
    gen(0, 0);
  }
  for (const auto& s : base) {
    for (int next = s.back() + 1; next < num_opps; ++next) {
      std::vector<int> c = s;
      c.push_back(next);
      if (seen.count(c)) continue;
      seen.insert(c);
      if (use_apriori && !all_subsets_feasible(c)) {
        ++*pruned;
        continue;
      }
      candidates.push_back(c);
    }
  }
  return candidates;
}

}  // namespace

OptimizationResult Optimize(const Program& program,
                            const OptimizerOptions& options) {
  auto t0 = std::chrono::steady_clock::now();
  // Multi-tenant hint: plan selection (and pressure simulation) happens
  // against the per-session slice of the pool, not the whole cap.
  const int sessions = std::max(1, options.concurrent_sessions);
  const int64_t session_cap_bytes = options.memory_cap_bytes / sessions;
  CostModelOptions session_cost = options.cost;
  if (session_cost.pressure_cap_bytes > 0) {
    session_cost.pressure_cap_bytes /= sessions;
  }
  if (options.calibrate_compute_rates && !session_cost.compute.has_value()) {
    // One measurement per process and worker count: every Optimize call at
    // the same calibrate_exec_threads shares a table so repeated
    // optimizations don't each pay the calibration budget (and rank
    // identically within a run).
    static std::mutex calibrated_mu;
    static std::map<int, KernelRateTable>* calibrated_by_workers =
        new std::map<int, KernelRateTable>();
    const int workers = std::max(1, options.calibrate_exec_threads);
    std::lock_guard<std::mutex> lock(calibrated_mu);
    auto it = calibrated_by_workers->find(workers);
    if (it == calibrated_by_workers->end()) {
      it = calibrated_by_workers
               ->emplace(workers, CalibrateKernelRates(
                                      options.calibrate_budget_ms, workers))
               .first;
    }
    session_cost.compute = it->second;
  }
  OptimizationResult result;
  result.analysis = AnalyzeProgram(program, options.analysis);
  const auto& sharing = result.analysis.sharing;
  const int num_opps = static_cast<int>(sharing.size());

  ScheduleSolver solver(program, result.analysis.dependences, options.solver);

  // Candidate enumeration costs every plan with the exact linear model
  // only; the (much dearer) capped cache simulation is deferred to the
  // pressure fallback below, which runs it for the few surviving plans and
  // only when no plan fits the cap.
  CostModelOptions enumerate_cost = session_cost;  // incl. calibrated rates
  enumerate_cost.pressure_cap_bytes = 0;

  auto add_plan = [&](std::vector<int> opps, Schedule sched) {
    Plan plan;
    plan.opportunities = std::move(opps);
    std::vector<const CoAccess*> q;
    for (int oi : plan.opportunities) {
      q.push_back(&sharing[static_cast<size_t>(oi)]);
    }
    plan.cost = EvaluatePlanCost(program, sched, q, enumerate_cost);
    plan.schedule = std::move(sched);
    result.plans.push_back(std::move(plan));
  };

  // Plan 0: the unmodified original schedule.
  add_plan({}, program.original_schedule());

  // Warm the per-statement instance cache before the parallel section (the
  // cache is lazily built and not thread-safe to initialize concurrently).
  for (const auto& s : program.statements()) program.InstancesOf(s.id);

  const size_t workers =
      options.num_threads > 0
          ? options.num_threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());

  std::set<std::vector<int>> feasible_prev;  // C_{k-1}
  size_t k = 1;
  while (k <= static_cast<size_t>(num_opps) &&
         k <= options.max_combination_size &&
         (k == 1 || !feasible_prev.empty())) {
    auto candidates = GenerateCandidates(feasible_prev, k, num_opps,
                                         options.use_apriori,
                                         &result.candidates_pruned);
    result.candidates_tested += static_cast<int64_t>(candidates.size());
    // Test candidates in parallel; they are independent (FindSchedule is
    // const and ScheduleSolver's stats are atomic).
    std::vector<std::optional<Schedule>> found(candidates.size());
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= candidates.size()) break;
        std::vector<const CoAccess*> q;
        for (int oi : candidates[i]) {
          q.push_back(&sharing[static_cast<size_t>(oi)]);
        }
        found[i] = solver.FindSchedule(q);
      }
    };
    std::vector<std::thread> pool;
    for (size_t t = 1; t < std::min(workers, candidates.size()); ++t) {
      pool.emplace_back(worker);
    }
    worker();
    for (auto& t : pool) t.join();

    std::set<std::vector<int>> feasible_k;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!found[i]) continue;
      ++result.schedules_found;
      feasible_k.insert(candidates[i]);
      add_plan(candidates[i], std::move(*found[i]));
    }
    feasible_prev = std::move(feasible_k);
    ++k;
  }

  // Best plan under the (per-session) memory cap.
  result.best_index = 0;
  for (size_t i = 0; i < result.plans.size(); ++i) {
    const Plan& p = result.plans[i];
    if (p.cost.peak_memory_bytes > session_cap_bytes) continue;
    const Plan& cur = result.plans[static_cast<size_t>(result.best_index)];
    const bool cur_fits = cur.cost.peak_memory_bytes <= session_cap_bytes;
    if (!cur_fits || p.cost.TotalSeconds() < cur.cost.TotalSeconds()) {
      result.best_index = static_cast<int>(i);
    }
  }

  // Memory-pressure pricing: when no plan's exact requirement fits the cap
  // and the cost model simulated a bounded cache
  // (CostModelOptions::pressure_cap_bytes), rank by simulated capped I/O
  // time instead of defaulting to the original schedule — the schedule
  // that degrades best under a plain replacement policy wins.
  if (session_cost.pressure_cap_bytes > 0 &&
      result.plans[static_cast<size_t>(result.best_index)]
              .cost.peak_memory_bytes > session_cap_bytes) {
    CacheSimOptions sim;
    sim.policy = session_cost.pressure_policy;
    sim.cap_bytes = session_cost.pressure_cap_bytes;
    sim.opportunistic = true;
    int best_capped = -1;
    for (size_t i = 0; i < result.plans.size(); ++i) {
      Plan& p = result.plans[i];
      std::vector<const CoAccess*> q;
      for (int oi : p.opportunities) {
        q.push_back(&sharing[static_cast<size_t>(oi)]);
      }
      auto r = SimulateCacheBehavior(program, p.schedule, q, sim,
                                     session_cost);
      if (!r.ok()) continue;  // infeasible at the cap
      p.cost.capped_block_reads = r->block_reads;
      p.cost.capped_evictions = r->evictions;
      p.cost.capped_io_seconds = r->io_seconds;
      if (best_capped < 0 ||
          p.cost.CappedTotalSeconds() <
              result.plans[static_cast<size_t>(best_capped)]
                  .cost.CappedTotalSeconds()) {
        best_capped = static_cast<int>(i);
      }
    }
    if (best_capped >= 0) result.best_index = best_capped;
  }

  result.optimize_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace riot
