// FindSchedule (paper Algorithm 3): given the program's dependences and a
// candidate set Q of sharing opportunities, construct a (d~+1)-dimensional
// affine schedule that
//   * weakly satisfies every dependence at every depth and strongly
//     satisfies each one at some depth (or at the final constant dimension),
//   * realizes every opportunity in Q per the constraints of Table 1,
//   * maps every statement instance to a unique time (dimensionality
//     constraints driven by EnumRow, Algorithm 1), and
// returns nullopt when no such schedule exists.
//
// Constraints on each schedule row are linear in the row's coefficients;
// rows are found depth-by-depth, sampling an integer coefficient vector with
// minimum L1 norm at each depth (exact branch-and-bound ILP), which
// reproduces the paper's published schedules (coefficients in {-1, 0, 1}).
#ifndef RIOTSHARE_CORE_SCHEDULE_SOLVER_H_
#define RIOTSHARE_CORE_SCHEDULE_SOLVER_H_

#include <atomic>
#include <optional>
#include <vector>

#include "analysis/coaccess.h"
#include "ir/program.h"
#include "ir/schedule.h"

namespace riot {

struct SolverOptions {
  /// Box bound on schedule coefficients during integer sampling.
  int64_t coeff_bound = 3;
};

struct SolverStats {
  std::atomic<int64_t> lp_calls{0};
  std::atomic<int64_t> ilp_calls{0};
};

class ScheduleSolver {
 public:
  ScheduleSolver(const Program& program, std::vector<CoAccess> dependences,
                 SolverOptions options = {});

  /// Attempts to find a legal schedule realizing all opportunities in q.
  std::optional<Schedule> FindSchedule(
      const std::vector<const CoAccess*>& q) const;

  /// Exact legality check: every dependence pair strictly ordered and all
  /// instance times unique under `sched`.
  bool IsLegal(const Schedule& sched) const;

  /// Exact realization check of Table 1 for one opportunity under `sched`
  /// (used by tests and by FindSchedule's final verification).
  bool Realizes(const Schedule& sched, const CoAccess& opp) const;

  const std::vector<CoAccess>& dependences() const { return deps_; }
  SolverStats& stats() const { return stats_; }

 private:
  struct JointSpace;

  const Program& prog_;
  std::vector<CoAccess> deps_;
  SolverOptions opts_;
  mutable SolverStats stats_;
};

}  // namespace riot

#endif  // RIOTSHARE_CORE_SCHEDULE_SOLVER_H_
