#include "core/schedule_solver.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "ilp/ilp.h"
#include "ilp/simplex.h"
#include "util/logging.h"

namespace riot {

namespace {

// Variable layout of one schedule row across all statements:
// statement s owns [offset[s], offset[s] + depth(s)] — iteration coefficients
// followed by one constant term.
struct Layout {
  std::vector<size_t> offset;
  std::vector<size_t> depth;
  size_t dim = 0;
};

Layout MakeLayout(const Program& prog) {
  Layout l;
  for (const auto& s : prog.statements()) {
    l.offset.push_back(l.dim);
    l.depth.push_back(s.depth());
    l.dim += s.depth() + 1;
  }
  return l;
}

// Linear form (over one row's joint coefficient vector) whose value equals
// theta_dst(y) - theta_src(x).
RVector PairForm(const Layout& l, int src_stmt,
                 const std::vector<int64_t>& x, int dst_stmt,
                 const std::vector<int64_t>& y) {
  RVector f(l.dim);
  const size_t od = l.offset[static_cast<size_t>(dst_stmt)];
  for (size_t j = 0; j < y.size(); ++j) f[od + j] += Rational(y[j]);
  f[od + y.size()] += Rational(1);
  const size_t os = l.offset[static_cast<size_t>(src_stmt)];
  for (size_t j = 0; j < x.size(); ++j) f[os + j] -= Rational(x[j]);
  f[os + x.size()] -= Rational(1);
  return f;
}

std::string ConstraintKey(const LpConstraint& c) {
  std::ostringstream os;
  os << static_cast<int>(c.op) << "|" << c.rhs.ToString();
  for (size_t i = 0; i < c.coeffs.size(); ++i) {
    if (!c.coeffs[i].IsZero()) os << "|" << i << ":" << c.coeffs[i].ToString();
  }
  return os.str();
}

// Constraint pool with deduplication (many instance pairs induce the same
// linear constraint on schedule coefficients).
class Pool {
 public:
  void Add(LpConstraint c) {
    std::string key = ConstraintKey(c);
    if (seen_.insert(std::move(key)).second) {
      cons_.push_back(std::move(c));
    }
  }
  void AddAll(const std::vector<LpConstraint>& cs) {
    for (const auto& c : cs) Add(c);
  }
  const std::vector<LpConstraint>& constraints() const { return cons_; }
  size_t size() const { return cons_.size(); }
  void TruncateTo(size_t n) {
    while (cons_.size() > n) {
      seen_.erase(ConstraintKey(cons_.back()));
      cons_.pop_back();
    }
  }

 private:
  std::vector<LpConstraint> cons_;
  std::set<std::string> seen_;
};

}  // namespace

ScheduleSolver::ScheduleSolver(const Program& program,
                               std::vector<CoAccess> dependences,
                               SolverOptions options)
    : prog_(program), deps_(std::move(dependences)), opts_(options) {}

std::optional<Schedule> ScheduleSolver::FindSchedule(
    const std::vector<const CoAccess*>& q) const {
  const Layout layout = MakeLayout(prog_);
  const size_t dmax = prog_.MaxDepth();
  const size_t n = prog_.statements().size();

  std::vector<std::vector<std::vector<int64_t>>> rows(n);  // sampled, per stmt
  std::vector<size_t> ki(n, 0);  // independent rows so far
  std::vector<bool> dep_satisfied(deps_.size(), false);

  auto feasible = [&](const std::vector<LpConstraint>& cs) {
    ++stats_.lp_calls;
    auto f = LpFeasible(layout.dim, cs);
    if (!f.ok()) {
      // Pivot budget exhausted: treat the candidate row as infeasible —
      // the solver simply fails to find a schedule for this combination
      // rather than hanging or aborting the whole optimization.
      RIOT_LOG(Warning) << "schedule LP gave up: " << f.status().ToString();
      return false;
    }
    return *f;
  };

  for (size_t d = 1; d <= dmax; ++d) {
    Pool pool;
    // Weakly satisfy remaining dependence constraints (Alg. 3 lines 11-12).
    for (size_t di = 0; di < deps_.size(); ++di) {
      if (dep_satisfied[di]) continue;
      for (const auto& pr : deps_[di].generators) {
        pool.Add({PairForm(layout, deps_[di].src.stmt_id, pr.src_iter,
                           deps_[di].dst.stmt_id, pr.dst_iter),
                  CmpOp::kGe, Rational(0)});
      }
    }
    // Sharing opportunity constraints (Table 1; Alg. 3 lines 13-26).
    for (const CoAccess* o : q) {
      const bool self = o->IsSelf();
      if (!self || d < dmax) {
        for (const auto& pr : o->generators) {
          pool.Add({PairForm(layout, o->src.stmt_id, pr.src_iter,
                             o->dst.stmt_id, pr.dst_iter),
                    CmpOp::kEq, Rational(0)});
        }
        continue;
      }
      // Self opportunity at the deepest non-constant dimension.
      const bool write_src = o->src_type == AccessType::kWrite ||
                             o->dst_type == AccessType::kWrite;
      if (write_src) {
        for (const auto& pr : o->generators) {
          pool.Add({PairForm(layout, o->src.stmt_id, pr.src_iter,
                             o->dst.stmt_id, pr.dst_iter),
                    CmpOp::kEq, Rational(1)});
        }
      } else {
        // Self R->R: a uniform c in {+1, -1} (new schedule may reverse the
        // two reads). Greedily try +1 then -1.
        bool placed = false;
        for (int sign : {+1, -1}) {
          size_t mark = pool.size();
          for (const auto& pr : o->generators) {
            pool.Add({PairForm(layout, o->src.stmt_id, pr.src_iter,
                               o->dst.stmt_id, pr.dst_iter),
                      CmpOp::kEq, Rational(sign)});
          }
          if (feasible(pool.constraints())) {
            placed = true;
            break;
          }
          pool.TruncateTo(mark);
        }
        if (!placed) return std::nullopt;
      }
    }
    if (!feasible(pool.constraints())) return std::nullopt;

    // Dimensionality constraints (Alg. 3 lines 28-38, EnumRow = Alg. 1).
    std::vector<std::vector<size_t>> nonzero_groups;
    for (size_t i = 0; i < n; ++i) {
      const size_t ds = layout.depth[i];
      std::vector<int> l_options;
      if (dmax - (d - 1) == ds - ki[i]) {
        l_options = {1};  // forced independent to reach full rank
      } else if (ki[i] == ds) {
        l_options = {0};  // rank complete; only dependent rows remain
      } else {
        l_options = {0, 1};
      }
      // Previous rows of this statement, iteration-coefficient part only.
      RMatrix prev(0, ds);
      for (const auto& row : rows[i]) {
        RVector v(ds);
        for (size_t j = 0; j < ds; ++j) {
          v[j] = Rational(row[layout.offset[i] + j]);
        }
        prev.AppendRow(v);
      }
      bool locked = false;
      for (int l : l_options) {
        size_t mark = pool.size();
        if (l == 0) {
          // Row must lie in the span of previous rows: orthogonal to every
          // null-space basis vector of prev.
          for (const auto& b : prev.NullSpaceBasis()) {
            RVector c(layout.dim);
            for (size_t j = 0; j < ds; ++j) c[layout.offset[i] + j] = b[j];
            pool.Add({std::move(c), CmpOp::kEq, Rational(0)});
          }
        } else {
          // Row must lie in the null space of previous rows (guarantees
          // linear independence for a nonzero row).
          for (size_t r = 0; r < prev.rows(); ++r) {
            RVector c(layout.dim);
            for (size_t j = 0; j < ds; ++j) {
              c[layout.offset[i] + j] = prev.At(r, j);
            }
            pool.Add({std::move(c), CmpOp::kEq, Rational(0)});
          }
        }
        bool ok = feasible(pool.constraints());
        if (ok && l == 1) {
          // Additionally require that a nonzero iteration part exists.
          ok = false;
          for (size_t j = 0; j < ds && !ok; ++j) {
            for (int sign : {+1, -1}) {
              auto cs = pool.constraints();
              RVector c(layout.dim);
              c[layout.offset[i] + j] = Rational(1);
              cs.push_back({std::move(c), sign > 0 ? CmpOp::kGe : CmpOp::kLe,
                            Rational(sign)});
              if (feasible(cs)) {
                ok = true;
                break;
              }
            }
          }
        }
        if (ok) {
          ki[i] += static_cast<size_t>(l);
          if (l == 1) {
            std::vector<size_t> group;
            for (size_t j = 0; j < ds; ++j) {
              group.push_back(layout.offset[i] + j);
            }
            nonzero_groups.push_back(std::move(group));
          }
          locked = true;
          break;
        }
        pool.TruncateTo(mark);
      }
      if (!locked) return std::nullopt;
    }

    // Strongly satisfy remaining dependences where possible (lines 39-43).
    for (size_t di = 0; di < deps_.size(); ++di) {
      if (dep_satisfied[di]) continue;
      size_t mark = pool.size();
      for (const auto& pr : deps_[di].generators) {
        pool.Add({PairForm(layout, deps_[di].src.stmt_id, pr.src_iter,
                           deps_[di].dst.stmt_id, pr.dst_iter),
                  CmpOp::kGe, Rational(1)});
      }
      if (feasible(pool.constraints())) {
        dep_satisfied[di] = true;
      } else {
        pool.TruncateTo(mark);
      }
    }

    // Sample an integer row (line 44), honoring nonzero groups via DFS.
    std::function<std::optional<std::vector<int64_t>>(
        std::vector<LpConstraint>&, size_t)>
        sample = [&](std::vector<LpConstraint>& cs,
                     size_t gi) -> std::optional<std::vector<int64_t>> {
      if (gi == nonzero_groups.size()) {
        ++stats_.ilp_calls;
        IlpOptions io;
        io.var_bound = opts_.coeff_bound;
        // Constants may legitimately be as large as the sum of all loop
        // trip counts (sequential composition of nests in one time dim).
        int64_t const_bound = 2;
        for (const auto& st : prog_.statements()) {
          for (size_t dd = 0; dd < st.depth(); ++dd) {
            auto bb = st.domain.IntegerVarBounds(dd);
            if (bb) const_bound += (bb->second - bb->first + 1);
          }
        }
        io.var_bounds.assign(layout.dim, opts_.coeff_bound);
        for (size_t i = 0; i < n; ++i) {
          io.var_bounds[layout.offset[i] + layout.depth[i]] = const_bound;
        }
        return FindIntegerPoint(layout.dim, cs, /*minimize_l1=*/true, io);
      }
      for (size_t v : nonzero_groups[gi]) {
        for (int sign : {+1, -1}) {
          RVector c(layout.dim);
          c[v] = Rational(1);
          cs.push_back({std::move(c), sign > 0 ? CmpOp::kGe : CmpOp::kLe,
                        Rational(sign)});
          if (feasible(cs)) {
            auto r = sample(cs, gi + 1);
            if (r) return r;
          }
          cs.pop_back();
        }
      }
      return std::nullopt;
    };
    auto cs = pool.constraints();
    auto row = sample(cs, 0);
    if (!row) return std::nullopt;
    for (size_t i = 0; i < n; ++i) rows[i].push_back(*row);
  }

  // Last (constant) schedule dimension: topological assignment (Section 5.2
  // final remark). Build precedence edges among statements.
  std::vector<std::vector<int64_t>> consts_needed;  // edges (src, dst)
  std::set<std::pair<int, int>> edges;
  auto row_value = [&](size_t stmt, size_t depth_idx,
                       const std::vector<int64_t>& iter) {
    const auto& row = rows[stmt][depth_idx];
    int64_t acc = row[layout.offset[stmt] + layout.depth[stmt]];
    for (size_t j = 0; j < iter.size(); ++j) {
      acc += row[layout.offset[stmt] + j] * iter[j];
    }
    return acc;
  };
  for (size_t di = 0; di < deps_.size(); ++di) {
    for (const auto& pr : deps_[di].pairs) {
      bool strict = false;
      bool illegal = false;
      for (size_t d = 0; d < dmax; ++d) {
        int64_t vs = row_value(static_cast<size_t>(deps_[di].src.stmt_id), d,
                               pr.src_iter);
        int64_t vd = row_value(static_cast<size_t>(deps_[di].dst.stmt_id), d,
                               pr.dst_iter);
        if (vd > vs) {
          strict = true;
          break;
        }
        if (vd < vs) {
          illegal = true;
          break;
        }
      }
      if (illegal) return std::nullopt;
      if (!strict) {
        if (deps_[di].src.stmt_id == deps_[di].dst.stmt_id) {
          return std::nullopt;  // self dependence unresolvable by constants
        }
        edges.insert({deps_[di].src.stmt_id, deps_[di].dst.stmt_id});
      }
    }
  }
  for (const CoAccess* o : q) {
    if (o->IsSelf()) continue;
    // W->R / W->W require c > 0; R->R only c != 0 but a forward edge is
    // always acceptable when acyclic (distinct constants give c != 0).
    edges.insert({o->src.stmt_id, o->dst.stmt_id});
  }
  // Kahn's algorithm; all constants distinct to guarantee injectivity across
  // statements and nonzero separation for non-self R->R opportunities.
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<int>> adj(n);
  for (auto [a, b] : edges) {
    adj[static_cast<size_t>(a)].push_back(b);
    ++indeg[static_cast<size_t>(b)];
  }
  std::vector<int> order;
  std::vector<int> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<int>(i));
  }
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), std::greater<int>());
    int u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (int v : adj[static_cast<size_t>(u)]) {
      if (--indeg[static_cast<size_t>(v)] == 0) ready.push_back(v);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  std::vector<int64_t> constants(n, 0);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    constants[static_cast<size_t>(order[pos])] = static_cast<int64_t>(pos);
  }

  // Assemble the schedule: dmax sampled rows + the constant row.
  std::vector<RMatrix> mats;
  for (size_t i = 0; i < n; ++i) {
    const size_t ds = layout.depth[i];
    RMatrix m(dmax + 1, ds + 1);
    for (size_t d = 0; d < dmax; ++d) {
      for (size_t j = 0; j <= ds; ++j) {
        m.At(d, j) = Rational(rows[i][d][layout.offset[i] + j]);
      }
    }
    m.At(dmax, ds) = Rational(constants[i]);
    mats.push_back(std::move(m));
  }
  Schedule sched(std::move(mats));

  // Final exact verification: legality + realization of every opportunity.
  if (!IsLegal(sched)) return std::nullopt;
  for (const CoAccess* o : q) {
    if (!Realizes(sched, *o)) return std::nullopt;
  }
  return sched;
}

bool ScheduleSolver::IsLegal(const Schedule& sched) const {
  // Dependence order.
  for (const auto& dep : deps_) {
    for (const auto& pr : dep.pairs) {
      TimeVector ts = sched.TimeOf(dep.src.stmt_id, pr.src_iter);
      TimeVector td = sched.TimeOf(dep.dst.stmt_id, pr.dst_iter);
      if (CompareTime(ts, td) >= 0) return false;
    }
  }
  // Injectivity.
  auto order = prog_.ScheduledOrder(sched);
  for (size_t i = 1; i < order.size(); ++i) {
    if (CompareTime(order[i - 1].time, order[i].time) == 0) return false;
  }
  return true;
}

bool ScheduleSolver::Realizes(const Schedule& sched,
                              const CoAccess& opp) const {
  if (opp.pairs.empty()) return false;
  const size_t rows = sched.depth();
  RIOT_CHECK_GE(rows, 2u);
  int uniform_sign = 0;
  for (const auto& pr : opp.pairs) {
    TimeVector ts = sched.TimeOf(opp.src.stmt_id, pr.src_iter);
    TimeVector td = sched.TimeOf(opp.dst.stmt_id, pr.dst_iter);
    std::vector<int64_t> diff(rows);
    for (size_t r = 0; r < rows; ++r) diff[r] = td[r] - ts[r];
    if (!opp.IsSelf()) {
      // (0, ..., 0, 0, c) with c > 0 (W->*) or c != 0 (R->R).
      for (size_t r = 0; r + 1 < rows; ++r) {
        if (diff[r] != 0) return false;
      }
      int64_t c = diff[rows - 1];
      const bool has_write = opp.src_type == AccessType::kWrite ||
                             opp.dst_type == AccessType::kWrite;
      if (has_write ? c <= 0 : c == 0) return false;
    } else {
      // (0, ..., 0, s, 0) with s = 1 (W->*) or uniform s in {+1,-1} (R->R).
      for (size_t r = 0; r + 2 < rows; ++r) {
        if (diff[r] != 0) return false;
      }
      if (diff[rows - 1] != 0) return false;
      int64_t s = diff[rows - 2];
      const bool has_write = opp.src_type == AccessType::kWrite ||
                             opp.dst_type == AccessType::kWrite;
      if (has_write) {
        if (s != 1) return false;
      } else {
        if (s != 1 && s != -1) return false;
        if (uniform_sign == 0) {
          uniform_sign = static_cast<int>(s);
        } else if (uniform_sign != static_cast<int>(s)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace riot
