// Plan realization: the static interpretation of "schedule + realized
// sharing set" shared by the cost model and the execution engine.
//
// Given a schedule and the subset Q of sharing opportunities the plan
// exploits (paper Section 5.5: code generation must exploit exactly Q, not
// whatever the schedule accidentally enables), this module derives:
//   * the scheduled instance stream, grouped by time prefix (all but the
//     final constant dimension),
//   * which read I/Os are saved (served from a retained in-memory block),
//   * which write I/Os are saved (W->W overwrites) or elided entirely
//     (writes of non-persistent temporaries whose every subsequent read is
//     served from memory — paper footnote 8), and
//   * block retention spans (how long each shared block must stay pinned).
#ifndef RIOTSHARE_CORE_PLAN_REALIZATION_H_
#define RIOTSHARE_CORE_PLAN_REALIZATION_H_

#include <cstdint>
#include <set>
#include <vector>

#include "analysis/coaccess.h"
#include "ir/program.h"
#include "ir/schedule.h"

namespace riot {

/// \brief Identifies one access of one statement instance.
struct AccessInstanceKey {
  int stmt_id;
  std::vector<int64_t> iter;
  int access_idx;

  bool operator<(const AccessInstanceKey& o) const {
    if (stmt_id != o.stmt_id) return stmt_id < o.stmt_id;
    if (iter != o.iter) return iter < o.iter;
    return access_idx < o.access_idx;
  }
};

/// \brief A block that must stay in memory from the source access (at
/// stream position begin_pos) until every group <= end_group completes.
struct RetentionSpan {
  size_t begin_pos;   // position in the scheduled instance stream
  size_t begin_group;
  size_t end_group;  // inclusive
  int array_id;
  int64_t block;  // linear block index

  bool operator<(const RetentionSpan& o) const {
    return std::tie(begin_pos, begin_group, end_group, array_id, block) <
           std::tie(o.begin_pos, o.begin_group, o.end_group, o.array_id,
                    o.block);
  }
};

struct RealizedPlan {
  std::vector<ScheduledInstance> order;  // scheduled execution order
  std::vector<size_t> group_of;          // per position in `order`
  size_t num_groups = 0;
  std::set<AccessInstanceKey> saved_reads;
  std::set<AccessInstanceKey> saved_writes;   // W->W overwrite elimination
  std::set<AccessInstanceKey> elided_writes;  // dead temporary materialization
  std::vector<RetentionSpan> spans;
};

/// \brief Computes the realization of a plan.
RealizedPlan RealizePlan(const Program& program, const Schedule& schedule,
                         const std::vector<const CoAccess*>& realized);

}  // namespace riot

#endif  // RIOTSHARE_CORE_PLAN_REALIZATION_H_
