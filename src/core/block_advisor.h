// Block-size co-optimization (paper Section 7 future work: "extending
// RIOTShare with the ability of selecting optimal array block sizes. By
// jointly optimizing array block sizes and I/O sharing, the optimizer can
// produce better plans that use memory more effectively").
//
// The advisor takes a set of candidate block configurations of the same
// logical computation (e.g. the paper's Section 6.1 "club" family: the same
// matrices partitioned as 12x12 blocks of 6000x4000 vs 8x12 blocks of
// 9000x4000), runs the full sharing optimizer on each under the memory cap,
// and returns the global best (configuration, plan) pair. This directly
// quantifies the paper's observation that "blindly enlarging array blocks is
// not the best way of utilizing extra memory".
#ifndef RIOTSHARE_CORE_BLOCK_ADVISOR_H_
#define RIOTSHARE_CORE_BLOCK_ADVISOR_H_

#include <string>
#include <vector>

#include "core/optimizer.h"
#include "ir/program.h"

namespace riot {

struct BlockConfigCandidate {
  std::string label;
  Program program;
};

struct BlockConfigOutcome {
  std::string label;
  /// Best plan found for this configuration under the cap; invalid (and
  /// feasible == false) when no plan fits.
  bool feasible = false;
  Plan best_plan;
  size_t num_plans = 0;
  double optimize_seconds = 0.0;
};

struct BlockAdvice {
  int best_candidate = -1;  // index into outcomes; -1 when nothing fits
  std::vector<BlockConfigOutcome> outcomes;
};

/// \brief Optimizes every candidate configuration and ranks them by the
/// best-plan modeled time under options.memory_cap_bytes — I/O time alone
/// by default, I/O plus in-memory compute when the cost options carry a
/// KernelRateTable (options.cost.compute).
BlockAdvice OptimizeWithBlockSizes(std::vector<BlockConfigCandidate> candidates,
                                   const OptimizerOptions& options = {});

}  // namespace riot

#endif  // RIOTSHARE_CORE_BLOCK_ADVISOR_H_
