#include "core/block_advisor.h"

#include "util/logging.h"

namespace riot {

BlockAdvice OptimizeWithBlockSizes(
    std::vector<BlockConfigCandidate> candidates,
    const OptimizerOptions& options) {
  BlockAdvice advice;
  for (auto& cand : candidates) {
    BlockConfigOutcome out;
    out.label = cand.label;
    OptimizationResult r = Optimize(cand.program, options);
    out.num_plans = r.plans.size();
    out.optimize_seconds = r.optimize_seconds;
    // The optimizer's best_index already honors the cap, but when nothing
    // fits it falls back to plan 0; detect that case explicitly.
    const Plan& best = r.best();
    if (best.cost.peak_memory_bytes <= options.memory_cap_bytes) {
      out.feasible = true;
      out.best_plan = best;
    }
    advice.outcomes.push_back(std::move(out));
  }
  for (size_t i = 0; i < advice.outcomes.size(); ++i) {
    const auto& o = advice.outcomes[i];
    if (!o.feasible) continue;
    // Rank by modeled end-to-end time: I/O plus (when
    // CostModelOptions::compute is set) the in-memory compute term. Block
    // configurations change both volume and per-block cache behavior, so
    // with the compute term on the advisor can reject a configuration whose
    // bigger blocks save I/O but spill the cache.
    if (advice.best_candidate < 0 ||
        o.best_plan.cost.TotalSeconds() <
            advice.outcomes[static_cast<size_t>(advice.best_candidate)]
                .best_plan.cost.TotalSeconds()) {
      advice.best_candidate = static_cast<int>(i);
    }
  }
  return advice;
}

}  // namespace riot
