#include "core/cost_model.h"

#include <map>
#include <set>

#include "core/plan_realization.h"
#include "util/logging.h"

namespace riot {

PlanCost EvaluatePlanCost(const Program& program, const Schedule& schedule,
                          const std::vector<const CoAccess*>& realized,
                          const CostModelOptions& options) {
  RealizedPlan rp = RealizePlan(program, schedule, realized);
  PlanCost cost;

  // I/O volume sweep.
  for (const auto& inst : rp.order) {
    const Statement& st = program.statement(inst.stmt_id);
    for (size_t ai = 0; ai < st.accesses.size(); ++ai) {
      const Access& a = st.accesses[ai];
      if (!a.ActiveAt(inst.iter)) continue;
      const int64_t bytes = program.array(a.array_id).BlockBytes();
      AccessInstanceKey key{inst.stmt_id, inst.iter, static_cast<int>(ai)};
      if (a.type == AccessType::kRead) {
        cost.baseline_read_bytes += bytes;
        if (!rp.saved_reads.count(key)) {
          cost.read_bytes += bytes;
          ++cost.block_reads;
        }
      } else {
        cost.baseline_write_bytes += bytes;
        if (!rp.saved_writes.count(key) && !rp.elided_writes.count(key)) {
          cost.write_bytes += bytes;
          ++cost.block_writes;
        }
      }
    }
  }

  // Peak memory sweep, per statement-instance instant (paper Section 5.4:
  // M(tau) = blocks the instance at tau accesses, plus every retained block
  // whose span covers tau). A span is active from its source access until
  // the last instant of its end group — exactly the executor's pin/retain
  // discipline, so predicted peak equals measured peak.
  std::map<std::pair<int, int64_t>, int64_t> retained;  // block -> max end grp
  std::multimap<size_t, const RetentionSpan*> by_begin;
  for (const auto& span : rp.spans) {
    by_begin.emplace(span.begin_pos, &span);
  }
  auto next_span = by_begin.begin();
  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    const size_t group = rp.group_of[pos];
    // Expire retentions whose end group has completed.
    for (auto it = retained.begin(); it != retained.end();) {
      if (it->second < static_cast<int64_t>(group)) {
        it = retained.erase(it);
      } else {
        ++it;
      }
    }
    // Activate spans whose source access is this instance.
    while (next_span != by_begin.end() && next_span->first <= pos) {
      const RetentionSpan* s = next_span->second;
      auto key = std::make_pair(s->array_id, s->block);
      auto it = retained.find(key);
      int64_t end = static_cast<int64_t>(s->end_group);
      if (it == retained.end() || it->second < end) retained[key] = end;
      ++next_span;
    }
    // Live set: this instance's blocks plus retained blocks.
    const auto& inst = rp.order[pos];
    const Statement& st = program.statement(inst.stmt_id);
    std::set<std::pair<int, int64_t>> live;
    for (const auto& a : st.accesses) {
      if (!a.ActiveAt(inst.iter)) continue;
      int64_t lin =
          program.array(a.array_id).LinearBlockIndex(a.BlockAt(inst.iter));
      live.insert({a.array_id, lin});
    }
    for (const auto& [key, end] : retained) live.insert(key);
    int64_t bytes = 0;
    for (const auto& [array_id, lin] : live) {
      bytes += program.array(array_id).BlockBytes();
    }
    cost.peak_memory_bytes = std::max(cost.peak_memory_bytes, bytes);
  }

  const double rd = options.read_mb_per_s * 1e6;
  const double wr = options.write_mb_per_s * 1e6;
  cost.io_seconds = static_cast<double>(cost.read_bytes) / rd +
                    static_cast<double>(cost.write_bytes) / wr;
  cost.baseline_io_seconds =
      static_cast<double>(cost.baseline_read_bytes) / rd +
      static_cast<double>(cost.baseline_write_bytes) / wr;
  return cost;
}

}  // namespace riot
