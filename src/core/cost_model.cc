#include "core/cost_model.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "core/access_plan.h"
#include "core/plan_realization.h"
#include "storage/buffer_pool.h"
#include "util/logging.h"

namespace riot {

PlanCost EvaluatePlanCost(const Program& program, const Schedule& schedule,
                          const std::vector<const CoAccess*>& realized,
                          const CostModelOptions& options) {
  RealizedPlan rp = RealizePlan(program, schedule, realized);
  PlanCost cost;

  // I/O volume sweep.
  for (const auto& inst : rp.order) {
    const Statement& st = program.statement(inst.stmt_id);
    for (size_t ai = 0; ai < st.accesses.size(); ++ai) {
      const Access& a = st.accesses[ai];
      if (!a.ActiveAt(inst.iter)) continue;
      const int64_t bytes = program.array(a.array_id).BlockBytes();
      AccessInstanceKey key{inst.stmt_id, inst.iter, static_cast<int>(ai)};
      if (a.type == AccessType::kRead) {
        cost.baseline_read_bytes += bytes;
        if (!rp.saved_reads.count(key)) {
          cost.read_bytes += bytes;
          ++cost.block_reads;
        }
      } else {
        cost.baseline_write_bytes += bytes;
        if (!rp.saved_writes.count(key) && !rp.elided_writes.count(key)) {
          cost.write_bytes += bytes;
          ++cost.block_writes;
        }
      }
    }
  }

  // Peak memory sweep, per statement-instance instant (paper Section 5.4:
  // M(tau) = blocks the instance at tau accesses, plus every retained block
  // whose span covers tau). A span is active from its source access until
  // the last instant of its end group — exactly the executor's pin/retain
  // discipline, so predicted peak equals measured peak.
  std::map<std::pair<int, int64_t>, int64_t> retained;  // block -> max end grp
  std::multimap<size_t, const RetentionSpan*> by_begin;
  for (const auto& span : rp.spans) {
    by_begin.emplace(span.begin_pos, &span);
  }
  auto next_span = by_begin.begin();
  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    const size_t group = rp.group_of[pos];
    // Expire retentions whose end group has completed.
    for (auto it = retained.begin(); it != retained.end();) {
      if (it->second < static_cast<int64_t>(group)) {
        it = retained.erase(it);
      } else {
        ++it;
      }
    }
    // Activate spans whose source access is this instance.
    while (next_span != by_begin.end() && next_span->first <= pos) {
      const RetentionSpan* s = next_span->second;
      auto key = std::make_pair(s->array_id, s->block);
      auto it = retained.find(key);
      int64_t end = static_cast<int64_t>(s->end_group);
      if (it == retained.end() || it->second < end) retained[key] = end;
      ++next_span;
    }
    // Live set: this instance's blocks plus retained blocks.
    const auto& inst = rp.order[pos];
    const Statement& st = program.statement(inst.stmt_id);
    std::set<std::pair<int, int64_t>> live;
    for (const auto& a : st.accesses) {
      if (!a.ActiveAt(inst.iter)) continue;
      int64_t lin =
          program.array(a.array_id).LinearBlockIndex(a.BlockAt(inst.iter));
      live.insert({a.array_id, lin});
    }
    for (const auto& [key, end] : retained) live.insert(key);
    int64_t bytes = 0;
    for (const auto& [array_id, lin] : live) {
      bytes += program.array(array_id).BlockBytes();
    }
    cost.peak_memory_bytes = std::max(cost.peak_memory_bytes, bytes);
  }

  const double rd = options.read_mb_per_s * 1e6;
  const double wr = options.write_mb_per_s * 1e6;
  cost.io_seconds = static_cast<double>(cost.read_bytes) / rd +
                    static_cast<double>(cost.write_bytes) / wr;
  cost.baseline_io_seconds =
      static_cast<double>(cost.baseline_read_bytes) / rd +
      static_cast<double>(cost.baseline_write_bytes) / wr;

  // In-memory compute term: per-statement characteristics priced through
  // the calibrated rate table, summed over every scheduled instance. The
  // per-instance seconds depend only on the statement (all instances of a
  // statement touch same-shaped blocks), so analyze each statement once.
  if (options.compute.has_value()) {
    std::map<int, double> per_instance_s;
    for (const auto& inst : rp.order) {
      auto it = per_instance_s.find(inst.stmt_id);
      if (it == per_instance_s.end()) {
        const LoopCharacteristics lc =
            AnalyzeStatement(program, program.statement(inst.stmt_id));
        it = per_instance_s
                 .emplace(inst.stmt_id,
                          EstimateInstanceSeconds(lc, *options.compute))
                 .first;
      }
      cost.compute_seconds += it->second;
    }
  }

  // Memory-pressure projection: how this schedule behaves as a plain
  // bounded cache when its exact requirement cannot be afforded.
  if (options.pressure_cap_bytes > 0) {
    CacheSimOptions sim;
    sim.policy = options.pressure_policy;
    sim.cap_bytes = options.pressure_cap_bytes;
    sim.opportunistic = true;
    auto r = SimulateCacheBehavior(program, schedule, realized, sim, options);
    if (r.ok()) {
      cost.capped_block_reads = r->block_reads;
      cost.capped_evictions = r->evictions;
      cost.capped_io_seconds = r->io_seconds;
    }
  }
  return cost;
}

Result<CacheSimResult> SimulateCacheBehavior(
    const Program& program, const Schedule& schedule,
    const std::vector<const CoAccess*>& realized, const CacheSimOptions& sim,
    const CostModelOptions& options) {
  // The opportunistic ablation deliberately ignores the plan's sharing set
  // — exactly like the engine's kOpportunisticCache mode.
  RealizedPlan rp = RealizePlan(program, schedule,
                                sim.opportunistic
                                    ? std::vector<const CoAccess*>{}
                                    : realized);
  const AccessScript script = BuildAccessScript(program, rp);

  BufferPool pool(sim.cap_bytes, MakeReplacementPolicy(sim.policy));
  const bool schedule_policy =
      sim.policy == ReplacementKind::kScheduleOpt;
  std::shared_ptr<const BlockUseMap> bound_uses;
  if (schedule_policy) {
    bound_uses = std::make_shared<BlockUseMap>(script.block_uses);
    pool.BindUsePlan(bound_uses);
  }

  CacheSimResult out;
  // Replay the depth-0 serial engine's pool discipline, step for step:
  // release expired retentions at group boundaries, advance the policy
  // clock per instance, fetch reads-then-write, retain as scripted, unpin
  // at instance end. The pool's own counters then ARE the prediction.
  // (access_idx, frame): the engine releases an instance's pins in access
  // order, not record (reads-then-write) order — Clock's ring order
  // depends on it.
  std::vector<std::pair<int, BufferPool::Frame*>> frames;
  size_t cur_group = 0;
  for (size_t pos = 0; pos < rp.order.size(); ++pos) {
    if (rp.group_of[pos] != cur_group) {
      cur_group = rp.group_of[pos];
      pool.ReleaseRetainedBefore(static_cast<int64_t>(cur_group));
    }
    if (schedule_policy) {
      pool.AdvanceReplacementClock(bound_uses, static_cast<int64_t>(pos));
    }
    const auto [rec_begin, rec_end] = script.per_pos[pos];
    frames.clear();
    for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
      const BlockAccessRecord& rec = script.records[ri];
      bool disk_read = false;
      if (rec.type == AccessType::kRead) {
        bool saved = rec.saved;
        const bool present =
            pool.Probe(rec.array_id, rec.block) != nullptr;
        if (sim.opportunistic) {
          saved = present;
          if (saved) ++out.policy_saved_reads;
        }
        if (saved && !present) {
          return Status::Internal(
              "cache sim: saved read not resident (plan/realization bug)");
        }
        // The engine reads disk for every non-saved read, resident or not
        // (plan-exact I/O counts must match the linear sharing model).
        disk_read = !saved || !present;
      }
      auto f = pool.Fetch(rec.array_id, rec.block, rec.bytes,
                          /*store=*/nullptr, /*load=*/false);
      if (!f.ok()) {
        for (auto& [ai, held] : frames) pool.Unpin(held);
        return f.status();
      }
      frames.emplace_back(rec.access_idx, *f);
      if (disk_read) {
        out.read_bytes += rec.bytes;
        ++out.block_reads;
      }
      if (rec.type == AccessType::kWrite && !rec.saved) {
        out.write_bytes += rec.bytes;
        ++out.block_writes;
      }
      if (rec.retain_until_group >= 0) {
        pool.Retain(*f, rec.retain_until_group);
      }
    }
    std::sort(frames.begin(), frames.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [ai, f] : frames) pool.Unpin(f);
  }
  pool.ReleaseRetainedBefore(std::numeric_limits<int64_t>::max());
  if (schedule_policy) pool.UnbindUsePlan(bound_uses);

  const BufferPoolStats ps = pool.stats();
  out.hits = ps.hits;
  out.misses = ps.misses;
  out.evictions = ps.evictions;
  out.dirty_writebacks = ps.dirty_writebacks;
  out.io_seconds =
      static_cast<double>(out.read_bytes) / (options.read_mb_per_s * 1e6) +
      static_cast<double>(out.write_bytes) / (options.write_mb_per_s * 1e6);
  return out;
}

// ---------------------------------------------------------------------------
// Multi-tenant cache simulation: several plans' scripts replayed against one
// shared pool in a caller-chosen kernel interleaving, mirroring the
// session-mode depth-0 serial engine at lockstep-turn granularity. A
// "turn" is the pool-op span a session owns between two of its kernel
// entries (see ops/lockstep.h): [write-out(i), unpin(i), retention release
// at a group boundary, clock advance(i+1), fetches(i+1)]. The prologue at
// serialized spawn is [bind, advance(0), fetches(0)]; the epilogue — still
// under the session's final turn — is [release all retentions, drop
// divergent (saved-write) frames, unbind, detach account]. The pool's
// global counters plus per-tenant I/O tallies then ARE the prediction.
// ---------------------------------------------------------------------------
namespace {

// One tenant's replay state over the shared pool.
struct TenantReplay {
  RealizedPlan rp;
  AccessScript script;
  std::shared_ptr<const BlockUseMap> bound;
  std::unique_ptr<PoolAccount> account;
  // Frames the last pre-step pinned, (access_idx, frame) in record order.
  std::vector<std::pair<int, BufferPool::Frame*>> frames;
  size_t done = 0;  // kernels completed (== interleaving entries consumed)
  size_t cur_group = 0;
};

}  // namespace

Result<MultiTenantCacheResult> SimulateMultiTenantCache(
    const std::vector<TenantCacheScript>& tenants,
    const std::vector<int>& interleaving, const CacheSimOptions& sim,
    const CostModelOptions& options) {
  if (tenants.empty()) {
    return Status::InvalidArgument("multi-tenant sim: no tenants");
  }
  const bool schedule_policy = sim.policy == ReplacementKind::kScheduleOpt;
  BufferPool pool(sim.cap_bytes, MakeReplacementPolicy(sim.policy));

  MultiTenantCacheResult out;
  out.per_tenant.resize(tenants.size());
  std::vector<TenantReplay> state(tenants.size());

  auto pid = [&](size_t t, int array_id) {
    const auto& ids = tenants[t].pool_array_ids;
    return ids.empty() ? array_id : ids[static_cast<size_t>(array_id)];
  };

  // Runs instance `pos`'s pre-kernel pool ops: retention release at a group
  // boundary, clock advance, and the record fetches (session read
  // discipline: resident frames are served from memory; misses "read
  // disk"). Leaves the instance's frames pinned in st.frames.
  auto pre_step = [&](size_t t, size_t pos) -> Status {
    TenantReplay& st = state[t];
    CacheSimResult& per = out.per_tenant[t];
    if (st.rp.group_of[pos] != st.cur_group) {
      st.cur_group = st.rp.group_of[pos];
      pool.ReleaseRetainedBefore(static_cast<int64_t>(st.cur_group),
                                 st.account.get());
    }
    if (schedule_policy) {
      pool.AdvanceReplacementClock(st.bound, static_cast<int64_t>(pos));
    }
    const auto [rec_begin, rec_end] = st.script.per_pos[pos];
    for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
      const BlockAccessRecord& rec = st.script.records[ri];
      bool resident = false;
      auto f = pool.Fetch(pid(t, rec.array_id), rec.block, rec.bytes,
                          /*store=*/nullptr, /*load=*/false, &resident,
                          st.account.get(), /*coalesce_loads=*/true);
      if (!f.ok()) {
        // The engine parks here and retries once a co-tenant frees bytes;
        // under a fixed interleaving no such future exists, so surface
        // the refusal (callers must budget the way the runtime admits).
        for (auto& [ai, held] : st.frames) pool.Unpin(held, st.account.get());
        st.frames.clear();
        return f.status();
      }
      st.frames.emplace_back(rec.access_idx, *f);
      if (rec.type == AccessType::kRead) {
        if (!resident) {
          if (rec.saved) {
            return Status::Internal(
                "multi-tenant sim: saved read not resident "
                "(plan/realization bug)");
          }
          pool.MarkLoaded(*f);
          per.read_bytes += rec.bytes;
          ++per.block_reads;
        } else if (!rec.saved) {
          ++per.policy_saved_reads;  // cross-session residency win
        }
      } else {
        if (!resident) pool.MarkLoaded(*f);
      }
      if (rec.retain_until_group >= 0) {
        pool.Retain(*f, rec.retain_until_group, st.account.get());
      }
    }
    return Status::OK();
  };

  // Runs instance `pos`'s post-kernel pool ops: write-out accounting and
  // MarkClean in record order, then unpins in access order.
  auto post_step = [&](size_t t, size_t pos) {
    TenantReplay& st = state[t];
    CacheSimResult& per = out.per_tenant[t];
    const auto [rec_begin, rec_end] = st.script.per_pos[pos];
    for (uint32_t ri = rec_begin; ri < rec_end; ++ri) {
      const BlockAccessRecord& rec = st.script.records[ri];
      if (rec.type != AccessType::kWrite) continue;
      if (!rec.saved) {
        per.write_bytes += rec.bytes;
        ++per.block_writes;
      }
      pool.MarkClean(st.frames[ri - rec_begin].second);
    }
    std::sort(st.frames.begin(), st.frames.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [ai, f] : st.frames) pool.Unpin(f, st.account.get());
    st.frames.clear();
  };

  // Tenant finished: release retentions, drop saved-write frames whose
  // contents diverge from disk, unbind, sever the account.
  auto epilogue = [&](size_t t) {
    TenantReplay& st = state[t];
    pool.ReleaseRetainedBefore(std::numeric_limits<int64_t>::max(),
                               st.account.get());
    for (const BlockAccessRecord& rec : st.script.records) {
      if (rec.type == AccessType::kWrite && rec.saved) {
        pool.Drop(pid(t, rec.array_id), rec.block);
      }
    }
    if (schedule_policy) pool.UnbindUsePlan(st.bound);
    pool.DetachAccount(st.account.get());
  };

  // Prologues in tenant order (the lockstep harness serializes spawns):
  // bind the remapped use plan, open the budget ledger, and run the first
  // instance's pre-step — every tenant then sits pinned at kernel 0.
  size_t total_turns = 0;
  for (size_t t = 0; t < tenants.size(); ++t) {
    const TenantCacheScript& ts = tenants[t];
    TenantReplay& st = state[t];
    st.rp = RealizePlan(*ts.program, *ts.schedule,
                        sim.opportunistic ? std::vector<const CoAccess*>{}
                                          : ts.realized);
    st.script = BuildAccessScript(*ts.program, st.rp);
    st.account = std::make_unique<PoolAccount>();
    st.account->budget_bytes =
        ts.budget_bytes > 0 ? ts.budget_bytes : sim.cap_bytes;
    if (st.rp.order.empty()) {
      return Status::InvalidArgument("multi-tenant sim: empty plan");
    }
    total_turns += st.rp.order.size();
    if (schedule_policy) {
      auto remapped = std::make_shared<BlockUseMap>();
      for (const auto& [key, positions] : st.script.block_uses) {
        (*remapped)[{pid(t, key.first), key.second}] = positions;
      }
      st.bound = std::move(remapped);
      pool.BindUsePlan(st.bound);
    }
    Status s = pre_step(t, 0);
    if (!s.ok()) return s;
  }
  if (interleaving.size() != total_turns) {
    return Status::InvalidArgument(
        "multi-tenant sim: interleaving length " +
        std::to_string(interleaving.size()) + " != total instances " +
        std::to_string(total_turns));
  }

  // One interleaving entry = one kernel completing: finish its pool turn
  // (post ops, then the tenant's next pre-step or its epilogue).
  for (int t_idx : interleaving) {
    if (t_idx < 0 || static_cast<size_t>(t_idx) >= tenants.size()) {
      return Status::InvalidArgument("multi-tenant sim: bad tenant index");
    }
    const size_t t = static_cast<size_t>(t_idx);
    TenantReplay& st = state[t];
    if (st.done >= st.rp.order.size()) {
      return Status::InvalidArgument(
          "multi-tenant sim: interleaving overruns tenant " +
          std::to_string(t));
    }
    const size_t pos = st.done;
    post_step(t, pos);
    ++st.done;
    if (st.done < st.rp.order.size()) {
      Status s = pre_step(t, st.done);
      if (!s.ok()) return s;
    } else {
      epilogue(t);
    }
  }

  const BufferPoolStats ps = pool.stats();
  out.total.hits = ps.hits;
  out.total.misses = ps.misses;
  out.total.evictions = ps.evictions;
  out.total.dirty_writebacks = ps.dirty_writebacks;
  for (CacheSimResult& per : out.per_tenant) {
    per.io_seconds =
        static_cast<double>(per.read_bytes) / (options.read_mb_per_s * 1e6) +
        static_cast<double>(per.write_bytes) / (options.write_mb_per_s * 1e6);
    out.total.block_reads += per.block_reads;
    out.total.block_writes += per.block_writes;
    out.total.read_bytes += per.read_bytes;
    out.total.write_bytes += per.write_bytes;
    out.total.policy_saved_reads += per.policy_saved_reads;
    out.total.io_seconds += per.io_seconds;
  }
  return out;
}

}  // namespace riot
