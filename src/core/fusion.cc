#include "core/fusion.h"

#include <numeric>

#include "util/logging.h"

namespace riot {

bool FusableKind(StatementOp::Kind k) {
  switch (k) {
    case StatementOp::Kind::kAdd:
    case StatementOp::Kind::kSub:
    case StatementOp::Kind::kScale:
    case StatementOp::Kind::kMap:
    case StatementOp::Kind::kZip:
      return true;
    default:
      return false;
  }
}

FusionPlan PlanFusion(const ExprGraph& graph,
                      const std::vector<ExprRef>& outputs,
                      const FusionOptions& options) {
  const size_t n = graph.size();
  FusionPlan plan;
  plan.fused_into.assign(n, -1);
  plan.cluster_root.resize(n);
  std::iota(plan.cluster_root.begin(), plan.cluster_root.end(), 0);
  if (!options.enable || n == 0) return plan;

  // Use count = number of (consumer, arg-slot) pairs, so a node consumed
  // twice by one statement (Add(p, p)) counts 2 and stays materialized.
  std::vector<int> use_count(n, 0);
  for (size_t id = 0; id < n; ++id) {
    for (ExprRef a : graph.node(static_cast<ExprRef>(id)).args) {
      ++use_count[static_cast<size_t>(a)];
    }
  }
  std::vector<bool> is_output(n, false);
  for (ExprRef r : outputs) {
    if (r >= 0 && static_cast<size_t>(r) < n) {
      is_output[static_cast<size_t>(r)] = true;
    }
  }

  // Prospective tape length per cluster root: compute ops + loads (external
  // operand edges; an upper bound — lowering dedups repeated loads).
  std::vector<int> cluster_ops(n, 0);
  std::vector<int> cluster_loads(n, 0);

  // Walk consumers in decreasing id order: operands always have smaller
  // ids, so by the time a node is visited its own cluster membership is
  // settled and cluster_root[c] is final.
  for (int c = static_cast<int>(n) - 1; c >= 0; --c) {
    const ExprNode& nc = graph.node(c);
    if (nc.is_input() || !FusableKind(nc.kind)) continue;
    const int root = plan.cluster_root[static_cast<size_t>(c)];
    if (root == c && cluster_ops[static_cast<size_t>(c)] == 0) {
      cluster_ops[static_cast<size_t>(c)] = 1;
      cluster_loads[static_cast<size_t>(c)] = static_cast<int>(nc.args.size());
    }
    for (ExprRef arg : nc.args) {
      const size_t p = static_cast<size_t>(arg);
      const ExprNode& np = graph.node(arg);
      if (np.is_input() || !FusableKind(np.kind)) continue;
      if (use_count[p] != 1 || is_output[p] || np.keep) continue;
      if (plan.Fused(arg)) continue;
      // Fusing p turns one load into one op plus p's own operand loads.
      const int new_ops = cluster_ops[static_cast<size_t>(root)] + 1;
      const int new_loads = cluster_loads[static_cast<size_t>(root)] - 1 +
                            static_cast<int>(np.args.size());
      if (new_ops + new_loads > options.max_tape_ops) continue;
      plan.fused_into[p] = c;
      plan.cluster_root[p] = root;
      cluster_ops[static_cast<size_t>(root)] = new_ops;
      cluster_loads[static_cast<size_t>(root)] = new_loads;
      ++plan.fused_nodes;
    }
  }
  return plan;
}

}  // namespace riot
