// The RIOTShare optimizer (paper Section 5): enumerates feasible
// combinations of sharing opportunities with an Apriori-like search
// (Algorithm 2, using the antimonotonicity of Lemma 2), finds a legal
// schedule for each feasible combination (Algorithm 3), costs every plan,
// and selects the cheapest plan whose memory requirement fits the cap.
#ifndef RIOTSHARE_CORE_OPTIMIZER_H_
#define RIOTSHARE_CORE_OPTIMIZER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "analysis/coaccess.h"
#include "core/cost_model.h"
#include "core/schedule_solver.h"
#include "ir/program.h"
#include "ir/schedule.h"

namespace riot {

struct OptimizerOptions {
  /// Memory cap for plan selection; plans above the cap stay in the result
  /// but are not eligible as "best".
  int64_t memory_cap_bytes = std::numeric_limits<int64_t>::max();
  /// Multi-tenant hint: the number of sessions expected to share the
  /// buffer pool `memory_cap_bytes` describes. With N > 1 the optimizer
  /// selects plans against the per-session slice (cap / N) — and scales
  /// the cost model's `pressure_cap_bytes` the same way — so a plan is
  /// only called "fitting" when it fits the memory the session runtime
  /// will actually grant it, not the whole pool.
  int concurrent_sessions = 1;
  /// Apriori candidate pruning (Lemma 2); false = exhaustive power set
  /// (ablation; exponential in |O| without pruning).
  bool use_apriori = true;
  /// Optional cap on the size of opportunity combinations explored.
  size_t max_combination_size = std::numeric_limits<size_t>::max();
  /// Worker threads for candidate testing within an Apriori level
  /// (candidates are independent). 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Measure this host's kernel throughput (CalibrateKernelRates, once per
  /// process, cached) and rank plans by io + compute seconds instead of
  /// I/O alone. Off by default: calibration costs ~calibrate_budget_ms of
  /// wall time on first use and makes plan choice host-dependent, which
  /// differential tests pin down by leaving it off. A caller that already
  /// set `cost.compute` keeps its own table.
  bool calibrate_compute_rates = false;
  int calibrate_budget_ms = 200;
  /// Worker count the calibration sweep contends at — set it to the
  /// executor's `exec_threads` so the compute term prices instances at the
  /// per-worker rate they will actually see (bandwidth-bound classes
  /// degrade under siblings; a solo-measured rate is optimistic). Tables
  /// are cached per worker count, measured once per process each.
  int calibrate_exec_threads = 1;
  CostModelOptions cost;
  AnalysisOptions analysis;
  SolverOptions solver;
};

/// \brief One legal execution plan: a schedule realizing a specific set of
/// sharing opportunities, with its evaluated cost.
struct Plan {
  std::vector<int> opportunities;  // indices into OptimizationResult sharing
  Schedule schedule;
  PlanCost cost;

  std::string DescribeOpportunities(const Program& p,
                                    const std::vector<CoAccess>& o) const;
};

struct OptimizationResult {
  AnalysisResult analysis;
  std::vector<Plan> plans;  // plans[0] is always the original schedule
  int best_index = 0;       // min I/O time among plans within the memory cap
  int64_t candidates_tested = 0;
  int64_t candidates_pruned = 0;   // skipped thanks to Apriori
  int64_t schedules_found = 0;
  double optimize_seconds = 0.0;

  const Plan& best() const { return plans[static_cast<size_t>(best_index)]; }
};

/// \brief Runs analysis, plan search, and costing for the program.
OptimizationResult Optimize(const Program& program,
                            const OptimizerOptions& options = {});

}  // namespace riot

#endif  // RIOTSHARE_CORE_OPTIMIZER_H_
