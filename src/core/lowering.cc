#include "core/lowering.h"

#include <algorithm>
#include <functional>
#include <map>

#include "ir/builder.h"
#include "kernels/dense.h"

namespace riot {

namespace {

// Block-subscript symbol: one of the canonical loop roles, or the constant
// zero a unit (extent-1) grid dimension collapses to.
enum class Sym { kI, kJ, kK, kZero };

// The loop structure of one statement: roles in canonical outer-to-inner
// order (i, j, k) with their extents. Unit loops are dropped from the
// domain entirely — their subscript is the constant 0 — matching the
// hand-built style for reductions over a single block row (linreg's
// "for k: U += X[k]'X[k]" has exactly one loop). A statement whose every
// role is unit gets a single degenerate loop "z" over {0..0}.
struct LoopNest {
  std::vector<std::string> iters;
  std::vector<std::pair<int64_t, int64_t>> bounds;
  std::map<Sym, size_t> pos;  // kept roles -> iteration-vector index

  void AddRole(Sym role, const char* name, int64_t extent) {
    if (extent <= 1) return;
    pos[role] = iters.size();
    iters.emplace_back(name);
    bounds.emplace_back(0, extent - 1);
  }

  void Finalize() {
    if (iters.empty()) {
      iters.emplace_back("z");
      bounds.emplace_back(0, 0);
    }
  }

  size_t depth() const { return iters.size(); }

  Polyhedron Domain() const { return RectDomain(bounds, iters); }

  std::vector<std::vector<int64_t>> Phi(Sym row, Sym col) const {
    std::vector<std::vector<int64_t>> rows;
    for (Sym s : {row, col}) {
      std::vector<int64_t> r(depth() + 1, 0);
      auto it = pos.find(s);
      if (it != pos.end()) r[it->second] = 1;
      rows.push_back(std::move(r));
    }
    return rows;
  }
};

// Appends a read access, collapsing it onto an existing identical one
// (same array, same map): two operands reading one block must cost one
// block access. Returns the access index the operand should view.
int AddRead(Statement* st, int array_id,
            std::vector<std::vector<int64_t>> phi_rows) {
  Access a = Read(array_id, std::move(phi_rows));
  for (size_t i = 0; i < st->accesses.size(); ++i) {
    if (st->accesses[i].SameFunction(a)) return static_cast<int>(i);
  }
  st->accesses.push_back(std::move(a));
  return static_cast<int>(st->accesses.size()) - 1;
}

// Appends the guarded accumulator self-read (reduction carry: the k > 0
// iterations read what k - 1 wrote; k == 0 initializes — paper footnote 1).
int AddAccRead(Statement* st, int array_id,
               std::vector<std::vector<int64_t>> phi_rows,
               const Polyhedron& domain, size_t k_pos) {
  Access a = Read(array_id, std::move(phi_rows));
  a.guard = GuardGe(domain, k_pos, 1);
  st->accesses.push_back(std::move(a));
  return static_cast<int>(st->accesses.size()) - 1;
}

}  // namespace

Result<LoweredExpr> LowerExpr(const ExprGraph& graph,
                              const std::vector<ExprRef>& outputs,
                              const LowerOptions& options) {
  if (graph.size() == 0) {
    return Status::InvalidArgument("cannot lower an empty expression graph");
  }
  if (options.max_fused_tape_ops < 2 ||
      options.max_fused_tape_ops > kMaxFusedTapeOps) {
    return Status::InvalidArgument("max_fused_tape_ops out of range");
  }
  if (outputs.empty()) {
    return Status::InvalidArgument("no outputs bound for lowering");
  }
  std::vector<bool> is_output(graph.size(), false);
  for (ExprRef r : outputs) {
    if (r < 0 || static_cast<size_t>(r) >= graph.size()) {
      return Status::InvalidArgument("output ref out of range");
    }
    if (graph.node(r).is_input()) {
      return Status::InvalidArgument("output " + std::to_string(r) +
                                     " is an input node");
    }
    if (is_output[static_cast<size_t>(r)]) {
      return Status::InvalidArgument("duplicate output ref " +
                                     std::to_string(r));
    }
    is_output[static_cast<size_t>(r)] = true;
  }

  LoweredExpr out;
  out.array_of.resize(graph.size(), -1);
  out.stmt_of.resize(graph.size(), -1);

  // Array names must be unique: the runtime derives each store's file
  // path from the name, so a collision would silently alias two arrays
  // onto one file. This includes collisions with auto-generated "t<id>"
  // temporary names.
  {
    std::map<std::string, size_t> seen;
    for (size_t id = 0; id < graph.size(); ++id) {
      const ExprNode& n = graph.node(static_cast<ExprRef>(id));
      const std::string name =
          n.name.empty() ? "t" + std::to_string(id) : n.name;
      auto [it, inserted] = seen.emplace(name, id);
      if (!inserted) {
        return Status::InvalidArgument(
            "duplicate array name '" + name + "' (nodes " +
            std::to_string(it->second) + " and " + std::to_string(id) +
            "); array names become store file names and must be unique");
      }
    }
  }

  // Plan fusion: fused-away nodes get no array and no statement of their
  // own; their cluster root's compound statement computes them.
  FusionOptions fopts;
  fopts.enable = options.fuse;
  fopts.max_tape_ops = options.max_fused_tape_ops;
  const FusionPlan plan = PlanFusion(graph, outputs, fopts);
  out.fused_nodes = plan.fused_nodes;

  // Arrays first, in node-id order: every materialized node is one array;
  // temporaries that are neither outputs nor kept are scratch
  // (non-persistent).
  for (size_t id = 0; id < graph.size(); ++id) {
    if (plan.Fused(static_cast<ExprRef>(id))) continue;
    const ExprNode& n = graph.node(static_cast<ExprRef>(id));
    ArrayInfo info;
    info.name = n.name.empty() ? "t" + std::to_string(id) : n.name;
    info.grid = n.shape.grid;
    info.block_elems = n.shape.block_elems;
    info.persistent = n.is_input() || is_output[id] || n.keep;
    out.array_of[id] = out.program.AddArray(std::move(info));
    if (n.is_input()) out.input_arrays.push_back(out.array_of[id]);
  }

  // Cluster members (only roots with at least one fused-in producer emit a
  // compound statement; singleton "clusters" take the historical path).
  std::vector<std::vector<ExprRef>> members(graph.size());
  for (size_t id = 0; id < graph.size(); ++id) {
    if (plan.Fused(static_cast<ExprRef>(id))) {
      members[static_cast<size_t>(plan.cluster_root[id])].push_back(
          static_cast<ExprRef>(id));
    }
  }

  // One statement per materialized compute node, each in its own
  // sequential nest, in node-id (= topological) order.
  int nest = 0;
  for (size_t id = 0; id < graph.size(); ++id) {
    const ExprNode& n = graph.node(static_cast<ExprRef>(id));
    if (n.is_input() || plan.Fused(static_cast<ExprRef>(id))) continue;
    const int out_arr = out.array_of[id];

    if (!members[id].empty()) {
      // Compound statement for the fused cluster rooted here: one i,j nest
      // over the root's grid (cluster members all share one shape), deduped
      // reads of every external operand, one write, and the post-order
      // scalar tape the kernel interprets per element.
      LoopNest loops;
      loops.AddRole(Sym::kI, "i", n.shape.grid[0]);
      loops.AddRole(Sym::kJ, "j", n.shape.grid[1]);
      loops.Finalize();

      Statement st;
      st.name = "s" + std::to_string(nest + 1);
      StatementOp op;
      op.kind = StatementOp::Kind::kFused;

      std::map<ExprRef, int> load_pos;  // external node -> tape position
      std::function<int(ExprRef)> emit = [&](ExprRef nid) -> int {
        if (plan.cluster_root[static_cast<size_t>(nid)] !=
            static_cast<int>(id)) {
          auto it = load_pos.find(nid);
          if (it != load_pos.end()) return it->second;
          TapeOp t;
          t.code = TapeOp::Code::kLoad;
          t.a = AddRead(&st, out.array_of[static_cast<size_t>(nid)],
                        loops.Phi(Sym::kI, Sym::kJ));
          op.tape.push_back(t);
          const int pos = static_cast<int>(op.tape.size()) - 1;
          load_pos.emplace(nid, pos);
          return pos;
        }
        const ExprNode& m = graph.node(nid);
        TapeOp t;
        switch (m.kind) {
          case StatementOp::Kind::kAdd:
            t.code = TapeOp::Code::kAdd;
            break;
          case StatementOp::Kind::kSub:
            t.code = TapeOp::Code::kSub;
            break;
          case StatementOp::Kind::kScale:
            t.code = TapeOp::Code::kScale;
            t.alpha = m.alpha;
            break;
          case StatementOp::Kind::kMap:
            t.code = TapeOp::Code::kMap;
            t.scalar_fn = m.scalar_fn;
            break;
          case StatementOp::Kind::kZip:
            t.code = TapeOp::Code::kZip;
            t.scalar_fn = m.scalar_fn;
            break;
          default:
            RIOT_CHECK(false) << "non-fusable kind in cluster";
        }
        t.a = emit(m.args[0]);
        if (m.args.size() > 1) t.b = emit(m.args[1]);
        op.tape.push_back(t);
        return static_cast<int>(op.tape.size()) - 1;
      };
      emit(static_cast<ExprRef>(id));

      st.accesses.push_back(Write(out_arr, loops.Phi(Sym::kI, Sym::kJ)));
      op.a = 0;  // first access is necessarily the first operand load
      op.out = static_cast<int>(st.accesses.size()) - 1;
      st.iters = loops.iters;
      st.domain = loops.Domain();
      st.op = op;
      const int sid = out.program.AddStatement(std::move(st), nest, 0);
      out.stmt_of[id] = sid;
      for (ExprRef m : members[id]) {
        out.stmt_of[static_cast<size_t>(m)] = sid;
      }
      ++nest;
      continue;
    }

    LoopNest loops;
    StatementOp op;
    op.kind = n.kind;
    op.trans_a = n.trans_a;
    op.trans_b = n.trans_b;
    op.alpha = n.alpha;
    op.scalar_fn = n.scalar_fn;

    Statement st;
    st.name = "s" + std::to_string(nest + 1);

    switch (n.kind) {
      case StatementOp::Kind::kAdd:
      case StatementOp::Kind::kSub:
      case StatementOp::Kind::kScale:
      case StatementOp::Kind::kMap:
      case StatementOp::Kind::kZip:
      case StatementOp::Kind::kAddDiag: {
        loops.AddRole(Sym::kI, "i", n.shape.grid[0]);
        loops.AddRole(Sym::kJ, "j", n.shape.grid[1]);
        loops.Finalize();
        op.a = AddRead(&st, out.array_of[static_cast<size_t>(n.args[0])],
                       loops.Phi(Sym::kI, Sym::kJ));
        if (n.args.size() > 1) {
          op.b = AddRead(&st, out.array_of[static_cast<size_t>(n.args[1])],
                         loops.Phi(Sym::kI, Sym::kJ));
        }
        st.accesses.push_back(Write(out_arr, loops.Phi(Sym::kI, Sym::kJ)));
        break;
      }
      case StatementOp::Kind::kGemm: {
        const ExprNode& a = graph.node(n.args[0]);
        const int64_t gi = n.shape.grid[0];
        const int64_t gj = n.shape.grid[1];
        const int64_t gk =
            n.trans_a ? a.shape.grid[0] : a.shape.grid[1];
        loops.AddRole(Sym::kI, "i", gi);
        loops.AddRole(Sym::kJ, "j", gj);
        loops.AddRole(Sym::kK, "k", gk);
        loops.Finalize();
        op.a = AddRead(&st, out.array_of[static_cast<size_t>(n.args[0])],
                       n.trans_a ? loops.Phi(Sym::kK, Sym::kI)
                                 : loops.Phi(Sym::kI, Sym::kK));
        op.b = AddRead(&st, out.array_of[static_cast<size_t>(n.args[1])],
                       n.trans_b ? loops.Phi(Sym::kJ, Sym::kK)
                                 : loops.Phi(Sym::kK, Sym::kJ));
        if (gk > 1) {
          op.reduction_iter = static_cast<int>(loops.pos.at(Sym::kK));
          op.acc = AddAccRead(&st, out_arr, loops.Phi(Sym::kI, Sym::kJ),
                              loops.Domain(),
                              static_cast<size_t>(op.reduction_iter));
        }
        st.accesses.push_back(Write(out_arr, loops.Phi(Sym::kI, Sym::kJ)));
        break;
      }
      case StatementOp::Kind::kInverse: {
        // Single-block operand and result: a degenerate nest.
        loops.Finalize();
        op.a = AddRead(&st, out.array_of[static_cast<size_t>(n.args[0])],
                       loops.Phi(Sym::kZero, Sym::kZero));
        st.accesses.push_back(
            Write(out_arr, loops.Phi(Sym::kZero, Sym::kZero)));
        break;
      }
      case StatementOp::Kind::kSumSquares: {
        const ExprNode& a = graph.node(n.args[0]);
        const int64_t gj = a.shape.grid[1];
        const int64_t gk = a.shape.grid[0];
        loops.AddRole(Sym::kJ, "j", gj);
        loops.AddRole(Sym::kK, "k", gk);
        loops.Finalize();
        op.a = AddRead(&st, out.array_of[static_cast<size_t>(n.args[0])],
                       loops.Phi(Sym::kK, Sym::kJ));
        if (gk > 1) {
          op.reduction_iter = static_cast<int>(loops.pos.at(Sym::kK));
          op.acc = AddAccRead(&st, out_arr, loops.Phi(Sym::kZero, Sym::kJ),
                              loops.Domain(),
                              static_cast<size_t>(op.reduction_iter));
        }
        st.accesses.push_back(
            Write(out_arr, loops.Phi(Sym::kZero, Sym::kJ)));
        break;
      }
      case StatementOp::Kind::kInput:
      case StatementOp::Kind::kFused:  // built above, never an ExprNode kind
        RIOT_CHECK(false) << "unreachable";
    }

    op.out = static_cast<int>(st.accesses.size()) - 1;
    st.iters = loops.iters;
    st.domain = loops.Domain();
    st.op = op;
    out.stmt_of[id] = out.program.AddStatement(std::move(st), nest, 0);
    ++nest;
  }

  for (ExprRef r : outputs) {
    out.output_arrays.push_back(out.array_of[static_cast<size_t>(r)]);
  }
  RIOT_RETURN_NOT_OK(out.program.Validate());
  return out;
}

}  // namespace riot
