// Pseudo-code emission for optimized plans (paper Section 5.5: the chosen
// schedule "is subsequently transformed into C code with for and if control
// structures"). This printer reconstructs the loop structure of a schedule
// from its scheduled instance stream: time dimensions become loops (with
// recognized ranges and strides), and ranges whose bodies differ split into
// sequential segments — reproducing shapes like Figure 1(b), where the
// j == 0 iteration contains s1 and s2 while j >= 1 contains only s2.
//
// Unlike CLooG this works from the (finite, block-granularity) instance
// stream rather than symbolically, which is exact for the programs this
// system executes.
#ifndef RIOTSHARE_CORE_PSEUDOCODE_H_
#define RIOTSHARE_CORE_PSEUDOCODE_H_

#include <string>

#include "ir/program.h"
#include "ir/schedule.h"

namespace riot {

/// \brief Renders the loop structure of `schedule` applied to `program`.
std::string EmitPseudoCode(const Program& program, const Schedule& schedule);

}  // namespace riot

#endif  // RIOTSHARE_CORE_PSEUDOCODE_H_
