// Block access script: the fully lowered, explicit per-instance sequence of
// block accesses a realized plan performs. The optimizer knows the exact
// future block-access order of a plan (the paper's central premise); this
// module turns that foreknowledge into a flat script the execution engine
// interprets and a prefetcher can walk ahead of the kernels, instead of the
// executor re-deriving accesses from the IR inline.
//
// For every scheduled statement instance the script lists, in execution
// order (reads first, then the write, matching the engine's two passes):
//   * where the block lives (array id, linear block index, byte size),
//   * whether the plan serves it from memory (saved read / saved or elided
//     write) or from disk,
//   * how long the block must stay resident (retention), and
//   * for disk reads, the latest earlier write to the same block
//     (`dep_pos`) — the position a prefetcher must not run ahead of.
#ifndef RIOTSHARE_CORE_ACCESS_PLAN_H_
#define RIOTSHARE_CORE_ACCESS_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/plan_realization.h"
#include "ir/program.h"

namespace riot {

/// \brief One block access of one scheduled statement instance.
struct BlockAccessRecord {
  size_t pos = 0;        // position in the scheduled instance stream
  size_t group = 0;      // time-prefix group of `pos`
  int stmt_id = -1;
  int access_idx = -1;   // index into the statement's access list
  int array_id = -1;
  int64_t block = -1;    // linear block index
  int64_t bytes = 0;     // block byte size
  AccessType type = AccessType::kRead;
  /// Read: the plan realizes a sharing opportunity, so the block is served
  /// from memory. Write: the disk write is saved (W->W) or elided.
  bool saved = false;
  /// Retain the frame until all groups <= this complete; -1 = no retention.
  int64_t retain_until_group = -1;
  /// For reads: stream position of the latest write to the same
  /// (array, block) strictly before `pos`; -1 if none. A prefetcher may
  /// issue this read only after the instance at `dep_pos` has completed.
  int64_t dep_pos = -1;
};

/// \brief The lowered access sequence of a realized plan.
struct AccessScript {
  std::vector<BlockAccessRecord> records;
  /// Per instance-stream position: [begin, end) into `records`.
  std::vector<std::pair<uint32_t, uint32_t>> per_pos;
  size_t num_groups = 0;
  /// Largest total byte footprint any single instance touches at once;
  /// the headroom a prefetch budget must always leave the consumer.
  int64_t max_instance_bytes = 0;
};

/// \brief Lowers `rp` (over `program`) into its block access script.
AccessScript BuildAccessScript(const Program& program, const RealizedPlan& rp);

}  // namespace riot

#endif  // RIOTSHARE_CORE_ACCESS_PLAN_H_
