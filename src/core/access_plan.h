// Block access script: the fully lowered, explicit per-instance sequence of
// block accesses a realized plan performs. The optimizer knows the exact
// future block-access order of a plan (the paper's central premise); this
// module turns that foreknowledge into a flat script the execution engine
// interprets and a prefetcher can walk ahead of the kernels, instead of the
// executor re-deriving accesses from the IR inline.
//
// For every scheduled statement instance the script lists, in execution
// order (reads first, then the write, matching the engine's two passes):
//   * where the block lives (array id, linear block index, byte size),
//   * whether the plan serves it from memory (saved read / saved or elided
//     write) or from disk,
//   * how long the block must stay resident (retention), and
//   * for disk reads, the latest earlier write to the same block
//     (`dep_pos`) — the position a prefetcher must not run ahead of.
//
// The same foreknowledge also yields the statement-instance dependence DAG
// (BuildInstanceDag): the partial order the parallel executor must respect
// when it dispatches kernels onto a worker pool. Any linear extension of
// the DAG — in particular any interleaving the scheduler happens to pick —
// produces bit-for-bit the outputs of the scheduled serial order.
#ifndef RIOTSHARE_CORE_ACCESS_PLAN_H_
#define RIOTSHARE_CORE_ACCESS_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/plan_realization.h"
#include "ir/program.h"
#include "storage/replacement.h"

namespace riot {

/// \brief One block access of one scheduled statement instance.
struct BlockAccessRecord {
  size_t pos = 0;        // position in the scheduled instance stream
  size_t group = 0;      // time-prefix group of `pos`
  int stmt_id = -1;
  int access_idx = -1;   // index into the statement's access list
  int array_id = -1;
  int64_t block = -1;    // linear block index
  int64_t bytes = 0;     // block byte size
  AccessType type = AccessType::kRead;
  /// Read: the plan realizes a sharing opportunity, so the block is served
  /// from memory. Write: the disk write is saved (W->W) or elided.
  bool saved = false;
  /// Retain the frame until all groups <= this complete; -1 = no retention.
  int64_t retain_until_group = -1;
  /// For reads: stream position of the latest write to the same
  /// (array, block) strictly before `pos`; -1 if none. A prefetcher may
  /// issue this read only after the instance at `dep_pos` has completed.
  int64_t dep_pos = -1;
  /// Next instance position at which the same (array, block) is accessed
  /// again — read or write, saved or not — strictly after `pos`; -1 =
  /// never. This is the annotation Belady-style replacement consumes: a
  /// block whose next use is farthest away (or absent) is the provably
  /// best eviction victim.
  int64_t next_use_pos = -1;
};

/// \brief The lowered access sequence of a realized plan.
struct AccessScript {
  std::vector<BlockAccessRecord> records;
  /// Per instance-stream position: [begin, end) into `records`.
  std::vector<std::pair<uint32_t, uint32_t>> per_pos;
  size_t num_groups = 0;
  /// Largest total byte footprint any single instance touches at once;
  /// the headroom a prefetch budget must always leave the consumer.
  int64_t max_instance_bytes = 0;
  /// Per-(array, block) ascending, deduplicated instance positions of use
  /// (every access, read or write). The per-block future-use iterators
  /// behind the ScheduleOpt replacement policy and the cost model's cache
  /// simulator; also the source of `next_use_pos`.
  BlockUseMap block_uses;
};

/// \brief Lowers `rp` (over `program`) into its block access script.
AccessScript BuildAccessScript(const Program& program, const RealizedPlan& rp);

/// \brief Statement-instance dependence DAG over the scheduled stream.
///
/// An edge p -> q (p < q in scheduled order) means instance q must not
/// start before instance p has completed. Edges are derived from the block
/// accesses already lowered into the script:
///   * RAW: q reads a block p wrote (q must see p's data, in memory or via
///     p's write-through),
///   * WAR: q writes a block p read (q's kernel mutates the frame p's
///     kernel consumes),
///   * WAW: q writes a block p wrote (frame contents and the disk image
///     must end in scheduled order),
///   * saved-read materialization: q's read is served from memory by the
///     plan, so it must wait for the access that brought the block in and
///     retained it (the latest earlier write or non-saved read) — this is
///     the one edge kind that can connect two reads.
/// Instances with no path between them may execute concurrently: reads of
/// the same block never conflict (the executor loads each frame exactly
/// once behind a latch, then the contents are immutable until the next
/// DAG-ordered writer).
struct InstanceDag {
  /// succ[p] = positions directly depending on p, ascending, deduplicated.
  std::vector<std::vector<uint32_t>> succ;
  /// Number of direct dependencies of each position (in-degree).
  std::vector<uint32_t> pred_count;
  /// Longest dependence chain, in instances: the number of sequential
  /// "waves" a perfectly parallel machine still needs.
  size_t critical_path = 0;
  /// Largest number of instances at the same chain depth: the peak
  /// theoretical kernel parallelism of the plan.
  size_t max_width = 0;
};

/// \brief Builds the instance dependence DAG of a lowered script. Edges
/// always point forward in scheduled position, so position order is a
/// topological order.
InstanceDag BuildInstanceDag(const AccessScript& script);

}  // namespace riot

#endif  // RIOTSHARE_CORE_ACCESS_PLAN_H_
