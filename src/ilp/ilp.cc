#include "ilp/ilp.h"

#include <deque>

#include "util/logging.h"

namespace riot {

namespace {

struct Node {
  std::vector<LpConstraint> extra;  // branching bounds
};

bool IsIntegral(const RVector& x) {
  for (size_t i = 0; i < x.size(); ++i) {
    if (!x[i].IsInteger()) return false;
  }
  return true;
}

}  // namespace

IlpResult SolveIlp(size_t num_vars, const std::vector<LpConstraint>& cons,
                   const RVector& objective, const IlpOptions& options) {
  IlpResult best;
  std::vector<LpConstraint> base = cons;
  // Box bounds for termination.
  for (size_t v = 0; v < num_vars; ++v) {
    const int64_t bound = v < options.var_bounds.size()
                              ? options.var_bounds[v]
                              : options.var_bound;
    RVector c(num_vars);
    c[v] = Rational(1);
    base.push_back({c, CmpOp::kLe, Rational(bound)});
    base.push_back({c, CmpOp::kGe, Rational(-bound)});
  }

  std::deque<Node> stack;
  stack.push_back({});
  int64_t nodes = 0;
  while (!stack.empty()) {
    if (++nodes > options.max_nodes) {
      RIOT_LOG(Warning) << "ILP node limit reached (" << options.max_nodes
                        << "); returning best-so-far";
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    std::vector<LpConstraint> sys = base;
    sys.insert(sys.end(), node.extra.begin(), node.extra.end());
    auto relax_or = SolveLp(num_vars, sys, objective);
    if (!relax_or.ok()) {
      // Pivot budget exhausted: stop exploring and return best-so-far,
      // exactly like the node limit above — never abort the process.
      RIOT_LOG(Warning) << "ILP relaxation gave up: "
                        << relax_or.status().ToString()
                        << "; returning best-so-far";
      break;
    }
    const LpSolution& relax = *relax_or;
    if (relax.status != LpStatus::kOptimal) continue;  // infeasible subtree
    if (best.feasible && relax.objective <= best.objective) continue;  // bound
    if (IsIntegral(relax.x)) {
      best.feasible = true;
      best.objective = relax.objective;
      best.x.assign(num_vars, 0);
      for (size_t v = 0; v < num_vars; ++v) best.x[v] = relax.x[v].ToInt64();
      continue;
    }
    // Branch on the first fractional variable.
    size_t fv = num_vars;
    for (size_t v = 0; v < num_vars; ++v) {
      if (!relax.x[v].IsInteger()) {
        fv = v;
        break;
      }
    }
    RIOT_DCHECK(fv < num_vars);
    int64_t fl = relax.x[fv].Floor();
    RVector c(num_vars);
    c[fv] = Rational(1);
    Node down = node;
    down.extra.push_back({c, CmpOp::kLe, Rational(fl)});
    Node up = node;
    up.extra.push_back({c, CmpOp::kGe, Rational(fl + 1)});
    stack.push_back(std::move(down));
    stack.push_back(std::move(up));
  }
  return best;
}

std::optional<std::vector<int64_t>> FindIntegerPoint(
    size_t num_vars, const std::vector<LpConstraint>& cons, bool minimize_l1,
    const IlpOptions& options) {
  if (!minimize_l1) {
    RVector zero(num_vars);
    IlpResult r = SolveIlp(num_vars, cons, zero, options);
    if (!r.feasible) return std::nullopt;
    return r.x;
  }
  // Minimize sum t_i with t_i >= x_i, t_i >= -x_i: extend the variable space
  // with |x| proxies and maximize -(sum t_i).
  size_t total = 2 * num_vars;
  std::vector<LpConstraint> sys;
  sys.reserve(cons.size() + 2 * num_vars);
  for (const auto& c : cons) {
    LpConstraint ext = c;
    RVector coeffs(total);
    for (size_t v = 0; v < num_vars; ++v) coeffs[v] = c.coeffs[v];
    ext.coeffs = std::move(coeffs);
    sys.push_back(std::move(ext));
  }
  for (size_t v = 0; v < num_vars; ++v) {
    RVector c1(total), c2(total);
    c1[num_vars + v] = Rational(1);
    c1[v] = Rational(-1);
    sys.push_back({c1, CmpOp::kGe, Rational(0)});  // t >= x
    c2[num_vars + v] = Rational(1);
    c2[v] = Rational(1);
    sys.push_back({c2, CmpOp::kGe, Rational(0)});  // t >= -x
  }
  RVector obj(total);
  for (size_t v = 0; v < num_vars; ++v) obj[num_vars + v] = Rational(-1);
  IlpOptions ext = options;
  if (!ext.var_bounds.empty()) {
    // Mirror each variable's bound onto its |x| proxy.
    ext.var_bounds.resize(total);
    for (size_t v = 0; v < num_vars; ++v) {
      ext.var_bounds[num_vars + v] =
          v < options.var_bounds.size() ? options.var_bounds[v]
                                        : options.var_bound;
    }
  }
  IlpResult r = SolveIlp(total, sys, obj, ext);
  if (!r.feasible) return std::nullopt;
  r.x.resize(num_vars);
  return r.x;
}

}  // namespace riot
