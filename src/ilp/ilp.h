// Branch-and-bound integer linear programming on top of the exact simplex.
//
// Used by the optimizer to sample integer schedule-coefficient vectors from
// the legality polyhedron (Algorithm 3 line 44 of the paper), typically
// minimizing an L1-style objective so the "simplest" schedule is preferred
// (coefficients in {-1, 0, 1} whenever possible, matching the paper's
// published schedules).
#ifndef RIOTSHARE_ILP_ILP_H_
#define RIOTSHARE_ILP_ILP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ilp/simplex.h"

namespace riot {

struct IlpOptions {
  // Box bound applied to every variable (|x_i| <= var_bound) to guarantee
  // branch-and-bound termination. Schedule coefficients are small by nature.
  int64_t var_bound = 4;
  // Optional per-variable override (|x_i| <= var_bounds[i]); schedule rows
  // need tight bounds on iteration coefficients but wide ones on constants
  // (sequential composition of loop nests shifts statements by full trip
  // counts).
  std::vector<int64_t> var_bounds;
  // Safety valve on the number of B&B nodes.
  int64_t max_nodes = 200000;
};

struct IlpResult {
  bool feasible = false;
  std::vector<int64_t> x;
  Rational objective;  // maximized
};

/// \brief Maximize objective over integer points satisfying cons (plus the
/// box |x_i| <= options.var_bound).
IlpResult SolveIlp(size_t num_vars, const std::vector<LpConstraint>& cons,
                   const RVector& objective, const IlpOptions& options = {});

/// \brief Find any integer point in the system (zero objective), or one
/// minimizing the L1 norm sum |x_i| if minimize_l1 is set.
std::optional<std::vector<int64_t>> FindIntegerPoint(
    size_t num_vars, const std::vector<LpConstraint>& cons,
    bool minimize_l1 = true, const IlpOptions& options = {});

}  // namespace riot

#endif  // RIOTSHARE_ILP_ILP_H_
