// Exact two-phase primal simplex over rationals.
//
// Variables are free (unrestricted in sign) unless constrained otherwise;
// internally each free variable is split into a difference of nonnegatives.
// All arithmetic is exact, so feasibility answers are decisions, not
// approximations — this is what lets the optimizer treat polyhedron
// emptiness and schedule legality as exact.
//
// Pricing is Dantzig's rule (most positive reduced cost — fast in
// practice) with an automatic fallback to Bland's rule after a streak of
// degenerate (zero-progress) pivots, so cycling on the degenerate LPs that
// large fused programs produce cannot hang the optimizer. A hard pivot
// budget backstops both phases: exceeding it surfaces kResourceExhausted
// to the caller instead of pivoting forever (or aborting the process).
#ifndef RIOTSHARE_ILP_SIMPLEX_H_
#define RIOTSHARE_ILP_SIMPLEX_H_

#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace riot {

enum class CmpOp { kLe, kGe, kEq };

/// \brief One linear constraint: coeffs . x  (op)  rhs.
struct LpConstraint {
  RVector coeffs;
  CmpOp op = CmpOp::kLe;
  Rational rhs;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  RVector x;           // valid iff status == kOptimal
  Rational objective;  // valid iff status == kOptimal
};

struct LpOptions {
  /// Hard pivot budget across both phases. Bland's rule guarantees finite
  /// termination, so on non-adversarial inputs this is never reached; it
  /// backstops pathological exponential pivot paths. Exceeding it returns
  /// kResourceExhausted (never aborts).
  int64_t max_pivots = 1'000'000;
  /// Consecutive degenerate (zero-progress) pivots tolerated under
  /// Dantzig pricing before switching to Bland's anti-cycling rule; a
  /// progress-making pivot switches back.
  int64_t degenerate_pivot_limit = 64;
};

/// \brief Maximize objective . x subject to the constraints; x free.
///
/// Pass a zero objective for a pure feasibility test. Fails with
/// kResourceExhausted when the pivot budget is exhausted.
Result<LpSolution> SolveLp(size_t num_vars,
                           const std::vector<LpConstraint>& cons,
                           const RVector& objective,
                           const LpOptions& options = {});

/// \brief Convenience: feasibility of the system.
Result<bool> LpFeasible(size_t num_vars,
                        const std::vector<LpConstraint>& cons,
                        const LpOptions& options = {});

}  // namespace riot

#endif  // RIOTSHARE_ILP_SIMPLEX_H_
