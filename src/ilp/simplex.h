// Exact two-phase primal simplex over rationals.
//
// Variables are free (unrestricted in sign) unless constrained otherwise;
// internally each free variable is split into a difference of nonnegatives.
// Bland's rule guarantees termination. All arithmetic is exact, so
// feasibility answers are decisions, not approximations — this is what lets
// the optimizer treat polyhedron emptiness and schedule legality as exact.
#ifndef RIOTSHARE_ILP_SIMPLEX_H_
#define RIOTSHARE_ILP_SIMPLEX_H_

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace riot {

enum class CmpOp { kLe, kGe, kEq };

/// \brief One linear constraint: coeffs . x  (op)  rhs.
struct LpConstraint {
  RVector coeffs;
  CmpOp op = CmpOp::kLe;
  Rational rhs;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  RVector x;           // valid iff status == kOptimal
  Rational objective;  // valid iff status == kOptimal
};

/// \brief Maximize objective . x subject to the constraints; x free.
///
/// Pass a zero objective for a pure feasibility test.
LpSolution SolveLp(size_t num_vars, const std::vector<LpConstraint>& cons,
                   const RVector& objective);

/// \brief Convenience: feasibility of the system.
bool LpFeasible(size_t num_vars, const std::vector<LpConstraint>& cons);

}  // namespace riot

#endif  // RIOTSHARE_ILP_SIMPLEX_H_
