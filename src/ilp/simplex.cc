#include "ilp/simplex.h"

#include <algorithm>

#include "util/logging.h"

namespace riot {

namespace {

// Tableau-based simplex in standard form:
//   maximize c.y  s.t.  A y = b, y >= 0, b >= 0 (after phase-I setup).
// Dantzig pricing, Bland's rule (smallest index) after a degenerate
// streak, hard pivot budget across both phases.
class Tableau {
 public:
  // A: m x n, b: m (must be >= 0), c: n.
  Tableau(RMatrix a, RVector b, RVector c, const LpOptions& options)
      : m_(a.rows()), n_(a.cols()), a_(std::move(a)), b_(std::move(b)),
        c_(std::move(c)), basis_(m_), opts_(options) {}

  /// The pivot budget ran out; any PhaseI/PhaseII answer is unreliable.
  bool budget_exhausted() const { return budget_exhausted_; }
  int64_t pivots() const { return pivots_; }

  // Phase I: add m artificial variables with identity columns; minimize
  // their sum. Returns false if infeasible.
  bool PhaseI() {
    // Extend tableau with artificials.
    RMatrix ext(m_, n_ + m_);
    for (size_t i = 0; i < m_; ++i) {
      for (size_t j = 0; j < n_; ++j) ext.At(i, j) = a_.At(i, j);
      ext.At(i, n_ + i) = Rational(1);
      basis_[i] = n_ + i;
    }
    a_ = std::move(ext);
    // Phase-I objective: maximize -(sum of artificials).
    RVector pc(n_ + m_);
    for (size_t j = 0; j < m_; ++j) pc[n_ + j] = Rational(-1);
    Rational obj = RunSimplex(pc);
    if (!obj.IsZero()) return false;  // some artificial stuck positive
    // Pivot any artificial still in the basis out (degenerate rows).
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) continue;
      bool pivoted = false;
      for (size_t j = 0; j < n_; ++j) {
        if (!a_.At(i, j).IsZero()) {
          Pivot(i, j);
          pivoted = true;
          break;
        }
      }
      if (!pivoted) {
        // Row is all zeros over original vars: redundant; leave artificial
        // basic at value 0 (b_[i] must be 0 here).
        RIOT_DCHECK(b_[i].IsZero());
      }
    }
    // Drop artificial columns.
    RMatrix shrunk(m_, n_);
    for (size_t i = 0; i < m_; ++i)
      for (size_t j = 0; j < n_; ++j) shrunk.At(i, j) = a_.At(i, j);
    a_ = std::move(shrunk);
    // Any basis entry still pointing at an artificial marks a zero row; map
    // it to an invalid sentinel handled in PhaseII/solution extraction.
    return true;
  }

  // Phase II with true objective. Returns nullopt if unbounded.
  std::optional<Rational> PhaseII() {
    // Remove redundant rows whose basis is an (already dropped) artificial.
    std::vector<size_t> keep;
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) keep.push_back(i);
    }
    if (keep.size() != m_) {
      RMatrix a2(keep.size(), n_);
      RVector b2(keep.size());
      std::vector<size_t> basis2(keep.size());
      for (size_t k = 0; k < keep.size(); ++k) {
        for (size_t j = 0; j < n_; ++j) a2.At(k, j) = a_.At(keep[k], j);
        b2[k] = b_[keep[k]];
        basis2[k] = basis_[keep[k]];
      }
      a_ = std::move(a2);
      b_ = std::move(b2);
      basis_ = std::move(basis2);
      m_ = keep.size();
    }
    unbounded_ = false;
    Rational obj = RunSimplex(c_);
    if (unbounded_) return std::nullopt;
    return obj;
  }

  RVector Solution() const {
    RVector x(n_);
    for (size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_) x[basis_[i]] = b_[i];
    }
    return x;
  }

 private:
  // Runs simplex maximizing obj over current tableau; returns objective.
  // Maintains an explicit reduced-cost row updated on each pivot (the naive
  // per-column recomputation is O(m n) per candidate and dominates runtime
  // with exact rationals).
  Rational RunSimplex(const RVector& obj) {
    bool bland = false;       // switched on after a degenerate streak
    int64_t degen_streak = 0;
    const size_t ncols = a_.cols();
    // rc_j = c_j - c_B^T B^-1 A_j; computed once, then pivot-maintained.
    rc_ = RVector(ncols);
    obj_val_ = Rational(0);
    {
      RVector basis_cost(m_);
      for (size_t i = 0; i < m_; ++i) {
        basis_cost[i] = basis_[i] < obj.size() ? obj[basis_[i]] : Rational(0);
        obj_val_ += basis_cost[i] * b_[i];
      }
      for (size_t j = 0; j < ncols; ++j) {
        Rational rc = j < obj.size() ? obj[j] : Rational(0);
        for (size_t i = 0; i < m_; ++i) {
          if (!basis_cost[i].IsZero() && !a_.At(i, j).IsZero()) {
            rc -= basis_cost[i] * a_.At(i, j);
          }
        }
        rc_[j] = rc;
      }
    }
    for (;;) {
      if (pivots_ >= opts_.max_pivots) {
        budget_exhausted_ = true;
        break;
      }
      size_t enter = ncols;
      if (bland) {
        // Bland: first improving index — cannot cycle.
        for (size_t j = 0; j < ncols; ++j) {
          if (rc_[j].IsPositive()) {
            enter = j;
            break;
          }
        }
      } else {
        // Dantzig: most positive reduced cost (smallest index on ties).
        for (size_t j = 0; j < ncols; ++j) {
          if (rc_[j].IsPositive() &&
              (enter == ncols || rc_[enter] < rc_[j])) {
            enter = j;
          }
        }
      }
      if (enter == ncols) break;  // optimal
      // Ratio test (Bland: smallest basis index on ties).
      size_t leave = m_;
      Rational best_ratio;
      for (size_t i = 0; i < m_; ++i) {
        if (!a_.At(i, enter).IsPositive()) continue;
        Rational ratio = b_[i] / a_.At(i, enter);
        if (leave == m_ || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == m_) {
        unbounded_ = true;
        break;
      }
      // A zero-ratio pivot makes no objective progress (degeneracy): a
      // long enough streak of them under Dantzig pricing may be a cycle,
      // which Bland's rule provably exits. Real progress re-arms Dantzig.
      if (best_ratio.IsZero()) {
        if (++degen_streak >= opts_.degenerate_pivot_limit) bland = true;
      } else {
        degen_streak = 0;
        bland = false;
      }
      ++pivots_;
      Pivot(leave, enter);
    }
    return obj_val_;
  }

  void Pivot(size_t row, size_t col) {
    Rational p = a_.At(row, col);
    RIOT_DCHECK(!p.IsZero());
    Rational inv = Rational(1) / p;
    for (size_t j = 0; j < a_.cols(); ++j) a_.At(row, j) *= inv;
    b_[row] *= inv;
    for (size_t i = 0; i < m_; ++i) {
      if (i == row || a_.At(i, col).IsZero()) continue;
      Rational f = a_.At(i, col);
      for (size_t j = 0; j < a_.cols(); ++j) {
        if (!a_.At(row, j).IsZero()) a_.At(i, j) -= f * a_.At(row, j);
      }
      b_[i] -= f * b_[row];
    }
    // Maintain the reduced-cost row and objective value.
    if (!rc_.size()) {
      basis_[row] = col;
      return;
    }
    Rational f = rc_[col];
    if (!f.IsZero()) {
      for (size_t j = 0; j < a_.cols(); ++j) {
        if (!a_.At(row, j).IsZero()) rc_[j] -= f * a_.At(row, j);
      }
      obj_val_ += f * b_[row];
    }
    basis_[row] = col;
  }

  size_t m_, n_;
  RMatrix a_;
  RVector b_;
  RVector c_;
  RVector rc_;  // reduced-cost row of the active objective
  Rational obj_val_;
  std::vector<size_t> basis_;
  LpOptions opts_;
  int64_t pivots_ = 0;  // across both phases
  bool unbounded_ = false;
  bool budget_exhausted_ = false;
};

}  // namespace

Result<LpSolution> SolveLp(size_t num_vars,
                           const std::vector<LpConstraint>& cons,
                           const RVector& objective,
                           const LpOptions& options) {
  RIOT_CHECK_EQ(objective.size(), num_vars);
  // Split each free variable v into v+ - v-. Standard-form var count:
  const size_t nsf = 2 * num_vars;
  // Build equality rows, adding one slack/surplus per inequality.
  size_t num_slacks = 0;
  for (const auto& c : cons) {
    if (c.op != CmpOp::kEq) ++num_slacks;
  }
  const size_t ncols = nsf + num_slacks;
  RMatrix a(cons.size(), ncols);
  RVector b(cons.size());
  size_t slack = 0;
  for (size_t i = 0; i < cons.size(); ++i) {
    const auto& c = cons[i];
    RIOT_CHECK_EQ(c.coeffs.size(), num_vars);
    for (size_t v = 0; v < num_vars; ++v) {
      a.At(i, 2 * v) = c.coeffs[v];
      a.At(i, 2 * v + 1) = -c.coeffs[v];
    }
    b[i] = c.rhs;
    if (c.op == CmpOp::kLe) {
      a.At(i, nsf + slack++) = Rational(1);
    } else if (c.op == CmpOp::kGe) {
      a.At(i, nsf + slack++) = Rational(-1);
    }
    // Normalize to b >= 0 for phase I.
    if (b[i].IsNegative()) {
      for (size_t j = 0; j < ncols; ++j) a.At(i, j) = -a.At(i, j);
      b[i] = -b[i];
    }
  }
  RVector c_sf(ncols);
  for (size_t v = 0; v < num_vars; ++v) {
    c_sf[2 * v] = objective[v];
    c_sf[2 * v + 1] = -objective[v];
  }

  Tableau t(std::move(a), std::move(b), std::move(c_sf), options);
  LpSolution sol;
  const bool phase1_feasible = t.PhaseI();
  if (t.budget_exhausted()) {
    return Status::ResourceExhausted(
        "simplex pivot budget exhausted in phase I (" +
        std::to_string(t.pivots()) + " pivots, " +
        std::to_string(cons.size()) + " constraints, " +
        std::to_string(num_vars) + " vars)");
  }
  if (!phase1_feasible) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }
  auto obj = t.PhaseII();
  if (t.budget_exhausted()) {
    return Status::ResourceExhausted(
        "simplex pivot budget exhausted in phase II (" +
        std::to_string(t.pivots()) + " pivots, " +
        std::to_string(cons.size()) + " constraints, " +
        std::to_string(num_vars) + " vars)");
  }
  if (!obj.has_value()) {
    sol.status = LpStatus::kUnbounded;
    return sol;
  }
  sol.status = LpStatus::kOptimal;
  sol.objective = *obj;
  RVector y = t.Solution();
  sol.x = RVector(num_vars);
  for (size_t v = 0; v < num_vars; ++v) sol.x[v] = y[2 * v] - y[2 * v + 1];
  return sol;
}

Result<bool> LpFeasible(size_t num_vars,
                        const std::vector<LpConstraint>& cons,
                        const LpOptions& options) {
  RVector zero(num_vars);
  auto s = SolveLp(num_vars, cons, zero, options);
  if (!s.ok()) return s.status();
  return s->status == LpStatus::kOptimal;
}

}  // namespace riot
