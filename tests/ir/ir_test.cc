#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/program.h"
#include "ir/schedule.h"
#include "ops/workload.h"

namespace riot {
namespace {

TEST(ArrayInfoTest, SizesAndLinearization) {
  ArrayInfo a;
  a.name = "A";
  a.grid = {3, 4};
  a.block_elems = {10, 20};
  EXPECT_EQ(a.ElemsPerBlock(), 200);
  EXPECT_EQ(a.BlockBytes(), 1600);
  EXPECT_EQ(a.NumBlocks(), 12);
  EXPECT_EQ(a.TotalBytes(), 12 * 1600);
  EXPECT_EQ(a.LinearBlockIndex({0, 0}), 0);
  EXPECT_EQ(a.LinearBlockIndex({1, 2}), 6);
  EXPECT_EQ(a.LinearBlockIndex({2, 3}), 11);
}

TEST(AccessTest, BlockAtAppliesAffineMap) {
  // Phi maps (i,j,k) -> (i, k) like C[i,k] in Example 1's s2.
  Access a = Read(0, {{1, 0, 0, 0}, {0, 0, 1, 0}});
  EXPECT_EQ(a.BlockAt({2, 5, 3}), (BlockCoord{2, 3}));
  // With constants: A[i+1, 2].
  Access b = Read(0, {{1, 0, 0, 1}, {0, 0, 0, 2}});
  EXPECT_EQ(b.BlockAt({2, 5, 3}), (BlockCoord{3, 2}));
}

TEST(AccessTest, GuardControlsActivation) {
  Polyhedron dom = RectDomain({{0, 4}});
  Access a = Read(0, {{1, 0}});
  a.guard = GuardGe(dom, 0, 1);  // active iff k >= 1
  EXPECT_FALSE(a.ActiveAt({0}));
  EXPECT_TRUE(a.ActiveAt({1}));
  EXPECT_TRUE(a.ActiveAt({4}));
}

TEST(ScheduleTest, TimeOfAndCompare) {
  RMatrix m(2, 3);  // rows over (i, k, 1)
  m.At(0, 0) = Rational(1);   // t0 = i
  m.At(1, 1) = Rational(-1);  // t1 = -k + 5
  m.At(1, 2) = Rational(5);
  Schedule s({m});
  EXPECT_EQ(s.TimeOf(0, {2, 3}), (TimeVector{2, 2}));
  EXPECT_EQ(CompareTime({1, 2}, {1, 3}), -1);
  EXPECT_EQ(CompareTime({2, 0}, {1, 9}), 1);
  EXPECT_EQ(CompareTime({1, 2}, {1, 2}), 0);
}

TEST(ProgramTest, OriginalScheduleOrdersNestsSequentially) {
  Workload w = MakeExample1(2, 2, 2);
  const Program& p = w.program;
  auto order = p.ScheduledOrder(p.original_schedule());
  // All s1 instances before all s2 instances.
  bool seen_s2 = false;
  for (const auto& inst : order) {
    if (inst.stmt_id == 1) seen_s2 = true;
    if (seen_s2) EXPECT_EQ(inst.stmt_id, 1);
  }
  EXPECT_EQ(order.size(), 4u + 8u);
}

TEST(ProgramTest, OriginalScheduleIsLoopOrder) {
  Workload w = MakeExample1(2, 3, 2);
  const Program& p = w.program;
  auto order = p.ScheduledOrder(p.original_schedule());
  // s1 instances come in lexicographic (i,k) order.
  std::vector<std::vector<int64_t>> s1_iters;
  for (const auto& inst : order) {
    if (inst.stmt_id == 0) s1_iters.push_back(inst.iter);
  }
  for (size_t i = 1; i < s1_iters.size(); ++i) {
    EXPECT_LT(s1_iters[i - 1], s1_iters[i]);
  }
}

TEST(ProgramTest, ValidateCatchesBadAccess) {
  Program p;
  ArrayInfo a;
  a.name = "A";
  a.grid = {2, 2};
  a.block_elems = {4, 4};
  int aid = p.AddArray(a);
  Statement s;
  s.name = "s";
  s.iters = {"i"};
  s.domain = RectDomain({{0, 3}});  // i up to 3, but grid only 2 wide
  s.accesses.push_back(Read(aid, {{1, 0}, {0, 0}}));
  p.AddStatement(std::move(s), 0, 0);
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ProgramTest, ValidateAcceptsWorkloads) {
  EXPECT_TRUE(MakeExample1(2, 2, 2).program.Validate().ok());
  EXPECT_TRUE(MakeAddMul(40).program.Validate().ok());
  EXPECT_TRUE(MakeAddMulTall(40).program.Validate().ok());
  EXPECT_TRUE(
      MakeTwoMatMul(TwoMatMulConfig::kConfigA, 40).program.Validate().ok());
  EXPECT_TRUE(
      MakeTwoMatMul(TwoMatMulConfig::kConfigB, 40).program.Validate().ok());
  EXPECT_TRUE(MakeLinReg(40).program.Validate().ok());
}

TEST(ProgramTest, AccessLabels) {
  Workload w = MakeExample1(2, 2, 1);
  EXPECT_EQ(w.program.AccessLabel({0, 0}), "s1RA");
  EXPECT_EQ(w.program.AccessLabel({0, 2}), "s1WC");
  EXPECT_EQ(w.program.AccessLabel({1, 3}), "s2WE");
}

TEST(ProgramTest, MaxDepth) {
  EXPECT_EQ(MakeExample1(2, 2, 2).program.MaxDepth(), 3u);
  EXPECT_EQ(MakeLinReg(40).program.MaxDepth(), 1u);
}

TEST(ProgramTest, ScheduledOrderDeterministicTieBreak) {
  // Under the original schedule all times are unique; ScheduledOrder must be
  // stable across calls.
  Workload w = MakeExample1(3, 3, 2);
  auto a = w.program.ScheduledOrder(w.program.original_schedule());
  auto b = w.program.ScheduledOrder(w.program.original_schedule());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stmt_id, b[i].stmt_id);
    EXPECT_EQ(a[i].iter, b[i].iter);
  }
}

}  // namespace
}  // namespace riot
