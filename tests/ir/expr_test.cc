// Expression-DAG front end: shape inference across every op, and
// hash-consed common-subexpression elimination.
#include "ir/expr.h"

#include <gtest/gtest.h>

namespace riot {
namespace {

TEST(ExprTest, ShapeInferenceElementwiseAndScalarOps) {
  ExprGraph g;
  ExprRef a = g.Input("A", {3, 2}, {8, 4});
  ExprRef b = g.Input("B", {3, 2}, {8, 4});
  for (ExprRef r : {g.Add(a, b), g.Sub(a, b), g.Scale(a, 2.0)}) {
    EXPECT_EQ(g.node(r).shape, g.node(a).shape);
  }
  ExprRef sq = g.Input("S", {1, 1}, {6, 6});
  ExprRef d = g.AddDiag(sq, 0.5);
  EXPECT_EQ(g.node(d).shape, g.node(sq).shape);
  EXPECT_EQ(g.node(d).alpha, 0.5);
}

TEST(ExprTest, ShapeInferenceGemm) {
  ExprGraph g;
  ExprRef a = g.Input("A", {3, 2}, {8, 4});   // 24 x 8 elements
  ExprRef b = g.Input("B", {2, 5}, {4, 7});   // 8 x 35
  ExprRef c = g.Gemm(a, b);
  EXPECT_EQ(g.node(c).shape.grid, (std::vector<int64_t>{3, 5}));
  EXPECT_EQ(g.node(c).shape.block_elems, (std::vector<int64_t>{8, 7}));

  // A'A: contraction over A's row blocks.
  ExprRef gram = g.Gemm(a, a, {true});
  EXPECT_EQ(g.node(gram).shape.grid, (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(g.node(gram).shape.block_elems, (std::vector<int64_t>{4, 4}));

  // A B'^T with B' = Gemm result: (24x8) x (35x8)^T contraction over cols.
  ExprRef bt = g.Input("C", {3, 2}, {9, 4});  // 27 x 8
  ExprRef abt = g.Gemm(a, bt, {false, true});
  EXPECT_EQ(g.node(abt).shape.grid, (std::vector<int64_t>{3, 3}));
  EXPECT_EQ(g.node(abt).shape.block_elems, (std::vector<int64_t>{8, 9}));
}

TEST(ExprTest, ShapeInferenceUnaryOps) {
  ExprGraph g;
  ExprRef sq = g.Input("S", {1, 1}, {5, 5});
  ExprRef inv = g.Inverse(sq);  // may grow the node table; refs stay valid
  EXPECT_EQ(g.node(inv).shape, g.node(sq).shape);

  ExprRef x = g.Input("X", {4, 2}, {16, 3});
  ExprRef ss = g.SumSquares(x);
  EXPECT_EQ(g.node(ss).shape.grid, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(g.node(ss).shape.block_elems, (std::vector<int64_t>{1, 3}));
}

TEST(ExprTest, HashConsingDedupsIdenticalSubexpressions) {
  ExprGraph g;
  ExprRef x = g.Input("X", {4, 1}, {8, 4});
  ExprRef y = g.Input("Y", {4, 1}, {8, 2});
  ExprRef g1 = g.Gemm(x, x, {true});
  ExprRef g2 = g.Gemm(x, x, {true});
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(g.cse_hits(), 1);

  // Different parameters are different nodes.
  EXPECT_NE(g.Gemm(x, x, {true, false, 2.0}), g1);
  EXPECT_NE(g.Gemm(x, y, {true}), g1);
  EXPECT_EQ(g.cse_hits(), 1);

  // Consumers of the shared node dedup too.
  ExprRef i1 = g.Inverse(g1);
  ExprRef i2 = g.Inverse(g2);
  EXPECT_EQ(i1, i2);
  EXPECT_EQ(g.cse_hits(), 2);

  // Inputs never dedup (two all-ones vectors are distinct arrays).
  EXPECT_NE(g.Input("O1", {4, 1}, {8, 1}), g.Input("O2", {4, 1}, {8, 1}));
}

TEST(ExprTest, NamesAndKeepStick) {
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef s = g.Add(x, x);
  g.SetName(s, "S");
  g.Keep(s);
  EXPECT_EQ(g.node(s).name, "S");
  EXPECT_TRUE(g.node(s).keep);
  // Add(x, x) found the existing node; the name stays.
  EXPECT_EQ(g.Add(x, x), s);
}

TEST(ExprTest, DescribeMentionsOpAndShape) {
  ExprGraph g;
  ExprRef x = g.Input("X", {4, 1}, {8, 4});
  ExprRef gram = g.Gemm(x, x, {true});
  std::string d = g.Describe(gram);
  EXPECT_NE(d.find("gemm"), std::string::npos);
  EXPECT_NE(d.find("X"), std::string::npos);
  EXPECT_NE(d.find("1x1 blocks of 4x4"), std::string::npos);
}

}  // namespace
}  // namespace riot
