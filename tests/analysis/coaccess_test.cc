// Tests of dependence / sharing-opportunity extraction against the paper's
// worked examples (Sections 4.3 and 6).
#include "analysis/coaccess.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ir/builder.h"
#include "ops/workload.h"

namespace riot {
namespace {

const CoAccess* Find(const std::vector<CoAccess>& list, const Program& p,
                     const std::string& label) {
  for (const auto& ca : list) {
    if (ca.Label(p) == label) return &ca;
  }
  return nullptr;
}

TEST(CoAccessTest, Example1DependencesMatchPaper) {
  Workload w = MakeExample1(3, 4, 2);
  AnalysisResult r = AnalyzeProgram(w.program);
  const Program& p = w.program;
  // Paper Section 4.3: s1WC -> s2RC is a dependence with polyhedron
  // { i=i', k=k', all j }.
  const CoAccess* d = Find(r.dependences, p, "s1WC->s2RC");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->pairs.size(), 3u * 4u * 2u);
  for (const auto& pr : d->pairs) {
    EXPECT_EQ(pr.src_iter[0], pr.dst_iter[0]);  // i = i'
    EXPECT_EQ(pr.src_iter[1], pr.dst_iter[2]);  // k = k'
  }
  // s2RC -> s1WC must NOT exist (no s2 instance precedes s1).
  EXPECT_EQ(Find(r.dependences, p, "s2RC->s1WC"), nullptr);
  // Accumulation dependences on E, restricted to consecutive k by the
  // no-write-in-between rule.
  const CoAccess* ww = Find(r.dependences, p, "s2WE->s2WE");
  ASSERT_NE(ww, nullptr);
  for (const auto& pr : ww->pairs) {
    EXPECT_EQ(pr.dst_iter[2], pr.src_iter[2] + 1);  // k' = k + 1
    EXPECT_EQ(pr.src_iter[0], pr.dst_iter[0]);
    EXPECT_EQ(pr.src_iter[1], pr.dst_iter[1]);
  }
  const CoAccess* wr = Find(r.dependences, p, "s2WE->s2RE");
  ASSERT_NE(wr, nullptr);
  for (const auto& pr : wr->pairs) {
    EXPECT_EQ(pr.dst_iter[2], pr.src_iter[2] + 1);
  }
}

TEST(CoAccessTest, Example1SharingMatchesPaper) {
  Workload w = MakeExample1(3, 4, 2);
  AnalysisResult r = AnalyzeProgram(w.program);
  const Program& p = w.program;
  std::set<std::string> labels;
  for (const auto& s : r.sharing) labels.insert(s.Label(p));
  // n3 = 2 > 1, so C is re-read: s2RC->s2RC exists.
  EXPECT_TRUE(labels.count("s1WC->s2RC"));
  EXPECT_TRUE(labels.count("s2RC->s2RC"));
  EXPECT_TRUE(labels.count("s2RD->s2RD"));
  EXPECT_TRUE(labels.count("s2WE->s2RE"));
  EXPECT_TRUE(labels.count("s2WE->s2WE"));
  // R->W is never a sharing opportunity.
  EXPECT_FALSE(labels.count("s2RE->s2WE"));
  // A and B are read once; no sharing on them.
  for (const auto& l : labels) {
    EXPECT_EQ(l.find("RA"), std::string::npos) << l;
    EXPECT_EQ(l.find("RB"), std::string::npos) << l;
  }
}

TEST(CoAccessTest, N3EqualOneRemovesCReadSharing) {
  // Paper Section 6.1: "because n3 = 1, sharing opportunity s2RC->s2RC does
  // not exist."
  Workload w = MakeExample1(3, 4, 1);
  AnalysisResult r = AnalyzeProgram(w.program);
  EXPECT_EQ(Find(r.sharing, w.program, "s2RC->s2RC"), nullptr);
  EXPECT_NE(Find(r.sharing, w.program, "s1WC->s2RC"), nullptr);
}

TEST(CoAccessTest, MultiplicityReductionMakesSharingOneOne) {
  Workload w = MakeExample1(3, 4, 3);
  AnalysisResult r = AnalyzeProgram(w.program);
  for (const auto& s : r.sharing) {
    std::set<std::vector<int64_t>> srcs, dsts;
    for (const auto& pr : s.pairs) {
      EXPECT_TRUE(srcs.insert(pr.src_iter).second)
          << s.Label(w.program) << " has duplicated source";
      EXPECT_TRUE(dsts.insert(pr.dst_iter).second)
          << s.Label(w.program) << " has duplicated target";
    }
  }
}

TEST(CoAccessTest, OneManyReductionKeepsClosestTarget) {
  // s1WC -> s2RC with n3 = 3: the write of C[i,k] relates to reads at
  // j = 0, 1, 2; reduction must keep j = 0 (closest in time).
  Workload w = MakeExample1(2, 2, 3);
  AnalysisResult r = AnalyzeProgram(w.program);
  const CoAccess* s = Find(r.sharing, w.program, "s1WC->s2RC");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->pairs.size(), 4u);  // one per C block
  for (const auto& pr : s->pairs) {
    EXPECT_EQ(pr.dst_iter[1], 0);  // j' = 0
  }
}

TEST(CoAccessTest, SelfReadSharingIsConsecutive) {
  // s2RC -> s2RC: C[i,k] is re-read at successive j; reduced pairs must be
  // (i,j,k) -> (i,j+1,k).
  Workload w = MakeExample1(2, 2, 3);
  AnalysisResult r = AnalyzeProgram(w.program);
  const CoAccess* s = Find(r.sharing, w.program, "s2RC->s2RC");
  ASSERT_NE(s, nullptr);
  for (const auto& pr : s->pairs) {
    EXPECT_EQ(pr.dst_iter[1], pr.src_iter[1] + 1);
    EXPECT_EQ(pr.dst_iter[0], pr.src_iter[0]);
    EXPECT_EQ(pr.dst_iter[2], pr.src_iter[2]);
  }
}

TEST(CoAccessTest, NoWriteInBetweenPrunesStaleReuse) {
  // E[i,j] is written at every k; R->R reuse of E across k would cross a
  // write and must be pruned.
  Workload w = MakeExample1(2, 3, 2);
  AnalysisResult r = AnalyzeProgram(w.program);
  EXPECT_EQ(Find(r.sharing, w.program, "s2RE->s2RE"), nullptr);
}

TEST(CoAccessTest, AblationWithoutNwibKeepsStaleReuse) {
  Workload w = MakeExample1(2, 3, 2);
  AnalysisOptions opts;
  opts.no_write_in_between = false;
  AnalysisResult r = AnalyzeProgram(w.program, opts);
  EXPECT_NE(Find(r.sharing, w.program, "s2RE->s2RE"), nullptr);
}

TEST(CoAccessTest, GeneratorsAreSubsetAndSpanPairs) {
  Workload w = MakeExample1(3, 4, 2);
  AnalysisResult r = AnalyzeProgram(w.program);
  auto check = [&](const std::vector<CoAccess>& list) {
    for (const auto& ca : list) {
      EXPECT_FALSE(ca.generators.empty());
      EXPECT_LE(ca.generators.size(), ca.pairs.size());
      std::set<InstancePair> pairs(ca.pairs.begin(), ca.pairs.end());
      for (const auto& g : ca.generators) {
        EXPECT_TRUE(pairs.count(g)) << "generator not among pairs";
      }
    }
  };
  check(r.dependences);
  check(r.sharing);
}

TEST(CoAccessTest, GeneratorsCompressFullBoxRelations) {
  Workload w = MakeExample1(4, 5, 3);
  AnalysisResult r = AnalyzeProgram(w.program);
  const CoAccess* d = Find(r.dependences, w.program, "s1WC->s2RC");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->pairs.size(), 4u * 5u * 3u);
  EXPECT_EQ(d->generators.size(), 8u);  // 2^3 corners of the (i,k,j) box
}

TEST(CoAccessTest, LinRegHasPaperOpportunityCount) {
  // Paper Section 6.3 reports 16 sharing opportunities for the 7-statement
  // linear regression; our model adds one more (the self-reuse of the
  // small coefficient block read by s5), which the paper's operator-level
  // modeling folds away.
  Workload w = MakeLinReg(40);
  AnalysisResult r = AnalyzeProgram(w.program);
  EXPECT_EQ(r.sharing.size(), 17u);
}

TEST(CoAccessTest, TwoMatMulHasPaperOpportunityCount) {
  // Paper Section 6.2: "There are 9 sharing opportunities."
  Workload w = MakeTwoMatMul(TwoMatMulConfig::kConfigA, 40);
  AnalysisResult r = AnalyzeProgram(w.program);
  EXPECT_EQ(r.sharing.size(), 9u);
}

TEST(ExtentPolyhedronTest, MatchesEnumeratedPairsBeforePruning) {
  // The symbolic extent (pre-NWIB) of s1WC->s2RC must contain exactly the
  // pairs with i=i', k=k' ordered by the original schedule.
  Workload w = MakeExample1(2, 3, 2);
  AnalysisResult r = AnalyzeProgram(w.program);
  const CoAccess* d = Find(r.dependences, w.program, "s1WC->s2RC");
  ASSERT_NE(d, nullptr);
  PolyhedronUnion ext = ExtentPolyhedron(w.program, d->src, d->dst);
  // Every analyzed pair appears in the symbolic extent.
  for (const auto& pr : d->pairs) {
    std::vector<int64_t> joint = pr.src_iter;
    joint.insert(joint.end(), pr.dst_iter.begin(), pr.dst_iter.end());
    EXPECT_TRUE(ext.Contains(joint));
  }
  // And the extent has exactly n1*n2*n3 points (no pruning applies to C).
  EXPECT_EQ(ext.EnumerateIntegerPoints().size(), 2u * 3u * 2u);
}

TEST(ExtentPolyhedronTest, ReversedAccessPattern) {
  // Paper Section 4.3 closing example: A[i] = B[i]; C[i] = A[n-1-i] has
  // dependences in both directions.
  Program p;
  ArrayInfo arr;
  arr.name = "A";
  arr.grid = {6, 1};
  arr.block_elems = {4, 4};
  int a = p.AddArray(arr);
  arr.name = "B";
  int b = p.AddArray(arr);
  arr.name = "C";
  int c = p.AddArray(arr);
  const int64_t n = 6;
  {
    Statement s1;
    s1.name = "s1";
    s1.iters = {"i"};
    s1.domain = RectDomain({{0, n - 1}});
    s1.accesses.push_back(Read(b, {{1, 0}, {0, 0}}));
    s1.accesses.push_back(Write(a, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(s1), 0, 0);
  }
  {
    Statement s2;
    s2.name = "s2";
    s2.iters = {"i"};
    s2.domain = RectDomain({{0, n - 1}});
    s2.accesses.push_back(Read(a, {{-1, n - 1}, {0, 0}}));  // A[n-1-i]
    s2.accesses.push_back(Write(c, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(s2), 0, 1);  // same loop nest, second statement
  }
  ASSERT_TRUE(p.Validate().ok());
  AnalysisResult r = AnalyzeProgram(p);
  const CoAccess* fwd = Find(r.dependences, p, "s1WA->s2RA");
  const CoAccess* bwd = Find(r.dependences, p, "s2RA->s1WA");
  ASSERT_NE(fwd, nullptr);
  ASSERT_NE(bwd, nullptr);
  // Paper: P(s1WA->s2RA) = { i + i' = n-1, 0 <= i <= (n-1)/2 }.
  for (const auto& pr : fwd->pairs) {
    EXPECT_EQ(pr.src_iter[0] + pr.dst_iter[0], n - 1);
    EXPECT_LE(pr.src_iter[0], (n - 1) / 2);
  }
  // P(s2RA->s1WA) = { i' + i = n-1, 0 <= i' <= (n-2)/2 }.
  for (const auto& pr : bwd->pairs) {
    EXPECT_EQ(pr.src_iter[0] + pr.dst_iter[0], n - 1);
    EXPECT_LE(pr.src_iter[0], (n - 2) / 2);
  }
}

}  // namespace
}  // namespace riot
