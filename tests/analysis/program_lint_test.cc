// Mutation tests for the plan-integrity linter: start from known-good
// programs/plans, break exactly one invariant, and assert the specific
// LintReport diagnostic fires — plus the complementary direction, that the
// unmutated originals lint clean (the fuzzer-corpus hook in
// tests/integration/random_program_test.cc covers false positives at
// scale).
#include "analysis/program_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "core/access_plan.h"
#include "core/lowering.h"
#include "core/plan_realization.h"
#include "ir/builder.h"
#include "ir/program.h"
#include "ir/scalar_ops.h"

namespace riot {
namespace {

// C = A * B over an n x n block grid with a guarded k-accumulation: the
// canonical op-specced statement every mutation starts from.
Program Matmul(int64_t n, bool guard_acc = true) {
  Program p;
  for (const char* name : {"A", "B", "C"}) {
    ArrayInfo a;
    a.name = name;
    a.grid = {n, n};
    a.block_elems = {4, 4};
    p.AddArray(a);
  }
  Statement st;
  st.name = "s1";
  st.iters = {"i", "j", "k"};
  st.domain = RectDomain({{0, n - 1}, {0, n - 1}, {0, n - 1}}, st.iters);
  st.accesses.push_back(Read(0, {{1, 0, 0, 0}, {0, 0, 1, 0}}));
  st.accesses.push_back(Read(1, {{0, 0, 1, 0}, {0, 1, 0, 0}}));
  Access acc = Read(2, {{1, 0, 0, 0}, {0, 1, 0, 0}});
  if (guard_acc) acc.guard = GuardGe(st.domain, 2, 1);
  st.accesses.push_back(std::move(acc));
  st.accesses.push_back(Write(2, {{1, 0, 0, 0}, {0, 1, 0, 0}}));
  StatementOp op;
  op.kind = StatementOp::Kind::kGemm;
  op.a = 0;
  op.b = 1;
  op.acc = 2;
  op.out = 3;
  op.reduction_iter = 2;
  st.op = op;
  p.AddStatement(std::move(st), 0, 0);
  return p;
}

// s1 writes C, s2 reads it: one RAW pair, single instance each.
Program WriteThenRead(bool persistent_c = true) {
  Program p;
  ArrayInfo c;
  c.name = "C";
  c.grid = {2, 2};
  c.block_elems = {4, 4};
  c.persistent = persistent_c;
  p.AddArray(c);
  ArrayInfo d = c;
  d.name = "D";
  d.persistent = true;
  p.AddArray(d);
  Statement s1;
  s1.name = "s1";
  s1.iters = {"i", "j"};
  s1.domain = RectDomain({{0, 0}, {0, 0}}, s1.iters);
  s1.accesses.push_back(Write(0, {{1, 0, 0}, {0, 1, 0}}));
  p.AddStatement(std::move(s1), 0, 0);
  Statement s2;
  s2.name = "s2";
  s2.iters = {"i", "j"};
  s2.domain = RectDomain({{0, 0}, {0, 0}}, s2.iters);
  s2.accesses.push_back(Read(0, {{1, 0, 0}, {0, 1, 0}}));
  s2.accesses.push_back(Write(1, {{1, 0, 0}, {0, 1, 0}}));
  p.AddStatement(std::move(s2), 1, 0);
  return p;
}

struct Lowered {
  RealizedPlan rp;
  AccessScript script;
  InstanceDag dag;
};

Lowered Lower(const Program& p) {
  Lowered l;
  l.rp = RealizePlan(p, p.original_schedule(), {});
  l.script = BuildAccessScript(p, l.rp);
  l.dag = BuildInstanceDag(l.script);
  return l;
}

TEST(ProgramLintTest, CleanMatmulPassesBothLevels) {
  Program p = Matmul(2);
  ASSERT_TRUE(p.Validate().ok());
  auto prog = LintProgram(p);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->ok()) << prog->ToString();
  auto plan = LintPlan(p, p.original_schedule(), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->ok()) << plan->ToString();
  EXPECT_EQ(plan->instances_checked, 8u);
  EXPECT_TRUE(plan->dag_cross_checked);
}

TEST(ProgramLintTest, DroppedAccumulatorGuardIsFlagged) {
  auto report = LintProgram(Matmul(2, /*guard_acc=*/false));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kUnguardedAccumulator))
      << report->ToString();
}

TEST(ProgramLintTest, GuardNotExcludingReductionStartIsFlagged) {
  Program p = Matmul(2);
  // k >= 0 admits the reduction-start iterations the kernel initializes at.
  Statement st = p.statements()[0];
  Program q;
  for (const auto& a : p.arrays()) q.AddArray(a);
  st.accesses[2].guard = GuardGe(st.domain, 2, 0);
  q.AddStatement(std::move(st), 0, 0);
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kUnguardedAccumulator))
      << report->ToString();
}

TEST(ProgramLintTest, ShiftedSubscriptOutOfGridIsFlagged) {
  Program p = Matmul(2);
  Statement st = p.statements()[0];
  // Shift A's row subscript by the grid extent: i + 2 over grid {2, 2}.
  std::vector<std::vector<int64_t>> rows = {{1, 0, 0, 2}, {0, 0, 1, 0}};
  st.accesses[0] = Read(0, rows);
  Program q;
  for (const auto& a : p.arrays()) q.AddArray(a);
  q.AddStatement(std::move(st), 0, 0);
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kSubscriptOutOfGrid))
      << report->ToString();
}

TEST(ProgramLintTest, NegativeSubscriptIsFlagged) {
  Program p = Matmul(2);
  Statement st = p.statements()[0];
  std::vector<std::vector<int64_t>> rows = {{1, 0, 0, -1}, {0, 0, 1, 0}};
  st.accesses[0] = Read(0, rows);
  Program q;
  for (const auto& a : p.arrays()) q.AddArray(a);
  q.AddStatement(std::move(st), 0, 0);
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kSubscriptOutOfGrid))
      << report->ToString();
}

TEST(ProgramLintTest, OpArityMismatchIsFlagged) {
  {
    Program p = Matmul(2);
    Statement st = p.statements()[0];
    st.op->b = -1;  // gemm is binary
    Program q;
    for (const auto& a : p.arrays()) q.AddArray(a);
    q.AddStatement(std::move(st), 0, 0);
    auto report = LintProgram(q);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->Has(LintCode::kOpArityMismatch))
        << report->ToString();
  }
  {
    Program p = Matmul(2);
    Statement st = p.statements()[0];
    st.op->out = 0;  // names a read access
    Program q;
    for (const auto& a : p.arrays()) q.AddArray(a);
    q.AddStatement(std::move(st), 0, 0);
    auto report = LintProgram(q);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->Has(LintCode::kOpArityMismatch))
        << report->ToString();
  }
  {
    Program p = Matmul(2);
    Statement st = p.statements()[0];
    // Accumulator no longer aliases the write (reads A instead of C).
    st.accesses[2].array_id = 0;
    Program q;
    for (const auto& a : p.arrays()) q.AddArray(a);
    q.AddStatement(std::move(st), 0, 0);
    auto report = LintProgram(q);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->Has(LintCode::kOpArityMismatch))
        << report->ToString();
  }
}

TEST(ProgramLintTest, EmptyDomainIsFlagged) {
  Program p;
  ArrayInfo a;
  a.name = "A";
  a.grid = {2, 2};
  a.block_elems = {4, 4};
  p.AddArray(a);
  Statement st;
  st.name = "s1";
  st.iters = {"i", "j"};
  st.domain = RectDomain({{0, 1}, {1, 0}}, st.iters);  // j in [1, 0]: empty
  st.accesses.push_back(Write(0, {{1, 0, 0}, {0, 1, 0}}));
  p.AddStatement(std::move(st), 0, 0);
  auto report = LintProgram(p);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kEmptyDomain)) << report->ToString();
}

TEST(ProgramLintTest, MalformedAccessShapeIsFlagged) {
  Program p;
  ArrayInfo a;
  a.name = "A";
  a.grid = {2, 2};
  a.block_elems = {4, 4};
  p.AddArray(a);
  Statement st;
  st.name = "s1";
  st.iters = {"i", "j"};
  st.domain = RectDomain({{0, 1}, {0, 1}}, st.iters);
  st.accesses.push_back(Write(0, {{1, 0, 0}}));  // 1 row for a 2-D array
  p.AddStatement(std::move(st), 0, 0);
  auto report = LintProgram(p);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedAccess)) << report->ToString();
}

TEST(ProgramLintTest, ReadOfUnwrittenScratchIsUseBeforeDef) {
  Program p;
  ArrayInfo t;
  t.name = "T";
  t.grid = {2, 2};
  t.block_elems = {4, 4};
  t.persistent = false;  // scratch: no defined on-disk contents
  p.AddArray(t);
  ArrayInfo o = t;
  o.name = "O";
  o.persistent = true;
  p.AddArray(o);
  Statement st;
  st.name = "s1";
  st.iters = {"i", "j"};
  st.domain = RectDomain({{0, 1}, {0, 1}}, st.iters);
  st.accesses.push_back(Read(0, {{1, 0, 0}, {0, 1, 0}}));
  st.accesses.push_back(Write(1, {{1, 0, 0}, {0, 1, 0}}));
  p.AddStatement(std::move(st), 0, 0);
  ASSERT_TRUE(LintProgram(p)->ok());
  auto report = LintPlan(p, p.original_schedule(), {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kUseBeforeDef)) << report->ToString();
  // The same program over a persistent (input) array is legal.
  Program q = WriteThenRead();
  auto clean = LintPlan(q, q.original_schedule(), {});
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->ok()) << clean->ToString();
}

TEST(ProgramLintTest, ElidedWriteLaterReadFromDiskIsFlagged) {
  Program p = WriteThenRead();
  Lowered l = Lower(p);
  // Mutate the lowered script: pretend the realization elided s1's write
  // while s2 still reads the block from disk.
  bool mutated = false;
  for (BlockAccessRecord& rec : l.script.records) {
    if (rec.type == AccessType::kWrite && rec.array_id == 0) {
      rec.saved = true;
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  auto report = LintScript(p, l.rp, l.script, l.dag);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kElidedWriteRead)) << report->ToString();
}

TEST(ProgramLintTest, BogusDepPosIsFlagged) {
  Program p = WriteThenRead();
  Lowered l = Lower(p);
  bool mutated = false;
  for (BlockAccessRecord& rec : l.script.records) {
    if (rec.type == AccessType::kRead && rec.dep_pos >= 0) {
      rec.dep_pos = static_cast<int64_t>(rec.pos);  // not strictly earlier
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  auto report = LintScript(p, l.rp, l.script, l.dag);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kBadDepPos)) << report->ToString();
}

TEST(ProgramLintTest, DeletedDagEdgeIsFlagged) {
  Program p = WriteThenRead();
  Lowered l = Lower(p);
  // The only dependence is s1's write -> s2's read (positions 0 -> 1).
  ASSERT_EQ(l.dag.succ.size(), 2u);
  ASSERT_FALSE(l.dag.succ[0].empty());
  auto clean = LintScript(p, l.rp, l.script, l.dag);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean->ok()) << clean->ToString();
  // Delete the edge (and its in-degree) — the RAW pair is now unordered.
  l.dag.succ[0].clear();
  l.dag.pred_count[1] = 0;
  auto report = LintScript(p, l.rp, l.script, l.dag);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMissingDagEdge)) << report->ToString();
  EXPECT_TRUE(report->dag_cross_checked);
}

TEST(ProgramLintTest, InconsistentPredCountIsFlagged) {
  Program p = WriteThenRead();
  Lowered l = Lower(p);
  l.dag.pred_count[1] += 1;  // bookkeeping no edge backs
  auto report = LintScript(p, l.rp, l.script, l.dag);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kDagInconsistent)) << report->ToString();
}

TEST(ProgramLintTest, InstanceCapSkipsBruteForceOnly) {
  Program p = Matmul(2);
  Lowered l = Lower(p);
  LintOptions opts;
  opts.max_dag_instances = 4;  // below the 8 instances
  auto report = LintScript(p, l.rp, l.script, l.dag, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->ToString();
  EXPECT_FALSE(report->dag_cross_checked);
  EXPECT_EQ(report->instances_checked, 8u);
}

// ---- Fused-tape mutations ------------------------------------------------
// Start from a clean fused program (a real LowerExpr chain), break exactly
// one tape invariant, and assert kMalformedTape fires.

// Z = max(relu(2 * (X + Y) - Y), Y) * 3-ish: one compound statement with a
// load-dedup, a scale, a map, and a zip on the tape.
Program FusedChain() {
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef y = g.Input("Y", {2, 2}, {4, 4});
  ExprRef t = g.Add(x, y);
  t = g.Scale(t, 2.0);
  t = g.Sub(t, y);
  t = g.Map(t, kScalarRelu);
  t = g.Zip(t, y, kScalarMax);
  LoweredExpr lo = LowerExpr(g, {t}).ValueOrDie();
  EXPECT_EQ(lo.program.statements().size(), 1u);
  EXPECT_EQ(lo.program.statement(0).op->kind, StatementOp::Kind::kFused);
  return lo.program;
}

// Rebuild the program with statement 0's op mutated by `mutate`.
Program MutateFusedOp(const Program& p,
                      const std::function<void(StatementOp*)>& mutate) {
  Program q;
  for (const auto& a : p.arrays()) q.AddArray(a);
  Statement st = p.statements()[0];
  mutate(&*st.op);
  q.AddStatement(std::move(st), 0, 0);
  return q;
}

TEST(ProgramLintTest, CleanFusedChainLintsClean) {
  Program p = FusedChain();
  ASSERT_TRUE(p.Validate().ok());
  auto report = LintProgram(p);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->ToString();
  auto plan = LintPlan(p, p.original_schedule(), {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->ok()) << plan->ToString();
}

TEST(ProgramLintTest, EmptyTapeIsFlagged) {
  Program q = MutateFusedOp(FusedChain(),
                            [](StatementOp* op) { op->tape.clear(); });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedTape)) << report->ToString();
}

TEST(ProgramLintTest, TapeOperandFromTheFutureIsFlagged) {
  // A compute op referencing its own (or a later) position breaks the
  // post-order contract the interpreter relies on.
  Program q = MutateFusedOp(FusedChain(), [](StatementOp* op) {
    for (TapeOp& t : op->tape) {
      if (t.code == TapeOp::Code::kAdd) {
        t.a = static_cast<int>(op->tape.size()) - 1;
      }
    }
  });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedTape)) << report->ToString();
}

TEST(ProgramLintTest, TapeLoadNamingWriteAccessIsFlagged) {
  Program q = MutateFusedOp(FusedChain(), [](StatementOp* op) {
    op->tape[0].a = op->out;  // loads must name read accesses
  });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedTape)) << report->ToString();
}

TEST(ProgramLintTest, TapeUnaryOpWithSecondOperandIsFlagged) {
  Program q = MutateFusedOp(FusedChain(), [](StatementOp* op) {
    for (TapeOp& t : op->tape) {
      if (t.code == TapeOp::Code::kScale) t.b = 0;
    }
  });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedTape)) << report->ToString();
}

TEST(ProgramLintTest, TapeMapWithZipFnIsFlagged) {
  // kScalarMax is a zip; a map op naming it must be rejected before kernel
  // synthesis would dereference a null map pointer.
  Program q = MutateFusedOp(FusedChain(), [](StatementOp* op) {
    for (TapeOp& t : op->tape) {
      if (t.code == TapeOp::Code::kMap) t.scalar_fn = kScalarMax;
    }
  });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedTape)) << report->ToString();
}

TEST(ProgramLintTest, TapeUnconsumedReadIsFlagged) {
  // Redirect the zip's load of Y onto X's tape position: the Y read access
  // remains on the statement but nothing consumes it — paid I/O feeding
  // nothing.
  Program q = MutateFusedOp(FusedChain(), [](StatementOp* op) {
    int first_load = -1;
    for (size_t i = 0; i < op->tape.size(); ++i) {
      if (op->tape[i].code != TapeOp::Code::kLoad) continue;
      if (first_load < 0) {
        first_load = op->tape[static_cast<size_t>(i)].a;
      } else {
        op->tape[i].a = first_load;
      }
    }
  });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedTape)) << report->ToString();
}

TEST(ProgramLintTest, TapeOnNonFusedKindIsFlagged) {
  Program q = MutateFusedOp(FusedChain(), [](StatementOp* op) {
    // Keep the tape but claim to be a plain elementwise op.
    op->kind = StatementOp::Kind::kAdd;
    op->a = 0;
    op->b = 1;
  });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedTape)) << report->ToString();
}

TEST(ProgramLintTest, FusedWithAccumulatorIsFlagged) {
  Program q = MutateFusedOp(FusedChain(), [](StatementOp* op) {
    op->acc = 0;  // fused statements are pure elementwise
  });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kMalformedTape)) << report->ToString();
}

TEST(ProgramLintTest, ZipStatementWithoutSecondOperandIsFlagged) {
  // A singleton kZip statement missing `b` trips the binary arity check.
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {4, 4});
  ExprRef y = g.Input("Y", {2, 2}, {4, 4});
  ExprRef out = g.Zip(x, y, kScalarMin);
  LowerOptions off;
  off.fuse = false;
  LoweredExpr lo = LowerExpr(g, {out}, off).ValueOrDie();
  Program q = MutateFusedOp(lo.program, [](StatementOp* op) { op->b = -1; });
  auto report = LintProgram(q);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(LintCode::kOpArityMismatch)) << report->ToString();
}

}  // namespace
}  // namespace riot
