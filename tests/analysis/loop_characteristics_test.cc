// Loop characteristics pass (working set / reuse / flops) and the cost
// model's in-memory compute term built on it.
#include "analysis/loop_characteristics.h"

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/lowering.h"
#include "ir/scalar_ops.h"
#include "ops/workload.h"

namespace riot {
namespace {

TEST(LoopCharacteristicsTest, ClassifiesExample1Statements) {
  Workload w = MakeExample1(2, 2, 2, /*block_rows=*/8, /*block_cols=*/8);
  const Program& prog = w.program;
  auto chars = AnalyzeProgramLoops(prog);
  ASSERT_EQ(chars.size(), prog.statements().size());

  bool saw_gemm = false, saw_elementwise = false;
  for (size_t sid = 0; sid < prog.statements().size(); ++sid) {
    const Statement& st = prog.statement(static_cast<int>(sid));
    const LoopCharacteristics& c = chars[sid];
    ASSERT_TRUE(st.op.has_value());
    EXPECT_GT(c.instances, 0);
    EXPECT_GT(c.working_set_bytes, 0);
    EXPECT_DOUBLE_EQ(c.total_flops,
                     c.flops_per_instance * static_cast<double>(c.instances));
    switch (st.op->kind) {
      case StatementOp::Kind::kGemm: {
        saw_gemm = true;
        EXPECT_EQ(c.reuse, ReuseClass::kPanel);
        EXPECT_EQ(c.kernel_class, KernelClass::kGemm);
        EXPECT_TRUE(c.vectorizable);
        const ArrayInfo& out =
            prog.array(st.accesses[static_cast<size_t>(st.op->out)].array_id);
        const ArrayInfo& a =
            prog.array(st.accesses[static_cast<size_t>(st.op->a)].array_id);
        const int64_t m = out.block_elems[0];
        const int64_t n = out.block_elems[1];
        const int64_t k =
            st.op->trans_a ? a.block_elems[0] : a.block_elems[1];
        EXPECT_DOUBLE_EQ(c.flops_per_instance,
                         2.0 * static_cast<double>(m * n * k));
        break;
      }
      case StatementOp::Kind::kAdd:
      case StatementOp::Kind::kSub: {
        saw_elementwise = true;
        EXPECT_EQ(c.reuse, ReuseClass::kStreaming);
        EXPECT_EQ(c.kernel_class, KernelClass::kElementwise);
        const ArrayInfo& out =
            prog.array(st.accesses[static_cast<size_t>(st.op->out)].array_id);
        EXPECT_DOUBLE_EQ(c.flops_per_instance,
                         static_cast<double>(out.ElemsPerBlock()));
        break;
      }
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_gemm);
  EXPECT_TRUE(saw_elementwise);
}

TEST(LoopCharacteristicsTest, WorkingSetDedupesRepeatedSubscripts) {
  // The gemm reduction statement reads its own output (guarded carry) and
  // writes it: same array, same subscript function — one block, counted
  // once. So its working set is exactly three distinct blocks (a, b, out).
  Workload w = MakeExample1(2, 3, 2, 8, 8);
  const Program& prog = w.program;
  for (const Statement& st : prog.statements()) {
    if (!st.op || st.op->kind != StatementOp::Kind::kGemm) continue;
    const LoopCharacteristics c = AnalyzeStatement(prog, st);
    int64_t expect = 0;
    // a, b, out arrays (acc aliases out's subscript).
    const auto& acc = st.accesses;
    expect += prog.array(acc[static_cast<size_t>(st.op->a)].array_id)
                  .BlockBytes();
    expect += prog.array(acc[static_cast<size_t>(st.op->b)].array_id)
                  .BlockBytes();
    expect += prog.array(acc[static_cast<size_t>(st.op->out)].array_id)
                  .BlockBytes();
    EXPECT_EQ(c.working_set_bytes, expect);
    EXPECT_GT(acc.size(), 3u);  // the guarded carry read exists and dedupes
  }
}

TEST(LoopCharacteristicsTest, CachePenaltyAppliesAboveCacheSize) {
  LoopCharacteristics c;
  c.flops_per_instance = 2e9;
  c.working_set_bytes = 1 << 20;
  c.kernel_class = KernelClass::kGemm;
  KernelRateTable t;
  t.gemm_gflops = 2.0;
  t.cache_bytes = 2 << 20;
  t.cache_penalty = 3.0;
  EXPECT_DOUBLE_EQ(EstimateInstanceSeconds(c, t), 1.0);  // in-cache: 2G/2G
  c.working_set_bytes = 4 << 20;  // spills: rate / 3
  EXPECT_DOUBLE_EQ(EstimateInstanceSeconds(c, t), 3.0);
}

TEST(LoopCharacteristicsTest, RateTableSelectsPerClassRates) {
  KernelRateTable t;
  t.elementwise_gflops = 1.0;
  t.gemm_gflops = 2.0;
  t.inverse_gflops = 3.0;
  t.reduction_gflops = 4.0;
  EXPECT_DOUBLE_EQ(t.RateFor(KernelClass::kElementwise), 1.0);
  EXPECT_DOUBLE_EQ(t.RateFor(KernelClass::kGemm), 2.0);
  EXPECT_DOUBLE_EQ(t.RateFor(KernelClass::kInverse), 3.0);
  EXPECT_DOUBLE_EQ(t.RateFor(KernelClass::kReduction), 4.0);
}

TEST(LoopCharacteristicsTest, CostModelComputeTermOffByDefaultOnWhenSet) {
  Workload w = MakeExample1(2, 2, 2, 8, 8);
  const Program& prog = w.program;
  const Schedule& sched = prog.original_schedule();

  CostModelOptions io_only;
  PlanCost base = EvaluatePlanCost(prog, sched, {}, io_only);
  EXPECT_DOUBLE_EQ(base.compute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(base.TotalSeconds(), base.io_seconds);

  CostModelOptions with_compute = io_only;
  with_compute.compute = KernelRateTable{};
  PlanCost cc = EvaluatePlanCost(prog, sched, {}, with_compute);
  EXPECT_GT(cc.compute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cc.TotalSeconds(), cc.io_seconds + cc.compute_seconds);
  // The I/O half of the model is untouched by the compute term.
  EXPECT_EQ(cc.read_bytes, base.read_bytes);
  EXPECT_EQ(cc.write_bytes, base.write_bytes);
  EXPECT_DOUBLE_EQ(cc.io_seconds, base.io_seconds);

  // Hand-check the sum: per-statement instance seconds times instances.
  double expect = 0.0;
  auto chars = AnalyzeProgramLoops(prog);
  for (size_t sid = 0; sid < chars.size(); ++sid) {
    expect += EstimateInstanceSeconds(chars[sid], *with_compute.compute) *
              static_cast<double>(chars[sid].instances);
  }
  EXPECT_NEAR(cc.compute_seconds, expect, 1e-12);
}

TEST(LoopCharacteristicsTest, CalibrationProducesPositiveRates) {
  KernelRateTable t = CalibrateKernelRates(/*budget_ms=*/40);
  EXPECT_GT(t.elementwise_gflops, 0.0);
  EXPECT_GT(t.gemm_gflops, 0.0);
  EXPECT_GT(t.inverse_gflops, 0.0);
  EXPECT_GT(t.reduction_gflops, 0.0);
  EXPECT_EQ(t.calibrated_workers, 1);
}

TEST(LoopCharacteristicsTest, MultiWorkerCalibrationReportsPerWorkerRates) {
  KernelRateTable t = CalibrateKernelRates(/*budget_ms=*/40, /*workers=*/2);
  EXPECT_EQ(t.calibrated_workers, 2);
  // Per-worker rates under contention are still positive; they need not be
  // lower than the solo rates on a noisy machine, so only positivity and
  // the worker count are pinned here.
  EXPECT_GT(t.elementwise_gflops, 0.0);
  EXPECT_GT(t.gemm_gflops, 0.0);
  EXPECT_GT(t.inverse_gflops, 0.0);
  EXPECT_GT(t.reduction_gflops, 0.0);
}

TEST(LoopCharacteristicsTest, FusedStatementFlopsCountTapeComputeOps) {
  // The 7-op chain fuses into one statement; its flops per instance are the
  // number of non-load tape entries times the output block's element count.
  ExprGraph g;
  ExprRef x = g.Input("X", {2, 2}, {8, 8});
  ExprRef y = g.Input("Y", {2, 2}, {8, 8});
  ExprRef t = g.Add(x, y);
  t = g.Scale(t, 2.0);
  t = g.Sub(t, y);
  t = g.Map(t, kScalarRelu);
  t = g.Zip(t, y, kScalarMax);

  auto lo = LowerExpr(g, {t});
  ASSERT_TRUE(lo.ok());
  ASSERT_EQ(lo->program.statements().size(), 1u);
  const Statement& st = lo->program.statement(0);
  ASSERT_EQ(st.op->kind, StatementOp::Kind::kFused);
  int compute_ops = 0;
  for (const TapeOp& op : st.op->tape) {
    compute_ops += op.code == TapeOp::Code::kLoad ? 0 : 1;
  }
  EXPECT_EQ(compute_ops, 5);

  auto chars = AnalyzeProgramLoops(lo->program);
  ASSERT_EQ(chars.size(), 1u);
  EXPECT_EQ(chars[0].kernel_class, KernelClass::kElementwise);
  EXPECT_DOUBLE_EQ(chars[0].flops_per_instance, 5.0 * 8 * 8);
  // Indirect calls through user scalar-fn pointers defeat autovectorization.
  EXPECT_FALSE(chars[0].vectorizable);

  // The same chain without map/zip keeps the vectorizable guarantee that
  // scripts/check_vectorization.sh proves for BlockFusedEval.
  ExprGraph h;
  ExprRef hx = h.Input("X", {2, 2}, {8, 8});
  ExprRef hy = h.Input("Y", {2, 2}, {8, 8});
  ExprRef pure = h.Sub(h.Scale(h.Add(hx, hy), 2.0), hy);
  auto lp = LowerExpr(h, {pure});
  ASSERT_TRUE(lp.ok());
  ASSERT_EQ(lp->program.statements().size(), 1u);
  auto pchars = AnalyzeProgramLoops(lp->program);
  EXPECT_TRUE(pchars[0].vectorizable);
  EXPECT_DOUBLE_EQ(pchars[0].flops_per_instance, 3.0 * 8 * 8);
}

}  // namespace
}  // namespace riot
