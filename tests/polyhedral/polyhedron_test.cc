#include "polyhedral/polyhedron.h"

#include <gtest/gtest.h>

#include <set>

namespace riot {
namespace {

Polyhedron Box2D(int64_t lo0, int64_t hi0, int64_t lo1, int64_t hi1) {
  Polyhedron p(2, {"x", "y"});
  p.AddVarBounds(0, lo0, hi0);
  p.AddVarBounds(1, lo1, hi1);
  return p;
}

TEST(PolyhedronTest, ContainsRespectsConstraints) {
  Polyhedron p = Box2D(0, 3, 0, 2);
  EXPECT_TRUE(p.Contains({0, 0}));
  EXPECT_TRUE(p.Contains({3, 2}));
  EXPECT_FALSE(p.Contains({4, 0}));
  EXPECT_FALSE(p.Contains({0, -1}));
}

TEST(PolyhedronTest, EmptinessRational) {
  Polyhedron p(1);
  p.AddVarBounds(0, 3, 2);  // 3 <= x <= 2
  EXPECT_TRUE(p.IsEmptyRational());
  EXPECT_TRUE(p.IsEmptyInteger());
}

TEST(PolyhedronTest, IntegerEmptyButRationalNonempty) {
  // 1/3 <= x <= 2/3.
  Polyhedron p(1);
  p.AddGe(RVector::FromInts({3}), Rational(-1));   // 3x - 1 >= 0
  p.AddGe(RVector::FromInts({-3}), Rational(2));   // -3x + 2 >= 0
  EXPECT_FALSE(p.IsEmptyRational());
  EXPECT_TRUE(p.IsEmptyInteger());
}

TEST(PolyhedronTest, EnumerateBox) {
  Polyhedron p = Box2D(0, 2, 1, 2);
  auto pts = p.EnumerateIntegerPoints();
  EXPECT_EQ(pts.size(), 6u);
  // Lexicographic order.
  EXPECT_EQ(pts.front(), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(pts.back(), (std::vector<int64_t>{2, 2}));
}

TEST(PolyhedronTest, EnumerateTriangle) {
  // x >= 0, y >= 0, x + y <= 3: 10 points.
  Polyhedron p(2);
  p.AddGe(RVector::FromInts({1, 0}), Rational(0));
  p.AddGe(RVector::FromInts({0, 1}), Rational(0));
  p.AddGe(RVector::FromInts({-1, -1}), Rational(3));
  EXPECT_EQ(p.EnumerateIntegerPoints().size(), 10u);
}

TEST(PolyhedronTest, EnumerateWithEquality) {
  Polyhedron p = Box2D(0, 5, 0, 5);
  RVector diag = RVector::FromInts({1, -1});
  p.AddEq(std::move(diag), Rational(0));  // x == y
  auto pts = p.EnumerateIntegerPoints();
  EXPECT_EQ(pts.size(), 6u);
  for (const auto& pt : pts) EXPECT_EQ(pt[0], pt[1]);
}

TEST(PolyhedronTest, ForEachEarlyStop) {
  Polyhedron p = Box2D(0, 9, 0, 9);
  int count = 0;
  p.ForEachIntegerPoint([&](const std::vector<int64_t>&) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(PolyhedronTest, VarBounds) {
  Polyhedron p = Box2D(-2, 7, 3, 3);
  auto b0 = p.IntegerVarBounds(0);
  ASSERT_TRUE(b0.has_value());
  EXPECT_EQ(b0->first, -2);
  EXPECT_EQ(b0->second, 7);
  auto b1 = p.IntegerVarBounds(1);
  EXPECT_EQ(b1->first, 3);
  EXPECT_EQ(b1->second, 3);
}

TEST(PolyhedronTest, FourierMotzkinProjection) {
  // Project {0<=x<=3, 0<=y<=2, x+y<=4} onto x: still 0..3.
  Polyhedron p = Box2D(0, 3, 0, 2);
  p.AddGe(RVector::FromInts({-1, -1}), Rational(4));
  Polyhedron q = p.EliminateVar(1);
  EXPECT_EQ(q.dim(), 1u);
  auto b = q.IntegerVarBounds(0);
  EXPECT_EQ(b->first, 0);
  EXPECT_EQ(b->second, 3);
}

TEST(PolyhedronTest, ProjectionSoundAndTight) {
  // Projection of an integer polyhedron contains exactly the shadows of
  // its rational points; verify against enumeration on a skewed body.
  Polyhedron p(2);
  p.AddGe(RVector::FromInts({2, -1}), Rational(0));   // 2x >= y
  p.AddGe(RVector::FromInts({-1, 2}), Rational(0));   // 2y >= x
  p.AddGe(RVector::FromInts({-1, -1}), Rational(6));  // x + y <= 6
  std::set<int64_t> shadow;
  for (const auto& pt : p.EnumerateIntegerPoints()) shadow.insert(pt[0]);
  Polyhedron q = p.EliminateVar(1);
  for (int64_t x = -5; x <= 10; ++x) {
    if (shadow.count(x)) {
      EXPECT_TRUE(q.Contains({x})) << "lost shadow point " << x;
    }
  }
}

TEST(PolyhedronTest, SubstituteVar) {
  Polyhedron p = Box2D(0, 3, 0, 2);
  Polyhedron q = p.SubstituteVar(0, 2);
  EXPECT_EQ(q.dim(), 1u);
  EXPECT_FALSE(q.IsEmptyInteger());
  Polyhedron r = p.SubstituteVar(0, 9);  // outside x range
  EXPECT_TRUE(r.IsEmptyRational());
}

TEST(PolyhedronTest, IntersectConjunction) {
  Polyhedron a = Box2D(0, 5, 0, 5);
  Polyhedron b = Box2D(3, 9, 3, 9);
  Polyhedron c = a.Intersect(b);
  EXPECT_EQ(c.EnumerateIntegerPoints().size(), 9u);  // [3,5]^2
}

TEST(PolyhedronTest, ProductSpace) {
  Polyhedron a(1);
  a.AddVarBounds(0, 0, 1);
  Polyhedron b(2);
  b.AddVarBounds(0, 0, 1);
  b.AddVarBounds(1, 0, 1);
  Polyhedron prod = Polyhedron::ProductSpace(a, b);
  EXPECT_EQ(prod.dim(), 3u);
  EXPECT_EQ(prod.EnumerateIntegerPoints().size(), 8u);
}

TEST(PolyhedronUnionTest, MembershipAndEnumeration) {
  PolyhedronUnion u(1);
  Polyhedron a(1), b(1);
  a.AddVarBounds(0, 0, 2);
  b.AddVarBounds(0, 2, 4);
  u.Add(a);
  u.Add(b);
  EXPECT_TRUE(u.Contains({0}));
  EXPECT_TRUE(u.Contains({4}));
  EXPECT_FALSE(u.Contains({5}));
  EXPECT_EQ(u.EnumerateIntegerPoints().size(), 5u);  // dedup at x=2
  EXPECT_FALSE(u.IsEmptyInteger());
}

TEST(LexLessTest, OrdersInstancesOfOneLoop) {
  // One statement, schedule Theta x = (x): x lex< y iff x < y.
  Polyhedron space(2);
  space.AddVarBounds(0, 0, 3);
  space.AddVarBounds(1, 0, 3);
  RMatrix theta(1, 2);
  theta.At(0, 0) = Rational(1);  // coeff on the single iter var; last col const
  PolyhedronUnion lex = LexLess(space, theta, 0, 1, theta, 1, 1);
  for (int64_t x = 0; x <= 3; ++x) {
    for (int64_t y = 0; y <= 3; ++y) {
      EXPECT_EQ(lex.Contains({x, y}), x < y) << x << "," << y;
    }
  }
}

TEST(LexLessTest, TwoDimensionalTime) {
  // Theta (i,j) = (i, j): lexicographic order on pairs.
  Polyhedron space(4);
  for (size_t d = 0; d < 4; ++d) space.AddVarBounds(d, 0, 2);
  RMatrix theta(2, 3);
  theta.At(0, 0) = Rational(1);
  theta.At(1, 1) = Rational(1);
  PolyhedronUnion lex = LexLess(space, theta, 0, 2, theta, 2, 2);
  int count = 0;
  for (int64_t a = 0; a <= 2; ++a)
    for (int64_t b = 0; b <= 2; ++b)
      for (int64_t c = 0; c <= 2; ++c)
        for (int64_t d = 0; d <= 2; ++d) {
          bool expect = a < c || (a == c && b < d);
          EXPECT_EQ(lex.Contains({a, b, c, d}), expect);
          count += expect;
        }
  EXPECT_EQ(count, 36);  // C(9,2) ordered pairs
}

}  // namespace
}  // namespace riot
