#include "polyhedral/farkas.h"

#include <gtest/gtest.h>

namespace riot {
namespace {

// Check whether the affine form u.x + u0 is nonnegative over every integer
// point of p (brute force).
bool NonNegOverPoints(const Polyhedron& p, const RVector& u, Rational u0) {
  for (const auto& pt : p.EnumerateIntegerPoints()) {
    Rational v = u0;
    for (size_t d = 0; d < p.dim(); ++d) v += u[d] * Rational(pt[d]);
    if (v.IsNegative()) return false;
  }
  return true;
}

TEST(FarkasTest, IntervalForms) {
  // P = [0, 5]: forms a*x + b nonneg on P iff b >= 0 and 5a + b >= 0.
  Polyhedron p(1);
  p.AddVarBounds(0, 0, 5);
  Polyhedron f = FarkasNonNegativeForms(p);
  ASSERT_EQ(f.dim(), 2u);  // (u, u0)
  // x - 0 is nonneg: u=1, u0=0.
  EXPECT_TRUE(f.Contains({1, 0}));
  // 5 - x: u=-1, u0=5.
  EXPECT_TRUE(f.Contains({-1, 5}));
  // -x - 1 is negative at 0.
  EXPECT_FALSE(f.Contains({-1, -1}));
  // x - 1 is negative at 0.
  EXPECT_FALSE(f.Contains({1, -1}));
}

TEST(FarkasTest, MatchesBruteForceOnBox) {
  Polyhedron p(2);
  p.AddVarBounds(0, 0, 3);
  p.AddVarBounds(1, 1, 4);
  Polyhedron f = FarkasNonNegativeForms(p);
  for (int64_t a = -2; a <= 2; ++a) {
    for (int64_t b = -2; b <= 2; ++b) {
      for (int64_t c = -6; c <= 6; ++c) {
        RVector u = RVector::FromInts({a, b});
        bool brute = NonNegOverPoints(p, u, Rational(c));
        bool farkas = f.Contains({a, b, c});
        // Farkas characterizes nonnegativity over the *rational* polyhedron,
        // which coincides with integer-point nonnegativity on integral
        // boxes.
        EXPECT_EQ(farkas, brute) << a << " " << b << " " << c;
      }
    }
  }
}

TEST(FarkasTest, TriangleDomain) {
  // P: x >= 0, y >= 0, x + y <= 4.
  Polyhedron p(2);
  p.AddGe(RVector::FromInts({1, 0}), Rational(0));
  p.AddGe(RVector::FromInts({0, 1}), Rational(0));
  p.AddGe(RVector::FromInts({-1, -1}), Rational(4));
  Polyhedron f = FarkasNonNegativeForms(p);
  EXPECT_TRUE(f.Contains({1, 1, 0}));    // x + y >= 0
  EXPECT_TRUE(f.Contains({-1, -1, 4}));  // 4 - x - y >= 0
  EXPECT_FALSE(f.Contains({1, 1, -1}));  // x + y - 1 < 0 at origin
}

TEST(FarkasTest, EqualityConstraintGivesFreeDirection) {
  // P: x == y, 0 <= x <= 3. Form x - y is identically 0 -> nonneg, and so
  // is y - x.
  Polyhedron p(2);
  p.AddVarBounds(0, 0, 3);
  RVector eq = RVector::FromInts({1, -1});
  p.AddEq(std::move(eq), Rational(0));
  Polyhedron f = FarkasNonNegativeForms(p);
  EXPECT_TRUE(f.Contains({1, -1, 0}));
  EXPECT_TRUE(f.Contains({-1, 1, 0}));
  EXPECT_FALSE(f.Contains({1, -1, -1}));
}

TEST(FarkasTest, PaperExampleDependenceConstraint) {
  // Paper Section 5.2: dependence s2WE -> s2WE with polyhedron
  // {(i,j,k,i',j',k') : i'=i, j'=j, k'=k+1}; the constraint on a schedule
  // row (alpha, beta, gamma) is gamma >= 1 after Farkas linearization.
  // Model the pair-difference space directly: the form is
  //   theta.(x' - x) - 1 >= 0 with x' - x = (0, 0, 1) on the polyhedron.
  // Build P over (i,j,k) bounded and check the resulting condition by
  // substitution: theta.x' - theta.x - 1 = gamma - 1 >= 0.
  Polyhedron p(3);
  p.AddVarBounds(0, 0, 5);
  p.AddVarBounds(1, 0, 5);
  p.AddVarBounds(2, 0, 4);
  // Difference form over (alpha, beta, gamma): value gamma*1 - 1 >= 0 for
  // all points - independent of P's points; the Farkas result over the
  // difference-constant space reduces to gamma >= 1. We verify
  // SubstituteLinearMap plumbing: u = (0,0,0), u0 = gamma - 1 mapped from
  // w = (alpha, beta, gamma).
  Polyhedron f = FarkasNonNegativeForms(p);
  // Map (u1,u2,u3,u0) = M w + m0 with M rows: zeros except u0 = gamma.
  RMatrix m(4, 3);
  m.At(3, 2) = Rational(1);  // u0 = gamma - 1
  RVector m0(4);
  m0[3] = Rational(-1);
  Polyhedron g = SubstituteLinearMap(f, m, m0, 3);
  // gamma = 1 satisfies, gamma = 0 does not.
  EXPECT_TRUE(g.Contains({0, 0, 1}));
  EXPECT_TRUE(g.Contains({7, -3, 2}));  // alpha, beta unconstrained
  EXPECT_FALSE(g.Contains({0, 0, 0}));
}

TEST(SubstituteLinearMapTest, SimpleRewrite) {
  // F: u0 + u1 >= 0 over (u1, u0)... build explicitly: dim 2 poly with
  // constraint u_0 + u_1 >= 0; substitute u = (w, 3).
  Polyhedron f(2);
  f.AddGe(RVector::FromInts({1, 1}), Rational(0));
  RMatrix m(2, 1);
  m.At(0, 0) = Rational(1);
  RVector m0(2);
  m0[1] = Rational(3);
  Polyhedron g = SubstituteLinearMap(f, m, m0, 1);
  EXPECT_TRUE(g.Contains({-3}));
  EXPECT_FALSE(g.Contains({-4}));
}

}  // namespace
}  // namespace riot
