// Property fuzzer: random static-control programs are optimized and every
// legal plan executed; for each plan we assert
//   (1) output equality with the original schedule (semantic preservation),
//   (2) executed I/O volume == predicted I/O volume, and
//   (3) executed memory requirement == predicted peak, with no spills.
// Inputs are integer-valued and kernels use integer coefficients, so
// floating-point reassociation cannot mask reordering bugs: any deviation
// is exact.
#include <gtest/gtest.h>

#include <random>

#include "core/optimizer.h"
#include "ir/builder.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "storage/env.h"

namespace riot {
namespace {

struct GeneratedProgram {
  Program program;
  std::vector<StatementKernel> kernels;
  std::vector<int> inputs;
  std::vector<int> outputs;
};

// All arrays share a 3x3 block grid of 4x4 blocks; all loop variables range
// over 0..2, so any (variable | constant) affine access is in bounds.
GeneratedProgram Generate(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<uint64_t>(hi - lo + 1));
  };
  GeneratedProgram g;
  const int narrays = pick(3, 5);
  for (int i = 0; i < narrays; ++i) {
    ArrayInfo a;
    a.name = std::string(1, static_cast<char>('A' + i));
    a.grid = {3, 3};
    a.block_elems = {4, 4};
    g.program.AddArray(a);
  }
  const int nstmts = pick(2, 3);
  struct StmtPlan {
    std::vector<int> read_views;  // access indices of plain reads
    int acc_view = -1;            // guarded self-read (accumulation)
    int write_view = -1;
    std::vector<int64_t> coefs;
  };
  std::vector<StmtPlan> plans;
  std::vector<bool> written(static_cast<size_t>(narrays), false);
  for (int s = 0; s < nstmts; ++s) {
    Statement st;
    st.name = "s" + std::to_string(s + 1);
    const int depth = pick(2, 3);
    for (int d = 0; d < depth; ++d) {
      st.iters.push_back(std::string(1, static_cast<char>('i' + d)));
    }
    std::vector<std::pair<int64_t, int64_t>> bounds(
        static_cast<size_t>(depth), {0, 2});
    st.domain = RectDomain(bounds, st.iters);
    // Random affine row: a loop variable or a constant.
    auto rand_row = [&]() {
      std::vector<int64_t> row(static_cast<size_t>(depth) + 1, 0);
      if (pick(0, 2) > 0) {
        row[static_cast<size_t>(pick(0, depth - 1))] = 1;
      } else {
        row[static_cast<size_t>(depth)] = pick(0, 2);
      }
      return row;
    };
    StmtPlan sp;
    const int nreads = pick(1, 2);
    for (int rd = 0; rd < nreads; ++rd) {
      int arr = pick(0, narrays - 1);
      st.accesses.push_back(Read(arr, {rand_row(), rand_row()}));
      sp.read_views.push_back(static_cast<int>(st.accesses.size()) - 1);
      sp.coefs.push_back(pick(1, 3));
    }
    // Write target: prefer an array not yet written (keeps programs from
    // overwriting their own inputs in confusing ways, though that would be
    // legal too).
    int warr = pick(0, narrays - 1);
    for (int tries = 0; tries < narrays && written[size_t(warr)]; ++tries) {
      warr = (warr + 1) % narrays;
    }
    written[static_cast<size_t>(warr)] = true;
    std::vector<int64_t> wrow1 = rand_row(), wrow2 = rand_row();
    // Optional accumulation: a guarded read of the same block.
    const bool accumulate = pick(0, 1) == 1;
    if (accumulate) {
      Access acc = Read(warr, {wrow1, wrow2});
      acc.guard = GuardGe(st.domain, static_cast<size_t>(depth) - 1, 1);
      st.accesses.push_back(std::move(acc));
      sp.acc_view = static_cast<int>(st.accesses.size()) - 1;
    }
    st.accesses.push_back(Write(warr, {wrow1, wrow2}));
    sp.write_view = static_cast<int>(st.accesses.size()) - 1;
    g.program.AddStatement(std::move(st), /*nest=*/s, /*textual=*/0);
    plans.push_back(sp);

    StmtPlan captured = plans.back();
    g.kernels.push_back([captured](const std::vector<int64_t>& iter,
                                   const std::vector<DenseView*>& v) {
      DenseView* out = v[static_cast<size_t>(captured.write_view)];
      const int64_t n = out->elems();
      const bool acc_active =
          captured.acc_view >= 0 &&
          v[static_cast<size_t>(captured.acc_view)] != nullptr;
      for (int64_t e = 0; e < n; ++e) {
        double val = acc_active ? out->data[e] : 0.0;
        val += 1.0 + static_cast<double>(iter.back() % 3);
        for (size_t r = 0; r < captured.read_views.size(); ++r) {
          val += v[static_cast<size_t>(captured.read_views[r])]->data[e] *
                 static_cast<double>(captured.coefs[r]);
        }
        out->data[e] = val;
      }
    });
  }
  for (int a = 0; a < narrays; ++a) {
    g.inputs.push_back(a);  // initialize everything (arrays may be R+W)
    if (written[static_cast<size_t>(a)]) g.outputs.push_back(a);
  }
  return g;
}

Status InitIntegers(const Program& p, const Runtime& rt,
                    const std::vector<int>& arrays, uint64_t seed) {
  for (int id : arrays) {
    const ArrayInfo& arr = p.array(id);
    std::vector<double> buf(static_cast<size_t>(arr.ElemsPerBlock()));
    std::mt19937_64 rng(seed * 131 + static_cast<uint64_t>(id));
    for (int64_t b = 0; b < arr.NumBlocks(); ++b) {
      for (auto& x : buf) x = static_cast<double>(rng() % 7);
      RIOT_RETURN_NOT_OK(
          rt.stores[static_cast<size_t>(id)]->WriteBlock(b, buf.data()));
    }
  }
  return Status::OK();
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, AllPlansExactAndEquivalent) {
  GeneratedProgram g = Generate(GetParam());
  ASSERT_TRUE(g.program.Validate().ok());

  OptimizerOptions opts;
  opts.max_combination_size = 2;  // keeps the fuzz sweep fast
  OptimizationResult r = Optimize(g.program, opts);

  auto env = NewMemEnv();
  auto ref_rt = OpenStores(env.get(), g.program, "/ref");
  ASSERT_TRUE(ref_rt.ok());
  ASSERT_TRUE(InitIntegers(g.program, *ref_rt, g.inputs, GetParam()).ok());
  {
    Executor ex(g.program, ref_rt->raw(), g.kernels);
    auto st = ex.Run(g.program.original_schedule(), {});
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }

  for (size_t pi = 1; pi < r.plans.size(); ++pi) {
    const Plan& plan = r.plans[pi];
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " plan " +
                 std::to_string(pi) + ": " +
                 plan.DescribeOpportunities(g.program, r.analysis.sharing));
    auto rt = OpenStores(env.get(), g.program, "/p" + std::to_string(pi));
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitIntegers(g.program, *rt, g.inputs, GetParam()).ok());
    std::vector<const CoAccess*> q;
    for (int oi : plan.opportunities) {
      q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
    }
    ExecOptions eo;
    eo.memory_cap_bytes = plan.cost.peak_memory_bytes;
    Executor ex(g.program, rt->raw(), g.kernels, eo);
    auto stats = ex.Run(plan.schedule, q);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->bytes_read, plan.cost.read_bytes);
    EXPECT_EQ(stats->bytes_written, plan.cost.write_bytes);
    EXPECT_EQ(stats->peak_required_bytes, plan.cost.peak_memory_bytes);
    EXPECT_EQ(stats->pool.dirty_writebacks, 0);
    for (int arr : g.outputs) {
      auto diff = MaxAbsDifference(
          g.program.array(arr),
          ref_rt->stores[static_cast<size_t>(arr)].get(),
          rt->stores[static_cast<size_t>(arr)].get());
      ASSERT_TRUE(diff.ok());
      EXPECT_EQ(*diff, 0.0) << "array " << g.program.array(arr).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace riot
