// Property fuzzer: random static-control programs are optimized and every
// legal plan executed; for each plan we assert
//   (1) output equality with the original schedule (semantic preservation),
//   (2) executed I/O volume == predicted I/O volume, and
//   (3) executed memory requirement == predicted peak, with no spills.
// Inputs are integer-valued and kernels use integer coefficients, so
// floating-point reassociation cannot mask reordering bugs: any deviation
// is exact.
//
// The SweepOracle suite is the differential oracle for the parallel
// executor: every generated program runs under {exec_threads 1, 2, 4} x
// {pipeline_depth 0, 2} and all stored outputs must be bit-for-bit equal,
// while the instance dependence DAG is validated against a brute-force
// instance-pair dependence check. RIOT_FUZZ_SEEDS overrides the number of
// fuzzed programs (default 200).
// The ExprFuzz suite is the differential oracle for the expression front
// end: random well-shaped expression trees are lowered (core/lowering.h),
// optimized, and executed at {serial, pipelined, 4-thread}, and every
// stored output must match — bit for bit — a naive in-memory evaluator
// over exact linalg/matrix Rationals (inputs are small integers and
// generation bounds value growth, so double arithmetic is exact and any
// lowering/synthesis/scheduling bug shows as a hard mismatch).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <thread>

#include "analysis/program_lint.h"
#include "core/access_plan.h"
#include "core/cost_model.h"
#include "core/lowering.h"
#include "core/optimizer.h"
#include "core/schedule_solver.h"
#include "ir/builder.h"
#include "ir/expr.h"
#include "ir/scalar_ops.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "linalg/matrix.h"
#include "ops/lockstep.h"
#include "ops/runtime.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"

namespace riot {
namespace {

struct GeneratedProgram {
  Program program;
  std::vector<StatementKernel> kernels;
  std::vector<int> inputs;
  std::vector<int> outputs;
};

// All arrays share a 3x3 block grid of 4x4 blocks; all loop variables range
// over 0..2, so any (variable | constant) affine access is in bounds.
GeneratedProgram Generate(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<uint64_t>(hi - lo + 1));
  };
  GeneratedProgram g;
  const int narrays = pick(3, 5);
  for (int i = 0; i < narrays; ++i) {
    ArrayInfo a;
    a.name = std::string(1, static_cast<char>('A' + i));
    a.grid = {3, 3};
    a.block_elems = {4, 4};
    g.program.AddArray(a);
  }
  const int nstmts = pick(2, 3);
  struct StmtPlan {
    std::vector<int> read_views;  // access indices of plain reads
    int acc_view = -1;            // guarded self-read (accumulation)
    int write_view = -1;
    std::vector<int64_t> coefs;
  };
  std::vector<StmtPlan> plans;
  std::vector<bool> written(static_cast<size_t>(narrays), false);
  for (int s = 0; s < nstmts; ++s) {
    Statement st;
    st.name = "s" + std::to_string(s + 1);
    const int depth = pick(2, 3);
    for (int d = 0; d < depth; ++d) {
      st.iters.push_back(std::string(1, static_cast<char>('i' + d)));
    }
    std::vector<std::pair<int64_t, int64_t>> bounds(
        static_cast<size_t>(depth), {0, 2});
    st.domain = RectDomain(bounds, st.iters);
    // Random affine row: a loop variable or a constant.
    auto rand_row = [&]() {
      std::vector<int64_t> row(static_cast<size_t>(depth) + 1, 0);
      if (pick(0, 2) > 0) {
        row[static_cast<size_t>(pick(0, depth - 1))] = 1;
      } else {
        row[static_cast<size_t>(depth)] = pick(0, 2);
      }
      return row;
    };
    StmtPlan sp;
    const int nreads = pick(1, 2);
    for (int rd = 0; rd < nreads; ++rd) {
      int arr = pick(0, narrays - 1);
      st.accesses.push_back(Read(arr, {rand_row(), rand_row()}));
      sp.read_views.push_back(static_cast<int>(st.accesses.size()) - 1);
      sp.coefs.push_back(pick(1, 3));
    }
    // Write target: prefer an array not yet written (keeps programs from
    // overwriting their own inputs in confusing ways, though that would be
    // legal too).
    int warr = pick(0, narrays - 1);
    for (int tries = 0; tries < narrays && written[size_t(warr)]; ++tries) {
      warr = (warr + 1) % narrays;
    }
    written[static_cast<size_t>(warr)] = true;
    std::vector<int64_t> wrow1 = rand_row(), wrow2 = rand_row();
    // Optional accumulation: a guarded read of the same block.
    const bool accumulate = pick(0, 1) == 1;
    if (accumulate) {
      Access acc = Read(warr, {wrow1, wrow2});
      acc.guard = GuardGe(st.domain, static_cast<size_t>(depth) - 1, 1);
      st.accesses.push_back(std::move(acc));
      sp.acc_view = static_cast<int>(st.accesses.size()) - 1;
    }
    st.accesses.push_back(Write(warr, {wrow1, wrow2}));
    sp.write_view = static_cast<int>(st.accesses.size()) - 1;
    g.program.AddStatement(std::move(st), /*nest=*/s, /*textual=*/0);
    plans.push_back(sp);

    StmtPlan captured = plans.back();
    g.kernels.push_back([captured](const std::vector<int64_t>& iter,
                                   const std::vector<DenseView*>& v) {
      DenseView* out = v[static_cast<size_t>(captured.write_view)];
      const int64_t n = out->elems();
      const bool acc_active =
          captured.acc_view >= 0 &&
          v[static_cast<size_t>(captured.acc_view)] != nullptr;
      for (int64_t e = 0; e < n; ++e) {
        double val = acc_active ? out->data[e] : 0.0;
        val += 1.0 + static_cast<double>(iter.back() % 3);
        for (size_t r = 0; r < captured.read_views.size(); ++r) {
          val += v[static_cast<size_t>(captured.read_views[r])]->data[e] *
                 static_cast<double>(captured.coefs[r]);
        }
        out->data[e] = val;
      }
    });
  }
  for (int a = 0; a < narrays; ++a) {
    g.inputs.push_back(a);  // initialize everything (arrays may be R+W)
    if (written[static_cast<size_t>(a)]) g.outputs.push_back(a);
  }
  return g;
}

Status InitIntegers(const Program& p, const Runtime& rt,
                    const std::vector<int>& arrays, uint64_t seed) {
  for (int id : arrays) {
    const ArrayInfo& arr = p.array(id);
    std::vector<double> buf(static_cast<size_t>(arr.ElemsPerBlock()));
    std::mt19937_64 rng(seed * 131 + static_cast<uint64_t>(id));
    for (int64_t b = 0; b < arr.NumBlocks(); ++b) {
      for (auto& x : buf) x = static_cast<double>(rng() % 7);
      RIOT_RETURN_NOT_OK(
          rt.stores[static_cast<size_t>(id)]->WriteBlock(b, buf.data()));
    }
  }
  return Status::OK();
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, AllPlansExactAndEquivalent) {
  GeneratedProgram g = Generate(GetParam());
  ASSERT_TRUE(g.program.Validate().ok());

  OptimizerOptions opts;
  opts.max_combination_size = 2;  // keeps the fuzz sweep fast
  OptimizationResult r = Optimize(g.program, opts);

  // The static linter must accept every generated program (zero false
  // positives over the fuzz corpus); mutation coverage for true positives
  // lives in tests/analysis/program_lint_test.cc.
  {
    auto lint = LintProgram(g.program);
    ASSERT_TRUE(lint.ok()) << lint.status().ToString();
    EXPECT_TRUE(lint->ok()) << lint->ToString();
  }

  auto env = NewMemEnv();
  auto ref_rt = OpenStores(env.get(), g.program, "/ref");
  ASSERT_TRUE(ref_rt.ok());
  ASSERT_TRUE(InitIntegers(g.program, *ref_rt, g.inputs, GetParam()).ok());
  {
    Executor ex(g.program, ref_rt->raw(), g.kernels);
    auto st = ex.Run(g.program.original_schedule(), {});
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }

  for (size_t pi = 1; pi < r.plans.size(); ++pi) {
    const Plan& plan = r.plans[pi];
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " plan " +
                 std::to_string(pi) + ": " +
                 plan.DescribeOpportunities(g.program, r.analysis.sharing));
    auto rt = OpenStores(env.get(), g.program, "/p" + std::to_string(pi));
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitIntegers(g.program, *rt, g.inputs, GetParam()).ok());
    std::vector<const CoAccess*> q;
    for (int oi : plan.opportunities) {
      q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
    }
    {
      auto lint = LintPlan(g.program, plan.schedule, q);
      ASSERT_TRUE(lint.ok()) << lint.status().ToString();
      EXPECT_TRUE(lint->ok()) << lint->ToString();
    }
    ExecOptions eo;
    eo.memory_cap_bytes = plan.cost.peak_memory_bytes;
    Executor ex(g.program, rt->raw(), g.kernels, eo);
    auto stats = ex.Run(plan.schedule, q);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->bytes_read, plan.cost.read_bytes);
    EXPECT_EQ(stats->bytes_written, plan.cost.write_bytes);
    EXPECT_EQ(stats->peak_required_bytes, plan.cost.peak_memory_bytes);
    EXPECT_EQ(stats->pool.dirty_writebacks, 0);
    for (int arr : g.outputs) {
      auto diff = MaxAbsDifference(
          g.program.array(arr),
          ref_rt->stores[static_cast<size_t>(arr)].get(),
          rt->stores[static_cast<size_t>(arr)].get());
      ASSERT_TRUE(diff.ok());
      EXPECT_EQ(*diff, 0.0) << "array " << g.program.array(arr).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

// ---------------------------------------------------------------------------
// Differential sweep oracle + brute-force DAG validation.
// ---------------------------------------------------------------------------

uint64_t FuzzSeedCount() {
  const char* env = std::getenv("RIOT_FUZZ_SEEDS");
  if (env != nullptr) {
    long long v = std::atoll(env);
    if (v > 0) return static_cast<uint64_t>(v);
  }
  return 200;
}

// Brute-force oracle for BuildInstanceDag: (a) completeness — every
// instance pair sharing a block with at least one kernel write, and every
// saved read vs its materializing access, must be transitively ordered;
// (b) soundness — every edge connects instances that touch a common block.
void ValidateDagAgainstBruteForce(const AccessScript& script,
                                  const InstanceDag& dag) {
  const size_t n = script.per_pos.size();
  ASSERT_EQ(dag.succ.size(), n);

  // Transitive closure; positions are topological so one reverse sweep.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t p = n; p-- > 0;) {
    for (uint32_t s : dag.succ[p]) {
      reach[p][s] = true;
      for (size_t q = 0; q < n; ++q) {
        if (reach[s][q]) reach[p][q] = true;
      }
    }
  }

  // Soundness: an edge implies a shared block.
  for (size_t p = 0; p < n; ++p) {
    for (uint32_t s : dag.succ[p]) {
      bool shares = false;
      auto [pb, pe] = script.per_pos[p];
      auto [qb, qe] = script.per_pos[s];
      for (uint32_t i = pb; i < pe && !shares; ++i) {
        for (uint32_t j = qb; j < qe && !shares; ++j) {
          shares = script.records[i].array_id == script.records[j].array_id &&
                   script.records[i].block == script.records[j].block;
        }
      }
      EXPECT_TRUE(shares) << "edge " << p << "->" << s
                          << " without a common block";
    }
  }

  // Completeness, straight off the definition: scan every record pair.
  std::map<std::pair<int, int64_t>, int64_t> materializer;
  for (const auto& a : script.records) {
    if (a.type == AccessType::kRead && a.saved) {
      auto it = materializer.find({a.array_id, a.block});
      ASSERT_NE(it, materializer.end())
          << "saved read at pos " << a.pos << " with no materializer";
      size_t src = static_cast<size_t>(it->second);
      if (src != a.pos) {
        EXPECT_TRUE(reach[src][a.pos])
            << "saved read at pos " << a.pos
            << " unordered after materializer at " << src;
      }
    } else {
      materializer[{a.array_id, a.block}] = static_cast<int64_t>(a.pos);
    }
  }
  for (const auto& a : script.records) {
    for (const auto& b : script.records) {
      if (a.pos >= b.pos) continue;
      if (a.array_id != b.array_id || a.block != b.block) continue;
      if (a.type != AccessType::kWrite && b.type != AccessType::kWrite) {
        continue;
      }
      EXPECT_TRUE(reach[a.pos][b.pos])
          << "unordered conflict " << a.pos << "->" << b.pos << " on array "
          << a.array_id << " block " << a.block;
    }
  }
}

class SweepOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SweepOracleTest, AllThreadDepthConfigsBitIdentical) {
  const uint64_t seed = GetParam();
  GeneratedProgram g = Generate(seed);
  ASSERT_TRUE(g.program.Validate().ok());

  // Two plans per program: the original schedule with no sharing, and a
  // solver schedule realizing up to two sharing opportunities — the latter
  // exercises saved reads, retention, and elision under parallel dispatch.
  // (Direct analysis + solver instead of the full optimizer: the oracle
  // needs one realized plan per program, not the whole plan space.)
  AnalysisResult analysis = AnalyzeProgram(g.program);
  ScheduleSolver solver(g.program, analysis.dependences);
  struct PlanCase {
    const Schedule* schedule;
    std::vector<const CoAccess*> q;
    bool has_cost = false;
    PlanCost cost;
  };
  std::vector<PlanCase> cases;
  cases.push_back({&g.program.original_schedule(), {}, false, {}});
  std::optional<Schedule> shared_sched;
  std::vector<const CoAccess*> shared_q;
  size_t attempts = 0;
  for (const CoAccess& opp : analysis.sharing) {
    if (shared_q.size() >= 2 || ++attempts > 8) break;
    std::vector<const CoAccess*> trial = shared_q;
    trial.push_back(&opp);
    auto s = solver.FindSchedule(trial);
    if (s.has_value()) {
      shared_q = trial;
      shared_sched = *s;
    }
  }
  if (shared_sched.has_value()) {
    PlanCase pc{&*shared_sched, shared_q, true,
                EvaluatePlanCost(g.program, *shared_sched, shared_q)};
    cases.push_back(pc);
  }

  auto env = NewMemEnv();
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const PlanCase& pc = cases[ci];
    SCOPED_TRACE("seed " + std::to_string(seed) + " case " +
                 std::to_string(ci));

    // DAG oracle on this plan's script.
    RealizedPlan rp = RealizePlan(g.program, *pc.schedule, pc.q);
    AccessScript script = BuildAccessScript(g.program, rp);
    InstanceDag dag = BuildInstanceDag(script);
    ValidateDagAgainstBruteForce(script, dag);

    // Reference: the serial engine (threads 1, depth 0).
    std::string base = "/c" + std::to_string(ci);
    auto ref_rt = OpenStores(env.get(), g.program, base + "_ref");
    ASSERT_TRUE(ref_rt.ok());
    ASSERT_TRUE(InitIntegers(g.program, *ref_rt, g.inputs, seed).ok());
    ExecStats ref_stats;
    {
      ExecOptions eo;
      if (pc.has_cost) eo.memory_cap_bytes = pc.cost.peak_memory_bytes;
      Executor ex(g.program, ref_rt->raw(), g.kernels, eo);
      auto st = ex.Run(*pc.schedule, pc.q);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
      ref_stats = *st;
      if (pc.has_cost) {
        // The serial engine stays cost-model-exact under the plan's own cap.
        EXPECT_EQ(st->bytes_read, pc.cost.read_bytes);
        EXPECT_EQ(st->bytes_written, pc.cost.write_bytes);
        EXPECT_EQ(st->peak_required_bytes, pc.cost.peak_memory_bytes);
      }
      EXPECT_EQ(st->pool.dirty_writebacks, 0);
    }

    for (int threads : {1, 2, 4}) {
      for (int depth : {0, 2}) {
        if (threads == 1 && depth == 0) continue;  // the reference itself
        SCOPED_TRACE("threads " + std::to_string(threads) + " depth " +
                     std::to_string(depth));
        std::string dir = base + "_t" + std::to_string(threads) + "d" +
                          std::to_string(depth);
        auto rt = OpenStores(env.get(), g.program, dir);
        ASSERT_TRUE(rt.ok());
        ASSERT_TRUE(InitIntegers(g.program, *rt, g.inputs, seed).ok());
        BufferPool pool(int64_t{1} << 30);
        ExecOptions eo;
        eo.exec_threads = threads;
        eo.pipeline_depth = depth;
        eo.shared_pool = &pool;
        if (threads == 1 && pc.has_cost) {
          // Serial configs must hold the plan's exact memory cap; parallel
          // ones may transiently need more (out-of-order retention).
          eo.shared_pool = nullptr;
          eo.memory_cap_bytes = pc.cost.peak_memory_bytes;
          Executor ex(g.program, rt->raw(), g.kernels, eo);
          auto st = ex.Run(*pc.schedule, pc.q);
          ASSERT_TRUE(st.ok()) << st.status().ToString();
          EXPECT_EQ(st->bytes_read, ref_stats.bytes_read);
          EXPECT_EQ(st->bytes_written, ref_stats.bytes_written);
          EXPECT_EQ(st->peak_required_bytes, ref_stats.peak_required_bytes);
          EXPECT_EQ(st->pool.dirty_writebacks, 0);
        } else {
          Executor ex(g.program, rt->raw(), g.kernels, eo);
          auto st = ex.Run(*pc.schedule, pc.q);
          ASSERT_TRUE(st.ok()) << st.status().ToString();
          EXPECT_EQ(st->bytes_written, ref_stats.bytes_written);
          EXPECT_EQ(st->pool.dirty_writebacks, 0);
          EXPECT_EQ(pool.PinnedFrames(), 0);
          EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
        }
        for (int arr : g.outputs) {
          auto diff = MaxAbsDifference(
              g.program.array(arr),
              ref_rt->stores[static_cast<size_t>(arr)].get(),
              rt->stores[static_cast<size_t>(arr)].get());
          ASSERT_TRUE(diff.ok());
          ASSERT_EQ(*diff, 0.0) << "array " << g.program.array(arr).name;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepOracleTest,
                         ::testing::Range(uint64_t{1},
                                          uint64_t{1} + FuzzSeedCount()));

// ---------------------------------------------------------------------------
// Cache-simulator differential oracle: for every fuzzed program, plan case,
// execution mode, replacement policy, and {tight, loose} cap, the cost
// model's cache simulator must predict the serial engine's measured
// block_reads / block_writes / evictions / hits / misses EXACTLY. Also
// asserts the Belady guarantee on the corpus: ScheduleOpt never reads more
// blocks than LRU under the opportunistic ablation.
// ---------------------------------------------------------------------------

class CacheSimTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheSimTest, SimulatorMatchesSerialEngineExactly) {
  const uint64_t seed = GetParam();
  GeneratedProgram g = Generate(seed);
  ASSERT_TRUE(g.program.Validate().ok());

  // Two plans per program, as in the sweep oracle: the original schedule
  // with no sharing, and (when the solver finds one) a schedule realizing
  // up to two sharing opportunities — retention + saved reads interact
  // with eviction, so both must simulate exactly.
  AnalysisResult analysis = AnalyzeProgram(g.program);
  ScheduleSolver solver(g.program, analysis.dependences);
  struct PlanCase {
    const Schedule* schedule;
    std::vector<const CoAccess*> q;
  };
  std::vector<PlanCase> cases;
  cases.push_back({&g.program.original_schedule(), {}});
  std::optional<Schedule> shared_sched;
  std::vector<const CoAccess*> shared_q;
  size_t attempts = 0;
  for (const CoAccess& opp : analysis.sharing) {
    if (shared_q.size() >= 2 || ++attempts > 8) break;
    std::vector<const CoAccess*> trial = shared_q;
    trial.push_back(&opp);
    auto s = solver.FindSchedule(trial);
    if (s.has_value()) {
      shared_q = trial;
      shared_sched = *s;
    }
  }
  if (shared_sched.has_value()) cases.push_back({&*shared_sched, shared_q});

  auto env = NewMemEnv();
  int run_idx = 0;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const PlanCase& pc = cases[ci];
    const PlanCost cost = EvaluatePlanCost(g.program, *pc.schedule, pc.q);
    RealizedPlan rp = RealizePlan(g.program, *pc.schedule, pc.q);
    const AccessScript script = BuildAccessScript(g.program, rp);
    const int64_t block = g.program.array(0).BlockBytes();
    for (const bool opportunistic : {false, true}) {
      // Tight: for plan-exact runs the plan's exact requirement (the
      // engine errors below it); for the opportunistic ablation a cap
      // just above the largest instance footprint — maximum pressure.
      const int64_t tight = opportunistic
                                ? script.max_instance_bytes + 2 * block
                                : cost.peak_memory_bytes;
      const int64_t loose = int64_t{1} << 30;
      std::map<ReplacementKind, int64_t> tight_reads;
      for (const ReplacementKind kind :
           {ReplacementKind::kLru, ReplacementKind::kClock,
            ReplacementKind::kScheduleOpt}) {
        for (const int64_t cap : {tight, loose}) {
          SCOPED_TRACE("seed " + std::to_string(seed) + " case " +
                       std::to_string(ci) + " mode " +
                       (opportunistic ? "opportunistic" : "plan-exact") +
                       " policy " + ReplacementKindName(kind) + " cap " +
                       std::to_string(cap));
          auto rt = OpenStores(env.get(), g.program,
                               "/sim" + std::to_string(run_idx++));
          ASSERT_TRUE(rt.ok());
          ASSERT_TRUE(InitIntegers(g.program, *rt, g.inputs, seed).ok());
          ExecOptions eo;
          eo.memory_cap_bytes = cap;
          eo.replacement = kind;
          eo.mode = opportunistic ? ExecMode::kOpportunisticCache
                                  : ExecMode::kPlanExact;
          Executor ex(g.program, rt->raw(), g.kernels, eo);
          auto stats = ex.Run(*pc.schedule, pc.q);
          ASSERT_TRUE(stats.ok()) << stats.status().ToString();

          CacheSimOptions sim;
          sim.policy = kind;
          sim.cap_bytes = cap;
          sim.opportunistic = opportunistic;
          auto predicted =
              SimulateCacheBehavior(g.program, *pc.schedule, pc.q, sim);
          ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();

          EXPECT_EQ(predicted->block_reads, stats->block_reads);
          EXPECT_EQ(predicted->block_writes, stats->block_writes);
          EXPECT_EQ(predicted->read_bytes, stats->bytes_read);
          EXPECT_EQ(predicted->write_bytes, stats->bytes_written);
          EXPECT_EQ(predicted->evictions, stats->pool.evictions);
          EXPECT_EQ(predicted->hits, stats->pool.hits);
          EXPECT_EQ(predicted->misses, stats->pool.misses);
          EXPECT_EQ(predicted->dirty_writebacks,
                    stats->pool.dirty_writebacks);
          EXPECT_EQ(predicted->policy_saved_reads,
                    stats->policy_saved_reads);
          if (opportunistic && cap == tight) {
            tight_reads[kind] = stats->block_reads;
          }
        }
      }
      if (opportunistic) {
        // Belady never loses to LRU on reads — the point of paying for
        // the future-use annotations.
        EXPECT_LE(tight_reads[ReplacementKind::kScheduleOpt],
                  tight_reads[ReplacementKind::kLru])
            << "seed " << seed << " case " << ci;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheSimTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// ---------------------------------------------------------------------------
// Multi-tenant replacement oracle: 2-4 random sessions run concurrently
// over one shared sub-working-set pool with their kernels serialized into a
// random (but fixed) global order by a LockstepGate. For each replacement
// policy the extended cache simulator must predict every session's
// block_reads / bytes / policy_saved_reads and the pool's evictions /
// hits / misses EXACTLY; outputs must be bit-identical to solo runs; and
// merged-clock ScheduleOpt must never read more blocks than LRU on the
// same interleaving.
// ---------------------------------------------------------------------------

class MultiTenantOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiTenantOracleTest, MergedClockMatchesSimulatorExactly) {
  const uint64_t seed = GetParam();
  std::mt19937_64 rng(seed * 7919 + 13);
  const int nsessions = 2 + static_cast<int>(rng() % 3);

  // Per session: its own program (distinct seed), stores, and plan — a
  // solver schedule realizing sharing when one exists and a seeded coin
  // allows (saved reads + retention + divergent saved writes must all
  // stay exact under co-tenancy), else the original schedule.
  struct Session {
    GeneratedProgram g;
    AnalysisResult analysis;
    std::optional<Schedule> shared_sched;
    const Schedule* schedule = nullptr;
    std::vector<const CoAccess*> q;
    int64_t footprint = 0;
    size_t instances = 0;
    std::vector<int> pool_ids;  // program array id -> shared-pool id
  };
  std::vector<Session> sessions(static_cast<size_t>(nsessions));
  int next_pool_id = 0;
  for (int s = 0; s < nsessions; ++s) {
    Session& sess = sessions[static_cast<size_t>(s)];
    sess.g = Generate(seed * 31 + static_cast<uint64_t>(s) + 1);
    ASSERT_TRUE(sess.g.program.Validate().ok());
    sess.analysis = AnalyzeProgram(sess.g.program);
    if (rng() % 2 == 0) {
      ScheduleSolver solver(sess.g.program, sess.analysis.dependences);
      size_t attempts = 0;
      for (const CoAccess& opp : sess.analysis.sharing) {
        if (sess.q.size() >= 2 || ++attempts > 8) break;
        std::vector<const CoAccess*> trial = sess.q;
        trial.push_back(&opp);
        auto sched = solver.FindSchedule(trial);
        if (sched.has_value()) {
          sess.q = trial;
          sess.shared_sched = *sched;
        }
      }
    }
    sess.schedule = sess.shared_sched.has_value()
                        ? &*sess.shared_sched
                        : &sess.g.program.original_schedule();
    const PlanCost cost =
        EvaluatePlanCost(sess.g.program, *sess.schedule, sess.q);
    sess.footprint = cost.peak_memory_bytes;
    sess.instances =
        RealizePlan(sess.g.program, *sess.schedule, sess.q).order.size();
    for (int a = 0; a < static_cast<int>(sess.g.program.arrays().size());
         ++a) {
      sess.pool_ids.push_back(next_pool_id++);
    }
  }

  // Sub-working-set shared cap: every tenant's exact requirement fits
  // simultaneously (no parking under lockstep), but far less than the
  // total data the sessions touch — evictions decide the read counts.
  int64_t cap = 0;
  for (const Session& sess : sessions) cap += sess.footprint;

  // One random kernel interleaving, shared by engine and simulator and by
  // every policy (reads are only comparable on a fixed schedule).
  std::vector<int> interleaving;
  for (int s = 0; s < nsessions; ++s) {
    interleaving.insert(interleaving.end(), sessions[size_t(s)].instances,
                        s);
  }
  std::shuffle(interleaving.begin(), interleaving.end(), rng);

  auto env = NewMemEnv();

  // Solo references (loose cap, own pool): the bit-identity baseline.
  std::vector<std::unique_ptr<Runtime>> ref_rts;
  for (int s = 0; s < nsessions; ++s) {
    Session& sess = sessions[static_cast<size_t>(s)];
    auto rt = OpenStores(env.get(), sess.g.program,
                         "/mt_ref" + std::to_string(s));
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(
        InitIntegers(sess.g.program, *rt, sess.g.inputs, seed).ok());
    Executor ex(sess.g.program, rt->raw(), sess.g.kernels);
    auto st = ex.Run(*sess.schedule, sess.q);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    ref_rts.push_back(std::make_unique<Runtime>(std::move(rt).ValueOrDie()));
  }

  std::map<ReplacementKind, int64_t> total_reads;
  int run_idx = 0;
  for (const ReplacementKind kind :
       {ReplacementKind::kLru, ReplacementKind::kClock,
        ReplacementKind::kScheduleOpt}) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " sessions " +
                 std::to_string(nsessions) + " policy " +
                 ReplacementKindName(kind) + " cap " + std::to_string(cap));

    BufferPool pool(cap, MakeReplacementPolicy(kind));
    LockstepGate gate(nsessions, interleaving);

    std::vector<std::unique_ptr<Runtime>> rts;
    std::vector<std::unique_ptr<PoolAccount>> accounts;
    std::vector<std::vector<StatementKernel>> gated_kernels;
    for (int s = 0; s < nsessions; ++s) {
      Session& sess = sessions[static_cast<size_t>(s)];
      auto rt = OpenStores(env.get(), sess.g.program,
                           "/mt" + std::to_string(run_idx) + "_" +
                               std::to_string(s));
      ASSERT_TRUE(rt.ok());
      ASSERT_TRUE(
          InitIntegers(sess.g.program, *rt, sess.g.inputs, seed).ok());
      rts.push_back(std::make_unique<Runtime>(std::move(rt).ValueOrDie()));
      auto account = std::make_unique<PoolAccount>();
      account->budget_bytes = sess.footprint;
      accounts.push_back(std::move(account));
      std::vector<StatementKernel> wrapped;
      for (const StatementKernel& k : sess.g.kernels) {
        wrapped.push_back([&gate, s, k](const std::vector<int64_t>& iter,
                                        const std::vector<DenseView*>& v) {
          gate.EnterKernel(s);
          k(iter, v);
        });
      }
      gated_kernels.push_back(std::move(wrapped));
    }
    ++run_idx;

    // Serialized spawn: session s's bind/advance(0)/fetch(0) prologue
    // completes (it blocks at kernel 0) before s+1 starts.
    std::vector<Result<ExecStats>> stats(
        static_cast<size_t>(nsessions),
        Result<ExecStats>(Status::Internal("not run")));
    std::vector<std::thread> threads;
    for (int s = 0; s < nsessions; ++s) {
      Session& sess = sessions[static_cast<size_t>(s)];
      threads.emplace_back([&, s]() {
        SessionBinding binding;
        binding.account = accounts[static_cast<size_t>(s)].get();
        binding.pool_array_ids = sess.pool_ids;
        ExecOptions eo;
        eo.shared_pool = &pool;
        eo.replacement = kind;
        eo.session = &binding;
        Executor ex(sess.g.program, rts[static_cast<size_t>(s)]->raw(),
                    gated_kernels[static_cast<size_t>(s)], eo);
        stats[static_cast<size_t>(s)] = ex.Run(*sess.schedule, sess.q);
        gate.Finish(s);
      });
      gate.AwaitArrival(s);
    }
    gate.Start();
    for (std::thread& t : threads) t.join();

    // The extended simulator replays the same interleaving and must be
    // exact: per-session reads/writes/saved-reads, pool-global evictions.
    std::vector<TenantCacheScript> tenants;
    for (int s = 0; s < nsessions; ++s) {
      Session& sess = sessions[static_cast<size_t>(s)];
      TenantCacheScript ts;
      ts.program = &sess.g.program;
      ts.schedule = sess.schedule;
      ts.realized = sess.q;
      ts.pool_array_ids = sess.pool_ids;
      ts.budget_bytes = sess.footprint;
      tenants.push_back(std::move(ts));
    }
    CacheSimOptions sim;
    sim.policy = kind;
    sim.cap_bytes = cap;
    auto predicted = SimulateMultiTenantCache(tenants, interleaving, sim);
    ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();

    int64_t engine_reads = 0;
    for (int s = 0; s < nsessions; ++s) {
      SCOPED_TRACE("session " + std::to_string(s));
      const auto& st = stats[static_cast<size_t>(s)];
      ASSERT_TRUE(st.ok()) << st.status().ToString();
      EXPECT_EQ(st->session_parks, 0);
      const CacheSimResult& per =
          predicted->per_tenant[static_cast<size_t>(s)];
      EXPECT_EQ(per.block_reads, st->block_reads);
      EXPECT_EQ(per.read_bytes, st->bytes_read);
      EXPECT_EQ(per.block_writes, st->block_writes);
      EXPECT_EQ(per.write_bytes, st->bytes_written);
      EXPECT_EQ(per.policy_saved_reads, st->policy_saved_reads);
      engine_reads += st->block_reads;
      // Bit-identity: co-tenancy changes I/O, never results.
      for (int arr : sessions[static_cast<size_t>(s)].g.outputs) {
        auto diff = MaxAbsDifference(
            sessions[static_cast<size_t>(s)].g.program.array(arr),
            ref_rts[static_cast<size_t>(s)]
                ->stores[static_cast<size_t>(arr)]
                .get(),
            rts[static_cast<size_t>(s)]
                ->stores[static_cast<size_t>(arr)]
                .get());
        ASSERT_TRUE(diff.ok());
        EXPECT_EQ(*diff, 0.0)
            << "array "
            << sessions[static_cast<size_t>(s)].g.program.array(arr).name;
      }
    }
    const BufferPoolStats ps = pool.stats();
    EXPECT_EQ(predicted->total.evictions, ps.evictions);
    EXPECT_EQ(predicted->total.hits, ps.hits);
    EXPECT_EQ(predicted->total.misses, ps.misses);
    EXPECT_EQ(predicted->total.dirty_writebacks, ps.dirty_writebacks);
    EXPECT_EQ(predicted->total.block_reads, engine_reads);
    EXPECT_EQ(pool.PinnedFrames(), 0);
    EXPECT_EQ(pool.PinnedOrRetainedBytes(), 0);
    total_reads[kind] = engine_reads;
  }

  // The merged future-use clock must not lose to history-based LRU on the
  // same interleaving — the whole point of keeping the schedules bound
  // under multi-tenancy.
  EXPECT_LE(total_reads[ReplacementKind::kScheduleOpt],
            total_reads[ReplacementKind::kLru])
      << "seed " << seed;
}

// A fast smoke slice runs in tier-1; the full corpus is stress-labeled
// (see CMakeLists: integration/mt_replacement_smoke / _oracle).
INSTANTIATE_TEST_SUITE_P(Smoke, MultiTenantOracleTest,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));
INSTANTIATE_TEST_SUITE_P(Full, MultiTenantOracleTest,
                         ::testing::Range(uint64_t{7}, uint64_t{47}));

// ---------------------------------------------------------------------------
// Expression-DAG fuzzer: random well-shaped expression trees vs a naive
// exact evaluator.
// ---------------------------------------------------------------------------

// One generated DAG plus the per-node value bound the generator maintained
// (|value| <= bound, so doubles stay exact integers).
struct GeneratedExpr {
  ExprGraph graph;
  std::vector<ExprRef> outputs;
};

// Keeps every intermediate below 2^48 in absolute value: double arithmetic
// on integers is then exact, so "bit-for-bit" is a meaningful oracle no
// matter how plans reassociate.
constexpr double kMaxBound = 281474976710656.0;  // 2^48

GeneratedExpr GenerateExpr(uint64_t seed) {
  std::mt19937_64 rng(seed * 7919 + 13);
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<uint64_t>(hi - lo + 1));
  };
  GeneratedExpr g;
  std::vector<double> bound;     // node id -> max |value|
  std::vector<bool> consumed;    // node id -> has a consumer
  auto track = [&](ExprRef r, double b) {
    // Hash-consing may return an existing node; sizes then do not grow.
    if (static_cast<size_t>(r) == bound.size()) {
      bound.push_back(b);
      consumed.push_back(false);
    }
    return r;
  };

  // Block element sizes straddle the packed GEMM's register tile
  // (kGemmMr x kGemmNr) and include primes, so edge tiles, full tiles, and
  // multi-tile panels all flow through the differential against the exact
  // evaluator. Bounds math is unchanged: the generator still rejects any op
  // whose value bound would leave the exact-integer range.
  auto pick_bsize = [&]() -> int64_t {
    static constexpr int64_t kSizes[] = {2, 3, 4, 5, 7, 9, 13, 17};
    return kSizes[rng() % (sizeof(kSizes) / sizeof(kSizes[0]))];
  };
  const int ninputs = pick(2, 3);
  for (int i = 0; i < ninputs; ++i) {
    track(g.graph.Input(std::string(1, static_cast<char>('A' + i)),
                        {pick(1, 3), pick(1, 3)}, {pick_bsize(), pick_bsize()}),
          3.0);
  }

  const int nops = pick(3, 6);
  for (int o = 0; o < nops; ++o) {
    // Rejection-sample a well-shaped, bounded op over existing nodes.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int n = static_cast<int>(g.graph.size());
      const ExprRef a = pick(0, n - 1);
      const ExprRef b = pick(0, n - 1);
      const ExprShape& sa = g.graph.node(a).shape;
      const ExprShape& sb = g.graph.node(b).shape;
      const int kind = pick(0, 7);
      ExprRef made = -1;
      switch (kind) {
        case 0:
        case 1: {  // Add / Sub
          if (!(sa == sb) || bound[size_t(a)] + bound[size_t(b)] > kMaxBound) {
            continue;
          }
          made = track(kind == 0 ? g.graph.Add(a, b) : g.graph.Sub(a, b),
                       bound[size_t(a)] + bound[size_t(b)]);
          break;
        }
        case 2: {  // Scale by a small integer
          const double alpha = pick(2, 3);
          if (alpha * bound[size_t(a)] > kMaxBound) continue;
          made = track(g.graph.Scale(a, alpha), alpha * bound[size_t(a)]);
          break;
        }
        case 3: {  // AddDiag on a single square block
          if (sa.grid[0] != 1 || sa.grid[1] != 1 ||
              sa.block_elems[0] != sa.block_elems[1] ||
              bound[size_t(a)] + 3.0 > kMaxBound) {
            continue;
          }
          made = track(g.graph.AddDiag(a, pick(1, 3)),
                       bound[size_t(a)] + 3.0);
          break;
        }
        case 4: {  // Gemm with random transposes and integer alpha
          const bool ta = pick(0, 1) == 1, tb = pick(0, 1) == 1;
          const int64_t ka = ta ? sa.grid[0] : sa.grid[1];
          const int64_t kae = ta ? sa.block_elems[0] : sa.block_elems[1];
          const int64_t kb = tb ? sb.grid[1] : sb.grid[0];
          const int64_t kbe = tb ? sb.block_elems[1] : sb.block_elems[0];
          if (ka != kb || kae != kbe) continue;
          const double alpha = pick(1, 2);
          const double bb = alpha * bound[size_t(a)] * bound[size_t(b)] *
                            static_cast<double>(ka * kae);
          if (bb > kMaxBound) continue;
          made = track(g.graph.Gemm(a, b, {ta, tb, alpha}), bb);
          break;
        }
        case 5: {  // SumSquares
          const double rows =
              static_cast<double>(sa.grid[0] * sa.block_elems[0]);
          const double bb = bound[size_t(a)] * bound[size_t(a)] * rows;
          if (bb > kMaxBound) continue;
          made = track(g.graph.SumSquares(a), bb);
          break;
        }
        case 6: {  // Map: abs / relu, exact on integers, bound unchanged
          made = track(
              g.graph.Map(a, pick(0, 1) == 0 ? kScalarAbs : kScalarRelu),
              bound[size_t(a)]);
          break;
        }
        case 7: {  // Zip: min / max, bound is the larger operand bound
          if (!(sa == sb)) continue;
          made = track(
              g.graph.Zip(a, b, pick(0, 1) == 0 ? kScalarMin : kScalarMax),
              std::max(bound[size_t(a)], bound[size_t(b)]));
          break;
        }
      }
      if (made < 0) continue;
      for (ExprRef arg : g.graph.node(made).args) {
        consumed[static_cast<size_t>(arg)] = true;
      }
      break;
    }
  }

  for (size_t id = 0; id < g.graph.size(); ++id) {
    if (!g.graph.node(static_cast<ExprRef>(id)).is_input() && !consumed[id]) {
      g.outputs.push_back(static_cast<ExprRef>(id));
    }
  }
  return g;
}

// Chain-focused corpus: two same-shape inputs feeding a deep single-
// consumer elementwise chain — the fusion planner's main diet — rooted
// half the time on a diamond (one producer, two branches that rejoin)
// whose shared producer must stay materialized while both branches fuse
// into the join. These graphs maximize fusion depth; the test runs them on
// the original schedule only, because the long same-shape statement runs
// they lower to UNFUSED would blow up plan enumeration for no extra
// differential value.
GeneratedExpr GenerateChainExpr(uint64_t seed) {
  std::mt19937_64 rng(seed * 6271 + 101);
  auto pick = [&](int lo, int hi) {
    return lo + static_cast<int>(rng() % static_cast<uint64_t>(hi - lo + 1));
  };
  GeneratedExpr g;
  std::vector<double> bound;
  std::vector<bool> consumed;
  auto track = [&](ExprRef r, double b) {
    if (static_cast<size_t>(r) == bound.size()) {
      bound.push_back(b);
      consumed.push_back(false);
    }
    return r;
  };
  const int64_t gr = pick(1, 3), gc = pick(1, 3);
  const int64_t br = pick(2, 13), bc = pick(2, 13);
  const ExprRef x = track(g.graph.Input("X", {gr, gc}, {br, bc}), 3.0);
  const ExprRef y = track(g.graph.Input("Y", {gr, gc}, {br, bc}), 3.0);

  // One fusable op on top of t; second operands come from {t, x, y}. Abs
  // is the no-growth fallback once the integer-exactness headroom is gone.
  auto apply = [&](ExprRef t) -> ExprRef {
    const double bt = bound[size_t(t)];
    const ExprRef other = pick(0, 1) == 0 ? x : y;
    const double bo = bound[size_t(other)];
    switch (pick(0, 6)) {
      case 0:
        if (2.0 * bt <= kMaxBound) {
          return track(g.graph.Scale(t, 2.0), 2.0 * bt);
        }
        break;
      case 1:
        if (bt + bo <= kMaxBound) {
          return track(g.graph.Add(t, other), bt + bo);
        }
        break;
      case 2:
        if (bt + bo <= kMaxBound) {
          return track(g.graph.Sub(t, other), bt + bo);
        }
        break;
      case 3:
        // Same node on both slots: two (consumer, slot) uses, so t must
        // NOT fuse into this consumer — the planner's duplicate-arg rule.
        if (bt + bt <= kMaxBound) {
          return track(g.graph.Add(t, t), bt + bt);
        }
        break;
      case 4:
        return track(g.graph.Map(t, kScalarRelu), bt);
      case 5:
        return track(g.graph.Zip(t, other, kScalarMax), std::max(bt, bo));
      case 6:
        return track(g.graph.Zip(t, other, kScalarMin), std::max(bt, bo));
      default:
        break;
    }
    return track(g.graph.Map(t, kScalarAbs), bt);
  };

  ExprRef t = pick(0, 1) == 0 ? x : y;
  if (pick(0, 1) == 1) {
    const ExprRef seed_node = track(g.graph.Add(x, y), 6.0);
    const ExprRef branch_a = track(g.graph.Map(seed_node, kScalarRelu), 6.0);
    const ExprRef branch_b = track(g.graph.Scale(seed_node, 2.0), 12.0);
    consumed[size_t(seed_node)] = true;
    t = track(g.graph.Sub(branch_b, branch_a), 18.0);
    consumed[size_t(branch_a)] = true;
    consumed[size_t(branch_b)] = true;
  }
  const int chain = pick(4, 8);
  for (int i = 0; i < chain; ++i) {
    const ExprRef next = apply(t);
    consumed[size_t(t)] = true;
    t = next;
  }
  auto collect = [&] {
    g.outputs.clear();
    for (size_t id = 0; id < g.graph.size(); ++id) {
      if (!g.graph.node(static_cast<ExprRef>(id)).is_input() &&
          !consumed[id]) {
        g.outputs.push_back(static_cast<ExprRef>(id));
      }
    }
  };
  collect();
  while (g.outputs.empty()) {
    // Hash-consing can land the chain tip on an already-consumed node;
    // keep wrapping until some node is free to be the output.
    t = track(g.graph.Map(t, kScalarAbs), bound[size_t(t)]);
    collect();
  }
  return g;
}

// Exact whole-array evaluation of the DAG over Rational matrices. Element
// (r, c) of node `id` is value(id)->At(r, c); inputs are filled by `fill`.
std::vector<RMatrix> EvaluateNaive(
    const ExprGraph& g,
    const std::function<Rational(int, int64_t, int64_t)>& fill) {
  std::vector<RMatrix> vals;
  for (size_t id = 0; id < g.size(); ++id) {
    const ExprNode& n = g.node(static_cast<ExprRef>(id));
    const int64_t rows = n.shape.rows(), cols = n.shape.cols();
    RMatrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
    auto& va = n.args.empty() ? m : vals[static_cast<size_t>(n.args[0])];
    switch (n.kind) {
      case StatementOp::Kind::kInput:
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            m.At(size_t(r), size_t(c)) = fill(static_cast<int>(id), r, c);
          }
        }
        break;
      case StatementOp::Kind::kAdd:
      case StatementOp::Kind::kSub: {
        const RMatrix& vb = vals[static_cast<size_t>(n.args[1])];
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            m.At(size_t(r), size_t(c)) =
                n.kind == StatementOp::Kind::kAdd
                    ? va.At(size_t(r), size_t(c)) + vb.At(size_t(r), size_t(c))
                    : va.At(size_t(r), size_t(c)) -
                          vb.At(size_t(r), size_t(c));
          }
        }
        break;
      }
      case StatementOp::Kind::kScale:
      case StatementOp::Kind::kAddDiag: {
        const Rational alpha(static_cast<int64_t>(n.alpha));
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            m.At(size_t(r), size_t(c)) =
                n.kind == StatementOp::Kind::kScale
                    ? alpha * va.At(size_t(r), size_t(c))
                    : va.At(size_t(r), size_t(c)) +
                          (r == c ? alpha : Rational(0));
          }
        }
        break;
      }
      case StatementOp::Kind::kGemm: {
        const RMatrix& vb = vals[static_cast<size_t>(n.args[1])];
        const Rational alpha(static_cast<int64_t>(n.alpha));
        const int64_t kk = n.trans_a
                               ? static_cast<int64_t>(va.rows())
                               : static_cast<int64_t>(va.cols());
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            Rational acc;
            for (int64_t k = 0; k < kk; ++k) {
              const Rational& ea = n.trans_a ? va.At(size_t(k), size_t(r))
                                             : va.At(size_t(r), size_t(k));
              const Rational& eb = n.trans_b ? vb.At(size_t(c), size_t(k))
                                             : vb.At(size_t(k), size_t(c));
              acc += ea * eb;
            }
            m.At(size_t(r), size_t(c)) = alpha * acc;
          }
        }
        break;
      }
      case StatementOp::Kind::kMap:
        // Built-in maps only: abs and relu are exact over integers.
        RIOT_CHECK(n.scalar_fn == kScalarAbs || n.scalar_fn == kScalarRelu);
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            const Rational& v = va.At(size_t(r), size_t(c));
            m.At(size_t(r), size_t(c)) =
                n.scalar_fn == kScalarAbs
                    ? v.Abs()
                    : (v.IsNegative() ? Rational(0) : v);
          }
        }
        break;
      case StatementOp::Kind::kZip: {
        RIOT_CHECK(n.scalar_fn == kScalarMin || n.scalar_fn == kScalarMax);
        const RMatrix& vb = vals[static_cast<size_t>(n.args[1])];
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) {
            const Rational& x = va.At(size_t(r), size_t(c));
            const Rational& y = vb.At(size_t(r), size_t(c));
            m.At(size_t(r), size_t(c)) =
                (n.scalar_fn == kScalarMin) == (x < y) ? x : y;
          }
        }
        break;
      }
      case StatementOp::Kind::kInverse:
        RIOT_CHECK(false) << "fuzzer never generates Inverse (non-integer)";
        break;
      case StatementOp::Kind::kSumSquares:
        for (int64_t c = 0; c < cols; ++c) {
          Rational acc;
          for (int64_t r = 0; r < static_cast<int64_t>(va.rows()); ++r) {
            acc += va.At(size_t(r), size_t(c)) * va.At(size_t(r), size_t(c));
          }
          m.At(0, size_t(c)) = acc;
        }
        break;
    }
    vals.push_back(std::move(m));
  }
  return vals;
}

// Global-element <-> blocked-store mapping (blocks row-major in the store,
// elements column-major within a block).
double BlockedAt(const ArrayInfo& info, const std::vector<double>& blocked,
                 int64_t r, int64_t c) {
  const int64_t br = info.block_elems[0], bc = info.block_elems[1];
  const int64_t blk = (r / br) * info.grid[1] + (c / bc);
  return blocked[static_cast<size_t>(blk * info.ElemsPerBlock() +
                                     (c % bc) * br + (r % br))];
}

struct EngineConfig {
  const char* name;
  int threads;
  int depth;
};
constexpr EngineConfig kEngineConfigs[] = {
    {"serial", 1, 0}, {"pipelined", 1, 2}, {"threads4", 4, 2}};

// Integer inputs in 0..3, deterministic in (node, element).
std::function<Rational(int, int64_t, int64_t)> MakeIntegerFill(uint64_t seed) {
  return [seed](int node, int64_t r, int64_t c) {
    uint64_t h = seed * 0x9E3779B97F4A7C15ULL +
                 static_cast<uint64_t>(node) * 0x2545F4914F6CDD1DULL +
                 static_cast<uint64_t>(r) * 1000003ULL +
                 static_cast<uint64_t>(c) * 10007ULL;
    h ^= h >> 33;
    return Rational(static_cast<int64_t>(h % 4));
  };
}

// Writes the exact integer inputs into `lo`'s stores, runs the program under
// (sched, q) with the given engine config, and checks every output element
// bitwise against the exact evaluator's values.
void RunLoweredAndCheck(
    const GeneratedExpr& gen, const LoweredExpr& lo,
    const std::vector<RMatrix>& naive,
    const std::function<Rational(int, int64_t, int64_t)>& fill,
    const Schedule& sched, const std::vector<const CoAccess*>& q,
    const EngineConfig& cfg, Env* env, const std::string& path) {
  const Program& prog = lo.program;
  auto rt = OpenStores(env, prog, path);
  ASSERT_TRUE(rt.ok());
  // Initialize inputs from the same exact values the naive evaluator saw.
  for (size_t id = 0; id < gen.graph.size(); ++id) {
    const ExprNode& node = gen.graph.node(static_cast<ExprRef>(id));
    if (!node.is_input()) continue;
    const int arr = lo.array_of[id];
    const ArrayInfo& info = prog.array(arr);
    std::vector<double> buf(static_cast<size_t>(info.ElemsPerBlock()));
    for (int64_t blk = 0; blk < info.NumBlocks(); ++blk) {
      const int64_t brow = blk / info.grid[1], bcol = blk % info.grid[1];
      for (int64_t c = 0; c < info.block_elems[1]; ++c) {
        for (int64_t rr = 0; rr < info.block_elems[0]; ++rr) {
          buf[static_cast<size_t>(c * info.block_elems[0] + rr)] =
              fill(static_cast<int>(id), brow * info.block_elems[0] + rr,
                   bcol * info.block_elems[1] + c)
                  .ToDouble();
        }
      }
      ASSERT_TRUE(rt->stores[static_cast<size_t>(arr)]
                      ->WriteBlock(blk, buf.data())
                      .ok());
    }
  }
  ExecOptions eo;
  eo.exec_threads = cfg.threads;
  eo.pipeline_depth = cfg.depth;
  // No hand kernels at all: the executor synthesizes from the ops.
  Executor ex(prog, rt->raw(), {}, eo);
  auto stats = ex.Run(sched, q);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  for (ExprRef out : gen.outputs) {
    const int arr = lo.array_of[static_cast<size_t>(out)];
    const ArrayInfo& info = prog.array(arr);
    auto blocked =
        ReadWholeArray(info, rt->stores[static_cast<size_t>(arr)].get());
    ASSERT_TRUE(blocked.ok());
    const RMatrix& want = naive[static_cast<size_t>(out)];
    for (int64_t rr = 0; rr < static_cast<int64_t>(want.rows()); ++rr) {
      for (int64_t cc = 0; cc < static_cast<int64_t>(want.cols()); ++cc) {
        ASSERT_EQ(BlockedAt(info, *blocked, rr, cc),
                  want.At(size_t(rr), size_t(cc)).ToDouble())
            << info.name << " element (" << rr << ", " << cc << ")";
      }
    }
  }
}

class ExprFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprFuzzTest, LoweredExecutionMatchesNaiveEvaluatorBitForBit) {
  const uint64_t seed = GetParam();
  GeneratedExpr gen = GenerateExpr(seed);
  ASSERT_FALSE(gen.outputs.empty());
  // Both lowerings of the same DAG: fused (default) and per-node. Fusion
  // must only ever remove statements and scratch arrays, and both must
  // match the exact evaluator bit for bit under every engine config —
  // the three-way fused / unfused / Rational differential.
  auto lowered = LowerExpr(gen.graph, gen.outputs);
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  LowerOptions fuse_off;
  fuse_off.fuse = false;
  auto unfused = LowerExpr(gen.graph, gen.outputs, fuse_off);
  ASSERT_TRUE(unfused.ok()) << unfused.status().ToString();
  EXPECT_EQ(unfused->fused_nodes, 0);
  EXPECT_LE(lowered->program.statements().size(),
            unfused->program.statements().size());
  EXPECT_EQ(unfused->program.statements().size() -
                lowered->program.statements().size(),
            static_cast<size_t>(lowered->fused_nodes));

  const auto fill = MakeIntegerFill(seed);
  const std::vector<RMatrix> naive = EvaluateNaive(gen.graph, fill);

  auto env = NewMemEnv();
  int run_idx = 0;
  for (const LoweredExpr* lo : {&*lowered, &*unfused}) {
    const Program& prog = lo->program;
    ASSERT_TRUE(prog.Validate().ok());

    OptimizerOptions opts;
    opts.max_combination_size = 2;
    OptimizationResult r = Optimize(prog, opts);
    const Plan* plan_cases[] = {&r.plans[0], &r.best()};
    for (const Plan* plan : plan_cases) {
      std::vector<const CoAccess*> q;
      for (int oi : plan->opportunities) {
        q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
      }
      {
        // Op-lowered expression programs must also lint clean at both
        // levels — this corpus exercises the StatementOp checks the
        // hand-kernel fuzz family can't, including the fused-tape rules.
        auto lint = LintPlan(prog, plan->schedule, q);
        ASSERT_TRUE(lint.ok()) << lint.status().ToString();
        EXPECT_TRUE(lint->ok()) << lint->ToString();
      }
      for (const EngineConfig& cfg : kEngineConfigs) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " cfg " + cfg.name +
                     (plan == &r.best() ? " best" : " orig") +
                     (lo == &*lowered ? " fused" : " unfused"));
        ASSERT_NO_FATAL_FAILURE(RunLoweredAndCheck(
            gen, *lo, naive, fill, plan->schedule, q, cfg, env.get(),
            "/ef" + std::to_string(run_idx++)));
      }
    }
  }
}

// Chain corpus: deep single-consumer chains (and rejoining diamonds) from
// GenerateChainExpr, the graphs where fusion does the most work. Runs the
// original schedule only — the long same-shape statement runs these lower
// to UNFUSED make plan enumeration combinatorially expensive without adding
// differential value, which the base corpus above already covers.
TEST_P(ExprFuzzTest, FusedChainMatchesUnfusedAndExactOracle) {
  const uint64_t seed = GetParam();
  GeneratedExpr gen = GenerateChainExpr(seed);
  ASSERT_FALSE(gen.outputs.empty());
  auto fused = LowerExpr(gen.graph, gen.outputs);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  LowerOptions fuse_off;
  fuse_off.fuse = false;
  auto unfused = LowerExpr(gen.graph, gen.outputs, fuse_off);
  ASSERT_TRUE(unfused.ok()) << unfused.status().ToString();
  EXPECT_EQ(unfused->fused_nodes, 0);
  // A chain can in principle be all duplicate-arg ops (which must not
  // fuse), so only <= is guaranteed per seed; the statement delta must
  // still account exactly for every fused-away node.
  EXPECT_LE(fused->program.statements().size(),
            unfused->program.statements().size());
  EXPECT_EQ(unfused->program.statements().size() -
                fused->program.statements().size(),
            static_cast<size_t>(fused->fused_nodes));

  const auto fill = MakeIntegerFill(seed);
  const std::vector<RMatrix> naive = EvaluateNaive(gen.graph, fill);

  auto env = NewMemEnv();
  int run_idx = 0;
  for (const LoweredExpr* lo : {&*fused, &*unfused}) {
    const Program& prog = lo->program;
    ASSERT_TRUE(prog.Validate().ok());
    {
      auto lint = LintPlan(prog, prog.original_schedule(), {});
      ASSERT_TRUE(lint.ok()) << lint.status().ToString();
      EXPECT_TRUE(lint->ok()) << lint->ToString();
    }
    for (const EngineConfig& cfg : kEngineConfigs) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " cfg " + cfg.name +
                   (lo == &*fused ? " fused" : " unfused"));
      ASSERT_NO_FATAL_FAILURE(RunLoweredAndCheck(
          gen, *lo, naive, fill, prog.original_schedule(), {}, cfg,
          env.get(), "/ec" + std::to_string(run_idx++)));
    }
  }
}

// Smoke subset runs in the tier-1 suite; the Full sweep (>= 50 seeds, the
// acceptance bar) is stress-labeled (see CMakeLists.txt).
INSTANTIATE_TEST_SUITE_P(Smoke, ExprFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));
INSTANTIATE_TEST_SUITE_P(Full, ExprFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{61}));

}  // namespace
}  // namespace riot
