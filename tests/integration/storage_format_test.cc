// End-to-end execution parameterized by storage format: the optimized plan
// must produce identical results and identical block-level I/O counts on
// DAF and LAB-tree stores (paper Section 6: the two formats "work virtually
// identically for dense matrices").
#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

class StorageFormatTest : public ::testing::TestWithParam<StorageFormat> {};

TEST_P(StorageFormatTest, BestPlanRunsIdentically) {
  Workload w = MakeExample1(3, 3, 2);
  OptimizationResult r = Optimize(w.program);
  const Plan& best = r.best();
  auto env = NewMemEnv();

  auto rt = OpenStores(env.get(), w.program, "/fmt", GetParam());
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  ASSERT_TRUE(InitInputs(w, *rt, 21).ok());
  std::vector<const CoAccess*> q;
  for (int oi : best.opportunities) {
    q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
  }
  ExecOptions eo;
  eo.memory_cap_bytes = best.cost.peak_memory_bytes;
  Executor ex(w.program, rt->raw(), w.kernels, eo);
  auto stats = ex.Run(best.schedule, q);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Identical block-level I/O on either format.
  EXPECT_EQ(stats->bytes_read, best.cost.read_bytes);
  EXPECT_EQ(stats->bytes_written, best.cost.write_bytes);

  // Reference on DAF; outputs must agree across formats.
  auto ref = OpenStores(env.get(), w.program, "/ref", StorageFormat::kDaf);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(InitInputs(w, *ref, 21).ok());
  Executor ex2(w.program, ref->raw(), w.kernels);
  ASSERT_TRUE(ex2.Run(w.program.original_schedule(), {}).ok());
  for (int arr : w.output_arrays) {
    auto diff = MaxAbsDifference(w.program.array(arr),
                                 ref->stores[static_cast<size_t>(arr)].get(),
                                 rt->stores[static_cast<size_t>(arr)].get());
    ASSERT_TRUE(diff.ok());
    EXPECT_LE(*diff, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, StorageFormatTest,
                         ::testing::Values(StorageFormat::kDaf,
                                           StorageFormat::kLabTree),
                         [](const auto& info) {
                           return info.param == StorageFormat::kDaf
                                      ? "Daf"
                                      : "LabTree";
                         });

}  // namespace
}  // namespace riot
