// E9 (DESIGN.md): the executable plan for the paper's Section 5.5 example
// must be equivalent to the hand-derived transformed code of Figure 1(b),
// and the paper's published schedule must itself verify as legal and
// realizing.
#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/schedule_solver.h"
#include "ops/workload.h"

namespace riot {
namespace {

const CoAccess* Find(const std::vector<CoAccess>& list, const Program& p,
                     const std::string& label) {
  for (const auto& ca : list) {
    if (ca.Label(p) == label) return &ca;
  }
  return nullptr;
}

// The paper's published schedule (Section 5.5):
//   Theta_s1 (i,k)   = (0, -i, k, 0)
//   Theta_s2 (i,j,k) = (j, -i, k, 1)
Schedule PaperSchedule() {
  RMatrix s1(4, 3);           // rows over (i, k, 1)
  s1.At(1, 0) = Rational(-1);  // -i
  s1.At(2, 1) = Rational(1);   // k
  RMatrix s2(4, 4);           // rows over (i, j, k, 1)
  s2.At(0, 1) = Rational(1);   // j
  s2.At(1, 0) = Rational(-1);  // -i
  s2.At(2, 2) = Rational(1);   // k
  s2.At(3, 3) = Rational(1);   // constant 1
  return Schedule({std::move(s1), std::move(s2)});
}

class CodegenTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(CodegenTest, FoundPlanMatchesFigure1bIoCounts) {
  auto [n1, n2, n3] = GetParam();
  Workload w = MakeExample1(n1, n2, n3);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  for (auto* o : q) ASSERT_NE(o, nullptr);
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  PlanCost c = EvaluatePlanCost(w.program, *s, q);
  const int64_t blk = w.program.array(0).BlockBytes();
  // Figure 1(b) I/O per the transformed code:
  //   reads:  A, B once each (n1 n2); D once per (i,j,k) -> n1 n3 n2 block
  //           reads of D; C re-read only for j >= 1: n1 n2 (n3-1); E never.
  //   writes: C once (n1 n2) iff n3 > 1 (footnote 8), E once per (i,j).
  int64_t reads = 2 * n1 * n2 + n1 * n3 * n2 + n1 * n2 * (n3 - 1);
  int64_t writes = (n3 > 1 ? n1 * n2 : 0) + n1 * n3;
  EXPECT_EQ(c.read_bytes, reads * blk);
  EXPECT_EQ(c.write_bytes, writes * blk);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodegenTest,
    ::testing::Values(std::make_tuple(3, 4, 1), std::make_tuple(3, 4, 2),
                      std::make_tuple(2, 3, 4), std::make_tuple(1, 2, 2)));

TEST(PaperScheduleTest, PublishedScheduleIsLegalAndRealizing) {
  Workload w = MakeExample1(3, 4, 2);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  Schedule paper = PaperSchedule();
  EXPECT_TRUE(solver.IsLegal(paper));
  for (const char* label : {"s1WC->s2RC", "s2WE->s2RE", "s2WE->s2WE"}) {
    const CoAccess* o = Find(a.sharing, w.program, label);
    ASSERT_NE(o, nullptr);
    EXPECT_TRUE(solver.Realizes(paper, *o)) << label;
  }
  // And it does NOT realize the conflicting D reuse.
  const CoAccess* d = Find(a.sharing, w.program, "s2RD->s2RD");
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(solver.Realizes(paper, *d));
}

TEST(PaperScheduleTest, FoundScheduleCostEqualsPaperScheduleCost) {
  // The solver's own schedule for the Section 5.5 set must cost exactly the
  // same as the paper's published schedule (both implement Figure 1(b)).
  Workload w = MakeExample1(3, 4, 2);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  auto mine = solver.FindSchedule(q);
  ASSERT_TRUE(mine.has_value());
  PlanCost c1 = EvaluatePlanCost(w.program, *mine, q);
  PlanCost c2 = EvaluatePlanCost(w.program, PaperSchedule(), q);
  EXPECT_EQ(c1.read_bytes, c2.read_bytes);
  EXPECT_EQ(c1.write_bytes, c2.write_bytes);
  EXPECT_EQ(c1.peak_memory_bytes, c2.peak_memory_bytes);
}

TEST(PaperScheduleTest, SpecialCaseN3EqualOneElidesC) {
  // Figure 1(a): with n3 = 1 the pipeline eliminates C entirely; the
  // optimizer's general plan degenerates to the special case (footnote 8).
  Workload w = MakeExample1(3, 4, 1);
  AnalysisResult a = AnalyzeProgram(w.program);
  ScheduleSolver solver(w.program, a.dependences);
  std::vector<const CoAccess*> q = {
      Find(a.sharing, w.program, "s1WC->s2RC"),
      Find(a.sharing, w.program, "s2WE->s2RE"),
      Find(a.sharing, w.program, "s2WE->s2WE")};
  auto s = solver.FindSchedule(q);
  ASSERT_TRUE(s.has_value());
  PlanCost c = EvaluatePlanCost(w.program, *s, q);
  const int64_t blk = w.program.array(0).BlockBytes();
  // No C traffic at all: reads = A + B + D; writes = E once per block.
  EXPECT_EQ(c.read_bytes, (2 * 3 * 4 + 3 * 1 * 4) * blk);
  EXPECT_EQ(c.write_bytes, 3 * 1 * blk);
}

}  // namespace
}  // namespace riot
