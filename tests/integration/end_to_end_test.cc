// End-to-end integration tests: optimize Example 1 (and variants), execute
// every legal plan against real block stores, and verify that
//   (1) every optimized plan produces the same output as the original
//       schedule (semantic preservation),
//   (2) executed I/O volume matches the cost model prediction exactly,
//   (3) the executed memory requirement matches the predicted peak, and
//   (4) plans run within their predicted memory cap without spills.
#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

class EndToEndTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(EndToEndTest, AllPlansAgreeWithOriginalAndPrediction) {
  auto [n1, n2, n3] = GetParam();
  Workload w = MakeExample1(n1, n2, n3);
  ASSERT_TRUE(w.program.Validate().ok());

  OptimizerOptions opts;
  OptimizationResult result = Optimize(w.program, opts);
  ASSERT_GE(result.plans.size(), 2u) << "expected at least one sharing plan";

  auto env = NewMemEnv();

  // Reference run: plan 0 (original schedule).
  auto ref_rt = OpenStores(env.get(), w.program, "/ref");
  ASSERT_TRUE(ref_rt.ok());
  ASSERT_TRUE(InitInputs(w, *ref_rt, /*seed=*/7).ok());
  {
    Executor ex(w.program, ref_rt->raw(), w.kernels);
    auto stats = ex.Run(w.program.original_schedule(), {});
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }

  for (size_t pi = 1; pi < result.plans.size(); ++pi) {
    const Plan& plan = result.plans[pi];
    SCOPED_TRACE("plan " + std::to_string(pi) + ": " +
                 plan.DescribeOpportunities(w.program,
                                            result.analysis.sharing));
    auto rt = OpenStores(env.get(), w.program, "/p" + std::to_string(pi));
    ASSERT_TRUE(rt.ok());
    ASSERT_TRUE(InitInputs(w, *rt, /*seed=*/7).ok());

    std::vector<const CoAccess*> q;
    for (int oi : plan.opportunities) {
      q.push_back(&result.analysis.sharing[static_cast<size_t>(oi)]);
    }
    ExecOptions eo;
    // Run under exactly the predicted memory requirement: a correct plan
    // must fit without spilling.
    eo.memory_cap_bytes = plan.cost.peak_memory_bytes;
    Executor ex(w.program, rt->raw(), w.kernels, eo);
    auto stats = ex.Run(plan.schedule, q);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    // (2) exact I/O volume match.
    EXPECT_EQ(stats->bytes_read, plan.cost.read_bytes);
    EXPECT_EQ(stats->bytes_written, plan.cost.write_bytes);
    EXPECT_EQ(stats->block_reads, plan.cost.block_reads);
    EXPECT_EQ(stats->block_writes, plan.cost.block_writes);
    // (3) memory requirement match.
    EXPECT_EQ(stats->peak_required_bytes, plan.cost.peak_memory_bytes);
    // (4) no spills under the predicted cap.
    EXPECT_EQ(stats->pool.dirty_writebacks, 0);

    // (1) identical outputs.
    for (int arr : w.output_arrays) {
      auto diff = MaxAbsDifference(
          w.program.array(arr),
          ref_rt->stores[static_cast<size_t>(arr)].get(),
          rt->stores[static_cast<size_t>(arr)].get());
      ASSERT_TRUE(diff.ok());
      EXPECT_LE(*diff, 1e-9) << "output mismatch in array "
                             << w.program.array(arr).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EndToEndTest,
    ::testing::Values(std::make_tuple(3, 4, 1), std::make_tuple(3, 4, 2),
                      std::make_tuple(2, 2, 3), std::make_tuple(4, 3, 2),
                      std::make_tuple(1, 5, 2), std::make_tuple(2, 6, 1)));

TEST(EndToEndBestPlan, Example1BestPlanBeatsOriginal) {
  Workload w = MakeExample1(6, 6, 1);
  OptimizationResult result = Optimize(w.program);
  const Plan& best = result.best();
  const Plan& original = result.plans[0];
  EXPECT_LT(best.cost.TotalBytes(), original.cost.TotalBytes());
  // Paper Section 6.1: the best plan realizes s1WC->s2RC, s2WE->s2RE and
  // s2WE->s2WE (n3 = 1 leaves no s2RC->s2RC opportunity).
  EXPECT_EQ(best.opportunities.size(), 3u);
}

}  // namespace
}  // namespace riot
