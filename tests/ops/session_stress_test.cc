// Multi-tenant differential soak (stress-labeled; the CI TSan leg runs it
// instrumented): {2, 4, 8} concurrent sessions — mixed programs, mixed
// plans (original and optimizer-best), mixed pipeline depths — execute
// over ONE shared BufferPool/IoPool, with inputs shared per program so
// cross-session dedup and load coalescing are exercised for real. Every
// session's outputs must be bit-identical to its own solo serial run,
// every session's charged bytes must stay within its admitted budget, no
// pin may leak, and no session may fail or livelock in admission.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/cost_model.h"
#include "core/optimizer.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/session_runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

struct PlanUnderTest {
  Schedule schedule;
  std::vector<const CoAccess*> realized;
  int64_t peak_bytes = 0;
};

// One program variant: workload + its two plans + shared inputs + per-plan
// solo reference outputs.
struct Variant {
  Workload w;
  OptimizationResult opt;          // owns the schedules/sharing realized
  std::vector<PlanUnderTest> plans;  // [0] original, [1] optimizer best
  Runtime shared_inputs;
  std::vector<Runtime> refs;  // solo reference outputs per plan
};

void BuildVariant(Variant* v, Env* env, const std::string& tag,
                  uint64_t seed) {
  OptimizerOptions oo;
  oo.max_combination_size = 2;
  v->opt = Optimize(v->w.program, oo);

  auto plan_of = [&](const Plan& p) {
    PlanUnderTest put;
    put.schedule = p.schedule;
    for (int oi : p.opportunities) {
      put.realized.push_back(
          &v->opt.analysis.sharing[static_cast<size_t>(oi)]);
    }
    put.peak_bytes =
        EvaluatePlanCost(v->w.program, put.schedule, put.realized)
            .peak_memory_bytes;
    return put;
  };
  v->plans.push_back(plan_of(v->opt.plans[0]));
  v->plans.push_back(plan_of(v->opt.best()));

  auto shared = OpenStores(env, v->w.program, "/" + tag + "_in");
  shared.status().CheckOK();
  v->shared_inputs = std::move(shared).ValueOrDie();
  InitInputs(v->w, v->shared_inputs, seed).CheckOK();

  // Solo references: private pool, plan-exact serial engine, per plan.
  for (size_t pi = 0; pi < v->plans.size(); ++pi) {
    auto rt = OpenStores(env, v->w.program,
                         "/" + tag + "_ref" + std::to_string(pi));
    rt.status().CheckOK();
    InitInputs(v->w, *rt, seed).CheckOK();
    Executor ex(v->w.program, rt->raw(), v->w.kernels);
    ex.Run(v->plans[pi].schedule, v->plans[pi].realized)
        .status()
        .CheckOK();
    v->refs.push_back(std::move(rt).ValueOrDie());
  }
}

// Session stores: shared inputs, private everything else.
std::vector<BlockStore*> SessionStores(const Variant& v, Runtime& mine) {
  std::vector<BlockStore*> stores = mine.raw();
  for (int arr : v.w.input_arrays) {
    stores[static_cast<size_t>(arr)] =
        v.shared_inputs.stores[static_cast<size_t>(arr)].get();
  }
  return stores;
}

TEST(SessionStressTest, ConcurrentFuzzedSessionsBitExactBudgetedNoLeaks) {
  auto env = NewMemEnv();
  std::vector<Variant> variants(2);
  variants[0].w = MakeExample1(4, 4, 4);
  variants[1].w = MakeExample1(5, 3, 4);
  BuildVariant(&variants[0], env.get(), "va", /*seed=*/11);
  BuildVariant(&variants[1], env.get(), "vb", /*seed=*/23);

  int64_t max_peak = 0;
  for (const Variant& v : variants) {
    for (const PlanUnderTest& p : v.plans) {
      max_peak = std::max(max_peak, p.peak_bytes);
    }
  }
  ASSERT_GT(max_peak, 0);

  int round = 0;
  for (const int nsessions : {2, 4, 8}) {
    SCOPED_TRACE("nsessions " + std::to_string(nsessions));
    // Capacity for ~3 max-size tenants: with 8 sessions admission MUST
    // park some of them and still drain the queue (livelock check).
    SessionRuntimeOptions ro;
    ro.pool_cap_bytes = 3 * max_peak;
    ro.io_threads = 2;
    SessionRuntime runtime(ro);

    struct SessionCase {
      const Variant* variant;
      const PlanUnderTest* plan;
      int depth;
      Runtime rt;
      Result<SessionStats> result = Status::Internal("unset");
    };
    std::vector<SessionCase> cases(static_cast<size_t>(nsessions));
    for (int i = 0; i < nsessions; ++i) {
      SessionCase& c = cases[static_cast<size_t>(i)];
      c.variant = &variants[static_cast<size_t>(i % 2)];
      c.plan = &c.variant->plans[static_cast<size_t>((i / 2) % 2)];
      c.depth = i % 3;
      auto rt = OpenStores(env.get(), c.variant->w.program,
                           "/r" + std::to_string(round) + "_s" +
                               std::to_string(i));
      rt.status().CheckOK();
      c.rt = std::move(rt).ValueOrDie();
    }

    std::vector<std::thread> threads;
    for (int i = 0; i < nsessions; ++i) {
      threads.emplace_back([&runtime, &c = cases[static_cast<size_t>(i)]] {
        SessionSpec spec;
        spec.program = &c.variant->w.program;
        spec.schedule = &c.plan->schedule;
        spec.realized = c.plan->realized;
        spec.stores = SessionStores(*c.variant, c.rt);
        spec.kernels = &c.variant->w.kernels;
        spec.exec.pipeline_depth = c.depth;
        c.result = runtime.Run(spec);
      });
    }
    for (auto& t : threads) t.join();

    for (int i = 0; i < nsessions; ++i) {
      SessionCase& c = cases[static_cast<size_t>(i)];
      SCOPED_TRACE("session " + std::to_string(i));
      ASSERT_TRUE(c.result.ok()) << c.result.status().ToString();
      // Budget enforced: charged bytes never exceeded the admitted slice.
      // (budget_rejections may be transiently nonzero: a shared input
      // frame stays on its first claimant's tab until every tenant's pin
      // drops, so a tenant can be briefly over-charged for a frame only
      // its neighbor still uses — the executor parks and retries, and the
      // peak-charge bound below is what the budget guarantees.)
      EXPECT_LE(c.result->peak_charged_bytes, c.result->budget_bytes);
      // Bit-exact versus this session's own solo serial run.
      const size_t plan_idx =
          static_cast<size_t>(c.plan - c.variant->plans.data());
      const Runtime& ref = c.variant->refs[plan_idx];
      for (int arr : c.variant->w.output_arrays) {
        Status eq = VerifyBitEqual(
            c.variant->w.program.array(arr),
            ref.stores[static_cast<size_t>(arr)].get(),
            c.rt.stores[static_cast<size_t>(arr)].get());
        EXPECT_TRUE(eq.ok()) << eq.ToString();
      }
    }

    // No leaked pins, retentions, or in-flight state in the shared pool.
    BufferPoolSnapshot snap = runtime.pool()->Snapshot();
    EXPECT_EQ(snap.pinned_frames, 0);
    EXPECT_EQ(snap.required_bytes, 0);
    EXPECT_EQ(snap.prefetch_bytes, 0);
    EXPECT_EQ(snap.pending_writebacks, 0);

    RuntimeStats rs = runtime.stats();
    EXPECT_EQ(rs.sessions_completed, nsessions);
    EXPECT_EQ(rs.sessions_failed, 0);
    EXPECT_EQ(rs.sessions_rejected, 0);
    EXPECT_LE(rs.peak_reserved_bytes, ro.pool_cap_bytes);
    EXPECT_GT(rs.bytes_read, 0);
    // Whether any session observably parked depends on timing (a fast
    // tenant may finish before the queue fills); the livelock check is
    // that every session completed above. Deterministic parking is
    // covered by session_runtime_test's gated-kernel case.

    // Retire this round's private stores from the shared pool before
    // their Runtime objects die (address reuse must never alias cache).
    for (SessionCase& c : cases) {
      for (size_t a = 0; a < c.rt.stores.size(); ++a) {
        const int arr = static_cast<int>(a);
        const auto& inputs = c.variant->w.input_arrays;
        if (std::find(inputs.begin(), inputs.end(), arr) != inputs.end()) {
          continue;  // shared input store, still alive
        }
        Status st = runtime.ReleaseStore(c.rt.stores[a].get());
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    }
    ++round;
  }
}

}  // namespace
}  // namespace riot
