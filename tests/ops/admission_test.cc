// Admission-policy suite: the pluggable ordering behind SessionRuntime's
// admission queue. Unit tests pin the decision functions (FIFO never
// overtakes; small-job-first and shortest-work pick among fitting waiters
// with arrival-order ties; aging restores FIFO priority), and integration
// tests drive SessionRuntime end to end: the FIFO-order regression, the
// SJF mouse-overtakes-parked-whale win, and the aging starvation bound.
#include "ops/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cost_model.h"
#include "ops/runtime.h"
#include "ops/session_runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

AdmissionCandidate Cand(int64_t ticket, int64_t footprint, double work = 0,
                        double waited = 0) {
  AdmissionCandidate c;
  c.ticket = ticket;
  c.footprint_bytes = footprint;
  c.expected_work_seconds = work;
  c.waited_seconds = waited;
  return c;
}

TEST(AdmissionPolicyTest, FifoAdmitsHeadWhenItFits) {
  auto p = MakeAdmissionPolicy(AdmissionPolicyKind::kFifo);
  EXPECT_EQ(p->kind(), AdmissionPolicyKind::kFifo);
  EXPECT_EQ(p->PickNext({Cand(1, 100), Cand(2, 50)}, 100), 0);
}

TEST(AdmissionPolicyTest, FifoNeverOvertakesABlockedHead) {
  auto p = MakeAdmissionPolicy(AdmissionPolicyKind::kFifo);
  // The whale at the head does not fit; the mouse behind it would, but
  // FIFO holds the line.
  EXPECT_EQ(p->PickNext({Cand(1, 1000), Cand(2, 10)}, 100), -1);
}

TEST(AdmissionPolicyTest, SmallestFootprintPicksSmallestFitting) {
  auto p = MakeAdmissionPolicy(AdmissionPolicyKind::kSmallestFootprint);
  // Head whale blocked; among the rest, 30 < 50 even though 50 arrived
  // first.
  EXPECT_EQ(
      p->PickNext({Cand(1, 1000), Cand(2, 50), Cand(3, 30)}, 100), 2);
  // Ties break by arrival order.
  EXPECT_EQ(p->PickNext({Cand(1, 1000), Cand(2, 30), Cand(3, 30)}, 100),
            1);
  // Nothing fits: admit no one.
  EXPECT_EQ(p->PickNext({Cand(1, 200), Cand(2, 150)}, 100), -1);
}

TEST(AdmissionPolicyTest, ShortestWorkRanksByExpectedSeconds) {
  auto p = MakeAdmissionPolicy(AdmissionPolicyKind::kShortestWork);
  // All fit; the least expected work wins regardless of footprint.
  EXPECT_EQ(p->PickNext({Cand(1, 10, 9.0), Cand(2, 90, 1.0)}, 100), 1);
  // A shorter job that does NOT fit cannot be picked.
  EXPECT_EQ(p->PickNext({Cand(1, 10, 9.0), Cand(2, 900, 1.0)}, 100), 0);
}

TEST(AdmissionPolicyTest, AgingRestoresFifoPriority) {
  for (auto kind : {AdmissionPolicyKind::kSmallestFootprint,
                    AdmissionPolicyKind::kShortestWork}) {
    auto p = MakeAdmissionPolicy(kind, /*aging_seconds=*/1.0);
    // The head has aged past the bound: nothing may overtake it, even
    // though the mouse fits and the head does not.
    EXPECT_EQ(p->PickNext(
                  {Cand(1, 1000, 9.0, /*waited=*/2.0), Cand(2, 10, 0.1)},
                  100),
              -1)
        << p->name();
    // Once capacity allows, the aged head itself is admitted.
    EXPECT_EQ(p->PickNext(
                  {Cand(1, 1000, 9.0, /*waited=*/2.0), Cand(2, 10, 0.1)},
                  1000),
              0)
        << p->name();
  }
}

TEST(AdmissionPolicyTest, FactoryNamesAreStable) {
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicyKind::kFifo), "fifo");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicyKind::kSmallestFootprint),
               "smallest_footprint");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicyKind::kShortestWork),
               "shortest_work");
  for (auto kind :
       {AdmissionPolicyKind::kFifo, AdmissionPolicyKind::kSmallestFootprint,
        AdmissionPolicyKind::kShortestWork}) {
    auto p = MakeAdmissionPolicy(kind);
    EXPECT_EQ(p->kind(), kind);
    EXPECT_STREQ(p->name(), AdmissionPolicyName(kind));
  }
}

// ---------------------------------------------------------------------
// Integration against SessionRuntime: a gated session occupies the pool
// while others queue, making admission order observable.

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool open = false;

  void WaitStarted() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

// Wraps a workload's first kernel: signal `started`, then block until the
// gate opens (first invocation only blocks; the gate stays open after).
std::vector<StatementKernel> Gated(const Workload& w, Gate* gate) {
  std::vector<StatementKernel> kernels = w.kernels;
  StatementKernel inner = kernels[0];
  kernels[0] = [gate, inner](const std::vector<int64_t>& iter,
                             const std::vector<DenseView*>& views) {
    {
      std::unique_lock<std::mutex> lock(gate->mu);
      gate->started = true;
      gate->cv.notify_all();
      gate->cv.wait(lock, [&] { return gate->open; });
    }
    inner(iter, views);
  };
  return kernels;
}

class AdmissionIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    w_ = MakeExample1(2, 2, 2);
    env_ = NewMemEnv();
    peak_ = EvaluatePlanCost(w_.program, w_.program.original_schedule(), {})
                .peak_memory_bytes;
    sched_ = w_.program.original_schedule();
  }

  Runtime MustOpen(const std::string& dir, uint64_t seed) {
    auto rt = OpenStores(env_.get(), w_.program, dir);
    rt.status().CheckOK();
    InitInputs(w_, *rt, seed).CheckOK();
    return std::move(rt).ValueOrDie();
  }

  SessionSpec Spec(const Runtime& rt, int64_t footprint,
                   const std::vector<StatementKernel>* kernels,
                   double work = 0) {
    SessionSpec spec;
    spec.program = &w_.program;
    spec.schedule = &sched_;
    spec.stores = rt.raw();
    spec.kernels = kernels;
    spec.footprint_bytes = footprint;
    spec.expected_work_seconds = work;
    return spec;
  }

  void WaitParked(SessionRuntime& runtime, int64_t n) {
    for (int i = 0; i < 5000 && runtime.stats().sessions_parked < n; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(runtime.stats().sessions_parked, n);
  }

  Workload w_;
  std::unique_ptr<Env> env_;
  Schedule sched_;
  int64_t peak_ = 0;
};

// The regression: FIFO admits in strict arrival order even when a later
// waiter fits first — exactly the pre-policy behavior.
TEST_F(AdmissionIntegrationTest, FifoHoldsArrivalOrder) {
  Runtime rt_a = MustOpen("/a", 3);
  Runtime rt_whale = MustOpen("/w", 3);
  Runtime rt_mouse = MustOpen("/m", 3);

  SessionRuntimeOptions opts;
  opts.pool_cap_bytes = 3 * peak_;  // A(2p) running; whale(2p) parks;
                                    // mouse(1p) would fit alongside A
  SessionRuntime runtime(opts);

  Gate gate;
  auto gated = Gated(w_, &gate);

  Result<SessionStats> ra = Status::Internal("unset");
  Result<SessionStats> rw = Status::Internal("unset");
  Result<SessionStats> rm = Status::Internal("unset");
  std::thread ta([&] { ra = runtime.Run(Spec(rt_a, 2 * peak_, &gated)); });
  gate.WaitStarted();
  std::thread tw(
      [&] { rw = runtime.Run(Spec(rt_whale, 2 * peak_, &w_.kernels)); });
  WaitParked(runtime, 1);
  std::thread tm(
      [&] { rm = runtime.Run(Spec(rt_mouse, peak_, &w_.kernels)); });
  WaitParked(runtime, 2);

  // FIFO: the mouse must NOT start while the whale is parked ahead of it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(runtime.stats().sessions_completed, 0);
  EXPECT_EQ(runtime.stats().peak_concurrent_sessions, 1);

  gate.Open();
  ta.join();
  tw.join();
  tm.join();
  ASSERT_TRUE(ra.ok() && rw.ok() && rm.ok());
  EXPECT_EQ(runtime.stats().sessions_completed, 3);
}

// The win: small-job-first admits a fitting mouse past a parked whale, so
// the mouse finishes while the whale is still waiting for capacity.
TEST_F(AdmissionIntegrationTest, SjfMouseOvertakesParkedWhale) {
  for (auto kind : {AdmissionPolicyKind::kSmallestFootprint,
                    AdmissionPolicyKind::kShortestWork}) {
    Runtime rt_a = MustOpen("/a" + std::string(AdmissionPolicyName(kind)), 3);
    Runtime rt_whale =
        MustOpen("/w" + std::string(AdmissionPolicyName(kind)), 3);
    Runtime rt_mouse =
        MustOpen("/m" + std::string(AdmissionPolicyName(kind)), 3);

    SessionRuntimeOptions opts;
    opts.pool_cap_bytes = 3 * peak_;
    opts.admission = kind;
    opts.admission_aging_seconds = 60.0;  // aging must not kick in here
    SessionRuntime runtime(opts);

    Gate gate;
    auto gated = Gated(w_, &gate);

    Result<SessionStats> ra = Status::Internal("unset");
    Result<SessionStats> rw = Status::Internal("unset");
    Result<SessionStats> rm = Status::Internal("unset");
    std::thread ta(
        [&] { ra = runtime.Run(Spec(rt_a, 2 * peak_, &gated, 10.0)); });
    gate.WaitStarted();
    std::thread tw([&] {
      rw = runtime.Run(Spec(rt_whale, 2 * peak_, &w_.kernels, 10.0));
    });
    WaitParked(runtime, 1);
    std::thread tm([&] {
      rm = runtime.Run(Spec(rt_mouse, peak_, &w_.kernels, 0.01));
    });

    // The mouse overtakes: it completes while A still blocks the gate and
    // the whale still parks.
    for (int i = 0; i < 5000 && runtime.stats().sessions_completed < 1;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(runtime.stats().sessions_completed, 1)
        << AdmissionPolicyName(kind);
    tm.join();
    ASSERT_TRUE(rm.ok());

    gate.Open();
    ta.join();
    tw.join();
    ASSERT_TRUE(ra.ok() && rw.ok());
    EXPECT_TRUE(rw->parked_for_admission);
    EXPECT_EQ(runtime.stats().sessions_completed, 3);
  }
}

// The bound: with tiny aging, a stream of mice cannot starve the whale —
// once the whale ages, mice stop overtaking until it gets in.
TEST_F(AdmissionIntegrationTest, AgingBoundsWhaleStarvation) {
  Runtime rt_a = MustOpen("/a", 3);
  Runtime rt_whale = MustOpen("/w", 3);
  Runtime rt_mouse = MustOpen("/m", 3);

  SessionRuntimeOptions opts;
  opts.pool_cap_bytes = 3 * peak_;
  opts.admission = AdmissionPolicyKind::kSmallestFootprint;
  opts.admission_aging_seconds = 0.05;  // ages almost immediately
  SessionRuntime runtime(opts);

  Gate gate;
  auto gated = Gated(w_, &gate);

  Result<SessionStats> ra = Status::Internal("unset");
  Result<SessionStats> rw = Status::Internal("unset");
  std::thread ta([&] { ra = runtime.Run(Spec(rt_a, 2 * peak_, &gated)); });
  gate.WaitStarted();
  std::thread tw(
      [&] { rw = runtime.Run(Spec(rt_whale, 2 * peak_, &w_.kernels)); });
  WaitParked(runtime, 1);
  // Let the whale age past the bound, then offer a mouse that fits.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Result<SessionStats> rm = Status::Internal("unset");
  std::thread tm(
      [&] { rm = runtime.Run(Spec(rt_mouse, peak_, &w_.kernels)); });
  WaitParked(runtime, 2);
  // Aged whale holds the line: the mouse must not complete ahead of it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(runtime.stats().sessions_completed, 0);

  gate.Open();
  ta.join();
  tw.join();
  tm.join();
  ASSERT_TRUE(ra.ok() && rw.ok() && rm.ok());
  EXPECT_EQ(runtime.stats().sessions_completed, 3);
}

}  // namespace
}  // namespace riot
