// SessionRuntime fast suite: admission control (reject / park / FIFO),
// per-session budgets charged against the shared pool, cross-session
// input sharing, and bit-exact outputs versus solo serial runs. The heavy
// {2,4,8}-session differential soak lives in session_stress_test.cc.
#include "ops/session_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/cost_model.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

// Serial solo reference: private pool, plan-exact, depth 0.
Runtime MustSoloRun(const Workload& w, Env* env, const std::string& dir,
                    uint64_t seed) {
  auto rt = OpenStores(env, w.program, dir);
  rt.status().CheckOK();
  InitInputs(w, *rt, seed).CheckOK();
  Executor ex(w.program, rt->raw(), w.kernels);
  ex.Run(w.program.original_schedule(), {}).status().CheckOK();
  return std::move(rt).ValueOrDie();
}

int64_t PlanPeakBytes(const Workload& w) {
  return EvaluatePlanCost(w.program, w.program.original_schedule(), {})
      .peak_memory_bytes;
}

TEST(SessionRuntimeTest, RejectsFootprintBeyondCapUpFront) {
  Workload w = MakeExample1(2, 2, 2);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/r");
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(InitInputs(w, *rt, 1).ok());

  SessionRuntimeOptions opts;
  opts.pool_cap_bytes = PlanPeakBytes(w) / 2;  // can never fit, even alone
  SessionRuntime runtime(opts);

  SessionSpec spec;
  spec.program = &w.program;
  Schedule sched = w.program.original_schedule();
  spec.schedule = &sched;
  spec.stores = rt->raw();
  spec.kernels = &w.kernels;
  auto r = runtime.Run(spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(runtime.stats().sessions_rejected, 1);
  EXPECT_EQ(runtime.stats().sessions_completed, 0);
}

TEST(SessionRuntimeTest, SingleSessionBitExactAndWithinBudget) {
  Workload w = MakeExample1(3, 3, 3);
  auto env = NewMemEnv();
  Runtime ref = MustSoloRun(w, env.get(), "/ref", 42);

  auto rt = OpenStores(env.get(), w.program, "/s0");
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(InitInputs(w, *rt, 42).ok());

  SessionRuntimeOptions opts;
  opts.pool_cap_bytes = 4 * PlanPeakBytes(w);
  SessionRuntime runtime(opts);

  SessionSpec spec;
  spec.program = &w.program;
  Schedule sched = w.program.original_schedule();
  spec.schedule = &sched;
  spec.stores = rt->raw();
  spec.kernels = &w.kernels;
  spec.exec.pipeline_depth = 1;  // prefetch through the shared IoPool
  auto r = runtime.Run(spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r->budget_bytes, PlanPeakBytes(w));
  EXPECT_LE(r->peak_charged_bytes, r->budget_bytes);
  EXPECT_GT(r->peak_charged_bytes, 0);
  EXPECT_EQ(r->budget_rejections, 0);
  EXPECT_GT(r->exec.bytes_read, 0);
  for (int arr : w.output_arrays) {
    EXPECT_TRUE(VerifyBitEqual(w.program.array(arr),
                               ref.stores[static_cast<size_t>(arr)].get(),
                               rt->stores[static_cast<size_t>(arr)].get())
                    .ok());
  }
  BufferPoolSnapshot snap = runtime.pool()->Snapshot();
  EXPECT_EQ(snap.pinned_frames, 0);
  EXPECT_EQ(snap.required_bytes, 0);
  EXPECT_EQ(runtime.stats().sessions_completed, 1);
}

TEST(SessionRuntimeTest, ConcurrentSessionsShareInputsBitExact) {
  // Two sessions of the same program over the SAME input stores but
  // private outputs: frames of shared inputs dedup across sessions, and
  // both outputs must equal the solo reference bit for bit.
  Workload w = MakeExample1(4, 4, 4);
  auto env = NewMemEnv();
  Runtime ref = MustSoloRun(w, env.get(), "/ref", 7);

  auto shared = OpenStores(env.get(), w.program, "/shared");
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(InitInputs(w, *shared, 7).ok());

  auto rt_a_or = OpenStores(env.get(), w.program, "/sa");
  auto rt_b_or = OpenStores(env.get(), w.program, "/sb");
  ASSERT_TRUE(rt_a_or.ok() && rt_b_or.ok());
  Runtime rt_a = std::move(rt_a_or).ValueOrDie();
  Runtime rt_b = std::move(rt_b_or).ValueOrDie();

  // Per-session store maps: inputs from the shared runtime, the rest
  // (intermediate C, output E) private.
  auto session_stores = [&](Runtime& mine) {
    std::vector<BlockStore*> stores = mine.raw();
    for (int arr : w.input_arrays) {
      stores[static_cast<size_t>(arr)] =
          shared->stores[static_cast<size_t>(arr)].get();
    }
    return stores;
  };

  SessionRuntimeOptions opts;
  opts.pool_cap_bytes = 3 * PlanPeakBytes(w);
  SessionRuntime runtime(opts);

  Schedule sched = w.program.original_schedule();
  auto run_one = [&](Runtime& mine, int depth,
                     Result<SessionStats>* out) {
    SessionSpec spec;
    spec.program = &w.program;
    spec.schedule = &sched;
    spec.stores = session_stores(mine);
    spec.kernels = &w.kernels;
    spec.exec.pipeline_depth = depth;
    *out = runtime.Run(spec);
  };

  Result<SessionStats> ra = Status::Internal("unset");
  Result<SessionStats> rb = Status::Internal("unset");
  std::thread ta([&] { run_one(rt_a, 0, &ra); });
  std::thread tb([&] { run_one(rt_b, 2, &rb); });
  ta.join();
  tb.join();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_LE(ra->peak_charged_bytes, ra->budget_bytes);
  EXPECT_LE(rb->peak_charged_bytes, rb->budget_bytes);

  for (int arr : w.output_arrays) {
    const ArrayInfo& info = w.program.array(arr);
    EXPECT_TRUE(VerifyBitEqual(info,
                               ref.stores[static_cast<size_t>(arr)].get(),
                               rt_a.stores[static_cast<size_t>(arr)].get())
                    .ok());
    EXPECT_TRUE(VerifyBitEqual(info,
                               ref.stores[static_cast<size_t>(arr)].get(),
                               rt_b.stores[static_cast<size_t>(arr)].get())
                    .ok());
  }
  BufferPoolSnapshot snap = runtime.pool()->Snapshot();
  EXPECT_EQ(snap.pinned_frames, 0);
  EXPECT_EQ(snap.required_bytes, 0);
  RuntimeStats rs = runtime.stats();
  EXPECT_EQ(rs.sessions_completed, 2);
  EXPECT_EQ(rs.sessions_failed, 0);

  // Retiring a private store drops its cache; the shared inputs too.
  EXPECT_TRUE(runtime
                  .ReleaseStore(rt_a.stores[static_cast<size_t>(
                                                w.output_arrays[0])]
                                    .get())
                  .ok());
  for (int arr : w.input_arrays) {
    EXPECT_TRUE(runtime
                    .ReleaseStore(
                        shared->stores[static_cast<size_t>(arr)].get())
                    .ok());
  }
}

TEST(SessionRuntimeTest, AdmissionParksUntilCapacityFrees) {
  // Deterministic parking: session A's kernel blocks on a gate while B —
  // whose reservation cannot coexist with A's — queues behind it. B must
  // be admitted only after A completes, and both must succeed.
  Workload w = MakeExample1(2, 2, 2);
  auto env = NewMemEnv();
  const int64_t peak = PlanPeakBytes(w);

  auto rt_a = OpenStores(env.get(), w.program, "/a");
  auto rt_b = OpenStores(env.get(), w.program, "/b");
  ASSERT_TRUE(rt_a.ok() && rt_b.ok());
  ASSERT_TRUE(InitInputs(w, *rt_a, 3).ok());
  ASSERT_TRUE(InitInputs(w, *rt_b, 3).ok());

  SessionRuntimeOptions opts;
  opts.pool_cap_bytes = 3 * peak;  // fits one 2*peak reservation, not two
  SessionRuntime runtime(opts);

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool a_started = false;
  bool gate_open = false;

  // A's kernels signal entry and wait for the gate on first invocation.
  std::vector<StatementKernel> gated = w.kernels;
  StatementKernel inner = gated[0];
  gated[0] = [&, inner](const std::vector<int64_t>& iter,
                        const std::vector<DenseView*>& views) {
    {
      std::unique_lock<std::mutex> lock(gate_mu);
      a_started = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    inner(iter, views);
  };

  Schedule sched = w.program.original_schedule();
  auto make_spec = [&](const Runtime& rt,
                       const std::vector<StatementKernel>* kernels) {
    SessionSpec spec;
    spec.program = &w.program;
    spec.schedule = &sched;
    spec.stores = rt.raw();
    spec.kernels = kernels;
    spec.footprint_bytes = 2 * peak;
    return spec;
  };

  Result<SessionStats> ra = Status::Internal("unset");
  Result<SessionStats> rb = Status::Internal("unset");
  std::thread ta([&] { ra = runtime.Run(make_spec(*rt_a, &gated)); });
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return a_started; });
  }
  // A is admitted and running (blocked in its kernel); B cannot fit.
  std::thread tb([&] { rb = runtime.Run(make_spec(*rt_b, &w.kernels)); });
  // Wait until B is observably parked in the admission queue.
  for (int i = 0; i < 2000 && runtime.stats().sessions_parked == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(runtime.stats().sessions_parked, 1);
  EXPECT_EQ(runtime.stats().sessions_completed, 0);
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  ta.join();
  tb.join();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_TRUE(rb->parked_for_admission);
  RuntimeStats rs = runtime.stats();
  EXPECT_EQ(rs.sessions_completed, 2);
  EXPECT_EQ(rs.sessions_parked, 1);
  EXPECT_LE(rs.peak_reserved_bytes, opts.pool_cap_bytes);
  EXPECT_EQ(rs.peak_concurrent_sessions, 1);
}

TEST(SessionRuntimeTest, ParkTimeoutGiveUpLeaksNothing) {
  // Fault injection for the starved-fetch give-up path: a session whose
  // declared footprint (hence pool budget) is too small for even one
  // block deterministically starves — every fetch is a budget rejection,
  // the executor parks-and-retries, and after park_timeout_seconds it
  // gives up with kResourceExhausted. The give-up must leak nothing: no
  // pins, no load latches, no admission reservation — the co-tenant
  // running beside it finishes bit-exact, and a follow-up session needing
  // the WHOLE cap (proof the reservation was returned) reusing the SAME
  // stores (proof no latch/pin survived on their frames) runs clean.
  Workload w = MakeExample1(2, 2, 2);
  auto env = NewMemEnv();
  Runtime ref = MustSoloRun(w, env.get(), "/ref", 3);
  const int64_t peak = PlanPeakBytes(w);

  auto rt_a = OpenStores(env.get(), w.program, "/a");
  auto rt_b = OpenStores(env.get(), w.program, "/b");
  ASSERT_TRUE(rt_a.ok() && rt_b.ok());
  ASSERT_TRUE(InitInputs(w, *rt_a, 3).ok());
  ASSERT_TRUE(InitInputs(w, *rt_b, 3).ok());

  SessionRuntimeOptions opts;
  opts.pool_cap_bytes = 4 * peak;
  opts.park_timeout_seconds = 0.05;  // starved fetches give up fast
  SessionRuntime runtime(opts);

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool a_started = false;
  bool gate_open = false;
  std::vector<StatementKernel> gated = w.kernels;
  StatementKernel inner = gated[0];
  gated[0] = [&, inner](const std::vector<int64_t>& iter,
                        const std::vector<DenseView*>& views) {
    {
      std::unique_lock<std::mutex> lock(gate_mu);
      a_started = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    inner(iter, views);
  };

  Schedule sched = w.program.original_schedule();
  auto make_spec = [&](const Runtime& rt,
                       const std::vector<StatementKernel>* kernels,
                       int64_t footprint) {
    SessionSpec spec;
    spec.program = &w.program;
    spec.schedule = &sched;
    spec.stores = rt.raw();
    spec.kernels = kernels;
    spec.footprint_bytes = footprint;
    return spec;
  };

  Result<SessionStats> ra = Status::Internal("unset");
  std::thread ta(
      [&] { ra = runtime.Run(make_spec(*rt_a, &gated, 2 * peak)); });
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return a_started; });
  }

  // B: a 16-byte budget cannot hold any block — starves and gives up.
  auto rb = runtime.Run(make_spec(*rt_b, &w.kernels, 16));
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(rb.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(runtime.stats().sessions_failed, 1);

  // The co-tenant was never disturbed.
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  ta.join();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  for (int arr : w.output_arrays) {
    const ArrayInfo& info = w.program.array(arr);
    EXPECT_TRUE(VerifyBitEqual(info,
                               ref.stores[static_cast<size_t>(arr)].get(),
                               rt_a->stores[static_cast<size_t>(arr)].get())
                    .ok());
  }

  // No pins or required bytes survive the give-up.
  BufferPoolSnapshot snap = runtime.pool()->Snapshot();
  EXPECT_EQ(snap.pinned_frames, 0);
  EXPECT_EQ(snap.required_bytes, 0);

  // Full-cap follow-up over B's stores: admits without parking (the dead
  // session's reservation is gone) and runs to a bit-exact finish (its
  // frames carry no stale latch or pin).
  auto rc = runtime.Run(make_spec(*rt_b, &w.kernels, 4 * peak));
  ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  EXPECT_FALSE(rc->parked_for_admission);
  EXPECT_LE(rc->peak_charged_bytes, rc->budget_bytes);
  for (int arr : w.output_arrays) {
    const ArrayInfo& info = w.program.array(arr);
    EXPECT_TRUE(VerifyBitEqual(info,
                               ref.stores[static_cast<size_t>(arr)].get(),
                               rt_b->stores[static_cast<size_t>(arr)].get())
                    .ok());
  }
  EXPECT_EQ(runtime.stats().sessions_completed, 2);
}

}  // namespace
}  // namespace riot
