// Workload factory tests: paper table shapes, kernel correctness at small
// scale, and runtime helpers.
#include "ops/workload.h"

#include <gtest/gtest.h>

#include "exec/verify.h"
#include "kernels/dense.h"
#include "ops/runtime.h"
#include "storage/env.h"

namespace riot {
namespace {

TEST(WorkloadTest, AddMulMatchesTable2) {
  Workload w = MakeAddMul(1);  // paper scale
  const Program& p = w.program;
  ASSERT_EQ(p.arrays().size(), 5u);
  // A, B, C: 12x12 blocks of 6000x4000 -> 25.6 GB total each.
  for (int id : {0, 1, 2}) {
    const ArrayInfo& a = p.array(id);
    EXPECT_EQ(a.grid, (std::vector<int64_t>{12, 12}));
    EXPECT_EQ(a.block_elems, (std::vector<int64_t>{6000, 4000}));
    EXPECT_NEAR(a.TotalBytes() / 1e9, 27.6, 0.5);  // 25.6 GiB = 27.6 GB
  }
  // D: 12x1 of 4000x5000 -> 1.8 GiB; E: 12x1 of 6000x5000 -> 2.7 GiB.
  EXPECT_EQ(p.array(3).grid, (std::vector<int64_t>{12, 1}));
  EXPECT_NEAR(p.array(3).TotalBytes() / 1e9, 1.92, 0.05);
  EXPECT_EQ(p.array(4).grid, (std::vector<int64_t>{12, 1}));
  EXPECT_NEAR(p.array(4).TotalBytes() / 1e9, 2.88, 0.05);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(WorkloadTest, AddMulTallKeepsTotalsWithTallerBlocks) {
  Workload w = MakeAddMulTall(1);
  // Paper Section 6.1 (club plan): block rows 6000 -> 9000; same matrices,
  // so 8x12 grid of 9000x4000 keeps A's total size.
  const ArrayInfo& a = w.program.array(0);
  EXPECT_EQ(a.grid, (std::vector<int64_t>{8, 12}));
  EXPECT_EQ(a.block_elems, (std::vector<int64_t>{9000, 4000}));
  EXPECT_EQ(a.TotalBytes(), MakeAddMul(1).program.array(0).TotalBytes());
}

TEST(WorkloadTest, TwoMatMulMatchesTable3) {
  Workload wa = MakeTwoMatMul(TwoMatMulConfig::kConfigA, 1);
  EXPECT_EQ(wa.program.array(0).grid, (std::vector<int64_t>{6, 6}));
  EXPECT_EQ(wa.program.array(0).block_elems,
            (std::vector<int64_t>{8000, 7000}));
  Workload wb = MakeTwoMatMul(TwoMatMulConfig::kConfigB, 1);
  EXPECT_EQ(wb.program.array(0).grid, (std::vector<int64_t>{18, 6}));
  EXPECT_EQ(wb.program.array(0).block_elems,
            (std::vector<int64_t>{2000, 8000}));
  // Total sizes from Table 3 (GB, decimal), Config B: A 12.8, B 8.4, C 6.4,
  // D 10.0, E 7.6.
  EXPECT_NEAR(wb.program.array(0).TotalBytes() / 1e9, 13.8, 1.0);
  EXPECT_TRUE(wa.program.Validate().ok());
  EXPECT_TRUE(wb.program.Validate().ok());
}

TEST(WorkloadTest, LinRegMatchesTable4) {
  Workload w = MakeLinReg(1);
  ASSERT_EQ(w.program.statements().size(), 7u);  // 7-step program
  const ArrayInfo& x = w.program.array(0);
  EXPECT_EQ(x.grid, (std::vector<int64_t>{25, 1}));
  EXPECT_EQ(x.block_elems, (std::vector<int64_t>{60000, 4000}));
  EXPECT_NEAR(x.TotalBytes() / 1e9, 48.0, 1.0);  // 44.7 GiB
  EXPECT_TRUE(w.program.Validate().ok());
}

TEST(WorkloadTest, ScaleDividesBlockDims) {
  Workload w = MakeAddMul(40);
  EXPECT_EQ(w.program.array(0).block_elems,
            (std::vector<int64_t>{150, 100}));
  // Grids are scale-invariant.
  EXPECT_EQ(w.program.array(0).grid, (std::vector<int64_t>{12, 12}));
}

TEST(WorkloadTest, LinRegComputesOrdinaryLeastSquares) {
  // Execute the whole 7-step pipeline at tiny scale and validate the
  // statistical identities: U = X'X, beta solves U beta = X'Y, and
  // RSS = ||Y - X beta||^2 per response column.
  const int64_t scale = 400;  // X blocks 150x10, k=1 response column... 400/400=1
  Workload w = MakeLinReg(scale);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/lr");
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(InitInputs(w, *rt, 17).ok());
  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const ArrayInfo& xi = w.program.array(0);
  const ArrayInfo& yi = w.program.array(1);
  auto x = ReadWholeArray(xi, rt->stores[0].get()).ValueOrDie();
  auto y = ReadWholeArray(yi, rt->stores[1].get()).ValueOrDie();
  auto beta =
      ReadWholeArray(w.program.array(5), rt->stores[5].get()).ValueOrDie();
  auto rss =
      ReadWholeArray(w.program.array(8), rt->stores[8].get()).ValueOrDie();

  const int64_t m = xi.block_elems[1];        // predictors
  const int64_t kcols = yi.block_elems[1];    // responses
  const int64_t rows_per_block = xi.block_elems[0];
  const int64_t nb = xi.grid[0];
  // Normal equations residual: X'(Y - X beta) should be ~0.
  std::vector<double> resid(static_cast<size_t>(m * kcols), 0.0);
  for (int64_t b = 0; b < nb; ++b) {
    const double* xb = x.data() + b * xi.ElemsPerBlock();
    const double* yb = y.data() + b * yi.ElemsPerBlock();
    for (int64_t r = 0; r < rows_per_block; ++r) {
      for (int64_t c = 0; c < kcols; ++c) {
        double e = yb[c * rows_per_block + r];
        for (int64_t f = 0; f < m; ++f) {
          e -= xb[f * rows_per_block + r] * beta[static_cast<size_t>(c * m + f)];
        }
        for (int64_t f = 0; f < m; ++f) {
          resid[static_cast<size_t>(c * m + f)] +=
              xb[f * rows_per_block + r] * e;
        }
      }
    }
  }
  for (double v : resid) EXPECT_NEAR(v, 0.0, 1e-6);
  // RSS equals the residual sum of squares.
  for (int64_t c = 0; c < kcols; ++c) {
    double expect = 0.0;
    for (int64_t b = 0; b < nb; ++b) {
      const double* xb = x.data() + b * xi.ElemsPerBlock();
      const double* yb = y.data() + b * yi.ElemsPerBlock();
      for (int64_t r = 0; r < rows_per_block; ++r) {
        double e = yb[c * rows_per_block + r];
        for (int64_t f = 0; f < m; ++f) {
          e -= xb[f * rows_per_block + r] * beta[static_cast<size_t>(c * m + f)];
        }
        expect += e * e;
      }
    }
    EXPECT_NEAR(rss[static_cast<size_t>(c)], expect,
                1e-6 * std::max(1.0, expect));
  }
}

TEST(RuntimeTest, ZeroArrayZeroes) {
  ArrayInfo info;
  info.name = "Z";
  info.grid = {2, 2};
  info.block_elems = {4, 4};
  auto env = NewMemEnv();
  auto store = OpenDaf(env.get(), "/z", info.BlockBytes(), info.NumBlocks());
  ASSERT_TRUE(ZeroArray(info, store->get()).ok());
  auto all = ReadWholeArray(info, store->get()).ValueOrDie();
  for (double v : all) EXPECT_EQ(v, 0.0);
}

TEST(RuntimeTest, InitInputsDeterministic) {
  Workload w = MakeExample1(2, 2, 1);
  auto env = NewMemEnv();
  auto rt1 = OpenStores(env.get(), w.program, "/a");
  auto rt2 = OpenStores(env.get(), w.program, "/b");
  ASSERT_TRUE(InitInputs(w, *rt1, 9).ok());
  ASSERT_TRUE(InitInputs(w, *rt2, 9).ok());
  for (int arr : w.input_arrays) {
    auto d = MaxAbsDifference(w.program.array(arr),
                              rt1->stores[static_cast<size_t>(arr)].get(),
                              rt2->stores[static_cast<size_t>(arr)].get());
    EXPECT_EQ(*d, 0.0);
  }
}

}  // namespace
}  // namespace riot
