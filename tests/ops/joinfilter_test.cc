// Pig/relational-style workload tests: FILTER + block nested-loop join
// (paper Section 4.1 generality claim).
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/verify.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

// Quantized keys so the equi-join has matches; key 0 never occurs in R/S
// (it marks filtered tuples).
Status InitRelations(const Workload& w, const Runtime& rt, uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (int id : w.input_arrays) {
    const ArrayInfo& arr = w.program.array(id);
    std::vector<double> buf(static_cast<size_t>(arr.ElemsPerBlock()));
    for (int64_t b = 0; b < arr.NumBlocks(); ++b) {
      DenseView v{buf.data(), arr.block_elems[0], arr.block_elems[1]};
      for (int64_t row = 0; row < v.rows; ++row) {
        // Keys in {-3..-1, 1..5}; R side will filter keys <= 0.
        int64_t key = static_cast<int64_t>(rng() % 9) - 3;
        if (key >= 0) key += 1;
        v.At(row, 0) = static_cast<double>(key);
        v.At(row, 1) = static_cast<double>(rng() % 100);
      }
      RIOT_RETURN_NOT_OK(
          rt.stores[static_cast<size_t>(id)]->WriteBlock(b, buf.data()));
    }
  }
  return Status::OK();
}

TEST(JoinFilterTest, SharingOpportunitiesIncludePipelineAndReuse) {
  Workload w = MakeJoinFilter(3, 4);
  ASSERT_TRUE(w.program.Validate().ok());
  AnalysisResult a = AnalyzeProgram(w.program);
  std::set<std::string> labels;
  for (const auto& o : a.sharing) labels.insert(o.Label(w.program));
  EXPECT_TRUE(labels.count("s1WU->s2RU"));  // pipeline FILTER into JOIN
  EXPECT_TRUE(labels.count("s2RU->s2RU"));  // reuse U across j
  EXPECT_TRUE(labels.count("s2RS->s2RS"));  // reuse S across i
}

TEST(JoinFilterTest, JoinCountsMatchBruteForce) {
  const int64_t nr = 3, ns = 4, rows = 16;
  Workload w = MakeJoinFilter(nr, ns, rows);
  auto env = NewMemEnv();
  auto rt = OpenStores(env.get(), w.program, "/jf");
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(InitRelations(w, *rt, 77).ok());

  Executor ex(w.program, rt->raw(), w.kernels);
  auto stats = ex.Run(w.program.original_schedule(), {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Brute force from the raw relations.
  auto r_data = ReadWholeArray(w.program.array(0), rt->stores[0].get())
                    .ValueOrDie();
  auto s_data = ReadWholeArray(w.program.array(2), rt->stores[2].get())
                    .ValueOrDie();
  auto t_data = ReadWholeArray(w.program.array(3), rt->stores[3].get())
                    .ValueOrDie();
  const ArrayInfo& rel = w.program.array(0);
  const ArrayInfo& t_info = w.program.array(3);
  for (int64_t i = 0; i < nr; ++i) {
    for (int64_t j = 0; j < ns; ++j) {
      double expect = 0;
      for (int64_t a = 0; a < rows; ++a) {
        double key = r_data[static_cast<size_t>(i * rel.ElemsPerBlock() + a)];
        if (key <= 0) continue;  // FILTER drops non-positive keys
        for (int64_t b = 0; b < rows; ++b) {
          double skey =
              s_data[static_cast<size_t>(j * rel.ElemsPerBlock() + b)];
          if (skey == key) expect += 1;
        }
      }
      double got =
          t_data[static_cast<size_t>(t_info.LinearBlockIndex({i, j}))];
      EXPECT_EQ(got, expect) << "T[" << i << "," << j << "]";
    }
  }
}

TEST(JoinFilterTest, OptimizedPlansEquivalentAndExact) {
  Workload w = MakeJoinFilter(3, 3);
  OptimizationResult r = Optimize(w.program);
  EXPECT_GE(r.plans.size(), 4u);
  auto env = NewMemEnv();
  auto ref = OpenStores(env.get(), w.program, "/ref");
  ASSERT_TRUE(InitRelations(w, *ref, 5).ok());
  {
    Executor ex(w.program, ref->raw(), w.kernels);
    ASSERT_TRUE(ex.Run(w.program.original_schedule(), {}).ok());
  }
  for (size_t pi = 1; pi < r.plans.size(); ++pi) {
    const Plan& plan = r.plans[pi];
    auto rt = OpenStores(env.get(), w.program, "/p" + std::to_string(pi));
    ASSERT_TRUE(InitRelations(w, *rt, 5).ok());
    std::vector<const CoAccess*> q;
    for (int oi : plan.opportunities) {
      q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
    }
    ExecOptions eo;
    eo.memory_cap_bytes = plan.cost.peak_memory_bytes;
    Executor ex(w.program, rt->raw(), w.kernels, eo);
    auto stats = ex.Run(plan.schedule, q);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->bytes_read, plan.cost.read_bytes);
    EXPECT_EQ(stats->bytes_written, plan.cost.write_bytes);
    auto diff = MaxAbsDifference(w.program.array(3), ref->stores[3].get(),
                                 rt->stores[3].get());
    EXPECT_EQ(*diff, 0.0);
  }
}

TEST(JoinFilterTest, BestPlanPipelinesFilteredRelation) {
  // The filtered intermediate U should never be materialized when the best
  // plan pipelines it into the join's first outer iteration and keeps it.
  Workload w = MakeJoinFilter(4, 4);
  OptimizationResult r = Optimize(w.program);
  const Plan& best = r.best();
  EXPECT_LT(best.cost.TotalBytes(), r.plans[0].cost.TotalBytes());
  std::set<std::string> labels;
  for (int oi : best.opportunities) {
    labels.insert(r.analysis.sharing[static_cast<size_t>(oi)].Label(w.program));
  }
  EXPECT_TRUE(labels.count("s1WU->s2RU") || labels.count("s2RU->s2RU"))
      << "best plan should exploit U somehow: "
      << best.DescribeOpportunities(w.program, r.analysis.sharing);
}

}  // namespace
}  // namespace riot
