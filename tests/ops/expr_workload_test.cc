// Differential acceptance for the expression front end: the expression-
// built 2mm and linreg must produce bit-identical outputs and identical
// optimizer plans / I/O counts to the hand-built IR + hand-written kernels
// they replaced. The legacy constructions live here, verbatim, as the
// reference. Also covers the two expression-native workloads (ridge,
// covariance): CSE materialization, scratch-temporary write elision
// visible in ExecStats, and statistical sanity of the results.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "linalg/rational.h"
#include "exec/verify.h"
#include "ir/builder.h"
#include "kernels/dense.h"
#include "ops/runtime.h"
#include "ops/workload.h"
#include "storage/env.h"

namespace riot {
namespace {

// --------------------------------------------------------------------------
// The pre-expression hand-built constructions (reference semantics).
// --------------------------------------------------------------------------

ArrayInfo LegacyMatrix(const std::string& name, int64_t grid_r,
                       int64_t grid_c, int64_t block_r, int64_t block_c,
                       int64_t scale, bool persistent = true) {
  ArrayInfo a;
  a.name = name;
  a.grid = {grid_r, grid_c};
  a.block_elems = {block_r / scale, block_c / scale};
  a.persistent = persistent;
  return a;
}

int LegacyMultiply(Program* p, int c, int d, int e, int64_t n1, int64_t n3,
                   int64_t n2, int nest, const std::string& name) {
  Statement s;
  s.name = name;
  s.iters = {"i", "j", "k"};
  s.domain =
      RectDomain({{0, n1 - 1}, {0, n3 - 1}, {0, n2 - 1}}, {"i", "j", "k"});
  s.accesses.push_back(Read(c, {{1, 0, 0, 0}, {0, 0, 1, 0}}));  // C[i,k]
  s.accesses.push_back(Read(d, {{0, 0, 1, 0}, {0, 1, 0, 0}}));  // D[k,j]
  Access re = Read(e, {{1, 0, 0, 0}, {0, 1, 0, 0}});            // E[i,j]
  re.guard = GuardGe(s.domain, 2, 1);
  s.accesses.push_back(std::move(re));
  s.accesses.push_back(Write(e, {{1, 0, 0, 0}, {0, 1, 0, 0}}));
  return p->AddStatement(std::move(s), nest, 0);
}

StatementKernel LegacyMulKernel() {
  return [](const std::vector<int64_t>& iter,
            const std::vector<DenseView*>& v) {
    BlockGemm(*v[0], false, *v[1], false, v[3], iter[2] > 0);
  };
}

Workload LegacyTwoMatMulA(int64_t scale) {
  Workload w;
  w.name = "twomm_a_legacy";
  Program& p = w.program;
  int64_t n1 = 6, n3 = 6, n2 = 10, n4 = 10;
  int a = p.AddArray(LegacyMatrix("A", n1, n3, 8000, 7000, scale));
  int b = p.AddArray(LegacyMatrix("B", n3, n2, 7000, 3000, scale));
  int c = p.AddArray(LegacyMatrix("C", n1, n2, 8000, 3000, scale));
  int d = p.AddArray(LegacyMatrix("D", n3, n4, 7000, 3000, scale));
  int e = p.AddArray(LegacyMatrix("E", n1, n4, 8000, 3000, scale));
  LegacyMultiply(&p, a, b, c, n1, n2, n3, /*nest=*/0, "s1");
  LegacyMultiply(&p, a, d, e, n1, n4, n3, /*nest=*/1, "s2");
  w.kernels = {LegacyMulKernel(), LegacyMulKernel()};
  w.input_arrays = {a, b, d};
  w.output_arrays = {c, e};
  return w;
}

Workload LegacyLinReg(int64_t scale) {
  Workload w;
  w.name = "linreg_legacy";
  Program& p = w.program;
  const int64_t nb = 25;
  int x = p.AddArray(LegacyMatrix("X", nb, 1, 60000, 4000, scale));
  int y = p.AddArray(LegacyMatrix("Y", nb, 1, 60000, 400, scale));
  int u = p.AddArray(LegacyMatrix("U", 1, 1, 4000, 4000, scale));
  int v = p.AddArray(LegacyMatrix("V", 1, 1, 4000, 400, scale));
  int wm = p.AddArray(LegacyMatrix("W", 1, 1, 4000, 4000, scale));
  int beta = p.AddArray(LegacyMatrix("Bh", 1, 1, 4000, 400, scale));
  int yhat = p.AddArray(
      LegacyMatrix("Yh", nb, 1, 60000, 400, scale, /*persistent=*/false));
  int eres = p.AddArray(
      LegacyMatrix("Er", nb, 1, 60000, 400, scale, /*persistent=*/false));
  int rss = p.AddArray(LegacyMatrix("R", 1, 1, scale, 400, scale));

  auto dom_k = RectDomain({{0, nb - 1}}, {"k"});
  auto dom_1 = RectDomain({{0, 0}}, {"z"});

  {  // s1: U += X[k]' X[k]
    Statement s;
    s.name = "s1";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(x, {{1, 0}, {0, 0}}));
    Access ru = Read(u, {{0, 0}, {0, 0}});
    ru.guard = GuardGe(dom_k, 0, 1);
    s.accesses.push_back(std::move(ru));
    s.accesses.push_back(Write(u, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 0, 0);
    w.kernels.push_back([](const std::vector<int64_t>& iter,
                           const std::vector<DenseView*>& vv) {
      BlockGemm(*vv[0], true, *vv[0], false, vv[2], iter[0] > 0);
    });
  }
  {  // s2: V += X[k]' Y[k]
    Statement s;
    s.name = "s2";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(x, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Read(y, {{1, 0}, {0, 0}}));
    Access rv = Read(v, {{0, 0}, {0, 0}});
    rv.guard = GuardGe(dom_k, 0, 1);
    s.accesses.push_back(std::move(rv));
    s.accesses.push_back(Write(v, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 1, 0);
    w.kernels.push_back([](const std::vector<int64_t>& iter,
                           const std::vector<DenseView*>& vv) {
      BlockGemm(*vv[0], true, *vv[1], false, vv[3], iter[0] > 0);
    });
  }
  {  // s3: W = U^-1
    Statement s;
    s.name = "s3";
    s.iters = {"z"};
    s.domain = dom_1;
    s.accesses.push_back(Read(u, {{0, 0}, {0, 0}}));
    s.accesses.push_back(Write(wm, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 2, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& vv) {
      BlockInverse(*vv[0], vv[1]).CheckOK();
    });
  }
  {  // s4: beta = W V
    Statement s;
    s.name = "s4";
    s.iters = {"z"};
    s.domain = dom_1;
    s.accesses.push_back(Read(wm, {{0, 0}, {0, 0}}));
    s.accesses.push_back(Read(v, {{0, 0}, {0, 0}}));
    s.accesses.push_back(Write(beta, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 3, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& vv) {
      BlockGemm(*vv[0], false, *vv[1], false, vv[2], false);
    });
  }
  {  // s5: Yhat[k] = X[k] beta
    Statement s;
    s.name = "s5";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(x, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Read(beta, {{0, 0}, {0, 0}}));
    s.accesses.push_back(Write(yhat, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 4, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& vv) {
      BlockGemm(*vv[0], false, *vv[1], false, vv[2], false);
    });
  }
  {  // s6: E[k] = Y[k] - Yhat[k]
    Statement s;
    s.name = "s6";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(y, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Read(yhat, {{1, 0}, {0, 0}}));
    s.accesses.push_back(Write(eres, {{1, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 5, 0);
    w.kernels.push_back([](const std::vector<int64_t>&,
                           const std::vector<DenseView*>& vv) {
      BlockSub(*vv[0], *vv[1], vv[2]);
    });
  }
  {  // s7: R += column sums of squares of E[k]
    Statement s;
    s.name = "s7";
    s.iters = {"k"};
    s.domain = dom_k;
    s.accesses.push_back(Read(eres, {{1, 0}, {0, 0}}));
    Access rr = Read(rss, {{0, 0}, {0, 0}});
    rr.guard = GuardGe(dom_k, 0, 1);
    s.accesses.push_back(std::move(rr));
    s.accesses.push_back(Write(rss, {{0, 0}, {0, 0}}));
    p.AddStatement(std::move(s), 6, 0);
    w.kernels.push_back([](const std::vector<int64_t>& iter,
                           const std::vector<DenseView*>& vv) {
      DenseView* out = vv[2];
      if (iter[0] == 0) BlockFillConst(out, 0.0);
      const DenseView& e = *vv[0];
      for (int64_t c = 0; c < e.cols; ++c) {
        double sum = 0.0;
        for (int64_t r = 0; r < e.rows; ++r) sum += e.At(r, c) * e.At(r, c);
        out->At(0, c) += sum;
      }
    });
  }
  w.input_arrays = {x, y};
  w.output_arrays = {beta, rss};
  return w;
}

// --------------------------------------------------------------------------
// Differential harness: run both variants' best plans, compare everything.
// --------------------------------------------------------------------------

struct RunResult {
  ExecStats stats;
  Runtime rt;
};

RunResult RunPlanOn(const Workload& w, Env* env, const std::string& dir,
                    const Plan& plan, const OptimizationResult& r) {
  auto rt = OpenStores(env, w.program, dir);
  EXPECT_TRUE(rt.ok());
  EXPECT_TRUE(InitInputs(w, *rt, /*seed=*/77).ok());
  std::vector<const CoAccess*> q;
  for (int oi : plan.opportunities) {
    q.push_back(&r.analysis.sharing[static_cast<size_t>(oi)]);
  }
  ExecOptions eo;
  eo.memory_cap_bytes = plan.cost.peak_memory_bytes;
  Executor ex(w.program, rt->raw(), w.kernels, eo);
  auto stats = ex.Run(plan.schedule, q);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return RunResult{*stats, std::move(rt).ValueOrDie()};
}

void ExpectSamePlansAndBits(const Workload& modern, const Workload& legacy,
                            const OptimizerOptions& opts) {
  // Array layout identical: ids, names, shapes, persistence. This is what
  // makes InitInputs (seeded by array id) byte-identical across variants.
  ASSERT_EQ(modern.program.arrays().size(), legacy.program.arrays().size());
  for (size_t i = 0; i < modern.program.arrays().size(); ++i) {
    const ArrayInfo& m = modern.program.array(static_cast<int>(i));
    const ArrayInfo& l = legacy.program.array(static_cast<int>(i));
    EXPECT_EQ(m.name, l.name);
    EXPECT_EQ(m.grid, l.grid);
    EXPECT_EQ(m.block_elems, l.block_elems);
    EXPECT_EQ(m.persistent, l.persistent);
  }
  ASSERT_EQ(modern.input_arrays, legacy.input_arrays);
  ASSERT_EQ(modern.output_arrays, legacy.output_arrays);

  OptimizationResult rm = Optimize(modern.program, opts);
  OptimizationResult rl = Optimize(legacy.program, opts);

  // Identical plan spaces: same count, same sharing labels, and the same
  // best-plan cost triple.
  EXPECT_EQ(rm.analysis.sharing.size(), rl.analysis.sharing.size());
  ASSERT_EQ(rm.plans.size(), rl.plans.size());
  EXPECT_EQ(rm.best().cost.read_bytes, rl.best().cost.read_bytes);
  EXPECT_EQ(rm.best().cost.write_bytes, rl.best().cost.write_bytes);
  EXPECT_EQ(rm.best().cost.peak_memory_bytes,
            rl.best().cost.peak_memory_bytes);
  EXPECT_EQ(rm.best()
                .DescribeOpportunities(modern.program, rm.analysis.sharing),
            rl.best()
                .DescribeOpportunities(legacy.program, rl.analysis.sharing));

  // Execute original and best plans on both; identical measured I/O and
  // bit-identical outputs.
  auto env = NewMemEnv();
  for (const char* which : {"orig", "best"}) {
    const bool best = std::string(which) == "best";
    const Plan& pm = best ? rm.best() : rm.plans[0];
    const Plan& pl = best ? rl.best() : rl.plans[0];
    RunResult mm =
        RunPlanOn(modern, env.get(), std::string("/m_") + which, pm, rm);
    RunResult ll =
        RunPlanOn(legacy, env.get(), std::string("/l_") + which, pl, rl);
    EXPECT_EQ(mm.stats.bytes_read, ll.stats.bytes_read) << which;
    EXPECT_EQ(mm.stats.bytes_written, ll.stats.bytes_written) << which;
    EXPECT_EQ(mm.stats.block_reads, ll.stats.block_reads) << which;
    EXPECT_EQ(mm.stats.block_writes, ll.stats.block_writes) << which;
    EXPECT_EQ(mm.stats.peak_required_bytes, ll.stats.peak_required_bytes)
        << which;
    for (int arr : modern.output_arrays) {
      EXPECT_TRUE(
          VerifyBitEqual(modern.program.array(arr),
                         ll.rt.stores[static_cast<size_t>(arr)].get(),
                         mm.rt.stores[static_cast<size_t>(arr)].get())
              .ok())
          << which << " array " << modern.program.array(arr).name;
    }
  }
}

TEST(ExprWorkloadTest, TwoMatMulMatchesLegacyHandBuiltExactly) {
  ExpectSamePlansAndBits(MakeTwoMatMul(TwoMatMulConfig::kConfigA, 1000),
                         LegacyTwoMatMulA(1000), OptimizerOptions{});
}

TEST(ExprWorkloadTest, LinRegMatchesLegacyHandBuiltExactly) {
  OptimizerOptions opts;
  opts.max_combination_size = 2;  // keep the 7-statement search fast
  // 400: the largest scale dividing every linreg dimension (Y has 400 cols).
  ExpectSamePlansAndBits(MakeLinReg(400), LegacyLinReg(400), opts);
}

// --------------------------------------------------------------------------
// Expression-native workloads: CSE + scratch-temporary elision.
// --------------------------------------------------------------------------

TEST(ExprWorkloadTest, RidgeSharesGramMatrixAndElidesScratchWrites) {
  Workload w = MakeRidge(/*scale=*/100);
  // CSE: one gemm computing X'X, one computing X'y — 8 statements total
  // for two lambdas (10 without hash-consing).
  ASSERT_EQ(w.program.statements().size(), 8u);
  int contractions = 0;
  for (const Statement& s : w.program.statements()) {
    if (s.op->kind == StatementOp::Kind::kGemm && s.op->reduction_iter >= 0) {
      ++contractions;
    }
  }
  EXPECT_EQ(contractions, 2);  // X'X and X'y, each exactly once

  OptimizerOptions opts;
  opts.max_combination_size = 3;
  OptimizationResult r = Optimize(w.program, opts);
  ASSERT_GT(r.plans.size(), 1u);
  // Scratch temporaries (gram, X'y, regularized, inverses) are
  // non-persistent; the best plan elides at least some of their writes.
  EXPECT_LT(r.best().cost.write_bytes, r.plans[0].cost.write_bytes);

  auto env = NewMemEnv();
  RunResult orig = RunPlanOn(w, env.get(), "/r_orig", r.plans[0], r);
  RunResult best = RunPlanOn(w, env.get(), "/r_best", r.best(), r);
  // The write elision is visible in the measured ExecStats, exactly as
  // predicted.
  EXPECT_EQ(best.stats.bytes_written, r.best().cost.write_bytes);
  EXPECT_LT(best.stats.bytes_written, orig.stats.bytes_written);
  for (int arr : w.output_arrays) {
    EXPECT_TRUE(VerifyBitEqual(w.program.array(arr),
                               orig.rt.stores[static_cast<size_t>(arr)].get(),
                               best.rt.stores[static_cast<size_t>(arr)].get())
                    .ok());
  }

  // Statistical sanity: beta_l solves (X'X + lambda_l I) beta = X'y.
  const ArrayInfo& xi = w.program.array(0);
  const ArrayInfo& yi = w.program.array(1);
  auto xs = ReadWholeArray(xi, best.rt.stores[0].get()).ValueOrDie();
  auto ys = ReadWholeArray(yi, best.rt.stores[1].get()).ValueOrDie();
  const int64_t rows_per_block = xi.block_elems[0];
  const int64_t m = xi.block_elems[1];
  const int64_t kc = yi.block_elems[1];
  const double lambdas[2] = {2.5, 9.0};
  for (int li = 0; li < 2; ++li) {
    const int beta_arr = w.output_arrays[static_cast<size_t>(li)];
    auto beta = ReadWholeArray(w.program.array(beta_arr),
                               best.rt.stores[static_cast<size_t>(beta_arr)]
                                   .get())
                    .ValueOrDie();
    // residual = X'(y - X beta) - lambda beta, column by column.
    for (int64_t c = 0; c < kc; ++c) {
      std::vector<double> resid(static_cast<size_t>(m), 0.0);
      for (int64_t blk = 0; blk < xi.grid[0]; ++blk) {
        const double* xb = xs.data() + blk * xi.ElemsPerBlock();
        const double* yb = ys.data() + blk * yi.ElemsPerBlock();
        for (int64_t rr = 0; rr < rows_per_block; ++rr) {
          double e = yb[c * rows_per_block + rr];
          for (int64_t f = 0; f < m; ++f) {
            e -= xb[f * rows_per_block + rr] *
                 beta[static_cast<size_t>(c * m + f)];
          }
          for (int64_t f = 0; f < m; ++f) {
            resid[static_cast<size_t>(f)] +=
                xb[f * rows_per_block + rr] * e;
          }
        }
      }
      for (int64_t f = 0; f < m; ++f) {
        resid[static_cast<size_t>(f)] -=
            lambdas[li] * beta[static_cast<size_t>(c * m + f)];
      }
      for (double v : resid) EXPECT_NEAR(v, 0.0, 1e-6);
    }
  }
}

TEST(ExprWorkloadTest, CovarianceElidesScratchAndMatchesNaive) {
  Workload w = MakeCovariance(/*scale=*/1000);
  // G, M, and M'M are scratch. The centered difference (G - (1/n) M'M) is
  // fused into the final Scale — it has no array at all anymore.
  int scratch = 0;
  for (const ArrayInfo& a : w.program.arrays()) {
    scratch += a.persistent ? 0 : 1;
  }
  EXPECT_EQ(scratch, 3);

  OptimizerOptions opts;
  opts.max_combination_size = 3;
  OptimizationResult r = Optimize(w.program, opts);
  EXPECT_LT(r.best().cost.write_bytes, r.plans[0].cost.write_bytes);

  auto env = NewMemEnv();
  RunResult orig = RunPlanOn(w, env.get(), "/c_orig", r.plans[0], r);
  RunResult best = RunPlanOn(w, env.get(), "/c_best", r.best(), r);
  EXPECT_EQ(best.stats.bytes_written, r.best().cost.write_bytes);
  EXPECT_LT(best.stats.bytes_written, orig.stats.bytes_written);
  const int cov_arr = w.output_arrays[0];

  // Unfused lowering of the same graph: the centered-difference Sub comes
  // back as its own statement with its own temporary and its own read and
  // write passes — strictly more statements, scratch, and block reads at
  // the same plan — and the output stays bit-identical (X and O lower to
  // array ids 0/1 in both variants, so seeded InitInputs matches).
  Workload uw = MakeCovariance(/*scale=*/1000, /*fuse=*/false);
  int uscratch = 0;
  for (const ArrayInfo& a : uw.program.arrays()) {
    uscratch += a.persistent ? 0 : 1;
  }
  EXPECT_EQ(uw.program.statements().size(),
            w.program.statements().size() + 1);
  EXPECT_EQ(uscratch, scratch + 1);
  OptimizationResult ur = Optimize(uw.program, opts);
  RunResult uorig = RunPlanOn(uw, env.get(), "/c_unf", ur.plans[0], ur);
  EXPECT_LT(orig.stats.block_reads, uorig.stats.block_reads);
  const int ucov_arr = uw.output_arrays[0];
  EXPECT_TRUE(
      VerifyBitEqual(w.program.array(cov_arr),
                     orig.rt.stores[static_cast<size_t>(cov_arr)].get(),
                     uorig.rt.stores[static_cast<size_t>(ucov_arr)].get())
          .ok());
  EXPECT_TRUE(VerifyBitEqual(w.program.array(cov_arr),
                             orig.rt.stores[static_cast<size_t>(cov_arr)]
                                 .get(),
                             best.rt.stores[static_cast<size_t>(cov_arr)]
                                 .get())
                  .ok());

  // Semantic check against a naive covariance of the initialized data.
  const ArrayInfo& xi = w.program.array(0);
  auto xs = ReadWholeArray(xi, best.rt.stores[0].get()).ValueOrDie();
  auto cov = ReadWholeArray(w.program.array(cov_arr),
                            best.rt.stores[static_cast<size_t>(cov_arr)]
                                .get())
                 .ValueOrDie();
  const int64_t rows_per_block = xi.block_elems[0];
  const int64_t m = xi.block_elems[1];
  const int64_t nrows = xi.grid[0] * rows_per_block;
  auto x_at = [&](int64_t row, int64_t col) {
    const int64_t blk = row / rows_per_block;
    const int64_t rr = row % rows_per_block;
    return xs[static_cast<size_t>(blk * xi.ElemsPerBlock() +
                                  col * rows_per_block + rr)];
  };
  for (int64_t a = 0; a < m; ++a) {
    double mean_a = 0.0;
    for (int64_t rr = 0; rr < nrows; ++rr) mean_a += x_at(rr, a);
    mean_a /= static_cast<double>(nrows);
    for (int64_t b = 0; b < m; ++b) {
      double mean_b = 0.0;
      for (int64_t rr = 0; rr < nrows; ++rr) mean_b += x_at(rr, b);
      mean_b /= static_cast<double>(nrows);
      double acc = 0.0;
      for (int64_t rr = 0; rr < nrows; ++rr) {
        acc += (x_at(rr, a) - mean_a) * (x_at(rr, b) - mean_b);
      }
      acc /= static_cast<double>(nrows - 1);
      EXPECT_NEAR(cov[static_cast<size_t>(b * m + a)], acc, 1e-9)
          << "cov(" << a << "," << b << ")";
    }
  }
}

TEST(ExprWorkloadTest, ElementwiseChainFusedMatchesUnfusedAndExactOracle) {
  // The three-way differential the fusion pass is accepted on: the 7-op
  // elementwise chain lowered fused (one compound statement, no scratch)
  // and unfused (one statement + temporary per node) must agree bit for
  // bit with each other AND with an exact Rational evaluation, while the
  // fused run does strictly less I/O at the same memory cap.
  const int64_t scale = 1000;  // 24 x 3 element blocks, 8 x 2 grids
  Workload fused = MakeElementwiseChain(scale, /*fuse=*/true);
  Workload unfused = MakeElementwiseChain(scale, /*fuse=*/false);
  ASSERT_TRUE(fused.program.Validate().ok());
  ASSERT_TRUE(unfused.program.Validate().ok());

  auto scratch_of = [](const Workload& w) {
    int scratch = 0;
    for (const ArrayInfo& a : w.program.arrays()) {
      scratch += a.persistent ? 0 : 1;
    }
    return scratch;
  };
  ASSERT_EQ(fused.program.statements().size(), 1u);
  EXPECT_EQ(scratch_of(fused), 0);
  ASSERT_EQ(unfused.program.statements().size(), 7u);
  EXPECT_EQ(scratch_of(unfused), 6);

  // Integer inputs in [-3, 3], deterministic in (array, block, element):
  // every chain op is then exact integer arithmetic well inside 2^53.
  auto fill = [](int arr, int64_t blk, int64_t idx) {
    uint64_t h = static_cast<uint64_t>(arr) * 0x9E3779B97F4A7C15ULL +
                 static_cast<uint64_t>(blk) * 0x2545F4914F6CDD1DULL +
                 static_cast<uint64_t>(idx) * 1000003ULL;
    h ^= h >> 31;
    return static_cast<int64_t>(h % 7) - 3;
  };

  auto env = NewMemEnv();
  auto run = [&](const Workload& w, const std::string& dir) {
    auto rt = OpenStores(env.get(), w.program, dir);
    EXPECT_TRUE(rt.ok());
    for (int arr : w.input_arrays) {
      const ArrayInfo& info = w.program.array(arr);
      std::vector<double> buf(static_cast<size_t>(info.ElemsPerBlock()));
      for (int64_t blk = 0; blk < info.NumBlocks(); ++blk) {
        for (int64_t i = 0; i < info.ElemsPerBlock(); ++i) {
          buf[static_cast<size_t>(i)] =
              static_cast<double>(fill(arr, blk, i));
        }
        EXPECT_TRUE(rt->stores[static_cast<size_t>(arr)]
                        ->WriteBlock(blk, buf.data())
                        .ok());
      }
    }
    Executor ex(w.program, rt->raw(), w.kernels, {});
    auto stats = ex.Run(w.program.original_schedule(), {});
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return RunResult{*stats, std::move(rt).ValueOrDie()};
  };
  RunResult f = run(fused, "/chain_f");
  RunResult u = run(unfused, "/chain_u");

  // Same (default) cap: killing the temporaries must strictly reduce both
  // directions of block traffic.
  EXPECT_LT(f.stats.block_reads, u.stats.block_reads);
  EXPECT_LT(f.stats.bytes_read, u.stats.bytes_read);
  EXPECT_LT(f.stats.bytes_written, u.stats.bytes_written);

  // Exact oracle: z = 3 * max(relu(2(x + y) - y) + x, y), elementwise.
  const int x_arr = fused.input_arrays[0], y_arr = fused.input_arrays[1];
  const ArrayInfo& xi = fused.program.array(x_arr);
  auto oracle_at = [&](int64_t blk, int64_t idx) {
    const Rational x(fill(x_arr, blk, idx));
    const Rational y(fill(y_arr, blk, idx));
    Rational t = Rational(2) * (x + y) - y;
    if (t.IsNegative()) t = Rational(0);  // relu
    t = t + x;
    if (t < y) t = y;  // max
    return (Rational(3) * t).ToDouble();
  };

  const int zf_arr = fused.output_arrays[0];
  const int zu_arr = unfused.output_arrays[0];
  const ArrayInfo& zf = fused.program.array(zf_arr);
  ASSERT_EQ(fused.program.array(zf_arr).name, "Z");
  ASSERT_EQ(unfused.program.array(zu_arr).name, "Z");
  auto zfb = ReadWholeArray(zf, f.rt.stores[static_cast<size_t>(zf_arr)]
                                    .get())
                 .ValueOrDie();
  auto zub = ReadWholeArray(unfused.program.array(zu_arr),
                            u.rt.stores[static_cast<size_t>(zu_arr)].get())
                 .ValueOrDie();
  ASSERT_EQ(zfb.size(), zub.size());
  for (int64_t blk = 0; blk < xi.NumBlocks(); ++blk) {
    for (int64_t i = 0; i < xi.ElemsPerBlock(); ++i) {
      const size_t at =
          static_cast<size_t>(blk * xi.ElemsPerBlock() + i);
      const double want = oracle_at(blk, i);
      ASSERT_EQ(zfb[at], want) << "fused block " << blk << " elem " << i;
      ASSERT_EQ(zub[at], want) << "unfused block " << blk << " elem " << i;
    }
  }
}

}  // namespace
}  // namespace riot
