#include "ilp/ilp.h"

#include <gtest/gtest.h>

namespace riot {
namespace {

LpConstraint Make(std::vector<int64_t> coeffs, CmpOp op, int64_t rhs) {
  return {RVector::FromInts(coeffs), op, Rational(rhs)};
}

TEST(IlpTest, FractionalLpOptimumForcesBranching) {
  // max x s.t. 2x <= 5: LP gives 5/2, ILP must give 2.
  std::vector<LpConstraint> cons = {Make({1}, CmpOp::kGe, 0),
                                    Make({2}, CmpOp::kLe, 5)};
  IlpResult r = SolveIlp(1, cons, RVector::FromInts({1}));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.x[0], 2);
}

TEST(IlpTest, InfeasibleIntegerDespiteFeasibleLp) {
  // 1/3 <= x <= 2/3 has rational but no integer points.
  std::vector<LpConstraint> cons = {Make({3}, CmpOp::kGe, 1),
                                    Make({3}, CmpOp::kLe, 2)};
  IlpResult r = SolveIlp(1, cons, RVector::FromInts({0}));
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(FindIntegerPoint(1, cons).has_value());
}

TEST(IlpTest, TwoVarOptimization) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2, x,y >= 0  ->  (2,2) = 10.
  std::vector<LpConstraint> cons = {
      Make({1, 1}, CmpOp::kLe, 4), Make({1, 0}, CmpOp::kLe, 2),
      Make({1, 0}, CmpOp::kGe, 0), Make({0, 1}, CmpOp::kGe, 0)};
  IlpResult r = SolveIlp(2, cons, RVector::FromInts({3, 2}));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.objective, Rational(10));
  EXPECT_EQ(r.x[0], 2);
  EXPECT_EQ(r.x[1], 2);
}

TEST(IlpTest, FindIntegerPointMinimizesL1) {
  // x + y == 3 with x,y free: L1-minimal integer points have |x|+|y| = 3.
  std::vector<LpConstraint> cons = {Make({1, 1}, CmpOp::kEq, 3)};
  auto p = FindIntegerPoint(2, cons, /*minimize_l1=*/true);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ((*p)[0] + (*p)[1], 3);
  EXPECT_EQ(std::abs((*p)[0]) + std::abs((*p)[1]), 3);
}

TEST(IlpTest, L1PrefersZeroVector) {
  // Unconstrained: the L1-minimal point is the origin.
  auto p = FindIntegerPoint(3, {}, /*minimize_l1=*/true);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (std::vector<int64_t>{0, 0, 0}));
}

TEST(IlpTest, PerVariableBounds) {
  // x == 20 only reachable if that variable's bound allows it.
  std::vector<LpConstraint> cons = {Make({1, 0}, CmpOp::kEq, 20)};
  IlpOptions tight;
  tight.var_bound = 4;
  EXPECT_FALSE(FindIntegerPoint(2, cons, true, tight).has_value());
  IlpOptions wide;
  wide.var_bound = 4;
  wide.var_bounds = {100, 4};
  auto p = FindIntegerPoint(2, cons, true, wide);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ((*p)[0], 20);
}

TEST(IlpTest, EqualitySystemUniqueSolution) {
  std::vector<LpConstraint> cons = {Make({1, 1}, CmpOp::kEq, 7),
                                    Make({1, -1}, CmpOp::kEq, 1)};
  auto p = FindIntegerPoint(2, cons);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ((*p)[0], 4);
  EXPECT_EQ((*p)[1], 3);
}

// Property sweep: ILP solution must be feasible and optimal vs brute force.
class IlpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IlpPropertyTest, MatchesBruteForce) {
  std::srand(static_cast<unsigned>(GetParam()) * 7919 + 13);
  std::vector<LpConstraint> cons;
  for (int i = 0; i < 3; ++i) {
    int64_t a = std::rand() % 5 - 2, b = std::rand() % 5 - 2;
    int64_t r = std::rand() % 9 - 2;
    cons.push_back(Make({a, b}, CmpOp::kLe, r));
  }
  int64_t ca = std::rand() % 5 - 2, cb = std::rand() % 5 - 2;
  IlpOptions opt;
  opt.var_bound = 4;
  IlpResult r = SolveIlp(2, cons, RVector::FromInts({ca, cb}), opt);
  // Brute force over the [-4, 4]^2 box.
  bool any = false;
  int64_t best = 0;
  for (int64_t x = -4; x <= 4; ++x) {
    for (int64_t y = -4; y <= 4; ++y) {
      bool ok = true;
      for (const auto& c : cons) {
        Rational lhs = c.coeffs[0] * Rational(x) + c.coeffs[1] * Rational(y);
        if (lhs > c.rhs) ok = false;
      }
      if (!ok) continue;
      int64_t obj = ca * x + cb * y;
      if (!any || obj > best) best = obj;
      any = true;
    }
  }
  EXPECT_EQ(r.feasible, any);
  if (any) {
    EXPECT_EQ(r.objective, Rational(best));
    // Returned point satisfies all constraints.
    for (const auto& c : cons) {
      Rational lhs =
          c.coeffs[0] * Rational(r.x[0]) + c.coeffs[1] * Rational(r.x[1]);
      EXPECT_LE(lhs, c.rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpPropertyTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace riot
