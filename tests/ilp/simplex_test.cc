#include "ilp/simplex.h"

#include <gtest/gtest.h>

namespace riot {
namespace {

LpConstraint Make(std::vector<int64_t> coeffs, CmpOp op, int64_t rhs) {
  return {RVector::FromInts(coeffs), op, Rational(rhs)};
}

TEST(SimplexTest, SimpleMaximization) {
  // max x + y s.t. x <= 4, y <= 3, x + y <= 5  ->  5 at e.g. (2,3).
  std::vector<LpConstraint> cons = {
      Make({1, 0}, CmpOp::kLe, 4),
      Make({0, 1}, CmpOp::kLe, 3),
      Make({1, 1}, CmpOp::kLe, 5),
  };
  LpSolution s = SolveLp(2, cons, RVector::FromInts({1, 1})).ValueOrDie();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.objective, Rational(5));
  EXPECT_EQ(s.x[0] + s.x[1], Rational(5));
}

TEST(SimplexTest, FreeVariablesCanGoNegative) {
  // max -x s.t. x >= -7  ->  7 at x = -7.
  std::vector<LpConstraint> cons = {Make({1}, CmpOp::kGe, -7)};
  LpSolution s = SolveLp(1, cons, RVector::FromInts({-1})).ValueOrDie();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.x[0], Rational(-7));
}

TEST(SimplexTest, InfeasibleDetected) {
  std::vector<LpConstraint> cons = {
      Make({1}, CmpOp::kGe, 3),
      Make({1}, CmpOp::kLe, 2),
  };
  LpSolution s = SolveLp(1, cons, RVector::FromInts({0})).ValueOrDie();
  EXPECT_EQ(s.status, LpStatus::kInfeasible);
  EXPECT_FALSE(LpFeasible(1, cons).ValueOrDie());
}

TEST(SimplexTest, UnboundedDetected) {
  std::vector<LpConstraint> cons = {Make({1}, CmpOp::kGe, 0)};
  LpSolution s = SolveLp(1, cons, RVector::FromInts({1})).ValueOrDie();
  EXPECT_EQ(s.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, EqualityConstraints) {
  // max y s.t. x + y == 10, x - y == 2  ->  unique point (6, 4).
  std::vector<LpConstraint> cons = {
      Make({1, 1}, CmpOp::kEq, 10),
      Make({1, -1}, CmpOp::kEq, 2),
  };
  LpSolution s = SolveLp(2, cons, RVector::FromInts({0, 1})).ValueOrDie();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.x[0], Rational(6));
  EXPECT_EQ(s.x[1], Rational(4));
}

TEST(SimplexTest, RationalOptimum) {
  // max x s.t. 2x <= 3  ->  x = 3/2.
  std::vector<LpConstraint> cons = {Make({2}, CmpOp::kLe, 3)};
  LpSolution s = SolveLp(1, cons, RVector::FromInts({1})).ValueOrDie();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.x[0], Rational(3, 2));
}

TEST(SimplexTest, RedundantConstraintsHarmless) {
  std::vector<LpConstraint> cons = {
      Make({1, 1}, CmpOp::kLe, 5),
      Make({1, 1}, CmpOp::kLe, 5),
      Make({2, 2}, CmpOp::kLe, 10),
      Make({1, 0}, CmpOp::kGe, 0),
      Make({0, 1}, CmpOp::kGe, 0),
  };
  LpSolution s = SolveLp(2, cons, RVector::FromInts({1, 1})).ValueOrDie();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.objective, Rational(5));
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Multiple constraints meet at the optimum; Bland's rule must not cycle.
  std::vector<LpConstraint> cons = {
      Make({1, 1}, CmpOp::kLe, 1),  Make({1, 0}, CmpOp::kLe, 1),
      Make({0, 1}, CmpOp::kLe, 1),  Make({1, -1}, CmpOp::kLe, 1),
      Make({-1, 1}, CmpOp::kLe, 1), Make({1, 0}, CmpOp::kGe, 0),
      Make({0, 1}, CmpOp::kGe, 0),
  };
  LpSolution s = SolveLp(2, cons, RVector::FromInts({1, 1})).ValueOrDie();
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.objective, Rational(1));
}

TEST(SimplexTest, BealeCyclingExampleTerminatesOptimal) {
  // Beale (1955): the classic LP on which Dantzig pricing with a naive
  // tie-break cycles forever at a degenerate vertex. The Bland fallback
  // (after LpOptions::degenerate_pivot_limit zero-progress pivots) must
  // exit the cycle and reach the true optimum 1/20 at (1/25, 0, 1, 0).
  //   max 3/4 x1 - 150 x2 + 1/50 x3 - 6 x4
  //   s.t. 1/4 x1 - 60 x2 - 1/25 x3 + 9 x4 <= 0
  //        1/2 x1 - 90 x2 - 1/50 x3 + 3 x4 <= 0
  //        x3 <= 1,  x >= 0
  auto rv = [](std::vector<Rational> v) {
    RVector r(v.size());
    for (size_t i = 0; i < v.size(); ++i) r[i] = v[i];
    return r;
  };
  std::vector<LpConstraint> cons = {
      {rv({Rational(1, 4), Rational(-60), Rational(-1, 25), Rational(9)}),
       CmpOp::kLe, Rational(0)},
      {rv({Rational(1, 2), Rational(-90), Rational(-1, 50), Rational(3)}),
       CmpOp::kLe, Rational(0)},
      {rv({Rational(0), Rational(0), Rational(1), Rational(0)}),
       CmpOp::kLe, Rational(1)},
      Make({1, 0, 0, 0}, CmpOp::kGe, 0),
      Make({0, 1, 0, 0}, CmpOp::kGe, 0),
      Make({0, 0, 1, 0}, CmpOp::kGe, 0),
      Make({0, 0, 0, 1}, CmpOp::kGe, 0),
  };
  RVector obj = rv({Rational(3, 4), Rational(-150), Rational(1, 50),
                    Rational(-6)});
  // A tight degenerate-pivot limit forces the Bland fallback to engage
  // almost immediately; the answer must still be exactly optimal.
  LpOptions opts;
  opts.degenerate_pivot_limit = 2;
  auto s = SolveLp(4, cons, obj, opts);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_EQ(s->objective, Rational(1, 20));
}

TEST(SimplexTest, PivotBudgetSurfacesStatusNotAbort) {
  // A feasible LP that needs phase-I pivots, given no budget to make them:
  // the solver must return kResourceExhausted, not loop or abort.
  std::vector<LpConstraint> cons = {
      Make({1, 0}, CmpOp::kLe, 4),
      Make({0, 1}, CmpOp::kLe, 3),
      Make({1, 1}, CmpOp::kGe, 2),
  };
  LpOptions opts;
  opts.max_pivots = 1;
  auto s = SolveLp(2, cons, RVector::FromInts({1, 1}), opts);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
  // The same system solves fine with the default budget.
  auto full = SolveLp(2, cons, RVector::FromInts({1, 1}));
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->status, LpStatus::kOptimal);
}

// Brute-force cross-check on small integer boxes.
class SimplexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexPropertyTest, MatchesBruteForceOnBox) {
  std::srand(static_cast<unsigned>(GetParam()));
  // Random constraints over [-3, 3]^2 plus box bounds.
  std::vector<LpConstraint> cons = {
      Make({1, 0}, CmpOp::kLe, 3),  Make({1, 0}, CmpOp::kGe, -3),
      Make({0, 1}, CmpOp::kLe, 3),  Make({0, 1}, CmpOp::kGe, -3),
  };
  for (int i = 0; i < 3; ++i) {
    int64_t a = std::rand() % 5 - 2, b = std::rand() % 5 - 2;
    int64_t r = std::rand() % 7 - 1;
    cons.push_back(Make({a, b}, CmpOp::kLe, r));
  }
  int64_t ca = std::rand() % 5 - 2, cb = std::rand() % 5 - 2;
  LpSolution s = SolveLp(2, cons, RVector::FromInts({ca, cb})).ValueOrDie();
  // Brute force over a fine rational grid (quarters) inside the box.
  bool any = false;
  Rational best;
  for (int xq = -12; xq <= 12; ++xq) {
    for (int yq = -12; yq <= 12; ++yq) {
      Rational x(xq, 4), y(yq, 4);
      bool ok = true;
      for (const auto& c : cons) {
        Rational lhs = c.coeffs[0] * x + c.coeffs[1] * y;
        if (c.op == CmpOp::kLe && lhs > c.rhs) ok = false;
        if (c.op == CmpOp::kGe && lhs < c.rhs) ok = false;
      }
      if (!ok) continue;
      Rational obj = Rational(ca) * x + Rational(cb) * y;
      if (!any || obj > best) best = obj;
      any = true;
    }
  }
  if (s.status == LpStatus::kOptimal) {
    ASSERT_TRUE(any);
    // The LP optimum dominates every grid point.
    EXPECT_GE(s.objective, best);
  } else if (s.status == LpStatus::kInfeasible) {
    EXPECT_FALSE(any);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace riot
