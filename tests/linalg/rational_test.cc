#include "linalg/rational.h"

#include <gtest/gtest.h>

namespace riot {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.IsZero());
  EXPECT_TRUE(r.IsInteger());
  EXPECT_EQ(r.ToInt64(), 0);
}

TEST(RationalTest, NormalizationReduces) {
  Rational r(6, 8);
  EXPECT_EQ(r, Rational(3, 4));
  EXPECT_EQ(r.ToString(), "3/4");
}

TEST(RationalTest, NegativeDenominatorNormalizes) {
  Rational r(3, -4);
  EXPECT_TRUE(r.IsNegative());
  EXPECT_EQ(r, Rational(-3, 4));
}

TEST(RationalTest, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_GE(Rational(7), Rational(7));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).Floor(), 3);
  EXPECT_EQ(Rational(7, 2).Ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).Floor(), -4);
  EXPECT_EQ(Rational(-7, 2).Ceil(), -3);
  EXPECT_EQ(Rational(4).Floor(), 4);
  EXPECT_EQ(Rational(4).Ceil(), 4);
  EXPECT_EQ(Rational(-4).Floor(), -4);
}

TEST(RationalTest, Abs) {
  EXPECT_EQ(Rational(-5, 3).Abs(), Rational(5, 3));
  EXPECT_EQ(Rational(5, 3).Abs(), Rational(5, 3));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).ToDouble(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).ToDouble(), -1.5);
}

// Property-style sweep: field axioms on a grid of small rationals.
class RationalPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalPropertyTest, FieldProperties) {
  auto [n, d] = GetParam();
  Rational a(n, d);
  Rational b(d, 7);
  Rational c(n - d, 5);
  // Commutativity / associativity / distributivity.
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  // Inverses.
  EXPECT_TRUE((a - a).IsZero());
  if (!a.IsZero()) EXPECT_EQ(a / a, Rational(1));
  // Floor/Ceil bracket the value.
  EXPECT_LE(Rational(a.Floor()), a);
  EXPECT_GE(Rational(a.Ceil()), a);
  EXPECT_LE((a - Rational(a.Floor())).ToDouble(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RationalPropertyTest,
    ::testing::Combine(::testing::Values(-17, -5, -1, 0, 3, 12, 40),
                       ::testing::Values(-9, -2, 1, 4, 15)));

TEST(RationalTest, LargeValuesNoOverflow) {
  Rational big(int64_t{1} << 40);
  Rational r = big * Rational(3, 7);
  EXPECT_EQ(r, Rational((int64_t{3} << 40), 7));
  EXPECT_EQ(r / big, Rational(3, 7));
}

}  // namespace
}  // namespace riot
