#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace riot {
namespace {

RMatrix RandomMatrix(size_t rows, size_t cols, unsigned seed) {
  std::srand(seed);
  RMatrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m.At(r, c) = Rational(std::rand() % 11 - 5);
    }
  }
  return m;
}

TEST(RVectorTest, DotAndArithmetic) {
  RVector a = RVector::FromInts({1, 2, 3});
  RVector b = RVector::FromInts({4, -5, 6});
  EXPECT_EQ(a.Dot(b), Rational(4 - 10 + 18));
  EXPECT_EQ((a + b)[1], Rational(-3));
  EXPECT_EQ((a - b)[2], Rational(-3));
  EXPECT_EQ((a * Rational(2))[0], Rational(2));
  EXPECT_FALSE(a.IsZero());
  EXPECT_TRUE(RVector(3).IsZero());
}

TEST(RMatrixTest, IdentityAndMultiply) {
  RMatrix i3 = RMatrix::Identity(3);
  RMatrix m = RandomMatrix(3, 3, 42);
  EXPECT_EQ(i3 * m, m);
  EXPECT_EQ(m * i3, m);
}

TEST(RMatrixTest, TransposeInvolution) {
  RMatrix m = RandomMatrix(3, 5, 1);
  EXPECT_EQ(m.Transpose().Transpose(), m);
}

TEST(RMatrixTest, RankOfIdentity) {
  EXPECT_EQ(RMatrix::Identity(4).Rank(), 4u);
}

TEST(RMatrixTest, RankOfDependentRows) {
  RMatrix m(3, 3);
  m.SetRow(0, RVector::FromInts({1, 2, 3}));
  m.SetRow(1, RVector::FromInts({2, 4, 6}));   // 2x row 0
  m.SetRow(2, RVector::FromInts({0, 1, -1}));
  EXPECT_EQ(m.Rank(), 2u);
}

TEST(RMatrixTest, NullSpaceOrthogonalToRows) {
  RMatrix m(2, 4);
  m.SetRow(0, RVector::FromInts({1, 2, 0, -1}));
  m.SetRow(1, RVector::FromInts({0, 1, 1, 1}));
  auto basis = m.NullSpaceBasis();
  EXPECT_EQ(basis.size(), 2u);  // 4 - rank 2
  for (const auto& v : basis) {
    EXPECT_TRUE(m.Apply(v).IsZero());
  }
}

TEST(RMatrixTest, NullSpaceOfEmptyMatrixIsFullSpace) {
  RMatrix m(0, 3);
  auto basis = m.NullSpaceBasis();
  EXPECT_EQ(basis.size(), 3u);
}

TEST(RMatrixTest, InverseRoundTrip) {
  RMatrix m(3, 3);
  m.SetRow(0, RVector::FromInts({2, 1, 0}));
  m.SetRow(1, RVector::FromInts({1, 3, 1}));
  m.SetRow(2, RVector::FromInts({0, 1, 2}));
  auto inv = m.Inverse();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(m * *inv, RMatrix::Identity(3));
  EXPECT_EQ(*inv * m, RMatrix::Identity(3));
}

TEST(RMatrixTest, SingularHasNoInverse) {
  RMatrix m(2, 2);
  m.SetRow(0, RVector::FromInts({1, 2}));
  m.SetRow(1, RVector::FromInts({2, 4}));
  EXPECT_FALSE(m.Inverse().has_value());
}

TEST(RMatrixTest, SolveConsistentSystem) {
  RMatrix m(2, 2);
  m.SetRow(0, RVector::FromInts({1, 1}));
  m.SetRow(1, RVector::FromInts({1, -1}));
  auto x = m.Solve(RVector::FromInts({10, 4}));
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rational(7));
  EXPECT_EQ((*x)[1], Rational(3));
}

TEST(RMatrixTest, SolveInconsistentReturnsNullopt) {
  RMatrix m(2, 2);
  m.SetRow(0, RVector::FromInts({1, 1}));
  m.SetRow(1, RVector::FromInts({2, 2}));
  EXPECT_FALSE(m.Solve(RVector::FromInts({1, 3})).has_value());
}

TEST(RMatrixTest, RowSpanContains) {
  RMatrix m(2, 3);
  m.SetRow(0, RVector::FromInts({1, 0, 1}));
  m.SetRow(1, RVector::FromInts({0, 1, 1}));
  EXPECT_TRUE(m.RowSpanContains(RVector::FromInts({2, 3, 5})));
  EXPECT_FALSE(m.RowSpanContains(RVector::FromInts({0, 0, 1})));
  EXPECT_TRUE(m.RowSpanContains(RVector(3)));  // zero vector always in span
}

// Property sweep: inverse and rank invariants over random square matrices.
class MatrixPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MatrixPropertyTest, InverseAndRankInvariants) {
  RMatrix m = RandomMatrix(4, 4, GetParam());
  auto inv = m.Inverse();
  if (inv.has_value()) {
    EXPECT_EQ(m.Rank(), 4u);
    EXPECT_EQ(m * *inv, RMatrix::Identity(4));
  } else {
    EXPECT_LT(m.Rank(), 4u);
    EXPECT_FALSE(m.NullSpaceBasis().empty());
  }
  // rank(M) == rank(M^T)
  EXPECT_EQ(m.Rank(), m.Transpose().Rank());
  // rank-nullity
  EXPECT_EQ(m.Rank() + m.NullSpaceBasis().size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixPropertyTest,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace riot
